package kncube_test

// Integration tests exercising the public facade end to end: the analytical
// model against the flit-level simulator, the way the paper's Section 4
// validates its model.

import (
	"errors"
	"math"
	"testing"

	"kncube"
)

func TestFacadeModelSolves(t *testing.T) {
	res, err := kncube.SolveModel(
		kncube.ModelParams{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4},
		kncube.ModelOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < 47 || res.Latency > 100 {
		t.Errorf("latency %v outside plausible band", res.Latency)
	}
}

func TestFacadeSaturationError(t *testing.T) {
	_, err := kncube.SolveModel(
		kncube.ModelParams{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.01},
		kncube.ModelOptions{},
	)
	if !errors.Is(err, kncube.ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

// runPoint runs model and simulator at one operating point on a small
// torus.
func runPoint(t *testing.T, k, v, lm int, h, lambda float64) (model float64, sim kncube.SimResult) {
	t.Helper()
	m, err := kncube.SolveModel(
		kncube.ModelParams{K: k, V: v, Lm: lm, H: h, Lambda: lambda},
		kncube.ModelOptions{},
	)
	if err != nil {
		t.Fatalf("model: %v", err)
	}
	cube, err := kncube.NewCube(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := kncube.NewHotSpot(cube, cube.FromCoords([]int{k / 2, k / 2}), h)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: k, Dims: 2, VCs: v, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{
		WarmupCycles: 5000, MaxCycles: 400000, MinMeasured: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.Latency, res
}

func TestModelTracksSimulationAtLightLoad(t *testing.T) {
	// The paper's central validation claim: model ≈ simulation in the
	// light-load region. 10% tolerance on a small torus.
	cases := []struct {
		k, lm  int
		h      float64
		lambda float64
	}{
		{8, 16, 0.2, 5e-4},
		{8, 16, 0.4, 3e-4},
		{8, 32, 0.2, 3e-4},
		{4, 8, 0.3, 2e-3},
	}
	for _, c := range cases {
		model, sim := runPoint(t, c.k, 2, c.lm, c.h, c.lambda)
		rel := math.Abs(model-sim.MeanLatency) / sim.MeanLatency
		if rel > 0.10 {
			t.Errorf("k=%d lm=%d h=%v lambda=%v: model %v vs sim %v (rel err %.2f)",
				c.k, c.lm, c.h, c.lambda, model, sim.MeanLatency, rel)
		}
	}
}

func TestModelConservativeAtModerateLoad(t *testing.T) {
	// Toward the knee the calibrated model stays finite and errs on the
	// conservative (high) side without losing the order of magnitude.
	model, sim := runPoint(t, 8, 2, 16, 0.3, 1.5e-3)
	if sim.Saturated {
		t.Fatalf("simulation unexpectedly saturated: %+v", sim)
	}
	if model < 0.8*sim.MeanLatency {
		t.Errorf("model %v more than 20%% below simulation %v", model, sim.MeanLatency)
	}
	if model > 5*sim.MeanLatency {
		t.Errorf("model %v more than 5x simulation %v", model, sim.MeanLatency)
	}
}

func TestSaturationOrderingMatchesSimulator(t *testing.T) {
	// Model saturation rates must be ordered like the simulator's knees:
	// higher h saturates earlier.
	sat := func(h float64) float64 {
		s, err := kncube.SaturationLambda(func(lam float64) error {
			_, err := kncube.SolveModel(
				kncube.ModelParams{K: 8, V: 2, Lm: 16, H: h, Lambda: lam},
				kncube.ModelOptions{},
			)
			return err
		}, 1e-6, 0, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s2, s5, s8 := sat(0.2), sat(0.5), sat(0.8)
	if !(s2 > s5 && s5 > s8) {
		t.Fatalf("saturation not decreasing in h: %v %v %v", s2, s5, s8)
	}
	// And the simulator must still be stable somewhat below the model's
	// saturation point, and congested above it.
	below := s5 * 0.5
	cube, _ := kncube.NewCube(8, 2)
	pattern, _ := kncube.NewHotSpot(cube, 36, 0.5)
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: below, Pattern: pattern, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{WarmupCycles: 5000, MaxCycles: 300000, MinMeasured: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Errorf("simulator saturated at half the model's saturation rate %v", s5)
	}
}

func TestBidirectionalModelTracksSimulator(t *testing.T) {
	// The bidirectional extension validated the same way as the main
	// model: against the (bidirectional) simulator at light load.
	cases := []struct {
		k, lm  int
		h      float64
		lambda float64
	}{
		{8, 16, 0.3, 1e-3},
		{8, 32, 0.2, 6e-4},
		{9, 16, 0.4, 8e-4}, // odd radix: symmetric direction classes
	}
	for _, c := range cases {
		m, err := kncube.SolveBidirectionalModel(
			kncube.ModelParams{K: c.k, V: 2, Lm: c.lm, H: c.h, Lambda: c.lambda},
			kncube.ModelOptions{},
		)
		if err != nil {
			t.Fatalf("bi model k=%d: %v", c.k, err)
		}
		cube, err := kncube.NewCube(c.k, 2)
		if err != nil {
			t.Fatal(err)
		}
		pattern, err := kncube.NewHotSpot(cube, cube.FromCoords([]int{c.k / 2, c.k / 2}), c.h)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := kncube.NewSimulator(kncube.SimConfig{
			K: c.k, Dims: 2, VCs: 2, MsgLen: c.lm, Lambda: c.lambda,
			Pattern: pattern, Seed: 23, Bidirectional: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(kncube.SimRunOptions{
			WarmupCycles: 5000, MaxCycles: 400000, MinMeasured: 4000,
		})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(m.Latency-res.MeanLatency) / res.MeanLatency
		if rel > 0.12 {
			t.Errorf("k=%d lm=%d h=%v lambda=%v: bi model %v vs sim %v (rel %.2f)",
				c.k, c.lm, c.h, c.lambda, m.Latency, res.MeanLatency, rel)
		}
	}
}

func TestNDimModelTracksSimulatorThreeDims(t *testing.T) {
	// The general-n model against the simulator on a 3-D torus (the
	// machines the paper's introduction motivates).
	const (
		k      = 6 // 216 nodes
		lm     = 16
		h      = 0.25
		lambda = 3e-4
	)
	m, err := kncube.SolveNDim(
		kncube.NDimParams{K: k, N: 3, V: 2, Lm: lm, H: h, Lambda: lambda},
		kncube.ModelOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := kncube.NewCube(k, 3)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := kncube.NewHotSpot(cube, cube.FromCoords([]int{3, 3, 3}), h)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: k, Dims: 3, VCs: 2, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{
		WarmupCycles: 5000, MaxCycles: 300000, MinMeasured: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(m.Latency-res.MeanLatency) / res.MeanLatency
	if rel > 0.12 {
		t.Errorf("3-D model %v vs sim %v (rel %.2f)", m.Latency, res.MeanLatency, rel)
	}
	// Percentiles are ordered and bracket the mean sensibly.
	if !(res.LatencyP50 <= res.LatencyP95 && res.LatencyP95 <= res.LatencyP99) {
		t.Errorf("percentiles unordered: %v %v %v", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if res.LatencyP50 < float64(lm) || res.LatencyP99 > 100*res.MeanLatency {
		t.Errorf("implausible percentiles: p50=%v p99=%v mean=%v",
			res.LatencyP50, res.LatencyP99, res.MeanLatency)
	}
}

func TestHypercubeModelTracksSimulator(t *testing.T) {
	// The hypercube baseline model [12] against the simulator configured
	// as a 2-ary n-cube.
	const (
		n      = 7 // 128 nodes
		lm     = 16
		h      = 0.2
		lambda = 8e-4
	)
	m, err := kncube.SolveHypercube(
		kncube.HypercubeParams{N: n, V: 2, Lm: lm, H: h, Lambda: lambda},
		kncube.ModelOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := kncube.NewCube(2, n)
	if err != nil {
		t.Fatal(err)
	}
	pattern, err := kncube.NewHotSpot(cube, 37, h)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: 2, Dims: n, VCs: 2, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{
		WarmupCycles: 5000, MaxCycles: 300000, MinMeasured: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(m.Latency-res.MeanLatency) / res.MeanLatency
	if rel > 0.15 {
		t.Errorf("hypercube model %v vs sim %v (rel %.2f)", m.Latency, res.MeanLatency, rel)
	}
}

func TestUniformBaselineMatchesSimulator(t *testing.T) {
	u, err := kncube.SolveUniform(kncube.UniformParams{K: 8, Dims: 2, V: 2, Lm: 16, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	cube, _ := kncube.NewCube(8, 2)
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: 1e-3,
		Pattern: kncube.UniformPattern(cube), Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{WarmupCycles: 5000, MaxCycles: 300000, MinMeasured: 4000})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(u.Latency-res.MeanLatency) / res.MeanLatency
	if rel > 0.10 {
		t.Errorf("uniform baseline %v vs sim %v (rel %.2f)", u.Latency, res.MeanLatency, rel)
	}
}

func TestHotSpotPositionIrrelevantInSimulator(t *testing.T) {
	// On a torus the hot node's location must not matter (the model
	// implicitly assumes this).
	run := func(hot kncube.NodeID) float64 {
		cube, _ := kncube.NewCube(8, 2)
		pattern, err := kncube.NewHotSpot(cube, hot, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := kncube.NewSimulator(kncube.SimConfig{
			K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: 5e-4,
			Pattern: pattern, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(kncube.SimRunOptions{WarmupCycles: 5000, MaxCycles: 300000, MinMeasured: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	a, b := run(0), run(43)
	if math.Abs(a-b)/a > 0.05 {
		t.Errorf("hot node position changed latency: %v vs %v", a, b)
	}
}

func TestSimulatorHotRingRatesMatchModelEquations(t *testing.T) {
	// Eqs. 3-7 in vivo: measured flit rates on the hot column's channels
	// must match the analytic channel rates. k=8, moderate load.
	const (
		k      = 8
		lm     = 16
		h      = 0.4
		lambda = 5e-4
	)
	cube, _ := kncube.NewCube(k, 2)
	hot := cube.FromCoords([]int{3, 5})
	pattern, _ := kncube.NewHotSpot(cube, hot, h)
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: k, Dims: 2, VCs: 2, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(kncube.SimRunOptions{WarmupCycles: 0, MaxCycles: 2000000, MinMeasured: 1 << 40}); err != nil {
		t.Fatal(err)
	}
	cycles := float64(nw.Cycle())

	// Walk the hot column: the outgoing y-channel of the node j hops
	// before the hot node carries lambda_r + lambda*h*k*(k-j) messages
	// (with the simulator's uniform component including the hot node, the
	// hot-directed extra rate is h' = h + (1-h)/(N-1) in excess of
	// uniform... we test against the dominant Eq. 7 shape with 15%
	// tolerance).
	lr := lambda * (1 - h) * float64(k-1) / 2
	for j := 1; j <= k-1; j++ {
		// Node at y-distance j from hot node, same column.
		coords := cube.Coords(hot)
		y := (coords[1] - j + k) % k
		node := cube.FromCoords([]int{coords[0], y})
		flits := float64(nw.ChannelFlits(int(node), 1))
		msgRate := flits / cycles / float64(lm)
		want := lr + lambda*h*float64(k)*float64(k-j)
		if math.Abs(msgRate-want)/want > 0.15 {
			t.Errorf("hot ring channel j=%d: measured rate %.6f, Eq. 7 gives %.6f",
				j, msgRate, want)
		}
	}
}
