// Saturation: map the saturation surface of the hot-spot torus. For a grid
// of hot-spot fractions and message lengths, locate the analytical model's
// saturation rate by bisection and compare it against the hot-channel
// capacity bound 1/(h·k·(k-1)·(Lm+1)) — the last channel into the hot node
// carries nearly all hot-spot traffic, so its flit bandwidth caps the
// sustainable load. This reproduces the reasoning behind the axis ranges of
// the paper's Figures 1 and 2.
package main

import (
	"fmt"
	"log"

	"kncube"
)

func main() {
	const (
		k = 16
		v = 2
	)
	fmt.Printf("saturation rate (messages/node/cycle) on a 16-ary 2-cube, V=%d\n\n", v)
	fmt.Printf("%-8s %-8s %-14s %-14s %-8s\n", "h", "Lm", "model", "capacity", "ratio")

	for _, h := range []float64{0.1, 0.2, 0.4, 0.7, 0.9} {
		for _, lm := range []int{32, 100} {
			sat, err := kncube.SaturationLambda(func(lam float64) error {
				_, err := kncube.SolveModel(
					kncube.ModelParams{K: k, V: v, Lm: lm, H: h, Lambda: lam},
					kncube.ModelOptions{},
				)
				return err
			}, 1e-8, 0, 1e-3)
			if err != nil {
				log.Fatalf("h=%v lm=%d: %v", h, lm, err)
			}
			capacity := 1 / (h * float64(k) * float64(k-1) * float64(lm+1))
			fmt.Printf("%-8.2f %-8d %-14.3g %-14.3g %-8.2f\n",
				h, lm, sat, capacity, sat/capacity)
		}
	}

	fmt.Println("\nthe model's saturation tracks the hot-channel capacity bound across")
	fmt.Println("two orders of magnitude of offered load — the ordering the paper's")
	fmt.Println("figure axes encode (0.0006 for h=20%, Lm=32 down to 0.00007 for")
	fmt.Println("h=70%, Lm=100).")
}
