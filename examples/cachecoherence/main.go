// Cachecoherence: the write-invalidation scenario from the paper's
// introduction. A home node invalidates a widely-shared cache block; every
// sharer sends an acknowledgement back to the home node, producing a burst
// of hot-spot traffic aimed at it.
//
// This example uses the simulator's delivery callbacks to measure the
// acknowledgement-collection time (the time until the home node has
// received all N-1 acknowledgements) as a function of the background load,
// and compares the mean acknowledgement latency against the analytical
// model evaluated at the equivalent hot-spot fraction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kncube"
)

const (
	k      = 8
	v      = 2
	lm     = 4 // acknowledgements are tiny control messages
	lambda = 2e-3
)

// ackPattern mixes a uniform background with one acknowledgement from each
// node, released once, toward the home node.
type ackPattern struct {
	uniform kncube.Pattern
	home    kncube.NodeID
	pending map[kncube.NodeID]bool
}

func (a *ackPattern) Destination(src kncube.NodeID, rng *rand.Rand) kncube.NodeID {
	if a.pending[src] {
		delete(a.pending, src)
		return a.home
	}
	return a.uniform.Destination(src, rng)
}

func (a *ackPattern) String() string { return "write-invalidate acks" }

func main() {
	cube, err := kncube.NewCube(k, 2)
	if err != nil {
		log.Fatal(err)
	}
	home := cube.FromCoords([]int{1, 2})
	n := cube.Nodes()

	pending := map[kncube.NodeID]bool{}
	for id := 0; id < n; id++ {
		if kncube.NodeID(id) != home {
			pending[kncube.NodeID(id)] = true
		}
	}
	pattern := &ackPattern{uniform: kncube.UniformPattern(cube), home: home, pending: pending}

	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: k, Dims: 2, VCs: v, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	acks := 0
	var lastAck, sumAck int64
	nw.OnDeliver(func(m *kncube.Message) {
		if m.Dst == home {
			acks++
			sumAck += m.Latency()
			if m.DeliverCycle > lastAck {
				lastAck = m.DeliverCycle
			}
		}
	})
	for nwDone := false; !nwDone; {
		nw.Step()
		nwDone = acks >= n-1 || nw.Cycle() > 200000
	}
	if acks < n-1 {
		log.Fatalf("only %d/%d acknowledgements arrived", acks, n-1)
	}
	fmt.Printf("write-invalidation on %v, home node %d\n", cube, home)
	fmt.Printf("acknowledgements collected: %d\n", acks)
	fmt.Printf("collection finished at cycle %d\n", lastAck)
	fmt.Printf("mean acknowledgement latency: %.1f cycles\n", float64(sumAck)/float64(acks))

	// The equivalent steady-state hot-spot fraction for the model: every
	// node sent exactly one extra message to the home node during the
	// collection window.
	window := float64(lastAck)
	hEq := 1.0 / (1.0 + lambda*window) // ack vs background messages per node
	m, err := kncube.SolveModel(
		kncube.ModelParams{K: k, V: v, Lm: lm, H: hEq, Lambda: lambda * (1 + 1/(lambda*window))},
		kncube.ModelOptions{},
	)
	if err != nil {
		fmt.Printf("model at equivalent h=%.2f: saturated (%v)\n", hEq, err)
		return
	}
	fmt.Printf("model at equivalent h=%.2f: hot-spot latency %.1f cycles\n", hEq, m.Hot)
}
