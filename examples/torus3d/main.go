// Torus3d: the paper's introduction motivates its model with the 2-D and
// 3-D tori of practical machines (Cray T3D/T3E, SGI Origin). The published
// analysis covers n = 2; this example uses the repository's general k-ary
// n-cube model (SolveNDim) on an 8x8x8 torus under hot-spot traffic and
// validates it against the flit-level simulator, then contrasts the 2-D
// and 3-D organisations of a 512-node machine at equal bisection load.
package main

import (
	"fmt"
	"log"

	"kncube"
)

func main() {
	const (
		k      = 8
		n      = 3
		v      = 2
		lm     = 16
		h      = 0.25
		lambda = 1e-4
	)

	model, err := kncube.SolveNDim(
		kncube.NDimParams{K: k, N: n, V: v, Lm: lm, H: h, Lambda: lambda},
		kncube.ModelOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("8-ary 3-cube (512 nodes), h=%.0f%%, lambda=%g\n", h*100, lambda)
	fmt.Printf("model:      %.1f cycles (regular %.1f, hot %.1f)\n",
		model.Latency, model.Regular, model.Hot)

	cube, err := kncube.NewCube(k, n)
	if err != nil {
		log.Fatal(err)
	}
	pattern, err := kncube.NewHotSpot(cube, cube.FromCoords([]int{4, 4, 4}), h)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: k, Dims: n, VCs: v, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{
		WarmupCycles: 10000, MaxCycles: 300000, MinMeasured: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation: %.1f ± %.1f cycles (p50 %.0f, p95 %.0f, p99 %.0f)\n",
		res.MeanLatency, res.CI95, res.LatencyP50, res.LatencyP95, res.LatencyP99)
	fmt.Printf("model/sim:  %.3f\n\n", model.Latency/res.MeanLatency)

	// 512 nodes as a 2-D torus instead: longer paths, earlier hot-spot
	// saturation (the hot column aggregates k(k-1) sources instead of the
	// hot tree spreading over three dimensions).
	sat3, err := kncube.SaturationLambda(func(lam float64) error {
		_, err := kncube.SolveNDim(kncube.NDimParams{K: 8, N: 3, V: v, Lm: lm, H: h, Lambda: lam}, kncube.ModelOptions{})
		return err
	}, 1e-8, 0, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	// 512 nodes have no square 2-D torus; compare the classic 16x16 (256
	// nodes) and 23x23 (529 nodes) brackets via the 2-D model.
	sat2, err := kncube.SaturationLambda(func(lam float64) error {
		_, err := kncube.SolveModel(kncube.ModelParams{K: 23, V: v, Lm: lm, H: h, Lambda: lam}, kncube.ModelOptions{})
		return err
	}, 1e-9, 0, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot-spot saturation, 8x8x8 torus:  %.3g msgs/node/cycle\n", sat3)
	fmt.Printf("hot-spot saturation, 23x23 torus:  %.3g msgs/node/cycle\n", sat2)
	fmt.Println("\nthe 3-D organisation sustains a higher per-node hot-spot load: its")
	fmt.Println("hot tree splits the funnel-in over three dimensions, while the 2-D")
	fmt.Println("torus concentrates nearly all of it on the hot column.")
}
