// Barrier: the global-synchronisation scenario from the paper's
// introduction. Every node sends a synchronisation message to one
// distinguished coordinator node — the textbook producer of hot-spot
// traffic [Xu et al.]. This example sweeps the fraction of barrier traffic
// and shows how quickly the coordinator's column saturates, comparing the
// analytical prediction with simulation.
package main

import (
	"fmt"
	"log"

	"kncube"
)

func main() {
	const (
		k      = 8 // 64-node machine
		v      = 2
		lm     = 8    // short synchronisation messages
		lambda = 2e-3 // background + barrier generation rate
	)

	cube, err := kncube.NewCube(k, 2)
	if err != nil {
		log.Fatal(err)
	}
	coordinator := cube.FromCoords([]int{k / 2, k / 2})

	fmt.Printf("barrier coordinator at node %d on a %v\n", coordinator, cube)
	fmt.Printf("%-10s %-14s %-18s %-12s\n", "barrier%", "model(cycles)", "sim(cycles)", "sim hot msg")

	for _, h := range []float64{0, 0.1, 0.25, 0.5, 0.75} {
		modelCell := "saturated"
		if h < 1 {
			m, err := kncube.SolveModel(
				kncube.ModelParams{K: k, V: v, Lm: lm, H: h, Lambda: lambda},
				kncube.ModelOptions{},
			)
			if err == nil {
				modelCell = fmt.Sprintf("%.1f", m.Latency)
			}
		}

		pattern, err := kncube.NewHotSpot(cube, coordinator, h)
		if err != nil {
			log.Fatal(err)
		}
		nw, err := kncube.NewSimulator(kncube.SimConfig{
			K: k, Dims: 2, VCs: v, MsgLen: lm, Lambda: lambda,
			Pattern: pattern, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := nw.Run(kncube.SimRunOptions{
			WarmupCycles: 10000, MaxCycles: 300000, MinMeasured: 4000,
		})
		if err != nil {
			log.Fatal(err)
		}
		simCell := fmt.Sprintf("%.1f ± %.1f", res.MeanLatency, res.CI95)
		if res.Saturated {
			simCell += " (sat)"
		}
		fmt.Printf("%-10.0f %-14s %-18s %.1f\n", h*100, modelCell, simCell, res.MeanHot)
	}
	fmt.Println("\nhot-spot latency rises steeply with the barrier fraction: the")
	fmt.Println("coordinator's column is the bottleneck long before the rest of the")
	fmt.Println("network is loaded — the effect the paper's model quantifies.")
}
