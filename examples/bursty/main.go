// Bursty: the paper's stated future work — non-Poissonian traffic. The
// analytical model assumes Poisson generation (assumption (i)); real
// parallel workloads are bursty. This example drives the simulator with a
// two-state MMPP (Markov-modulated Poisson process) whose mean rate equals
// a Poisson baseline, and quantifies how much the Poisson-based model
// underpredicts latency as burstiness grows — the gap the proposed
// extension would need to close.
package main

import (
	"fmt"
	"log"

	"kncube"
)

func main() {
	const (
		k      = 8
		v      = 2
		lm     = 16
		h      = 0.2
		lambda = 2.5e-3 // mean rate for every arrival process below
	)

	cube, err := kncube.NewCube(k, 2)
	if err != nil {
		log.Fatal(err)
	}
	hot := cube.FromCoords([]int{k / 2, k / 2})

	model, err := kncube.SolveModel(
		kncube.ModelParams{K: k, V: v, Lm: lm, H: h, Lambda: lambda},
		kncube.ModelOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson-based analytical model: %.1f cycles\n\n", model.Latency)
	fmt.Printf("%-22s %-12s %-14s\n", "arrival process", "burstiness", "sim latency")

	run := func(name string, burst float64, factory func(kncube.NodeID) kncube.Arrivals) {
		pattern, err := kncube.NewHotSpot(cube, hot, h)
		if err != nil {
			log.Fatal(err)
		}
		nw, err := kncube.NewSimulator(kncube.SimConfig{
			K: k, Dims: 2, VCs: v, MsgLen: lm,
			Pattern: pattern, ArrivalsFactory: factory, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := nw.Run(kncube.SimRunOptions{
			WarmupCycles: 20000, MaxCycles: 600000, MinMeasured: 6000,
		})
		if err != nil {
			log.Fatal(err)
		}
		cell := fmt.Sprintf("%.1f ± %.1f", res.MeanLatency, res.CI95)
		if res.Saturated {
			cell += " (saturated)"
		}
		fmt.Printf("%-22s %-12.1f %-14s  model/sim %.2f\n", name, burst, cell, model.Latency/res.MeanLatency)
	}

	run("Poisson", 1, func(kncube.NodeID) kncube.Arrivals {
		a, err := kncube.NewPoisson(lambda)
		if err != nil {
			log.Fatal(err)
		}
		return a
	})

	// MMPP variants with the same mean rate and growing peak-to-mean
	// ratios. Sojourn times are long relative to message service so bursts
	// overlap in the network.
	for _, burst := range []float64{2, 4, 8} {
		rateHigh := lambda * burst
		rateLow := lambda * (2 - burst) // keeps the 50/50 mixture mean at lambda
		if rateLow <= 0 {
			rateLow = lambda / 50
			// Rebalance sojourns so the mean stays lambda:
			// (rh·th + rl·tl)/(th+tl) = lambda with th chosen below.
		}
		b := burst
		run(fmt.Sprintf("MMPP x%g peak", b), b, func(kncube.NodeID) kncube.Arrivals {
			// Solve th/tl from the mean-rate constraint.
			tl := 4000.0
			th := tl * (lambda - rateLow) / (rateHigh - lambda)
			a, err := kncube.NewMMPP(rateHigh, rateLow, th, tl)
			if err != nil {
				log.Fatal(err)
			}
			return a
		})
	}

	fmt.Println("\nwith equal mean load, burstier generation drives the simulated")
	fmt.Println("latency well above the Poisson-based analytical prediction — the")
	fmt.Println("motivation for the non-Poissonian extension in the paper's Section 5.")
}
