// Quickstart: evaluate the analytical hot-spot model and cross-check it
// against the flit-level simulator on the paper's reference configuration
// (16-ary 2-cube, 256 nodes, 2 virtual channels, 32-flit messages, 20%
// hot-spot traffic).
package main

import (
	"fmt"
	"log"

	"kncube"
)

func main() {
	const (
		k      = 16
		v      = 2
		lm     = 32
		h      = 0.2
		lambda = 2e-4 // messages per node per cycle
	)

	// 1. The analytical model (Section 3 of the paper): milliseconds to
	// evaluate.
	model, err := kncube.SolveModel(
		kncube.ModelParams{K: k, V: v, Lm: lm, H: h, Lambda: lambda},
		kncube.ModelOptions{},
	)
	if err != nil {
		log.Fatalf("model: %v", err)
	}
	fmt.Printf("analytical model:  mean latency %.1f cycles (regular %.1f, hot %.1f)\n",
		model.Latency, model.Regular, model.Hot)

	// 2. The flit-level simulator (Section 4): the validation instrument.
	cube, err := kncube.NewCube(k, 2)
	if err != nil {
		log.Fatal(err)
	}
	hot := cube.FromCoords([]int{k / 2, k / 2})
	pattern, err := kncube.NewHotSpot(cube, hot, h)
	if err != nil {
		log.Fatal(err)
	}
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: k, Dims: 2, VCs: v, MsgLen: lm, Lambda: lambda,
		Pattern: pattern, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := nw.Run(kncube.SimRunOptions{
		WarmupCycles: 20000, MaxCycles: 400000, MinMeasured: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation:        mean latency %.1f ± %.1f cycles over %d messages\n",
		res.MeanLatency, res.CI95, res.Measured)
	fmt.Printf("model/sim ratio:   %.3f\n", model.Latency/res.MeanLatency)
}
