package kncube_test

// Godoc examples with verified output. The model is deterministic, the
// simulator seeded, so both print stable values.

import (
	"fmt"

	"kncube"
)

func ExampleSolveModel() {
	res, err := kncube.SolveModel(kncube.ModelParams{
		K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
	}, kncube.ModelOptions{})
	if err != nil {
		fmt.Println("saturated:", err)
		return
	}
	fmt.Printf("latency %.0f cycles (regular %.0f, hot %.0f)\n",
		res.Latency, res.Regular, res.Hot)
	// Output:
	// latency 51 cycles (regular 50, hot 55)
}

func ExampleSolveModel_saturated() {
	_, err := kncube.SolveModel(kncube.ModelParams{
		K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.01,
	}, kncube.ModelOptions{})
	fmt.Println(err != nil)
	// Output:
	// true
}

func ExampleSolveUniform() {
	res, err := kncube.SolveUniform(kncube.UniformParams{
		K: 16, Dims: 2, V: 2, Lm: 32, Lambda: 1e-3,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("latency %.0f cycles at channel rate %.4f\n", res.Latency, res.ChannelRate)
	// Output:
	// latency 118 cycles at channel rate 0.0075
}

func ExampleNewSimulator() {
	cube, _ := kncube.NewCube(8, 2)
	pattern, _ := kncube.NewHotSpot(cube, cube.FromCoords([]int{4, 4}), 0.3)
	nw, _ := kncube.NewSimulator(kncube.SimConfig{
		K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: 5e-4,
		Pattern: pattern, Seed: 1,
	})
	res, _ := nw.Run(kncube.SimRunOptions{
		WarmupCycles: 5000, MaxCycles: 200000, MinMeasured: 2000,
	})
	fmt.Println(res.Measured >= 2000, res.Saturated)
	// Output:
	// true false
}

func ExampleSaturationLambda() {
	sat, _ := kncube.SaturationLambda(func(lambda float64) error {
		_, err := kncube.SolveModel(kncube.ModelParams{
			K: 16, V: 2, Lm: 32, H: 0.4, Lambda: lambda,
		}, kncube.ModelOptions{})
		return err
	}, 1e-6, 0, 1e-3)
	fmt.Printf("saturation near %.1e msgs/node/cycle\n", sat)
	// Output:
	// saturation near 3.0e-04 msgs/node/cycle
}
