package kncube_test

// Benchmark harness regenerating the paper's evaluation. One benchmark per
// figure panel (Figures 1 and 2, h = 20/40/70%) plus the ablation studies
// from DESIGN.md. Each panel benchmark sweeps the paper's traffic axis,
// evaluating the analytical model and the flit-level simulator at every
// point, and logs the regenerated figure data (run with -v to see it).
//
// Shapes to expect (EXPERIMENTS.md records a full run): latency flat at
// light load, knee, saturation; saturation rate decreasing in h and Lm;
// model within a few percent of simulation at light load and conservative
// (higher) toward the knee.

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"kncube"
	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// benchBudget keeps a full six-panel regeneration affordable inside the
// benchmark harness; cmd/khs-figures uses the larger default budget.
func benchBudget() experiments.SimBudget {
	return experiments.SimBudget{
		WarmupCycles: 5000, MaxCycles: 120000, MinMeasured: 1500, Seed: 1,
	}
}

func benchmarkPanel(b *testing.B, id string) {
	panel, err := experiments.PanelByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// The sweep engine parallelises the panel's points across the machine;
	// results are bit-identical to the sequential RunPanel.
	sweep := experiments.Sweep{Jobs: runtime.NumCPU(), Budget: benchBudget()}
	for i := 0; i < b.N; i++ {
		res, err := sweep.RunPanels(context.Background(), []experiments.Panel{panel})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var sb strings.Builder
			title := panel.Figure + " " + panel.Label
			if err := experiments.WriteTable(&sb, title, res[0].Points); err != nil {
				b.Fatal(err)
			}
			b.Log("\n" + sb.String())
		}
	}
}

func BenchmarkFigure1H20(b *testing.B) { benchmarkPanel(b, "fig1-h20") }
func BenchmarkFigure1H40(b *testing.B) { benchmarkPanel(b, "fig1-h40") }
func BenchmarkFigure1H70(b *testing.B) { benchmarkPanel(b, "fig1-h70") }
func BenchmarkFigure2H20(b *testing.B) { benchmarkPanel(b, "fig2-h20") }
func BenchmarkFigure2H40(b *testing.B) { benchmarkPanel(b, "fig2-h40") }
func BenchmarkFigure2H70(b *testing.B) { benchmarkPanel(b, "fig2-h70") }

// BenchmarkFiguresSweep regenerates all six panels in one sweep — the
// whole evaluation as a single worker-pool run, the way cmd/khs-figures
// executes it. Compare against the sum of the per-panel benchmarks to see
// the cross-panel parallelism win.
func BenchmarkFiguresSweep(b *testing.B) {
	sweep := experiments.Sweep{Jobs: runtime.NumCPU(), Budget: benchBudget()}
	for i := 0; i < b.N; i++ {
		res, err := sweep.RunPanels(context.Background(), experiments.Figures())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pr := range res {
				sat := 0
				for _, pt := range pr.Points {
					if pt.ModelSaturated {
						sat++
					}
				}
				b.Logf("%s: %d points, %d model-saturated", pr.Panel.ID, len(pr.Points), sat)
			}
		}
	}
}

// BenchmarkAblationEntrance compares the entrance-index policies for the
// service-time recursions (DESIGN.md §4.6): how the OCR-ambiguous S_{·,k}
// subscript is resolved.
func BenchmarkAblationEntrance(b *testing.B) {
	panel, _ := experiments.PanelByID("fig1-h20")
	policies := map[string]core.EntrancePolicy{
		"mean-distance": core.EntranceMeanDistance,
		"kbar":          core.EntranceKBar,
		"worst-case":    core.EntranceWorstCase,
	}
	for i := 0; i < b.N; i++ {
		for name, pol := range policies {
			pts := experiments.ModelCurve(panel, core.Options{Entrance: pol})
			if i == 0 {
				b.Logf("entrance=%s: %s", name, summarise(pts))
			}
		}
	}
}

// BenchmarkAblationBlocking compares the blocking-delay compositions
// (DESIGN.md §4.7): the calibrated VC-occupancy form against the literal
// Eq. 26 readings and the multi-server pool.
func BenchmarkAblationBlocking(b *testing.B) {
	panel, _ := experiments.PanelByID("fig1-h40")
	forms := map[string]core.BlockingForm{
		"vc-occupancy": core.BlockingVCOccupancy,
		"paper-eq26":   core.BlockingPaper,
		"wait-only":    core.BlockingWaitOnly,
		"multi-server": core.BlockingMultiServer,
		"bandwidth":    core.BlockingBandwidth,
	}
	for i := 0; i < b.N; i++ {
		for name, form := range forms {
			pts := experiments.ModelCurve(panel, core.Options{Blocking: form})
			if i == 0 {
				b.Logf("blocking=%s: %s", name, summarise(pts))
			}
		}
	}
}

// BenchmarkAblationVariance compares the service-time variance treatments
// (DESIGN.md §4.7): the paper's (S-Lm)² approximation against
// deterministic service.
func BenchmarkAblationVariance(b *testing.B) {
	panel, _ := experiments.PanelByID("fig1-h70")
	for i := 0; i < b.N; i++ {
		for name, v := range map[string]core.VarianceForm{
			"zero":  core.VarianceZero,
			"paper": core.VariancePaper,
		} {
			pts := experiments.ModelCurve(panel, core.Options{Variance: v})
			if i == 0 {
				b.Logf("variance=%s: %s", name, summarise(pts))
			}
		}
	}
}

// BenchmarkAblationEjection contrasts the paper's contention-free ejection
// (assumption (iv)) with a single 1-flit/cycle ejection channel.
func BenchmarkAblationEjection(b *testing.B) {
	cube := topology.MustNew(8, 2)
	hs, err := traffic.NewHotSpot(cube, 27, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for name, contention := range map[string]bool{"free": false, "contended": true} {
			nw, err := kncube.NewSimulator(kncube.SimConfig{
				K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: 1.5e-3,
				Pattern: hs, Seed: 3, EjectionContention: contention,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := nw.Run(kncube.SimRunOptions{
				WarmupCycles: 5000, MaxCycles: 150000, MinMeasured: 2000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("ejection=%s: latency %.1f (hot %.1f)", name, res.MeanLatency, res.MeanHot)
			}
		}
	}
}

// BenchmarkExtensionBursty exercises the paper's future-work direction:
// MMPP (bursty) generation at the same mean rate as Poisson.
func BenchmarkExtensionBursty(b *testing.B) {
	cube := topology.MustNew(8, 2)
	hs, err := traffic.NewHotSpot(cube, 36, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	const lambda = 1.5e-3
	factories := map[string]func(topology.NodeID) traffic.Arrivals{
		"poisson": func(topology.NodeID) traffic.Arrivals {
			p, _ := traffic.NewPoisson(lambda)
			return p
		},
		"mmpp-4x": func(topology.NodeID) traffic.Arrivals {
			m, _ := traffic.NewMMPP(4*lambda, lambda/50, 4000*(lambda-lambda/50)/(4*lambda-lambda), 4000)
			return m
		},
	}
	for i := 0; i < b.N; i++ {
		for name, f := range factories {
			nw, err := kncube.NewSimulator(kncube.SimConfig{
				K: 8, Dims: 2, VCs: 2, MsgLen: 16,
				Pattern: hs, ArrivalsFactory: f, Seed: 9,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := nw.Run(kncube.SimRunOptions{
				WarmupCycles: 10000, MaxCycles: 200000, MinMeasured: 2000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("arrivals=%s: latency %.1f saturated=%v", name, res.MeanLatency, res.Saturated)
			}
		}
	}
}

// BenchmarkExtensionBidirectional exercises the bidirectional-channel
// generalisation (Section 2's "easily extended" remark): model and
// simulator, against their unidirectional counterparts at equal load.
func BenchmarkExtensionBidirectional(b *testing.B) {
	const lambda = 1.2e-3
	params := kncube.ModelParams{K: 8, V: 2, Lm: 16, H: 0.3, Lambda: lambda}
	cube := topology.MustNew(8, 2)
	hs, err := traffic.NewHotSpot(cube, 36, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		uniModel, err := kncube.SolveModel(params, kncube.ModelOptions{})
		if err != nil {
			b.Fatal(err)
		}
		biModel, err := kncube.SolveBidirectionalModel(params, kncube.ModelOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var sims [2]kncube.SimResult
		for idx, bi := range []bool{false, true} {
			nw, err := kncube.NewSimulator(kncube.SimConfig{
				K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: lambda,
				Pattern: hs, Seed: 2, Bidirectional: bi,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := nw.Run(kncube.SimRunOptions{
				WarmupCycles: 5000, MaxCycles: 150000, MinMeasured: 2000,
			})
			if err != nil {
				b.Fatal(err)
			}
			sims[idx] = res
		}
		if i == 0 {
			b.Logf("unidirectional: model %.1f, sim %.1f", uniModel.Latency, sims[0].MeanLatency)
			b.Logf("bidirectional:  model %.1f, sim %.1f", biModel.Latency, sims[1].MeanLatency)
		}
	}
}

// BenchmarkExtensionAdaptive reproduces the observation behind the paper's
// focus on deterministic routing (its ref [22]): under hot-spot traffic
// the destination fan-in dominates, so adaptive routing's advantage largely
// vanishes — while on permutation traffic it is substantial.
func BenchmarkExtensionAdaptive(b *testing.B) {
	cube := topology.MustNew(8, 2)
	hs, err := traffic.NewHotSpot(cube, 36, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	workloads := map[string]traffic.Pattern{
		"hotspot-50%": hs,
		"transpose":   traffic.Transpose{Cube: cube},
	}
	lambdas := map[string]float64{"hotspot-50%": 8e-4, "transpose": 4e-3}
	for i := 0; i < b.N; i++ {
		for name, pat := range workloads {
			var lat [2]float64
			for idx, routing := range []kncube.Routing{kncube.RoutingDimensionOrder, kncube.RoutingAdaptive} {
				nw, err := kncube.NewSimulator(kncube.SimConfig{
					K: 8, Dims: 2, VCs: 4, MsgLen: 16, Lambda: lambdas[name],
					Pattern: pat, Seed: 6, Routing: routing,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := nw.Run(kncube.SimRunOptions{
					WarmupCycles: 5000, MaxCycles: 200000, MinMeasured: 2500,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat[idx] = res.MeanLatency
			}
			if i == 0 {
				b.Logf("%s: deterministic %.1f vs adaptive %.1f (ratio %.2f)",
					name, lat[0], lat[1], lat[0]/lat[1])
			}
		}
	}
}

// BenchmarkModelSolve measures the cost of one analytical evaluation — the
// model's selling point over simulation (milliseconds vs. minutes).
func BenchmarkModelSolve(b *testing.B) {
	p := kncube.ModelParams{K: 16, V: 2, Lm: 32, H: 0.4, Lambda: 2e-4}
	for i := 0; i < b.N; i++ {
		if _, err := kncube.SolveModel(p, kncube.ModelOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSolveSpecs is the per-variant golden operating shape shared by the
// BenchmarkSolve* family; Lambda is the common light-load point.
var benchSolveSpecs = map[string]kncube.ModelSpec{
	"hotspot-2d":       {K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5},
	"bidirectional-2d": {K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5},
	"uniform":          {K: 16, Dims: 2, V: 2, Lm: 32, H: 0, Lambda: 7.5e-5},
	"hypercube":        {K: 2, Dims: 8, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5},
	"ndim":             {K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5},
}

// benchNearSatLambda is an offered load close to (but below) each variant's
// saturation point at its benchSolveSpecs shape — the regime where the
// damped contraction rate approaches 1 and iteration counts blow up.
var benchNearSatLambda = map[string]float64{
	"hotspot-2d":       2.2e-4,
	"bidirectional-2d": 4.0e-4,
	"uniform":          1.5e-3,
	"hypercube":        1.05e-3,
	"ndim":             2.2e-4,
}

// BenchmarkSolve measures every registered model variant through the
// shared fixed-point driver, one sub-benchmark per registry name
// (BenchmarkSolve/hotspot-2d, BenchmarkSolve/uniform, ...), at a common
// light-load operating point each variant can represent.
func BenchmarkSolve(b *testing.B) {
	for _, name := range kncube.Models() {
		spec, ok := benchSolveSpecs[name]
		if !ok {
			b.Fatalf("no benchmark spec for registered solver %q — add one", name)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kncube.Solve(name, spec, kncube.ModelOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveNearSat compares the damped baseline against safeguarded
// Anderson mixing at every variant's near-saturation operating point,
// reporting the fixed-point round count as iters/op alongside ns/op —
// khs-bench commits both to BENCH_solve.json, where the acceptance
// criterion is a reduced Anderson iteration count on every variant.
func BenchmarkSolveNearSat(b *testing.B) {
	schemes := []struct {
		label string
		accel kncube.Acceleration
	}{
		{"damped", kncube.AccelNone},
		{"anderson", kncube.AccelAnderson},
	}
	for _, name := range kncube.Models() {
		spec := benchSolveSpecs[name]
		spec.Lambda = benchNearSatLambda[name]
		for _, sc := range schemes {
			b.Run(name+"/"+sc.label, func(b *testing.B) {
				var o kncube.ModelOptions
				o.FixPoint.Acceleration = sc.accel
				var iters int64
				for i := 0; i < b.N; i++ {
					res, err := kncube.Solve(name, spec, o)
					if err != nil {
						b.Fatal(err)
					}
					iters += int64(res.Convergence.Iterations)
				}
				b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
			})
		}
	}
}

// BenchmarkSolveBatch runs a sweep-shaped workload — one topology shape,
// a grid of offered loads from light load to near saturation — through
// repeated one-shot Solve calls, the batch driver, and the warm-started
// batch driver. One op is the full grid, so the single/batch ns/op ratio
// is exactly the per-spec speedup of shared preparation; iters/op is the
// grid's summed fixed-point round count (warm starts shrink it).
func BenchmarkSolveBatch(b *testing.B) {
	const model, points = "hotspot-2d", 16
	base := benchSolveSpecs[model]
	lo, hi := base.Lambda, benchNearSatLambda[model]
	specs := make([]kncube.ModelSpec, points)
	for i := range specs {
		specs[i] = base
		specs[i].Lambda = lo + float64(i)*(hi-lo)/(points-1)
	}
	b.Run("single", func(b *testing.B) {
		var iters int64
		for i := 0; i < b.N; i++ {
			for _, sp := range specs {
				res, err := kncube.Solve(model, sp, kncube.ModelOptions{})
				if err != nil {
					b.Fatal(err)
				}
				iters += int64(res.Convergence.Iterations)
			}
		}
		b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	})
	for _, warm := range []bool{false, true} {
		label := "batch"
		if warm {
			label = "batch-warm"
		}
		b.Run(label, func(b *testing.B) {
			var iters int64
			for i := 0; i < b.N; i++ {
				items, err := kncube.SolveBatch(model, specs, kncube.BatchOptions{WarmStart: warm})
				if err != nil {
					b.Fatal(err)
				}
				for j, it := range items {
					if it.Err != nil {
						b.Fatalf("item %d (λ=%g): %v", j, specs[j].Lambda, it.Err)
					}
					iters += int64(it.Result.Convergence.Iterations)
				}
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
		})
	}
}

// BenchmarkSurfaceLookup prices the latency-surface serving path against
// the exact solver it replaces, at an off-grid hotspot-2d query hugging
// the near-saturation operating point — the regime where the exact fixed
// point is at its most expensive and the surface pays off hardest. One op
// answers one (h, λ) query; the surface build is amortised outside the
// timer. BENCH_solve.json tracks the exact/surface ns/op ratio with a
// >= 10x acceptance floor.
func BenchmarkSurfaceLookup(b *testing.B) {
	const model = "hotspot-2d"
	base := benchSolveSpecs[model]
	const nl = 24
	lams := make([]float64, nl)
	for i := range lams {
		lams[i] = base.Lambda + float64(i)*(benchNearSatLambda[model]-base.Lambda)/float64(nl-1)
	}
	sfc, err := kncube.BuildSurface(kncube.SurfaceDef{
		Model: model, K: base.K, Dims: base.Dims, V: base.V, Lm: base.Lm,
		Hs: []float64{0.1, 0.2, 0.3}, Lambdas: lams,
	}, kncube.SurfaceBuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	q := base
	q.Lambda = (lams[nl-2] + lams[nl-1]) / 2 // off-grid, inside the last interval

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kncube.Solve(model, q, kncube.ModelOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("surface", func(b *testing.B) {
		// The speedup only counts if the interpolant still agrees with the
		// exact answer at this query.
		exact, err := kncube.Solve(model, q, kncube.ModelOptions{})
		if err != nil {
			b.Fatal(err)
		}
		lk, err := sfc.Eval(q.H, q.Lambda)
		if err != nil {
			b.Fatal(err)
		}
		if rel := (lk.Latency - exact.Latency) / exact.Latency; rel > 0.01 || rel < -0.01 {
			b.Fatalf("interpolated latency %v vs exact %v: relative error %v beyond 1%%",
				lk.Latency, exact.Latency, rel)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sfc.Eval(q.H, q.Lambda); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorStep measures the simulator's cycle throughput on the
// paper's 256-node network under moderate hot-spot load.
func BenchmarkSimulatorStep(b *testing.B) {
	cube := topology.MustNew(16, 2)
	hs, err := traffic.NewHotSpot(cube, 136, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := kncube.NewSimulator(kncube.SimConfig{
		K: 16, Dims: 2, VCs: 2, MsgLen: 32, Lambda: 2e-4,
		Pattern: hs, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the network into steady state before timing.
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step()
	}
}

// summarise renders a model curve as a compact latency sequence with "sat"
// marking saturated points.
func summarise(pts []experiments.Point) string {
	parts := make([]string, 0, len(pts))
	for _, pt := range pts {
		if pt.ModelSaturated {
			parts = append(parts, "sat")
		} else {
			parts = append(parts, fmt.Sprintf("%.1f", pt.Model))
		}
	}
	return strings.Join(parts, " ")
}
