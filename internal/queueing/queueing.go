// Package queueing provides the queueing-theoretic building blocks of the
// analytical model: the M/G/1 waiting-time formula with the service-time
// variance approximation used throughout the wormhole-modelling literature
// (Draper-Ghosh 1994), and the channel blocking-delay composition of
// Eqs. 26-30 of Loucif, Ould-Khaoua, Min (IPDPS 2005).
//
// All times are in network cycles and all rates in messages/cycle.
package queueing

import (
	"errors"
	"fmt"
	"math"

	"kncube/internal/stats"
)

// ErrUnstable reports a queue whose utilisation is at or above 1, i.e. the
// offered load exceeds the service capacity and the waiting time diverges.
// The analytical model maps this condition to network saturation.
var ErrUnstable = errors.New("queueing: utilisation >= 1 (saturated)")

// MG1Wait returns the mean waiting time of an M/G/1 queue with arrival rate
// lambda, mean service time s and service-time variance variance
// (Pollaczek-Khinchine):
//
//	W = lambda * E[S^2] / (2 (1 - lambda s)),  E[S^2] = s^2 + Var[S].
//
// It returns ErrUnstable when lambda*s >= 1.
func MG1Wait(lambda, s, variance float64) (float64, error) {
	if lambda < 0 || s < 0 || variance < 0 {
		return 0, fmt.Errorf("queueing: negative argument MG1Wait(%v,%v,%v)", lambda, s, variance)
	}
	if stats.IsZero(lambda) || stats.IsZero(s) {
		return 0, nil
	}
	rho := lambda * s
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return lambda * (s*s + variance) / (2 * (1 - rho)), nil
}

// MM1Wait returns the mean waiting time of an M/M/1 queue (service-time
// variance = s^2). Used as a cross-check for MG1Wait in tests.
func MM1Wait(lambda, s float64) (float64, error) {
	return MG1Wait(lambda, s, s*s)
}

// MD1Wait returns the mean waiting time of an M/D/1 queue (deterministic
// service, variance 0).
func MD1Wait(lambda, s float64) (float64, error) {
	return MG1Wait(lambda, s, 0)
}

// PaperWait returns the waiting-time approximation of Eq. 28 of the paper:
// an M/G/1 queue whose service-time variance is approximated by
// (s - Lm)^2, where Lm is the message length in flits. The term (s - Lm)
// is the variable part of the service time (path delay and blocking), and
// treating it as the standard deviation is the approximation the paper
// inherits from Draper-Ghosh:
//
//	W = lambda s^2 (1 + (s-Lm)^2/s^2) / (2 (1 - lambda s)).
func PaperWait(lambda, s, lm float64) (float64, error) {
	if stats.IsZero(s) {
		return 0, nil
	}
	dev := s - lm
	return MG1Wait(lambda, s, dev*dev)
}

// WeightedService returns the rate-weighted mean service time of two
// traffic classes (Eq. 30): (lr*sr + lh*sh) / (lr + lh). It returns 0 when
// both rates are zero.
func WeightedService(lr, sr, lh, sh float64) float64 {
	total := lr + lh
	if stats.IsZero(total) {
		return 0
	}
	return (lr*sr + lh*sh) / total
}

// BlockingProbability returns Eq. 27: the probability that an arriving
// header finds the channel busy, taken as the channel utilisation
// lr*sr + lh*sh, clamped to [0, 1].
func BlockingProbability(lr, sr, lh, sh float64) float64 {
	p := lr*sr + lh*sh
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Blocking returns the mean blocking delay B(lr, sr, lh, sh) of Eq. 26: the
// product of the blocking probability (Eq. 27) and the mean time to acquire
// the channel (Eqs. 28-30), where the channel is treated as an M/G/1 server
// with the aggregate rate and the weighted service time, and lm is the
// message length used by the variance approximation.
//
// It returns ErrUnstable when the aggregate utilisation reaches 1.
func Blocking(lr, sr, lh, sh, lm float64) (float64, error) {
	total := lr + lh
	if stats.IsZero(total) {
		return 0, nil
	}
	sBar := WeightedService(lr, sr, lh, sh)
	w, err := PaperWait(total, sBar, lm)
	if err != nil {
		return 0, err
	}
	return BlockingProbability(lr, sr, lh, sh) * w, nil
}

// BlockingBandwidth is the bandwidth-centric channel blocking delay: the
// blocking probability is the channel occupancy computed from the full
// wormhole holding times (Eq. 27, rates lr/lh with remaining-path service
// times sr/sh), while the waiting time treats the physical channel as an
// M/G/1 server whose per-message service is the flit transmission time
// lm + 1 — during a header stall the link serves other virtual channels, so
// link bandwidth, not holding time, bounds throughput. The service-time
// variance keeps the paper's (S̄ - lm)² approximation with S̄ the weighted
// holding time, so path-length variability still widens the wait. The queue
// destabilises exactly at the physical flit capacity (lr+lh)(lm+1) -> 1.
func BlockingBandwidth(lr, sr, lh, sh, lm float64) (float64, error) {
	total := lr + lh
	if stats.IsZero(total) {
		return 0, nil
	}
	sBar := WeightedService(lr, sr, lh, sh)
	dev := sBar - lm
	w, err := MG1Wait(total, lm+1, dev*dev)
	if err != nil {
		return 0, err
	}
	return BlockingProbability(lr, sr, lh, sh) * w, nil
}

// ErlangB returns the Erlang-B blocking probability for offered load a
// (erlangs) on c servers, computed with the stable recurrence.
func ErlangB(c int, a float64) float64 {
	if c < 1 || a <= 0 {
		return 0
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the probability that an arrival must wait in an M/M/c
// queue with offered load a = lambda*s erlangs; requires a < c for a finite
// queue (returns 1 when a >= c).
func ErlangC(c int, a float64) float64 {
	if c < 1 || a <= 0 {
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	b := ErlangB(c, a)
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// MGcWait returns the standard approximation of the mean waiting time in an
// M/G/c queue (Lee-Longton): the M/M/c waiting time scaled by (1+SCV)/2,
//
//	W ≈ ErlangC(c, a) · s/(c(1-rho)) · (1+Var/s²)/2,  a = lambda·s.
//
// This models a header waiting for any free virtual channel of a class of c
// channels. Returns ErrUnstable when a >= c.
func MGcWait(lambda, s, variance float64, c int) (float64, error) {
	if lambda < 0 || s < 0 || variance < 0 {
		return 0, fmt.Errorf("queueing: negative argument MGcWait(%v,%v,%v)", lambda, s, variance)
	}
	if c < 1 {
		return 0, fmt.Errorf("queueing: MGcWait with %d servers", c)
	}
	if stats.IsZero(lambda) || stats.IsZero(s) {
		return 0, nil
	}
	a := lambda * s
	if a >= float64(c) {
		return 0, ErrUnstable
	}
	rho := a / float64(c)
	scv := variance / (s * s)
	return ErlangC(c, a) * s / (float64(c) * (1 - rho)) * (1 + scv) / 2, nil
}

// PaperWaitMulti is PaperWait generalised to a c-server virtual-channel
// pool, keeping the paper's (s-Lm)² variance approximation.
func PaperWaitMulti(lambda, s, lm float64, c int) (float64, error) {
	if stats.IsZero(s) {
		return 0, nil
	}
	dev := s - lm
	return MGcWait(lambda, s, dev*dev, c)
}

// BlockingMulti is the channel blocking delay with the two traffic classes
// of Blocking but treating the c virtual channels as a server pool: the
// blocking delay is the unconditional M/G/c waiting time at the aggregate
// rate and weighted service time.
func BlockingMulti(lr, sr, lh, sh, lm float64, c int) (float64, error) {
	total := lr + lh
	if stats.IsZero(total) {
		return 0, nil
	}
	sBar := WeightedService(lr, sr, lh, sh)
	return PaperWaitMulti(total, sBar, lm, c)
}

// Utilisation returns lambda*s, the offered load of a single-server queue.
func Utilisation(lambda, s float64) float64 { return lambda * s }

// Stable reports whether a queue with the given arrival rate and mean
// service time has utilisation strictly below 1 - margin.
func Stable(lambda, s, margin float64) bool {
	return lambda*s < 1-margin
}

// SquaredCoefficientOfVariation returns Var/S^2, the SCV used to sanity-check
// the variance approximation in tests. Returns NaN for s == 0.
func SquaredCoefficientOfVariation(s, variance float64) float64 {
	if stats.IsZero(s) {
		return math.NaN()
	}
	return variance / (s * s)
}
