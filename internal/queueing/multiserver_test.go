package queueing

import (
	"errors"
	"math"
	"testing"

	"kncube/internal/stats"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic table values.
	cases := []struct {
		c    int
		a    float64
		want float64
	}{
		{1, 1, 0.5},
		{2, 1, 0.2},
		{2, 2, 0.4},
		{3, 2, 4.0 / 19.0},
	}
	for _, c := range cases {
		if got := ErlangB(c.c, c.a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ErlangB(%d,%v) = %v, want %v", c.c, c.a, got, c.want)
		}
	}
}

func TestErlangBEdge(t *testing.T) {
	if !stats.IsZero(ErlangB(0, 1)) || !stats.IsZero(ErlangB(2, 0)) || !stats.IsZero(ErlangB(2, -1)) {
		t.Error("edge cases should return 0")
	}
}

func TestErlangBDecreasesWithServers(t *testing.T) {
	prev := 1.1
	for c := 1; c <= 10; c++ {
		b := ErlangB(c, 3)
		if b >= prev {
			t.Fatalf("ErlangB not decreasing at c=%d", c)
		}
		prev = b
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C = rho.
	if got := ErlangC(1, 0.3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("ErlangC(1,0.3) = %v, want 0.3", got)
	}
	// M/M/2 with a=1 (rho=0.5): C = B/(1-rho(1-B)) with B=0.2: 0.2/0.6=1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("ErlangC(2,1) = %v, want 1/3", got)
	}
}

func TestErlangCSaturates(t *testing.T) {
	if got := ErlangC(2, 2); !stats.ApproxEqual(got, 1, 0, 0) {
		t.Errorf("ErlangC at a=c = %v, want 1", got)
	}
	if got := ErlangC(2, 5); !stats.ApproxEqual(got, 1, 0, 0) {
		t.Errorf("ErlangC beyond capacity = %v, want 1", got)
	}
}

func TestErlangCBounds(t *testing.T) {
	for c := 1; c <= 8; c++ {
		for a := 0.1; a < float64(c); a += 0.1 {
			got := ErlangC(c, a)
			if got < 0 || got > 1 {
				t.Fatalf("ErlangC(%d,%v) = %v outside [0,1]", c, a, got)
			}
			if b := ErlangB(c, a); got < b {
				t.Fatalf("ErlangC(%d,%v)=%v below ErlangB=%v", c, a, got, b)
			}
		}
	}
}

func TestMGcWaitReducesToMG1(t *testing.T) {
	lambda, s, v := 0.01, 40.0, 100.0
	w1, err1 := MG1Wait(lambda, s, v)
	wc, errc := MGcWait(lambda, s, v, 1)
	if err1 != nil || errc != nil {
		t.Fatal(err1, errc)
	}
	if math.Abs(w1-wc) > 1e-9 {
		t.Errorf("MGcWait(c=1) %v != MG1Wait %v", wc, w1)
	}
}

func TestMGcWaitValidation(t *testing.T) {
	if _, err := MGcWait(-1, 1, 0, 2); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := MGcWait(0.1, 1, 0, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if w, err := MGcWait(0, 5, 0, 2); err != nil || !stats.IsZero(w) {
		t.Error("idle queue should wait 0")
	}
}

func TestMGcWaitUnstable(t *testing.T) {
	_, err := MGcWait(0.1, 30, 0, 2) // a = 3 > 2
	if !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
}

func TestMGcPoolBeatsSplitQueues(t *testing.T) {
	// Pooling c servers always beats c separate queues each fed lambda/c.
	lambda, s := 0.04, 40.0
	for _, c := range []int{2, 4} {
		pool, err := MGcWait(lambda, s, 0, c)
		if err != nil {
			t.Fatal(err)
		}
		split, err := MG1Wait(lambda/float64(c), s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pool >= split {
			t.Errorf("c=%d: pool wait %v not below split wait %v", c, pool, split)
		}
	}
}

func TestMGcWaitMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for lambda := 0.001; lambda*40 < 1.95; lambda += 0.001 {
		w, err := MGcWait(lambda, 40, 64, 2)
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if w < prev {
			t.Fatalf("wait decreased at lambda=%v", lambda)
		}
		prev = w
	}
}

func TestPaperWaitMulti(t *testing.T) {
	// Equals MGcWait with variance (s-lm)^2.
	w1, err1 := PaperWaitMulti(0.01, 50, 32, 2)
	w2, err2 := MGcWait(0.01, 50, 18*18, 2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !stats.ApproxEqual(w1, w2, 0, 0) {
		t.Errorf("PaperWaitMulti %v != MGcWait %v", w1, w2)
	}
	if w, err := PaperWaitMulti(0.01, 0, 32, 2); err != nil || !stats.IsZero(w) {
		t.Error("zero service should wait 0")
	}
}

func TestBlockingMulti(t *testing.T) {
	if b, err := BlockingMulti(0, 0, 0, 0, 32, 2); err != nil || !stats.IsZero(b) {
		t.Error("idle channel should block 0")
	}
	b, err := BlockingMulti(0.001, 40, 0.004, 50, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Errorf("blocking %v, want > 0", b)
	}
	// Symmetric in class order.
	b2, err := BlockingMulti(0.004, 50, 0.001, 40, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-b2) > 1e-12 {
		t.Errorf("not symmetric: %v vs %v", b, b2)
	}
}

func TestBlockingBandwidthStableToFlitCapacity(t *testing.T) {
	// Holding-time utilisation may exceed 1 while the flit load stays
	// below capacity: the bandwidth form must remain finite there.
	lm := 32.0
	lr, sr := 0.0, 0.0
	lh, sh := 0.025, 200.0 // holding utilisation 5, flit load 0.83
	b, err := BlockingBandwidth(lr, sr, lh, sh, lm)
	if err != nil {
		t.Fatalf("unexpected saturation: %v", err)
	}
	if b <= 0 {
		t.Errorf("blocking %v", b)
	}
	// Beyond flit capacity it must fail.
	if _, err := BlockingBandwidth(0, 0, 0.031, 200, lm); !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable beyond capacity", err)
	}
}

func TestBlockingBandwidthIdle(t *testing.T) {
	if b, err := BlockingBandwidth(0, 0, 0, 0, 32); err != nil || !stats.IsZero(b) {
		t.Error("idle channel should block 0")
	}
}
