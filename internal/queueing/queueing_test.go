package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"kncube/internal/stats"
)

func TestMG1WaitZeroLoad(t *testing.T) {
	for _, lambda := range []float64{0, 1e-9} {
		w, err := MG1Wait(lambda, 10, 4)
		if err != nil {
			t.Fatalf("MG1Wait(%v): %v", lambda, err)
		}
		if stats.IsZero(lambda) && !stats.IsZero(w) {
			t.Errorf("zero arrivals should wait 0, got %v", w)
		}
		if w < 0 {
			t.Errorf("negative wait %v", w)
		}
	}
}

func TestMG1WaitZeroService(t *testing.T) {
	w, err := MG1Wait(0.5, 0, 0)
	if err != nil || !stats.IsZero(w) {
		t.Errorf("zero service: w=%v err=%v", w, err)
	}
}

func TestMG1WaitNegativeArgs(t *testing.T) {
	for _, args := range [][3]float64{{-1, 1, 0}, {1, -1, 0}, {0.1, 1, -2}} {
		if _, err := MG1Wait(args[0], args[1], args[2]); err == nil {
			t.Errorf("MG1Wait(%v) accepted negative argument", args)
		}
	}
}

func TestMG1WaitUnstable(t *testing.T) {
	for _, args := range [][2]float64{{0.2, 5}, {0.5, 2}, {1, 1.5}} {
		_, err := MG1Wait(args[0], args[1], 0)
		if !errors.Is(err, ErrUnstable) {
			t.Errorf("MG1Wait(%v): err=%v, want ErrUnstable", args, err)
		}
	}
}

func TestMM1ClosedForm(t *testing.T) {
	// M/M/1: W = rho*s/(1-rho).
	for _, c := range []struct{ lambda, s float64 }{
		{0.1, 2}, {0.05, 10}, {0.009, 100},
	} {
		rho := c.lambda * c.s
		want := rho * c.s / (1 - rho)
		got, err := MM1Wait(c.lambda, c.s)
		if err != nil {
			t.Fatalf("MM1Wait(%v,%v): %v", c.lambda, c.s, err)
		}
		if math.Abs(got-want) > 1e-12*want {
			t.Errorf("MM1Wait(%v,%v) = %v, want %v", c.lambda, c.s, got, want)
		}
	}
}

func TestMD1HalfOfMM1(t *testing.T) {
	// M/D/1 waiting is exactly half the M/M/1 waiting.
	lambda, s := 0.04, 20.0
	wd, err1 := MD1Wait(lambda, s)
	wm, err2 := MM1Wait(lambda, s)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(wd-wm/2) > 1e-12 {
		t.Errorf("M/D/1 %v vs M/M/1 %v: want ratio 0.5", wd, wm)
	}
}

func TestPaperWaitReducesToMD1WhenServiceEqualsLm(t *testing.T) {
	// When s == Lm the approximated variance is 0, so PaperWait == MD1Wait.
	lambda, s := 0.02, 32.0
	wp, err1 := PaperWait(lambda, s, 32)
	wd, err2 := MD1Wait(lambda, s)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !stats.ApproxEqual(wp, wd, 0, 0) {
		t.Errorf("PaperWait %v != MD1 %v", wp, wd)
	}
}

func TestPaperWaitZeroService(t *testing.T) {
	if w, err := PaperWait(0.1, 0, 32); err != nil || !stats.IsZero(w) {
		t.Errorf("PaperWait zero service: %v %v", w, err)
	}
}

func TestWaitMonotoneInLambda(t *testing.T) {
	s, lm := 40.0, 32.0
	prev := -1.0
	for lambda := 0.0005; lambda*s < 0.98; lambda += 0.0005 {
		w, err := PaperWait(lambda, s, lm)
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if w < prev {
			t.Fatalf("wait decreased at lambda=%v: %v < %v", lambda, w, prev)
		}
		prev = w
	}
}

func TestWaitMonotoneInService(t *testing.T) {
	lambda, lm := 0.002, 32.0
	prev := -1.0
	for s := 33.0; lambda*s < 0.95; s += 5 {
		w, err := PaperWait(lambda, s, lm)
		if err != nil {
			t.Fatalf("s=%v: %v", s, err)
		}
		if w < prev {
			t.Fatalf("wait decreased at s=%v: %v < %v", s, w, prev)
		}
		prev = w
	}
}

func TestWaitDivergesNearSaturation(t *testing.T) {
	s, lm := 50.0, 32.0
	w1, err := PaperWait(0.9/s, s, lm)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := PaperWait(0.999/s, s, lm)
	if err != nil {
		t.Fatal(err)
	}
	if w2 < 50*w1 {
		t.Errorf("wait near saturation %v not >> wait at rho=0.9 %v", w2, w1)
	}
}

func TestWeightedService(t *testing.T) {
	cases := []struct {
		lr, sr, lh, sh, want float64
	}{
		{0, 0, 0, 0, 0},
		{1, 10, 0, 99, 10},
		{0, 99, 2, 7, 7},
		{1, 10, 1, 20, 15},
		{3, 10, 1, 30, 15},
	}
	for _, c := range cases {
		if got := WeightedService(c.lr, c.sr, c.lh, c.sh); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("WeightedService(%v,%v,%v,%v) = %v, want %v",
				c.lr, c.sr, c.lh, c.sh, got, c.want)
		}
	}
}

func TestWeightedServiceBounds(t *testing.T) {
	f := func(lr, sr, lh, sh float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Abs(math.Mod(x, 1e6))
		}
		lr, sr = clamp(lr), clamp(sr)
		lh, sh = clamp(lh), clamp(sh)
		got := WeightedService(lr, sr, lh, sh)
		lo, hi := math.Min(sr, sh), math.Max(sr, sh)
		if stats.IsZero(lr + lh) {
			return stats.IsZero(got)
		}
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockingProbabilityClamped(t *testing.T) {
	if p := BlockingProbability(10, 10, 10, 10); !stats.ApproxEqual(p, 1, 0, 0) {
		t.Errorf("overloaded channel probability = %v, want clamp to 1", p)
	}
	if p := BlockingProbability(0, 0, 0, 0); !stats.IsZero(p) {
		t.Errorf("idle channel probability = %v, want 0", p)
	}
	if p := BlockingProbability(0.001, 40, 0.002, 50); math.Abs(p-0.14) > 1e-12 {
		t.Errorf("probability = %v, want 0.14", p)
	}
}

func TestBlockingZeroTraffic(t *testing.T) {
	b, err := Blocking(0, 50, 0, 60, 32)
	if err != nil || !stats.IsZero(b) {
		t.Errorf("idle channel blocking: %v %v", b, err)
	}
}

func TestBlockingSingleClassMatchesComposition(t *testing.T) {
	// With only one class, Blocking = (l*s) * PaperWait(l, s, lm).
	l, s, lm := 0.004, 45.0, 32.0
	w, err := PaperWait(l, s, lm)
	if err != nil {
		t.Fatal(err)
	}
	want := l * s * w
	got, err := Blocking(l, s, 0, 0, lm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Blocking = %v, want %v", got, want)
	}
}

func TestBlockingSymmetricInClasses(t *testing.T) {
	b1, err1 := Blocking(0.001, 40, 0.003, 55, 32)
	b2, err2 := Blocking(0.003, 55, 0.001, 40, 32)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(b1-b2) > 1e-12 {
		t.Errorf("blocking not symmetric: %v vs %v", b1, b2)
	}
}

func TestBlockingUnstable(t *testing.T) {
	_, err := Blocking(0.02, 40, 0.01, 30, 32)
	if !errors.Is(err, ErrUnstable) {
		t.Errorf("err = %v, want ErrUnstable", err)
	}
}

func TestBlockingMonotoneInHotRate(t *testing.T) {
	prev := -1.0
	for lh := 0.0; lh*60+0.001*40 < 0.95; lh += 0.001 {
		b, err := Blocking(0.001, 40, lh, 60, 32)
		if err != nil {
			t.Fatalf("lh=%v: %v", lh, err)
		}
		if b < prev {
			t.Fatalf("blocking decreased at lh=%v", lh)
		}
		prev = b
	}
}

func TestStable(t *testing.T) {
	if !Stable(0.01, 50, 0.05) {
		t.Error("rho=0.5 with margin 0.05 should be stable")
	}
	if Stable(0.02, 50, 0.05) {
		t.Error("rho=1.0 should be unstable")
	}
	if Stable(0.0191, 50, 0.05) {
		t.Error("rho=0.955 with margin 0.05 should be unstable")
	}
}

func TestUtilisation(t *testing.T) {
	if got := Utilisation(0.004, 50); math.Abs(got-0.2) > 1e-15 {
		t.Errorf("Utilisation = %v", got)
	}
}

func TestSCV(t *testing.T) {
	if got := SquaredCoefficientOfVariation(10, 100); !stats.ApproxEqual(got, 1, 0, 0) {
		t.Errorf("SCV exponential = %v, want 1", got)
	}
	if got := SquaredCoefficientOfVariation(10, 0); !stats.IsZero(got) {
		t.Errorf("SCV deterministic = %v, want 0", got)
	}
	if !math.IsNaN(SquaredCoefficientOfVariation(0, 1)) {
		t.Error("SCV with zero mean should be NaN")
	}
}
