// Package stats provides the statistics machinery used by the flit-level
// simulator: numerically-stable running moments (Welford), confidence
// intervals, batch-means steady-state analysis, and latency histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean, and variance of a stream of observations
// using Welford's algorithm. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of observations.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of an approximate 95% confidence interval for
// the mean (normal approximation, z = 1.96).
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// Merge folds another accumulator into r (parallel Welford combination).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.mean += delta * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// FromMoments reconstructs an accumulator from summary moments: n
// observations with the given mean and unbiased sample variance. The
// individual observations are gone, so Min/Max report the mean; the
// reconstructed accumulator merges exactly (Merge) with others built the
// same way, which is how the sweep engine pools independent replications.
func FromMoments(n int64, mean, variance float64) Running {
	if n <= 0 {
		return Running{}
	}
	r := Running{n: n, mean: mean, min: mean, max: mean}
	if n > 1 && variance > 0 {
		r.m2 = variance * float64(n-1)
	}
	return r
}

// PooledMean combines independent replication summaries — per-replication
// observation counts, sample means, and 95% CI half-widths (as reported by
// the simulator) — into one pooled mean and CI. The per-replication
// variance is recovered from the CI half-width (ci = 1.96·sd/√n) and the
// summaries are merged with the parallel Welford combination, so the pooled
// mean is the observation-weighted mean and the pooled CI reflects both
// within- and between-replication spread. Slices must have equal length;
// empty input yields zeros.
func PooledMean(counts []int64, means, ci95s []float64) (mean, ci95 float64, n int64) {
	var acc Running
	for i, c := range counts {
		variance := 0.0
		if c > 1 {
			sd := ci95s[i] * math.Sqrt(float64(c)) / 1.96
			variance = sd * sd
		}
		rep := FromMoments(c, means[i], variance)
		acc.Merge(&rep)
	}
	return acc.Mean(), acc.CI95(), acc.Count()
}

// String implements fmt.Stringer.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g [%.4g, %.4g]",
		r.n, r.Mean(), r.StdDev(), r.min, r.max)
}

// BatchMeans detects steady state with the method the paper's Section 4
// describes informally ("run until a further increase in simulated cycles
// does not change the collected statistics appreciably"): observations are
// grouped into fixed-size batches and the run is declared steady once the
// means of the most recent Window batches all lie within RelTol of their
// common average.
type BatchMeans struct {
	// BatchSize is the number of observations per batch.
	BatchSize int
	// Window is how many trailing batch means must agree.
	Window int
	// RelTol is the allowed relative deviation of each trailing batch mean
	// from the window average.
	RelTol float64

	cur   Running
	means []float64
}

// NewBatchMeans returns a detector with the given parameters; zero values
// fall back to BatchSize 1000, Window 5, RelTol 0.05.
func NewBatchMeans(batchSize, window int, relTol float64) *BatchMeans {
	if batchSize <= 0 {
		batchSize = 1000
	}
	if window <= 0 {
		window = 5
	}
	if relTol <= 0 {
		relTol = 0.05
	}
	return &BatchMeans{BatchSize: batchSize, Window: window, RelTol: relTol}
}

// Add records an observation and returns true when it completed a batch.
func (b *BatchMeans) Add(x float64) bool {
	b.cur.Add(x)
	if int(b.cur.Count()) >= b.BatchSize {
		b.means = append(b.means, b.cur.Mean()) //lint:ignore hotalloc one append per completed batch (thousands of cycles), amortized
		b.cur = Running{}
		return true
	}
	return false
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.means) }

// BatchMeansSlice returns a copy of the completed batch means.
func (b *BatchMeans) BatchMeansSlice() []float64 {
	out := make([]float64, len(b.means))
	copy(out, b.means)
	return out
}

// Steady reports whether the trailing Window batch means agree to within
// RelTol of their average.
func (b *BatchMeans) Steady() bool {
	if len(b.means) < b.Window {
		return false
	}
	tail := b.means[len(b.means)-b.Window:]
	avg := 0.0
	for _, m := range tail {
		avg += m
	}
	avg /= float64(len(tail))
	if IsZero(avg) {
		return true
	}
	for _, m := range tail {
		if math.Abs(m-avg) > b.RelTol*math.Abs(avg) {
			return false
		}
	}
	return true
}

// SteadyMean returns the average of the trailing Window batch means; call
// only after Steady() reports true or when the run budget is exhausted.
func (b *BatchMeans) SteadyMean() float64 {
	if len(b.means) == 0 {
		return b.cur.Mean()
	}
	w := b.Window
	if w > len(b.means) {
		w = len(b.means)
	}
	tail := b.means[len(b.means)-w:]
	avg := 0.0
	for _, m := range tail {
		avg += m
	}
	return avg / float64(len(tail))
}

// Histogram is a fixed-width bucket histogram for latency distributions.
type Histogram struct {
	Width   float64 // bucket width (> 0)
	buckets []int64
	n       int64
	sum     float64
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		width = 1
	}
	return &Histogram{Width: width}
}

// Add records one non-negative observation.
func (h *Histogram) Add(x float64) {
	if x < 0 {
		x = 0
	}
	idx := int(x / h.Width)
	for idx >= len(h.buckets) {
		h.buckets = append(h.buckets, 0) //lint:ignore hotalloc histogram widens to the largest observed latency once, then stays flat
	}
	h.buckets[idx]++
	h.n++
	h.sum += x
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the exact mean of the recorded observations.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) using the
// bucket right edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return float64(i+1) * h.Width
		}
	}
	return float64(len(h.buckets)) * h.Width
}

// Median is Quantile(0.5).
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

// ForEachBucket visits every non-empty bucket in increasing order, passing
// its right edge and count. Exporters (e.g. the telemetry collector) use it
// to fold the histogram into coarser fixed-bound schemes without access to
// the raw observations.
func (h *Histogram) ForEachBucket(f func(upper float64, count int64)) {
	for i, c := range h.buckets {
		if c > 0 {
			f(float64(i+1)*h.Width, c)
		}
	}
}

// ApproxEqual reports whether a and b agree to within the combined
// tolerance |a-b| <= abs + rel*max(|a|, |b|). It is the sanctioned way to
// compare floating-point results in this repo (the floateq analyzer flags
// raw == and !=): NaN compares equal to nothing, and infinities compare
// equal only to themselves.
func ApproxEqual(a, b, rel, abs float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return math.Abs(a-b) <= abs+rel*m
}

// IsZero reports whether x is exactly zero. Exact float comparison is
// banned in this repo (the floateq analyzer), but exact zero is
// legitimately special in two idioms — an unset (zero-value) config field
// selecting defaults, and a zero-load/zero-denominator guard picking a
// degenerate branch. IsZero names that intent; anything tolerance-shaped
// belongs in ApproxEqual instead.
func IsZero(x float64) bool { return x == 0 }

// MeanOf returns the arithmetic mean of xs (0 for an empty slice).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MedianOf returns the median of xs (0 for an empty slice); xs is not
// modified.
func MedianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}
