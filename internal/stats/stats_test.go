package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Count() != 0 || !IsZero(r.Mean()) || !IsZero(r.Variance()) || !IsZero(r.StdErr()) {
		t.Errorf("zero value not neutral: %+v", r)
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Errorf("count %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance %v, want %v", r.Variance(), 32.0/7.0)
	}
	if !ApproxEqual(r.Min(), 2, 0, 0) || !ApproxEqual(r.Max(), 9, 0, 0) {
		t.Errorf("min/max %v/%v", r.Min(), r.Max())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(42)
	if !ApproxEqual(r.Mean(), 42, 0, 0) || !IsZero(r.Variance()) || !ApproxEqual(r.Min(), 42, 0, 0) || !ApproxEqual(r.Max(), 42, 0, 0) {
		t.Errorf("single obs: %+v", r)
	}
}

func TestRunningMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var r Running
	xs := make([]float64, 0, 500)
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*10 + 100
		xs = append(xs, x)
		r.Add(x)
	}
	mean := MeanOf(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	naiveVar := ss / float64(len(xs)-1)
	if math.Abs(r.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs naive %v", r.Mean(), mean)
	}
	if math.Abs(r.Variance()-naiveVar) > 1e-9 {
		t.Errorf("variance %v vs naive %v", r.Variance(), naiveVar)
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	// Constrain magnitudes so squared deviations stay finite.
	clamp := func(x float64) float64 {
		if math.IsNaN(x) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	f := func(a, b []float64) bool {
		var all, left, right Running
		for _, x := range a {
			all.Add(clamp(x))
			left.Add(clamp(x))
		}
		for _, x := range b {
			all.Add(clamp(x))
			right.Add(clamp(x))
		}
		left.Merge(&right)
		if all.Count() != left.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return math.Abs(all.Mean()-left.Mean()) < 1e-9 &&
			math.Abs(all.Variance()-left.Variance()) < 1e-6*(1+all.Variance())
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // no-op
	if a.Count() != 2 || !ApproxEqual(a.Mean(), 2, 0, 0) {
		t.Errorf("merge with empty changed state: %+v", a)
	}
	b.Merge(&a)
	if b.Count() != 2 || !ApproxEqual(b.Mean(), 2, 0, 0) {
		t.Errorf("merge into empty wrong: %+v", b)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var small, large Running
	for i := 0; i < 100; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestRunningString(t *testing.T) {
	var r Running
	r.Add(1)
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestBatchMeansSteadyOnStationaryStream(t *testing.T) {
	b := NewBatchMeans(100, 4, 0.05)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		b.Add(50 + rng.Float64()) // tiny noise around 50
	}
	if !b.Steady() {
		t.Fatal("stationary stream not detected as steady")
	}
	if m := b.SteadyMean(); math.Abs(m-50.5) > 0.2 {
		t.Errorf("steady mean %v, want ~50.5", m)
	}
}

func TestBatchMeansNotSteadyOnTrend(t *testing.T) {
	b := NewBatchMeans(100, 4, 0.05)
	for i := 0; i < 2000; i++ {
		b.Add(float64(i)) // strong upward trend
	}
	if b.Steady() {
		t.Fatal("trending stream declared steady")
	}
}

func TestBatchMeansNeedsWindow(t *testing.T) {
	b := NewBatchMeans(10, 5, 0.05)
	for i := 0; i < 30; i++ { // only 3 batches < window 5
		b.Add(1)
	}
	if b.Steady() {
		t.Error("steady with fewer batches than window")
	}
	if b.Batches() != 3 {
		t.Errorf("batches = %d, want 3", b.Batches())
	}
}

func TestBatchMeansDefaults(t *testing.T) {
	b := NewBatchMeans(0, 0, 0)
	if b.BatchSize != 1000 || b.Window != 5 || !ApproxEqual(b.RelTol, 0.05, 0, 0) {
		t.Errorf("defaults: %+v", b)
	}
}

func TestBatchMeansAddSignalsBatchCompletion(t *testing.T) {
	b := NewBatchMeans(3, 2, 0.1)
	completions := 0
	for i := 0; i < 10; i++ {
		if b.Add(1) {
			completions++
		}
	}
	if completions != 3 {
		t.Errorf("completions = %d, want 3", completions)
	}
}

func TestBatchMeansZeroMeanSteady(t *testing.T) {
	b := NewBatchMeans(10, 2, 0.05)
	for i := 0; i < 40; i++ {
		b.Add(0)
	}
	if !b.Steady() {
		t.Error("all-zero stream should be steady")
	}
}

func TestBatchMeansSliceCopy(t *testing.T) {
	b := NewBatchMeans(2, 2, 0.05)
	for i := 0; i < 6; i++ {
		b.Add(float64(i))
	}
	s := b.BatchMeansSlice()
	if len(s) != 3 {
		t.Fatalf("slice length %d", len(s))
	}
	s[0] = 999
	if ApproxEqual(b.BatchMeansSlice()[0], 999, 0, 0) {
		t.Error("BatchMeansSlice leaks internal storage")
	}
}

func TestBatchMeansSteadyMeanBeforeAnyBatch(t *testing.T) {
	b := NewBatchMeans(100, 2, 0.05)
	b.Add(7)
	if m := b.SteadyMean(); !ApproxEqual(m, 7, 0, 0) {
		t.Errorf("SteadyMean with partial batch = %v, want 7", m)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, x := range []float64{1, 5, 15, 25, 25, 95} {
		h.Add(x)
	}
	if h.Count() != 6 {
		t.Errorf("count %d", h.Count())
	}
	if math.Abs(h.Mean()-166.0/6.0) > 1e-12 {
		t.Errorf("mean %v", h.Mean())
	}
	if got := h.Quantile(0.5); !ApproxEqual(got, 20, 0, 0) { // 3rd of 6 obs (15) is in bucket [10,20)
		t.Errorf("median bucket edge %v, want 20", got)
	}
	if !ApproxEqual(h.Median(), h.Quantile(0.5), 0, 0) {
		t.Error("Median != Quantile(0.5)")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(1)
	h.Add(-5)
	if h.Count() != 1 || !ApproxEqual(h.Quantile(1), 1, 0, 0) {
		t.Errorf("negative obs: count=%d q1=%v", h.Count(), h.Quantile(1))
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(1)
	if !IsZero(h.Quantile(0.9)) || !IsZero(h.Mean()) {
		t.Error("empty histogram should return zeros")
	}
}

func TestHistogramQuantileClampsQ(t *testing.T) {
	h := NewHistogram(1)
	h.Add(0.5)
	if !ApproxEqual(h.Quantile(-1), h.Quantile(0), 0, 0) {
		t.Error("q<0 not clamped")
	}
	if !ApproxEqual(h.Quantile(2), h.Quantile(1), 0, 0) {
		t.Error("q>1 not clamped")
	}
}

func TestHistogramDefaultWidth(t *testing.T) {
	h := NewHistogram(0)
	if !ApproxEqual(h.Width, 1, 0, 0) {
		t.Errorf("width %v, want fallback 1", h.Width)
	}
}

func TestMeanOfMedianOf(t *testing.T) {
	if !IsZero(MeanOf(nil)) || !IsZero(MedianOf(nil)) {
		t.Error("empty slices should yield 0")
	}
	if !ApproxEqual(MeanOf([]float64{1, 2, 3, 4}), 2.5, 0, 0) {
		t.Error("MeanOf wrong")
	}
	if !ApproxEqual(MedianOf([]float64{3, 1, 2}), 2, 0, 0) {
		t.Error("odd MedianOf wrong")
	}
	if !ApproxEqual(MedianOf([]float64{4, 1, 3, 2}), 2.5, 0, 0) {
		t.Error("even MedianOf wrong")
	}
	xs := []float64{9, 1, 5}
	MedianOf(xs)
	if !ApproxEqual(xs[0], 9, 0, 0) {
		t.Error("MedianOf mutated input")
	}
}

func TestFromMomentsRoundTrip(t *testing.T) {
	var r Running
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		r.Add(rng.NormFloat64()*3 + 10)
	}
	re := FromMoments(r.Count(), r.Mean(), r.Variance())
	if re.Count() != r.Count() {
		t.Errorf("count %d, want %d", re.Count(), r.Count())
	}
	if math.Abs(re.Mean()-r.Mean()) > 1e-12 {
		t.Errorf("mean %v, want %v", re.Mean(), r.Mean())
	}
	if math.Abs(re.Variance()-r.Variance()) > 1e-9 {
		t.Errorf("variance %v, want %v", re.Variance(), r.Variance())
	}
}

func TestFromMomentsDegenerate(t *testing.T) {
	if r := FromMoments(0, 5, 2); r.Count() != 0 {
		t.Errorf("n=0 should be empty, got %+v", r)
	}
	r := FromMoments(1, 5, 0)
	if r.Count() != 1 || !ApproxEqual(r.Mean(), 5, 0, 0) || !IsZero(r.Variance()) {
		t.Errorf("n=1 round-trip wrong: %+v", r)
	}
}

func TestFromMomentsMergeMatchesStream(t *testing.T) {
	// Pooling two reconstructed halves must match accumulating the whole
	// stream directly (up to FP noise).
	rng := rand.New(rand.NewSource(11))
	var a, b, whole Running
	for i := 0; i < 400; i++ {
		x := rng.ExpFloat64() * 50
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	ra := FromMoments(a.Count(), a.Mean(), a.Variance())
	rb := FromMoments(b.Count(), b.Mean(), b.Variance())
	ra.Merge(&rb)
	if ra.Count() != whole.Count() {
		t.Fatalf("count %d, want %d", ra.Count(), whole.Count())
	}
	if math.Abs(ra.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("pooled mean %v, want %v", ra.Mean(), whole.Mean())
	}
	if math.Abs(ra.Variance()-whole.Variance()) > 1e-6*whole.Variance() {
		t.Errorf("pooled variance %v, want %v", ra.Variance(), whole.Variance())
	}
}

func TestPooledMean(t *testing.T) {
	// Single replication: pooling must reproduce the inputs.
	mean, ci, n := PooledMean([]int64{2000}, []float64{55.5}, []float64{0.8})
	if n != 2000 || math.Abs(mean-55.5) > 1e-12 || math.Abs(ci-0.8) > 1e-9 {
		t.Errorf("identity pooling: mean=%v ci=%v n=%d", mean, ci, n)
	}
	// Two identical replications: same mean, CI shrinks by ~1/sqrt(2).
	mean2, ci2, n2 := PooledMean([]int64{2000, 2000}, []float64{55.5, 55.5}, []float64{0.8, 0.8})
	if n2 != 4000 || math.Abs(mean2-55.5) > 1e-12 {
		t.Errorf("equal pooling: mean=%v n=%d", mean2, n2)
	}
	want := 0.8 / math.Sqrt2
	if math.Abs(ci2-want) > 0.01*want {
		t.Errorf("pooled CI %v, want ~%v", ci2, want)
	}
	// Weighted mean for unequal counts.
	mean3, _, _ := PooledMean([]int64{1000, 3000}, []float64{40, 60}, []float64{1, 1})
	if math.Abs(mean3-55) > 1e-12 {
		t.Errorf("weighted mean %v, want 55", mean3)
	}
	// Empty input is neutral.
	if m, c, n := PooledMean(nil, nil, nil); !IsZero(m) || !IsZero(c) || n != 0 {
		t.Errorf("empty pooling: %v %v %d", m, c, n)
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, rel, abs float64
		want           bool
	}{
		{1, 1, 0, 0, true},                    // exact match at zero tolerance
		{1, 1 + 1e-12, 0, 0, false},           // zero tolerance is exact
		{1, 1.04, 0.05, 0, true},              // within relative tolerance
		{1, 1.06, 0.05, 0, false},             // outside relative tolerance
		{0, 1e-10, 0, 1e-9, true},             // absolute tolerance near zero
		{0, 1e-8, 0, 1e-9, false},             // outside absolute tolerance
		{math.NaN(), math.NaN(), 1, 1, false}, // NaN equals nothing
		{math.NaN(), 1, 1, 1, false},
		{math.Inf(1), math.Inf(1), 0, 0, true}, // same-sign infinities agree
		{math.Inf(1), math.Inf(-1), 1, 1, false},
		{math.Inf(1), 1e308, 1, 1, false}, // infinity only equals infinity
		{-2, 2, 0.5, 0, false},            // symmetric: rel scales max(|a|,|b|)
		{100, 104, 0.05, 0, true},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.rel, c.abs); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v, %v) = %v, want %v",
				c.a, c.b, c.rel, c.abs, got, c.want)
		}
	}
	if ApproxEqual(1, 2, 0, 0) != ApproxEqual(2, 1, 0, 0) {
		t.Error("ApproxEqual not symmetric")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) {
		t.Error("IsZero(0) = false")
	}
	negZero := math.Copysign(0, -1)
	if !IsZero(negZero) {
		t.Error("IsZero(-0) = false")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.NaN(), math.Inf(1)} {
		if IsZero(x) {
			t.Errorf("IsZero(%v) = true", x)
		}
	}
}
