package telemetry

import (
	"bytes"
	"net/http"
)

// Handler serves the registry in the Prometheus text exposition format
// (version 0.0.4) — the same bytes WritePrometheus produces — so a scrape
// endpoint is one line of wiring: mux.Handle("GET /metrics", Handler(reg)).
// The exposition is rendered into a buffer first, so an encoding failure
// becomes a clean 500 instead of a truncated body.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, "telemetry: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = buf.WriteTo(w)
	})
}
