package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// MetricSnapshot is one series of a Snapshot. Counter and gauge series
// carry Value; histogram series carry Histogram instead.
type MetricSnapshot struct {
	Name      string             `json:"name"`
	Type      MetricType         `json:"type"`
	Help      string             `json:"help,omitempty"`
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// HistogramSnapshot is the point-in-time state of one histogram series.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	// Sum is the sum of all observations.
	Sum float64 `json:"sum"`
	// Buckets are cumulative, in bound order; the last bucket's Le is
	// "+Inf" (a string because JSON has no infinity).
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot is the registry's full state, in the stable order the text
// exposition uses (families by name, series by label signature).
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot captures every registered series.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.view() {
		for _, m := range f.metrics {
			ms := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help}
			if len(m.labels) > 0 {
				ms.Labels = make(map[string]string, len(m.labels))
				for _, p := range m.labels {
					ms.Labels[p.key] = p.value
				}
			}
			switch f.typ {
			case TypeCounter:
				ms.Value = float64(m.c.Value())
			case TypeGauge:
				ms.Value = m.g.Value()
			case TypeHistogram:
				hs := &HistogramSnapshot{Count: m.h.Count(), Sum: m.h.Sum()}
				cum := m.h.Cumulative()
				bounds := m.h.Bounds()
				for i, c := range cum {
					le := "+Inf"
					if i < len(bounds) {
						le = formatFloat(bounds[i])
					}
					hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: le, Count: c})
				}
				ms.Histogram = hs
			}
			snap.Metrics = append(snap.Metrics, ms)
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): per family a # HELP and # TYPE line followed by
// the series in label-signature order; histograms expand into cumulative
// _bucket series plus _sum and _count. The output is deterministic for a
// given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.view() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range f.metrics {
			switch f.typ {
			case TypeCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(m.labels, "", ""), m.c.Value())
			case TypeGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(m.labels, "", ""), formatFloat(m.g.Value()))
			case TypeHistogram:
				cum := m.h.Cumulative()
				bounds := m.h.Bounds()
				for i, c := range cum {
					le := "+Inf"
					if i < len(bounds) {
						le = formatFloat(bounds[i])
					}
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(m.labels, "le", le), c)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(m.labels, "", ""), formatFloat(m.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(m.labels, "", ""), m.h.Count())
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes the registry to path, choosing the format from the
// extension: .json gets the JSON snapshot, anything else (.prom, .txt, …)
// the Prometheus text format.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".json" {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// labelString renders {k="v",...} with an optional extra pair appended
// (the histogram le label); empty when there are no labels at all.
func labelString(pairs []labelPair, extraKey, extraVal string) string {
	if len(pairs) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.value))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(pairs) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
