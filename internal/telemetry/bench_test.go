package telemetry

import (
	"kncube/internal/stats"
	"testing"
	"time"
)

// BenchmarkTelemetryOverhead measures — and asserts — the cost of hot-path
// recording: every sub-benchmark first proves the operation is
// allocation-free (the contract the sim engine's instrumentation relies
// on), then times it.
func BenchmarkTelemetryOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("khs_bench_total", "", nil)
	g := r.Gauge("khs_bench_ratio", "", nil)
	h := r.Histogram("khs_bench_cycles", "", nil, ExponentialBuckets(1, 2, 16))
	tm := r.Timer("khs_bench_seconds", "", nil, ExponentialBuckets(1e-6, 10, 8))

	assertAllocFree := func(b *testing.B, op func()) {
		b.Helper()
		if n := testing.AllocsPerRun(100, op); !stats.IsZero(n) {
			b.Fatalf("recording allocates %v objects/op, want 0", n)
		}
	}

	b.Run("counter", func(b *testing.B) {
		assertAllocFree(b, func() { c.Inc() })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge", func(b *testing.B) {
		assertAllocFree(b, func() { g.Set(1.5) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		assertAllocFree(b, func() { h.Observe(137) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i & 4095))
		}
	})
	b.Run("timer", func(b *testing.B) {
		assertAllocFree(b, func() { tm.Observe(3 * time.Millisecond) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tm.Observe(time.Duration(i) * time.Microsecond)
		}
	})
}

// TestRecordingAllocFree is the same contract as a plain test, so it runs
// under the ordinary tier-1 `go test ./...` (benchmarks do not).
func TestRecordingAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("khs_bench_total", "", nil)
	h := r.Histogram("khs_bench_cycles", "", nil, ExponentialBuckets(1, 2, 16))
	ops := map[string]func(){
		"counter-inc":        func() { c.Inc() },
		"counter-add":        func() { c.Add(3) },
		"histogram-observe":  func() { h.Observe(17) },
		"histogram-observen": func() { h.ObserveN(17, 5) },
	}
	for name, op := range ops {
		if n := testing.AllocsPerRun(100, op); !stats.IsZero(n) {
			t.Errorf("%s allocates %v objects/op, want 0", name, n)
		}
	}
}
