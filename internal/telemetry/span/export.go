package span

import (
	"encoding/json"
	"io"
	"sync"

	"kncube/internal/telemetry"
)

// Record is the exported (JSONL) form of one finished span. It mirrors the
// telemetry.ConvergenceRecord conventions: flat JSON, one record per line,
// snake_case keys, times as integer nanoseconds so records are stable
// under re-encoding.
type Record struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// RemoteParent marks a root whose parent id came from an inbound
	// traceparent header rather than a local span.
	RemoteParent bool   `json:"remote_parent,omitempty"`
	Name         string `json:"name"`
	Start        int64  `json:"start_unix_nano"`
	Duration     int64  `json:"duration_nano"`
	// Attrs holds span attributes. Numeric values decode as json.Number
	// kinds (float64) after a round-trip; tests compare via fmt rendering.
	Attrs         map[string]any `json:"attrs,omitempty"`
	Events        []EventRecord  `json:"events,omitempty"`
	DroppedEvents int            `json:"dropped_events,omitempty"`
}

// EventRecord is one span event in export form; Offset is nanoseconds from
// the span start.
type EventRecord struct {
	Name   string         `json:"name"`
	Offset int64          `json:"offset_nano"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Exporter receives the record batch of every kept trace, root span last.
// Export must be safe for concurrent use; it runs on the goroutine that
// ended the root span, so implementations should be cheap (buffer, not
// flush-to-disk synchronously on large trees).
type Exporter interface {
	Export(recs []Record)
}

// RingExporter retains the most recent traces in memory (FIFO over
// distinct trace ids) for the GET /v1/traces/{id} debug endpoint, and
// optionally tees every kept trace to a JSONL stream using the
// telemetry.TraceSink file conventions (one JSON record per line).
type RingExporter struct {
	mu       sync.Mutex
	capacity int
	byID     map[string][]Record
	order    []string
	enc      *json.Encoder
	err      error
}

// defaultRingCapacity bounds retained traces when capacity <= 0.
const defaultRingCapacity = 256

// NewRingExporter builds an exporter retaining up to capacity distinct
// traces (<= 0 means 256). A non-nil w additionally receives every kept
// trace as JSONL; write errors are sticky and reported by Err.
func NewRingExporter(capacity int, w io.Writer) *RingExporter {
	if capacity <= 0 {
		capacity = defaultRingCapacity
	}
	e := &RingExporter{
		capacity: capacity,
		byID:     make(map[string][]Record, capacity),
	}
	if w != nil {
		e.enc = json.NewEncoder(w)
	}
	return e
}

// Export retains the trace and tees it to the JSONL stream, evicting the
// oldest retained trace beyond capacity.
func (e *RingExporter) Export(recs []Record) {
	if len(recs) == 0 {
		return
	}
	id := recs[0].TraceID
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.byID[id]; !ok {
		e.order = append(e.order, id)
		for len(e.order) > e.capacity {
			delete(e.byID, e.order[0])
			e.order = e.order[1:]
		}
	}
	e.byID[id] = recs
	if e.enc != nil && e.err == nil {
		for i := range recs {
			if err := e.enc.Encode(&recs[i]); err != nil {
				e.err = err
				break
			}
		}
	}
}

// Trace returns the retained records of one trace id (nil if evicted or
// never kept). The slice is shared; callers must not mutate it.
func (e *RingExporter) Trace(id string) []Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.byID[id]
}

// Len reports the number of retained traces (tests).
func (e *RingExporter) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.order)
}

// Err reports the first JSONL write error, if any.
func (e *RingExporter) Err() error {
	// The hot-path audit reaches this method through a false
	// class-hierarchy edge: fixpoint.Solve calls ctx.Err() through the
	// context.Context interface, and per-method resolution matches every
	// Err() error in the load set. A RingExporter is never a solver's ctx.
	//lint:ignore hotblock name/signature collision with context.Context.Err, not actually reachable from the solver
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// ReadRecords decodes an exported span JSONL stream (the inverse of the
// RingExporter tee), reusing the shared telemetry JSONL reader.
func ReadRecords(r io.Reader) ([]Record, error) {
	return telemetry.ReadJSONL[Record](r)
}
