package span

import (
	"fmt"
	"strings"
)

// TraceparentHeader is the W3C trace-context header name carrying the
// caller's trace id across process boundaries.
const TraceparentHeader = "traceparent"

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>") into a Parent.
// Per the spec, version "ff" and all-zero ids are invalid; unknown
// versions are accepted as long as the 00-format prefix parses, which
// keeps us forward-compatible with future spec revisions.
func ParseTraceparent(value string) (Parent, error) {
	parts := strings.Split(strings.TrimSpace(value), "-")
	if len(parts) < 4 {
		return Parent{}, fmt.Errorf("span: traceparent %q: want version-traceid-spanid-flags", value)
	}
	version := parts[0]
	if len(version) != 2 {
		return Parent{}, fmt.Errorf("span: traceparent version %q is not 2 hex characters", version)
	}
	if strings.EqualFold(version, "ff") {
		return Parent{}, fmt.Errorf("span: traceparent version ff is invalid")
	}
	if version == "00" && len(parts) != 4 {
		return Parent{}, fmt.Errorf("span: traceparent %q: version 00 takes exactly 4 fields", value)
	}
	tid, err := ParseTraceID(strings.ToLower(parts[1]))
	if err != nil {
		return Parent{}, err
	}
	sid, err := ParseSpanID(strings.ToLower(parts[2]))
	if err != nil {
		return Parent{}, err
	}
	flags := strings.ToLower(parts[3])
	if len(flags) != 2 {
		return Parent{}, fmt.Errorf("span: traceparent flags %q are not 2 hex characters", parts[3])
	}
	v := hexVal(flags[0])<<4 | hexVal(flags[1])
	return Parent{TraceID: tid, SpanID: sid, Sampled: v&0x01 != 0}, nil
}

// FormatTraceparent renders a Parent as a version-00 traceparent value;
// "" when p carries no usable context.
func FormatTraceparent(p Parent) string {
	if p.IsZero() {
		return ""
	}
	flags := "00"
	if p.Sampled {
		flags = "01"
	}
	return "00-" + p.TraceID.String() + "-" + p.SpanID.String() + "-" + flags
}
