// Package span is the request-tracing half of the observability layer
// (DESIGN.md §11): explicit span trees with start/end times, attributes and
// bounded events, W3C traceparent propagation, tail-based sampling, and a
// ring-buffered JSONL exporter — dependency-free like the rest of
// internal/telemetry. Where the metrics registry (DESIGN.md §7) answers
// "how much", spans answer "why was this request slow": one trace ties a
// khs-serve request to its admission wait, cache outcome, solver
// preparation and fixed-point rounds, and an async sweep job's per-(panel,
// λ, rep) simulation spans link back to the request that launched them.
//
// The design is deliberately head-samples-everything: every request is
// recorded, and the tail policy decides at trace completion which finished
// trees are worth exporting (slow, errored, or explicitly marked via
// (*Span).Keep — e.g. saturated solves and cache-miss leaders). Code that
// runs without a tracer in its context pays nothing: StartChild returns a
// nil *Span, every method is nil-safe, and — critically for the hot-path
// contract — no fixpoint trace callback is installed at all, so a disabled
// or sampled-out solve executes the exact baseline instruction stream.
package span

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace id shared by every span of one trace.
type TraceID [16]byte

// SpanID is the 8-byte W3C span id, unique within a trace.
type SpanID [8]byte

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 16 lowercase hex characters.
func (id SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], id[:])
	return string(b[:])
}

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// ParseTraceID parses 32 hex characters into a TraceID, rejecting the
// all-zero id (invalid per the W3C trace-context spec).
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("span: trace id %q is not %d hex characters", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("span: trace id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("span: all-zero trace id is invalid")
	}
	return id, nil
}

// ParseSpanID parses 16 hex characters into a SpanID, rejecting all-zero.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("span: span id %q is not %d hex characters", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("span: span id %q: %w", s, err)
	}
	if id.IsZero() {
		return id, fmt.Errorf("span: all-zero span id is invalid")
	}
	return id, nil
}

// Attr is one key/value attribute on a span or event. Values should be
// strings, bools, or int/float numbers so the JSONL export round-trips.
type Attr struct {
	Key   string
	Value any
}

// String, Int, Int64, Float64 and Bool build typed attributes.
func String(key, value string) Attr      { return Attr{Key: key, Value: value} }
func Int(key string, value int) Attr     { return Attr{Key: key, Value: int64(value)} }
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: value} }
func Float64(key string, v float64) Attr { return Attr{Key: key, Value: v} }
func Bool(key string, value bool) Attr   { return Attr{Key: key, Value: value} }

// Event is one timestamped point annotation inside a span (e.g. one
// fixed-point substitution round).
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Parent identifies a span context received from (or handed to) another
// process, per the W3C traceparent header.
type Parent struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the recorded flag of the caller's trace context. It is
	// propagated back out verbatim; the tail policy, not the caller's flag,
	// decides local export.
	Sampled bool
}

// IsZero reports whether p carries no usable context.
func (p Parent) IsZero() bool { return p.TraceID.IsZero() || p.SpanID.IsZero() }

// Config tunes a Tracer. The zero value of any field selects the
// documented default.
type Config struct {
	// Exporter receives the spans of every trace the tail policy keeps,
	// batched per trace with the root span last. Nil drops all spans
	// (spans are still built, so Keep marks and attributes stay testable).
	Exporter Exporter
	// Tail is the keep policy applied when a trace's root span ends.
	Tail TailPolicy
	// MaxEventsPerSpan bounds the events retained per span; further events
	// are counted as dropped. 0 means 128. The bound is what keeps a
	// 10000-round fixed-point solve from inflating one span without limit.
	MaxEventsPerSpan int
	// Seed makes span/trace id generation deterministic (tests, replay).
	// 0 seeds from the wall clock.
	Seed int64
}

// defaultMaxEvents bounds per-span events when Config.MaxEventsPerSpan is 0.
const defaultMaxEvents = 128

// Tracer builds spans and runs finished traces through the tail policy and
// exporter. A nil *Tracer is a valid no-op: Start returns a nil span.
type Tracer struct {
	exp       Exporter
	tail      TailPolicy
	maxEvents int
	seed      uint64
	seq       atomic.Uint64
}

// New builds a Tracer from cfg (zero fields defaulted).
func New(cfg Config) *Tracer {
	maxEvents := cfg.MaxEventsPerSpan
	if maxEvents == 0 {
		maxEvents = defaultMaxEvents
	}
	seed := uint64(cfg.Seed)
	if cfg.Seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	tail := cfg.Tail
	if tail.Seed == 0 {
		tail.Seed = cfg.Seed
	}
	// Tail is stored raw; Decide normalizes (normalization maps the
	// negative "disabled" sentinels to 0 and is not idempotent).
	return &Tracer{
		exp:       cfg.Exporter,
		tail:      tail,
		maxEvents: maxEvents,
		seed:      seed,
	}
}

// mix64 is the splitmix64 finaliser: a bijective avalanche mix used for id
// generation and the deterministic ratio-sampling hash. It is not a
// general-purpose RNG — ids only need to be unique and well-spread.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextID draws the next nonzero 64-bit id from the seeded sequence.
func (t *Tracer) nextID() uint64 {
	for {
		if v := mix64(t.seed + t.seq.Add(1)*0x9e3779b97f4a7c15); v != 0 {
			return v
		}
	}
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	hi, lo := t.nextID(), t.nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (56 - 8*i))
		id[8+i] = byte(lo >> (56 - 8*i))
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	v := t.nextID()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (56 - 8*i))
	}
	return id
}

// trace is the per-trace collection state shared by all spans of one tree:
// finished span records accumulate here until the root ends, along with
// the tail-keep reasons any span raised.
type trace struct {
	tracer *Tracer
	id     TraceID

	mu       sync.Mutex
	recs     []Record
	keep     []string
	rootDone bool
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver (the not-recording case) and for concurrent use.
type Span struct {
	tr       *trace
	name     string
	spanID   SpanID
	parentID SpanID
	remote   bool // parentID came from a traceparent header, not a local span
	isRoot   bool
	start    time.Time

	mu      sync.Mutex
	attrs   []Attr
	events  []Event
	dropped int
	ended   bool
}

// ctxKey carries the current *Span; parentKey carries a remote Parent
// extracted from a traceparent header before any local span exists.
type ctxKey struct{}
type parentKey struct{}

// ContextWith returns ctx carrying sp as the current span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span, nil when ctx carries none.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// ContextWithParent returns ctx carrying a remote parent (from an inbound
// traceparent header); the next Start call roots its trace under it.
func ContextWithParent(ctx context.Context, p Parent) context.Context {
	if p.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, parentKey{}, p)
}

// parentFromContext returns the remote parent, if any.
func parentFromContext(ctx context.Context) (Parent, bool) {
	p, ok := ctx.Value(parentKey{}).(Parent)
	return p, ok
}

// Start begins a span under ctx's current span — or, when ctx has none, a
// new trace root adopting a remote Parent if the context carries one. The
// returned context carries the new span for further nesting. A nil tracer
// returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil {
		s := &Span{
			tr:       parent.tr,
			name:     name,
			spanID:   parent.tr.tracer.newSpanID(),
			parentID: parent.spanID,
			start:    time.Now(),
			attrs:    attrs,
		}
		return ContextWith(ctx, s), s
	}
	var (
		tid    TraceID
		pid    SpanID
		remote bool
	)
	if p, ok := parentFromContext(ctx); ok {
		tid, pid, remote = p.TraceID, p.SpanID, true
	} else {
		tid = t.newTraceID()
	}
	tr := &trace{tracer: t, id: tid}
	s := &Span{
		tr:       tr,
		name:     name,
		spanID:   t.newSpanID(),
		parentID: pid,
		remote:   remote,
		isRoot:   true,
		start:    time.Now(),
		attrs:    attrs,
	}
	return ContextWith(ctx, s), s
}

// StartLinked begins a fresh trace root that is causally linked to — but
// not part of — another trace: the async-job case, where a sweep outlives
// the HTTP request that launched it. The link is recorded as the
// link.trace_id / link.span_id attributes on the new root.
func (t *Tracer) StartLinked(ctx context.Context, name string, link Parent, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr := &trace{tracer: t, id: t.newTraceID()}
	s := &Span{
		tr:     tr,
		name:   name,
		spanID: t.newSpanID(),
		isRoot: true,
		start:  time.Now(),
		attrs:  attrs,
	}
	if !link.IsZero() {
		s.attrs = append(s.attrs,
			String("link.trace_id", link.TraceID.String()),
			String("link.span_id", link.SpanID.String()))
	}
	return ContextWith(ctx, s), s
}

// StartChild begins a span under ctx's current span, through that span's
// own tracer. When ctx carries no span it returns (ctx, nil): libraries
// can instrument unconditionally and pay nothing unless a tracer is
// upstream.
func StartChild(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tr.tracer.Start(ctx, name, attrs...)
}

// TraceID returns the span's trace id (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SpanID returns the span's id (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.spanID
}

// SetAttr sets one attribute, overwriting an existing key.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// AttrValue returns the value of one attribute (the access logger reads
// handler-set attributes like the cache outcome back off the root span).
func (s *Span) AttrValue(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			return s.attrs[i].Value, true
		}
	}
	return nil, false
}

// Event appends a timestamped event, bounded by the tracer's
// MaxEventsPerSpan; events beyond the bound are counted, not stored.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= s.tr.tracer.maxEvents {
		s.dropped++
		return
	}
	s.events = append(s.events, Event{Name: name, Time: time.Now(), Attrs: attrs})
}

// Keep marks the whole trace as must-export, overriding the ratio rule of
// the tail policy (slow and marked traces are always kept). Handlers mark
// saturated solves, 4xx/5xx responses, and cache-miss leaders.
func (s *Span) Keep(reason string) {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, r := range tr.keep {
		if r == reason {
			return
		}
	}
	tr.keep = append(tr.keep, reason)
}

// End finishes the span. Ending the root span completes the trace: the
// collected records run through the tail policy and, if kept, the
// exporter. End is idempotent; spans ended after their root are dropped
// (the trace has already shipped).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.buildRecord(now)
	s.mu.Unlock()

	tr := s.tr
	tr.mu.Lock()
	if tr.rootDone {
		tr.mu.Unlock()
		return
	}
	tr.recs = append(tr.recs, rec)
	if !s.isRoot {
		tr.mu.Unlock()
		return
	}
	tr.rootDone = true
	recs, keep := tr.recs, tr.keep
	tr.recs = nil
	tr.mu.Unlock()
	tr.tracer.finish(recs, rec, keep)
}

// buildRecord converts the span into its export form; called under s.mu.
func (s *Span) buildRecord(end time.Time) Record {
	rec := Record{
		TraceID:       s.tr.id.String(),
		SpanID:        s.spanID.String(),
		Name:          s.name,
		Start:         s.start.UnixNano(),
		Duration:      end.Sub(s.start).Nanoseconds(),
		DroppedEvents: s.dropped,
	}
	if !s.parentID.IsZero() {
		rec.ParentID = s.parentID.String()
	}
	rec.RemoteParent = s.remote
	if len(s.attrs) > 0 {
		rec.Attrs = attrMap(s.attrs)
	}
	if len(s.events) > 0 {
		rec.Events = make([]EventRecord, len(s.events))
		for i, ev := range s.events {
			rec.Events[i] = EventRecord{
				Name:   ev.Name,
				Offset: ev.Time.Sub(s.start).Nanoseconds(),
				Attrs:  attrMap(ev.Attrs),
			}
		}
	}
	return rec
}

// finish applies the tail policy to a completed trace and exports it when
// kept, stamping the winning keep reason on the root record.
func (t *Tracer) finish(recs []Record, root Record, keep []string) {
	if t.exp == nil {
		return
	}
	ok, reason := t.tail.Decide(root, keep)
	if !ok {
		return
	}
	for i := range recs {
		if recs[i].SpanID == root.SpanID {
			if recs[i].Attrs == nil {
				recs[i].Attrs = make(map[string]any, 1)
			}
			recs[i].Attrs["tail.keep"] = reason
		}
	}
	t.exp.Export(recs)
}

// attrMap flattens attributes for export; later keys win, matching
// SetAttr's overwrite semantics for attrs passed at Start.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
