package span

import "time"

// TailPolicy decides, once a trace's root span has ended, whether the
// finished tree is exported. Head sampling is always-on (every request
// records spans); the tail decision is where cost is controlled, and it
// can see what head sampling cannot — the request's actual duration and
// outcome. Decision order:
//
//  1. any Keep reason raised on the trace (saturated solve, cache-miss
//     leader, 4xx/5xx, ...) — always kept;
//  2. root duration >= SlowThreshold — always kept;
//  3. deterministic ratio sampling on the trace id — kept with
//     probability KeepRatio.
type TailPolicy struct {
	// SlowThreshold keeps any trace whose root span lasted at least this
	// long. 0 means the 250ms default; negative disables the slow rule.
	SlowThreshold time.Duration
	// KeepRatio is the fraction of remaining traces kept, in [0, 1].
	// 0 means 1 (keep everything — the debug-friendly default for a ring
	// buffer that is bounded anyway); negative means 0 (keep none).
	KeepRatio float64
	// Seed perturbs the deterministic ratio hash so replays can be
	// steered; the decision for a given trace id is a pure function of
	// (Seed, trace id).
	Seed int64
}

// defaultSlowThreshold keeps any request at least this slow.
const defaultSlowThreshold = 250 * time.Millisecond

// normalized resolves the zero-value defaults into explicit settings.
func (p TailPolicy) normalized() TailPolicy {
	if p.SlowThreshold == 0 {
		p.SlowThreshold = defaultSlowThreshold
	}
	//lint:ignore floateq zero-value policy field means unset
	if p.KeepRatio == 0 {
		p.KeepRatio = 1
	} else if p.KeepRatio < 0 {
		p.KeepRatio = 0
	} else if p.KeepRatio > 1 {
		p.KeepRatio = 1
	}
	return p
}

// Decide reports whether a trace with the given root record and keep
// reasons is exported, and the reason label stamped on the root span as
// the tail.keep attribute ("" when dropped). Exported for the sampler
// unit suite; Tracer.finish is the production caller.
func (p TailPolicy) Decide(root Record, keep []string) (bool, string) {
	p = p.normalized()
	if len(keep) > 0 {
		return true, keep[0]
	}
	if p.SlowThreshold > 0 && time.Duration(root.Duration) >= p.SlowThreshold {
		return true, "slow"
	}
	if p.KeepRatio >= 1 {
		return true, "ratio"
	}
	if p.KeepRatio <= 0 {
		return false, ""
	}
	if ratioHash(p.Seed, root.TraceID) < p.KeepRatio {
		return true, "ratio"
	}
	return false, ""
}

// ratioHash maps (seed, trace id) to a uniform [0, 1) value via the
// splitmix64 finaliser over the first 8 bytes of the hex trace id. Purely
// deterministic — no RNG state — so followers of the same trace agree and
// tests can pick ids on either side of the threshold.
func ratioHash(seed int64, traceID string) float64 {
	var x uint64
	for i := 0; i < len(traceID) && i < 16; i++ {
		x = x<<4 | uint64(hexVal(traceID[i]))
	}
	const scale = 1.0 / (1 << 53)
	return float64(mix64(uint64(seed)^x)>>11) * scale
}

// hexVal decodes one lowercase-hex digit (0 for anything else — malformed
// ids still hash deterministically).
func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	}
	return 0
}
