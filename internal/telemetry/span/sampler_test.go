package span

import (
	"testing"
	"time"
)

func TestTailKeepReasonsWin(t *testing.T) {
	p := TailPolicy{SlowThreshold: -1, KeepRatio: -1}
	root := Record{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Duration: int64(time.Hour)}
	ok, reason := p.Decide(root, []string{"cache-miss", "saturated"})
	if !ok || reason != "cache-miss" {
		t.Fatalf("Decide = %v, %q; want kept with first reason", ok, reason)
	}
	if ok, _ := p.Decide(root, nil); ok {
		t.Fatal("fully-disabled policy kept an unmarked trace")
	}
}

func TestTailSlowRule(t *testing.T) {
	p := TailPolicy{SlowThreshold: 100 * time.Millisecond, KeepRatio: -1}
	slow := Record{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Duration: int64(150 * time.Millisecond)}
	fast := Record{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Duration: int64(50 * time.Millisecond)}
	if ok, reason := p.Decide(slow, nil); !ok || reason != "slow" {
		t.Fatalf("slow trace: Decide = %v, %q", ok, reason)
	}
	if ok, _ := p.Decide(fast, nil); ok {
		t.Fatal("fast trace kept despite ratio 0")
	}

	// The zero value defaults to 250ms.
	def := TailPolicy{KeepRatio: -1}
	border := Record{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Duration: int64(defaultSlowThreshold)}
	if ok, _ := def.Decide(border, nil); !ok {
		t.Fatal("default threshold did not keep a 250ms trace")
	}
}

func TestTailRatioDefaultsToKeepAll(t *testing.T) {
	p := TailPolicy{SlowThreshold: -1}
	root := Record{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736"}
	if ok, reason := p.Decide(root, nil); !ok || reason != "ratio" {
		t.Fatalf("zero-value ratio must keep all: %v, %q", ok, reason)
	}
}

func TestTailRatioDeterministic(t *testing.T) {
	p := TailPolicy{SlowThreshold: -1, KeepRatio: 0.5, Seed: 9}
	// The decision is a pure function of (seed, trace id): same inputs,
	// same answer, every time.
	ids := []string{
		"4bf92f3577b34da6a3ce929d0e0e4736",
		"0af7651916cd43dd8448eb211c80319c",
		"00000000000000000000000000000001",
		"ffffffffffffffffffffffffffffffff",
	}
	first := make(map[string]bool, len(ids))
	for _, id := range ids {
		ok, _ := p.Decide(Record{TraceID: id}, nil)
		first[id] = ok
	}
	for trial := 0; trial < 3; trial++ {
		for _, id := range ids {
			if ok, _ := p.Decide(Record{TraceID: id}, nil); ok != first[id] {
				t.Fatalf("trace %s: decision flipped across calls", id)
			}
		}
	}
	// A different seed must be able to flip at least one decision across a
	// spread of ids (the hash actually depends on the seed).
	flipped := false
	other := TailPolicy{SlowThreshold: -1, KeepRatio: 0.5, Seed: 10}
	for _, id := range ids {
		if ok, _ := other.Decide(Record{TraceID: id}, nil); ok != first[id] {
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("seed change did not alter any decision")
	}
}

func TestTailRatioApproximatesFraction(t *testing.T) {
	p := TailPolicy{SlowThreshold: -1, KeepRatio: 0.25, Seed: 3}
	tr := New(Config{Seed: 17})
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		id := tr.newTraceID().String()
		if ok, _ := p.Decide(Record{TraceID: id}, nil); ok {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.20 || frac > 0.30 {
		t.Fatalf("kept fraction %.3f far from 0.25", frac)
	}
}

func TestRatioHashRange(t *testing.T) {
	tr := New(Config{Seed: 5})
	for i := 0; i < 1000; i++ {
		v := ratioHash(11, tr.newTraceID().String())
		if v < 0 || v >= 1 {
			t.Fatalf("ratioHash out of [0,1): %v", v)
		}
	}
}
