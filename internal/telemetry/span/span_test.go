package span

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// tracer returns a deterministic tracer exporting into a fresh ring.
func tracer(t *testing.T, cfg Config) (*Tracer, *RingExporter) {
	t.Helper()
	ring := NewRingExporter(0, nil)
	if cfg.Exporter == nil {
		cfg.Exporter = ring
	} else {
		ring = nil
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(cfg), ring
}

func TestSpanTreeExport(t *testing.T) {
	tr, ring := tracer(t, Config{})
	ctx, root := tr.Start(context.Background(), "http POST /v1/solve", String("http.method", "POST"))
	ctx2, child := tr.Start(ctx, "solve")
	_, grand := tr.Start(ctx2, "fixpoint.solve")
	grand.SetAttr("iterations", int64(17))
	grand.Event("round", Int("iteration", 1), Float64("max_rel_delta", 0.5))
	grand.End()
	child.End()
	root.SetAttr("http.status", int64(200))
	root.End()

	recs := ring.Trace(root.TraceID().String())
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Records accumulate in end order: grandchild, child, root.
	g, c, r := recs[0], recs[1], recs[2]
	if r.ParentID != "" || r.Name != "http POST /v1/solve" {
		t.Fatalf("root record wrong: %+v", r)
	}
	if c.ParentID != r.SpanID {
		t.Fatalf("child parent %q != root span %q", c.ParentID, r.SpanID)
	}
	if g.ParentID != c.SpanID {
		t.Fatalf("grandchild parent %q != child span %q", g.ParentID, c.SpanID)
	}
	for _, rec := range recs {
		if rec.TraceID != root.TraceID().String() {
			t.Fatalf("trace id mismatch: %q vs %q", rec.TraceID, root.TraceID())
		}
	}
	if g.Attrs["iterations"] != int64(17) {
		t.Fatalf("grandchild attrs = %v", g.Attrs)
	}
	if len(g.Events) != 1 || g.Events[0].Name != "round" {
		t.Fatalf("grandchild events = %v", g.Events)
	}
	if r.Attrs["tail.keep"] == nil {
		t.Fatalf("root not stamped with tail.keep: %v", r.Attrs)
	}
}

func TestRemoteParentAdopted(t *testing.T) {
	tr, ring := tracer(t, Config{})
	p, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	ctx := ContextWithParent(context.Background(), p)
	_, root := tr.Start(ctx, "http GET /healthz")
	root.End()

	if got := root.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id %q did not adopt caller's", got)
	}
	recs := ring.Trace("4bf92f3577b34da6a3ce929d0e0e4736")
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].ParentID != "00f067aa0ba902b7" || !recs[0].RemoteParent {
		t.Fatalf("root record did not keep remote parent: %+v", recs[0])
	}
}

func TestStartLinkedFreshTraceWithLink(t *testing.T) {
	tr, ring := tracer(t, Config{})
	ctx, req := tr.Start(context.Background(), "http POST /v1/sweeps")
	_, job := tr.StartLinked(context.Background(), "sweep.job",
		Parent{TraceID: req.TraceID(), SpanID: req.SpanID()})
	if job.TraceID() == req.TraceID() {
		t.Fatal("linked job must start a fresh trace")
	}
	job.End()
	req.End()
	_ = ctx

	recs := ring.Trace(job.TraceID().String())
	if len(recs) != 1 {
		t.Fatalf("got %d job records, want 1", len(recs))
	}
	if recs[0].Attrs["link.trace_id"] != req.TraceID().String() {
		t.Fatalf("job link attrs = %v, want trace %s", recs[0].Attrs, req.TraceID())
	}
	if recs[0].Attrs["link.span_id"] != req.SpanID().String() {
		t.Fatalf("job link span = %v, want %s", recs[0].Attrs, req.SpanID())
	}
}

func TestStartChildWithoutTracerIsNil(t *testing.T) {
	ctx, sp := StartChild(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("StartChild without an upstream span must return nil")
	}
	// The full nil-safe surface must not panic.
	sp.SetAttr("k", 1)
	sp.Event("e")
	sp.Keep("r")
	sp.End()
	if got := sp.TraceID(); !got.IsZero() {
		t.Fatalf("nil span trace id = %v", got)
	}
	if _, ok := sp.AttrValue("k"); ok {
		t.Fatal("nil span must report no attrs")
	}
	if sp2 := FromContext(ctx); sp2 != nil {
		t.Fatal("context must not gain a span")
	}

	var nilTracer *Tracer
	_, sp3 := nilTracer.Start(context.Background(), "x")
	if sp3 != nil {
		t.Fatal("nil tracer must start nil spans")
	}
}

func TestKeepOverridesDrop(t *testing.T) {
	tr, ring := tracer(t, Config{Tail: TailPolicy{KeepRatio: -1, SlowThreshold: -1}})
	_, dropped := tr.Start(context.Background(), "drop-me")
	dropped.End()
	if got := ring.Len(); got != 0 {
		t.Fatalf("dropped trace was exported (%d retained)", got)
	}

	_, kept := tr.Start(context.Background(), "keep-me")
	kept.Keep("saturated")
	kept.End()
	recs := ring.Trace(kept.TraceID().String())
	if len(recs) != 1 {
		t.Fatalf("kept trace not exported: %d records", len(recs))
	}
	if recs[0].Attrs["tail.keep"] != "saturated" {
		t.Fatalf("tail.keep = %v, want saturated", recs[0].Attrs["tail.keep"])
	}
}

func TestEventBound(t *testing.T) {
	tr, ring := tracer(t, Config{MaxEventsPerSpan: 3})
	_, sp := tr.Start(context.Background(), "bounded")
	for i := 0; i < 10; i++ {
		sp.Event("round", Int("iteration", i))
	}
	sp.End()
	recs := ring.Trace(sp.TraceID().String())
	if len(recs) != 1 || len(recs[0].Events) != 3 || recs[0].DroppedEvents != 7 {
		t.Fatalf("bounded span = %+v", recs[0])
	}
}

func TestEndIdempotentAndLateChildDropped(t *testing.T) {
	tr, ring := tracer(t, Config{})
	ctx, root := tr.Start(context.Background(), "root")
	_, child := tr.Start(ctx, "late")
	root.End()
	root.End() // idempotent
	child.End()

	recs := ring.Trace(root.TraceID().String())
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 (late child dropped)", len(recs))
	}
}

func TestDeterministicIDs(t *testing.T) {
	a := New(Config{Seed: 7})
	b := New(Config{Seed: 7})
	_, sa := a.Start(context.Background(), "x")
	_, sb := b.Start(context.Background(), "x")
	if sa.TraceID() != sb.TraceID() || sa.SpanID() != sb.SpanID() {
		t.Fatalf("same seed produced different ids: %v/%v vs %v/%v",
			sa.TraceID(), sa.SpanID(), sb.TraceID(), sb.SpanID())
	}
	_, sa2 := a.Start(context.Background(), "y")
	if sa2.TraceID() == sa.TraceID() {
		t.Fatal("consecutive traces must get distinct ids")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ring := NewRingExporter(8, &buf)
	tr := New(Config{Exporter: ring, Seed: 42})
	ctx, root := tr.Start(context.Background(), "http POST /v1/solve")
	_, child := tr.Start(ctx, "solve", String("cache", "miss"))
	child.Event("round", Int("iteration", 1))
	child.End()
	root.End()
	if err := ring.Err(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("round-tripped %d records, want 2", len(got))
	}
	if got[0].Name != "solve" || got[0].Attrs["cache"] != "miss" {
		t.Fatalf("child record = %+v", got[0])
	}
	if got[0].Events[0].Name != "round" {
		t.Fatalf("child events = %+v", got[0].Events)
	}
	if got[1].Name != "http POST /v1/solve" || got[1].ParentID != "" {
		t.Fatalf("root record = %+v", got[1])
	}
	if got[0].TraceID != got[1].TraceID {
		t.Fatal("trace ids diverged across the round trip")
	}
}

func TestRingEviction(t *testing.T) {
	ring := NewRingExporter(2, nil)
	tr := New(Config{Exporter: ring, Seed: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		_, sp := tr.Start(context.Background(), "r")
		sp.End()
		ids = append(ids, sp.TraceID().String())
	}
	if ring.Len() != 2 {
		t.Fatalf("ring retained %d traces, want 2", ring.Len())
	}
	if ring.Trace(ids[0]) != nil {
		t.Fatal("oldest trace must be evicted")
	}
	if ring.Trace(ids[1]) == nil || ring.Trace(ids[2]) == nil {
		t.Fatal("recent traces must be retained")
	}
}

func TestSetAttrOverwritesAndAttrValue(t *testing.T) {
	tr, _ := tracer(t, Config{})
	_, sp := tr.Start(context.Background(), "x", String("cache", "miss"))
	sp.SetAttr("cache", "hit")
	if v, ok := sp.AttrValue("cache"); !ok || v != "hit" {
		t.Fatalf("AttrValue = %v, %v", v, ok)
	}
	sp.End()
}

func TestTraceparentParseFormat(t *testing.T) {
	good := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	p, err := ParseTraceparent(good)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sampled {
		t.Fatal("flags 01 must parse as sampled")
	}
	if got := FormatTraceparent(p); got != good {
		t.Fatalf("round trip = %q, want %q", got, good)
	}
	if got := FormatTraceparent(Parent{}); got != "" {
		t.Fatalf("zero parent formatted as %q", got)
	}

	bad := []string{
		"",
		"00-xyz-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	}
	for _, v := range bad {
		if _, err := ParseTraceparent(v); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
	// Unknown (non-ff) versions with trailing fields are accepted.
	if _, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestConcurrentSpansOneTrace(t *testing.T) {
	tr, ring := tracer(t, Config{})
	ctx, root := tr.Start(context.Background(), "root")
	done := make(chan struct{})
	const workers = 8
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			_, sp := tr.Start(ctx, "worker", Int("i", i))
			sp.Event("tick")
			sp.End()
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	root.End()
	recs := ring.Trace(root.TraceID().String())
	if len(recs) != workers+1 {
		t.Fatalf("got %d records, want %d", len(recs), workers+1)
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.SpanID] {
			t.Fatalf("duplicate span id %s", r.SpanID)
		}
		seen[r.SpanID] = true
	}
}

func TestIDStringForms(t *testing.T) {
	tid, err := ParseTraceID(strings.Repeat("ab", 16))
	if err != nil {
		t.Fatal(err)
	}
	if tid.String() != strings.Repeat("ab", 16) {
		t.Fatalf("trace id round trip = %q", tid.String())
	}
	if _, err := ParseTraceID("short"); err == nil {
		t.Fatal("short trace id accepted")
	}
	sid, err := ParseSpanID(strings.Repeat("cd", 8))
	if err != nil {
		t.Fatal(err)
	}
	if sid.String() != strings.Repeat("cd", 8) {
		t.Fatalf("span id round trip = %q", sid.String())
	}
	if _, err := ParseSpanID(strings.Repeat("zz", 8)); err == nil {
		t.Fatal("non-hex span id accepted")
	}
}

func TestSlowRootKept(t *testing.T) {
	ring := NewRingExporter(4, nil)
	tr := New(Config{
		Exporter: ring,
		Seed:     42,
		Tail:     TailPolicy{SlowThreshold: time.Nanosecond, KeepRatio: -1},
	})
	_, sp := tr.Start(context.Background(), "slow")
	time.Sleep(time.Millisecond)
	sp.End()
	recs := ring.Trace(sp.TraceID().String())
	if len(recs) != 1 || recs[0].Attrs["tail.keep"] != "slow" {
		t.Fatalf("slow trace not kept as slow: %+v", recs)
	}
}
