package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"kncube/internal/stats"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if !stats.ApproxEqual(g.Value(), 1.5, 0, 1e-12) {
		t.Fatalf("Value = %v, want 1.5", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	h.ObserveN(2, 3)
	if got := h.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if !stats.ApproxEqual(h.Sum(), 0.5+1+1.5+4+100+3*2, 1e-12, 0) {
		t.Fatalf("Sum = %v", h.Sum())
	}
	// le convention: observations equal to a bound land in that bound.
	want := []int64{2, 6, 7, 8}
	got := h.Cumulative()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v", got, want)
		}
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	for i, want := range []float64{1, 3, 5} {
		if !stats.ApproxEqual(lin[i], want, 0, 1e-12) {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExponentialBuckets(1, 4, 3)
	for i, want := range []float64{1, 4, 16} {
		if !stats.ApproxEqual(exp[i], want, 0, 1e-12) {
			t.Fatalf("ExponentialBuckets = %v", exp)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("khs_test_total", "help", Labels{"k": "v"})
	b := r.Counter("khs_test_total", "help", Labels{"k": "v"})
	if a != b {
		t.Fatalf("same (name, labels) returned distinct counters")
	}
	c := r.Counter("khs_test_total", "help", Labels{"k": "other"})
	if a == c {
		t.Fatalf("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("type mismatch did not panic")
		}
	}()
	r.Gauge("khs_test_total", "help", nil)
}

func TestRegistryHistogramSharesFamilyBounds(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("khs_test_seconds", "", Labels{"w": "a"}, []float64{1, 2})
	h2 := r.Histogram("khs_test_seconds", "", Labels{"w": "b"}, []float64{9, 99, 999})
	if len(h2.Bounds()) != len(h1.Bounds()) {
		t.Fatalf("second series got its own bounds %v, want the family's %v",
			h2.Bounds(), h1.Bounds())
	}
}

func TestRegistryInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0abc", "a b", "a-b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Errorf("bad label name did not panic")
		}
	}()
	r.Counter("khs_ok_total", "", Labels{"bad-key": "v"})
}

// TestPrometheusGolden pins the text exposition byte for byte: families in
// name order, series in label order, histograms as cumulative buckets with
// _sum and _count. Registration order is deliberately scrambled.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("khs_sim_channel_utilisation_ratio", "mean per-channel utilisation",
		Labels{"node": "1", "channel": "0"}).Set(0.25)
	r.Counter("khs_sim_messages_injected_total", "messages entering source queues", nil).Add(7)
	r.Gauge("khs_sim_channel_utilisation_ratio", "mean per-channel utilisation",
		Labels{"node": "0", "channel": "1"}).Set(0.5)
	h := r.Histogram("khs_sim_blocking_cycles", "per-message header-blocked cycles",
		nil, []float64{1, 8})
	h.Observe(0.5)
	h.ObserveN(8, 2)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP khs_sim_blocking_cycles per-message header-blocked cycles`,
		`# TYPE khs_sim_blocking_cycles histogram`,
		`khs_sim_blocking_cycles_bucket{le="1"} 1`,
		`khs_sim_blocking_cycles_bucket{le="8"} 3`,
		`khs_sim_blocking_cycles_bucket{le="+Inf"} 4`,
		`khs_sim_blocking_cycles_sum 116.5`,
		`khs_sim_blocking_cycles_count 4`,
		`# HELP khs_sim_channel_utilisation_ratio mean per-channel utilisation`,
		`# TYPE khs_sim_channel_utilisation_ratio gauge`,
		`khs_sim_channel_utilisation_ratio{channel="0",node="1"} 0.25`,
		`khs_sim_channel_utilisation_ratio{channel="1",node="0"} 0.5`,
		`# HELP khs_sim_messages_injected_total messages entering source queues`,
		`# TYPE khs_sim_messages_injected_total counter`,
		`khs_sim_messages_injected_total 7`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("khs_test_total", "line\none \\ two", Labels{"p": `a"b\c`}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`line\none \\ two`, `{p="a\"b\\c"}`} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition %q missing %q", out, want)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("khs_sweep_jobs_total", "", Labels{"outcome": "ok"}).Add(3)
	r.Histogram("khs_sweep_job_seconds", "", nil, []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(snap.Metrics))
	}
	// Families in name order: the histogram sorts before the counter.
	hs := snap.Metrics[0]
	if hs.Name != "khs_sweep_job_seconds" || hs.Histogram == nil || hs.Histogram.Count != 1 {
		t.Fatalf("unexpected first metric %+v", hs)
	}
	if last := hs.Histogram.Buckets[len(hs.Histogram.Buckets)-1]; last.Le != "+Inf" {
		t.Fatalf("last bucket le = %q, want +Inf", last.Le)
	}
	cs := snap.Metrics[1]
	if cs.Name != "khs_sweep_jobs_total" || !stats.ApproxEqual(cs.Value, 3, 0, 1e-12) {
		t.Fatalf("unexpected counter snapshot %+v", cs)
	}
}

func TestWriteFileFormatByExtension(t *testing.T) {
	r := NewRegistry()
	r.Counter("khs_test_total", "", nil).Inc()
	dir := t.TempDir()
	jsonPath := dir + "/m.json"
	promPath := dir + "/m.prom"
	if err := r.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(jb, &snap); err != nil {
		t.Fatalf(".json file is not a JSON snapshot: %v", err)
	}
	pb, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(pb), "# TYPE khs_test_total counter") {
		t.Fatalf(".prom file is not Prometheus text: %q", pb)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("khs_test_total", "", nil)
			h := r.Histogram("khs_test_cycles", "", nil, []float64{1, 2, 4})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 8))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("khs_test_total", "", nil).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("khs_test_cycles", "", nil, nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
