package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"kncube/internal/fixpoint"
)

// ConvergenceRecord is the JSONL form of one fixed-point iteration, the
// unit of the solver convergence traces. It mirrors fixpoint.TraceRecord
// plus a label identifying the solve the record belongs to.
type ConvergenceRecord struct {
	// Solve labels the solve this record belongs to (e.g. "fig1-h20-lam03"
	// or "hotspot-2d"); every record of one solve carries the same label.
	Solve string `json:"solve"`
	// Iteration is the 1-based substitution-round index.
	Iteration int `json:"iteration"`
	// Residual is the round's maximum relative state change.
	Residual float64 `json:"residual"`
	// Damping is the damping factor in effect.
	Damping float64 `json:"damping"`
	// NonFiniteIndex is the index of the first state variable that became
	// non-finite this round, -1 while the state is finite.
	NonFiniteIndex int `json:"non_finite_index"`
}

// TraceSink hands out per-solve fixpoint trace hooks. Solve returns the
// callback to install as fixpoint.Options.Trace (via core Options.FixPoint)
// and a done function that flushes the solve's trace and reports any write
// error; callers must invoke done exactly once after the solve finishes.
// Implementations are safe for concurrent solves as long as each solve uses
// its own hook.
type TraceSink interface {
	Solve(label string) (trace func(fixpoint.TraceRecord), done func() error)
}

// StreamTraceSink writes every solve's records to one shared writer,
// distinguishing solves by the record's Solve label. It is safe for
// concurrent hooks; records of interleaved solves interleave line by line.
type StreamTraceSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewStreamTraceSink returns a sink writing JSONL records to w.
func NewStreamTraceSink(w io.Writer) *StreamTraceSink {
	return &StreamTraceSink{enc: json.NewEncoder(w)}
}

// Solve implements TraceSink.
func (s *StreamTraceSink) Solve(label string) (func(fixpoint.TraceRecord), func() error) {
	trace := func(tr fixpoint.TraceRecord) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err != nil {
			return
		}
		s.err = s.enc.Encode(convRecord(label, tr))
	}
	done := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.err
	}
	return trace, done
}

// DirTraceSink writes one JSONL file per solve into a directory, named
// <label>.jsonl with the label sanitised to [A-Za-z0-9._-]. Concurrent
// solves get independent files; reusing a label overwrites its file.
type DirTraceSink struct {
	dir string
}

// NewDirTraceSink returns a sink writing into dir, creating it if needed.
func NewDirTraceSink(dir string) (*DirTraceSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirTraceSink{dir: dir}, nil
}

// Path returns the file a given solve label writes to.
func (s *DirTraceSink) Path(label string) string {
	return filepath.Join(s.dir, sanitizeLabel(label)+".jsonl")
}

// Solve implements TraceSink.
func (s *DirTraceSink) Solve(label string) (func(fixpoint.TraceRecord), func() error) {
	var (
		mu  sync.Mutex
		f   *os.File
		enc *json.Encoder
		err error
	)
	f, err = os.Create(s.Path(label))
	if err == nil {
		enc = json.NewEncoder(f)
	}
	trace := func(tr fixpoint.TraceRecord) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			return
		}
		err = enc.Encode(convRecord(label, tr))
	}
	done := func() error {
		mu.Lock()
		defer mu.Unlock()
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			f = nil
		}
		return err
	}
	return trace, done
}

func convRecord(label string, tr fixpoint.TraceRecord) ConvergenceRecord {
	return ConvergenceRecord{
		Solve:          label,
		Iteration:      tr.Iteration,
		Residual:       tr.MaxRelDelta,
		Damping:        tr.Damping,
		NonFiniteIndex: tr.NonFiniteIndex,
	}
}

func sanitizeLabel(label string) string {
	if label == "" {
		return "solve"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, label)
}

// ReadConvergenceTrace reads a JSONL convergence trace written by a
// TraceSink (diagnostic tooling and tests).
func ReadConvergenceTrace(path string) ([]ConvergenceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadJSONL[ConvergenceRecord](f)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	return recs, nil
}
