package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the runtime/pprof hooks the CLIs expose as
// -cpuprofile / -memprofile: an empty path disables the corresponding
// profile. The returned stop function ends CPU profiling and writes the
// heap profile (after a GC, so it reflects live objects); call it exactly
// once, after the measured work. On error the returned stop is nil and no
// profiling is active.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("write heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
