// Package telemetry is the project's dependency-free observability toolkit:
// atomic counters, gauges, fixed-bucket histograms and timers behind a named
// Registry with label support, exposed as Prometheus text or a JSON snapshot
// (expose.go); JSONL convergence-trace sinks for the fixed-point solvers
// (trace.go); JSONL run manifests for the sweep engine (manifest.go); and
// pprof profiling hooks for the CLIs (profile.go).
//
// The hot-path recording operations — Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe/ObserveN, Timer.Observe — are allocation-free and safe
// for concurrent use; metric handles are resolved once through the Registry
// and then recorded against directly. Metric names follow the repo
// convention khs_<layer>_<name>_<unit> (DESIGN.md §7).
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// MetricType distinguishes the exposition behaviour of a metric.
type MetricType string

// The metric types known to the registry and the exposition formats.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Counter is a monotonically increasing value. The zero value is usable but
// counters normally come from Registry.Counter so they appear in snapshots.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//khs:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative (counters are monotone).
//
//khs:hotpath
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: Counter.Add with negative increment")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an arbitrary float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
//
//khs:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (lock-free compare-and-swap).
//
//khs:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with the Prometheus
// less-or-equal convention: bucket i counts observations v <= bounds[i],
// plus an implicit +Inf overflow bucket. Bounds are fixed at construction;
// Observe is allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomicFloat
}

// NewHistogram returns a histogram over the given strictly-increasing
// finite upper bounds. Registry.Histogram is the usual constructor; this
// one serves tests and unregistered scratch histograms.
func NewHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("telemetry: non-finite histogram bound")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("telemetry: histogram bounds not strictly increasing")
		}
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation.
//
//khs:hotpath
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n identical observations (used to fold pre-binned
// distributions, e.g. the simulator's latency histogram, into a metric).
//
//khs:hotpath
func (h *Histogram) ObserveN(v float64, n int64) {
	if n <= 0 {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(n)
	h.count.Add(n)
	h.sum.Add(v * float64(n))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the histogram's finite upper bounds (not a copy; callers
// must not modify it).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative bucket counts in bound order, the last
// entry being the +Inf bucket (== Count()).
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Timer records durations, in seconds, into a histogram.
type Timer struct {
	h *Histogram
}

// NewTimer wraps a histogram whose bounds are in seconds.
func NewTimer(h *Histogram) Timer { return Timer{h: h} }

// Observe records one duration.
//
//khs:hotpath
func (t Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// ObserveSince records the time elapsed since start.
//
//khs:hotpath
func (t Timer) ObserveSince(start time.Time) { t.Observe(time.Since(start)) }

// atomicFloat is a lock-free float64 accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// LinearBuckets returns n strictly-increasing bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("telemetry: LinearBuckets needs n >= 1 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, start*factor², ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("telemetry: ExponentialBuckets needs n >= 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
