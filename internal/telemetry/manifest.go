package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// ManifestWriter appends JSON records to a stream, one per line (JSONL),
// safely from concurrent goroutines — the sweep engine writes one record
// per completed job from its worker pool. Records must be JSON-encodable
// (in particular: no NaN or infinite float fields).
type ManifestWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewManifestWriter returns a writer emitting JSONL to w.
func NewManifestWriter(w io.Writer) *ManifestWriter {
	return &ManifestWriter{enc: json.NewEncoder(w)}
}

// Write appends one record as a single JSON line.
func (m *ManifestWriter) Write(rec any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.enc.Encode(rec)
}

// ReadJSONL decodes a JSONL stream into a slice of T, reporting the first
// malformed line by number. Blank lines are skipped.
func ReadJSONL[T any](r io.Reader) ([]T, error) {
	var out []T
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec T
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
