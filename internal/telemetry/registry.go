package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Labels attach dimensions to a metric. The map is read once at
// registration; recording against the returned handle never touches it.
type Labels map[string]string

// labelPair is one canonicalised (sorted) label.
type labelPair struct {
	key, value string
}

// metric is one registered time series: a handle plus its identity.
type metric struct {
	labels []labelPair
	sig    string // canonical label signature, the intra-family sort key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing a metric name.
type family struct {
	name, help string
	typ        MetricType
	bySig      map[string]*metric
}

// Registry is a named collection of metrics. Handles are get-or-create:
// asking for the same (name, labels) twice returns the same Counter/Gauge/
// Histogram, so callers may resolve handles lazily without double counting.
// All methods are safe for concurrent use; the hot path is recording
// against the returned handles, not registration.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter returns the counter registered under name with the given labels,
// creating it on first use. It panics if name is already registered with a
// different type — a programming error, caught at wiring time.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	m := r.metric(name, help, TypeCounter, labels, nil)
	return m.c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	m := r.metric(name, help, TypeGauge, labels, nil)
	return m.g
}

// Histogram returns the histogram registered under name with the given
// labels, creating it with the given bounds on first use. Later calls for
// an existing series ignore bounds (the first registration wins), but every
// series of one family shares the first registration's bounds.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	m := r.metric(name, help, TypeHistogram, labels, bounds)
	return m.h
}

// Timer returns a timer over a histogram of seconds registered under name.
func (r *Registry) Timer(name, help string, labels Labels, bounds []float64) Timer {
	return NewTimer(r.Histogram(name, help, labels, bounds))
}

func (r *Registry) metric(name, help string, typ MetricType, labels Labels, bounds []float64) *metric {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	pairs := make([]labelPair, 0, len(labels))
	for k, v := range labels {
		if !labelRe.MatchString(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", k, name))
		}
		pairs = append(pairs, labelPair{key: k, value: v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	var sb strings.Builder
	for _, p := range pairs {
		sb.WriteString(p.key)
		sb.WriteByte(1)
		sb.WriteString(p.value)
		sb.WriteByte(2)
	}
	sig := sb.String()

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bySig: make(map[string]*metric)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	m := f.bySig[sig]
	if m == nil {
		m = &metric{labels: pairs, sig: sig}
		switch typ {
		case TypeCounter:
			m.c = &Counter{}
		case TypeGauge:
			m.g = &Gauge{}
		case TypeHistogram:
			// Every series of a family shares the family's bucket layout so
			// the exposition stays comparable across label values.
			if existing := f.anyHistogram(); existing != nil {
				bounds = existing.Bounds()
			}
			m.h = NewHistogram(bounds)
		}
		f.bySig[sig] = m
	}
	return m
}

func (f *family) anyHistogram() *Histogram {
	for _, m := range f.bySig {
		return m.h
	}
	return nil
}

// familyView is an immutable snapshot of a family's structure taken under
// the registry lock; the metric handles it points at stay live (their
// values are atomic), only the maps are copied.
type familyView struct {
	name, help string
	typ        MetricType
	metrics    []*metric
}

// view returns the families in name order, each with its metrics in
// label-signature order — the stable ordering both exposition formats rely
// on (and the golden test pins down). The structure is copied under the
// lock so exposition is safe against concurrent registration.
func (r *Registry) view() []familyView {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]familyView, 0, len(r.families))
	for _, f := range r.families {
		ms := make([]*metric, 0, len(f.bySig))
		for _, m := range f.bySig {
			ms = append(ms, m)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].sig < ms[j].sig })
		fams = append(fams, familyView{name: f.name, help: f.help, typ: f.typ, metrics: ms})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
