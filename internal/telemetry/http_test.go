package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("khs_test_requests_total", "test counter", Labels{"route": "/x"}).Add(3)
	reg.Gauge("khs_test_gauge", "test gauge", nil).Set(1.5)

	rr := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))

	if rr.Code != 200 {
		t.Fatalf("status = %d, want 200", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`khs_test_requests_total{route="/x"} 3`,
		`khs_test_gauge 1.5`,
		`# TYPE khs_test_requests_total counter`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q:\n%s", want, body)
		}
	}
}

func TestHandlerMatchesWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("khs_test_seconds", "h", nil, LinearBuckets(0.1, 0.1, 3)).Observe(0.25)

	rr := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))

	var direct strings.Builder
	if err := reg.WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if rr.Body.String() != direct.String() {
		t.Errorf("handler body differs from WritePrometheus:\n%q\nvs\n%q", rr.Body.String(), direct.String())
	}
}
