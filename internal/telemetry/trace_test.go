package telemetry

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"kncube/internal/fixpoint"
	"kncube/internal/stats"
)

func fakeRounds(n int) []fixpoint.TraceRecord {
	recs := make([]fixpoint.TraceRecord, n)
	for i := range recs {
		recs[i] = fixpoint.TraceRecord{
			Iteration:      i + 1,
			MaxRelDelta:    1.0 / float64(i+1),
			Damping:        0.5,
			NonFiniteIndex: -1,
		}
	}
	return recs
}

func TestStreamTraceSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewStreamTraceSink(&buf)
	hook, done := sink.Solve("solve-a")
	for _, tr := range fakeRounds(3) {
		hook(tr)
	}
	if err := done(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL[ConvergenceRecord](strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Solve != "solve-a" || r.Iteration != i+1 || r.NonFiniteIndex != -1 {
			t.Fatalf("record %d = %+v", i, r)
		}
		if !stats.ApproxEqual(r.Residual, 1.0/float64(i+1), 1e-12, 0) {
			t.Fatalf("record %d residual = %v", i, r.Residual)
		}
	}
}

func TestDirTraceSinkOneFilePerSolve(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirTraceSink(dir + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"fig1-h20-lam00", "fig1-h20-lam01"} {
		hook, done := sink.Solve(label)
		for _, tr := range fakeRounds(2) {
			hook(tr)
		}
		if err := done(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d trace files, want 2", len(entries))
	}
	recs, err := ReadConvergenceTrace(sink.Path("fig1-h20-lam01"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Solve != "fig1-h20-lam01" || recs[1].Iteration != 2 {
		t.Fatalf("unexpected trace %+v", recs)
	}
}

func TestDirTraceSinkSanitisesLabels(t *testing.T) {
	sink, err := NewDirTraceSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := sink.Path("a/b c*d")
	if strings.ContainsAny(strings.TrimSuffix(path[strings.LastIndexByte(path, os.PathSeparator)+1:], ".jsonl"), "/ *") {
		t.Fatalf("unsanitised path %q", path)
	}
	hook, done := sink.Solve("a/b c*d")
	hook(fakeRounds(1)[0])
	if err := done(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
}

func TestManifestWriterJSONLRoundTrip(t *testing.T) {
	type rec struct {
		Seed    int64  `json:"seed"`
		Outcome string `json:"outcome"`
	}
	var buf bytes.Buffer
	w := NewManifestWriter(&buf)
	for i := int64(0); i < 4; i++ {
		if err := w.Write(rec{Seed: i, Outcome: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadJSONL[rec](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Seed != 3 || got[0].Outcome != "ok" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadJSONLReportsBadLine(t *testing.T) {
	_, err := ReadJSONL[ConvergenceRecord](strings.NewReader("{}\nnot-json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile is non-degenerate.
	h := NewHistogram(ExponentialBuckets(1, 2, 12))
	for i := 0; i < 100000; i++ {
		h.Observe(float64(i % 4096))
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
