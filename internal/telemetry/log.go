package telemetry

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the structured logger behind every CLI's -log-format
// flag: "" or "text" selects slog's logfmt-style text handler, "json" the
// JSON handler (one object per line, machine-parseable — the format the
// serve-smoke CI job asserts on). Anything else is an error naming the
// accepted values, surfaced as flag-validation feedback.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}
