package topology

// This file implements the hot-spot geometry of the paper for the 2-D torus
// (dimensions are called x = dimension 0 and y = dimension 1). The network is
// viewed as k x-rings (rows, fixed y) and k y-rings (columns, fixed x). The
// "hot y-ring" is the column containing the hot-spot node; hot-spot messages
// route x-first into that column and then along it to the hot node.
//
// Position conventions follow Section 3 of the paper:
//
//   - A y-channel of the hot y-ring is j hops away from the hot-spot node,
//     1 <= j <= k, when it is the outgoing y-channel of the node at
//     unidirectional y-distance j from the hot node; j = k means the outgoing
//     channel of the hot-spot node itself (which carries no hot-spot traffic).
//   - An x-channel is j hops away from the hot y-ring, 1 <= j <= k, when it
//     is the outgoing x-channel of a node at x-distance j from the hot
//     column; j = k means an outgoing channel of a hot-column node (which
//     carries no hot-spot traffic).
//   - An x-ring (row) is t hops away from the hot node, 1 <= t <= k, by the
//     y-distance of its nodes to the hot node; t = k is the hot node's own
//     row.

// HotSpot describes the geometry of a network relative to one hot node.
type HotSpot struct {
	Cube *Cube
	Node NodeID
}

// dimX and dimY are the dimension indices of the 2-D torus as used by the
// analytical model. The simulator supports any n; the model is 2-D.
const (
	DimX = 0
	DimY = 1
)

// YRingDistance returns the paper's j-position of node id within the hot
// y-ring geometry: the unidirectional y-distance from id to the hot node,
// mapped to k when the distance is zero (the hot node's own row position).
func (h HotSpot) YRingDistance(id NodeID) int {
	d := h.Cube.RingDistance(id, h.Node, DimY)
	if d == 0 {
		return h.Cube.K()
	}
	return d
}

// XRingDistance returns the paper's j-position of node id relative to the
// hot y-ring: the unidirectional x-distance from id to the hot column,
// mapped to k when the node is in the hot column.
func (h HotSpot) XRingDistance(id NodeID) int {
	d := h.Cube.RingDistance(id, h.Node, DimX)
	if d == 0 {
		return h.Cube.K()
	}
	return d
}

// InHotColumn reports whether node id lies on the hot y-ring.
func (h HotSpot) InHotColumn(id NodeID) bool {
	return h.Cube.Coord(id, DimX) == h.Cube.Coord(h.Node, DimX)
}

// InHotRow reports whether node id lies on the hot node's x-ring.
func (h HotSpot) InHotRow(id NodeID) bool {
	return h.Cube.Coord(id, DimY) == h.Cube.Coord(h.Node, DimY)
}

// Position classifies node id as the paper's (t, j) pair: j is the
// x-distance position relative to the hot column (k if in the hot column)
// and t is the x-ring position relative to the hot node's row (k if in the
// hot row). The hot node itself is (k, k).
func (h HotSpot) Position(id NodeID) (t, j int) {
	return h.YRingDistance(id), h.XRingDistance(id)
}

// HotPathXHops returns the number of x-channels a hot-spot message from src
// crosses, which equals the x-distance of src to the hot column.
func (h HotSpot) HotPathXHops(src NodeID) int {
	return h.Cube.RingDistance(src, h.Node, DimX)
}

// HotPathYHops returns the number of y-channels a hot-spot message from src
// crosses: the y-distance of src's row to the hot node.
func (h HotSpot) HotPathYHops(src NodeID) int {
	return h.Cube.RingDistance(src, h.Node, DimY)
}

// SourcesCrossingHotYChannel counts the nodes whose hot-spot messages cross
// the y-channel of the hot ring that is j hops away from the hot node
// (1 <= j <= k). Used to verify Eq. 5 of the paper: the count is k(k-j).
func (h HotSpot) SourcesCrossingHotYChannel(j int) int {
	count := 0
	for id := NodeID(0); int(id) < h.Cube.Nodes(); id++ {
		if id == h.Node {
			continue
		}
		if h.HotPathYHops(id) >= j {
			count++
		}
	}
	return count
}

// SourcesCrossingXChannel counts the nodes of one x-ring whose hot-spot
// messages cross that ring's x-channel j hops away from the hot column
// (1 <= j <= k), for the x-ring containing node ref. Used to verify Eq. 4:
// the count is k-j for every row.
func (h HotSpot) SourcesCrossingXChannel(ref NodeID, j int) int {
	count := 0
	ring := h.Cube.RingNodes(DimX, h.Cube.RingIndex(ref, DimX))
	for _, id := range ring {
		if id == h.Node {
			continue
		}
		if h.HotPathXHops(id) >= j {
			count++
		}
	}
	return count
}
