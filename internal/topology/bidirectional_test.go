package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kncube/internal/stats"
)

func TestBiRingDistanceBounds(t *testing.T) {
	cube := MustNew(8, 2)
	f := func(a, b uint) bool {
		x := NodeID(a % uint(cube.Nodes()))
		y := NodeID(b % uint(cube.Nodes()))
		for d := 0; d < 2; d++ {
			bi := cube.BiRingDistance(x, y, d)
			uni := cube.RingDistance(x, y, d)
			if bi > uni || bi > cube.K()/2 || bi < 0 {
				return false
			}
			// Symmetric, unlike the unidirectional distance.
			if bi != cube.BiRingDistance(y, x, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBiRingDistanceValues(t *testing.T) {
	cube := MustNew(8, 1)
	cases := []struct{ s, d, want int }{
		{0, 1, 1}, {0, 7, 1}, {0, 4, 4}, {0, 5, 3}, {3, 0, 3}, {6, 2, 4},
	}
	for _, c := range cases {
		if got := cube.BiRingDistance(NodeID(c.s), NodeID(c.d), 0); got != c.want {
			t.Errorf("BiRingDistance(%d,%d) = %d, want %d", c.s, c.d, got, c.want)
		}
	}
}

func TestBiDirection(t *testing.T) {
	cube := MustNew(8, 1)
	if cube.BiDirection(0, 3, 0) != 1 {
		t.Error("0->3 should go positive")
	}
	if cube.BiDirection(0, 6, 0) != -1 {
		t.Error("0->6 should go negative (2 hops back vs 6 forward)")
	}
	if cube.BiDirection(0, 4, 0) != 1 {
		t.Error("ties must resolve positive")
	}
	if cube.BiDirection(5, 5, 0) != 0 {
		t.Error("no movement should return 0")
	}
}

func TestBiNeighbor(t *testing.T) {
	cube := MustNew(5, 2)
	id := cube.FromCoords([]int{0, 3})
	if got := cube.BiNeighbor(id, 0, 1); got != cube.FromCoords([]int{1, 3}) {
		t.Errorf("positive neighbor = %d", got)
	}
	if got := cube.BiNeighbor(id, 0, -1); got != cube.FromCoords([]int{4, 3}) {
		t.Errorf("negative neighbor = %d", got)
	}
}

func TestBiPathLengthAndEndpoints(t *testing.T) {
	cube := MustNew(7, 2)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		src := NodeID(rng.Intn(cube.Nodes()))
		dst := NodeID(rng.Intn(cube.Nodes()))
		path := cube.BiPath(src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("endpoints %v", path)
		}
		if len(path)-1 != cube.BiDistance(src, dst) {
			t.Fatalf("path length %d != BiDistance %d", len(path)-1, cube.BiDistance(src, dst))
		}
		// Every step is a bidirectional channel and dimensions are
		// visited in order.
		lastDim := -1
		for i := 1; i < len(path); i++ {
			stepDim := -1
			for d := 0; d < cube.N(); d++ {
				if cube.Neighbor(path[i-1], d) == path[i] || cube.Prev(path[i-1], d) == path[i] {
					stepDim = d
					break
				}
			}
			if stepDim < 0 {
				t.Fatalf("illegal step %d -> %d", path[i-1], path[i])
			}
			if stepDim < lastDim {
				t.Fatalf("dimension order violated")
			}
			lastDim = stepDim
		}
	}
}

func TestBiDistanceNeverExceedsUnidirectional(t *testing.T) {
	cube := MustNew(9, 2)
	for a := NodeID(0); int(a) < cube.Nodes(); a += 7 {
		for b := NodeID(0); int(b) < cube.Nodes(); b += 5 {
			if cube.BiDistance(a, b) > cube.Distance(a, b) {
				t.Fatalf("BiDistance(%d,%d) exceeds unidirectional", a, b)
			}
		}
	}
}

func TestMeanBiRingDistance(t *testing.T) {
	// k=8: offsets 0..7 -> min distances 0,1,2,3,4,3,2,1; mean = 16/8 = 2.
	if got := MustNew(8, 2).MeanBiRingDistance(); !stats.ApproxEqual(got, 2, 0, 0) {
		t.Errorf("MeanBiRingDistance(8) = %v, want 2", got)
	}
	// k=5: 0,1,2,2,1 -> 6/5.
	if got := MustNew(5, 2).MeanBiRingDistance(); !stats.ApproxEqual(got, 1.2, 0, 0) {
		t.Errorf("MeanBiRingDistance(5) = %v, want 1.2", got)
	}
	// Exhaustive cross-check.
	for _, k := range []int{2, 3, 6, 16} {
		cube := MustNew(k, 1)
		sum, cnt := 0, 0
		for a := NodeID(0); int(a) < k; a++ {
			for b := NodeID(0); int(b) < k; b++ {
				sum += cube.BiRingDistance(a, b, 0)
				cnt++
			}
		}
		want := float64(sum) / float64(cnt)
		if got := cube.MeanBiRingDistance(); !stats.ApproxEqual(got, want, 0, 0) {
			t.Errorf("k=%d: MeanBiRingDistance %v, exhaustive %v", k, got, want)
		}
	}
}
