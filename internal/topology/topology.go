// Package topology models the k-ary n-cube interconnection network used by
// both the analytical model and the flit-level simulator.
//
// A k-ary n-cube has N = k^n nodes arranged in n dimensions with k nodes per
// dimension. Following the paper (Loucif, Ould-Khaoua, Min; IPDPS 2005) the
// network uses unidirectional channels: in every dimension each node has one
// outgoing channel to the next node along the ring (address +1 mod k) and one
// incoming channel from the previous node. The network can therefore be seen
// as k^(n-1) rings per dimension, each of length k.
package topology

import "fmt"

// NodeID identifies a node as an integer in [0, N).
type NodeID int

// Cube describes a k-ary n-cube.
//
// The zero value is not usable; construct with New.
type Cube struct {
	k int // radix: nodes per dimension
	n int // number of dimensions
	// strides[d] is the id-distance between neighbours in dimension d:
	// strides[0] = 1, strides[d] = k^d.
	strides []int
	nodes   int
}

// New returns a k-ary n-cube. k must be at least 2 and n at least 1.
func New(k, n int) (*Cube, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: radix k = %d, want k >= 2", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: dimensions n = %d, want n >= 1", n)
	}
	nodes := 1
	strides := make([]int, n)
	for d := 0; d < n; d++ {
		strides[d] = nodes
		if nodes > (1<<31)/k {
			return nil, fmt.Errorf("topology: k^n overflows: k=%d n=%d", k, n)
		}
		nodes *= k
	}
	return &Cube{k: k, n: n, strides: strides, nodes: nodes}, nil
}

// MustNew is New, panicking on error. Intended for tests and examples with
// constant parameters.
func MustNew(k, n int) *Cube {
	c, err := New(k, n)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the radix (nodes per dimension).
func (c *Cube) K() int { return c.k }

// N returns the number of dimensions.
func (c *Cube) N() int { return c.n }

// Nodes returns the total node count k^n.
func (c *Cube) Nodes() int { return c.nodes }

// Channels returns the number of unidirectional network channels: one
// outgoing channel per node per dimension.
func (c *Cube) Channels() int { return c.nodes * c.n }

// Valid reports whether id addresses a node of the cube.
func (c *Cube) Valid(id NodeID) bool { return id >= 0 && int(id) < c.nodes }

// Coord returns the digit of node id in dimension d, i.e. its position on
// the dimension-d ring.
func (c *Cube) Coord(id NodeID, d int) int {
	return (int(id) / c.strides[d]) % c.k
}

// Coords returns all n digits of id, lowest dimension first.
func (c *Cube) Coords(id NodeID) []int {
	out := make([]int, c.n) //lint:ignore hotalloc per-message coords scratch for permutation patterns, not on the cycle loop
	v := int(id)
	for d := 0; d < c.n; d++ {
		out[d] = v % c.k
		v /= c.k
	}
	return out
}

// FromCoords returns the node with the given digits (lowest dimension
// first). It is the inverse of Coords. Digits are reduced modulo k, so
// callers may pass unnormalised ring positions.
func (c *Cube) FromCoords(coords []int) NodeID {
	if len(coords) != c.n {
		panic(fmt.Sprintf("topology: FromCoords got %d coords, want %d", len(coords), c.n))
	}
	id := 0
	for d := c.n - 1; d >= 0; d-- {
		digit := coords[d] % c.k
		if digit < 0 {
			digit += c.k
		}
		id = id*c.k + digit
	}
	return NodeID(id)
}

// Neighbor returns the node reached by following the outgoing channel of
// node id in dimension d (ring position +1 mod k).
func (c *Cube) Neighbor(id NodeID, d int) NodeID {
	pos := c.Coord(id, d)
	if pos == c.k-1 {
		// wrap-around link
		return id - NodeID((c.k-1)*c.strides[d])
	}
	return id + NodeID(c.strides[d])
}

// Prev returns the node whose dimension-d outgoing channel arrives at id.
func (c *Cube) Prev(id NodeID, d int) NodeID {
	pos := c.Coord(id, d)
	if pos == 0 {
		return id + NodeID((c.k-1)*c.strides[d])
	}
	return id - NodeID(c.strides[d])
}

// RingDistance returns the number of hops needed in dimension d to travel
// from node src to node dst using the unidirectional ring, in [0, k).
func (c *Cube) RingDistance(src, dst NodeID, d int) int {
	diff := c.Coord(dst, d) - c.Coord(src, d)
	if diff < 0 {
		diff += c.k
	}
	return diff
}

// Distance returns the total hop count of the deterministic dimension-order
// path from src to dst (sum of per-dimension unidirectional ring distances).
func (c *Cube) Distance(src, dst NodeID) int {
	total := 0
	for d := 0; d < c.n; d++ {
		total += c.RingDistance(src, dst, d)
	}
	return total
}

// Path returns the sequence of nodes visited by the deterministic
// dimension-order route from src to dst, crossing dimensions in increasing
// order (dimension 0 first). The returned slice starts with src and ends
// with dst.
func (c *Cube) Path(src, dst NodeID) []NodeID {
	path := []NodeID{src}
	cur := src
	for d := 0; d < c.n; d++ {
		for c.Coord(cur, d) != c.Coord(dst, d) {
			cur = c.Neighbor(cur, d)
			path = append(path, cur)
		}
	}
	return path
}

// CrossesWrap reports whether the dimension-order route from src to dst
// crosses the wrap-around channel (from ring position k-1 to position 0) of
// dimension d. This determines the Dally-Seitz virtual-channel class change.
func (c *Cube) CrossesWrap(src, dst NodeID, d int) bool {
	return c.Coord(src, d)+c.RingDistance(src, dst, d) >= c.k
}

// MeanRingDistance returns k̄ = (k-1)/2, the mean number of channels a
// uniformly-destined message crosses in one dimension (Eq. 1 of the paper):
// averaging distance i over the k equally likely ring offsets i = 0..k-1.
func (c *Cube) MeanRingDistance() float64 {
	return float64(c.k-1) / 2
}

// MeanDistance returns d = n·k̄, the mean path length of uniform traffic
// (Eq. 2 of the paper).
func (c *Cube) MeanDistance() float64 {
	return float64(c.n) * c.MeanRingDistance()
}

// RingIndex identifies the dimension-d ring containing node id: the node's
// coordinates with dimension d removed, folded into a single integer in
// [0, k^(n-1)).
func (c *Cube) RingIndex(id NodeID, d int) int {
	lo := int(id) % c.strides[d]
	hi := int(id) / (c.strides[d] * c.k)
	return hi*c.strides[d] + lo
}

// RingNodes returns the k nodes of the dimension-d ring with the given ring
// index, in ring-position order.
func (c *Cube) RingNodes(d, ringIndex int) []NodeID {
	lo := ringIndex % c.strides[d]
	hi := ringIndex / c.strides[d]
	base := hi*c.strides[d]*c.k + lo
	out := make([]NodeID, c.k)
	for p := 0; p < c.k; p++ {
		out[p] = NodeID(base + p*c.strides[d])
	}
	return out
}

// String implements fmt.Stringer.
func (c *Cube) String() string {
	return fmt.Sprintf("%d-ary %d-cube (%d nodes)", c.k, c.n, c.nodes)
}

// --- Bidirectional variants --------------------------------------------------
//
// The paper analyses the unidirectional torus and notes the analysis "can be
// easily extended to deal with [the] bi-directional case"; the simulator
// implements that extension. With bidirectional links each dimension has a
// positive (+1 mod k) and a negative (-1 mod k) ring and messages take the
// shorter direction, ties resolved to the positive ring.

// BiRingDistance returns the minimal hop count in dimension d with
// bidirectional channels: min over the two directions.
func (c *Cube) BiRingDistance(src, dst NodeID, d int) int {
	fwd := c.RingDistance(src, dst, d)
	if back := c.k - fwd; fwd > back {
		return back
	}
	return fwd
}

// BiDirection returns the direction (+1 or -1) a minimally-routed message
// takes in dimension d from src to dst, and 0 when no movement is needed.
// Ties (distance exactly k/2) resolve to +1, keeping routing deterministic.
func (c *Cube) BiDirection(src, dst NodeID, d int) int {
	fwd := c.RingDistance(src, dst, d)
	if fwd == 0 {
		return 0
	}
	if fwd <= c.k-fwd {
		return +1
	}
	return -1
}

// BiDistance returns the total minimal hop count of the dimension-order
// path with bidirectional channels.
func (c *Cube) BiDistance(src, dst NodeID) int {
	total := 0
	for d := 0; d < c.n; d++ {
		total += c.BiRingDistance(src, dst, d)
	}
	return total
}

// BiNeighbor returns the node reached from id moving one hop in dimension d
// in the given direction (+1 or -1).
func (c *Cube) BiNeighbor(id NodeID, d, dir int) NodeID {
	if dir >= 0 {
		return c.Neighbor(id, d)
	}
	return c.Prev(id, d)
}

// BiPath returns the deterministic minimal dimension-order path with
// bidirectional channels (ties to the positive direction).
func (c *Cube) BiPath(src, dst NodeID) []NodeID {
	path := []NodeID{src}
	cur := src
	for d := 0; d < c.n; d++ {
		dir := c.BiDirection(cur, dst, d)
		for c.Coord(cur, d) != c.Coord(dst, d) {
			cur = c.BiNeighbor(cur, d, dir)
			path = append(path, cur)
		}
	}
	return path
}

// MeanBiRingDistance returns the mean minimal ring distance of uniform
// traffic with bidirectional channels: (1/k)·Σ_{i=0..k-1} min(i, k-i).
func (c *Cube) MeanBiRingDistance() float64 {
	sum := 0
	for i := 0; i < c.k; i++ {
		d := i
		if c.k-i < d {
			d = c.k - i
		}
		sum += d
	}
	return float64(sum) / float64(c.k)
}
