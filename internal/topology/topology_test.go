package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kncube/internal/stats"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, n int
		ok   bool
	}{
		{2, 1, true},
		{16, 2, true},
		{4, 3, true},
		{1, 2, false},
		{0, 2, false},
		{-3, 2, false},
		{8, 0, false},
		{8, -1, false},
	}
	for _, c := range cases {
		_, err := New(c.k, c.n)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d): err=%v, want ok=%v", c.k, c.n, err, c.ok)
		}
	}
}

func TestNewOverflow(t *testing.T) {
	if _, err := New(1000, 8); err == nil {
		t.Fatal("New(1000,8) should overflow int32 guard")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(1,1) did not panic")
		}
	}()
	MustNew(1, 1)
}

func TestNodesAndChannels(t *testing.T) {
	cases := []struct {
		k, n, nodes int
	}{
		{2, 1, 2}, {4, 2, 16}, {16, 2, 256}, {8, 3, 512}, {3, 4, 81},
	}
	for _, c := range cases {
		cube := MustNew(c.k, c.n)
		if got := cube.Nodes(); got != c.nodes {
			t.Errorf("(%d,%d).Nodes() = %d, want %d", c.k, c.n, got, c.nodes)
		}
		if got := cube.Channels(); got != c.nodes*c.n {
			t.Errorf("(%d,%d).Channels() = %d, want %d", c.k, c.n, got, c.nodes*c.n)
		}
		if cube.K() != c.k || cube.N() != c.n {
			t.Errorf("(%d,%d) accessors returned %d,%d", c.k, c.n, cube.K(), cube.N())
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	for _, cfg := range [][2]int{{2, 1}, {4, 2}, {16, 2}, {5, 3}} {
		cube := MustNew(cfg[0], cfg[1])
		for id := NodeID(0); int(id) < cube.Nodes(); id++ {
			coords := cube.Coords(id)
			if got := cube.FromCoords(coords); got != id {
				t.Fatalf("%v: FromCoords(Coords(%d)) = %d", cube, id, got)
			}
			for d := 0; d < cube.N(); d++ {
				if coords[d] != cube.Coord(id, d) {
					t.Fatalf("%v: Coords(%d)[%d] = %d, Coord = %d",
						cube, id, d, coords[d], cube.Coord(id, d))
				}
			}
		}
	}
}

func TestFromCoordsNormalises(t *testing.T) {
	cube := MustNew(4, 2)
	if got := cube.FromCoords([]int{5, -1}); got != cube.FromCoords([]int{1, 3}) {
		t.Errorf("FromCoords should reduce mod k: got %d", got)
	}
}

func TestFromCoordsPanicsOnBadLength(t *testing.T) {
	cube := MustNew(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("FromCoords with wrong arity did not panic")
		}
	}()
	cube.FromCoords([]int{1})
}

func TestNeighborWalksRing(t *testing.T) {
	cube := MustNew(16, 2)
	for d := 0; d < 2; d++ {
		cur := NodeID(37)
		for step := 0; step < 16; step++ {
			cur = cube.Neighbor(cur, d)
		}
		if cur != 37 {
			t.Errorf("dim %d: 16 neighbor steps from 37 landed on %d", d, cur)
		}
	}
}

func TestNeighborPrevInverse(t *testing.T) {
	cube := MustNew(5, 3)
	for id := NodeID(0); int(id) < cube.Nodes(); id++ {
		for d := 0; d < cube.N(); d++ {
			if got := cube.Prev(cube.Neighbor(id, d), d); got != id {
				t.Fatalf("Prev(Neighbor(%d,%d)) = %d", id, d, got)
			}
			if got := cube.Neighbor(cube.Prev(id, d), d); got != id {
				t.Fatalf("Neighbor(Prev(%d,%d)) = %d", id, d, got)
			}
		}
	}
}

func TestNeighborChangesOnlyOneDigit(t *testing.T) {
	cube := MustNew(4, 3)
	for id := NodeID(0); int(id) < cube.Nodes(); id++ {
		for d := 0; d < cube.N(); d++ {
			nb := cube.Neighbor(id, d)
			for dd := 0; dd < cube.N(); dd++ {
				want := cube.Coord(id, dd)
				if dd == d {
					want = (want + 1) % cube.K()
				}
				if cube.Coord(nb, dd) != want {
					t.Fatalf("Neighbor(%d,%d)=%d: coord %d = %d, want %d",
						id, d, nb, dd, cube.Coord(nb, dd), want)
				}
			}
		}
	}
}

func TestRingDistance(t *testing.T) {
	cube := MustNew(8, 2)
	a := cube.FromCoords([]int{6, 3})
	b := cube.FromCoords([]int{2, 3})
	if got := cube.RingDistance(a, b, 0); got != 4 {
		t.Errorf("RingDistance x 6->2 = %d, want 4 (wraps)", got)
	}
	if got := cube.RingDistance(b, a, 0); got != 4 {
		t.Errorf("RingDistance x 2->6 = %d, want 4", got)
	}
	if got := cube.RingDistance(a, b, 1); got != 0 {
		t.Errorf("RingDistance y = %d, want 0", got)
	}
}

func TestRingDistanceUnidirectionalSum(t *testing.T) {
	// For distinct ring positions, dist(a,b) + dist(b,a) == k on a
	// unidirectional ring.
	cube := MustNew(9, 2)
	f := func(a, b uint) bool {
		x := NodeID(a % uint(cube.Nodes()))
		y := NodeID(b % uint(cube.Nodes()))
		for d := 0; d < 2; d++ {
			ab := cube.RingDistance(x, y, d)
			ba := cube.RingDistance(y, x, d)
			if ab == 0 || ba == 0 {
				if ab != ba {
					return false
				}
				continue
			}
			if ab+ba != cube.K() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceMatchesPathLength(t *testing.T) {
	cube := MustNew(6, 2)
	f := func(a, b uint) bool {
		src := NodeID(a % uint(cube.Nodes()))
		dst := NodeID(b % uint(cube.Nodes()))
		path := cube.Path(src, dst)
		return len(path)-1 == cube.Distance(src, dst)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathEndpointsAndSteps(t *testing.T) {
	cube := MustNew(5, 3)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		src := NodeID(rng.Intn(cube.Nodes()))
		dst := NodeID(rng.Intn(cube.Nodes()))
		path := cube.Path(src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			t.Fatalf("path endpoints %d..%d, want %d..%d",
				path[0], path[len(path)-1], src, dst)
		}
		// Every step must follow an outgoing channel, and the dimension
		// used must be non-decreasing (dimension-order routing).
		lastDim := -1
		for i := 1; i < len(path); i++ {
			stepDim := -1
			for d := 0; d < cube.N(); d++ {
				if cube.Neighbor(path[i-1], d) == path[i] {
					stepDim = d
					break
				}
			}
			if stepDim < 0 {
				t.Fatalf("step %d->%d is not a channel", path[i-1], path[i])
			}
			if stepDim < lastDim {
				t.Fatalf("path uses dim %d after dim %d", stepDim, lastDim)
			}
			lastDim = stepDim
		}
	}
}

func TestPathSelfIsSingleton(t *testing.T) {
	cube := MustNew(4, 2)
	p := cube.Path(5, 5)
	if len(p) != 1 || p[0] != 5 {
		t.Errorf("Path(5,5) = %v", p)
	}
}

func TestCrossesWrap(t *testing.T) {
	cube := MustNew(8, 2)
	a := cube.FromCoords([]int{6, 0})
	b := cube.FromCoords([]int{2, 0})
	if !cube.CrossesWrap(a, b, 0) {
		t.Error("6->2 must cross the x wrap-around")
	}
	if cube.CrossesWrap(b, a, 0) {
		t.Error("2->6 must not cross the x wrap-around")
	}
	if cube.CrossesWrap(a, a, 0) {
		t.Error("self route crosses no wrap")
	}
}

func TestMeanDistances(t *testing.T) {
	cube := MustNew(16, 2)
	if got := cube.MeanRingDistance(); !stats.ApproxEqual(got, 7.5, 0, 0) {
		t.Errorf("MeanRingDistance = %v, want 7.5", got)
	}
	if got := cube.MeanDistance(); !stats.ApproxEqual(got, 15, 0, 0) {
		t.Errorf("MeanDistance = %v, want 15", got)
	}
}

func TestMeanDistanceMatchesExhaustiveAverage(t *testing.T) {
	// Eq. 1 averages over all k offsets including 0. Verify against the
	// brute-force average of RingDistance over ordered pairs.
	for _, k := range []int{2, 3, 8, 16} {
		cube := MustNew(k, 2)
		sum, cnt := 0, 0
		for a := NodeID(0); int(a) < cube.Nodes(); a++ {
			for b := NodeID(0); int(b) < cube.Nodes(); b++ {
				sum += cube.RingDistance(a, b, 0)
				cnt++
			}
		}
		got := float64(sum) / float64(cnt)
		if want := cube.MeanRingDistance(); !stats.ApproxEqual(got, want, 0, 0) {
			t.Errorf("k=%d: exhaustive mean %v, Eq.1 gives %v", k, got, want)
		}
	}
}

func TestRingIndexAndNodes(t *testing.T) {
	cube := MustNew(4, 3)
	for d := 0; d < 3; d++ {
		seen := map[int]int{}
		for id := NodeID(0); int(id) < cube.Nodes(); id++ {
			seen[cube.RingIndex(id, d)]++
		}
		if len(seen) != cube.Nodes()/cube.K() {
			t.Fatalf("dim %d: %d distinct rings, want %d", d, len(seen), cube.Nodes()/cube.K())
		}
		for idx, cnt := range seen {
			if cnt != cube.K() {
				t.Fatalf("dim %d ring %d has %d nodes", d, idx, cnt)
			}
			nodes := cube.RingNodes(d, idx)
			if len(nodes) != cube.K() {
				t.Fatalf("RingNodes(%d,%d) returned %d nodes", d, idx, len(nodes))
			}
			for p, id := range nodes {
				if cube.RingIndex(id, d) != idx {
					t.Fatalf("node %d not in ring %d of dim %d", id, idx, d)
				}
				if cube.Coord(id, d) != p {
					t.Fatalf("RingNodes order: node %d at slot %d has coord %d",
						id, p, cube.Coord(id, d))
				}
			}
		}
	}
}

func TestRingNodesConnected(t *testing.T) {
	cube := MustNew(6, 2)
	for d := 0; d < 2; d++ {
		for idx := 0; idx < cube.Nodes()/cube.K(); idx++ {
			nodes := cube.RingNodes(d, idx)
			for p := range nodes {
				next := nodes[(p+1)%len(nodes)]
				if cube.Neighbor(nodes[p], d) != next {
					t.Fatalf("dim %d ring %d: %d's neighbor is not %d",
						d, idx, nodes[p], next)
				}
			}
		}
	}
}

func TestString(t *testing.T) {
	if got := MustNew(16, 2).String(); got != "16-ary 2-cube (256 nodes)" {
		t.Errorf("String() = %q", got)
	}
}

func TestValid(t *testing.T) {
	cube := MustNew(4, 2)
	if cube.Valid(-1) || cube.Valid(16) {
		t.Error("out-of-range ids reported valid")
	}
	if !cube.Valid(0) || !cube.Valid(15) {
		t.Error("in-range ids reported invalid")
	}
}
