package topology

import (
	"math/rand"
	"testing"
)

func newHS(k int, hx, hy int) HotSpot {
	cube := MustNew(k, 2)
	return HotSpot{Cube: cube, Node: cube.FromCoords([]int{hx, hy})}
}

func TestYRingDistance(t *testing.T) {
	hs := newHS(8, 3, 5)
	cube := hs.Cube
	// Node directly "before" the hot node on the y ring: distance 1.
	n1 := cube.FromCoords([]int{0, 4})
	if got := hs.YRingDistance(n1); got != 1 {
		t.Errorf("YRingDistance = %d, want 1", got)
	}
	// Same row as hot node: mapped to k.
	n2 := cube.FromCoords([]int{6, 5})
	if got := hs.YRingDistance(n2); got != 8 {
		t.Errorf("YRingDistance same-row = %d, want k=8", got)
	}
	// Wrap case: y=6 -> y=5 takes 7 hops on the unidirectional ring.
	n3 := cube.FromCoords([]int{0, 6})
	if got := hs.YRingDistance(n3); got != 7 {
		t.Errorf("YRingDistance wrap = %d, want 7", got)
	}
}

func TestXRingDistance(t *testing.T) {
	hs := newHS(8, 3, 5)
	cube := hs.Cube
	n1 := cube.FromCoords([]int{2, 0})
	if got := hs.XRingDistance(n1); got != 1 {
		t.Errorf("XRingDistance = %d, want 1", got)
	}
	n2 := cube.FromCoords([]int{3, 7})
	if got := hs.XRingDistance(n2); got != 8 {
		t.Errorf("XRingDistance hot-column = %d, want k=8", got)
	}
}

func TestInHotColumnRow(t *testing.T) {
	hs := newHS(4, 1, 2)
	cube := hs.Cube
	if !hs.InHotColumn(cube.FromCoords([]int{1, 0})) {
		t.Error("node (1,0) should be in hot column")
	}
	if hs.InHotColumn(cube.FromCoords([]int{2, 2})) {
		t.Error("node (2,2) should not be in hot column")
	}
	if !hs.InHotRow(cube.FromCoords([]int{3, 2})) {
		t.Error("node (3,2) should be in hot row")
	}
	if hs.InHotRow(cube.FromCoords([]int{1, 1})) {
		t.Error("node (1,1) should not be in hot row")
	}
}

func TestPositionPartitionsNodes(t *testing.T) {
	// The (t, j) classification must place exactly one node at each pair
	// (t, j) in 1..k x 1..k, with (k, k) being the hot node.
	for _, k := range []int{2, 3, 4, 8} {
		hs := newHS(k, k/2, k-1)
		seen := map[[2]int]NodeID{}
		for id := NodeID(0); int(id) < hs.Cube.Nodes(); id++ {
			tt, jj := hs.Position(id)
			if tt < 1 || tt > k || jj < 1 || jj > k {
				t.Fatalf("k=%d: Position(%d) = (%d,%d) out of range", k, id, tt, jj)
			}
			key := [2]int{tt, jj}
			if prev, dup := seen[key]; dup {
				t.Fatalf("k=%d: nodes %d and %d share position %v", k, prev, id, key)
			}
			seen[key] = id
		}
		if len(seen) != k*k {
			t.Fatalf("k=%d: %d positions, want %d", k, len(seen), k*k)
		}
		if seen[[2]int{k, k}] != hs.Node {
			t.Fatalf("k=%d: position (k,k) is node %d, want hot node %d",
				k, seen[[2]int{k, k}], hs.Node)
		}
	}
}

func TestEq5HotYChannelCrossingCounts(t *testing.T) {
	// Eq. 5: the number of nodes whose hot-spot path crosses the hot-ring
	// y-channel j hops from the hot node is k(k-j).
	for _, k := range []int{2, 4, 8, 16} {
		hs := newHS(k, 1, 1)
		for j := 1; j <= k; j++ {
			want := k * (k - j)
			if got := hs.SourcesCrossingHotYChannel(j); got != want {
				t.Errorf("k=%d j=%d: crossing count %d, want %d", k, j, got, want)
			}
		}
	}
}

func TestEq4XChannelCrossingCounts(t *testing.T) {
	// Eq. 4: within any x-ring, the number of that ring's nodes whose
	// hot-spot path crosses the x-channel j hops from the hot column is k-j.
	for _, k := range []int{2, 4, 8, 16} {
		hs := newHS(k, 2%k, 1)
		for row := 0; row < k; row++ {
			ref := hs.Cube.FromCoords([]int{0, row})
			for j := 1; j <= k; j++ {
				want := k - j
				if row == hs.Cube.Coord(hs.Node, DimY) && j == k {
					// The hot node itself is excluded from sources but it
					// contributes no crossing anyway (j=k count is 0).
					want = 0
				}
				if got := hs.SourcesCrossingXChannel(ref, j); got != want {
					t.Errorf("k=%d row=%d j=%d: count %d, want %d", k, row, j, got, want)
				}
			}
		}
	}
}

func TestHotPathHopsMatchDeterministicPath(t *testing.T) {
	// The per-dimension hop counts of the hot-spot path must agree with the
	// dimension-order Path through the cube.
	hs := newHS(8, 5, 2)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		src := NodeID(rng.Intn(hs.Cube.Nodes()))
		if src == hs.Node {
			continue
		}
		path := hs.Cube.Path(src, hs.Node)
		want := len(path) - 1
		if got := hs.HotPathXHops(src) + hs.HotPathYHops(src); got != want {
			t.Fatalf("src %d: x+y hops = %d, path length %d", src, got, want)
		}
	}
}

func TestTotalHotTrafficConservation(t *testing.T) {
	// Summing Eq. 5 counts over j=1..k must equal the total number of
	// y-channel crossings by all hot paths; same for Eq. 4 in x.
	hs := newHS(8, 3, 6)
	k := hs.Cube.K()
	sumY := 0
	for j := 1; j <= k; j++ {
		sumY += hs.SourcesCrossingHotYChannel(j)
	}
	wantY := 0
	for id := NodeID(0); int(id) < hs.Cube.Nodes(); id++ {
		if id != hs.Node {
			wantY += hs.HotPathYHops(id)
		}
	}
	if sumY != wantY {
		t.Errorf("sum of y-channel crossings %d, want %d", sumY, wantY)
	}
}
