package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"kncube/internal/analysis"
)

// checkSrc parses and type-checks a self-contained (import-free) source
// string into a Unit.
func checkSrc(t *testing.T, src string) analysis.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.Unit{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

// reportReturns flags every return statement — a trivial analyzer to
// exercise the driver and the suppression filter.
var reportReturns = &analysis.Analyzer{
	Name: "returns",
	Doc:  "flags every return statement (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if r, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(r.Pos(), "return found")
				}
				return true
			})
		}
		return nil
	},
}

func TestRunUnitReportsAndSorts(t *testing.T) {
	u := checkSrc(t, `package p
func b() int { return 2 }
func a() int { return 1 }
`)
	diags, err := analysis.RunUnit(u, []*analysis.Analyzer{reportReturns})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	if diags[0].Pos.Line != 2 || diags[1].Pos.Line != 3 {
		t.Errorf("diagnostics out of position order: %v", diags)
	}
	if diags[0].Analyzer != "returns" {
		t.Errorf("analyzer attribution = %q", diags[0].Analyzer)
	}
	if !strings.Contains(diags[0].String(), "[returns]") {
		t.Errorf("String() = %q, want analyzer tag", diags[0].String())
	}
}

func TestSuppression(t *testing.T) {
	u := checkSrc(t, `package p

func onPreviousLine() int {
	//lint:ignore returns reason documented here
	return 1
}

func sameLine() int {
	return 2 //lint:ignore returns reason documented here
}

func otherAnalyzer() int {
	//lint:ignore somethingelse reason documented here
	return 3
}

func noReason() int {
	//lint:ignore returns
	return 4
}

func wildcard() int {
	//lint:ignore * reason documented here
	return 5
}

func unsuppressed() int {
	return 6
}
`)
	diags, err := analysis.RunUnit(u, []*analysis.Analyzer{reportReturns})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// Suppressed: previous-line, same-line, and wildcard directives.
	// Kept: a directive naming a different analyzer, a directive with no
	// reason (reasons are mandatory), and the plain unsuppressed return.
	want := []int{14, 19, 28}
	if len(lines) != len(want) {
		t.Fatalf("diagnostic lines = %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("diagnostic lines = %v, want %v", lines, want)
		}
	}
}
