// Package load type-checks Go packages for the khs-lint analyzers without
// depending on golang.org/x/tools/go/packages. It drives `go list -export`
// to enumerate packages and to obtain compiled export data for their
// dependencies (the go command produces export data from the local build
// cache, so loading works fully offline), parses the target packages'
// sources with comments, and type-checks them with go/types using the
// standard library's gc-export-data importer.
//
// Limitations versus go/packages, acceptable for a single-module lint
// suite: external _test packages resolve the package under test through
// its export data, so exported identifiers declared only in internal test
// files (the export_test.go pattern) are invisible to them — this module
// has no such files — and cgo packages are not supported.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package, including its _test.go
// files: in-package test files are checked together with the package
// proper; an external test package (package p_test) is returned as its own
// Package with XTest set and " [xtest]" appended to the import path.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	XTest      bool
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors holds any type-checking errors. A package with type
	// errors still carries whatever syntax and (partial) type information
	// was recovered, but analyzer findings on it are unreliable.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	Standard     bool
	ForTest      string
	Error        *struct{ Err string }
}

const listFields = "ImportPath,Name,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles,DepOnly,Standard,ForTest,Error"

// Index resolves import paths to compiled export data. It is seeded by one
// `go list -export -deps -test` run and fills cache misses (stdlib packages
// imported only by fixtures, say) with targeted `go list -export` calls.
type Index struct {
	dir string

	mu      sync.Mutex
	exports map[string]string
}

// NewIndex builds an export-data index for the module containing dir by
// listing patterns (defaulting to ./...) with their full dependency
// graphs. The -test flag is what pulls in export data for test-only
// dependencies such as the testing package itself.
func NewIndex(dir string, patterns ...string) (*Index, []listPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json=" + listFields, "--"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, nil, err
	}
	ix := &Index{dir: dir, exports: map[string]string{}}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		switch {
		case p.ForTest != "" || strings.Contains(p.ImportPath, " ") || strings.HasSuffix(p.ImportPath, ".test"):
			// Test variants ("p [p.test]") and synthesized test mains:
			// the plain entry for the package carries everything the
			// loader needs.
		case p.DepOnly || p.Standard:
			if p.Export != "" {
				ix.exports[p.ImportPath] = p.Export
			}
		default:
			if p.Export != "" {
				ix.exports[p.ImportPath] = p.Export
			}
			targets = append(targets, p)
		}
	}
	return ix, targets, nil
}

// lookup returns an open reader over the export data for path.
func (ix *Index) lookup(path string) (io.ReadCloser, error) {
	ix.mu.Lock()
	file, ok := ix.exports[path]
	ix.mu.Unlock()
	if !ok {
		out, err := runGo(ix.dir, "list", "-e", "-export", "-json="+listFields, "--", path)
		if err != nil {
			return nil, fmt.Errorf("load: no export data for %q: %w", path, err)
		}
		var p listPackage
		if err := json.Unmarshal(out, &p); err != nil || p.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		ix.mu.Lock()
		ix.exports[path] = p.Export
		ix.mu.Unlock()
		file = p.Export
	}
	return os.Open(file)
}

// Checker type-checks source packages against the index's export data. All
// packages checked through one Checker share a FileSet and an importer
// cache, so types imported by several packages are identical objects.
type Checker struct {
	Fset *token.FileSet
	imp  types.ImporterFrom
}

// NewChecker returns a Checker backed by ix.
func NewChecker(ix *Index) *Checker {
	fset := token.NewFileSet()
	return &Checker{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "gc", ix.lookup).(types.ImporterFrom),
	}
}

// ParseFiles parses the named files (with comments) into c's FileSet.
func (c *Checker) ParseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(c.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks files as the package with the given import path and
// returns the package, its resolution tables, and any type errors
// (checking continues past errors to recover as much as possible).
func (c *Checker) Check(path string, files []*ast.File) (*types.Package, *types.Info, []error) {
	var typeErrs []error
	conf := types.Config{
		Importer: c.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, _ := conf.Check(path, c.Fset, files, info) // errors are in typeErrs
	return pkg, info, typeErrs
}

// Load lists, parses, and type-checks the packages matching patterns
// (default ./...) in the module at dir, test files included.
func Load(dir string, patterns ...string) ([]*Package, error) {
	ix, targets, err := NewIndex(dir, patterns...)
	if err != nil {
		return nil, err
	}
	checker := NewChecker(ix)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) > 0 || len(t.TestGoFiles) > 0 {
			p, err := check(checker, t, append(append([]string{}, t.GoFiles...), t.TestGoFiles...), false)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
		if len(t.XTestGoFiles) > 0 {
			p, err := check(checker, t, t.XTestGoFiles, true)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

func check(c *Checker, t listPackage, names []string, xtest bool) (*Package, error) {
	files, err := c.ParseFiles(t.Dir, names)
	if err != nil {
		return nil, fmt.Errorf("load: parsing %s: %w", t.ImportPath, err)
	}
	path, name := t.ImportPath, t.Name
	if xtest {
		path, name = t.ImportPath+" [xtest]", t.Name+"_test"
	}
	pkg, info, typeErrs := c.Check(path, files)
	return &Package{
		ImportPath: path,
		Name:       name,
		Dir:        t.Dir,
		XTest:      xtest,
		Fset:       c.Fset,
		Files:      files,
		Types:      pkg,
		TypesInfo:  info,
		TypeErrors: typeErrs,
	}, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
