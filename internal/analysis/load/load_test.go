package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kncube/internal/analysis/load"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

func TestLoadTypeChecksPackageWithTests(t *testing.T) {
	pkgs, err := load.Load(moduleRoot(t), "./internal/fixpoint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "kncube/internal/fixpoint" {
		t.Errorf("ImportPath = %q", p.ImportPath)
	}
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	// The in-package test file must be part of the unit...
	hasTestFile := false
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			hasTestFile = true
		}
	}
	if !hasTestFile {
		t.Error("no _test.go file in loaded package")
	}
	// ...and the package's exported API must have resolved types.
	if p.Types.Scope().Lookup("Solve") == nil {
		t.Error("fixpoint.Solve not in package scope")
	}
}

func TestLoadRootIncludesExternalTestPackage(t *testing.T) {
	pkgs, err := load.Load(moduleRoot(t), ".")
	if err != nil {
		t.Fatal(err)
	}
	var base, xtest bool
	for _, p := range pkgs {
		switch {
		case p.ImportPath == "kncube" && !p.XTest:
			base = true
			if len(p.TypeErrors) > 0 {
				t.Errorf("kncube type errors: %v", p.TypeErrors)
			}
		case p.XTest:
			xtest = true
			if len(p.TypeErrors) > 0 {
				t.Errorf("kncube external test type errors: %v", p.TypeErrors)
			}
		}
	}
	if !base || !xtest {
		t.Errorf("base=%v xtest=%v, want both", base, xtest)
	}
}
