// Package analysisutil holds the small type-resolution helpers the
// khs-lint analyzers share: resolving a call to its static callee and
// testing whether an object is a specific package-level function.
package analysisutil

import (
	"go/ast"
	"go/types"
)

// Callee returns the package-level function or method a call statically
// invokes, or nil for calls through function values, built-ins, and type
// conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsFunc reports whether fn is the package-level function pkgPath.name
// (methods never match: a method's receiver distinguishes it).
func IsFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsNil reports whether e is the predeclared nil.
func IsNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// IsErrorType reports whether t is the built-in error interface type.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// ErrorMethodCall returns the receiver expression when call is
// `x.Error()` on a value of the built-in error type, and nil otherwise.
func ErrorMethodCall(info *types.Info, e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return nil
	}
	if !IsErrorType(info.TypeOf(sel.X)) {
		return nil
	}
	return sel.X
}
