// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against "// want" expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on top of
// the in-repo analysis framework.
//
// Fixtures live under testdata/src/<name>/ in the analyzer's package
// directory. Every line that should be flagged carries a trailing comment
// of the form
//
//	x := a == b // want `exact floating-point`
//
// with one or more quoted or backquoted regular expressions that must each
// match a diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test. Fixtures may import the module's real packages (kncube/...), which
// are resolved through compiled export data, and may include _test.go
// files to exercise test-file exemptions.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"kncube/internal/analysis"
	"kncube/internal/analysis/load"
)

// Run analyzes each named fixture package under dir (usually "testdata")
// and reports expectation mismatches on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	moduleRoot := ModuleRoot(t)
	ix, _, err := load.NewIndex(moduleRoot)
	if err != nil {
		t.Fatalf("building export index: %v", err)
	}
	checker := load.NewChecker(ix)
	for _, fixture := range fixtures {
		runFixture(t, checker, filepath.Join(dir, "src", fixture), fixture, a)
	}
}

func runFixture(t *testing.T, checker *load.Checker, fixtureDir, name string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("fixture %s: no Go files", name)
	}
	files, err := checker.ParseFiles(fixtureDir, names)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	pkg, info, typeErrs := checker.Check(name, files)
	for _, err := range typeErrs {
		t.Errorf("fixture %s: type error: %v", name, err)
	}
	unit := analysis.Unit{Fset: checker.Fset, Files: files, Pkg: pkg, TypesInfo: info}
	// analysis.Run handles both unit and program analyzers; a fixture
	// package is simply a one-unit program. Suppressed findings are
	// dropped so //lint:ignore fixtures assert silence.
	all, err := analysis.Run([]analysis.Unit{unit}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	var diags []analysis.Diagnostic
	for _, d := range all {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(t, c.Text)
				if !ok {
					continue
				}
				pos := checker.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}

	matched := map[key][]bool{}
	for k, ps := range wants {
		matched[k] = make([]bool, len(ps))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for i, p := range wants[k] {
			if !matched[k][i] && p.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture %s: unexpected diagnostic at %s:%d: %s", name, filepath.Base(k.file), k.line, d.Message)
		}
	}
	for k, ps := range wants {
		for i, p := range ps {
			if !matched[k][i] {
				t.Errorf("fixture %s: no diagnostic at %s:%d matching %q", name, filepath.Base(k.file), k.line, p)
			}
		}
	}
}

// parseWant extracts the expectation regexps from a "// want ..." comment.
func parseWant(t *testing.T, text string) ([]*regexp.Regexp, bool) {
	t.Helper()
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, false
	}
	var patterns []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("malformed want comment %q: %v", text, err)
		}
		unquoted, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("malformed want pattern %q: %v", q, err)
		}
		p, err := regexp.Compile(unquoted)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", unquoted, err)
		}
		patterns = append(patterns, p)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(patterns) == 0 {
		t.Fatalf("want comment with no patterns: %q", text)
	}
	return patterns, true
}

// ModuleRoot locates the enclosing go.mod directory so fixtures can
// import the module's real packages regardless of which analyzer package
// the test runs from.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above test directory")
		}
		dir = parent
	}
}
