// Package analysis is a small, dependency-free analogue of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not a dependency — the repo builds
// against the standard library only — so this package re-implements just
// the subset the khs-lint suite needs: single-package analyzers with full
// type information, positional diagnostics, and staticcheck-style
// "//lint:ignore" suppression. Modular facts, SSA, and cross-package
// result passing are out of scope; if the project ever takes an x/tools
// dependency, the analyzers here port over almost mechanically (the Run
// signature drops its Pass methods in favour of pass.Report).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Name identifies it in diagnostics and in
// //lint:ignore directives; Doc states the enforced invariant (first line
// is the summary shown by khs-lint's usage text).
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects the unit behind pass and reports findings via
	// pass.Reportf. Returning an error aborts the whole lint run — it
	// means the analyzer itself failed, not that the code has findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Unit is one type-checked package as seen by the analyzers: the parsed
// syntax (with comments), the package's types, and the resolution tables.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Pass carries one analyzer's view of one Unit plus the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several of the
// khs-lint contracts (seed derivation, the fixpoint boundary) bind
// production code only; tests are free to construct RNGs and to poke the
// iteration machinery directly.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// RunUnit runs the analyzers over one unit, drops findings suppressed by
// //lint:ignore directives, and returns the rest in position order.
func RunUnit(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = filterSuppressed(u, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// ignoreDirective is one parsed "//lint:ignore <checks> <reason>" comment.
type ignoreDirective struct {
	checks []string // analyzer names, or the single element "*"
}

func (d ignoreDirective) matches(name string) bool {
	for _, c := range d.checks {
		if c == "*" || c == name {
			return true
		}
	}
	return false
}

// filterSuppressed drops diagnostics whose line carries (or whose previous
// line carries) a matching //lint:ignore directive. The directive names
// one or more comma-separated analyzers and must include a reason:
//
//	//lint:ignore floateq exact zero selects the degenerate branch
//	x := avg == 0
func filterSuppressed(u Unit, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	directives := map[key]ignoreDirective{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					// A directive with no reason is ignored: the reason
					// is the audit trail that makes suppression reviewable.
					continue
				}
				pos := u.Fset.Position(c.Pos())
				directives[key{pos.Filename, pos.Line}] = ignoreDirective{
					checks: strings.Split(fields[0], ","),
				}
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		sameLine, okSame := directives[key{d.Pos.Filename, d.Pos.Line}]
		prevLine, okPrev := directives[key{d.Pos.Filename, d.Pos.Line - 1}]
		if okSame && sameLine.matches(d.Analyzer) {
			continue
		}
		if okPrev && prevLine.matches(d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
