// Package analysis is a small, dependency-free analogue of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not a dependency — the repo builds
// against the standard library only — so this package re-implements just
// the subset the khs-lint suite needs: single-package analyzers with full
// type information, whole-program analyzers that see every loaded unit at
// once (the call-graph passes), positional diagnostics, and
// staticcheck-style "//lint:ignore" suppression. Modular facts and SSA
// are out of scope; if the project ever takes an x/tools dependency, the
// analyzers here port over almost mechanically (the Run signature drops
// its Pass methods in favour of pass.Report).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Name identifies it in diagnostics and in
// //lint:ignore directives; Doc states the enforced invariant (first line
// is the summary shown by khs-lint's usage text).
//
// Exactly one of Run and RunProgram must be set. Run analyzers see one
// type-checked package at a time; RunProgram analyzers see every loaded
// unit at once, which is what the call-graph passes need — an allocation
// two packages below a hot root is invisible to any single-unit view.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects the unit behind pass and reports findings via
	// pass.Reportf. Returning an error aborts the whole lint run — it
	// means the analyzer itself failed, not that the code has findings.
	Run func(pass *Pass) error
	// RunProgram inspects the whole load set at once. Diagnostics may be
	// attributed to any file in any unit; suppression directives are
	// likewise honoured across the whole program.
	RunProgram func(pass *ProgramPass) error
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
// Suppressed marks findings silenced by a reasoned //lint:ignore
// directive; RunUnit and the khs-lint exit code drop them, but they stay
// visible to machine consumers (khs-lint -json) as the audit trail.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string
	Message    string
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Unit is one type-checked package as seen by the analyzers: the parsed
// syntax (with comments), the package's types, and the resolution tables.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Pass carries one analyzer's view of one Unit plus the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Several of the
// khs-lint contracts (seed derivation, the fixpoint boundary) bind
// production code only; tests are free to construct RNGs and to poke the
// iteration machinery directly.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Program is the whole load set as seen by RunProgram analyzers: every
// unit shares one FileSet (the loader guarantees this), so positions from
// any unit are comparable. Cached lets independent program passes share
// one expensive artifact per run — in practice the call graph — without
// this package depending on who builds it.
type Program struct {
	Fset  *token.FileSet
	Units []Unit

	cache map[string]any
}

// Cached returns the value stored under key, building and storing it with
// build on first use. Not safe for concurrent use; the runner is serial.
func (p *Program) Cached(key string, build func() any) any {
	if p.cache == nil {
		p.cache = map[string]any{}
	}
	if v, ok := p.cache[key]; ok {
		return v
	}
	v := build()
	p.cache[key] = v
	return v
}

// ProgramPass carries one program analyzer's view of the whole load set
// plus the report sink.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Program.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *ProgramPass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Program.Fset.Position(pos).Filename, "_test.go")
}

// RunUnit runs the unit-scoped analyzers over one unit, drops findings
// suppressed by //lint:ignore directives, and returns the rest in
// position order. Program analyzers in the list are skipped — they need
// the whole load set; use Run for a mixed suite.
func RunUnit(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := runUnitRaw(u, analyzers)
	if err != nil {
		return nil, err
	}
	markSuppressed(directivesIn([]Unit{u}), diags)
	return sortAndDrop(diags), nil
}

// Run executes a mixed suite over the whole load set: unit analyzers run
// once per unit, program analyzers once over everything. Suppression
// directives are collected from every unit's files, so a program pass
// reporting into a file owned by another unit is still suppressible at
// the site. All diagnostics are returned in position order with
// Suppressed set; callers that only act on live findings filter on it.
func Run(units []Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var fset *token.FileSet
	if len(units) > 0 {
		fset = units[0].Fset
	}
	var diags []Diagnostic
	prog := &Program{Fset: fset, Units: units}
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Analyzer: a, Program: prog, diags: &diags}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	for _, u := range units {
		ds, err := runUnitRaw(u, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	markSuppressed(directivesIn(units), diags)
	sortDiags(diags)
	return diags, nil
}

// runUnitRaw runs the unit-scoped analyzers in the list over u without
// suppression filtering or sorting.
func runUnitRaw(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return diags, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

func sortAndDrop(diags []Diagnostic) []Diagnostic {
	sortDiags(diags)
	kept := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// ignoreDirective is one parsed "//lint:ignore <checks> <reason>" comment.
type ignoreDirective struct {
	checks []string // analyzer names, or the single element "*"
}

func (d ignoreDirective) matches(name string) bool {
	for _, c := range d.checks {
		if c == "*" || c == name {
			return true
		}
	}
	return false
}

// lineKey addresses one source line for suppression lookup.
type lineKey struct {
	file string
	line int
}

// directivesIn parses every "//lint:ignore <checks> <reason>" comment in
// the units' files. The directive names one or more comma-separated
// analyzers and must include a reason:
//
//	//lint:ignore floateq exact zero selects the degenerate branch
//	x := avg == 0
//
// A directive with no reason is ignored: the reason is the audit trail
// that makes suppression reviewable.
func directivesIn(units []Unit) map[lineKey]ignoreDirective {
	directives := map[lineKey]ignoreDirective{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					if len(fields) < 2 {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					directives[lineKey{pos.Filename, pos.Line}] = ignoreDirective{
						checks: strings.Split(fields[0], ","),
					}
				}
			}
		}
	}
	return directives
}

// markSuppressed sets Suppressed on diagnostics whose line carries (or
// whose previous line carries) a matching //lint:ignore directive.
func markSuppressed(directives map[lineKey]ignoreDirective, diags []Diagnostic) {
	if len(directives) == 0 {
		return
	}
	for i, d := range diags {
		sameLine, okSame := directives[lineKey{d.Pos.Filename, d.Pos.Line}]
		prevLine, okPrev := directives[lineKey{d.Pos.Filename, d.Pos.Line - 1}]
		if (okSame && sameLine.matches(d.Analyzer)) || (okPrev && prevLine.matches(d.Analyzer)) {
			diags[i].Suppressed = true
		}
	}
}
