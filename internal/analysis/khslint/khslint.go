// Package khslint aggregates the project's analyzers and provides the
// load-and-run entry point shared by the khs-lint command and the
// self-lint test. The suite encodes the numerics, seeding, and layering
// contracts documented in DESIGN.md §6; see each analyzer's Doc for the
// invariant it enforces.
package khslint

import (
	"fmt"

	"kncube/internal/analysis"
	"kncube/internal/analysis/load"
	"kncube/internal/analysis/passes/fixpointboundary"
	"kncube/internal/analysis/passes/floateq"
	"kncube/internal/analysis/passes/registerinit"
	"kncube/internal/analysis/passes/saturationerr"
	"kncube/internal/analysis/passes/seedderive"
)

// All is the khs-lint analyzer suite.
var All = []*analysis.Analyzer{
	fixpointboundary.Analyzer,
	floateq.Analyzer,
	registerinit.Analyzer,
	saturationerr.Analyzer,
	seedderive.Analyzer,
}

// Run loads the packages matching patterns in the module at dir (test
// files included) and runs the whole suite, returning the surviving
// diagnostics in position order. Type-checking failures are reported as
// errors: diagnostics computed from broken type information would be
// noise.
func Run(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("khslint: type errors in %s: %v", p.ImportPath, p.TypeErrors[0])
		}
		ds, err := analysis.RunUnit(analysis.Unit{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
		}, All)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
