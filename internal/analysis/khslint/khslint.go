// Package khslint aggregates the project's analyzers and provides the
// load-and-run entry point shared by the khs-lint command and the
// self-lint test. The suite encodes the numerics, seeding, layering,
// and hot-path contracts documented in DESIGN.md §6; see each
// analyzer's Doc for the invariant it enforces.
package khslint

import (
	"fmt"

	"kncube/internal/analysis"
	"kncube/internal/analysis/load"
	"kncube/internal/analysis/passes/ctxflow"
	"kncube/internal/analysis/passes/fixpointboundary"
	"kncube/internal/analysis/passes/floateq"
	"kncube/internal/analysis/passes/hotalloc"
	"kncube/internal/analysis/passes/hotblock"
	"kncube/internal/analysis/passes/metricname"
	"kncube/internal/analysis/passes/registerinit"
	"kncube/internal/analysis/passes/saturationerr"
	"kncube/internal/analysis/passes/seedderive"
)

// All is the khs-lint analyzer suite: the five per-package passes from
// the original suite plus the four whole-program passes built on the
// call graph (hotalloc, hotblock) and cross-package state (metricname),
// with ctxflow guarding cancellation plumbing.
var All = []*analysis.Analyzer{
	ctxflow.Analyzer,
	fixpointboundary.Analyzer,
	floateq.Analyzer,
	hotalloc.Analyzer,
	hotblock.Analyzer,
	metricname.Analyzer,
	registerinit.Analyzer,
	saturationerr.Analyzer,
	seedderive.Analyzer,
}

// Run loads the packages matching patterns in the module at dir (test
// files included) and runs the whole suite, returning the live
// (unsuppressed) diagnostics in position order. Type-checking failures
// are reported as errors: diagnostics computed from broken type
// information would be noise.
func Run(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	all, err := RunAll(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var live []analysis.Diagnostic
	for _, d := range all {
		if !d.Suppressed {
			live = append(live, d)
		}
	}
	return live, nil
}

// RunAll is Run without the suppression filter: every diagnostic comes
// back with its Suppressed state, which is what khs-lint -json emits so
// reviews can audit the ignore inventory alongside the live findings.
func RunAll(dir string, patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	units := make([]analysis.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("khslint: type errors in %s: %v", p.ImportPath, p.TypeErrors[0])
		}
		units = append(units, analysis.Unit{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
		})
	}
	return analysis.Run(units, All)
}
