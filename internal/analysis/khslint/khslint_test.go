package khslint_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/khslint"
)

// TestRepoIsLintClean is the dogfood gate: the whole module (tests
// included) must satisfy every khs-lint invariant. A failure here means a
// change reintroduced one of the bug classes the suite encodes — fix the
// code, or suppress a genuinely intentional site with a reasoned
// //lint:ignore directive.
func TestRepoIsLintClean(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	diags, err := khslint.Run(root, "./...")
	if err != nil {
		t.Fatalf("khslint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestSuiteIsComplete(t *testing.T) {
	want := map[string]bool{
		"saturationerr":    true,
		"floateq":          true,
		"seedderive":       true,
		"registerinit":     true,
		"fixpointboundary": true,
	}
	if len(khslint.All) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(khslint.All), len(want))
	}
	for _, a := range khslint.All {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
