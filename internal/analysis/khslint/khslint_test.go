package khslint_test

import (
	"strings"
	"testing"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/callgraph"
	"kncube/internal/analysis/khslint"
	"kncube/internal/analysis/load"
)

// TestRepoIsLintClean is the dogfood gate: the whole module (tests
// included) must satisfy every khs-lint invariant. A failure here means a
// change reintroduced one of the bug classes the suite encodes — fix the
// code, or suppress a genuinely intentional site with a reasoned
// //lint:ignore directive.
func TestRepoIsLintClean(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	diags, err := khslint.Run(root, "./...")
	if err != nil {
		t.Fatalf("khslint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLintGateCoversObservabilityPackages pins the package set behind the
// "./..." pattern TestRepoIsLintClean relies on: if a build tag, module
// boundary, or loader regression silently dropped the telemetry layer (or
// any other instrumented package) from the load, the repo-clean gate would
// pass vacuously. Listing the packages here makes that failure loud.
func TestLintGateCoversObservabilityPackages(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	pkgs, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("load.Load: %v", err)
	}
	loaded := map[string]bool{}
	for _, p := range pkgs {
		loaded[p.ImportPath] = true
	}
	for _, want := range []string{
		"kncube",
		"kncube/internal/fixpoint",
		"kncube/internal/core",
		"kncube/internal/queueing",
		"kncube/internal/stats",
		"kncube/internal/telemetry",
		"kncube/internal/telemetry/span",
		"kncube/internal/topology",
		"kncube/internal/traffic",
		"kncube/internal/vcmodel",
		"kncube/internal/sim",
		"kncube/internal/experiments",
		"kncube/internal/serve",
		"kncube/internal/surface",
		"kncube/internal/surface/shard",
		"kncube/internal/analysis",
		"kncube/internal/analysis/callgraph",
		"kncube/internal/analysis/passes/ctxflow",
		"kncube/internal/analysis/passes/hotalloc",
		"kncube/internal/analysis/passes/hotblock",
		"kncube/internal/analysis/passes/metricname",
		"kncube/cmd/khs-sim",
		"kncube/cmd/khs-model",
		"kncube/cmd/khs-figures",
		"kncube/cmd/khs-serve",
		"kncube/cmd/khs-bench",
		"kncube/cmd/khs-lint",
	} {
		if !loaded[want] {
			t.Errorf("lint gate does not cover %s (not in the ./... load)", want)
		}
	}
}

func TestSuiteIsComplete(t *testing.T) {
	want := map[string]bool{
		"ctxflow":          true,
		"fixpointboundary": true,
		"floateq":          true,
		"hotalloc":         true,
		"hotblock":         true,
		"metricname":       true,
		"registerinit":     true,
		"saturationerr":    true,
		"seedderive":       true,
	}
	if len(khslint.All) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(khslint.All), len(want))
	}
	for _, a := range khslint.All {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q missing doc", a.Name)
		}
		unit, program := a.Run != nil, a.RunProgram != nil
		if unit == program {
			t.Errorf("analyzer %q must set exactly one of Run/RunProgram (unit=%v program=%v)",
				a.Name, unit, program)
		}
	}
}

// TestHotPathRootsArePinned is the negative control for the whole-program
// passes: it rebuilds the production call graph and asserts the
// //khs:hotpath annotation set actually covers the functions the
// "0 allocs/op, no blocking" story is about. If someone deletes an
// annotation, hotalloc and hotblock silently stop auditing that subtree —
// this test turns that silence into a failure.
func TestHotPathRootsArePinned(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	pkgs, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("load.Load: %v", err)
	}
	var units []analysis.Unit
	for _, p := range pkgs {
		units = append(units, analysis.Unit{
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.TypesInfo,
		})
	}
	g := callgraph.Build(units)
	roots := map[string]bool{}
	for _, n := range g.HotRoots() {
		roots[n.String()] = true
	}
	for _, want := range []string{
		"sim.(*Network).Step",
		"fixpoint.Solve",
		"telemetry.(*Counter).Inc",
		"telemetry.(*Gauge).Set",
		"telemetry.(*Histogram).Observe",
		"telemetry.(Timer).Observe",
		"core.(*model).Iterate",
		"core.(*biModel).Iterate",
		"core.(*hyperModel).Iterate",
		"core.(*ndimModel).Iterate",
		"core.(*uniformModel).Iterate",
	} {
		if !roots[want] {
			t.Errorf("expected //khs:hotpath root %s is not annotated", want)
		}
	}

	// Reachability sanity: the audit set must extend through interface
	// dispatch and stdlib callbacks, not stop at the root's own body.
	reach := g.Reachable(g.HotRoots()...)
	var names []string
	for _, n := range reach.Nodes() {
		names = append(names, n.String())
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{
		"sim.(*Network).generate",         // static call chain below Step
		"sim.(*genHeap).Less",             // container/heap callback
		"stats.(*Histogram).Add",          // cross-package delivery path
		"fixpoint.(*accelState).anderson", // acceleration rounds
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("hot-path reachable set is missing %s;\nthe call graph lost an edge kind", want)
		}
	}
}
