package khslint_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/khslint"
	"kncube/internal/analysis/load"
)

// TestRepoIsLintClean is the dogfood gate: the whole module (tests
// included) must satisfy every khs-lint invariant. A failure here means a
// change reintroduced one of the bug classes the suite encodes — fix the
// code, or suppress a genuinely intentional site with a reasoned
// //lint:ignore directive.
func TestRepoIsLintClean(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	diags, err := khslint.Run(root, "./...")
	if err != nil {
		t.Fatalf("khslint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLintGateCoversObservabilityPackages pins the package set behind the
// "./..." pattern TestRepoIsLintClean relies on: if a build tag, module
// boundary, or loader regression silently dropped the telemetry layer (or
// any other instrumented package) from the load, the repo-clean gate would
// pass vacuously. Listing the packages here makes that failure loud.
func TestLintGateCoversObservabilityPackages(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	pkgs, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("load.Load: %v", err)
	}
	loaded := map[string]bool{}
	for _, p := range pkgs {
		loaded[p.ImportPath] = true
	}
	for _, want := range []string{
		"kncube",
		"kncube/internal/fixpoint",
		"kncube/internal/core",
		"kncube/internal/telemetry",
		"kncube/internal/sim",
		"kncube/internal/experiments",
		"kncube/internal/serve",
		"kncube/cmd/khs-sim",
		"kncube/cmd/khs-model",
		"kncube/cmd/khs-figures",
		"kncube/cmd/khs-serve",
		"kncube/cmd/khs-bench",
	} {
		if !loaded[want] {
			t.Errorf("lint gate does not cover %s (not in the ./... load)", want)
		}
	}
}

func TestSuiteIsComplete(t *testing.T) {
	want := map[string]bool{
		"saturationerr":    true,
		"floateq":          true,
		"seedderive":       true,
		"registerinit":     true,
		"fixpointboundary": true,
	}
	if len(khslint.All) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(khslint.All), len(want))
	}
	for _, a := range khslint.All {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
