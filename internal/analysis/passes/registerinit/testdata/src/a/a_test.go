package a

import "kncube/internal/core"

// Tests may register throwaway solver variants under unique names.
func registerForTest() {
	core.Register("fixture-test-only", factory)
}
