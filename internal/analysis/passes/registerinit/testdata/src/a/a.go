// Package a exercises the registerinit analyzer: solver registration is
// allowed only from init functions (this fixture is type-checked, never
// run, so the registrations below do not actually fire).
package a

import "kncube/internal/core"

func factory(s core.Spec, o core.Options) (core.Solver, error) { return nil, nil }

func init() {
	core.Register("fixture-init", factory) // init-time registration: allowed
}

func lateRegister() {
	core.Register("fixture-late", factory) // want `core\.Register outside an init func`
}

var _ = func() bool {
	core.Register("fixture-var", factory) // want `core\.Register outside an init func`
	return true
}()

func suppressed() {
	//lint:ignore registerinit fixture exercises the suppression path
	core.Register("fixture-suppressed", factory)
}
