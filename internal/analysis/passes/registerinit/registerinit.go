// Package registerinit defines an analyzer enforcing that solver
// registration happens at init time: core.Register may only be called from
// an init function. The registry is read by name lookups (core.Solve,
// kncube.Models, the CLIs' -model flags); a registration that runs later
// than package initialisation means a solver that is reachable from some
// call sites and not others, depending on execution order.
package registerinit

import (
	"go/ast"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysisutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "registerinit",
	Doc: `require core.Register calls to be inside init functions

The solver registry must be complete before the first Solve or Solvers
call; registering from anywhere but an init func makes the visible solver
set depend on call order. Tests are exempt so they can register throwaway
variants under unique names.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			inInit := isFunc && fd.Recv == nil && fd.Name.Name == "init"
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysisutil.Callee(pass.TypesInfo, call)
				if !analysisutil.IsFunc(fn, "kncube/internal/core", "Register") {
					return true
				}
				if inInit || pass.InTestFile(call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(), "core.Register outside an init func; the solver registry must be complete before any Solve call")
				return true
			})
		}
	}
	return nil
}
