package registerinit_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/registerinit"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", registerinit.Analyzer, "a")
}
