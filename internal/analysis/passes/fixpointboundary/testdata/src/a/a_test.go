package a

import "kncube/internal/fixpoint"

// Tests may drive the iteration machinery directly.
func solveInTest() {
	_, _ = fixpoint.Solve([]float64{1}, nil, fixpoint.Options{})
}
