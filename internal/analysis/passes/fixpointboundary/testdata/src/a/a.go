// Package a exercises the fixpointboundary analyzer: direct fixpoint.Solve
// use outside internal/core is flagged; other fixpoint API stays free.
package a

import "kncube/internal/fixpoint"

func direct() {
	state := []float64{1}
	_, _ = fixpoint.Solve(state, nil, fixpoint.Options{}) // want `fixpoint\.Solve outside the internal/core driver`
}

var solveRef = fixpoint.Solve // want `fixpoint\.Solve outside the internal/core driver`

func options() fixpoint.Options { // the rest of the fixpoint API: allowed
	return fixpoint.Defaults()
}

func suppressed() {
	//lint:ignore fixpointboundary fixture exercises the suppression path
	_, _ = fixpoint.Solve([]float64{1}, nil, fixpoint.Options{})
}
