package fixpointboundary_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/fixpointboundary"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", fixpointboundary.Analyzer, "a")
}
