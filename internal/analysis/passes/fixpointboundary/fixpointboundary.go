// Package fixpointboundary defines an analyzer enforcing the solver.go
// layering contract: fixpoint.Solve is called only by the shared driver in
// internal/core (and by the fixpoint package itself). Every model variant
// and every solve entry point — the one-shot core.Solve, the prepared
// path (core.Prepare / PreparedSolver), and the batch driver
// (core.SolveBatch) — must funnel through that driver (core.finishSolve),
// because it is the single place where defaulted tolerances, ErrSaturated
// classification of divergence, and the Convergence summary are produced;
// a direct fixpoint.Solve call would ship a result missing all three.
package fixpointboundary

import (
	"go/ast"
	"go/types"

	"kncube/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fixpointboundary",
	Doc: `restrict fixpoint.Solve calls to the shared driver in internal/core

Nothing below internal/core may call fixpoint.Solve directly: the driver
(core.finishSolve, shared by core.Solve, the PreparedSolver re-solve path,
and core.SolveBatch) owns option defaulting, saturation classification, and
convergence reporting. Batch or prepared callers in higher layers
(experiments, serve) must go through those core entry points. Test files
are exempt — the fixpoint package's own tests exercise Solve directly by
design.`,
	Run: run,
}

// allowedPkgs are the packages whose production code may reference
// fixpoint.Solve.
var allowedPkgs = map[string]bool{
	"kncube/internal/core":     true,
	"kncube/internal/fixpoint": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg != nil && allowedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Name() != "Solve" || fn.Pkg() == nil || fn.Pkg().Path() != "kncube/internal/fixpoint" {
				return true
			}
			if pass.InTestFile(id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(), "fixpoint.Solve outside the internal/core driver; route solvers through core.Solve so saturation classification and convergence reporting apply")
			return true
		})
	}
	return nil
}
