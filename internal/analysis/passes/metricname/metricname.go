// Package metricname defines the whole-program analyzer guarding the
// telemetry namespace: every metric name handed to a Registry
// constructor follows the documented khs_<layer>_<name>_<unit>
// convention, is a compile-time constant (dashboards and alerts key on
// literal names — a name computed at runtime cannot be grepped or
// reviewed), and is registered at exactly one production site per
// metric kind. The duplicate check is what needs the whole program:
// two packages independently minting "khs_serve_solves_total" as a
// counter and a gauge is invisible to any per-package pass.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysisutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: `enforce khs_<layer>_<name>_<unit> metric names, constant and registered once

Names passed to telemetry Registry constructors (Counter, Gauge,
Histogram, Timer) must be compile-time constant strings matching
khs_<layer>_..._<unit> with a known layer (sim, model, sweep, serve,
surface, fixpoint, runtime) and a known unit suffix (total, seconds, second,
cycles, ratio, size, entries, solves, sweeps, surfaces, depth, channel,
iterations, residual, bytes, goroutines, info). The <name> segment may
be empty when the layer and unit say it all (khs_runtime_goroutines).
Each name may be registered at one production call site only, and
always with the same metric kind. Test files are exempt.`,
	RunProgram: run,
}

var nameRE = regexp.MustCompile(`^khs(_[a-z0-9]+){2,}$`)

// layers are the sanctioned <layer> segments — the subsystem that owns
// the metric. "runtime" covers the Go runtime health gauges the daemon
// samples (goroutines, heap, GC pauses).
var layers = map[string]bool{
	"sim":      true,
	"model":    true,
	"sweep":    true,
	"serve":    true,
	"surface":  true,
	"fixpoint": true,
	"runtime":  true,
}

// unitSuffixes are the sanctioned trailing <unit> segments. "total"
// marks monotonic counters; "iterations" and "residual" are the
// dimensionless solver diagnostics.
var unitSuffixes = map[string]bool{
	"total":      true,
	"seconds":    true,
	"second":     true,
	"cycles":     true,
	"ratio":      true,
	"size":       true,
	"entries":    true,
	"solves":     true,
	"sweeps":     true,
	"surfaces":   true,
	"depth":      true,
	"channel":    true,
	"iterations": true,
	"residual":   true,
	"bytes":      true,
	"goroutines": true,
	// "info" marks the build-info gauge idiom: constant value 1 with
	// identifying labels (khs_serve_build_info).
	"info": true,
}

// constructors are the Registry methods that mint metrics.
var constructors = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Timer":     true,
}

const telemetryPkg = "kncube/internal/telemetry"

// site is one production registration of a metric name.
type site struct {
	kind string
	pos  token.Pos
}

func run(pass *analysis.ProgramPass) error {
	seen := map[string][]site{}
	for _, u := range pass.Program.Units {
		if u.Pkg != nil && u.Pkg.Path() == telemetryPkg {
			// The registry's own constructors forward parameter names to
			// each other (Timer wraps Histogram); those are plumbing, not
			// registrations.
			continue
		}
		for _, f := range u.Files {
			ast.Inspect(f, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysisutil.Callee(u.TypesInfo, call)
				if fn == nil || !constructors[fn.Name()] || fn.Pkg() == nil ||
					fn.Pkg().Path() != telemetryPkg || !isRegistryMethod(fn) {
					return true
				}
				if pass.InTestFile(call.Pos()) || len(call.Args) == 0 {
					return true
				}
				arg := call.Args[0]
				tv, okTV := u.TypesInfo.Types[arg]
				if !okTV || tv.Value == nil || tv.Value.Kind() != constant.String {
					pass.Reportf(arg.Pos(), "metric name must be a compile-time constant string so dashboards and alerts can key on it")
					return true
				}
				name := constant.StringVal(tv.Value)
				checkConvention(pass, arg.Pos(), name)
				seen[name] = append(seen[name], site{kind: fn.Name(), pos: arg.Pos()})
				return true
			})
		}
	}
	reportDuplicates(pass, seen)
	return nil
}

func checkConvention(pass *analysis.ProgramPass, pos token.Pos, name string) {
	if !nameRE.MatchString(name) {
		pass.Reportf(pos, "metric name %q does not match the khs_<layer>_<name>_<unit> convention", name)
		return
	}
	segs := splitSegments(name)
	if !layers[segs[1]] {
		pass.Reportf(pos, "metric name %q uses unknown layer %q (want one of sim, model, sweep, serve, surface, fixpoint, runtime)", name, segs[1])
	}
	if last := segs[len(segs)-1]; !unitSuffixes[last] {
		pass.Reportf(pos, "metric name %q uses unknown unit suffix %q (see the metricname analyzer doc for the vocabulary)", name, last)
	}
}

// reportDuplicates flags every site past the first for a name, and
// kind conflicts at each conflicting site. Sites are ordered by
// position so reports are deterministic.
func reportDuplicates(pass *analysis.ProgramPass, seen map[string][]site) {
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := seen[name]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		first := sites[0]
		for _, s := range sites[1:] {
			if s.kind != first.kind {
				pass.Reportf(s.pos, "metric %q registered as both %s and %s; one name must mean one metric kind", name, first.kind, s.kind)
			} else {
				pass.Reportf(s.pos, "metric %q already registered at %s; register each name exactly once per registry", name, pass.Program.Fset.Position(first.pos))
			}
		}
	}
}

// isRegistryMethod reports whether fn's receiver is *telemetry.Registry.
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, okP := t.(*types.Pointer); okP {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

func splitSegments(name string) []string {
	var segs []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '_' {
			segs = append(segs, name[start:i])
			start = i + 1
		}
	}
	return segs
}
