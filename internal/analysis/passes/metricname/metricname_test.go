package metricname_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.Analyzer, "metricnamefix")
}
