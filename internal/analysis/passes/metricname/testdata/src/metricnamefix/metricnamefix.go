// Package metricnamefix exercises the metricname analyzer: the naming
// convention, the constant-name rule, duplicate registration, and a
// reasoned suppression.
package metricnamefix

import "kncube/internal/telemetry"

const good = "khs_sim_things_total"

func register(r *telemetry.Registry, dynamic string) {
	r.Counter(good, "a well-named counter", nil)
	r.Gauge("khs_runtime_goroutines", "two segments: layer + unit alone", nil)
	r.Gauge("khs_serve_build_info", "info idiom: constant 1 with labels", nil)
	r.Counter("not_khs", "bad prefix", nil)             // want `does not match the khs_<layer>_<name>_<unit> convention`
	r.Counter("khs_widget_foo_total", "bad layer", nil) // want `unknown layer "widget"`
	r.Gauge("khs_sim_foo_bananas", "bad unit", nil)     // want `unknown unit suffix "bananas"`
	r.Counter(dynamic, "computed at runtime", nil)      // want `compile-time constant`
	r.Gauge("khs_sim_dup_total", "first registration", nil)
	r.Counter("khs_sim_dup_total", "kind conflict", nil) // want `registered as both Gauge and Counter`
	r.Counter(good, "second site", nil)                  // want `already registered`
	//lint:ignore metricname legacy dashboard name kept until the v2 migration
	r.Counter("legacy_thing", "grandfathered", nil)
}
