// Package hotalloc defines the whole-program analyzer enforcing the
// repo's "0 allocs/op" story structurally: no allocation site may be
// reachable from a //khs:hotpath root. BenchmarkSimulatorStep and
// BenchmarkTelemetryOverhead sample the property at one configuration;
// this pass proves it over every call path the class-hierarchy call
// graph can see, so a future helper that quietly appends three layers
// below sim.Step fails lint instead of a later profiling session.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"kncube/internal/analysis"
	"kncube/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: `forbid allocation sites reachable from //khs:hotpath roots

Walks the call graph from every //khs:hotpath-annotated function and
flags, in any reachable production function: make/new, composite
literals that allocate (&T{...} and slice/map literals), growing append,
non-constant string concatenation, string<->[]byte/[]rune conversions,
closure creation, interface boxing at call boundaries, and any call into
package fmt. Two cold sub-paths are exempt by rule rather than by
directive, because both terminate the hot loop by definition: return
statements that construct an error (saturation and cancellation exits),
and panic arguments (invariant-failure formatting). Boxing of
pointer-shaped values (pointers, channels, maps, funcs) is not flagged —
the interface stores the word directly. Everything else that stays —
lazy one-time init, recycled scratch, per-message buffers — carries a
reasoned //lint:ignore directive: the audit trail replacing "the
benchmark said 0 allocs".`,
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Program.Cached("callgraph", func() any {
		return callgraph.Build(pass.Program.Units)
	}).(*callgraph.Graph)
	reach := g.Reachable(g.HotRoots()...)
	for _, n := range reach.Nodes() {
		if n.Decl.Body == nil || pass.InTestFile(n.Decl.Pos()) {
			continue
		}
		via := reach.PathString(n)
		report := func(pos token.Pos, what string) {
			pass.Reportf(pos, "%s on hot path (%s)", what, via)
		}
		info := n.Info
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.ReturnStmt:
				if returnsError(info, x) {
					return false // error construction ends the hot loop
				}
			case *ast.CallExpr:
				if isPanicCall(info, x) {
					return false // failure-path formatting, not the hot path
				}
				checkCall(info, x, report)
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						report(x.Pos(), "heap-escaping composite literal (&T{...})")
					}
				}
			case *ast.CompositeLit:
				if t := info.TypeOf(x); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						report(x.Pos(), "slice literal allocation")
					case *types.Map:
						report(x.Pos(), "map literal allocation")
					}
				}
			case *ast.BinaryExpr:
				if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
					if tv, ok := info.Types[x]; ok && tv.Value == nil {
						report(x.Pos(), "string concatenation")
					}
				}
			case *ast.FuncLit:
				report(x.Pos(), "closure creation")
			}
			return true
		})
	}
	return nil
}

// checkCall flags the allocation shapes that live in call syntax:
// builtins, conversions, fmt calls, and interface boxing of arguments.
func checkCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(info, call, report)
		return
	}
	if id := calleeIdent(call); id != nil {
		switch obj := info.Uses[id].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				report(call.Pos(), "allocation (make)")
			case "new":
				report(call.Pos(), "allocation (new)")
			case "append":
				report(call.Pos(), "growing append")
			}
			return
		case *types.Func:
			if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
				report(call.Pos(), "fmt call (fmt."+obj.Name()+")")
			}
		}
	}
	checkBoxing(info, call, report)
}

// checkConversion flags string<->[]byte/[]rune conversions, the ones
// that copy into a fresh backing array.
func checkConversion(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	dst, src := info.TypeOf(call), info.TypeOf(call.Args[0])
	if tv, ok := info.Types[call]; ok && tv.Value != nil {
		return // constant-folded
	}
	if (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src)) {
		report(call.Pos(), "string conversion")
	}
}

// checkBoxing flags concrete values passed at interface-typed parameter
// positions — the runtime.convT* family. Constants are exempt: the
// compiler materialises them in read-only data, no per-call allocation.
func checkBoxing(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return // builtin
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0 && sig.Variadic() && !call.Ellipsis.IsValid():
			if s, okS := params.At(params.Len() - 1).Type().(*types.Slice); okS {
				pt = s.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		atv, okA := info.Types[arg]
		if !okA || atv.Type == nil || atv.IsNil() || atv.Value != nil {
			continue
		}
		switch atv.Type.Underlying().(type) {
		case *types.Interface:
			continue // interface-to-interface, no box
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: stored in the interface word directly
		}
		report(arg.Pos(), "interface boxing of "+atv.Type.String())
	}
}

// returnsError reports whether the return statement hands back an
// expression of the error interface type (other than a plain nil).
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		tv, ok := info.Types[res]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		if types.Identical(tv.Type, types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// isPanicCall reports whether call is the predeclared panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
