package hotalloc_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotallocfix")
}
