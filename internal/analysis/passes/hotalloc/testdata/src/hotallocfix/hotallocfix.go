// Package hotallocfix exercises every allocation shape hotalloc flags,
// reachability through a helper, an unreachable function, and a
// reasoned suppression.
package hotallocfix

import "fmt"

//khs:hotpath
func Hot(xs []int, name string) int {
	s := make([]int, 4)               // want `allocation \(make\)`
	s = append(s, 1)                  // want `growing append`
	p := new(int)                     // want `allocation \(new\)`
	box := &pair{}                    // want `heap-escaping composite literal`
	lit := []int{1, 2}                // want `slice literal allocation`
	m := map[string]int{}             // want `map literal allocation`
	msg := name + "!"                 // want `string concatenation`
	b := []byte(name)                 // want `string conversion`
	f := func() int { return len(b) } // want `closure creation`
	sink(len(lit))                    // want `interface boxing`
	fmt.Sprint("x")                   // want `fmt call`
	helper(xs)
	_, _, _, _ = p, box, m, msg
	return s[0] + f()
}

type pair struct{ a, b int }

func sink(v any) { _ = v }

func helper(xs []int) []int {
	return append(xs, 2) // want `growing append`
}

func cold(xs []int) []int {
	return append(xs, 3) // unreachable from any hot root: no finding
}

//khs:hotpath
func HotSuppressed() []byte {
	//lint:ignore hotalloc one-time lazy buffer, amortized over the run
	buf := make([]byte, 16)
	return buf
}
