// Package a exercises the floateq analyzer: exact float comparisons are
// flagged, constant folding and integer comparisons are not, and the
// //lint:ignore escape hatch works.
package a

import "math"

const ca, cb = 0.1, 0.2

func comparisons(x, y float64, n int) bool {
	if x == y { // want `exact floating-point == comparison`
		return true
	}
	if x != y { // want `exact floating-point != comparison`
		return true
	}
	if x == 0 { // want `exact floating-point == comparison`
		return true
	}
	if x == x { // want `exact floating-point == comparison`
		return true
	}
	if n == 3 { // integer comparison: allowed
		return true
	}
	if ca == cb { // both compile-time constants: allowed
		return true
	}
	if math.IsNaN(x) { // the sanctioned NaN check
		return false
	}
	//lint:ignore floateq fixture exercises the suppression path
	if x == 1 {
		return true
	}
	return x < y // ordering comparisons: allowed
}

func narrow(a, b float32) bool {
	return a == b // want `exact floating-point == comparison`
}

type meters float64

func named(a, b meters) bool {
	return a != b // want `exact floating-point != comparison`
}
