// Package floateq defines an analyzer that flags ==/!= between
// floating-point expressions. The model is a damped fixed-point over
// float64 state, so exact equality is almost always a latent bug: it is
// how the 0-valued saturation sentinel (fixed in PR 1 by moving to NaN +
// a bool) and brittle convergence checks happen. Comparisons belong in
// tolerance helpers (stats.ApproxEqual) or, for NaN tests, math.IsNaN.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"kncube/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: `flag exact ==/!= between floating-point expressions

Exact float equality silently encodes assumptions — that a value was never
recomputed, never accumulated rounding, is not NaN — which the fixed-point
solver violates by design. Compare through stats.ApproxEqual (approved, as
are the other tolerance helpers listed in the analyzer) or math.IsNaN.
Comparisons where both operands are compile-time constants are allowed, as
is an intentional exact comparison under "//lint:ignore floateq <reason>".`,
	Run: run,
}

// approvedHelpers maps package path to the tolerance-helper functions that
// may legitimately compare floats exactly (e.g. the infinity fast path in
// stats.ApproxEqual). Comparisons lexically inside these functions are
// exempt.
var approvedHelpers = map[string]map[string]bool{
	"kncube/internal/stats": {"ApproxEqual": true, "IsZero": true},
}

func run(pass *analysis.Pass) error {
	pkgPath := ""
	if pass.Pkg != nil {
		pkgPath = pass.Pkg.Path()
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				if ok := approvedHelpers[pkgPath][fd.Name.Name]; ok {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				check(pass, cmp)
				return true
			})
		}
	}
	return nil
}

func check(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	xtv, xok := pass.TypesInfo.Types[cmp.X]
	ytv, yok := pass.TypesInfo.Types[cmp.Y]
	if !xok || !yok {
		return
	}
	if !isFloat(xtv.Type) && !isFloat(ytv.Type) {
		return
	}
	if xtv.Value != nil && ytv.Value != nil {
		return // constant-folded at compile time; no runtime rounding
	}
	pass.Reportf(cmp.Pos(), "exact floating-point %s comparison; use stats.ApproxEqual (stats.IsZero for zero-value guards, math.IsNaN for NaN checks)", cmp.Op)
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
