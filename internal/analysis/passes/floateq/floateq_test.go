package floateq_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/floateq"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "a")
}
