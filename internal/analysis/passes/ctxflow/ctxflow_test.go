package ctxflow_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflowfix", "ctxflowmain")
}
