// Package ctxflow defines the analyzer enforcing context discipline:
// cancellation must flow from the process entry points down to the
// solvers and sweeps, never be re-rooted in the middle. A stray
// context.Background() half-way down a call chain silently detaches
// everything below it from Ctrl-C, server shutdown, and deadlines —
// exactly the bug class that made long sweeps unkillable before the
// signal plumbing existed.
package ctxflow

import (
	"go/ast"
	"go/types"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysisutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `restrict context.Background()/TODO() to designated roots; forbid nil contexts

Production code may mint a fresh context only where a lifetime genuinely
starts: func main in a package main, or an allowlisted construction site
(serve.New owns the server's background lifetime). Everywhere else a
function must thread the context it was given — reaching for
context.Background() mid-stack detaches callees from cancellation.
Passing a nil context at a context.Context parameter is always flagged.
Compatibility wrappers that deliberately re-root (experiments.RunSim,
RunPanel, the RunPanels nil-ctx fallback, khs-serve's drain deadline)
carry reasoned //lint:ignore directives. Test files are exempt.`,
	Run: run,
}

// allowedRoots are non-main production functions allowed to mint a
// fresh context: package path → function name. serve.New creates the
// server's own background lifetime, cancelled by Server.Shutdown.
var allowedRoots = map[string]map[string]bool{
	"kncube/internal/serve": {"New": true},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			root := isDesignatedRoot(pass, fd)
			ast.Inspect(fd.Body, func(nd ast.Node) bool {
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysisutil.Callee(pass.TypesInfo, call); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					if !root {
						pass.Reportf(call.Pos(), "context.%s() outside a designated root; thread the caller's context instead of re-rooting cancellation", fn.Name())
					}
					return true
				}
				checkNilContextArgs(pass, call)
				return true
			})
		}
	}
	return nil
}

// isDesignatedRoot reports whether fd may mint a fresh context: func
// main of a package main, or an allowlisted construction function.
func isDesignatedRoot(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil {
		return false
	}
	if pass.Pkg != nil && pass.Pkg.Name() == "main" && fd.Name.Name == "main" {
		return true
	}
	if pass.Pkg != nil {
		if fns, ok := allowedRoots[pass.Pkg.Path()]; ok && fns[fd.Name.Name] {
			return true
		}
	}
	return false
}

// checkNilContextArgs flags a literal nil passed where the callee wants
// a context.Context.
func checkNilContextArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		if !isContextType(params.At(i).Type()) {
			continue
		}
		if analysisutil.IsNil(pass.TypesInfo, arg) {
			pass.Reportf(arg.Pos(), "nil context passed; thread the caller's context (or context.Background() at a designated root)")
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
