// The ctxflowmain fixture checks the designated-root exemption: func
// main of a package main may mint the process context; everything
// below it must thread that context.
package main

import "context"

func main() {
	_ = run(context.Background()) // a designated root: no finding
}

func run(ctx context.Context) error {
	_ = ctx
	return helper(context.Background()) // want `context.Background\(\) outside a designated root`
}

func helper(ctx context.Context) error {
	_ = ctx
	return nil
}
