// Package ctxflowfix exercises the ctxflow analyzer: mid-stack
// re-rooting, nil contexts, and a reasoned compat-wrapper suppression.
package ctxflowfix

import "context"

func Work(ctx context.Context) error {
	_ = ctx
	return step(context.Background()) // want `context.Background\(\) outside a designated root`
}

func step(ctx context.Context) error {
	_ = ctx
	return nil
}

func nilCtx() error {
	return step(nil) // want `nil context passed`
}

func suppressed() error {
	//lint:ignore ctxflow compat wrapper for pre-context callers
	return step(context.Background())
}
