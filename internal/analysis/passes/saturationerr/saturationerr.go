// Package saturationerr defines an analyzer enforcing the repo's
// saturation-error contract: saturation (and every other sentinel error)
// is detected with errors.Is, never by identity comparison or by matching
// the error string. PR 1 fixed exactly this bug class — the sweep engine
// classified saturation by substring-matching err.Error(), which silently
// broke when the error text was reworded — and the contract is now
// compiler-checked.
package saturationerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysisutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "saturationerr",
	Doc: `detect saturation errors with errors.Is, not == or string matching

Comparing errors by identity (err == core.ErrSaturated) breaks as soon as
the sentinel is wrapped with fmt.Errorf("%w", ...), which the shared solver
driver does; matching err.Error() text breaks when a message is reworded.
The analyzer flags ==/!= between an error value and an Err-prefixed
sentinel, any comparison of an err.Error() result, and err.Error() passed
to the strings matching helpers. In _test.go files only saturation-related
matches are flagged, so tests may still assert on the text of plain
validation errors.`,
	Run: run,
}

// stringsMatchers are the strings-package helpers whose use with
// err.Error() indicates string-matching an error.
var stringsMatchers = map[string]bool{
	"Contains": true, "ContainsAny": true, "HasPrefix": true,
	"HasSuffix": true, "EqualFold": true, "Index": true, "Count": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkComparison(pass, n)
				}
			case *ast.CallExpr:
				checkStringsCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags `err == ErrFoo` style identity comparisons and
// `err.Error() == "..."` string comparisons.
func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	info := pass.TypesInfo
	// err.Error() compared against anything.
	for _, op := range []ast.Expr{cmp.X, cmp.Y} {
		if analysisutil.ErrorMethodCall(info, op) != nil {
			other := cmp.Y
			if op == cmp.Y {
				other = cmp.X
			}
			if pass.InTestFile(cmp.Pos()) && !mentionsSaturation(info, other) {
				continue
			}
			pass.Reportf(cmp.Pos(), "comparison of err.Error() text; use errors.Is(err, core.ErrSaturated) (or the relevant sentinel) instead")
			return
		}
	}
	// Error identity comparison against a sentinel.
	if !analysisutil.IsErrorType(info.TypeOf(cmp.X)) && !analysisutil.IsErrorType(info.TypeOf(cmp.Y)) {
		return
	}
	if analysisutil.IsNil(info, cmp.X) || analysisutil.IsNil(info, cmp.Y) {
		return // err != nil is the one sanctioned identity comparison
	}
	if sentinel := sentinelName(info, cmp.X); sentinel != "" {
		reportSentinel(pass, cmp, sentinel)
	} else if sentinel := sentinelName(info, cmp.Y); sentinel != "" {
		reportSentinel(pass, cmp, sentinel)
	}
}

func reportSentinel(pass *analysis.Pass, cmp *ast.BinaryExpr, name string) {
	if pass.InTestFile(cmp.Pos()) && name != "ErrSaturated" {
		return
	}
	pass.Reportf(cmp.Pos(), "%s compared with %s; wrapped errors never compare equal — use errors.Is", name, cmp.Op)
}

// sentinelName returns the name of the Err-prefixed package-level error
// variable e refers to, or "".
func sentinelName(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !strings.HasPrefix(v.Name(), "Err") || !analysisutil.IsErrorType(v.Type()) {
		return ""
	}
	return v.Name()
}

// checkStringsCall flags strings.Contains(err.Error(), ...) and friends.
func checkStringsCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysisutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" || !stringsMatchers[fn.Name()] {
		return
	}
	var errArg bool
	var others []ast.Expr
	for _, arg := range call.Args {
		if analysisutil.ErrorMethodCall(pass.TypesInfo, arg) != nil {
			errArg = true
		} else {
			others = append(others, arg)
		}
	}
	if !errArg {
		return
	}
	if pass.InTestFile(call.Pos()) {
		saturation := false
		for _, o := range others {
			if mentionsSaturation(pass.TypesInfo, o) {
				saturation = true
			}
		}
		if !saturation {
			return
		}
	}
	pass.Reportf(call.Pos(), "strings.%s on err.Error(); don't match error text — use errors.Is(err, core.ErrSaturated) (or the relevant sentinel)", fn.Name())
}

// mentionsSaturation reports whether e is a string constant whose value
// contains "satur" (case-insensitively): matching saturation by text is
// the historically observed bug and is flagged even in tests.
func mentionsSaturation(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.Contains(strings.ToLower(constant.StringVal(tv.Value)), "satur")
}
