// Package a exercises the saturationerr analyzer: sentinel identity
// comparisons and error-text matching are flagged; errors.Is and nil
// checks are the sanctioned forms.
package a

import (
	"errors"
	"strings"

	"kncube/internal/core"
)

// ErrLocal is a package-local sentinel; the contract covers every
// Err-prefixed sentinel, not just saturation.
var ErrLocal = errors.New("a: local sentinel")

func compare(err error) bool {
	if err == core.ErrSaturated { // want `ErrSaturated compared with ==`
		return true
	}
	if err != ErrLocal { // want `ErrLocal compared with !=`
		return true
	}
	if err == nil { // nil check: allowed
		return false
	}
	return errors.Is(err, core.ErrSaturated) // the sanctioned form
}

func match(err error) bool {
	if err.Error() == "core: network saturated at this load" { // want `comparison of err.Error\(\) text`
		return true
	}
	if strings.Contains(err.Error(), "saturated") { // want `strings\.Contains on err\.Error\(\)`
		return true
	}
	if strings.HasPrefix(err.Error(), "core:") { // want `strings\.HasPrefix on err\.Error\(\)`
		return true
	}
	return strings.Contains("plain string", "needle") // strings use without error text: allowed
}

func suppressedCompare(err error) bool {
	//lint:ignore saturationerr fixture exercises the suppression path
	return err == core.ErrSaturated
}
