package a

import "strings"

// Tests may assert on the text of plain validation errors...
func assertValidationText(err error) bool {
	return strings.Contains(err.Error(), "unknown solver")
}

// ...but matching saturation by text is the historically observed bug and
// stays flagged even in tests.
func assertSaturationText(err error) bool {
	return strings.Contains(err.Error(), "saturated") // want `strings\.Contains on err\.Error\(\)`
}
