package saturationerr_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/saturationerr"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", saturationerr.Analyzer, "a")
}
