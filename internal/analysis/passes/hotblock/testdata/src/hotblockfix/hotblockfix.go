// Package hotblockfix exercises every blocking shape hotblock flags,
// reachability through a helper, an unreachable function, and a
// reasoned suppression.
package hotblockfix

import (
	"sync"
	"time"
)

//khs:hotpath
func Hot(ch chan int, mu *sync.Mutex, wg *sync.WaitGroup) {
	ch <- 1                      // want `channel send`
	<-ch                         // want `channel receive`
	mu.Lock()                    // want `blocking sync call \(sync.Lock\)`
	wg.Wait()                    // want `blocking sync call \(sync.Wait\)`
	time.Sleep(time.Millisecond) // want `time.Sleep`
	blockingHelper(ch)
	for range ch { // want `range over channel`
		break
	}
}

func blockingHelper(ch chan int) {
	select { // want `select`
	case <-ch: // want `channel receive`
	default:
	}
}

func cold(ch chan int) {
	ch <- 2 // unreachable from any hot root: no finding
}

//khs:hotpath
func HotSuppressed(mu *sync.Mutex) {
	//lint:ignore hotblock init-order lock, uncontended by construction
	mu.Lock()
	mu.Unlock()
}
