package hotblock_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/hotblock"
)

func TestHotBlock(t *testing.T) {
	analysistest.Run(t, "testdata", hotblock.Analyzer, "hotblockfix")
}
