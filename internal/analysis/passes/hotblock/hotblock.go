// Package hotblock defines the whole-program analyzer keeping the hot
// loops non-blocking: nothing reachable from a //khs:hotpath root may
// park the goroutine. The simulator's cycle loop and the fixpoint
// iteration owe their throughput to running lock-free on atomics; a
// channel op or mutex introduced anywhere in their reachable set is a
// latency cliff the benchmarks would only catch under contention.
package hotblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysisutil"
	"kncube/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotblock",
	Doc: `forbid blocking operations reachable from //khs:hotpath roots

Walks the call graph from every //khs:hotpath-annotated function and
flags, in any reachable production function: channel sends, receives,
ranges and selects; blocking sync calls (Lock, RLock, Wait, Once.Do);
time.Sleep; and calls into the file/network/logging packages (os, io,
bufio, net, net/http, log). Genuinely uncontended or setup-phase sites
carry reasoned //lint:ignore directives.`,
	RunProgram: run,
}

// blockingSyncMethods are the sync / sync.* methods that can park the
// calling goroutine.
var blockingSyncMethods = map[string]bool{
	"Lock":  true,
	"RLock": true,
	"Wait":  true, // WaitGroup.Wait, Cond.Wait
	"Do":    true, // Once.Do blocks until the first call returns
}

// ioPkgs are packages whose calls mean file/network I/O or logging.
var ioPkgs = map[string]bool{
	"os":       true,
	"io":       true,
	"bufio":    true,
	"net":      true,
	"net/http": true,
	"log":      true,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Program.Cached("callgraph", func() any {
		return callgraph.Build(pass.Program.Units)
	}).(*callgraph.Graph)
	reach := g.Reachable(g.HotRoots()...)
	for _, n := range reach.Nodes() {
		if n.Decl.Body == nil || pass.InTestFile(n.Decl.Pos()) {
			continue
		}
		via := reach.PathString(n)
		report := func(pos token.Pos, what string) {
			pass.Reportf(pos, "%s on hot path (%s)", what, via)
		}
		info := n.Info
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.SendStmt:
				report(x.Arrow, "channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(x.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				report(x.Select, "select")
			case *ast.RangeStmt:
				if t := info.TypeOf(x.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						report(x.For, "range over channel")
					}
				}
			case *ast.CallExpr:
				checkCall(info, x, report)
			}
			return true
		})
	}
	return nil
}

func checkCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := analysisutil.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && blockingSyncMethods[fn.Name()]:
		report(call.Pos(), "blocking sync call (sync."+fn.Name()+")")
	case path == "time" && fn.Name() == "Sleep":
		report(call.Pos(), "time.Sleep")
	case ioPkgs[path]:
		report(call.Pos(), "I/O or logging call ("+path+"."+fn.Name()+")")
	}
}
