package seedderive_test

import (
	"testing"

	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/passes/seedderive"
)

func TestAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", seedderive.Analyzer, "a")
}
