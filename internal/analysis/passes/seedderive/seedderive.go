// Package seedderive defines an analyzer that keeps RNG seeding
// reproducible: production code may not construct math/rand sources from
// ad-hoc values or lean on the package-level generator. Seeds flow from an
// explicit Seed configuration field or are derived with
// experiments.JobSeed, the FNV-based per-job scheme that PR 1 introduced
// after correlated per-point seeds skewed whole sweep panels.
package seedderive

import (
	"go/ast"
	"go/types"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysisutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedderive",
	Doc: `require RNG seeds to come from experiments.JobSeed or a Seed config field

rand.NewSource(someExpression) in production code is how the correlated
per-point sweep seeds happened: nearby jobs got nearby (or identical)
streams and the confidence intervals lied. The analyzer allows
rand.NewSource only when the seed argument mentions experiments.JobSeed or
an explicit Seed field (e.g. cfg.Seed), and forbids the math/rand
package-level generator (rand.Intn, rand.Float64, rand.Seed, ...) outside
tests entirely — the global source is shared, unseeded state.`,
	Run: run,
}

// randPkgs are the package paths whose seeding discipline is enforced.
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// globalFuncs are the package-level convenience functions backed by the
// shared global source.
var globalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysisutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand are fine: the source was vetted at construction
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			switch {
			case fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8":
				if len(call.Args) > 0 && allArgsDerived(pass, call.Args) {
					return true
				}
				pass.Reportf(call.Pos(), "rand.%s seed is not derived; use experiments.JobSeed or an explicit Seed config field", fn.Name())
			case globalFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "rand.%s uses the shared global source; construct a *rand.Rand from a derived seed instead", fn.Name())
			}
			return true
		})
	}
	return nil
}

// allArgsDerived reports whether every seed argument mentions an approved
// provenance: a call to experiments.JobSeed or a selector of a field named
// Seed (cfg.Seed, opts.Budget.Seed, ...).
func allArgsDerived(pass *analysis.Pass, args []ast.Expr) bool {
	for _, arg := range args {
		derived := false
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysisutil.IsFunc(analysisutil.Callee(pass.TypesInfo, n), "kncube/internal/experiments", "JobSeed") {
					derived = true
				}
			case *ast.SelectorExpr:
				if n.Sel.Name == "Seed" {
					derived = true
				}
			}
			return !derived
		})
		if !derived {
			return false
		}
	}
	return true
}
