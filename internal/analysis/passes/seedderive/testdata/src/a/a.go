// Package a exercises the seedderive analyzer: ad-hoc seeds and the
// global math/rand source are flagged in production code; JobSeed-derived
// seeds and explicit Seed config fields are allowed.
package a

import (
	"math/rand"

	"kncube/internal/experiments"
)

type config struct{ Seed int64 }

func sources(cfg config) {
	_ = rand.NewSource(42)                                   // want `rand\.NewSource seed is not derived`
	_ = rand.NewSource(cfg.Seed)                             // explicit Seed field: allowed
	_ = rand.NewSource(experiments.JobSeed(1, "fig1", 0, 0)) // derived: allowed
	_ = rand.New(rand.NewSource(7))                          // want `rand\.NewSource seed is not derived`
	_ = rand.New(rand.NewSource(cfg.Seed + 1))               // derivation may be composed: allowed
}

func globals() int {
	_ = rand.Float64()                 // want `rand\.Float64 uses the shared global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the shared global source`
	r := rand.New(rand.NewSource(experiments.JobSeed(1, "p", 0, 0)))
	return r.Intn(10) // method on a vetted *rand.Rand: allowed
}

func suppressed() rand.Source {
	//lint:ignore seedderive fixture exercises the suppression path
	return rand.NewSource(99)
}
