package a

import "math/rand"

// Tests may construct RNGs from fixed literal seeds.
func helperForTests() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func globalInTest() int {
	return rand.Intn(10) // the global source is tolerated in tests too
}
