package callgraph_test

import (
	"path/filepath"
	"testing"

	"kncube/internal/analysis"
	"kncube/internal/analysis/analysistest"
	"kncube/internal/analysis/callgraph"
	"kncube/internal/analysis/load"
)

// buildFixture type-checks testdata/src/graphfix and builds its graph.
func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	ix, _, err := load.NewIndex(analysistest.ModuleRoot(t))
	if err != nil {
		t.Fatalf("building export index: %v", err)
	}
	checker := load.NewChecker(ix)
	files, err := checker.ParseFiles(filepath.Join("testdata", "src", "graphfix"), []string{"graphfix.go"})
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	pkg, info, typeErrs := checker.Check("graphfix", files)
	for _, err := range typeErrs {
		t.Errorf("fixture type error: %v", err)
	}
	return callgraph.Build([]analysis.Unit{{Fset: checker.Fset, Files: files, Pkg: pkg, TypesInfo: info}})
}

// edgeKeys collects the callee names of a node's edges of one kind.
func edgeKeys(n *callgraph.Node, kind callgraph.EdgeKind) map[string]bool {
	out := map[string]bool{}
	for _, e := range n.Edges {
		if e.Kind == kind {
			out[e.Callee.String()] = true
		}
	}
	return out
}

func TestStaticAndMethodEdges(t *testing.T) {
	g := buildFixture(t)
	root := g.LookupName("graphfix.Root")
	if root == nil {
		t.Fatal("graphfix.Root not in graph")
	}
	static := edgeKeys(root, callgraph.KindStatic)
	// helper(1) directly plus helper(3) inside the function literal: the
	// literal's body is attributed to Root.
	if !static["graphfix.helper"] {
		t.Errorf("Root static edges = %v, want graphfix.helper (incl. the FuncLit body)", static)
	}
	method := edgeKeys(root, callgraph.KindMethod)
	if !method["graphfix.(A).Do"] {
		t.Errorf("Root method edges = %v, want graphfix.(A).Do", method)
	}
	if s := root.Summary(); s.Dynamic == 0 {
		t.Errorf("Root summary %+v records no dynamic site; f() should be one", s)
	}
}

func TestInterfaceDispatchEdges(t *testing.T) {
	g := buildFixture(t)
	root := g.LookupName("graphfix.Root")
	iface := edgeKeys(root, callgraph.KindInterface)
	for _, want := range []string{"graphfix.(A).Do", "graphfix.(*B).Do"} {
		if !iface[want] {
			t.Errorf("interface dispatch d.Do missing conservative callee %s (got %v)", want, iface)
		}
	}
}

func TestCallbackEdgesThroughStdlib(t *testing.T) {
	g := buildFixture(t)
	sortIt := g.LookupName("graphfix.SortIt")
	if sortIt == nil {
		t.Fatal("graphfix.SortIt not in graph")
	}
	cb := edgeKeys(sortIt, callgraph.KindCallback)
	for _, want := range []string{"graphfix.(ints).Len", "graphfix.(ints).Less", "graphfix.(ints).Swap"} {
		if !cb[want] {
			t.Errorf("sort.Sort(s) missing callback edge %s (got %v)", want, cb)
		}
	}
}

func TestHotRootsAndReachability(t *testing.T) {
	g := buildFixture(t)
	roots := g.HotRoots()
	if len(roots) != 1 || roots[0].String() != "graphfix.Root" {
		t.Fatalf("HotRoots = %v, want exactly graphfix.Root", roots)
	}
	reach := g.Reachable(roots...)
	for _, want := range []string{"graphfix.Root", "graphfix.helper", "graphfix.A.Do", "graphfix.B.Do"} {
		if n := g.LookupName(want); n == nil || !reach.Has(n) {
			t.Errorf("%s should be reachable from the hot root", want)
		}
	}
	for _, dont := range []string{"graphfix.Unreached", "graphfix.SortIt", "graphfix.ints.Len"} {
		n := g.LookupName(dont)
		if n == nil {
			t.Fatalf("%s not in graph", dont)
		}
		if reach.Has(n) {
			t.Errorf("%s should NOT be reachable from the hot root", dont)
		}
	}
	// (*B).Do reaches helper through the interface edge; the path runs
	// Root → (*B).Do or Root → helper directly (shortest wins).
	helper := g.LookupName("graphfix.helper")
	path := reach.Path(helper)
	if len(path) == 0 || path[0].String() != "graphfix.Root" || path[len(path)-1].String() != "graphfix.helper" {
		t.Errorf("Path(helper) = %q, want a Root→…→helper chain", reach.PathString(helper))
	}
	if got := reach.PathString(helper); got != "graphfix.Root → graphfix.helper" {
		t.Errorf("PathString(helper) = %q, want the direct two-hop chain", got)
	}
}

func TestUnreachableFunctionHasOwnReachability(t *testing.T) {
	g := buildFixture(t)
	sortIt := g.LookupName("graphfix.SortIt")
	reach := g.Reachable(sortIt)
	for _, want := range []string{"graphfix.ints.Len", "graphfix.ints.Less", "graphfix.ints.Swap"} {
		if n := g.LookupName(want); n == nil || !reach.Has(n) {
			t.Errorf("%s should be reachable from SortIt via callback edges", want)
		}
	}
	if root := g.LookupName("graphfix.Root"); reach.Has(root) {
		t.Error("Root should not be reachable from SortIt")
	}
}
