// Package graphfix exercises every edge kind the callgraph resolves:
// static calls, concrete-method calls, interface dispatch, callback
// edges through a stdlib call, function-literal attribution, and an
// unreachable function.
package graphfix

import "sort"

type Doer interface{ Do(x int) int }

type A struct{}

func (A) Do(x int) int { return x + 1 }

type B struct{}

func (*B) Do(x int) int { return helper(x) }

func helper(x int) int { return x * 2 }

//khs:hotpath exercised by the callgraph unit suite
func Root(d Doer) int {
	n := helper(1) // static edge
	var a A
	n += a.Do(n) // concrete method edge
	n += d.Do(n) // interface dispatch: A.Do and B.Do
	f := func() int { return helper(3) }
	n += f() // dynamic site; the literal's body still belongs to Root
	return n
}

func Unreached() int { return helper(9) }

type ints []int

func (s ints) Len() int           { return len(s) }
func (s ints) Less(i, j int) bool { return s[i] < s[j] }
func (s ints) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

func SortIt(s ints) { sort.Sort(s) } // callback edges to ints.Len/Less/Swap
