// Package callgraph builds a conservative, class-hierarchy-style call
// graph over the units loaded by internal/analysis/load, pure-stdlib like
// the rest of the analysis framework. It is the substrate for the
// hot-path passes (hotalloc, hotblock): they mark roots with a
// //khs:hotpath annotation and walk everything reachable from them.
//
// Resolution model, in decreasing order of precision:
//
//   - Static calls and concrete-method calls resolve to the declared
//     function or method (promoted methods resolve to the embedded
//     type's declaration — that is the function that actually runs).
//   - Interface calls resolve conservatively against every type in the
//     load set that declares a method with the same name and signature
//     (class-hierarchy analysis, per method rather than per interface).
//     Matching is by name plus fully-qualified signature string, which is
//     robust to the loader's source-versus-export-data split: the same
//     method seen through two type-check universes has distinct
//     go/types objects but an identical signature string.
//   - Calls into functions outside the load set (stdlib, e.g.
//     container/heap) add callback edges: for every parameter whose type
//     is a non-empty interface, the concrete argument's matching methods
//     are assumed callable (heap.Init(h) may call h.Len/Less/Swap/...).
//
// Known limitation, by design: calls through plain function values —
// stored fields like sim.Network.delivCb or fixpoint.Options.Trace,
// locals, and parameters — are not resolved (that needs SSA-level
// dataflow). They are counted per function as Dynamic sites so passes
// and tooling can at least see where the graph is blind.
//
// Function literals do not get nodes of their own: a FuncLit body is
// attributed to the enclosing declared function, since the literal runs
// (if at all) under that function's contract.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"kncube/internal/analysis"
)

// HotPathDirective is the doc-comment annotation that marks a function as
// a hot root. It may carry a trailing note: "//khs:hotpath inner solver loop".
const HotPathDirective = "//khs:hotpath"

// EdgeKind classifies how a call site was resolved.
type EdgeKind int

const (
	// KindStatic is a direct call of a declared function.
	KindStatic EdgeKind = iota
	// KindMethod is a method call on a concrete (non-interface) receiver.
	KindMethod
	// KindInterface is an interface-dispatch call, resolved against every
	// load-set type declaring a matching method.
	KindInterface
	// KindCallback is a conservative edge through an interface-typed
	// argument handed to a function outside the load set.
	KindCallback
)

func (k EdgeKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindMethod:
		return "method"
	case KindInterface:
		return "interface"
	case KindCallback:
		return "callback"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Edge is one resolved call: the enclosing function may invoke Callee
// from the site at Pos.
type Edge struct {
	Kind   EdgeKind
	Pos    token.Pos
	Callee *Node
}

// Node is one declared function or method in the load set.
type Node struct {
	// Func is the go/types object from the unit that declares the
	// function (the source-checked one, not an export-data mirror).
	Func *types.Func
	// Decl is the declaration; Decl.Body is nil for assembly stubs.
	Decl *ast.FuncDecl
	// Info is the type-resolution table of the declaring unit, valid for
	// every node inside Decl.
	Info *types.Info
	// Hot reports whether the declaration's doc comment carries the
	// //khs:hotpath directive.
	Hot bool
	// Edges are the resolved out-calls, in source order.
	Edges []Edge
	// Dynamic are call sites through plain function values that the
	// graph cannot resolve (see the package comment).
	Dynamic []token.Pos

	key string
}

// String renames the node the way a human would: pkgname.Func or
// pkgname.(*Recv).Method.
func (n *Node) String() string {
	fn := n.Func
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}

// Summary is the per-function rollup exposed for tooling: out-edge
// counts by resolution kind plus the number of unresolved dynamic sites.
type Summary struct {
	Static, Method, Interface, Callback, Dynamic int
}

// Summary computes the node's edge rollup.
func (n *Node) Summary() Summary {
	s := Summary{Dynamic: len(n.Dynamic)}
	for _, e := range n.Edges {
		switch e.Kind {
		case KindStatic:
			s.Static++
		case KindMethod:
			s.Method++
		case KindInterface:
			s.Interface++
		case KindCallback:
			s.Callback++
		}
	}
	return s
}

// Graph is the whole-program call graph.
type Graph struct {
	Fset *token.FileSet

	nodes map[string]*Node
	order []*Node
}

// Nodes returns every node in declaration-position order.
func (g *Graph) Nodes() []*Node { return g.order }

// Lookup resolves a function object (from any type-check universe) to
// its node, or nil if the function is not declared in the load set.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[funcKey(fn)]
}

// LookupName resolves "pkgpath.Func" or "pkgpath.Recv.Method" (receiver
// type name without pointer star). Intended for tests and tooling.
func (g *Graph) LookupName(key string) *Node { return g.nodes[key] }

// HotRoots returns the //khs:hotpath-annotated nodes in position order.
func (g *Graph) HotRoots() []*Node {
	var roots []*Node
	for _, n := range g.order {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	return roots
}

// funcKey is the universe-independent identity of a declared function:
// package path, receiver type name (if any), function name. The loader
// type-checks each package from source once and its importers serve
// export data, so the same function can appear behind distinct go/types
// objects; the key collapses them.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
		}
		switch t := t.(type) {
		case *types.Named:
			return pkg + "." + t.Obj().Name() + "." + fn.Name()
		case *types.Interface:
			// Interface methods are resolution inputs, not nodes; key
			// them distinctly so they never collide with declarations.
			return pkg + ".<interface>." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// sigString renders a function signature with package-path qualifiers,
// the universe-independent form used for interface-method matching.
func sigString(sig *types.Signature) string {
	// Strip the receiver: interface methods and their implementations
	// differ only there.
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(noRecv, func(p *types.Package) string { return p.Path() })
}

// methodSigKey indexes a method by name and qualified signature.
func methodSigKey(name string, sig *types.Signature) string {
	return name + "|" + sigString(sig)
}

// Build constructs the graph over the given units. All units must share
// one FileSet (the loader guarantees this).
func Build(units []analysis.Unit) *Graph {
	g := &Graph{nodes: map[string]*Node{}}
	if len(units) > 0 {
		g.Fset = units[0].Fset
	}

	// Pass 1: create a node per declared function/method and index
	// methods by name+signature for interface resolution.
	methodIndex := map[string][]*Node{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := u.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					Func: fn,
					Decl: fd,
					Info: u.TypesInfo,
					Hot:  hasHotPathDirective(fd),
					key:  funcKey(fn),
				}
				if prev, dup := g.nodes[n.key]; dup {
					// An xtest unit can re-check files already seen, or a
					// test helper can collide by name; keep the first and
					// fold hotness so annotations are never lost.
					prev.Hot = prev.Hot || n.Hot
					continue
				}
				g.nodes[n.key] = n
				g.order = append(g.order, n)
				if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Recv() != nil {
					k := methodSigKey(fn.Name(), sig)
					methodIndex[k] = append(methodIndex[k], n)
				}
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool {
		pi, pj := g.Fset.Position(g.order[i].Decl.Pos()), g.Fset.Position(g.order[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	// Pass 2: resolve call sites.
	for _, n := range g.nodes {
		if n.Decl.Body == nil {
			continue
		}
		b := &builder{g: g, info: n.Info, methods: methodIndex, node: n}
		ast.Inspect(n.Decl.Body, b.visit)
	}
	return g
}

// builder accumulates edges for one node.
type builder struct {
	g       *Graph
	info    *types.Info
	methods map[string][]*Node
	node    *Node
}

func (b *builder) visit(nd ast.Node) bool {
	call, ok := nd.(*ast.CallExpr)
	if !ok {
		return true
	}
	b.call(call)
	return true
}

func (b *builder) call(call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		// Conversion to a non-named type, func-literal call, indexed
		// call, etc.
		if b.isDynamic(call) {
			b.node.Dynamic = append(b.node.Dynamic, call.Lparen)
		}
		return
	}
	switch obj := b.info.Uses[id].(type) {
	case *types.Func:
		fn := obj.Origin()
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// Interface dispatch: every load-set type declaring a
			// matching method is a potential callee.
			for _, callee := range b.methods[methodSigKey(fn.Name(), sig)] {
				b.edge(KindInterface, call.Lparen, callee)
			}
			return
		}
		if callee := b.g.nodes[funcKey(fn)]; callee != nil {
			kind := KindStatic
			if sig != nil && sig.Recv() != nil {
				kind = KindMethod
			}
			b.edge(kind, call.Lparen, callee)
			return
		}
		// Call out of the load set: assume it may invoke the methods of
		// any interface-typed argument (container/heap, sort, ...).
		b.external(call, sig)
	case *types.Builtin, *types.TypeName, nil:
		// Builtins and conversions never produce edges. A nil object on
		// an ident call means a func-typed variable or parameter.
		if obj == nil && b.isDynamic(call) {
			b.node.Dynamic = append(b.node.Dynamic, call.Lparen)
		}
	default:
		// *types.Var: a func-valued field, local, or parameter.
		if b.isDynamic(call) {
			b.node.Dynamic = append(b.node.Dynamic, call.Lparen)
		}
	}
}

// isDynamic reports whether call invokes a function value (as opposed to
// a conversion or a resolved function).
func (b *builder) isDynamic(call *ast.CallExpr) bool {
	tv, ok := b.info.Types[call.Fun]
	if !ok || tv.IsType() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

// external adds callback edges for a call that leaves the load set: for
// every parameter whose type is a non-empty interface, the concrete
// argument's methods that satisfy it are assumed callable.
func (b *builder) external(call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0 && sig.Variadic():
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, oks := params.At(params.Len() - 1).Type().(*types.Slice); oks {
				pt = s.Elem()
			}
		}
		if pt == nil {
			continue
		}
		iface, okIface := pt.Underlying().(*types.Interface)
		if !okIface || iface.NumMethods() == 0 {
			continue
		}
		at := b.info.TypeOf(arg)
		if at == nil {
			continue
		}
		if types.IsInterface(at) {
			// Interface-to-interface hand-off: fall back to per-method
			// class-hierarchy resolution.
			for m := range iface.NumMethods() {
				meth := iface.Method(m)
				msig, _ := meth.Type().(*types.Signature)
				if msig == nil {
					continue
				}
				for _, callee := range b.methods[methodSigKey(meth.Name(), msig)] {
					b.edge(KindCallback, call.Lparen, callee)
				}
			}
			continue
		}
		ms := types.NewMethodSet(at)
		for m := range iface.NumMethods() {
			meth := iface.Method(m)
			sel := ms.Lookup(nil, meth.Name())
			if sel == nil {
				// Unexported interface method from another package, or
				// the method set lookup needs the addressable form.
				sel = types.NewMethodSet(types.NewPointer(at)).Lookup(nil, meth.Name())
			}
			if sel == nil {
				continue
			}
			fn, okFn := sel.Obj().(*types.Func)
			if !okFn {
				continue
			}
			if callee := b.g.nodes[funcKey(fn)]; callee != nil {
				b.edge(KindCallback, call.Lparen, callee)
			}
		}
	}
}

func (b *builder) edge(kind EdgeKind, pos token.Pos, callee *Node) {
	b.node.Edges = append(b.node.Edges, Edge{Kind: kind, Pos: pos, Callee: callee})
}

// hasHotPathDirective reports whether the declaration's doc comment
// carries //khs:hotpath.
func hasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotPathDirective || strings.HasPrefix(c.Text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}

// Reach is the result of a reachability query: the set of nodes
// reachable from the roots, with BFS predecessors for path reporting.
type Reach struct {
	g    *Graph
	prev map[*Node]*Node // predecessor; roots map to nil
	in   map[*Node]bool
}

// Reachable walks the graph breadth-first from the roots (which are
// themselves reachable).
func (g *Graph) Reachable(roots ...*Node) *Reach {
	r := &Reach{g: g, prev: map[*Node]*Node{}, in: map[*Node]bool{}}
	queue := make([]*Node, 0, len(roots))
	for _, n := range roots {
		if n == nil || r.in[n] {
			continue
		}
		r.in[n] = true
		r.prev[n] = nil
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if e.Callee == nil || r.in[e.Callee] {
				continue
			}
			r.in[e.Callee] = true
			r.prev[e.Callee] = n
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Has reports whether n is reachable.
func (r *Reach) Has(n *Node) bool { return r.in[n] }

// Nodes returns the reachable nodes in the graph's declaration order.
func (r *Reach) Nodes() []*Node {
	var out []*Node
	for _, n := range r.g.order {
		if r.in[n] {
			out = append(out, n)
		}
	}
	return out
}

// Path returns a shortest root→n call chain, nil if n is unreachable.
func (r *Reach) Path(n *Node) []*Node {
	if !r.in[n] {
		return nil
	}
	var rev []*Node
	for cur := n; cur != nil; cur = r.prev[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathString renders Path(n) as "root → ... → n" for diagnostics.
func (r *Reach) PathString(n *Node) string {
	path := r.Path(n)
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = p.String()
	}
	return strings.Join(parts, " → ")
}
