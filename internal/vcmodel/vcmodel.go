// Package vcmodel implements Dally's Markovian model of virtual-channel
// multiplexing (W.J. Dally, "Virtual-channel flow control", IEEE TPDS 3(2),
// 1992), as used by Eqs. 33-35 of Loucif, Ould-Khaoua, Min (IPDPS 2005).
//
// A physical channel carrying total traffic rate lambda with mean service
// time s multiplexes V virtual channels. The number of busy virtual channels
// evolves as a birth-death chain; from its stationary distribution the model
// derives the average multiplexing degree
//
//	V̄ = Σ v² Pv / Σ v Pv   (>= 1),
//
// which scales all latencies: when V̄ virtual channels share one physical
// link, each proceeds at 1/V̄ of the link bandwidth.
package vcmodel

import (
	"fmt"

	"kncube/internal/stats"
)

// Degree returns the average virtual-channel multiplexing degree V̄ for a
// physical channel with v virtual channels, total traffic rate lambda
// (messages/cycle) and mean service time s (cycles).
//
// Following Eq. 33, the unnormalised occupancies are
//
//	q_0 = 1,
//	q_v = q_{v-1}·(lambda·s)           for 0 < v < V,
//	q_V = q_{V-1}·(lambda·s)/(1-lambda·s),
//
// normalised into probabilities P_v (Eq. 34), giving V̄ by Eq. 35. When
// lambda·s >= 1 the channel is saturated and all V virtual channels are
// busy, so V̄ = V. An idle channel (lambda·s = 0) has V̄ = 1: a lone message
// never shares the link.
func Degree(v int, lambda, s float64) (float64, error) {
	if v < 1 {
		return 0, fmt.Errorf("vcmodel: %d virtual channels, want >= 1", v)
	}
	if lambda < 0 || s < 0 {
		return 0, fmt.Errorf("vcmodel: negative load (lambda=%v, s=%v)", lambda, s)
	}
	rho := lambda * s
	if stats.IsZero(rho) {
		return 1, nil
	}
	if rho >= 1 {
		return float64(v), nil
	}
	p := Occupancy(v, rho)
	var num, den float64
	for i := 1; i <= v; i++ {
		num += float64(i*i) * p[i]
		den += float64(i) * p[i]
	}
	if stats.IsZero(den) {
		return 1, nil
	}
	return num / den, nil
}

// Occupancy returns the stationary distribution P_0..P_V of the number of
// busy virtual channels for utilisation rho = lambda*s in [0, 1).
func Occupancy(v int, rho float64) []float64 {
	q := make([]float64, v+1) //lint:ignore hotalloc occupancy vector per blocking evaluation, an accepted solver cost
	q[0] = 1
	for i := 1; i < v; i++ {
		q[i] = q[i-1] * rho
	}
	if v >= 1 {
		prev := q[0]
		if v > 1 {
			prev = q[v-1]
		}
		q[v] = prev * rho / (1 - rho)
	}
	var sum float64
	for _, x := range q {
		sum += x
	}
	for i := range q {
		q[i] /= sum
	}
	return q
}

// ScaleLatency multiplies a latency by the multiplexing degree, the way the
// paper applies V̄ to message latencies (Eqs. 10-14, 22, 24).
func ScaleLatency(latency, degree float64) float64 { return latency * degree }
