package vcmodel

import (
	"math"
	"testing"
	"testing/quick"

	"kncube/internal/stats"
)

func TestDegreeValidation(t *testing.T) {
	if _, err := Degree(0, 0.1, 10); err == nil {
		t.Error("v=0 accepted")
	}
	if _, err := Degree(2, -0.1, 10); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := Degree(2, 0.1, -10); err == nil {
		t.Error("negative s accepted")
	}
}

func TestDegreeIdleChannel(t *testing.T) {
	for _, v := range []int{1, 2, 4, 8} {
		got, err := Degree(v, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ApproxEqual(got, 1, 0, 0) {
			t.Errorf("V=%d idle: degree %v, want 1", v, got)
		}
	}
}

func TestDegreeSaturatedChannel(t *testing.T) {
	for _, v := range []int{1, 2, 4} {
		got, err := Degree(v, 0.05, 20) // rho = 1
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ApproxEqual(got, float64(v), 0, 0) {
			t.Errorf("V=%d saturated: degree %v, want %d", v, got, v)
		}
	}
}

func TestDegreeBounds(t *testing.T) {
	f := func(load uint8, vRaw uint8) bool {
		v := int(vRaw%8) + 1
		rho := float64(load) / 256.0 // in [0,1)
		d, err := Degree(v, rho, 1)
		if err != nil {
			return false
		}
		return d >= 1-1e-12 && d <= float64(v)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegreeMonotoneInLoad(t *testing.T) {
	for _, v := range []int{2, 4, 8} {
		prev := 0.0
		for rho := 0.0; rho < 1.0; rho += 0.01 {
			d, err := Degree(v, rho, 1)
			if err != nil {
				t.Fatal(err)
			}
			if d+1e-12 < prev {
				t.Fatalf("V=%d: degree decreased at rho=%v (%v < %v)", v, rho, d, prev)
			}
			prev = d
		}
	}
}

func TestDegreeSingleVC(t *testing.T) {
	// With one virtual channel the degree is always exactly 1.
	for _, rho := range []float64{0, 0.2, 0.5, 0.9, 0.99} {
		d, err := Degree(1, rho, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-1) > 1e-12 {
			t.Errorf("V=1 rho=%v: degree %v, want 1", rho, d)
		}
	}
}

func TestDegreeLowLoadNearOne(t *testing.T) {
	d, err := Degree(4, 1e-6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1.001 {
		t.Errorf("low load degree %v, want ~1", d)
	}
}

func TestOccupancyIsDistribution(t *testing.T) {
	for _, v := range []int{1, 2, 3, 8} {
		for _, rho := range []float64{0.01, 0.3, 0.7, 0.99} {
			p := Occupancy(v, rho)
			if len(p) != v+1 {
				t.Fatalf("V=%d: %d entries", v, len(p))
			}
			sum := 0.0
			for i, x := range p {
				if x < 0 {
					t.Fatalf("V=%d rho=%v: P_%d = %v < 0", v, rho, i, x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("V=%d rho=%v: probabilities sum to %v", v, rho, sum)
			}
		}
	}
}

func TestOccupancyGeometricBody(t *testing.T) {
	// For 0 < i < V, P_i/P_{i-1} must equal rho.
	p := Occupancy(5, 0.4)
	for i := 1; i < 5; i++ {
		if math.Abs(p[i]/p[i-1]-0.4) > 1e-12 {
			t.Errorf("P_%d/P_%d = %v, want 0.4", i, i-1, p[i]/p[i-1])
		}
	}
	// The last state is inflated by 1/(1-rho).
	if math.Abs(p[5]/p[4]-0.4/0.6) > 1e-12 {
		t.Errorf("P_V/P_{V-1} = %v, want %v", p[5]/p[4], 0.4/0.6)
	}
}

func TestOccupancyHighLoadConcentratesAtV(t *testing.T) {
	p := Occupancy(2, 0.999)
	if p[2] < 0.99 {
		t.Errorf("rho=0.999: P_V = %v, want ~1", p[2])
	}
}

func TestDegreeTwoVCKnownValue(t *testing.T) {
	// Hand computation for V=2, rho=0.5:
	// q = [1, 0.5, 0.5], P = [0.5, 0.25, 0.25],
	// V̄ = (1*0.25 + 4*0.25)/(1*0.25 + 2*0.25) = 1.25/0.75 = 5/3.
	d, err := Degree(2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5.0/3.0) > 1e-12 {
		t.Errorf("degree = %v, want 5/3", d)
	}
}

func TestScaleLatency(t *testing.T) {
	if got := ScaleLatency(100, 1.5); !stats.ApproxEqual(got, 150, 0, 0) {
		t.Errorf("ScaleLatency = %v", got)
	}
}
