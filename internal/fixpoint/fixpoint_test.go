package fixpoint

import (
	"context"
	"errors"
	"math"
	"testing"

	"kncube/internal/stats"
)

func TestSolveLinearContraction(t *testing.T) {
	// x = 0.5x + 3 has fixed point 6.
	f := func(in, out []float64) error {
		out[0] = 0.5*in[0] + 3
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{Tolerance: 1e-10, MaxIterations: 1000, Damping: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-6) > 1e-8 {
		t.Errorf("fixed point %v, want 6 (res %+v)", state[0], res)
	}
}

func TestSolveCoupledSystem(t *testing.T) {
	// x = (y+1)/2, y = (x+1)/2 has fixed point (1, 1).
	f := func(in, out []float64) error {
		out[0] = (in[1] + 1) / 2
		out[1] = (in[0] + 1) / 2
		return nil
	}
	state := []float64{0, 10}
	if _, err := Solve(state, f, Options{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-1) > 1e-5 || math.Abs(state[1]-1) > 1e-5 {
		t.Errorf("fixed point %v, want (1,1)", state)
	}
}

func TestSolveNonlinear(t *testing.T) {
	// x = cos(x): Dottie number 0.739085...
	f := func(in, out []float64) error {
		out[0] = math.Cos(in[0])
		return nil
	}
	state := []float64{0}
	if _, err := Solve(state, f, Options{Tolerance: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-0.7390851332) > 1e-6 {
		t.Errorf("Dottie number: got %v", state[0])
	}
}

func TestDampingStabilisesOscillation(t *testing.T) {
	// x = -x + 2 oscillates under plain substitution from x=0 (0,2,0,2,...)
	// but converges to 1 with damping 0.5 in one step.
	f := func(in, out []float64) error {
		out[0] = -in[0] + 2
		return nil
	}
	state := []float64{0}
	if _, err := Solve(state, f, Options{Damping: 0.5, Tolerance: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-1) > 1e-6 {
		t.Errorf("oscillator fixed point %v, want 1", state[0])
	}
}

func TestSolveDivergenceDetected(t *testing.T) {
	f := func(in, out []float64) error {
		out[0] = in[0]*in[0] + 1e30
		return nil
	}
	state := []float64{1}
	_, err := Solve(state, f, Options{MaxIterations: 100, Damping: 1})
	if !errors.Is(err, ErrDiverged) {
		t.Errorf("err = %v, want ErrDiverged", err)
	}
}

func TestSolveMaxIterations(t *testing.T) {
	// Growth without overflow within the budget: hits the iteration cap.
	f := func(in, out []float64) error {
		out[0] = in[0] + 1
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{MaxIterations: 50, Damping: 1})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
	if res.Iterations != 50 {
		t.Errorf("iterations = %d, want 50", res.Iterations)
	}
}

func TestSolvePropagatesMapError(t *testing.T) {
	sentinel := errors.New("saturated")
	f := func(in, out []float64) error { return sentinel }
	_, err := Solve([]float64{0}, f, Options{})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestSolveOptionValidation(t *testing.T) {
	ok := func(in, out []float64) error { copy(out, in); return nil }
	if _, err := Solve([]float64{0}, ok, Options{Damping: 1.5}); err == nil {
		t.Error("damping > 1 accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{Damping: -0.1}); err == nil {
		t.Error("negative damping accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{Tolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{MaxIterations: -5}); err == nil {
		t.Error("negative MaxIterations accepted")
	}
}

func TestSolveIdentityConvergesImmediately(t *testing.T) {
	f := func(in, out []float64) error { copy(out, in); return nil }
	state := []float64{3, 4, 5}
	res, err := Solve(state, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("identity took %d iterations", res.Iterations)
	}
	if !stats.IsZero(res.Residual) {
		t.Errorf("identity residual %v", res.Residual)
	}
}

func TestSolveEmptyState(t *testing.T) {
	f := func(in, out []float64) error { return nil }
	if _, err := Solve(nil, f, Options{}); err != nil {
		t.Errorf("empty state: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := Defaults()
	if d.Tolerance <= 0 || d.MaxIterations <= 0 || d.Damping <= 0 || d.Damping > 1 {
		t.Errorf("bad defaults: %+v", d)
	}
}

func TestTraceRecordsEveryIteration(t *testing.T) {
	f := func(in, out []float64) error {
		out[0] = 0.5*in[0] + 3
		return nil
	}
	var recs []TraceRecord
	state := []float64{0}
	res, err := Solve(state, f, Options{
		Tolerance: 1e-10, MaxIterations: 1000, Damping: 1,
		Trace: func(r TraceRecord) { recs = append(recs, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Iterations {
		t.Fatalf("%d trace records for %d iterations", len(recs), res.Iterations)
	}
	for i, r := range recs {
		if r.Iteration != i+1 {
			t.Errorf("record %d has iteration %d", i, r.Iteration)
		}
		if !stats.ApproxEqual(r.Damping, 1, 0, 0) {
			t.Errorf("record %d damping %v, want 1", i, r.Damping)
		}
		if r.NonFiniteIndex != -1 {
			t.Errorf("record %d non-finite index %d on a finite run", i, r.NonFiniteIndex)
		}
	}
	last := recs[len(recs)-1]
	if !stats.ApproxEqual(last.MaxRelDelta, res.Residual, 0, 0) {
		t.Errorf("last trace delta %v != residual %v", last.MaxRelDelta, res.Residual)
	}
	if !res.Converged || res.Diverged {
		t.Errorf("convergence summary %+v, want converged", res)
	}
}

func TestTraceReportsNonFiniteIndex(t *testing.T) {
	// Variable 2 of 3 blows up; the final record must name it.
	f := func(in, out []float64) error {
		out[0] = in[0]
		out[1] = in[1]
		out[2] = in[2]*in[2] + 1e200
		return nil
	}
	var last TraceRecord
	state := []float64{1, 1, 1}
	res, err := Solve(state, f, Options{
		MaxIterations: 100, Damping: 1,
		Trace: func(r TraceRecord) { last = r },
	})
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if last.NonFiniteIndex != 2 {
		t.Errorf("trace non-finite index %d, want 2", last.NonFiniteIndex)
	}
	if !res.Diverged || res.NonFiniteIndex != 2 {
		t.Errorf("convergence summary %+v, want diverged at index 2", res)
	}
}

func TestConvergenceSummaryPopulated(t *testing.T) {
	f := func(in, out []float64) error {
		out[0] = 0.5*in[0] + 3
		return nil
	}
	res, err := Solve([]float64{0}, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := Defaults()
	if !stats.ApproxEqual(res.Tolerance, d.Tolerance, 0, 0) || !stats.ApproxEqual(res.Damping, d.Damping, 0, 0) {
		t.Errorf("effective settings %+v, want defaults %+v", res, d)
	}
	if res.Iterations < 1 {
		t.Errorf("summary iterations %d, want >= 1", res.Iterations)
	}
	if res.DampedRounds != res.Iterations || res.AcceleratedRounds != 0 {
		t.Errorf("round counters %+v out of sync with iterations on an unaccelerated run", res)
	}
	if res.NonFiniteIndex != -1 {
		t.Errorf("non-finite index %d on a finite run", res.NonFiniteIndex)
	}

	// Budget exhaustion: neither converged nor diverged.
	grow := func(in, out []float64) error { out[0] = in[0] + 1; return nil }
	res, err = Solve([]float64{0}, grow, Options{MaxIterations: 10, Damping: 1})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
	if res.Converged || res.Diverged {
		t.Errorf("budget-exhausted summary %+v", res)
	}
	if res.Iterations != 10 {
		t.Errorf("summary iterations %d, want 10", res.Iterations)
	}
}

func TestSolveCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := func(in, out []float64) error {
		t.Error("map must not run under an already-cancelled context")
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrDiverged) || errors.Is(err, ErrMaxIterations) {
		t.Errorf("cancellation must stay distinct from iteration failures: %v", err)
	}
	if res.Iterations != 0 {
		t.Errorf("Iterations = %d, want 0 (cancelled before the first round)", res.Iterations)
	}
}

func TestSolveDeadlineCancelsMidIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	// A map that never converges; cancel after the third round.
	f := func(in, out []float64) error {
		rounds++
		if rounds == 3 {
			cancel()
		}
		out[0] = in[0] + 1
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{Ctx: ctx, MaxIterations: 100000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rounds != 3 {
		t.Errorf("map ran %d rounds after cancellation, want exactly 3", rounds)
	}
	if res.Iterations != 3 {
		t.Errorf("Convergence.Iterations = %d, want 3", res.Iterations)
	}
	if res.Converged || res.Diverged {
		t.Errorf("cancelled run reported Converged/Diverged: %+v", res)
	}
}

func TestSolveNilContextIgnored(t *testing.T) {
	f := func(in, out []float64) error {
		out[0] = 0.5*in[0] + 3
		return nil
	}
	state := []float64{0}
	if _, err := Solve(state, f, Options{}); err != nil {
		t.Fatalf("nil Ctx must behave as no cancellation: %v", err)
	}
}
