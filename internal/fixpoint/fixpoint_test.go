package fixpoint

import (
	"errors"
	"math"
	"testing"
)

func TestSolveLinearContraction(t *testing.T) {
	// x = 0.5x + 3 has fixed point 6.
	f := func(in, out []float64) error {
		out[0] = 0.5*in[0] + 3
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{Tolerance: 1e-10, MaxIterations: 1000, Damping: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-6) > 1e-8 {
		t.Errorf("fixed point %v, want 6 (res %+v)", state[0], res)
	}
}

func TestSolveCoupledSystem(t *testing.T) {
	// x = (y+1)/2, y = (x+1)/2 has fixed point (1, 1).
	f := func(in, out []float64) error {
		out[0] = (in[1] + 1) / 2
		out[1] = (in[0] + 1) / 2
		return nil
	}
	state := []float64{0, 10}
	if _, err := Solve(state, f, Options{}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-1) > 1e-5 || math.Abs(state[1]-1) > 1e-5 {
		t.Errorf("fixed point %v, want (1,1)", state)
	}
}

func TestSolveNonlinear(t *testing.T) {
	// x = cos(x): Dottie number 0.739085...
	f := func(in, out []float64) error {
		out[0] = math.Cos(in[0])
		return nil
	}
	state := []float64{0}
	if _, err := Solve(state, f, Options{Tolerance: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-0.7390851332) > 1e-6 {
		t.Errorf("Dottie number: got %v", state[0])
	}
}

func TestDampingStabilisesOscillation(t *testing.T) {
	// x = -x + 2 oscillates under plain substitution from x=0 (0,2,0,2,...)
	// but converges to 1 with damping 0.5 in one step.
	f := func(in, out []float64) error {
		out[0] = -in[0] + 2
		return nil
	}
	state := []float64{0}
	if _, err := Solve(state, f, Options{Damping: 0.5, Tolerance: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(state[0]-1) > 1e-6 {
		t.Errorf("oscillator fixed point %v, want 1", state[0])
	}
}

func TestSolveDivergenceDetected(t *testing.T) {
	f := func(in, out []float64) error {
		out[0] = in[0]*in[0] + 1e30
		return nil
	}
	state := []float64{1}
	_, err := Solve(state, f, Options{MaxIterations: 100, Damping: 1})
	if !errors.Is(err, ErrDiverged) {
		t.Errorf("err = %v, want ErrDiverged", err)
	}
}

func TestSolveMaxIterations(t *testing.T) {
	// Growth without overflow within the budget: hits the iteration cap.
	f := func(in, out []float64) error {
		out[0] = in[0] + 1
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{MaxIterations: 50, Damping: 1})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
	if res.Iterations != 50 {
		t.Errorf("iterations = %d, want 50", res.Iterations)
	}
}

func TestSolvePropagatesMapError(t *testing.T) {
	sentinel := errors.New("saturated")
	f := func(in, out []float64) error { return sentinel }
	_, err := Solve([]float64{0}, f, Options{})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestSolveOptionValidation(t *testing.T) {
	ok := func(in, out []float64) error { copy(out, in); return nil }
	if _, err := Solve([]float64{0}, ok, Options{Damping: 1.5}); err == nil {
		t.Error("damping > 1 accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{Damping: -0.1}); err == nil {
		t.Error("negative damping accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{Tolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{MaxIterations: -5}); err == nil {
		t.Error("negative MaxIterations accepted")
	}
}

func TestSolveIdentityConvergesImmediately(t *testing.T) {
	f := func(in, out []float64) error { copy(out, in); return nil }
	state := []float64{3, 4, 5}
	res, err := Solve(state, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("identity took %d iterations", res.Iterations)
	}
	if res.Residual != 0 {
		t.Errorf("identity residual %v", res.Residual)
	}
}

func TestSolveEmptyState(t *testing.T) {
	f := func(in, out []float64) error { return nil }
	if _, err := Solve(nil, f, Options{}); err != nil {
		t.Errorf("empty state: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := Defaults()
	if d.Tolerance <= 0 || d.MaxIterations <= 0 || d.Damping <= 0 || d.Damping > 1 {
		t.Errorf("bad defaults: %+v", d)
	}
}
