// Package fixpoint solves the systems of mutually-dependent nonlinear
// equations that analytical interconnect models produce. The paper (Section
// 3, final paragraph) notes that a closed-form solution of the
// interdependencies is intractable and resorts to iterative techniques;
// this package provides that machinery: damped successive substitution with
// convergence and divergence detection, optional Anderson/Aitken
// acceleration for the slow-convergence regime near saturation, and an
// observability layer (a per-iteration trace hook and a Convergence summary)
// so saturation and slow-convergence diagnostics are data rather than opaque
// errors.
package fixpoint

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrDiverged reports that the iteration produced a non-finite value. In
// latency models this corresponds to operating beyond the saturation point.
var ErrDiverged = errors.New("fixpoint: iteration diverged (non-finite value)")

// ErrMaxIterations reports that the iteration failed to converge within the
// configured budget.
var ErrMaxIterations = errors.New("fixpoint: maximum iterations exceeded")

// Acceleration selects the extrapolation scheme layered on the damped
// substitution baseline.
type Acceleration int

const (
	// AccelNone is plain damped successive substitution (the default). Its
	// arithmetic is exactly the historical iteration: existing golden
	// results are reproduced bit-for-bit.
	AccelNone Acceleration = iota
	// AccelAnderson is windowed Anderson mixing (type II): each round
	// combines the last Window residual differences by least squares to
	// extrapolate toward the fixed point, typically cutting the iteration
	// count by an order of magnitude near saturation where the damped
	// contraction rate approaches 1.
	AccelAnderson
	// AccelAitken is componentwise Aitken Δ² extrapolation over triples of
	// successive damped iterates — a cheap fallback needing no linear
	// algebra: two damped rounds, then one extrapolated round.
	AccelAitken
)

// String returns the scheme's canonical name as accepted by
// ParseAcceleration ("none", "anderson", "aitken").
func (a Acceleration) String() string {
	switch a {
	case AccelNone:
		return "none"
	case AccelAnderson:
		return "anderson"
	case AccelAitken:
		return "aitken"
	default:
		return fmt.Sprintf("acceleration(%d)", int(a))
	}
}

// ParseAcceleration maps a scheme name to its Acceleration value. The
// empty string and "none" both select AccelNone, so an unset flag or
// API field means the bit-identical damped baseline.
func ParseAcceleration(name string) (Acceleration, error) {
	switch name {
	case "", "none":
		return AccelNone, nil
	case "anderson":
		return AccelAnderson, nil
	case "aitken":
		return AccelAitken, nil
	default:
		return AccelNone, fmt.Errorf("fixpoint: unknown acceleration scheme %q (none, anderson, aitken)", name)
	}
}

// TraceRecord describes one substitution round; see Options.Trace.
type TraceRecord struct {
	// Iteration is the 1-based round index.
	Iteration int
	// MaxRelDelta is the round's maximum relative change over the state
	// variables (the convergence measure). On a diverging round it covers
	// only the variables scanned before the non-finite value was found.
	MaxRelDelta float64
	// Damping is the damping factor in effect.
	Damping float64
	// NonFiniteIndex is the index of the first state variable that became
	// NaN or infinite this round, or -1 while the state is finite. A
	// record with NonFiniteIndex >= 0 is the iteration's last.
	NonFiniteIndex int
	// Accelerated marks a round whose state update came from the configured
	// extrapolation scheme rather than the plain damped step (safeguard
	// fallbacks and warm-up rounds report false).
	Accelerated bool
}

// Options configure a Solve run. The zero value is replaced by Defaults.
type Options struct {
	// Tolerance is the maximum relative change of any variable between two
	// successive iterations for the state to count as converged.
	Tolerance float64
	// MaxIterations bounds the number of substitution rounds.
	MaxIterations int
	// Damping in (0, 1] mixes the new iterate with the previous one:
	// x' = (1-Damping)*x + Damping*F(x). 1 is plain substitution; smaller
	// values trade speed for robustness near saturation.
	Damping float64
	// Acceleration selects an extrapolation scheme on top of the damped
	// baseline (AccelNone leaves the iteration untouched). Accelerated
	// rounds are safeguarded: a round whose residual increased relative to
	// the previous round discards the acceleration history and falls back
	// to a plain damped step, so a wild extrapolation can slow convergence
	// but never destabilise it.
	Acceleration Acceleration
	// Window is the Anderson mixing depth — how many past residual
	// differences the least-squares extrapolation combines. 0 means 5.
	// Ignored unless Acceleration is AccelAnderson.
	Window int
	// Trace, when non-nil, is called once per substitution round after the
	// state update (and once more, with NonFiniteIndex set, when a round
	// diverges). It must not retain the record past the call.
	Trace func(TraceRecord)
	// Ctx, when non-nil, cancels the iteration: it is checked once per
	// substitution round, and on cancellation Solve returns an error
	// wrapping ctx.Err() (context.Canceled or context.DeadlineExceeded).
	// Callers distinguish cancellation from saturation with errors.Is;
	// the core driver never reclassifies it as a saturation failure.
	Ctx context.Context
}

// Defaults returns the options used when a zero Options is supplied.
func Defaults() Options {
	return Options{Tolerance: 1e-6, MaxIterations: 10000, Damping: 0.5}
}

// defaultWindow is the Anderson mixing depth when Options.Window is 0.
const defaultWindow = 5

func (o Options) withDefaults() (Options, error) {
	d := Defaults()
	// This package stays free of internal dependencies, so the unset-field
	// checks compare the zero value directly instead of via stats.IsZero.
	//lint:ignore floateq zero-value Options field means unset
	if o.Tolerance == 0 {
		o.Tolerance = d.Tolerance
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = d.MaxIterations
	}
	//lint:ignore floateq zero-value Options field means unset
	if o.Damping == 0 {
		o.Damping = d.Damping
	}
	if o.Window == 0 {
		o.Window = defaultWindow
	}
	if o.Tolerance < 0 {
		return o, fmt.Errorf("fixpoint: negative tolerance %v", o.Tolerance)
	}
	if o.MaxIterations < 1 {
		return o, fmt.Errorf("fixpoint: MaxIterations %d < 1", o.MaxIterations)
	}
	if o.Damping < 0 || o.Damping > 1 {
		return o, fmt.Errorf("fixpoint: damping %v outside (0, 1]", o.Damping)
	}
	if o.Acceleration < AccelNone || o.Acceleration > AccelAitken {
		return o, fmt.Errorf("fixpoint: unknown acceleration scheme %d", o.Acceleration)
	}
	if o.Window < 1 {
		return o, fmt.Errorf("fixpoint: Window %d < 1", o.Window)
	}
	return o, nil
}

// Convergence summarises how an iteration ended: the round count, the final
// residual, the effective settings, and the outcome flags. It is Solve's
// result; models propagate it into their own results so callers can
// distinguish a comfortable fixed point from one found at the iteration
// budget's edge.
type Convergence struct {
	// Iterations is the number of substitution rounds performed.
	Iterations int
	// Residual is the final maximum relative change.
	Residual float64
	// Tolerance and Damping are the effective (defaulted) settings.
	Tolerance float64
	Damping   float64
	// Converged reports that Residual fell below Tolerance; Diverged that a
	// state variable became non-finite. Both false means the iteration
	// budget was exhausted (or the map returned an error).
	Converged bool
	Diverged  bool
	// NonFiniteIndex is the index of the first non-finite state variable
	// when Diverged, -1 otherwise.
	NonFiniteIndex int
	// AcceleratedRounds counts rounds whose update came from the configured
	// extrapolation scheme; DampedRounds counts plain damped-substitution
	// rounds, including warm-up rounds and safeguard fallbacks. The two sum
	// to Iterations.
	AcceleratedRounds int
	DampedRounds      int
}

// Map evaluates one substitution round: given the current state it writes
// the next state into out (len(out) == len(in)). It may return an error to
// abort; the error is propagated to Solve's caller (models use this to
// signal saturation).
type Map func(in, out []float64) error

// Solve iterates x <- (1-d)x + d F(x) from the given initial state until the
// maximum relative change falls below the tolerance, optionally accelerating
// rounds per Options.Acceleration. The state slice is modified in place and
// also returned. The returned Convergence summary is populated on every exit
// path, including errors.
//
//khs:hotpath
func Solve(state []float64, f Map, opts Options) (Convergence, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return Convergence{NonFiniteIndex: -1}, err
	}
	next := make([]float64, len(state)) //lint:ignore hotalloc one-time solve-entry scratch, sized once per Solve
	conv := Convergence{
		Tolerance:      o.Tolerance,
		Damping:        o.Damping,
		NonFiniteIndex: -1,
	}
	trace := func(maxRel float64, nonFinite int, accelerated bool) { //lint:ignore hotalloc trace closure bound once per Solve, before the rounds
		if o.Trace != nil {
			o.Trace(TraceRecord{
				Iteration:      conv.Iterations,
				MaxRelDelta:    maxRel,
				Damping:        o.Damping,
				NonFiniteIndex: nonFinite,
				Accelerated:    accelerated,
			})
		}
	}
	var acc *accelState
	var rollback, rollbackF []float64
	// lastAccel marks that the most recent state update was an accelerated
	// step whose pre-step state (and its map value) are held in
	// rollback/rollbackF. An extrapolation can land outside the model's
	// domain — the map then errors or the next update goes non-finite even
	// though the fixed point exists — so any failure in the round after an
	// accelerated step restores the pre-step state and redoes the round
	// damped instead of reporting divergence.
	lastAccel := false
	if o.Acceleration != AccelNone && len(state) > 0 {
		acc = newAccelState(o.Acceleration, o.Window, o.Damping, len(state))
		rollback = make([]float64, len(state))  //lint:ignore hotalloc one-time solve-entry scratch, sized once per Solve
		rollbackF = make([]float64, len(state)) //lint:ignore hotalloc one-time solve-entry scratch, sized once per Solve
	}
	for iter := 1; iter <= o.MaxIterations; iter++ {
		if o.Ctx != nil {
			if cerr := o.Ctx.Err(); cerr != nil {
				return conv, fmt.Errorf("fixpoint: cancelled after %d iterations: %w",
					conv.Iterations, cerr)
			}
		}
		conv.Iterations = iter
		redo := false
		if err := f(state, next); err != nil {
			if !lastAccel {
				return conv, err
			}
			// Rejected extrapolation: restore the pre-acceleration state and
			// its (already evaluated) map value, then take a damped step.
			copy(state, rollback)
			copy(next, rollbackF)
			acc.reset()
			lastAccel = false
			redo = true
		}
		if acc != nil && !redo {
			cand, undo := acc.step(state, next, lastAccel)
			if undo {
				// The previous round's accelerated step increased the
				// residual: rewind it and take the damped step from the
				// pre-acceleration state instead.
				copy(state, rollback)
				copy(next, rollbackF)
				lastAccel = false
			} else if cand != nil {
				// acc.step has verified the candidate finite. state still
				// holds the pre-step iterate: snapshot it for rollback before
				// applying the update.
				copy(rollback, state)
				copy(rollbackF, next)
				maxRel := 0.0
				for i := range state {
					nv := cand[i]
					den := math.Abs(state[i])
					if den < 1 {
						den = 1
					}
					rel := math.Abs(nv-state[i]) / den
					if rel > maxRel {
						maxRel = rel
					}
					state[i] = nv
				}
				lastAccel = true
				conv.Residual = maxRel
				conv.AcceleratedRounds++
				trace(maxRel, -1, true)
				if maxRel <= o.Tolerance {
					conv.Converged = true
					return conv, nil
				}
				continue
			}
		}
		// Damped round: the exact baseline arithmetic (golden results pin
		// this path bit-for-bit under AccelNone).
	damped:
		maxRel := 0.0
		for i := range state {
			nv := (1-o.Damping)*state[i] + o.Damping*next[i]
			if math.IsNaN(nv) || math.IsInf(nv, 0) {
				if lastAccel {
					// Overflow downstream of an extrapolation, not genuine
					// divergence: restore and redo the round damped.
					copy(state, rollback)
					copy(next, rollbackF)
					acc.reset()
					lastAccel = false
					goto damped
				}
				conv.Residual = maxRel
				conv.Diverged = true
				conv.NonFiniteIndex = i
				trace(maxRel, i, false)
				return conv, ErrDiverged
			}
			den := math.Abs(state[i])
			if den < 1 {
				den = 1
			}
			rel := math.Abs(nv-state[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
			state[i] = nv
		}
		lastAccel = false
		conv.Residual = maxRel
		conv.DampedRounds++
		if acc != nil {
			acc.observeDamped(state)
		}
		trace(maxRel, -1, false)
		if maxRel <= o.Tolerance {
			conv.Converged = true
			return conv, nil
		}
	}
	return conv, ErrMaxIterations
}

// accelState carries the history an extrapolation scheme keeps between
// rounds: recent iterates and map values for Anderson, the last two damped
// iterates for Aitken, and the previous round's residual for the safeguard.
type accelState struct {
	mode Acceleration
	beta float64 // mixing/damping factor

	// Safeguard: the residual norm observed on the previous round. A round
	// whose residual grew rejects acceleration, clears the history and
	// falls back to a damped step.
	prevRes float64
	hasPrev bool

	// Anderson history: the most recent iterates and their map values,
	// oldest first, at most window+1 entries. Backing storage is recycled.
	window int
	xs, fs [][]float64
	spare  [][]float64

	// Aitken chain: the last one or two consecutive post-damped-step
	// states (p1, p2 with p2 = G(p1)); an accelerated round or a safeguard
	// rejection breaks the chain.
	chain [][]float64

	// cand receives the extrapolated candidate state; keeping it separate
	// from the caller's buffers leaves F(x) intact for rollback.
	cand []float64

	// Anderson normal-equation scratch.
	gram []float64
	rhs  []float64
}

func newAccelState(mode Acceleration, window int, beta float64, n int) *accelState {
	return &accelState{ //lint:ignore hotalloc accelerator state is built once per Solve
		mode:   mode,
		beta:   beta,
		window: window,
		cand:   make([]float64, n),             //lint:ignore hotalloc accelerator state is built once per Solve
		gram:   make([]float64, window*window), //lint:ignore hotalloc accelerator state is built once per Solve
		rhs:    make([]float64, window),        //lint:ignore hotalloc accelerator state is built once per Solve
	}
}

// resNorm is the residual measure used by the safeguard: the maximum
// relative magnitude of g = F(x) - x, consistent with the convergence
// measure up to the damping factor.
func resNorm(x, fx []float64) float64 {
	max := 0.0
	for i := range x {
		den := math.Abs(x[i])
		if den < 1 {
			den = 1
		}
		r := math.Abs(fx[i]-x[i]) / den
		if r > max {
			max = r
		}
	}
	return max
}

// step decides this round's update. state is the current iterate, fx its map
// value (left untouched), and lastAccel whether the previous round's update
// was an accelerated step. A non-nil cand is the accelerated, finite
// candidate state; undo asks the caller to rewind the previous accelerated
// step (its residual grew) before taking a damped step. cand == nil && !undo
// means a plain damped step from the current state.
func (a *accelState) step(state, fx []float64, lastAccel bool) (cand []float64, undo bool) {
	res := resNorm(state, fx)
	if a.hasPrev && res > a.prevRes {
		// Safeguard: the previous round's update made things worse. Both
		// schemes discard the extrapolation history and fall back to a
		// damped step; Aitken additionally rewinds the offending step —
		// its componentwise extrapolations can overshoot so far that
		// continuing from the bad iterate wastes many rounds undoing it,
		// whereas Anderson's rejected least-squares candidates are still
		// reasonable iterates worth keeping.
		a.reset()
		if a.mode == AccelAitken && lastAccel {
			// prevRes still describes the restored state, keeping the
			// comparison anchored there.
			return nil, true
		}
		a.prevRes = res
		return nil, false
	}
	a.prevRes = res
	a.hasPrev = true
	ok := false
	switch a.mode {
	case AccelAnderson:
		ok = a.anderson(state, fx)
	case AccelAitken:
		ok = a.aitken(state, fx)
	}
	if !ok {
		return nil, false
	}
	return a.cand, false
}

// observeDamped records the state produced by a damped round (the Aitken
// chain needs consecutive damped iterates; Anderson records at step time).
func (a *accelState) observeDamped(state []float64) {
	if a.mode != AccelAitken {
		return
	}
	if len(a.chain) == 2 {
		a.chain[0], a.chain[1] = a.chain[1], a.chain[0]
		copy(a.chain[1], state)
		return
	}
	a.chain = append(a.chain, append(a.take(len(state))[:0], state...)) //lint:ignore hotalloc window-bounded history entry drawn from the recycled spare pool
}

// reset drops all extrapolation history (safeguard rejection).
func (a *accelState) reset() {
	for _, v := range a.xs {
		a.spare = append(a.spare, v) //lint:ignore hotalloc spare pool growth is bounded by window+1 recycled vectors
	}
	for _, v := range a.fs {
		a.spare = append(a.spare, v) //lint:ignore hotalloc spare pool growth is bounded by window+1 recycled vectors
	}
	for _, v := range a.chain {
		a.spare = append(a.spare, v) //lint:ignore hotalloc spare pool growth is bounded by window+1 recycled vectors
	}
	a.xs, a.fs, a.chain = a.xs[:0], a.fs[:0], a.chain[:0]
}

// take returns a recycled or fresh length-n vector.
func (a *accelState) take(n int) []float64 {
	if k := len(a.spare); k > 0 {
		v := a.spare[k-1]
		a.spare = a.spare[:k-1]
		return v[:n]
	}
	return make([]float64, n) //lint:ignore hotalloc fresh vector only until the spare pool warms up
}

// push appends copies of (x, fx) to the Anderson history, trimming it to
// window+1 entries.
func (a *accelState) push(x, fx []float64) {
	a.xs = append(a.xs, append(a.take(len(x))[:0], x...))   //lint:ignore hotalloc window-bounded history entry drawn from the recycled spare pool
	a.fs = append(a.fs, append(a.take(len(fx))[:0], fx...)) //lint:ignore hotalloc window-bounded history entry drawn from the recycled spare pool
	if len(a.xs) > a.window+1 {
		a.spare = append(a.spare, a.xs[0], a.fs[0]) //lint:ignore hotalloc evicted history entries return to the spare pool
		copy(a.xs, a.xs[1:])
		copy(a.fs, a.fs[1:])
		a.xs = a.xs[:len(a.xs)-1]
		a.fs = a.fs[:len(a.fs)-1]
	}
}

// anderson computes the type-II Anderson-mixing candidate
//
//	x' = x + β g - Σ_j γ_j (Δx_j + β Δg_j),  g_j = F(x_j) - x_j,
//
// with γ the least-squares combination of the stored residual differences
// Δg_j that best cancels the current residual. The candidate is written to
// a.cand; a singular system or non-finite candidate rejects the round.
func (a *accelState) anderson(state, fx []float64) bool {
	a.push(state, fx)
	m := len(a.xs) - 1 // number of difference columns
	if m < 1 {
		return false
	}
	n := len(state)
	//lint:ignore hotalloc non-escaping difference helper, inlined into the normal-equation loops
	dg := func(j, i int) float64 { // Δg_j at component i
		return (a.fs[j+1][i] - a.xs[j+1][i]) - (a.fs[j][i] - a.xs[j][i])
	}
	//lint:ignore hotalloc non-escaping residual helper, inlined into the normal-equation loops
	gcur := func(i int) float64 { // current residual g at component i
		return a.fs[m][i] - a.xs[m][i]
	}
	// Normal equations Aγ = b with Tikhonov regularisation scaled to the
	// Gram diagonal, so near-collinear histories stay solvable.
	gram, rhs := a.gram[:m*m], a.rhs[:m]
	diag := 0.0
	for j := 0; j < m; j++ {
		for k := j; k < m; k++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += dg(j, i) * dg(k, i)
			}
			gram[j*m+k], gram[k*m+j] = s, s
		}
		diag += gram[j*m+j]
		s := 0.0
		for i := 0; i < n; i++ {
			s += dg(j, i) * gcur(i)
		}
		rhs[j] = s
	}
	reg := 1e-12 * diag / float64(m)
	if reg <= 0 || math.IsNaN(reg) || math.IsInf(reg, 0) {
		a.reset()
		return false
	}
	for j := 0; j < m; j++ {
		gram[j*m+j] += reg
	}
	gamma, ok := solveSPD(gram, rhs, m)
	if !ok {
		a.reset()
		return false
	}
	for i := 0; i < n; i++ {
		v := a.xs[m][i] + a.beta*gcur(i)
		for j := 0; j < m; j++ {
			dx := a.xs[j+1][i] - a.xs[j][i]
			v -= gamma[j] * (dx + a.beta*dg(j, i))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			a.reset()
			return false
		}
		a.cand[i] = v
	}
	return true
}

// aitken extrapolates componentwise from three successive damped iterates
// (p1, p2 = G(p1), p3 = G(p2), where p2 is the current state and p3 the
// damped candidate computed here): x' = p3 - (p3-p2)² / ((p3-p2)-(p2-p1)).
// Components with a vanishing or near-cancelling second difference — where
// the correction would be ill-conditioned — keep the damped value. The
// candidate is written to a.cand.
func (a *accelState) aitken(state, fx []float64) bool {
	if len(a.chain) < 2 {
		return false
	}
	p1 := a.chain[0]
	for i := range state {
		p3 := (1-a.beta)*state[i] + a.beta*fx[i]
		d2 := state[i] - p1[i]
		d3 := p3 - state[i]
		den := d3 - d2
		v := p3
		// Extrapolate only when the denominator is well away from
		// cancellation: a tiny second difference means a near-unit (or
		// noisy) contraction ratio, where Δ² overshoots wildly.
		if math.Abs(den) > 1e-3*(math.Abs(d3)+math.Abs(d2)) {
			v = p3 - d3*d3/den
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			a.reset()
			return false
		}
		a.cand[i] = v
	}
	// The extrapolated point is not a damped iterate: restart the chain.
	a.reset()
	return true
}

// solveSPD solves the m×m symmetric positive-definite system given row-major
// in a (overwritten) with right-hand side b (overwritten with the solution),
// by Cholesky decomposition. Returns false when the matrix is not positive
// definite within floating-point tolerance.
func solveSPD(a, b []float64, m int) ([]float64, bool) {
	// Cholesky: a = LLᵀ, stored in the lower triangle of a.
	for j := 0; j < m; j++ {
		d := a[j*m+j]
		for k := 0; k < j; k++ {
			d -= a[j*m+k] * a[j*m+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		d = math.Sqrt(d)
		a[j*m+j] = d
		for i := j + 1; i < m; i++ {
			s := a[i*m+j]
			for k := 0; k < j; k++ {
				s -= a[i*m+k] * a[j*m+k]
			}
			a[i*m+j] = s / d
		}
	}
	// Forward substitution Ly = b.
	for i := 0; i < m; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[i*m+k] * b[k]
		}
		b[i] = s / a[i*m+i]
	}
	// Back substitution Lᵀγ = y.
	for i := m - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < m; k++ {
			s -= a[k*m+i] * b[k]
		}
		b[i] = s / a[i*m+i]
	}
	return b, true
}
