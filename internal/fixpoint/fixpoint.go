// Package fixpoint solves the systems of mutually-dependent nonlinear
// equations that analytical interconnect models produce. The paper (Section
// 3, final paragraph) notes that a closed-form solution of the
// interdependencies is intractable and resorts to iterative techniques;
// this package provides that machinery: damped successive substitution with
// convergence and divergence detection.
package fixpoint

import (
	"errors"
	"fmt"
	"math"
)

// ErrDiverged reports that the iteration produced a non-finite value. In
// latency models this corresponds to operating beyond the saturation point.
var ErrDiverged = errors.New("fixpoint: iteration diverged (non-finite value)")

// ErrMaxIterations reports that the iteration failed to converge within the
// configured budget.
var ErrMaxIterations = errors.New("fixpoint: maximum iterations exceeded")

// Options configure a Solve run. The zero value is replaced by Defaults.
type Options struct {
	// Tolerance is the maximum relative change of any variable between two
	// successive iterations for the state to count as converged.
	Tolerance float64
	// MaxIterations bounds the number of substitution rounds.
	MaxIterations int
	// Damping in (0, 1] mixes the new iterate with the previous one:
	// x' = (1-Damping)*x + Damping*F(x). 1 is plain substitution; smaller
	// values trade speed for robustness near saturation.
	Damping float64
}

// Defaults returns the options used when a zero Options is supplied.
func Defaults() Options {
	return Options{Tolerance: 1e-6, MaxIterations: 10000, Damping: 0.5}
}

func (o Options) withDefaults() (Options, error) {
	d := Defaults()
	if o.Tolerance == 0 {
		o.Tolerance = d.Tolerance
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = d.MaxIterations
	}
	if o.Damping == 0 {
		o.Damping = d.Damping
	}
	if o.Tolerance < 0 {
		return o, fmt.Errorf("fixpoint: negative tolerance %v", o.Tolerance)
	}
	if o.MaxIterations < 1 {
		return o, fmt.Errorf("fixpoint: MaxIterations %d < 1", o.MaxIterations)
	}
	if o.Damping < 0 || o.Damping > 1 {
		return o, fmt.Errorf("fixpoint: damping %v outside (0, 1]", o.Damping)
	}
	return o, nil
}

// Result reports how a Solve run ended.
type Result struct {
	// Iterations is the number of substitution rounds performed.
	Iterations int
	// Residual is the final maximum relative change.
	Residual float64
}

// Map evaluates one substitution round: given the current state it writes
// the next state into out (len(out) == len(in)). It may return an error to
// abort; the error is propagated to Solve's caller (models use this to
// signal saturation).
type Map func(in, out []float64) error

// Solve iterates x <- (1-d)x + d F(x) from the given initial state until the
// maximum relative change falls below the tolerance. The state slice is
// modified in place and also returned.
func Solve(state []float64, f Map, opts Options) (Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return Result{}, err
	}
	next := make([]float64, len(state))
	var res Result
	for iter := 1; iter <= o.MaxIterations; iter++ {
		res.Iterations = iter
		if err := f(state, next); err != nil {
			return res, err
		}
		maxRel := 0.0
		for i := range state {
			nv := (1-o.Damping)*state[i] + o.Damping*next[i]
			if math.IsNaN(nv) || math.IsInf(nv, 0) {
				return res, ErrDiverged
			}
			den := math.Abs(state[i])
			if den < 1 {
				den = 1
			}
			rel := math.Abs(nv-state[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
			state[i] = nv
		}
		res.Residual = maxRel
		if maxRel <= o.Tolerance {
			return res, nil
		}
	}
	return res, ErrMaxIterations
}
