// Package fixpoint solves the systems of mutually-dependent nonlinear
// equations that analytical interconnect models produce. The paper (Section
// 3, final paragraph) notes that a closed-form solution of the
// interdependencies is intractable and resorts to iterative techniques;
// this package provides that machinery: damped successive substitution with
// convergence and divergence detection, plus an observability layer (a
// per-iteration trace hook and a Convergence summary) so saturation and
// slow-convergence diagnostics are data rather than opaque errors.
package fixpoint

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrDiverged reports that the iteration produced a non-finite value. In
// latency models this corresponds to operating beyond the saturation point.
var ErrDiverged = errors.New("fixpoint: iteration diverged (non-finite value)")

// ErrMaxIterations reports that the iteration failed to converge within the
// configured budget.
var ErrMaxIterations = errors.New("fixpoint: maximum iterations exceeded")

// TraceRecord describes one substitution round; see Options.Trace.
type TraceRecord struct {
	// Iteration is the 1-based round index.
	Iteration int
	// MaxRelDelta is the round's maximum relative change over the state
	// variables (the convergence measure). On a diverging round it covers
	// only the variables scanned before the non-finite value was found.
	MaxRelDelta float64
	// Damping is the damping factor in effect.
	Damping float64
	// NonFiniteIndex is the index of the first state variable that became
	// NaN or infinite this round, or -1 while the state is finite. A
	// record with NonFiniteIndex >= 0 is the iteration's last.
	NonFiniteIndex int
}

// Options configure a Solve run. The zero value is replaced by Defaults.
type Options struct {
	// Tolerance is the maximum relative change of any variable between two
	// successive iterations for the state to count as converged.
	Tolerance float64
	// MaxIterations bounds the number of substitution rounds.
	MaxIterations int
	// Damping in (0, 1] mixes the new iterate with the previous one:
	// x' = (1-Damping)*x + Damping*F(x). 1 is plain substitution; smaller
	// values trade speed for robustness near saturation.
	Damping float64
	// Trace, when non-nil, is called once per substitution round after the
	// state update (and once more, with NonFiniteIndex set, when a round
	// diverges). It must not retain the record past the call.
	Trace func(TraceRecord)
	// Ctx, when non-nil, cancels the iteration: it is checked once per
	// substitution round, and on cancellation Solve returns an error
	// wrapping ctx.Err() (context.Canceled or context.DeadlineExceeded).
	// Callers distinguish cancellation from saturation with errors.Is;
	// the core driver never reclassifies it as a saturation failure.
	Ctx context.Context
}

// Defaults returns the options used when a zero Options is supplied.
func Defaults() Options {
	return Options{Tolerance: 1e-6, MaxIterations: 10000, Damping: 0.5}
}

func (o Options) withDefaults() (Options, error) {
	d := Defaults()
	// This package stays free of internal dependencies, so the unset-field
	// checks compare the zero value directly instead of via stats.IsZero.
	//lint:ignore floateq zero-value Options field means unset
	if o.Tolerance == 0 {
		o.Tolerance = d.Tolerance
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = d.MaxIterations
	}
	//lint:ignore floateq zero-value Options field means unset
	if o.Damping == 0 {
		o.Damping = d.Damping
	}
	if o.Tolerance < 0 {
		return o, fmt.Errorf("fixpoint: negative tolerance %v", o.Tolerance)
	}
	if o.MaxIterations < 1 {
		return o, fmt.Errorf("fixpoint: MaxIterations %d < 1", o.MaxIterations)
	}
	if o.Damping < 0 || o.Damping > 1 {
		return o, fmt.Errorf("fixpoint: damping %v outside (0, 1]", o.Damping)
	}
	return o, nil
}

// Convergence summarises how an iteration ended, for diagnostics: models
// propagate it into their results so callers can distinguish a comfortable
// fixed point from one found at the iteration budget's edge.
type Convergence struct {
	// Iterations is the number of substitution rounds performed.
	Iterations int
	// Residual is the final maximum relative change.
	Residual float64
	// Tolerance and Damping are the effective (defaulted) settings.
	Tolerance float64
	Damping   float64
	// Converged reports that Residual fell below Tolerance; Diverged that a
	// state variable became non-finite. Both false means the iteration
	// budget was exhausted (or the map returned an error).
	Converged bool
	Diverged  bool
	// NonFiniteIndex is the index of the first non-finite state variable
	// when Diverged, -1 otherwise.
	NonFiniteIndex int
}

// Result reports how a Solve run ended.
type Result struct {
	// Iterations is the number of substitution rounds performed.
	Iterations int
	// Residual is the final maximum relative change.
	Residual float64
	// Convergence is the full diagnostic summary (it repeats Iterations and
	// Residual alongside the effective settings and the outcome flags).
	Convergence Convergence
}

// Map evaluates one substitution round: given the current state it writes
// the next state into out (len(out) == len(in)). It may return an error to
// abort; the error is propagated to Solve's caller (models use this to
// signal saturation).
type Map func(in, out []float64) error

// Solve iterates x <- (1-d)x + d F(x) from the given initial state until the
// maximum relative change falls below the tolerance. The state slice is
// modified in place and also returned. The returned Result carries a
// populated Convergence summary on every exit path, including errors.
func Solve(state []float64, f Map, opts Options) (Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return Result{Convergence: Convergence{NonFiniteIndex: -1}}, err
	}
	next := make([]float64, len(state))
	res := Result{Convergence: Convergence{
		Tolerance:      o.Tolerance,
		Damping:        o.Damping,
		NonFiniteIndex: -1,
	}}
	trace := func(maxRel float64, nonFinite int) {
		if o.Trace != nil {
			o.Trace(TraceRecord{
				Iteration:      res.Iterations,
				MaxRelDelta:    maxRel,
				Damping:        o.Damping,
				NonFiniteIndex: nonFinite,
			})
		}
	}
	sync := func() {
		res.Convergence.Iterations = res.Iterations
		res.Convergence.Residual = res.Residual
	}
	for iter := 1; iter <= o.MaxIterations; iter++ {
		if o.Ctx != nil {
			if cerr := o.Ctx.Err(); cerr != nil {
				sync()
				return res, fmt.Errorf("fixpoint: cancelled after %d iterations: %w",
					res.Iterations, cerr)
			}
		}
		res.Iterations = iter
		if err := f(state, next); err != nil {
			sync()
			return res, err
		}
		maxRel := 0.0
		for i := range state {
			nv := (1-o.Damping)*state[i] + o.Damping*next[i]
			if math.IsNaN(nv) || math.IsInf(nv, 0) {
				res.Residual = maxRel
				res.Convergence.Diverged = true
				res.Convergence.NonFiniteIndex = i
				sync()
				trace(maxRel, i)
				return res, ErrDiverged
			}
			den := math.Abs(state[i])
			if den < 1 {
				den = 1
			}
			rel := math.Abs(nv-state[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
			state[i] = nv
		}
		res.Residual = maxRel
		sync()
		trace(maxRel, -1)
		if maxRel <= o.Tolerance {
			res.Convergence.Converged = true
			return res, nil
		}
	}
	return res, ErrMaxIterations
}
