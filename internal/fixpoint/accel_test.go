package fixpoint

import (
	"errors"
	"math"
	"testing"
)

// slowContraction is a coupled linear system with contraction ratio ~0.95:
// slow enough under damped substitution that both schemes get to show an
// iteration-count win.
func slowContraction(in, out []float64) error {
	out[0] = 0.95*in[0] + 0.02*in[1] + 1
	out[1] = 0.02*in[0] + 0.95*in[1] + 2
	return nil
}

func solveSlow(t *testing.T, accel Acceleration) ([]float64, Convergence) {
	t.Helper()
	state := []float64{0, 0}
	res, err := Solve(state, slowContraction, Options{
		Tolerance: 1e-10, MaxIterations: 100000, Damping: 1, Acceleration: accel,
	})
	if err != nil {
		t.Fatalf("accel %d: %v", accel, err)
	}
	return state, res
}

func TestAccelerationReachesSameFixedPoint(t *testing.T) {
	// The system's exact fixed point: (0.09, 0.12)/0.0021.
	want := []float64{0.09 / 0.0021, 0.12 / 0.0021}
	_, dres := solveSlow(t, AccelNone)
	for _, accel := range []Acceleration{AccelAnderson, AccelAitken} {
		state, res := solveSlow(t, accel)
		for i := range state {
			if math.Abs(state[i]-want[i]) > 1e-5 {
				t.Errorf("accel %d: state[%d] = %v, want %v", accel, i, state[i], want[i])
			}
		}
		if res.Iterations >= dres.Iterations {
			t.Errorf("accel %d took %d iterations, damped %d", accel, res.Iterations, dres.Iterations)
		}
		if res.AcceleratedRounds == 0 {
			t.Errorf("accel %d reported no accelerated rounds", accel)
		}
	}
}

func TestAcceleratedRoundCountersSumToIterations(t *testing.T) {
	for _, accel := range []Acceleration{AccelNone, AccelAnderson, AccelAitken} {
		_, res := solveSlow(t, accel)
		if res.AcceleratedRounds+res.DampedRounds != res.Iterations {
			t.Errorf("accel %d: %d accelerated + %d damped != %d iterations",
				accel, res.AcceleratedRounds, res.DampedRounds, res.Iterations)
		}
		if accel == AccelNone && res.AcceleratedRounds != 0 {
			t.Errorf("unaccelerated run reported %d accelerated rounds", res.AcceleratedRounds)
		}
	}
}

func TestTraceMarksAcceleratedRounds(t *testing.T) {
	var accTrue, accFalse int
	state := []float64{0, 0}
	res, err := Solve(state, slowContraction, Options{
		Tolerance: 1e-10, MaxIterations: 100000, Damping: 1, Acceleration: AccelAnderson,
		Trace: func(r TraceRecord) {
			if r.Accelerated {
				accTrue++
			} else {
				accFalse++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if accTrue != res.AcceleratedRounds || accFalse != res.DampedRounds {
		t.Errorf("trace saw %d accelerated / %d damped records, summary has %d / %d",
			accTrue, accFalse, res.AcceleratedRounds, res.DampedRounds)
	}
}

func TestAitkenRewindsOvershootIntoErrorDomain(t *testing.T) {
	// A map whose early iterates (0 -> 1 -> 1.9 -> 2.75) are shaped so the
	// Aitken Δ² extrapolation from the first chain overshoots to ~17, well
	// inside the map's error domain (> 10). The solver must rewind the
	// overshoot and still converge to the true fixed point at 3 instead of
	// propagating the domain error.
	errDomain := errors.New("outside model domain")
	f := func(in, out []float64) error {
		x := in[0]
		if x > 10 {
			return errDomain
		}
		switch {
		case x < 0.5:
			out[0] = 1
		case x < 1.5:
			out[0] = 1.9
		case x < 2.3:
			out[0] = 2.75
		default:
			out[0] = x + 0.8*(3-x)
		}
		return nil
	}
	state := []float64{0}
	res, err := Solve(state, f, Options{
		Tolerance: 1e-10, MaxIterations: 1000, Damping: 1, Acceleration: AccelAitken,
	})
	if err != nil {
		t.Fatalf("rewind failed, error escaped: %v", err)
	}
	if math.Abs(state[0]-3) > 1e-8 {
		t.Errorf("fixed point %v, want 3", state[0])
	}
	if res.AcceleratedRounds == 0 {
		t.Error("expected at least one accelerated round before the rewind")
	}
}

func TestAccelerationOptionValidation(t *testing.T) {
	ok := func(in, out []float64) error { copy(out, in); return nil }
	if _, err := Solve([]float64{0}, ok, Options{Acceleration: Acceleration(7)}); err == nil {
		t.Error("unknown acceleration scheme accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{Acceleration: AccelAnderson, Window: -1}); err == nil {
		t.Error("negative Window accepted")
	}
	if _, err := Solve([]float64{0}, ok, Options{Acceleration: AccelAnderson, Window: 2}); err != nil {
		t.Errorf("explicit Window rejected: %v", err)
	}
}

func TestParseAcceleration(t *testing.T) {
	for name, want := range map[string]Acceleration{
		"": AccelNone, "none": AccelNone,
		"anderson": AccelAnderson, "aitken": AccelAitken,
	} {
		got, err := ParseAcceleration(name)
		if err != nil || got != want {
			t.Errorf("ParseAcceleration(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAcceleration("psychic"); err == nil {
		t.Error("ParseAcceleration accepted an unknown scheme")
	}
	// Parse and String round-trip so flag defaults and diagnostics agree.
	for _, a := range []Acceleration{AccelNone, AccelAnderson, AccelAitken} {
		if got, err := ParseAcceleration(a.String()); err != nil || got != a {
			t.Errorf("round-trip %v: got %v, %v", a, got, err)
		}
	}
}

func TestAccelerationPreservesCancellation(t *testing.T) {
	// The accelerated paths must not swallow map errors unrelated to
	// extrapolation: an error on a round that did not follow an accelerated
	// step propagates unchanged.
	sentinel := errors.New("saturated")
	f := func(in, out []float64) error { return sentinel }
	for _, accel := range []Acceleration{AccelAnderson, AccelAitken} {
		if _, err := Solve([]float64{0}, f, Options{Acceleration: accel}); !errors.Is(err, sentinel) {
			t.Errorf("accel %d: err = %v, want sentinel", accel, err)
		}
	}
}
