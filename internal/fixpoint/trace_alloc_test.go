package fixpoint

import "testing"

// TestNilRoutedTraceAddsNoAllocations pins the contract the serve tracing
// layer relies on: installing a Trace callback that routes through a nil
// indirection (the hook-variable pattern — the callback is captured at
// prepare time, the span recorder only exists per solve) costs zero
// additional allocations per Solve compared to no callback at all. The
// TraceRecord is passed by value and must not escape.
func TestNilRoutedTraceAddsNoAllocations(t *testing.T) {
	// A 4-variable contraction with a comfortable fixed point; ~20 damped
	// rounds at the default tolerance.
	f := func(in, out []float64) error {
		for i := range in {
			out[i] = 0.5*in[i] + float64(i+1)
		}
		return nil
	}
	solveWith := func(opts Options) func() {
		state := make([]float64, 4)
		return func() {
			for i := range state {
				state[i] = 0
			}
			if _, err := Solve(state, f, opts); err != nil {
				t.Fatal(err)
			}
		}
	}

	bare := testing.AllocsPerRun(100, solveWith(Options{}))

	var round func(TraceRecord) // nil: the sampled-out / untraced case
	routed := Options{Trace: func(tr TraceRecord) {
		if round != nil {
			round(tr)
		}
	}}
	withHook := testing.AllocsPerRun(100, solveWith(routed))

	//lint:ignore floateq alloc counts are small integers; exact equality is the contract
	if withHook != bare {
		t.Errorf("nil-routed Trace changes Solve allocations: %v with hook, %v bare", withHook, bare)
	}
}
