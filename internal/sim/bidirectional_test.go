package sim

// Tests of the bidirectional-channel extension (Section 2 of the paper
// notes the analysis extends to this case; the simulator implements it).

import (
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

func biSingleMessageConfig(k, dims, msgLen int, src, dst topology.NodeID) Config {
	cfg := singleMessageConfig(k, dims, msgLen, src, dst)
	cfg.Bidirectional = true
	return cfg
}

func TestBiSingleMessageLatencyUsesShortestDirection(t *testing.T) {
	cube := topology.MustNew(8, 2)
	cases := []struct{ src, dst topology.NodeID }{
		// 0->6 in x: 2 hops backward instead of 6 forward.
		{cube.FromCoords([]int{0, 0}), cube.FromCoords([]int{6, 0})},
		// Mixed: x forward 2, y backward 3.
		{cube.FromCoords([]int{1, 7}), cube.FromCoords([]int{3, 4})},
		// Tie in x (4 hops either way) resolves positive.
		{cube.FromCoords([]int{0, 0}), cube.FromCoords([]int{4, 1})},
	}
	for _, c := range cases {
		msg := runSingle(t, biSingleMessageConfig(8, 2, 6, c.src, c.dst))
		hops := cube.BiDistance(c.src, c.dst)
		if int(msg.Hops) != hops {
			t.Errorf("src=%d dst=%d: hops %d, want BiDistance %d", c.src, c.dst, msg.Hops, hops)
		}
		if want := int64(hops + 6 + 1); msg.Latency() != want {
			t.Errorf("src=%d dst=%d: latency %d, want %d", c.src, c.dst, msg.Latency(), want)
		}
	}
}

func TestBiSingleMessageFollowsBiPath(t *testing.T) {
	cube := topology.MustNew(8, 2)
	src := cube.FromCoords([]int{7, 2})
	dst := cube.FromCoords([]int{1, 6})
	msg := runSingle(t, biSingleMessageConfig(8, 2, 4, src, dst))
	want := cube.BiPath(src, dst)
	if len(msg.Path) != len(want) {
		t.Fatalf("path %v, want %v", msg.Path, want)
	}
	for i := range want {
		if msg.Path[i] != want[i] {
			t.Fatalf("path %v, want %v", msg.Path, want)
		}
	}
}

func TestBiNoDeadlockUniform(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.05,
		Seed: 41, Bidirectional: true, CheckInvariants: true,
	}, 20000)
}

func TestBiNoDeadlockHotSpot(t *testing.T) {
	cube := topology.MustNew(5, 2)
	hs, err := traffic.NewHotSpot(cube, 12, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	drainAfterLoad(t, Config{
		K: 5, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.03,
		Pattern: hs, Seed: 42, Bidirectional: true, CheckInvariants: true,
	}, 20000)
}

func TestBiNoDeadlockWrapHeavy(t *testing.T) {
	cube := topology.MustNew(4, 2)
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.05,
		Pattern: traffic.BitReversal{Cube: cube}, Seed: 43,
		Bidirectional: true, CheckInvariants: true,
	}, 20000)
}

func TestBiNoDeadlockThreeDims(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 3, Dims: 3, VCs: 2, MsgLen: 4, Lambda: 0.04,
		Seed: 44, Bidirectional: true, CheckInvariants: true,
	}, 15000)
}

func TestBiLatencyBelowUnidirectional(t *testing.T) {
	// Same offered load: bidirectional links halve mean distance and
	// double bisection bandwidth, so latency must drop.
	run := func(bi bool) float64 {
		nw, err := New(Config{
			K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: 1.5e-3,
			Seed: 45, Bidirectional: bi,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 5000, MaxCycles: 200000, MinMeasured: 3000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Fatalf("bi=%v saturated", bi)
		}
		return res.MeanLatency
	}
	uni, bi := run(false), run(true)
	if bi >= uni {
		t.Errorf("bidirectional latency %v not below unidirectional %v", bi, uni)
	}
}

func TestBiMeanHopsMatchesBiDistance(t *testing.T) {
	nw, err := New(Config{
		K: 8, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 1e-3,
		Seed: 46, Bidirectional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 2000, MaxCycles: 150000, MinMeasured: 3000})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform mean bidirectional distance: 2 * mean-min-ring-distance.
	want := 2 * topology.MustNew(8, 2).MeanBiRingDistance()
	if res.MeanHops < want*0.93 || res.MeanHops > want*1.07 {
		t.Errorf("mean hops %v, want ~%v", res.MeanHops, want)
	}
}

func TestBiConservation(t *testing.T) {
	nw, err := New(Config{
		K: 5, Dims: 2, VCs: 3, MsgLen: 8, Lambda: 0.004,
		Seed: 47, Bidirectional: true, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	if !nw.Drain(200000) {
		t.Fatalf("drain failed: backlog %d", nw.Backlog())
	}
	if nw.Injected() != nw.Delivered() {
		t.Errorf("injected %d != delivered %d", nw.Injected(), nw.Delivered())
	}
}

func TestBiBothDirectionsCarryTraffic(t *testing.T) {
	nw, err := New(Config{
		K: 6, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 2e-3, Seed: 48,
		Bidirectional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if nw.OutputChannels() != 4 {
		t.Fatalf("OutputChannels = %d, want 4", nw.OutputChannels())
	}
	for i := 0; i < 50000; i++ {
		nw.Step()
	}
	var perChannel [4]int64
	for n := 0; n < nw.Cube().Nodes(); n++ {
		for ch := 0; ch < 4; ch++ {
			perChannel[ch] += nw.ChannelFlits(n, ch)
		}
	}
	for ch, f := range perChannel {
		if f == 0 {
			t.Errorf("channel class %d carried no traffic", ch)
		}
	}
	// Uniform traffic loads positive and negative rings almost equally
	// (ties go positive, so expect a small positive bias for even k).
	for d := 0; d < 2; d++ {
		pos, neg := float64(perChannel[2*d]), float64(perChannel[2*d+1])
		if neg > pos {
			t.Errorf("dim %d: negative ring %v busier than positive %v", d, neg, pos)
		}
		if pos > 2.5*neg {
			t.Errorf("dim %d: direction imbalance %v vs %v", d, pos, neg)
		}
	}
}

func TestBiVCClassMatchesWrapStatePerDirection(t *testing.T) {
	nw, err := New(Config{
		K: 5, Dims: 2, VCs: 4, MsgLen: 6, Lambda: 0.01, Seed: 49,
		Bidirectional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := nw.cfg.VCs / 2
	for step := 0; step < 20000; step++ {
		nw.Step()
		if step%64 != 0 {
			continue
		}
		sweepVCs(nw, func(node topology.NodeID, ch, idx int, v *vc) {
			if v.msg == nil {
				return
			}
			d := ch / nw.dirs
			c := nw.cube.Coord(node, d)
			s := nw.cube.Coord(v.msg.Src, d)
			var wrapped bool
			if ch%nw.dirs == 0 { // positive ring
				wrapped = c < s
			} else { // negative ring
				wrapped = c > s
			}
			if c == s {
				t.Fatalf("dim-%d input VC holds message with unchanged coordinate", d)
			}
			if class0 := idx >= half; wrapped != class0 {
				t.Fatalf("class violation: node %d ch %d vc %d wrapped=%v (msg src %d dst %d)",
					node, ch, idx, wrapped, v.msg.Src, v.msg.Dst)
			}
		})
	}
}
