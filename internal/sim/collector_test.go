package sim

import (
	"strings"
	"testing"

	"kncube/internal/stats"
	"kncube/internal/telemetry"
	"kncube/internal/topology"
	"kncube/internal/traffic"
)

func collectorTestConfig(t testing.TB, coll Collector) Config {
	t.Helper()
	cfg := Config{
		K: 8, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.002,
		Seed: 7, Collector: coll,
	}
	cube := topology.MustNew(cfg.K, cfg.Dims)
	hs, err := traffic.NewHotSpot(cube, 21, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = hs
	return cfg
}

// countingCollector records every event for consistency checks.
type countingCollector struct {
	injected, delivered, drained int64
	blockedTotal, waitTotal      int64
	vcSamples                    int64
	runEnds                      int
	last                         RunStats
	maxQueueDepth                int
}

func (c *countingCollector) MessageInjected(depth int) {
	c.injected++
	if depth > c.maxQueueDepth {
		c.maxQueueDepth = depth
	}
}

func (c *countingCollector) MessageDelivered(lat, blocked, wait int64) {
	c.delivered++
	c.blockedTotal += blocked
	c.waitTotal += wait
}

func (c *countingCollector) MessageDrained() { c.drained++ }

func (c *countingCollector) VCOccupancy(busy int) { c.vcSamples++ }

func (c *countingCollector) RunEnd(rs RunStats) {
	c.runEnds++
	c.last = rs
}

// TestCollectorCountsMatchResult cross-checks every collector event stream
// against the engine's own counters.
func TestCollectorCountsMatchResult(t *testing.T) {
	coll := &countingCollector{}
	nw, err := New(collectorTestConfig(t, coll))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 2000, MaxCycles: 30000, MinMeasured: 500})
	if err != nil {
		t.Fatal(err)
	}
	if coll.injected != res.Injected {
		t.Errorf("collector injected = %d, Result.Injected = %d", coll.injected, res.Injected)
	}
	if coll.delivered != res.Delivered {
		t.Errorf("collector delivered = %d, Result.Delivered = %d", coll.delivered, res.Delivered)
	}
	if coll.drained != 0 {
		t.Errorf("drained = %d before any Drain call", coll.drained)
	}
	if coll.runEnds != 1 {
		t.Fatalf("RunEnd called %d times, want 1", coll.runEnds)
	}
	rs := coll.last
	if rs.Cycles != res.Cycles || rs.RunCycles != res.Cycles {
		t.Errorf("RunStats cycles = (%d, %d), Result.Cycles = %d", rs.Cycles, rs.RunCycles, res.Cycles)
	}
	if rs.Wall <= 0 {
		t.Errorf("RunStats.Wall = %v, want > 0", rs.Wall)
	}
	if rs.Injected != res.Injected || rs.Delivered != res.Delivered || rs.Measured != res.Measured {
		t.Errorf("RunStats counters (%d, %d, %d) != Result (%d, %d, %d)",
			rs.Injected, rs.Delivered, rs.Measured, res.Injected, res.Delivered, res.Measured)
	}
	if len(rs.ChannelFlits) != nw.Cube().Nodes()*nw.OutputChannels() || rs.Outputs != nw.OutputChannels() {
		t.Errorf("RunStats channel shape = (%d, %d)", len(rs.ChannelFlits), rs.Outputs)
	}
	if rs.Latency == nil || rs.Latency.Count() != res.Measured {
		t.Errorf("RunStats.Latency count mismatch")
	}
	if coll.vcSamples == 0 {
		t.Errorf("no VC occupancy samples under sustained load")
	}
	if coll.waitTotal < 0 {
		t.Errorf("negative source-queue waiting %d", coll.waitTotal)
	}

	// Drained deliveries show up in both streams.
	nw.Drain(100000)
	if coll.drained == 0 && coll.delivered > res.Delivered {
		t.Errorf("drain delivered %d messages but MessageDrained never fired",
			coll.delivered-res.Delivered)
	}
	if coll.delivered-coll.drained != res.Delivered {
		t.Errorf("post-drain: delivered %d - drained %d != run deliveries %d",
			coll.delivered, coll.drained, res.Delivered)
	}
}

// TestBlockedCyclesRecorded drives a deliberately scarce network (VCs = 2,
// heavy hot-spot) and checks the per-message blocked-cycle counter moves.
func TestBlockedCyclesRecorded(t *testing.T) {
	coll := &countingCollector{}
	cfg := collectorTestConfig(t, coll)
	cfg.Lambda = 0.02 // near saturation: headers must queue for VCs
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(RunOptions{WarmupCycles: 500, MaxCycles: 8000, MinMeasured: 100}); err != nil {
		t.Fatal(err)
	}
	if coll.blockedTotal == 0 {
		t.Fatalf("no blocking recorded near saturation")
	}
}

// TestTelemetryCollectorExposition runs an instrumented simulation and
// checks the registry holds the headline khs_sim_* series, including the
// acceptance-criteria pair: per-channel utilisation and the blocking-cycles
// histogram.
func TestTelemetryCollectorExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	nw, err := New(collectorTestConfig(t, NewTelemetryCollector(reg)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 2000, MaxCycles: 30000, MinMeasured: 500})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"khs_sim_messages_injected_total ",
		"khs_sim_messages_delivered_total ",
		"khs_sim_blocking_cycles_bucket{",
		"khs_sim_blocking_cycles_count ",
		"khs_sim_source_queue_depth_bucket{",
		"khs_sim_source_wait_cycles_count ",
		"khs_sim_latency_cycles_count ",
		"khs_sim_vc_busy_per_channel_bucket{",
		"khs_sim_cycles_total ",
		"khs_sim_cycles_per_second ",
		`khs_sim_channel_flits_total{channel="0",node="0"}`,
		`khs_sim_channel_utilisation_ratio{channel="0",node="0"}`,
		"khs_sim_channel_utilisation_max_ratio ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := reg.Counter("khs_sim_messages_injected_total", "", nil).Value(); got != res.Injected {
		t.Errorf("injected counter = %d, Result.Injected = %d", got, res.Injected)
	}
	if got := reg.Counter("khs_sim_cycles_total", "", nil).Value(); got != res.Cycles {
		t.Errorf("cycles counter = %d, Result.Cycles = %d", got, res.Cycles)
	}
	// Latency histogram is folded from the engine's exact histogram: counts
	// must agree with the measured-message count.
	if got := reg.Histogram("khs_sim_latency_cycles", "", nil, nil).Count(); got != res.Measured {
		t.Errorf("latency histogram count = %d, Result.Measured = %d", got, res.Measured)
	}
	// Utilisation gauges agree with the Result aggregate.
	maxUtil := reg.Gauge("khs_sim_channel_utilisation_max_ratio", "", nil).Value()
	if !stats.ApproxEqual(maxUtil, res.MaxChannelUtilisation, 1e-12, 1e-9) {
		t.Errorf("max utilisation gauge = %v, Result = %v", maxUtil, res.MaxChannelUtilisation)
	}
}

// TestTelemetryCollectorSecondRunAccumulates checks the counter deltas stay
// consistent when the same network Runs twice into one registry.
func TestTelemetryCollectorSecondRunAccumulates(t *testing.T) {
	reg := telemetry.NewRegistry()
	nw, err := New(collectorTestConfig(t, NewTelemetryCollector(reg)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(RunOptions{WarmupCycles: 500, MaxCycles: 5000, MinMeasured: 100}); err != nil {
		t.Fatal(err)
	}
	res2, err := nw.Run(RunOptions{WarmupCycles: 500, MaxCycles: 5000, MinMeasured: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("khs_sim_cycles_total", "", nil).Value(); got != res2.Cycles {
		t.Errorf("cycles counter = %d after two runs, network cycle = %d", got, res2.Cycles)
	}
	if got := reg.Counter("khs_sim_messages_injected_total", "", nil).Value(); got != res2.Injected {
		t.Errorf("injected counter = %d, cumulative injected = %d", got, res2.Injected)
	}
}

// benchNetwork builds the 256-node hot-spot network used by the overhead
// benchmark (mirrors BenchmarkSimulatorStep at the repo root).
func benchNetwork(b *testing.B, coll Collector) *Network {
	b.Helper()
	cube := topology.MustNew(16, 2)
	hs, err := traffic.NewHotSpot(cube, 136, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := New(Config{
		K: 16, Dims: 2, VCs: 2, MsgLen: 32, Lambda: 2e-4,
		Pattern: hs, Seed: 1, Collector: coll,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	return nw
}

// BenchmarkStepCollector compares the simulator's per-cycle cost with no
// collector (the default), the telemetry-backed collector, and a bare
// counting collector. The nil case is the one the <2% overhead acceptance
// bound applies to: compare bench output against BenchmarkSimulatorStep.
func BenchmarkStepCollector(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		nw := benchNetwork(b, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Step()
		}
	})
	b.Run("telemetry", func(b *testing.B) {
		nw := benchNetwork(b, NewTelemetryCollector(telemetry.NewRegistry()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Step()
		}
	})
	b.Run("counting", func(b *testing.B) {
		nw := benchNetwork(b, &countingCollector{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Step()
		}
	})
}

// TestStepSteadyStateAllocFree pins the hot-loop allocation contract as a
// plain test so tier-1 `go test ./...` enforces it: once the event queue
// and message pools have warmed up, a simulation cycle allocates nothing.
// This is the baseline the observability layers (collector, tracing) are
// measured against — they may only add constant per-run cost elsewhere,
// never per-cycle allocations here.
func TestStepSteadyStateAllocFree(t *testing.T) {
	cube := topology.MustNew(16, 2)
	hs, err := traffic.NewHotSpot(cube, 136, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(Config{
		K: 16, Dims: 2, VCs: 2, MsgLen: 32, Lambda: 2e-4,
		Pattern: hs, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	if n := testing.AllocsPerRun(2000, func() { nw.Step() }); !stats.IsZero(n) {
		t.Errorf("steady-state Step allocates %v objects/cycle, want 0", n)
	}
}
