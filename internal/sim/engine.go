package sim

import (
	"container/heap"
	"fmt"
	"time"

	"kncube/internal/stats"
)

// ctxCheckInterval is how often (in cycles) Run polls RunOptions.Ctx; a
// 256-node network simulates well over 10k cycles/second, so cancellation
// is observed within a few milliseconds without measurable polling cost.
const ctxCheckInterval = 1024

// Result summarises a measurement run.
type Result struct {
	// MeanLatency is the mean end-to-end message latency in cycles
	// (generation to tail delivery) over measured messages.
	MeanLatency float64
	// CI95 is the 95% confidence half-width of MeanLatency.
	CI95 float64
	// MeanRegular and MeanHot split the latency by message class; MeanHot
	// is 0 when the pattern generates no hot-spot messages.
	MeanRegular float64
	MeanHot     float64
	// MeanNetwork is the mean network latency (injection-VC acquisition to
	// delivery); MeanSourceWait the mean time in the source queue.
	MeanNetwork    float64
	MeanSourceWait float64
	// MeanHops is the average channel count crossed per measured message.
	MeanHops float64
	// LatencyP50, LatencyP95 and LatencyP99 are latency percentiles of the
	// measured messages (bucket upper bounds, 1-cycle resolution).
	LatencyP50, LatencyP95, LatencyP99 float64

	// Injected/Delivered/Measured are message counters over the whole run.
	Injected, Delivered, Measured int64
	// Cycles is the number of simulated cycles.
	Cycles int64
	// Steady reports whether the batch-means detector declared steady
	// state before the cycle budget ran out.
	Steady bool
	// Saturated reports the backlog-growth heuristic: the network could
	// not drain the offered load.
	Saturated bool
	// Throughput is delivered messages per node per cycle during the
	// measurement phase.
	Throughput float64
	// ChannelUtilisation is the mean fraction of cycles each network
	// channel spent moving a flit during the whole run.
	ChannelUtilisation float64
	// MaxChannelUtilisation is the busiest channel's flit rate.
	MaxChannelUtilisation float64
	// VCMultiplexing is the sampled mean number of busy virtual channels
	// per busy physical channel (compare with the model's V̄).
	VCMultiplexing float64
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("latency=%.1f±%.1f (reg %.1f, hot %.1f) cycles=%d measured=%d steady=%v saturated=%v",
		r.MeanLatency, r.CI95, r.MeanRegular, r.MeanHot, r.Cycles, r.Measured, r.Steady, r.Saturated)
}

// Run simulates until steady state (after the warm-up and minimum sample
// budget) or until MaxCycles, and returns the measured statistics.
func (nw *Network) Run(opts RunOptions) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	wallStart := time.Now()
	cyclesAtStart := nw.cycle
	nw.measureFrom = nw.cycle + opts.WarmupCycles
	nw.measuring = false
	nw.batch = stats.NewBatchMeans(opts.BatchSize, opts.Window, opts.RelTol)
	// Reset the per-run measurement accumulators so a reused network
	// starts a fresh window instead of averaging in the previous run's
	// samples, and snapshot the per-channel flit counters so utilisation
	// is computed over this run's cycles only.
	nw.measured = 0
	nw.latAll, nw.latReg, nw.latHot = stats.Running{}, stats.Running{}, stats.Running{}
	nw.netAll, nw.waitSrc = stats.Running{}, stats.Running{}
	nw.latHist = stats.NewHistogram(1)
	nw.hopsTotal = 0
	nw.busyChanSamples, nw.busyVCCt = 0, 0
	copy(nw.chanFlitsStart, nw.chanFlits)

	step := nw.Step
	if nw.stepOverride != nil {
		step = nw.stepOverride
	}
	end := nw.cycle + opts.MaxCycles
	var backlogAtMeasure, injectedAtMeasure, deliveredAtMeasure int64
	steady := false
	for nw.cycle < end {
		if opts.Ctx != nil && nw.cycle%ctxCheckInterval == 0 {
			select {
			case <-opts.Ctx.Done():
				return Result{}, opts.Ctx.Err()
			default:
			}
		}
		if !nw.measuring && nw.cycle >= nw.measureFrom {
			nw.measuring = true
			backlogAtMeasure = nw.Backlog()
			injectedAtMeasure = nw.injected
			deliveredAtMeasure = nw.delivered
		}
		step()
		if nw.measuring && nw.measured >= opts.MinMeasured && nw.batch.Steady() {
			steady = true
			break
		}
	}
	if !nw.measuring {
		// Degenerate budget: measurement never started.
		nw.measuring = true
		backlogAtMeasure = nw.Backlog()
		injectedAtMeasure = nw.injected
		deliveredAtMeasure = nw.delivered
	}

	res := Result{
		MeanLatency:    nw.latAll.Mean(),
		CI95:           nw.latAll.CI95(),
		MeanRegular:    nw.latReg.Mean(),
		MeanHot:        nw.latHot.Mean(),
		MeanNetwork:    nw.netAll.Mean(),
		MeanSourceWait: nw.waitSrc.Mean(),
		Injected:       nw.injected,
		Delivered:      nw.delivered,
		Measured:       nw.measured,
		Cycles:         nw.cycle,
		Steady:         steady,
	}
	if nw.measured > 0 {
		res.MeanHops = float64(nw.hopsTotal) / float64(nw.measured)
		res.LatencyP50 = nw.latHist.Quantile(0.50)
		res.LatencyP95 = nw.latHist.Quantile(0.95)
		res.LatencyP99 = nw.latHist.Quantile(0.99)
	}
	measCycles := nw.cycle - nw.measureFrom
	if measCycles > 0 {
		res.Throughput = float64(nw.delivered-deliveredAtMeasure) /
			float64(measCycles) / float64(nw.cube.Nodes())
	}
	// Saturation heuristic: the backlog grew by more than 10% of the
	// messages injected during measurement (and by a non-trivial count).
	growth := nw.Backlog() - backlogAtMeasure
	injMeas := nw.injected - injectedAtMeasure
	res.Saturated = growth > 100 && float64(growth) > 0.10*float64(injMeas)

	var totalFlits, maxFlits int64
	for i, f := range nw.chanFlits {
		d := f - nw.chanFlitsStart[i]
		totalFlits += d
		if d > maxFlits {
			maxFlits = d
		}
	}
	if runCycles := nw.cycle - cyclesAtStart; runCycles > 0 {
		res.ChannelUtilisation = float64(totalFlits) / float64(runCycles) / float64(len(nw.chanFlits))
		res.MaxChannelUtilisation = float64(maxFlits) / float64(runCycles)
	}
	if nw.busyChanSamples > 0 {
		res.VCMultiplexing = float64(nw.busyVCCt) / float64(nw.busyChanSamples)
	}
	if nw.coll != nil {
		nw.coll.RunEnd(RunStats{
			Cycles:       nw.cycle,
			RunCycles:    nw.cycle - cyclesAtStart,
			Wall:         time.Since(wallStart),
			Injected:     nw.injected,
			Delivered:    nw.delivered,
			Measured:     nw.measured,
			ChannelFlits: nw.chanFlits,
			Outputs:      nw.outputs,
			Latency:      nw.latHist,
		})
	}
	return res, nil
}

// Drain runs without generating new traffic until every in-flight message
// is delivered or the cycle budget is exhausted; it reports whether the
// network fully drained. Used by conservation and deadlock-freedom tests.
//
// The pre-drain generation schedule is saved and restored, so the network
// remains usable afterwards: a subsequent Run or Step resumes injecting.
// Arrivals whose scheduled time fell inside the drain window fire on the
// first post-drain cycle (with their original, now past, generation
// stamps), exactly as if the sources had been paused.
func (nw *Network) Drain(maxCycles int64) bool {
	// Push all generation times beyond the horizon.
	if !nw.step.inited {
		nw.initStep()
	}
	nw.draining = true
	defer func() { nw.draining = false }()
	saved := make([]int64, len(nw.routers))
	for i := range nw.routers {
		saved[i] = nw.routers[i].nextGen
	}
	horizon := nw.cycle + maxCycles + 1
	for i := range nw.routers {
		nw.routers[i].nextGen = horizon
	}
	for i := range nw.step.gen.when {
		nw.step.gen.when[i] = horizon
	}
	end := nw.cycle + maxCycles
	for nw.cycle < end && nw.Backlog() > 0 {
		nw.Step()
	}
	// Restore the generation schedule (per-router times and the heap).
	st := &nw.step
	st.gen.when = st.gen.when[:0]
	st.gen.node = st.gen.node[:0]
	for i := range nw.routers {
		nw.routers[i].nextGen = saved[i]
		st.gen.when = append(st.gen.when, saved[i])
		st.gen.node = append(st.gen.node, int32(i))
	}
	heap.Init(&st.gen)
	return nw.Backlog() == 0
}

// ChannelFlits returns the number of flits that crossed output channel ch
// of the given node (testing aid for the traffic-rate equations). In the
// unidirectional network ch is the dimension index; with bidirectional
// links ch = 2*dim selects the positive ring and ch = 2*dim+1 the negative
// ring.
func (nw *Network) ChannelFlits(node, ch int) int64 {
	return nw.chanFlits[node*nw.outputs+ch]
}

// OutputChannels returns the number of network output channels per node
// (dimensions times ring directions).
func (nw *Network) OutputChannels() int { return nw.outputs }
