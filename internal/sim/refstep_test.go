package sim

// Scan-based reference implementation of the simulator hot loop. This is
// the pre-event-driven Step, phase by phase: every phase scans the full
// (ports+1)×VCs input array of every active router with a rotating
// arbitration pointer, instead of consulting the incrementally-maintained
// scheduling lists (pending / cand / ejectQ / injLive / candLive). It is
// adapted only to the flattened r.in layout and the r.out[ch].rr pointer
// home; the visit order, claim logic and statistics updates are verbatim.
//
// The differential suite steps a second Network with refStep (via the
// stepOverride Run seam) and asserts bit-identical results against the
// production Step, which pins the rewrite's contract: event-driven
// scheduling must be a pure strength reduction with no observable effect.
//
// refStep never reads nor maintains the scheduling lists; on a network
// driven exclusively by refStep they simply stay empty.

import (
	"container/heap"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// refStep advances the simulation by one cycle using full scans.
func (nw *Network) refStep() {
	if !nw.step.inited {
		nw.initStep()
	}
	st := &nw.step
	cyc := nw.cycle

	snapshot := st.active

	for _, ri := range snapshot {
		nw.refAllocate(&nw.routers[ri], cyc)
	}
	for _, ri := range snapshot {
		nw.refEject(&nw.routers[ri], cyc)
	}
	for _, ri := range snapshot {
		nw.refForward(&nw.routers[ri], cyc)
	}
	for _, ri := range snapshot {
		nw.refInject(&nw.routers[ri], cyc)
	}
	for st.gen.Len() > 0 && st.gen.when[0] <= cyc {
		node := st.gen.node[0]
		nw.generate(&nw.routers[node], cyc)
		r := &nw.routers[node]
		st.gen.when[0] = r.nextGen
		heap.Fix(&st.gen, 0)
		nw.activate(node)
	}
	for _, ri := range st.active {
		nw.refBind(&nw.routers[ri], cyc)
	}

	keep := st.active[:0]
	for _, ri := range st.active {
		r := &nw.routers[ri]
		if r.busyVCs > 0 || r.queueLen() > 0 {
			keep = append(keep, ri)
		} else {
			st.isActive[ri] = false
		}
	}
	st.active = keep

	if nw.cycle%64 == 0 {
		nw.refSampleMultiplexing()
	}
	nw.cycle++
}

// refAllocate scans every input VC of r from the rotating rrAlloc pointer
// and assigns outputs/downstream VCs to ready headers.
func (nw *Network) refAllocate(r *router, cyc int64) {
	nVC := nw.nVC
	total := (nw.outputs + 1) * nVC
	lastGrant := -1
	for off := 0; off < total; off++ {
		idx := (r.rrAlloc + off) % total
		in := &r.in[idx]
		if !in.headerReady(cyc) {
			continue
		}
		msg := in.msg
		out := nw.route(msg, r.node)
		if int(out) == nw.injPort { // arrived: mark for ejection
			in.outPort = out
			continue
		}
		claim := func(ch, dv int) {
			down := nw.downRouter(r.node, ch)
			dvc := &down.in[ch*nVC+dv]
			dvc.msg = msg
			dvc.outPort, dvc.outVC = noPort, noPort
			down.busyVCs++
			nw.activate(int32(down.node))
			in.outPort, in.outVC = int8(ch), int8(dv)
			lastGrant = idx
		}
		if nw.cfg.Routing == RoutingAdaptive && !msg.Escaped {
			if ch, dv, ok := nw.adaptiveCandidate(msg, r.node); ok {
				claim(ch, dv)
				continue
			}
			ch := int(out)
			dv := nw.escapeVC(msg, r.node, ch)
			if nw.downRouter(r.node, ch).in[ch*nVC+dv].msg == nil {
				msg.Escaped = true
				claim(ch, dv)
			} else {
				msg.Blocked++
			}
			continue
		}
		ch := int(out)
		if nw.cfg.Routing == RoutingAdaptive {
			dv := nw.escapeVC(msg, r.node, ch)
			if nw.downRouter(r.node, ch).in[ch*nVC+dv].msg == nil {
				claim(ch, dv)
			} else {
				msg.Blocked++
			}
			continue
		}
		down := nw.downRouter(r.node, ch)
		lo, hi := nw.vcClassRange(msg, r.node, ch)
		for dv := lo; dv < hi; dv++ {
			if down.in[ch*nVC+dv].msg == nil {
				claim(ch, dv)
				break
			}
		}
		if in.outPort == noPort {
			msg.Blocked++
		}
	}
	if lastGrant >= 0 {
		r.rrAlloc = (lastGrant + 1) % total
	}
}

// refEject consumes flits that have reached their destination, scanning
// every input VC.
func (nw *Network) refEject(r *router, cyc int64) {
	if nw.cfg.EjectionContention {
		total := (nw.outputs + 1) * nw.nVC
		for off := 0; off < total; off++ {
			idx := (r.rrEj + off) % total
			in := &r.in[idx]
			if in.msg != nil && int(in.outPort) == nw.injPort && in.avail(cyc) > 0 {
				nw.refConsume(r, in, cyc, 1)
				r.rrEj = (idx + 1) % total
				return
			}
		}
		return
	}
	for idx := range r.in {
		in := &r.in[idx]
		if in.msg != nil && int(in.outPort) == nw.injPort {
			if n := in.avail(cyc); n > 0 {
				nw.refConsume(r, in, cyc, n)
			}
		}
	}
}

// refConsume removes n buffered flits without maintaining the eject queue
// or per-port busy counters.
func (nw *Network) refConsume(r *router, in *vc, cyc int64, n int32) {
	msg := in.msg
	for i := int32(0); i < n; i++ {
		in.moveOut(cyc)
	}
	if in.sent == nw.msgLen {
		in.reset()
		r.busyVCs--
		nw.deliver(msg, cyc)
	}
}

// refForward arbitrates each outgoing channel by scanning every input VC
// from the rotating per-channel pointer.
func (nw *Network) refForward(r *router, cyc int64) {
	nVC := nw.nVC
	total := (nw.outputs + 1) * nVC
	for ch := 0; ch < nw.outputs; ch++ {
		var granted *vc
		var grantIdx int
		var down *router
		for off := 0; off < total; off++ {
			idx := (r.out[ch].rr + off) % total
			in := &r.in[idx]
			if in.msg == nil || int(in.outPort) != ch || in.avail(cyc) <= 0 {
				continue
			}
			dn := nw.downRouter(r.node, ch)
			dvc := &dn.in[ch*nVC+int(in.outVC)]
			if dvc.space(cyc, nw.depth) <= 0 {
				continue
			}
			granted, grantIdx, down = in, idx, dn
			break
		}
		if granted == nil {
			continue
		}
		r.out[ch].rr = (grantIdx + 1) % total
		dvc := &down.in[ch*nVC+int(granted.outVC)]
		granted.moveOut(cyc)
		dvc.moveIn(cyc)
		nw.chanFlits[int(r.node)*nw.outputs+ch]++
		msg := granted.msg
		if dvc.recvd == 1 { // header crossed this channel
			msg.Hops++
			if nw.cfg.RecordPaths {
				msg.Path = append(msg.Path, down.node)
			}
		}
		if granted.sent == nw.msgLen { // tail left: release this VC
			granted.reset()
			r.busyVCs--
		}
	}
}

// refInject moves at most one flit from the PE into a bound injection VC.
func (nw *Network) refInject(r *router, cyc int64) {
	nVC := nw.nVC
	base := nw.injPort * nVC
	for off := 0; off < nVC; off++ {
		v := (r.rrInj + off) % nVC
		in := &r.in[base+v]
		if in.msg == nil || in.recvd >= nw.msgLen || in.space(cyc, nw.depth) <= 0 {
			continue
		}
		in.moveIn(cyc)
		r.rrInj = (v + 1) % nVC
		return
	}
}

// refBind attaches queued messages to free injection virtual channels.
func (nw *Network) refBind(r *router, cyc int64) {
	base := nw.injPort * nw.nVC
	for r.queueLen() > 0 {
		free := -1
		for v := 0; v < nw.nVC; v++ {
			if r.in[base+v].msg == nil {
				free = v
				break
			}
		}
		if free < 0 {
			return
		}
		msg := r.popQueue()
		in := &r.in[base+free]
		in.reset()
		in.msg = msg
		r.busyVCs++
		msg.InjectCycle = cyc
	}
}

// refSampleMultiplexing scans every router and every network input VC.
func (nw *Network) refSampleMultiplexing() {
	for ri := range nw.routers {
		r := &nw.routers[ri]
		if r.busyVCs == 0 {
			continue
		}
		for d := 0; d < nw.outputs; d++ {
			busy := int64(0)
			for v := 0; v < nw.nVC; v++ {
				if r.in[d*nw.nVC+v].msg != nil {
					busy++
				}
			}
			if busy > 0 {
				nw.busyChanSamples++
				nw.busyVCCt += busy
				if nw.coll != nil {
					nw.coll.VCOccupancy(int(busy))
				}
			}
		}
	}
}

// BenchmarkSimulatorStepReference times the scan-based reference loop on
// the same 256-node hot-spot workload as the root package's
// BenchmarkSimulatorStep, keeping the pre-rework baseline reproducible.
// The ratio of the two is the speedup recorded in BENCH_sim.json.
func BenchmarkSimulatorStepReference(b *testing.B) {
	cube := topology.MustNew(16, 2)
	hs, err := traffic.NewHotSpot(cube, 136, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := New(Config{
		K: 16, Dims: 2, VCs: 2, MsgLen: 32, Lambda: 2e-4,
		Pattern: hs, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		nw.refStep()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.refStep()
	}
}
