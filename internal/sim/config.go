// Package sim is a flit-level, cycle-accurate simulator of wormhole-switched
// k-ary n-cubes with deterministic dimension-order routing and virtual-channel
// flow control. It reproduces the validation substrate of Loucif, Ould-Khaoua,
// Min (IPDPS 2005), Section 4: "a discrete event simulator, operating at the
// flit level", with the router organisation of Section 2:
//
//   - unidirectional channels, one per dimension per node, plus an injection
//     and an ejection channel per node;
//   - V virtual channels per physical channel, each with its own flit buffer,
//     time-multiplexing the physical link flit by flit (Dally's VC flow
//     control), arbitrated round-robin;
//   - deterministic routing crossing dimension 0 (x) first, then dimension 1
//     (y), with Dally-Seitz virtual-channel classes for deadlock freedom on
//     the wrap-around rings;
//   - infinite injection queues; ejection either contention-free (assumption
//     (iv) of the paper: messages leave "as soon as they arrive") or through
//     a single 1-flit/cycle ejection channel.
//
// The network cycle is the transmission time of one flit across a physical
// channel.
package sim

import (
	"context"
	"fmt"

	"kncube/internal/stats"
	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// Routing selects the routing algorithm.
type Routing int

const (
	// RoutingDimensionOrder is the paper's deterministic routing:
	// dimensions in increasing order, Dally-Seitz virtual-channel classes
	// (assumption (v)).
	RoutingDimensionOrder Routing = iota
	// RoutingAdaptive is minimal adaptive routing with Duato-style escape
	// channels: virtual channels 0 and 1 of every physical channel form
	// the deadlock-free dimension-order escape network (class 1 and class
	// 0 respectively), the remaining V-2 are adaptive and may be claimed
	// on any minimal output. A header first tries the adaptive channels
	// of every productive output; failing that it falls back to the
	// escape channel of the dimension-order output, and once a message
	// enters the escape network it stays there (the conservative variant
	// of Duato's protocol). Requires VCs >= 3. This is the comparison
	// point the paper's introduction discusses (its refs [7, 22]).
	RoutingAdaptive
)

// Config describes one simulated network and workload.
type Config struct {
	// K is the radix (nodes per dimension); must be >= 2.
	K int
	// Dims is the number of dimensions n; must be >= 1. The paper's
	// evaluation uses Dims = 2.
	Dims int
	// VCs is the number of virtual channels per physical channel; must be
	// >= 2 so the two Dally-Seitz classes are non-empty (assumption (vi)).
	VCs int
	// BufDepth is the per-virtual-channel flit buffer depth; must be >= 1.
	// Depth 1 matches the paper's single-flit buffers but, under the
	// simulator's conservative same-cycle credit accounting, halves the
	// sustainable per-VC throughput; depth 2 (the default used by the
	// experiments) streams one flit per cycle exactly as the analytical
	// model assumes.
	BufDepth int
	// MsgLen is the fixed message length Lm in flits; must be >= 1
	// (assumption (iii)).
	MsgLen int
	// Lambda is the per-node message generation rate in messages/cycle
	// (assumption (i)); must be > 0 unless ArrivalsFactory is set.
	Lambda float64
	// Pattern chooses destinations; nil means uniform traffic.
	Pattern traffic.Pattern
	// ArrivalsFactory, when non-nil, builds the per-node arrival process
	// (overriding Lambda); each node gets an independent instance.
	ArrivalsFactory func(node topology.NodeID) traffic.Arrivals
	// Seed seeds the simulation's random stream; runs with equal Config
	// are bit-for-bit reproducible.
	Seed int64
	// EjectionContention, when true, models a single ejection channel per
	// node moving one flit per cycle. When false (the paper's assumption
	// (iv)) arriving flits are consumed immediately.
	EjectionContention bool
	// Routing selects deterministic dimension-order routing (the default,
	// the paper's assumption (v)) or minimal adaptive routing with escape
	// channels.
	Routing Routing
	// Bidirectional, when true, gives every dimension both a positive and
	// a negative ring (two unidirectional channels per node per dimension)
	// and routes each message along the shorter direction, ties to the
	// positive ring — the extension Section 2 of the paper mentions. The
	// default (false) is the paper's unidirectional network.
	Bidirectional bool
	// RecordPaths, when true, stores the sequence of nodes every message
	// visits (testing aid; costs memory).
	RecordPaths bool
	// CheckInvariants enables internal consistency checks that panic on
	// violation (testing aid).
	CheckInvariants bool
	// Collector, when non-nil, receives instrumentation events (injections,
	// deliveries, blocking, VC occupancy, end-of-run aggregates). nil — the
	// default — leaves the hot path uninstrumented; see Collector and
	// NewTelemetryCollector.
	Collector Collector
}

// withDefaults fills derived defaults without mutating c.
func (c Config) withDefaults() Config {
	if c.BufDepth == 0 {
		c.BufDepth = 2
	}
	return c
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.K < 2 {
		return fmt.Errorf("sim: K = %d, want >= 2", c.K)
	}
	if c.Dims < 1 {
		return fmt.Errorf("sim: Dims = %d, want >= 1", c.Dims)
	}
	if c.VCs < 2 {
		return fmt.Errorf("sim: VCs = %d, want >= 2 (deadlock freedom needs two VC classes)", c.VCs)
	}
	if c.VCs > 127 {
		return fmt.Errorf("sim: VCs = %d, want <= 127", c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("sim: BufDepth = %d, want >= 1", c.BufDepth)
	}
	if c.MsgLen < 1 {
		return fmt.Errorf("sim: MsgLen = %d, want >= 1", c.MsgLen)
	}
	if c.ArrivalsFactory == nil && c.Lambda <= 0 {
		return fmt.Errorf("sim: Lambda = %v, want > 0 (or an ArrivalsFactory)", c.Lambda)
	}
	if c.Routing == RoutingAdaptive && c.VCs < 3 {
		return fmt.Errorf("sim: adaptive routing needs VCs >= 3 (2 escape + adaptive), got %d", c.VCs)
	}
	return nil
}

// RunOptions control a measurement run.
type RunOptions struct {
	// Ctx, when non-nil, is polled periodically during the run; Run returns
	// the context's error as soon as cancellation or a deadline is observed
	// (within ctxCheckInterval cycles). A nil Ctx never interrupts the run.
	Ctx context.Context
	// WarmupCycles are simulated before measurement starts; messages
	// generated during warm-up are excluded from the statistics.
	WarmupCycles int64
	// MaxCycles caps the run (required, > WarmupCycles).
	MaxCycles int64
	// MinMeasured is the number of measured message deliveries to collect
	// before steady-state detection may stop the run; 0 means 10000.
	MinMeasured int64
	// BatchSize, Window, RelTol parameterise the batch-means steady-state
	// detector (zero values use the stats package defaults).
	BatchSize int
	Window    int
	RelTol    float64
}

func (o RunOptions) withDefaults() RunOptions {
	if o.MinMeasured == 0 {
		o.MinMeasured = 10000
	}
	if o.BatchSize == 0 {
		o.BatchSize = 500
	}
	if o.Window == 0 {
		o.Window = 4
	}
	if stats.IsZero(o.RelTol) {
		o.RelTol = 0.05
	}
	return o
}

// Validate reports the first problem with the run options.
func (o RunOptions) Validate() error {
	o = o.withDefaults()
	if o.MaxCycles <= 0 {
		return fmt.Errorf("sim: MaxCycles = %d, want > 0", o.MaxCycles)
	}
	if o.WarmupCycles < 0 || o.WarmupCycles >= o.MaxCycles {
		return fmt.Errorf("sim: WarmupCycles = %d, want in [0, MaxCycles)", o.WarmupCycles)
	}
	if o.MinMeasured < 0 {
		return fmt.Errorf("sim: MinMeasured = %d, want >= 0", o.MinMeasured)
	}
	return nil
}
