package sim

// Differential gate for the event-driven hot loop: drive two identically
// configured and seeded networks — one with the production Step, one with
// the scan-based reference step (refstep_test.go) — and require every
// observable to be bit-identical: the full Result struct, the per-channel
// flit counters, and the message counters. Any divergence in arbitration
// order, RNG draw sequence, or statistics accounting fails here before it
// could silently bias the paper-validation sweeps.

import (
	"fmt"
	"reflect"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// diffConfigs returns the routing × pattern matrix the ISSUE pins:
// unidirectional/bidirectional/adaptive crossed with uniform/hot-spot/
// transpose traffic. Hot-spot rows also exercise the contended ejection
// channel.
func diffConfigs(t *testing.T) []Config {
	t.Helper()
	type routingRow struct {
		name string
		vcs  int
		bi   bool
		mode Routing
	}
	routings := []routingRow{
		{"unidirectional", 2, false, RoutingDimensionOrder},
		{"bidirectional", 2, true, RoutingDimensionOrder},
		{"adaptive", 4, true, RoutingAdaptive},
	}
	patterns := []string{"uniform", "hotspot", "transpose"}

	cube := topology.MustNew(4, 2)
	hot := cube.FromCoords([]int{2, 2})
	var cfgs []Config
	for _, rr := range routings {
		for _, pat := range patterns {
			var p traffic.Pattern
			switch pat {
			case "uniform":
				p = traffic.Uniform{Cube: cube}
			case "hotspot":
				hs, err := traffic.NewHotSpot(cube, hot, 0.25)
				if err != nil {
					t.Fatal(err)
				}
				p = hs
			case "transpose":
				p = traffic.Transpose{Cube: cube}
			}
			cfgs = append(cfgs, Config{
				K: 4, Dims: 2, VCs: rr.vcs, BufDepth: 2, MsgLen: 8,
				Lambda: 0.008, Pattern: p, Seed: 77,
				Bidirectional: rr.bi, Routing: rr.mode,
				EjectionContention: pat == "hotspot",
			})
		}
	}
	return cfgs
}

func diffConfigName(cfg Config) string {
	routing := "dor-uni"
	if cfg.Bidirectional {
		routing = "dor-bi"
	}
	if cfg.Routing == RoutingAdaptive {
		routing = "adaptive"
	}
	return fmt.Sprintf("%s/%v", routing, cfg.Pattern)
}

// TestStepMatchesReferenceRun runs both implementations through the full
// Run machinery (warm-up, measurement window, steady-state detection) and
// compares the complete Result plus the raw flit counters.
func TestStepMatchesReferenceRun(t *testing.T) {
	opts := RunOptions{WarmupCycles: 500, MaxCycles: 30000, MinMeasured: 400}
	for _, cfg := range diffConfigs(t) {
		cfg := cfg
		t.Run(diffConfigName(cfg), func(t *testing.T) {
			fast, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.stepOverride = ref.refStep

			fastRes, err := fast.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := ref.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fastRes, refRes) {
				t.Errorf("Result diverged:\n fast: %+v\n ref:  %+v", fastRes, refRes)
			}
			if fast.cycle != ref.cycle {
				t.Errorf("cycle diverged: fast %d ref %d", fast.cycle, ref.cycle)
			}
			if !reflect.DeepEqual(fast.chanFlits, ref.chanFlits) {
				t.Error("chanFlits diverged")
			}
			if fast.busyChanSamples != ref.busyChanSamples || fast.busyVCCt != ref.busyVCCt {
				t.Errorf("multiplexing samples diverged: fast (%d,%d) ref (%d,%d)",
					fast.busyChanSamples, fast.busyVCCt, ref.busyChanSamples, ref.busyVCCt)
			}
		})
	}
}

// TestStepMatchesReferenceLockstep steps both implementations cycle by
// cycle and compares the externally observable counters after every cycle,
// so a divergence is localised to the first offending cycle rather than
// surfacing as a scrambled end-of-run aggregate.
func TestStepMatchesReferenceLockstep(t *testing.T) {
	cycles := 4000
	if testing.Short() {
		cycles = 1000
	}
	for _, cfg := range diffConfigs(t) {
		cfg := cfg
		t.Run(diffConfigName(cfg), func(t *testing.T) {
			fast, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			record := func(nw *Network) *[]deliveryRecord {
				recs := &[]deliveryRecord{}
				nw.OnDeliver(func(m *Message) {
					*recs = append(*recs, deliveryRecord{
						m.ID, m.Src, m.Dst, m.Hops, m.Blocked, m.Escaped,
						m.GenCycle, m.InjectCycle, m.DeliverCycle,
					})
				})
				return recs
			}
			fastRecs, refRecs := record(fast), record(ref)
			for c := 0; c < cycles; c++ {
				fast.Step()
				ref.refStep()
				if fast.injected != ref.injected || fast.delivered != ref.delivered {
					t.Fatalf("cycle %d: injected/delivered diverged: fast (%d,%d) ref (%d,%d)",
						c, fast.injected, fast.delivered, ref.injected, ref.delivered)
				}
				if !reflect.DeepEqual(fast.chanFlits, ref.chanFlits) {
					t.Fatalf("cycle %d: chanFlits diverged", c)
				}
			}
			// Per-message observables must match exactly: same messages
			// delivered in the same order with identical timing, hop and
			// blocking histories.
			if !reflect.DeepEqual(*fastRecs, *refRecs) {
				t.Fatalf("delivery records diverged (fast %d msgs, ref %d msgs)",
					len(*fastRecs), len(*refRecs))
			}
		})
	}
}

// deliveryRecord is every per-message observable a delivered message
// carries, for exact old-vs-new comparison.
type deliveryRecord struct {
	ID       int64
	Src, Dst topology.NodeID
	Hops     int32
	Blocked  int32
	Escaped  bool
	Gen      int64
	Inj      int64
	Del      int64
}
