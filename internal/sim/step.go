package sim

import (
	"container/heap"

	"kncube/internal/topology"
)

// genHeap orders routers by their next generation time.
type genHeap struct {
	when []int64
	node []int32
}

func (h *genHeap) Len() int           { return len(h.when) }
func (h *genHeap) Less(i, j int) bool { return h.when[i] < h.when[j] }
func (h *genHeap) Swap(i, j int) {
	h.when[i], h.when[j] = h.when[j], h.when[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
}
func (h *genHeap) Push(x any) {
	p := x.([2]int64)
	h.when = append(h.when, p[0])        //lint:ignore hotalloc heap len never exceeds router count; capacity retained across Pop/Push
	h.node = append(h.node, int32(p[1])) //lint:ignore hotalloc heap len never exceeds router count; capacity retained across Pop/Push
}
func (h *genHeap) Pop() any {
	n := len(h.when) - 1
	v := [2]int64{h.when[n], int64(h.node[n])}
	h.when, h.node = h.when[:n], h.node[:n]
	return v
}

// stepState holds the per-Network mutable scheduling structures that Step
// uses; it is initialised lazily on the first Step call.
type stepState struct {
	gen      genHeap
	active   []int32
	isActive []bool
	scratch  []int16 // per-phase snapshot of a router's scheduling list
	inited   bool
}

func (nw *Network) initStep() {
	st := &nw.step
	st.isActive = make([]bool, len(nw.routers))     //lint:ignore hotalloc one-time lazy init on the first Step
	st.gen.when = make([]int64, 0, len(nw.routers)) //lint:ignore hotalloc one-time lazy init on the first Step
	st.gen.node = make([]int32, 0, len(nw.routers)) //lint:ignore hotalloc one-time lazy init on the first Step
	for i := range nw.routers {
		st.gen.when = append(st.gen.when, nw.routers[i].nextGen) //lint:ignore hotalloc one-time lazy init on the first Step
		st.gen.node = append(st.gen.node, int32(i))              //lint:ignore hotalloc one-time lazy init on the first Step
	}
	heap.Init(&st.gen)
	st.inited = true
}

func (nw *Network) activate(i int32) {
	st := &nw.step
	if !st.isActive[i] {
		st.isActive[i] = true
		st.active = append(st.active, i) //lint:ignore hotalloc active list grows to router count once, then compaction reslices in place
	}
}

// Step advances the simulation by one network cycle. The phase order within
// a cycle is: output-VC allocation for ready headers, ejection, network and
// injection channel arbitration (one flit per physical channel), message
// generation, and source-queue binding to free injection virtual channels.
// Eligibility uses start-of-cycle buffer state, so a flit crosses at most
// one channel per cycle.
//
// The loop is event-driven at two levels. Routers join the active list
// only when a buffer or credit of theirs changes (a downstream claim, a
// generated message) and leave it when they hold nothing; within an active
// router every phase consults an incrementally-maintained list (pending
// headers, per-channel candidates, eject queue, live injection VCs) instead
// of scanning the full (ports+1)×VCs input array, so per-cycle work is
// proportional to the flits that can actually move. Arbitration visits the
// lists in the same rotating flattened-index order a full scan would use,
// which keeps every statistic bit-identical to the scan-based loop (the
// differential suite in differential_test.go pins this).
//
//khs:hotpath
func (nw *Network) Step() {
	if !nw.step.inited {
		nw.initStep()
	}
	st := &nw.step
	cyc := nw.cycle

	// Snapshot of currently active routers; routers activated during this
	// cycle (downstream claims, new messages) join from the next cycle.
	snapshot := st.active

	// Phase 1: route computation and output virtual-channel allocation.
	for _, ri := range snapshot {
		if r := &nw.routers[ri]; len(r.pending) > 0 {
			nw.allocate(r, cyc)
		}
	}
	// Phase 2: ejection.
	for _, ri := range snapshot {
		if r := &nw.routers[ri]; len(r.ejectQ) > 0 {
			nw.eject(r, cyc)
		}
	}
	// Phase 3: network channel arbitration (one flit per output channel).
	for _, ri := range snapshot {
		if r := &nw.routers[ri]; r.candLive > 0 {
			nw.forward(r, cyc)
		}
	}
	// Phase 4: injection channel arbitration (one flit from the PE).
	for _, ri := range snapshot {
		if r := &nw.routers[ri]; r.injLive > 0 {
			nw.inject(r, cyc)
		}
	}
	// Phase 5: message generation.
	for st.gen.Len() > 0 && st.gen.when[0] <= cyc {
		node := st.gen.node[0]
		nw.generate(&nw.routers[node], cyc)
		r := &nw.routers[node]
		st.gen.when[0] = r.nextGen
		heap.Fix(&st.gen, 0)
		nw.activate(node)
	}
	// Phase 6: bind queued messages to free injection virtual channels.
	for _, ri := range st.active {
		if r := &nw.routers[ri]; r.queueLen() > 0 {
			nw.bind(r, cyc)
		}
	}

	// Compact the active list.
	keep := st.active[:0]
	for _, ri := range st.active {
		r := &nw.routers[ri]
		if r.busyVCs > 0 || r.queueLen() > 0 {
			keep = append(keep, ri) //lint:ignore hotalloc filter-in-place over st.active[:0]; never outgrows its capacity
		} else {
			st.isActive[ri] = false
		}
	}
	st.active = keep

	if nw.cycle%64 == 0 {
		nw.sampleMultiplexing()
	}
	nw.cycle++
}

// rotate copies list into the step scratch buffer in round-robin order:
// entries >= start first (ascending), then the wrapped prefix. The lists
// are maintained ascending, so this reproduces exactly the visit order of
// a full flattened scan starting at a rotating pointer.
func (nw *Network) rotate(list []int16, start int) []int16 {
	split := 0
	for _, idx := range list {
		if int(idx) < start {
			split++
		}
	}
	s := append(nw.step.scratch[:0], list[split:]...) //lint:ignore hotalloc round-robin snapshot reuses the retained step scratch buffer
	s = append(s, list[:split]...)                    //lint:ignore hotalloc round-robin snapshot reuses the retained step scratch buffer
	nw.step.scratch = s
	return s
}

// allocate assigns an output port and claims a downstream virtual channel
// for every input VC whose header flit is ready. Only the pending-header
// list is visited, rotated at rrAlloc and advanced past the last grant, so
// headers competing for the same scarce downstream virtual channel take
// turns exactly as under the full scan.
func (nw *Network) allocate(r *router, cyc int64) {
	nVC := nw.nVC
	total := (nw.outputs + 1) * nVC
	lastGrant := -1
	// Iterate a snapshot: claims remove entries from r.pending mid-loop.
	for _, idx16 := range nw.rotate(r.pending, r.rrAlloc) {
		idx := int(idx16)
		in := &r.in[idx]
		if in.avail(cyc) <= 0 {
			continue // claimed downstream VC, header not arrived yet
		}
		msg := in.msg
		if in.routeCh == routeUnknown {
			in.routeCh = nw.route(msg, r.node)
			if int(in.routeCh) != nw.injPort && nw.wrappedAfter(msg, r.node, int(in.routeCh)) {
				in.wrapped = 1
			}
		}
		if int(in.routeCh) == nw.injPort { // arrived: mark for ejection
			in.outPort = in.routeCh
			r.pending = removeSorted(r.pending, idx16)
			r.ejectQ = insertSorted(r.ejectQ, idx16)
			continue
		}
		claim := func(ch, dv int) { //lint:ignore hotalloc non-escaping grant helper, inlined into the allocation loop
			oc := &r.out[ch]
			down := oc.down
			dvc := &down.in[oc.base+dv]
			dvc.msg = msg
			dvc.outPort, dvc.outVC = noPort, noPort
			down.busyVCs++
			down.busyIn[ch]++
			down.pending = insertSorted(down.pending, int16(oc.base+dv))
			nw.activate(int32(down.node))
			in.outPort, in.outVC = int8(ch), int8(dv)
			r.pending = removeSorted(r.pending, idx16)
			oc.cand = insertSorted(oc.cand, idx16)
			r.candLive++
			lastGrant = idx
		}
		ch := int(in.routeCh)
		if nw.cfg.Routing == RoutingAdaptive {
			// The escape VC index is the cached wrap state: VC 0 holds
			// escape class 1, VC 1 escape class 0.
			dv := int(in.wrapped)
			if !msg.Escaped {
				// Try an adaptive virtual channel on any productive
				// output, falling back to the escape network on the
				// dimension-order output.
				if ach, adv, ok := nw.adaptiveCandidate(msg, r.node); ok {
					claim(ach, adv)
					continue
				}
				if r.out[ch].down.in[r.out[ch].base+dv].msg == nil {
					msg.Escaped = true
					claim(ch, dv)
				} else {
					msg.Blocked++
				}
				continue
			}
			// Escaped message: only its escape-class virtual channel.
			if r.out[ch].down.in[r.out[ch].base+dv].msg == nil {
				claim(ch, dv)
			} else {
				msg.Blocked++
			}
			continue
		}
		// Deterministic routing: any free VC of the Dally-Seitz class for
		// this hop (class 1 in [0, V/2) before the wrap, class 0 after).
		oc := &r.out[ch]
		lo, hi := 0, nVC/2
		if in.wrapped == 1 {
			lo, hi = nVC/2, nVC
		}
		for dv := lo; dv < hi; dv++ {
			if oc.down.in[oc.base+dv].msg == nil {
				claim(ch, dv)
				break
			}
		}
		if in.outPort == noPort {
			msg.Blocked++
		}
	}
	if lastGrant >= 0 {
		r.rrAlloc = (lastGrant + 1) % total
	}
}

// eject consumes flits that have reached their destination. Only VCs on
// the eject queue (output allocated to the ejection channel) are visited.
func (nw *Network) eject(r *router, cyc int64) {
	if nw.cfg.EjectionContention {
		// One ejection channel: a single flit per cycle, round-robin.
		total := (nw.outputs + 1) * nw.nVC
		for _, idx16 := range nw.rotate(r.ejectQ, r.rrEj) {
			in := &r.in[idx16]
			if in.avail(cyc) > 0 {
				nw.consume(r, int(idx16), in, cyc, 1)
				r.rrEj = (int(idx16) + 1) % total
				return
			}
		}
		return
	}
	// Contention-free ejection (assumption (iv)): drain everything that
	// arrived by the start of the cycle. Iterate a snapshot, since
	// consuming a tail removes the VC from the queue.
	for _, idx16 := range nw.rotate(r.ejectQ, 0) {
		in := &r.in[idx16]
		if n := in.avail(cyc); n > 0 {
			nw.consume(r, int(idx16), in, cyc, n)
		}
	}
}

// consume removes n buffered flits of the message holding in (the VC at
// flattened index idx), completing delivery when the tail is consumed.
func (nw *Network) consume(r *router, idx int, in *vc, cyc int64, n int32) {
	msg := in.msg
	for i := int32(0); i < n; i++ {
		in.moveOut(cyc)
	}
	if nw.cfg.CheckInvariants {
		nw.invariant(in.occ >= 0, "negative occupancy at node %d", r.node) //lint:ignore hotalloc debug-only: boxing happens inside the CheckInvariants guard
	}
	if in.sent == nw.msgLen {
		in.reset()
		r.busyVCs--
		if p := idx / nw.nVC; p < nw.injPort {
			r.busyIn[p]--
		}
		r.ejectQ = removeSorted(r.ejectQ, int16(idx))
		nw.deliver(msg, cyc)
	}
}

// forward arbitrates each outgoing network channel of r and moves at most
// one flit across it. Arbitration consults only the channel's candidate
// list; the common uncontended case (one message holding the channel) is a
// single eligibility check — the arbitration decision made at allocation
// time carries the whole message across, flit by flit, with no rescan.
func (nw *Network) forward(r *router, cyc int64) {
	total := (nw.outputs + 1) * nw.nVC
	for ch := 0; ch < nw.outputs; ch++ {
		oc := &r.out[ch]
		var granted, dvc *vc
		var grantIdx int
		switch n := len(oc.cand); {
		case n == 0:
			continue
		case n == 1:
			// Sole candidate: the rotated scan can only pick it.
			grantIdx = int(oc.cand[0])
			in := &r.in[grantIdx]
			if in.avail(cyc) <= 0 {
				continue
			}
			d := &oc.down.in[oc.base+int(in.outVC)]
			if d.space(cyc, nw.depth) <= 0 {
				continue
			}
			granted, dvc = in, d
		default:
			for _, idx16 := range nw.rotate(oc.cand, oc.rr) {
				in := &r.in[idx16]
				if in.avail(cyc) <= 0 {
					continue
				}
				d := &oc.down.in[oc.base+int(in.outVC)]
				if d.space(cyc, nw.depth) <= 0 {
					continue
				}
				granted, grantIdx, dvc = in, int(idx16), d
				break
			}
			if granted == nil {
				continue
			}
		}
		oc.rr = (grantIdx + 1) % total
		if nw.cfg.CheckInvariants {
			nw.invariant(dvc.msg == granted.msg, "downstream VC stolen at node %d channel %d", r.node, ch) //lint:ignore hotalloc debug-only: boxing happens inside the CheckInvariants guard
		}
		granted.moveOut(cyc)
		dvc.moveIn(cyc)
		nw.chanFlits[r.flitBase+ch]++
		msg := granted.msg
		if dvc.recvd == 1 { // header crossed this channel
			msg.Hops++
			if nw.cfg.RecordPaths {
				msg.Path = append(msg.Path, oc.down.node) //lint:ignore hotalloc debug-only: RecordPaths tracing
			}
		}
		if granted.sent == nw.msgLen { // tail left: release this VC
			granted.reset()
			r.busyVCs--
			if p := grantIdx / nw.nVC; p < nw.injPort {
				r.busyIn[p]--
			}
			oc.cand = removeSorted(oc.cand, int16(grantIdx))
			r.candLive--
		}
	}
}

// inject moves at most one flit from the PE into a bound injection VC.
func (nw *Network) inject(r *router, cyc int64) {
	nVC := nw.nVC
	base := nw.injPort * nVC
	for off := 0; off < nVC; off++ {
		v := (r.rrInj + off) % nVC
		in := &r.in[base+v]
		if in.msg == nil || in.recvd >= nw.msgLen || in.space(cyc, nw.depth) <= 0 {
			continue
		}
		in.moveIn(cyc)
		if in.recvd == nw.msgLen {
			r.injLive--
		}
		r.rrInj = (v + 1) % nVC
		return
	}
}

// generate creates the messages scheduled at or before cyc for router r.
func (nw *Network) generate(r *router, cyc int64) {
	for r.nextGen <= cyc {
		dst := nw.pattern.Destination(r.node, nw.rng)
		nw.invariant(dst != r.node, "pattern returned source %d", r.node) //lint:ignore hotalloc per generated message, dwarfed by the Message allocation below
		msg := &Message{                                                  //lint:ignore hotalloc one Message per injected packet, alive until delivery; per-message, not per-cycle
			ID:           nw.nextID,
			Src:          r.node,
			Dst:          dst,
			Len:          nw.msgLen,
			GenCycle:     r.nextGen,
			DeliverCycle: -1,
			Measured:     r.nextGen >= nw.measureFrom && nw.measuring,
		}
		if hc, ok := nw.pattern.(hotClassifier); ok {
			msg.Hot = hc.IsHot(dst)
		}
		if nw.cfg.RecordPaths {
			msg.Path = append(msg.Path, r.node) //lint:ignore hotalloc debug-only: RecordPaths tracing
		}
		nw.nextID++
		nw.injected++
		r.srcQ = append(r.srcQ, msg) //lint:ignore hotalloc source queue append per generated message; drained and resliced by the injector
		if nw.coll != nil {
			nw.coll.MessageInjected(r.queueLen())
		}
		r.nextGen += int64(r.arr.Next(nw.rng))
	}
}

// hotClassifier is implemented by traffic patterns that can identify
// hot-spot destinations (traffic.HotSpot).
type hotClassifier interface {
	IsHot(topology.NodeID) bool
}

// bind attaches queued messages to free injection virtual channels.
func (nw *Network) bind(r *router, cyc int64) {
	base := nw.injPort * nw.nVC
	for r.queueLen() > 0 {
		free := -1
		for v := 0; v < nw.nVC; v++ {
			if r.in[base+v].msg == nil {
				free = v
				break
			}
		}
		if free < 0 {
			return
		}
		msg := r.popQueue()
		in := &r.in[base+free]
		in.reset()
		in.msg = msg
		r.busyVCs++
		r.injLive++
		r.pending = insertSorted(r.pending, int16(base+free))
		msg.InjectCycle = cyc
	}
}

// deliver finalises a message and records statistics. Messages measured by
// an earlier Run on the same network (their generation predates the
// current measurement window) are excluded, so reuse cannot leak samples
// across runs.
func (nw *Network) deliver(msg *Message, cyc int64) {
	msg.DeliverCycle = cyc
	nw.delivered++
	if nw.delivCb != nil {
		nw.delivCb(msg)
	}
	if nw.coll != nil {
		nw.coll.MessageDelivered(msg.Latency(), int64(msg.Blocked), msg.SourceWait())
		if nw.draining {
			nw.coll.MessageDrained()
		}
	}
	if !msg.Measured || msg.GenCycle < nw.measureFrom {
		return
	}
	nw.measured++
	lat := float64(msg.Latency())
	nw.latAll.Add(lat)
	nw.latHist.Add(lat)
	nw.batch.Add(lat)
	nw.netAll.Add(float64(msg.DeliverCycle - msg.InjectCycle))
	nw.waitSrc.Add(float64(msg.SourceWait()))
	nw.hopsTotal += int64(msg.Hops)
	if msg.Hot {
		nw.latHot.Add(lat)
	} else {
		nw.latReg.Add(lat)
	}
}

// sampleMultiplexing samples the number of busy virtual channels on busy
// physical channels to estimate the empirical multiplexing degree. Every
// router holding a VC is on the active list, and per-port busy counts are
// maintained incrementally, so the sample costs one counter read per
// network port per busy router.
func (nw *Network) sampleMultiplexing() {
	for _, ri := range nw.step.active {
		r := &nw.routers[ri]
		if r.busyVCs == 0 {
			continue
		}
		for d := 0; d < nw.outputs; d++ {
			if busy := int64(r.busyIn[d]); busy > 0 {
				nw.busyChanSamples++
				nw.busyVCCt += busy
				if nw.coll != nil {
					nw.coll.VCOccupancy(int(busy))
				}
			}
		}
	}
}
