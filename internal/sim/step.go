package sim

import (
	"container/heap"

	"kncube/internal/topology"
)

// genHeap orders routers by their next generation time.
type genHeap struct {
	when []int64
	node []int32
}

func (h *genHeap) Len() int           { return len(h.when) }
func (h *genHeap) Less(i, j int) bool { return h.when[i] < h.when[j] }
func (h *genHeap) Swap(i, j int) {
	h.when[i], h.when[j] = h.when[j], h.when[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
}
func (h *genHeap) Push(x any) {
	p := x.([2]int64)
	h.when = append(h.when, p[0])
	h.node = append(h.node, int32(p[1]))
}
func (h *genHeap) Pop() any {
	n := len(h.when) - 1
	v := [2]int64{h.when[n], int64(h.node[n])}
	h.when, h.node = h.when[:n], h.node[:n]
	return v
}

// stepState holds the per-Network mutable scheduling structures that Step
// uses; it is initialised lazily on the first Step call.
type stepState struct {
	gen      genHeap
	active   []int32
	isActive []bool
	inited   bool
}

func (nw *Network) initStep() {
	st := &nw.step
	st.isActive = make([]bool, len(nw.routers))
	st.gen.when = make([]int64, 0, len(nw.routers))
	st.gen.node = make([]int32, 0, len(nw.routers))
	for i := range nw.routers {
		st.gen.when = append(st.gen.when, nw.routers[i].nextGen)
		st.gen.node = append(st.gen.node, int32(i))
	}
	heap.Init(&st.gen)
	st.inited = true
}

func (nw *Network) activate(i int32) {
	st := &nw.step
	if !st.isActive[i] {
		st.isActive[i] = true
		st.active = append(st.active, i)
	}
}

// Step advances the simulation by one network cycle. The phase order within
// a cycle is: output-VC allocation for ready headers, ejection, network and
// injection channel arbitration (one flit per physical channel), message
// generation, and source-queue binding to free injection virtual channels.
// Eligibility uses start-of-cycle buffer state, so a flit crosses at most
// one channel per cycle.
func (nw *Network) Step() {
	if !nw.step.inited {
		nw.initStep()
	}
	st := &nw.step
	cyc := nw.cycle

	// Snapshot of currently active routers; routers activated during this
	// cycle (downstream claims, new messages) join from the next cycle.
	snapshot := st.active

	// Phase 1: route computation and output virtual-channel allocation.
	for _, ri := range snapshot {
		nw.allocate(&nw.routers[ri], cyc)
	}
	// Phase 2: ejection.
	for _, ri := range snapshot {
		nw.eject(&nw.routers[ri], cyc)
	}
	// Phase 3: network channel arbitration (one flit per output channel).
	for _, ri := range snapshot {
		nw.forward(&nw.routers[ri], cyc)
	}
	// Phase 4: injection channel arbitration (one flit from the PE).
	for _, ri := range snapshot {
		nw.inject(&nw.routers[ri], cyc)
	}
	// Phase 5: message generation.
	for st.gen.Len() > 0 && st.gen.when[0] <= cyc {
		node := st.gen.node[0]
		nw.generate(&nw.routers[node], cyc)
		r := &nw.routers[node]
		st.gen.when[0] = r.nextGen
		heap.Fix(&st.gen, 0)
		nw.activate(node)
	}
	// Phase 6: bind queued messages to free injection virtual channels.
	for _, ri := range st.active {
		nw.bind(&nw.routers[ri], cyc)
	}

	// Compact the active list.
	keep := st.active[:0]
	for _, ri := range st.active {
		r := &nw.routers[ri]
		if r.busyVCs > 0 || r.queueLen() > 0 {
			keep = append(keep, ri)
		} else {
			st.isActive[ri] = false
		}
	}
	st.active = keep

	if nw.cycle%64 == 0 {
		nw.sampleMultiplexing()
	}
	nw.cycle++
}

// allocate assigns an output port and claims a downstream virtual channel
// for every input VC whose header flit is ready. The scan starts at a
// rotating offset and advances past the last grant, so headers competing
// for the same scarce downstream virtual channel take turns instead of the
// lowest-numbered port winning every time.
func (nw *Network) allocate(r *router, cyc int64) {
	nVC := nw.cfg.VCs
	total := (nw.outputs + 1) * nVC
	lastGrant := -1
	for off := 0; off < total; off++ {
		idx := (r.rrAlloc + off) % total
		in := &r.in[idx/nVC][idx%nVC]
		if !in.headerReady(cyc) {
			continue
		}
		msg := in.msg
		out := nw.route(msg, r.node)
		if int(out) == nw.injPort { // arrived: mark for ejection
			in.outPort = out
			continue
		}
		claim := func(ch, dv int) {
			down := nw.downRouter(r.node, ch)
			dvc := &down.in[ch][dv]
			dvc.msg = msg
			dvc.outPort, dvc.outVC = noPort, noPort
			down.busyVCs++
			nw.activate(int32(down.node))
			in.outPort, in.outVC = int8(ch), int8(dv)
			lastGrant = idx
		}
		if nw.cfg.Routing == RoutingAdaptive && !msg.Escaped {
			// Try an adaptive virtual channel on any productive output.
			if ch, dv, ok := nw.adaptiveCandidate(msg, r.node); ok {
				claim(ch, dv)
				continue
			}
			// Fall back to the escape network on the dimension-order
			// output; the message then stays on escape channels.
			ch := int(out)
			dv := nw.escapeVC(msg, r.node, ch)
			if nw.downRouter(r.node, ch).in[ch][dv].msg == nil {
				msg.Escaped = true
				claim(ch, dv)
			} else {
				msg.Blocked++
			}
			continue
		}
		ch := int(out)
		if nw.cfg.Routing == RoutingAdaptive {
			// Escaped message: only its escape-class virtual channel.
			dv := nw.escapeVC(msg, r.node, ch)
			if nw.downRouter(r.node, ch).in[ch][dv].msg == nil {
				claim(ch, dv)
			} else {
				msg.Blocked++
			}
			continue
		}
		down := nw.downRouter(r.node, ch)
		lo, hi := nw.vcClassRange(msg, r.node, ch)
		for dv := lo; dv < hi; dv++ {
			if down.in[ch][dv].msg == nil {
				claim(ch, dv)
				break
			}
		}
		if in.outPort == noPort {
			msg.Blocked++
		}
	}
	if lastGrant >= 0 {
		r.rrAlloc = (lastGrant + 1) % total
	}
}

// eject consumes flits that have reached their destination.
func (nw *Network) eject(r *router, cyc int64) {
	if nw.cfg.EjectionContention {
		// One ejection channel: a single flit per cycle, round-robin.
		nVC := nw.cfg.VCs
		total := (nw.outputs + 1) * nVC
		for off := 0; off < total; off++ {
			idx := (r.rrEj + off) % total
			in := &r.in[idx/nVC][idx%nVC]
			if in.msg != nil && int(in.outPort) == nw.injPort && in.avail(cyc) > 0 {
				nw.consume(r, in, cyc, 1)
				r.rrEj = (idx + 1) % total
				return
			}
		}
		return
	}
	// Contention-free ejection (assumption (iv)): drain everything that
	// arrived by the start of the cycle.
	for p := range r.in {
		for v := range r.in[p] {
			in := &r.in[p][v]
			if in.msg != nil && int(in.outPort) == nw.injPort {
				if n := in.avail(cyc); n > 0 {
					nw.consume(r, in, cyc, n)
				}
			}
		}
	}
}

// consume removes n buffered flits of the message holding in, completing
// delivery when the tail is consumed.
func (nw *Network) consume(r *router, in *vc, cyc int64, n int32) {
	msg := in.msg
	for i := int32(0); i < n; i++ {
		in.moveOut(cyc)
	}
	nw.invariant(in.occ >= 0, "negative occupancy at node %d", r.node)
	if in.sent == nw.msgLen {
		in.reset()
		r.busyVCs--
		nw.deliver(msg, cyc)
	}
}

// forward arbitrates each outgoing network channel of r and moves at most
// one flit across it.
func (nw *Network) forward(r *router, cyc int64) {
	nVC := nw.cfg.VCs
	total := (nw.outputs + 1) * nVC
	for ch := 0; ch < nw.outputs; ch++ {
		var granted *vc
		var grantIdx int
		var down *router
		for off := 0; off < total; off++ {
			idx := (r.rrOut[ch] + off) % total
			in := &r.in[idx/nVC][idx%nVC]
			if in.msg == nil || int(in.outPort) != ch || in.avail(cyc) <= 0 {
				continue
			}
			dn := nw.downRouter(r.node, ch)
			dvc := &dn.in[ch][in.outVC]
			if dvc.space(cyc, nw.depth) <= 0 {
				continue
			}
			granted, grantIdx, down = in, idx, dn
			break
		}
		if granted == nil {
			continue
		}
		r.rrOut[ch] = (grantIdx + 1) % total
		dvc := &down.in[ch][granted.outVC]
		nw.invariant(dvc.msg == granted.msg, "downstream VC stolen at node %d channel %d", r.node, ch)
		granted.moveOut(cyc)
		dvc.moveIn(cyc)
		nw.chanFlits[int(r.node)*nw.outputs+ch]++
		msg := granted.msg
		if dvc.recvd == 1 { // header crossed this channel
			msg.Hops++
			if nw.cfg.RecordPaths {
				msg.Path = append(msg.Path, down.node)
			}
		}
		if granted.sent == nw.msgLen { // tail left: release this VC
			granted.reset()
			r.busyVCs--
		}
	}
}

// inject moves at most one flit from the PE into a bound injection VC.
func (nw *Network) inject(r *router, cyc int64) {
	nVC := nw.cfg.VCs
	for off := 0; off < nVC; off++ {
		idx := (r.rrInj + off) % nVC
		in := &r.in[nw.injPort][idx]
		if in.msg == nil || in.recvd >= nw.msgLen || in.space(cyc, nw.depth) <= 0 {
			continue
		}
		in.moveIn(cyc)
		r.rrInj = (idx + 1) % nVC
		return
	}
}

// generate creates the messages scheduled at or before cyc for router r.
func (nw *Network) generate(r *router, cyc int64) {
	for r.nextGen <= cyc {
		dst := nw.pattern.Destination(r.node, nw.rng)
		nw.invariant(dst != r.node, "pattern returned source %d", r.node)
		msg := &Message{
			ID:           nw.nextID,
			Src:          r.node,
			Dst:          dst,
			Len:          nw.msgLen,
			GenCycle:     r.nextGen,
			DeliverCycle: -1,
			Measured:     r.nextGen >= nw.measureFrom && nw.measuring,
		}
		if hc, ok := nw.pattern.(hotClassifier); ok {
			msg.Hot = hc.IsHot(dst)
		}
		if nw.cfg.RecordPaths {
			msg.Path = append(msg.Path, r.node)
		}
		nw.nextID++
		nw.injected++
		r.srcQ = append(r.srcQ, msg)
		if nw.coll != nil {
			nw.coll.MessageInjected(r.queueLen())
		}
		r.nextGen += int64(r.arr.Next(nw.rng))
	}
}

// hotClassifier is implemented by traffic patterns that can identify
// hot-spot destinations (traffic.HotSpot).
type hotClassifier interface {
	IsHot(topology.NodeID) bool
}

// bind attaches queued messages to free injection virtual channels.
func (nw *Network) bind(r *router, cyc int64) {
	for r.queueLen() > 0 {
		var free *vc
		for v := range r.in[nw.injPort] {
			if r.in[nw.injPort][v].msg == nil {
				free = &r.in[nw.injPort][v]
				break
			}
		}
		if free == nil {
			return
		}
		msg := r.popQueue()
		free.reset()
		free.msg = msg
		r.busyVCs++
		msg.InjectCycle = cyc
	}
}

// deliver finalises a message and records statistics.
func (nw *Network) deliver(msg *Message, cyc int64) {
	msg.DeliverCycle = cyc
	nw.delivered++
	if nw.delivCb != nil {
		nw.delivCb(msg)
	}
	if nw.coll != nil {
		nw.coll.MessageDelivered(msg.Latency(), int64(msg.Blocked), msg.SourceWait())
		if nw.draining {
			nw.coll.MessageDrained()
		}
	}
	if !msg.Measured {
		return
	}
	nw.measured++
	lat := float64(msg.Latency())
	nw.latAll.Add(lat)
	nw.latHist.Add(lat)
	nw.batch.Add(lat)
	nw.netAll.Add(float64(msg.DeliverCycle - msg.InjectCycle))
	nw.waitSrc.Add(float64(msg.SourceWait()))
	nw.hopsTotal += int64(msg.Hops)
	if msg.Hot {
		nw.latHot.Add(lat)
	} else {
		nw.latReg.Add(lat)
	}
}

// sampleMultiplexing samples the number of busy virtual channels on busy
// physical channels to estimate the empirical multiplexing degree.
func (nw *Network) sampleMultiplexing() {
	for ri := range nw.routers {
		r := &nw.routers[ri]
		if r.busyVCs == 0 {
			continue
		}
		for d := 0; d < nw.outputs; d++ {
			busy := int64(0)
			for v := range r.in[d] {
				if r.in[d][v].msg != nil {
					busy++
				}
			}
			if busy > 0 {
				nw.busyChanSamples++
				nw.busyVCCt += busy
				if nw.coll != nil {
					nw.coll.VCOccupancy(int(busy))
				}
			}
		}
	}
}
