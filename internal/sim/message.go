package sim

import "kncube/internal/topology"

// Message is one wormhole message: MsgLen flits that snake through the
// network behind a header flit.
type Message struct {
	ID  int64
	Src topology.NodeID
	Dst topology.NodeID
	// Hot records whether the destination was chosen as the hot-spot node
	// by the traffic pattern (false for uniform patterns).
	Hot bool
	// Len is the message length in flits.
	Len int32

	// GenCycle is when the source PE generated the message (entered the
	// infinite source queue).
	GenCycle int64
	// InjectCycle is when the message acquired an injection virtual
	// channel (left the source queue head).
	InjectCycle int64
	// DeliverCycle is when the tail flit was consumed by the destination
	// PE; -1 while in flight.
	DeliverCycle int64

	// Hops is the number of network channels the header crossed.
	Hops int32
	// Blocked counts the cycles the header flit was buffered and ready but
	// failed to claim a downstream virtual channel (the blocking the
	// analytical model prices into the mean waiting time).
	Blocked int32
	// Path, when Config.RecordPaths is set, lists the routers visited.
	Path []topology.NodeID
	// Measured marks messages generated after warm-up.
	Measured bool
	// Escaped marks a message that entered the dimension-order escape
	// network under adaptive routing; it stays there until delivery.
	Escaped bool
}

// Latency returns the end-to-end latency (generation to tail delivery) in
// cycles; call only after delivery.
func (m *Message) Latency() int64 { return m.DeliverCycle - m.GenCycle }

// SourceWait returns the time spent in the source queue before acquiring an
// injection virtual channel.
func (m *Message) SourceWait() int64 { return m.InjectCycle - m.GenCycle }

// vc is one input virtual channel: a flit FIFO plus the wormhole state of
// the message currently holding it. Because flits of a single message pass
// through a virtual channel in order and a virtual channel is held by one
// message at a time, the buffer is represented by counters rather than a
// queue of flit objects.
type vc struct {
	msg *Message // holder; nil = free

	occ   int32 // flits currently buffered
	recvd int32 // flits received into this VC for msg (injection: from PE)
	sent  int32 // flits forwarded out of this VC (or consumed by ejection)

	// outPort is the allocated output for msg: a dimension index, the
	// ejection marker, or -1 before route/VC allocation.
	outPort int8
	// outVC is the downstream virtual-channel index claimed for msg.
	outVC int8

	// routeCh caches the deterministic routing decision for msg at this
	// VC's router (the dimension-order output channel, or the ejection
	// marker), and wrapped caches whether taking routeCh crosses the
	// ring's wrap-around link (which selects the Dally-Seitz class and
	// the escape VC). Both depend only on (msg, router), so a header
	// that stays blocked for many cycles pays the coordinate arithmetic
	// once instead of every retry. routeUnknown = not yet computed.
	routeCh int8
	wrapped int8

	// in/out count flits that entered/left during cycle; touch() lazily
	// resets them at each new cycle so that conservative eligibility can be
	// computed without a global per-cycle sweep:
	//   avail = occ - in   (flits present since the cycle started)
	//   space = depth - occ - out (slots free since the cycle started)
	cycle int64
	in    int32
	out   int32
}

const (
	noPort       = int8(-1)
	routeUnknown = int8(-1)
)

func (v *vc) reset() {
	v.msg = nil
	v.occ, v.recvd, v.sent = 0, 0, 0
	v.outPort, v.outVC = noPort, noPort
	v.routeCh, v.wrapped = routeUnknown, 0
}

func (v *vc) touch(cycle int64) {
	if v.cycle != cycle {
		v.cycle, v.in, v.out = cycle, 0, 0
	}
}

// avail returns the number of flits eligible to leave this cycle.
func (v *vc) avail(cycle int64) int32 {
	v.touch(cycle)
	return v.occ - v.in
}

// space returns the number of flits that may still be accepted this cycle
// under conservative (start-of-cycle) credit accounting.
func (v *vc) space(cycle int64, depth int32) int32 {
	v.touch(cycle)
	return depth - v.occ - v.out
}

// headerReady reports whether the header flit is buffered and not yet
// allocated an output.
func (v *vc) headerReady(cycle int64) bool {
	return v.msg != nil && v.outPort == noPort && v.sent == 0 && v.avail(cycle) > 0
}

func (v *vc) moveIn(cycle int64) {
	v.touch(cycle)
	v.occ++
	v.in++
	v.recvd++
}

func (v *vc) moveOut(cycle int64) {
	v.touch(cycle)
	v.occ--
	v.out++
	v.sent++
}
