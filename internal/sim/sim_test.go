package sim

import (
	"math"
	"math/rand"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"

	"kncube/internal/stats"
)

// oneShot fires a single generation at the given cycle.
type oneShot struct {
	at    int64
	fired bool
}

func (o *oneShot) Next(*rand.Rand) int {
	if !o.fired {
		o.fired = true
		return int(o.at)
	}
	return 1 << 40
}
func (o *oneShot) Rate() float64 { return 1e-12 }

// never generates nothing within any practical horizon.
type never struct{}

func (never) Next(*rand.Rand) int { return 1 << 40 }
func (never) Rate() float64       { return 1e-12 }

// fixedDst always routes to one destination.
type fixedDst struct{ dst topology.NodeID }

func (f fixedDst) Destination(src topology.NodeID, _ *rand.Rand) topology.NodeID { return f.dst }
func (f fixedDst) String() string                                                { return "fixed" }

func singleMessageConfig(k, dims, msgLen int, src, dst topology.NodeID) Config {
	return Config{
		K: k, Dims: dims, VCs: 2, MsgLen: msgLen,
		Pattern: fixedDst{dst: dst},
		ArrivalsFactory: func(n topology.NodeID) traffic.Arrivals {
			if n == src {
				return &oneShot{at: 3}
			}
			return never{}
		},
		RecordPaths:     true,
		CheckInvariants: true,
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.001}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{K: 1, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.001},
		{K: 4, Dims: 0, VCs: 2, MsgLen: 8, Lambda: 0.001},
		{K: 4, Dims: 2, VCs: 1, MsgLen: 8, Lambda: 0.001},
		{K: 4, Dims: 2, VCs: 200, MsgLen: 8, Lambda: 0.001},
		{K: 4, Dims: 2, VCs: 2, MsgLen: 0, Lambda: 0.001},
		{K: 4, Dims: 2, VCs: 2, MsgLen: 8},
		{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.001, BufDepth: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunOptionsValidate(t *testing.T) {
	if err := (RunOptions{MaxCycles: 100}).Validate(); err != nil {
		t.Errorf("good options rejected: %v", err)
	}
	bad := []RunOptions{
		{},
		{MaxCycles: 100, WarmupCycles: 100},
		{MaxCycles: 100, WarmupCycles: -1},
		{MaxCycles: 100, MinMeasured: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted zero config")
	}
}

// runSingle injects one message and returns it after delivery.
func runSingle(t *testing.T, cfg Config) *Message {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got *Message
	nw.OnDeliver(func(m *Message) { got = m })
	for i := 0; i < 5000 && got == nil; i++ {
		nw.Step()
	}
	if got == nil {
		t.Fatal("message not delivered within 5000 cycles")
	}
	return got
}

func TestSingleMessageZeroLoadLatency(t *testing.T) {
	cube := topology.MustNew(4, 2)
	cases := []struct{ src, dst topology.NodeID }{
		{cube.FromCoords([]int{0, 0}), cube.FromCoords([]int{1, 0})},
		{cube.FromCoords([]int{0, 0}), cube.FromCoords([]int{2, 1})},
		{cube.FromCoords([]int{0, 0}), cube.FromCoords([]int{0, 3})},
		{cube.FromCoords([]int{3, 3}), cube.FromCoords([]int{1, 2})}, // both dims wrap
		{cube.FromCoords([]int{2, 2}), cube.FromCoords([]int{1, 1})},
	}
	for _, c := range cases {
		for _, lm := range []int{1, 4, 16} {
			msg := runSingle(t, singleMessageConfig(4, 2, lm, c.src, c.dst))
			hops := cube.Distance(c.src, c.dst)
			// Zero-load pipeline: 1 cycle into the injection buffer per
			// flit, 1 cycle per hop, 1 cycle of ejection accounting.
			want := int64(hops + lm + 1)
			if msg.Latency() != want {
				t.Errorf("src=%d dst=%d lm=%d: latency %d, want %d",
					c.src, c.dst, lm, msg.Latency(), want)
			}
			if int(msg.Hops) != hops {
				t.Errorf("src=%d dst=%d: hops %d, want %d", c.src, c.dst, msg.Hops, hops)
			}
		}
	}
}

func TestSingleMessageFollowsDimensionOrderPath(t *testing.T) {
	cube := topology.MustNew(5, 2)
	src := cube.FromCoords([]int{4, 1})
	dst := cube.FromCoords([]int{1, 4})
	msg := runSingle(t, singleMessageConfig(5, 2, 4, src, dst))
	want := cube.Path(src, dst)
	if len(msg.Path) != len(want) {
		t.Fatalf("path %v, want %v", msg.Path, want)
	}
	for i := range want {
		if msg.Path[i] != want[i] {
			t.Fatalf("path %v, want %v", msg.Path, want)
		}
	}
}

func TestSingleMessageThreeDims(t *testing.T) {
	cube := topology.MustNew(3, 3)
	src := cube.FromCoords([]int{0, 0, 0})
	dst := cube.FromCoords([]int{2, 1, 2})
	msg := runSingle(t, singleMessageConfig(3, 3, 8, src, dst))
	hops := cube.Distance(src, dst)
	if msg.Latency() != int64(hops+8+1) {
		t.Errorf("3-D latency %d, want %d", msg.Latency(), hops+8+1)
	}
}

func TestConservationAndDrain(t *testing.T) {
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.002,
		Seed: 42, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	if nw.Injected() == 0 {
		t.Fatal("no messages injected")
	}
	if !nw.Drain(100000) {
		t.Fatalf("network failed to drain: backlog %d", nw.Backlog())
	}
	if nw.Injected() != nw.Delivered() {
		t.Errorf("injected %d != delivered %d", nw.Injected(), nw.Delivered())
	}
}

func TestDeliveredMessagesComplete(t *testing.T) {
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 6, Lambda: 0.003,
		Seed: 7, RecordPaths: true, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cube := nw.Cube()
	checked := 0
	nw.OnDeliver(func(m *Message) {
		checked++
		if m.DeliverCycle < m.InjectCycle || m.InjectCycle < m.GenCycle {
			t.Errorf("message %d: inconsistent times gen=%d inject=%d deliver=%d",
				m.ID, m.GenCycle, m.InjectCycle, m.DeliverCycle)
		}
		if int(m.Hops) != cube.Distance(m.Src, m.Dst) {
			t.Errorf("message %d: hops %d, want %d", m.ID, m.Hops, cube.Distance(m.Src, m.Dst))
		}
		if m.Path[len(m.Path)-1] != m.Dst {
			t.Errorf("message %d: path ends at %d, want %d", m.ID, m.Path[len(m.Path)-1], m.Dst)
		}
	})
	for i := 0; i < 15000; i++ {
		nw.Step()
	}
	if checked == 0 {
		t.Fatal("no deliveries observed")
	}
}

// drainAfterLoad drives cfg for cycles, then drains; failure means deadlock
// or livelock.
func drainAfterLoad(t *testing.T, cfg Config, cycles int64) {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < cycles; i++ {
		nw.Step()
	}
	if !nw.Drain(500000) {
		t.Fatalf("deadlock: %d messages stuck (injected %d)", nw.Backlog(), nw.Injected())
	}
}

func TestNoDeadlockUniformHighLoad(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.05,
		Seed: 1, CheckInvariants: true,
	}, 20000)
}

func TestNoDeadlockHotSpotExtreme(t *testing.T) {
	cube := topology.MustNew(4, 2)
	hs, err := traffic.NewHotSpot(cube, 5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.02,
		Pattern: hs, Seed: 2, CheckInvariants: true,
	}, 20000)
}

func TestNoDeadlockWrapHeavyPattern(t *testing.T) {
	cube := topology.MustNew(4, 2)
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.05,
		Pattern: traffic.BitReversal{Cube: cube}, Seed: 3, CheckInvariants: true,
	}, 20000)
}

func TestNoDeadlockManyVCsDeeperBuffers(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 4, BufDepth: 4, MsgLen: 16, Lambda: 0.03,
		Seed: 4, CheckInvariants: true,
	}, 20000)
}

func TestNoDeadlockEjectionContention(t *testing.T) {
	cube := topology.MustNew(4, 2)
	hs, _ := traffic.NewHotSpot(cube, 0, 0.5)
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.02,
		Pattern: hs, Seed: 5, EjectionContention: true, CheckInvariants: true,
	}, 20000)
}

func TestNoDeadlockBufDepthOne(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 2, BufDepth: 1, MsgLen: 8, Lambda: 0.03,
		Seed: 6, CheckInvariants: true,
	}, 20000)
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) Result {
		nw, err := New(Config{
			K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.005, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 1000, MaxCycles: 20000, MinMeasured: 200})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(11), run(11)
	if a != b {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
	c := run(12)
	if stats.ApproxEqual(a.MeanLatency, c.MeanLatency, 0, 0) && a.Injected == c.Injected {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestRunBasicStatistics(t *testing.T) {
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.004, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 2000, MaxCycles: 200000, MinMeasured: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured < 2000 {
		t.Fatalf("measured only %d messages", res.Measured)
	}
	// Zero-load latency is hops + Lm + 1 ≈ 3 + 9; at this light load the
	// mean must be near but above the unloaded mean and far from silly.
	if res.MeanLatency < 9 || res.MeanLatency > 40 {
		t.Errorf("mean latency %v outside sane range", res.MeanLatency)
	}
	if res.MeanHops < 2.5 || res.MeanHops > 3.5 {
		t.Errorf("mean hops %v, want ~3 (2 dims × (k-1)/2)", res.MeanHops)
	}
	if res.Saturated {
		t.Error("light load flagged saturated")
	}
	if res.MeanNetwork <= 0 || res.MeanNetwork > res.MeanLatency {
		t.Errorf("network latency %v vs total %v", res.MeanNetwork, res.MeanLatency)
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
	if res.VCMultiplexing < 1 || res.VCMultiplexing > 2 {
		t.Errorf("VC multiplexing %v outside [1, V]", res.VCMultiplexing)
	}
}

func TestWarmupExcludesEarlyMessages(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.01, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 5000, MaxCycles: 20000, MinMeasured: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured >= res.Delivered {
		t.Errorf("measured %d should be < delivered %d with warmup", res.Measured, res.Delivered)
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	mean := func(lambda float64) float64 {
		nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: lambda, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 3000, MaxCycles: 300000, MinMeasured: 3000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	low, mid, high := mean(0.001), mean(0.01), mean(0.03)
	if !(low < mid && mid < high) {
		t.Errorf("latency not increasing with load: %v, %v, %v", low, mid, high)
	}
}

func TestSaturationDetected(t *testing.T) {
	// Far beyond capacity: per-node 0.2 msgs/cycle × 8 flits × 3 mean hops
	// >> channel bandwidth.
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 1000, MaxCycles: 30000, MinMeasured: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Errorf("overload not flagged saturated: %+v", res)
	}
}

func TestHotSpotMessagesClassified(t *testing.T) {
	cube := topology.MustNew(4, 2)
	hs, _ := traffic.NewHotSpot(cube, 6, 0.5)
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 4, Lambda: 0.005, Pattern: hs, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hot, reg int
	nw.OnDeliver(func(m *Message) {
		if m.Hot {
			hot++
			if m.Dst != 6 {
				t.Errorf("hot message to %d", m.Dst)
			}
		} else {
			reg++
		}
	})
	for i := 0; i < 30000; i++ {
		nw.Step()
	}
	if hot == 0 || reg == 0 {
		t.Fatalf("classes missing: hot=%d reg=%d", hot, reg)
	}
	frac := float64(hot) / float64(hot+reg)
	if math.Abs(frac-0.53) > 0.08 { // 0.5 + uniform share 0.5/15
		t.Errorf("hot fraction %v, want ~0.53", frac)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 0, MaxCycles: 20000, MinMeasured: 500})
	if err != nil {
		t.Fatal(err)
	}
	if stats.IsZero(res.MeanHot) || stats.IsZero(res.MeanRegular) {
		t.Errorf("per-class latencies missing: %+v", res)
	}
}

func TestEjectionContentionSlowsHotTraffic(t *testing.T) {
	cube := topology.MustNew(4, 2)
	run := func(contention bool) float64 {
		hs, _ := traffic.NewHotSpot(cube, 5, 0.8)
		nw, err := New(Config{
			K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.006,
			Pattern: hs, Seed: 16, EjectionContention: contention,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 3000, MaxCycles: 150000, MinMeasured: 2000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	free, contended := run(false), run(true)
	if contended < free {
		t.Errorf("ejection contention reduced latency: %v < %v", contended, free)
	}
}

func TestChannelFlitCountsMatchDeliveredFlits(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.002, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var hopsDelivered int64
	nw.OnDeliver(func(m *Message) { hopsDelivered += int64(m.Hops) })
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	if !nw.Drain(100000) {
		t.Fatal("drain failed")
	}
	var total int64
	for node := 0; node < nw.Cube().Nodes(); node++ {
		for d := 0; d < 2; d++ {
			total += nw.ChannelFlits(node, d)
		}
	}
	want := hopsDelivered * 8 // every hop moves all Lm flits
	if total != want {
		t.Errorf("channel flits %d, want %d", total, want)
	}
}

func TestBernoulliArrivalsSupported(t *testing.T) {
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Seed: 18,
		ArrivalsFactory: func(topology.NodeID) traffic.Arrivals {
			b, _ := traffic.NewBernoulli(0.004)
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 1000, MaxCycles: 100000, MinMeasured: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured < 1000 {
		t.Fatalf("Bernoulli arrivals produced too few messages: %+v", res)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(RunOptions{}); err == nil {
		t.Error("Run accepted zero options")
	}
}

func TestResultString(t *testing.T) {
	if (Result{}).String() == "" {
		t.Error("empty Result.String()")
	}
}
