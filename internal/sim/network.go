package sim

import (
	"fmt"
	"math/rand"

	"kncube/internal/stats"
	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// outChannel is one outgoing physical channel of a router, wired at
// construction time to the input-VC group it feeds on the downstream
// router (booksim-style explicit channel objects). The candidate list is
// the hot-loop workhorse: it holds exactly the input VCs whose message has
// been allocated to this channel, so per-cycle arbitration touches only
// VCs that can actually move a flit instead of scanning every input VC.
type outChannel struct {
	// down is the router this channel feeds; base is the offset of the
	// channel's VC group in down.in (input port index equals the output
	// channel index, so base = ch*VCs).
	down *router
	base int

	// cand lists the flattened input-VC indices of the owning router
	// currently routed to this channel, in ascending order. Maintained
	// incrementally: allocate inserts on a successful claim, forward
	// removes when the tail flit leaves.
	cand []int16

	// rr is the round-robin arbitration pointer (flattened port*VCs+vc),
	// advanced past the last grant.
	rr int
}

// router holds the per-node state: input ports (one per dimension plus the
// injection port), the infinite source queue, the arrival process,
// round-robin arbitration pointers, and the incrementally-maintained
// scheduling lists that keep the hot loop proportional to the number of
// movable flits rather than the number of virtual channels.
type router struct {
	node topology.NodeID

	// in holds the input virtual channels, flattened as p*VCs+v. Network
	// ports are indexed d*dirs+dir: in the unidirectional network
	// (dirs = 1) port d receives from the dimension-d predecessor; with
	// bidirectional links (dirs = 2) port 2d receives positive-direction
	// traffic and port 2d+1 negative-direction traffic. The last port is
	// the injection port fed by the local PE.
	in []vc

	// out holds the router's network output channels, wired to their
	// downstream routers at construction.
	out []outChannel

	// srcQ is the infinite injection queue (FIFO; head index qHead avoids
	// O(n) pops).
	srcQ  []*Message
	qHead int

	arr     traffic.Arrivals
	nextGen int64

	// rrEj is the round-robin pointer for the ejection channel; rrAlloc
	// rotates the virtual-channel allocation scan so competing headers
	// (e.g. through-traffic vs. local injection) share fairly; rrInj
	// rotates injection-VC service.
	rrEj    int
	rrInj   int
	rrAlloc int

	// busyVCs counts held input VCs; the router is skipped entirely when
	// it has no held VCs and an empty queue.
	busyVCs int

	// pending lists (ascending, flattened) the held VCs whose header has
	// no output allocated yet — the only VCs the allocation phase must
	// visit. ejectQ lists the VCs allocated to the ejection channel.
	pending []int16
	ejectQ  []int16

	// busyIn[p] counts held VCs on network input port p (msg != nil),
	// maintained incrementally so multiplexing-degree sampling needs no
	// VC scan. injLive counts injection VCs still receiving flits from
	// the PE (msg held, recvd < MsgLen), gating the injection phase;
	// candLive counts candidates across all output channels, gating the
	// forwarding phase.
	busyIn   []int32
	injLive  int
	candLive int

	// flitBase is node*outputs, the router's offset into Network.chanFlits.
	flitBase int
}

func (r *router) queueLen() int { return len(r.srcQ) - r.qHead }

// insertSorted adds x to the ascending list s (which must not already
// contain it). The scheduling lists hold a handful of entries, so an
// insertion scan beats any clever structure.
func insertSorted(s []int16, x int16) []int16 {
	s = append(s, x) //lint:ignore hotalloc scheduling lists reuse capacity; len is bounded by VCs per router
	i := len(s) - 1
	for i > 0 && s[i-1] > x {
		s[i] = s[i-1]
		i--
	}
	s[i] = x
	return s
}

// removeSorted deletes x from the ascending list s, preserving order.
func removeSorted(s []int16, x int16) []int16 {
	for i, v := range s {
		if v == x {
			copy(s[i:], s[i+1:])
			return s[:len(s)-1]
		}
	}
	return s
}

func (r *router) popQueue() *Message {
	m := r.srcQ[r.qHead]
	r.srcQ[r.qHead] = nil
	r.qHead++
	if r.qHead > 1024 && r.qHead*2 >= len(r.srcQ) {
		n := copy(r.srcQ, r.srcQ[r.qHead:])
		r.srcQ = r.srcQ[:n]
		r.qHead = 0
	}
	return m
}

// Network is one instantiated simulation. Create with New, advance with
// Step or Run.
type Network struct {
	cfg     Config
	cube    *topology.Cube
	pattern traffic.Pattern
	rng     *rand.Rand
	routers []router
	cycle   int64
	nextID  int64

	dirs    int   // ring directions per dimension: 1 or 2
	outputs int   // network output channels per node: Dims*dirs
	injPort int   // index of the injection port (= outputs)
	nVC     int   // virtual channels per physical channel (= cfg.VCs)
	depth   int32 // buffer depth
	msgLen  int32

	step        stepState
	measureFrom int64
	measuring   bool

	// statistics
	injected, delivered       int64
	measured                  int64
	latAll, latReg, latHot    stats.Running
	netAll                    stats.Running // header-injection to delivery
	waitSrc                   stats.Running
	latHist                   *stats.Histogram
	batch                     *stats.BatchMeans
	chanFlits                 []int64 // flits moved per (node*Dims+dim) channel
	chanFlitsStart            []int64 // chanFlits snapshot at the current Run's start
	busyChanSamples, busyVCCt int64   // multiplexing-degree sampling
	hopsTotal                 int64

	delivCb func(*Message)

	// stepOverride, when non-nil, replaces Step in Run's cycle loop. Test
	// seam: the differential suite substitutes the scan-based reference
	// step so Run drives both implementations through the exact same
	// measurement machinery.
	stepOverride func()

	// coll receives instrumentation events; nil (the default) keeps the
	// hot path uninstrumented. draining is set while Drain runs so the
	// collector can distinguish drained deliveries.
	coll     Collector
	draining bool
}

// New builds a network from the configuration.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	cube, err := topology.New(cfg.K, cfg.Dims)
	if err != nil {
		return nil, err
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = traffic.Uniform{Cube: cube}
	}
	dirs := 1
	if cfg.Bidirectional {
		dirs = 2
	}
	outputs := cfg.Dims * dirs
	nw := &Network{
		cfg:     cfg,
		cube:    cube,
		pattern: pattern,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		routers: make([]router, cube.Nodes()),
		dirs:    dirs,
		outputs: outputs,
		injPort: outputs,
		nVC:     cfg.VCs,
		depth:   int32(cfg.BufDepth),
		msgLen:  int32(cfg.MsgLen),
		latHist: stats.NewHistogram(1),
		batch:   stats.NewBatchMeans(500, 4, 0.05),
		coll:    cfg.Collector,
	}
	nw.chanFlits = make([]int64, cube.Nodes()*outputs)
	nw.chanFlitsStart = make([]int64, cube.Nodes()*outputs)
	for i := range nw.routers {
		r := &nw.routers[i]
		r.node = topology.NodeID(i)
		r.flitBase = i * outputs
		r.in = make([]vc, (outputs+1)*cfg.VCs)
		for v := range r.in {
			r.in[v].reset()
		}
		r.out = make([]outChannel, outputs)
		r.busyIn = make([]int32, outputs)
		if cfg.ArrivalsFactory != nil {
			r.arr = cfg.ArrivalsFactory(r.node)
		} else {
			p, err := traffic.NewPoisson(cfg.Lambda)
			if err != nil {
				return nil, err
			}
			r.arr = p
		}
		r.nextGen = int64(r.arr.Next(nw.rng))
	}
	// Wire every output channel to the input-VC group it feeds downstream
	// (after the router slice is fully built, so the pointers are stable).
	for i := range nw.routers {
		r := &nw.routers[i]
		for ch := 0; ch < outputs; ch++ {
			r.out[ch].down = nw.downRouter(r.node, ch)
			r.out[ch].base = ch * cfg.VCs
		}
	}
	return nw, nil
}

// vcAt returns input virtual channel v of port p of r (testing aid; the
// hot loop indexes r.in directly).
func (nw *Network) vcAt(r *router, p, v int) *vc { return &r.in[p*nw.nVC+v] }

// Cube exposes the underlying topology.
func (nw *Network) Cube() *topology.Cube { return nw.cube }

// Cycle returns the current simulation time.
func (nw *Network) Cycle() int64 { return nw.cycle }

// Injected and Delivered return message counters.
func (nw *Network) Injected() int64  { return nw.injected }
func (nw *Network) Delivered() int64 { return nw.delivered }

// Backlog returns the total number of messages waiting in source queues or
// in flight.
func (nw *Network) Backlog() int64 { return nw.injected - nw.delivered }

// OnDeliver registers a callback invoked for every delivered message
// (testing and tracing aid).
func (nw *Network) OnDeliver(cb func(*Message)) { nw.delivCb = cb }

// vcClassRange returns the half-open virtual-channel index range [lo, hi)
// of the Dally-Seitz class for the next hop of msg at node cur using
// output channel ch. Class 1 ("high", indices [0, V/2)) is used until the
// message crosses the ring's wrap-around link; class 0 ("low", [V/2, V))
// afterwards. Each (dimension, direction) ring has its own disjoint channel
// set, so the two-class argument applies per ring. Injection VCs are
// outside the ring dependency cycle, so this applies only to network hops.
func (nw *Network) vcClassRange(msg *Message, cur topology.NodeID, ch int) (int, int) {
	v := nw.cfg.VCs
	half := v / 2
	if nw.wrappedAfter(msg, cur, ch) {
		return half, v // class 0
	}
	return 0, half // class 1
}

// wrappedAfter reports whether, after taking output channel ch at cur, msg
// will have crossed the wrap-around link of ch's ring. Minimal routing
// moves each dimension monotonically in one direction, so the source and
// current coordinates determine the answer regardless of dimension
// interleaving.
func (nw *Network) wrappedAfter(msg *Message, cur topology.NodeID, ch int) bool {
	d := ch / nw.dirs
	c := nw.cube.Coord(cur, d)
	s := nw.cube.Coord(msg.Src, d)
	if ch%nw.dirs == 0 {
		// Positive ring: the wrap link is k-1 -> 0; having moved only
		// forward, the message has wrapped iff it is now below its source
		// coordinate.
		return c == nw.cfg.K-1 || c < s
	}
	// Negative ring: the wrap link is 0 -> k-1; moving only backward,
	// wrapped iff now above the source coordinate.
	return c == 0 || c > s
}

// escapeVC returns the escape virtual channel index for msg taking output
// ch under adaptive routing: VC 0 holds escape class 1, VC 1 escape
// class 0.
func (nw *Network) escapeVC(msg *Message, cur topology.NodeID, ch int) int {
	if nw.wrappedAfter(msg, cur, ch) {
		return 1
	}
	return 0
}

// adaptiveCandidate scans the productive (minimal) outputs of msg at cur
// for a free adaptive virtual channel (indices 2..V-1), preferring the
// dimension with the most remaining hops.
func (nw *Network) adaptiveCandidate(msg *Message, cur topology.NodeID) (ch, dv int, ok bool) {
	bestCh, bestDv, bestDist := -1, -1, 0
	for d := 0; d < nw.cfg.Dims; d++ {
		if nw.cube.Coord(cur, d) == nw.cube.Coord(msg.Dst, d) {
			continue
		}
		var out, dist int
		if nw.dirs == 1 {
			out = d
			dist = nw.cube.RingDistance(cur, msg.Dst, d)
		} else {
			if nw.cube.BiDirection(cur, msg.Dst, d) > 0 {
				out = d * nw.dirs
			} else {
				out = d*nw.dirs + 1
			}
			dist = nw.cube.BiRingDistance(cur, msg.Dst, d)
		}
		if dist <= bestDist {
			continue
		}
		oc := &nw.routers[cur].out[out]
		for v := 2; v < nw.cfg.VCs; v++ {
			if oc.down.in[oc.base+v].msg == nil {
				bestCh, bestDv, bestDist = out, v, dist
				break
			}
		}
	}
	if bestCh < 0 {
		return 0, 0, false
	}
	return bestCh, bestDv, true
}

// downRouter returns the router reached through output channel ch of node.
func (nw *Network) downRouter(node topology.NodeID, ch int) *router {
	d := ch / nw.dirs
	if ch%nw.dirs == 0 {
		return &nw.routers[nw.cube.Neighbor(node, d)]
	}
	return &nw.routers[nw.cube.Prev(node, d)]
}

// route returns the output channel for the header of msg standing at node
// cur: the first dimension (in increasing order) whose coordinate differs
// from the destination (taking the shorter direction when the network is
// bidirectional, ties positive), or the ejection marker when cur == dst.
func (nw *Network) route(msg *Message, cur topology.NodeID) int8 {
	for d := 0; d < nw.cfg.Dims; d++ {
		if nw.cube.Coord(cur, d) == nw.cube.Coord(msg.Dst, d) {
			continue
		}
		if nw.dirs == 1 {
			return int8(d)
		}
		if nw.cube.BiDirection(cur, msg.Dst, d) > 0 {
			return int8(d * nw.dirs)
		}
		return int8(d*nw.dirs + 1)
	}
	return int8(nw.injPort) // ejection marker (same index as injection port)
}

func (nw *Network) invariant(cond bool, format string, args ...any) {
	if nw.cfg.CheckInvariants && !cond {
		panic("sim: invariant violated: " + fmt.Sprintf(format, args...))
	}
}
