package sim

// White-box tests of the router microarchitecture: Dally-Seitz virtual-
// channel class assignment, wormhole channel holding, buffer bounds, and
// link arbitration fairness.

import (
	"math"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// sweepVCs applies f to every network-input virtual channel.
func sweepVCs(nw *Network, f func(node topology.NodeID, ch, vcIdx int, v *vc)) {
	for ri := range nw.routers {
		r := &nw.routers[ri]
		for ch := 0; ch < nw.outputs; ch++ {
			for i := 0; i < nw.nVC; i++ {
				f(r.node, ch, i, nw.vcAt(r, ch, i))
			}
		}
	}
}

func TestVCClassMatchesWrapState(t *testing.T) {
	// At every cycle, a held network VC of class 1 (low indices) must hold
	// a message that has not yet crossed this dimension's wrap-around on
	// its way to the current node, and vice versa.
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 4, MsgLen: 6, Lambda: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := nw.cfg.VCs / 2
	for step := 0; step < 30000; step++ {
		nw.Step()
		if step%64 != 0 {
			continue
		}
		sweepVCs(nw, func(node topology.NodeID, d, idx int, v *vc) {
			if v.msg == nil {
				return
			}
			// The message reached `node` through this dimension-d input
			// VC; it has wrapped iff its source coordinate exceeds the
			// current coordinate... walking backwards: node is on the
			// message's path after at least one dim-d hop.
			c := nw.cube.Coord(node, d)
			s := nw.cube.Coord(v.msg.Src, d)
			wrapped := c <= s // it moved at least one hop in +d, so c==s means a full... cannot happen short of k hops; c<s means wrapped, c>s not.
			if c > s {
				wrapped = false
			} else if c < s {
				wrapped = true
			} else {
				// c == s is impossible for a dim-d input VC (a message
				// travels at most k-1 hops per dimension).
				t.Fatalf("message %d at node %d dim %d has source coordinate equal to current", v.msg.ID, node, d)
			}
			class0 := idx >= half
			if wrapped != class0 {
				t.Fatalf("VC class violation at node %d dim %d vc %d: wrapped=%v class0=%v (msg %d src %d dst %d)",
					node, d, idx, wrapped, class0, v.msg.ID, v.msg.Src, v.msg.Dst)
			}
		})
	}
}

func TestBufferOccupancyWithinBounds(t *testing.T) {
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, BufDepth: 3, MsgLen: 8, Lambda: 0.03, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 20000; step++ {
		nw.Step()
		if step%32 != 0 {
			continue
		}
		sweepVCs(nw, func(node topology.NodeID, d, idx int, v *vc) {
			if v.occ < 0 || v.occ > 3 {
				t.Fatalf("occupancy %d outside [0,3] at node %d", v.occ, node)
			}
			if v.msg == nil && (v.occ != 0 || v.recvd != 0 || v.sent != 0) {
				t.Fatalf("free VC with residual state at node %d: %+v", node, v)
			}
			if v.msg != nil {
				if v.sent > v.recvd || v.recvd-v.sent != v.occ {
					t.Fatalf("flit accounting broken at node %d: recvd=%d sent=%d occ=%d",
						node, v.recvd, v.sent, v.occ)
				}
				if v.recvd > int32(nw.cfg.MsgLen) {
					t.Fatalf("received %d flits of a %d-flit message", v.recvd, nw.cfg.MsgLen)
				}
			}
		})
	}
}

func TestWormholeVCHeldUntilTail(t *testing.T) {
	// Track one message's grip on a VC: once its header claims a network
	// VC, the VC must stay bound to it until exactly Lm flits passed.
	cube := topology.MustNew(4, 2)
	src := cube.FromCoords([]int{0, 0})
	dst := cube.FromCoords([]int{2, 0})
	nw, err := New(singleMessageConfig(4, 2, 6, src, dst))
	if err != nil {
		t.Fatal(err)
	}
	mid := cube.FromCoords([]int{1, 0})
	held := 0
	for i := 0; i < 200; i++ {
		nw.Step()
		v := nw.vcAt(&nw.routers[mid], 0, 0) // class-1 VC of dim-x input at mid node
		if v.msg != nil {
			held++
			if v.sent == 6 {
				t.Fatal("VC still bound after tail left")
			}
		}
	}
	// Header + 5 body flits, one per cycle: the VC is held ~Lm+1 cycles.
	if held < 6 || held > 8 {
		t.Errorf("mid-path VC held %d cycles, want ~7", held)
	}
}

func TestLinkArbitrationFairness(t *testing.T) {
	// Two continuous flows share one physical channel; round-robin must
	// give each about half the bandwidth. Flow A: (0,0)->(3,0); flow B:
	// (1,0)->(3,0)? Both use x channels; the channel from (2,0) to (3,0)
	// is shared. Saturate both sources.
	cube := topology.MustNew(4, 2)
	a := cube.FromCoords([]int{0, 0})
	bsrc := cube.FromCoords([]int{1, 0})
	dst := cube.FromCoords([]int{3, 0})
	fast := func(n topology.NodeID) traffic.Arrivals {
		if n == a || n == bsrc {
			b, _ := traffic.NewBernoulli(1)
			return b
		}
		return never{}
	}
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 4,
		Pattern: fixedDst{dst: dst}, ArrivalsFactory: fast, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var fromA, fromB int
	nw.OnDeliver(func(m *Message) {
		switch m.Src {
		case a:
			fromA++
		case bsrc:
			fromB++
		}
	})
	for i := 0; i < 20000; i++ {
		nw.Step()
	}
	if fromA == 0 || fromB == 0 {
		t.Fatalf("starvation: A=%d B=%d", fromA, fromB)
	}
	// Arbitration is per virtual channel, not per flow: B's router holds
	// two injection-VC headers against A's single through-VC header, so a
	// 2:1 share for B is the fair per-VC outcome. The property under test
	// is freedom from starvation.
	ratio := float64(fromA) / float64(fromB)
	if ratio < 0.25 || ratio > 4 {
		t.Errorf("near-starvation: A=%d B=%d (ratio %.2f)", fromA, fromB, ratio)
	}
	// The shared channel (2,0)->(3,0) is the bottleneck. Only the single
	// class-1 virtual channel is usable on this non-wrapping path and
	// each message pays an allocation gap, so the ceiling is below 1 but
	// the channel must still be busy most cycles.
	shared := cube.FromCoords([]int{2, 0})
	util := float64(nw.ChannelFlits(int(shared), 0)) / float64(nw.Cycle())
	if util < 0.6 {
		t.Errorf("shared channel utilisation %.2f, want > 0.6 under saturation", util)
	}
}

func TestInjectionChannelSharedBandwidth(t *testing.T) {
	// One node injecting at unbounded rate moves at most one flit per
	// cycle into the network across all its injection VCs.
	cube := topology.MustNew(4, 2)
	src := cube.FromCoords([]int{0, 0})
	fast := func(n topology.NodeID) traffic.Arrivals {
		if n == src {
			b, _ := traffic.NewBernoulli(1)
			return b
		}
		return never{}
	}
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 4, MsgLen: 4,
		Pattern: traffic.Uniform{Cube: cube}, ArrivalsFactory: fast, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		nw.Step()
	}
	// Delivered flit count cannot exceed the injection channel bandwidth.
	maxMsgs := float64(nw.Cycle()) / 4.0
	if got := float64(nw.Delivered()); got > maxMsgs*1.01 {
		t.Errorf("delivered %v messages, injection bandwidth caps at %v", got, maxMsgs)
	}
	// And it should be close to that cap (the node is saturated).
	if got := float64(nw.Delivered()); got < maxMsgs*0.85 {
		t.Errorf("delivered %v messages, want near the cap %v", got, maxMsgs)
	}
}

func TestHotNodeInputChannelIsBottleneck(t *testing.T) {
	// Under strong hot-spot traffic, the hot node's y input channel must
	// be the busiest channel in the network (the premise of the model's
	// saturation analysis).
	cube := topology.MustNew(8, 2)
	hot := cube.FromCoords([]int{4, 4})
	hs, _ := traffic.NewHotSpot(cube, hot, 0.6)
	nw, err := New(Config{
		K: 8, Dims: 2, VCs: 2, MsgLen: 16, Lambda: 8e-4,
		Pattern: hs, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		nw.Step()
	}
	// The channel into the hot node along y is the outgoing y channel of
	// its y-predecessor.
	prevY := cube.Prev(hot, 1)
	hotIn := nw.ChannelFlits(int(prevY), 1)
	var maxOther int64
	for n := 0; n < cube.Nodes(); n++ {
		for d := 0; d < 2; d++ {
			if topology.NodeID(n) == prevY && d == 1 {
				continue
			}
			if f := nw.ChannelFlits(n, d); f > maxOther {
				maxOther = f
			}
		}
	}
	if hotIn <= maxOther {
		t.Errorf("hot input channel %d flits, another channel has %d", hotIn, maxOther)
	}
}

func TestMultiplexingDegreeRisesWithLoad(t *testing.T) {
	run := func(lambda float64) float64 {
		nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: lambda, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 2000, MaxCycles: 100000, MinMeasured: 1500})
		if err != nil {
			t.Fatal(err)
		}
		return res.VCMultiplexing
	}
	low, high := run(0.001), run(0.03)
	if !(low >= 1 && high <= 2) {
		t.Fatalf("multiplexing outside [1,2]: %v %v", low, high)
	}
	if high <= low {
		t.Errorf("multiplexing did not rise with load: %v -> %v", low, high)
	}
}

func TestThroughputMatchesOfferedLoadBelowSaturation(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.004, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(RunOptions{WarmupCycles: 5000, MaxCycles: 200000, MinMeasured: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-0.004)/0.004 > 0.10 {
		t.Errorf("throughput %v, want ~lambda=0.004", res.Throughput)
	}
}

func TestDrainOnIdleNetwork(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 1e-9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Drain(1000) {
		t.Error("idle network failed to drain")
	}
}
