package sim

// Regression tests for Network reuse. Two historical bugs are pinned here:
//
//  1. Drain pushed every router's generation schedule past the horizon and
//     never restored it, so a Run after a Drain simulated a dead network
//     (zero injections) forever.
//  2. Run never reset the measurement accumulators and divided the
//     cumulative per-channel flit counters by the cumulative cycle count,
//     so a second Run on the same network reported statistics polluted by
//     the first run's samples and utilisation averaged over both runs.

import (
	"math"
	"math/rand"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// switchRate is an Arrivals whose rate can be swapped between runs; every
// node shares the pointed-to rate, so a test can re-run one network under a
// different offered load.
type switchRate struct{ lambda *float64 }

func (s switchRate) Next(rng *rand.Rand) int {
	gap := rng.ExpFloat64() / *s.lambda
	n := int(math.Ceil(gap))
	if n < 1 {
		n = 1
	}
	return n
}

func (s switchRate) Rate() float64 { return *s.lambda }

func reuseOpts() RunOptions {
	return RunOptions{WarmupCycles: 1000, MaxCycles: 60000, MinMeasured: 500}
}

func TestRunAfterDrainResumesInjection(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.01, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := nw.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Measured == 0 {
		t.Fatal("first run measured nothing")
	}
	if !nw.Drain(200000) {
		t.Fatalf("drain failed with backlog %d", nw.Backlog())
	}
	injAfterDrain := nw.Injected()

	res2, err := nw.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if nw.Injected() == injAfterDrain {
		t.Fatal("no messages generated after Drain: generation schedule not restored")
	}
	if res2.Measured == 0 {
		t.Error("second run measured nothing")
	}
	// The restored schedule must keep injecting at the configured rate, not
	// a one-off trickle: the post-drain run spans tens of thousands of
	// cycles at lambda=0.01 on 16 nodes.
	injected := nw.Injected() - injAfterDrain
	cycles := res2.Cycles - res1.Cycles // includes the drain tail, which injects nothing
	if float64(injected) < 0.3*0.01*float64(cycles)*16 {
		t.Errorf("only %d messages injected over %d post-run1 cycles: injection rate collapsed", injected, cycles)
	}
}

func TestRunAfterDrainFiresDeferredArrivals(t *testing.T) {
	// With a high arrival rate, every router's next generation time falls
	// inside the drain window; those arrivals must fire immediately after
	// the drain instead of being lost.
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 4, Lambda: 0.05, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		nw.Step()
	}
	if !nw.Drain(100000) {
		t.Fatalf("drain failed with backlog %d", nw.Backlog())
	}
	before := nw.Injected()
	nw.Step()
	if nw.Injected() == before {
		t.Fatal("deferred arrivals did not fire on the first post-drain cycle")
	}
}

func TestRunReuseMeasuresEachWindowSeparately(t *testing.T) {
	nw, err := New(Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.005, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := nw.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := nw.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Identical load, fresh window: the second run gathers a steady-state
	// sample of its own, about the size of the first one. The historical
	// bug accumulated across runs, roughly doubling Measured.
	if res2.Measured > int64(1.6*float64(res1.Measured)) {
		t.Errorf("second run measured %d messages vs %d in the first: accumulators not reset",
			res2.Measured, res1.Measured)
	}
	if res2.Measured == 0 {
		t.Fatal("second run measured nothing")
	}
	// Same offered load in both windows: latency and utilisation must come
	// out statistically close, not drift with run count.
	if rel := math.Abs(res2.MeanLatency-res1.MeanLatency) / res1.MeanLatency; rel > 0.25 {
		t.Errorf("mean latency drifted across identical runs: %v then %v", res1.MeanLatency, res2.MeanLatency)
	}
	if res2.ChannelUtilisation <= 0 || res2.MaxChannelUtilisation > 1 {
		t.Errorf("second-run utilisation out of range: mean %v max %v",
			res2.ChannelUtilisation, res2.MaxChannelUtilisation)
	}
}

func TestRunReuseReflectsChangedLoad(t *testing.T) {
	// Heavy run, then light run on the same network. The light run's
	// statistics must reflect only the light window; the historical bug
	// averaged both windows, dragging the second run's latency and
	// utilisation towards the heavy run's.
	lambda := 0.012
	cfg := Config{
		K: 4, Dims: 2, VCs: 2, MsgLen: 8, Seed: 24,
		ArrivalsFactory: func(topology.NodeID) traffic.Arrivals {
			return switchRate{lambda: &lambda}
		},
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := nw.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}
	lambda = 0.0005
	light, err := nw.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}

	// A fresh network run only at the light load gives the ground truth.
	lambdaFresh := 0.0005
	cfgFresh := cfg
	cfgFresh.ArrivalsFactory = func(topology.NodeID) traffic.Arrivals {
		return switchRate{lambda: &lambdaFresh}
	}
	fresh, err := New(cfgFresh)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(reuseOpts())
	if err != nil {
		t.Fatal(err)
	}

	if light.MeanLatency >= heavy.MeanLatency {
		t.Errorf("light-load rerun latency %v not below heavy-load latency %v",
			light.MeanLatency, heavy.MeanLatency)
	}
	if rel := math.Abs(light.MeanLatency-want.MeanLatency) / want.MeanLatency; rel > 0.20 {
		t.Errorf("reused-network light latency %v, fresh-network %v (rel err %.2f): window polluted",
			light.MeanLatency, want.MeanLatency, rel)
	}
	if light.ChannelUtilisation > 0.5*heavy.ChannelUtilisation {
		t.Errorf("light-run utilisation %v not well below heavy-run %v: utilisation not per-run",
			light.ChannelUtilisation, heavy.ChannelUtilisation)
	}
}
