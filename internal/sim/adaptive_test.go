package sim

// Tests of minimal adaptive routing with Duato-style escape channels — the
// alternative the paper's introduction weighs deterministic routing
// against (its refs [7, 22]).

import (
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

func TestAdaptiveConfigValidation(t *testing.T) {
	bad := Config{K: 4, Dims: 2, VCs: 2, MsgLen: 8, Lambda: 0.001, Routing: RoutingAdaptive}
	if err := bad.Validate(); err == nil {
		t.Error("adaptive with 2 VCs accepted (needs escape + adaptive)")
	}
	good := bad
	good.VCs = 3
	if err := good.Validate(); err != nil {
		t.Errorf("valid adaptive config rejected: %v", err)
	}
}

func TestAdaptiveSingleMessageMinimalPath(t *testing.T) {
	cube := topology.MustNew(5, 2)
	cases := []struct{ src, dst topology.NodeID }{
		{cube.FromCoords([]int{0, 0}), cube.FromCoords([]int{2, 3})},
		{cube.FromCoords([]int{4, 4}), cube.FromCoords([]int{1, 2})},
		{cube.FromCoords([]int{0, 2}), cube.FromCoords([]int{0, 4})},
	}
	for _, c := range cases {
		cfg := singleMessageConfig(5, 2, 6, c.src, c.dst)
		cfg.VCs = 4
		cfg.Routing = RoutingAdaptive
		msg := runSingle(t, cfg)
		hops := cube.Distance(c.src, c.dst)
		if int(msg.Hops) != hops {
			t.Errorf("src=%d dst=%d: hops %d, want minimal %d", c.src, c.dst, msg.Hops, hops)
		}
		if want := int64(hops + 6 + 1); msg.Latency() != want {
			t.Errorf("src=%d dst=%d: latency %d, want %d", c.src, c.dst, msg.Latency(), want)
		}
	}
}

func TestAdaptiveNoDeadlockUniformHighLoad(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 3, MsgLen: 8, Lambda: 0.06,
		Seed: 61, Routing: RoutingAdaptive, CheckInvariants: true,
	}, 25000)
}

func TestAdaptiveNoDeadlockHotSpot(t *testing.T) {
	cube := topology.MustNew(4, 2)
	hs, _ := traffic.NewHotSpot(cube, 9, 0.8)
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 3, MsgLen: 8, Lambda: 0.03,
		Pattern: hs, Seed: 62, Routing: RoutingAdaptive, CheckInvariants: true,
	}, 25000)
}

func TestAdaptiveNoDeadlockBidirectional(t *testing.T) {
	drainAfterLoad(t, Config{
		K: 5, Dims: 2, VCs: 4, MsgLen: 8, Lambda: 0.05,
		Seed: 63, Routing: RoutingAdaptive, Bidirectional: true, CheckInvariants: true,
	}, 25000)
}

func TestAdaptiveNoDeadlockWrapHeavy(t *testing.T) {
	cube := topology.MustNew(4, 2)
	drainAfterLoad(t, Config{
		K: 4, Dims: 2, VCs: 3, MsgLen: 8, Lambda: 0.06,
		Pattern: traffic.BitReversal{Cube: cube}, Seed: 64,
		Routing: RoutingAdaptive, CheckInvariants: true,
	}, 25000)
}

func TestAdaptiveComparableToDeterministicOnPermutation(t *testing.T) {
	// The observation motivating the paper's focus on deterministic
	// routing (its ref [22]): with the same virtual-channel budget,
	// deterministic routing performs comparably to minimal adaptive
	// routing on realistic permutation traffic — the adaptive design pays
	// for flexibility by reserving escape channels.
	cube := topology.MustNew(8, 2)
	run := func(routing Routing, lambda float64) float64 {
		nw, err := New(Config{
			K: 8, Dims: 2, VCs: 4, MsgLen: 16, Lambda: lambda,
			Pattern: traffic.Transpose{Cube: cube}, Seed: 65, Routing: routing,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 5000, MaxCycles: 250000, MinMeasured: 3000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency
	}
	for _, lambda := range []float64{4e-3, 6e-3} {
		det, ad := run(RoutingDimensionOrder, lambda), run(RoutingAdaptive, lambda)
		ratio := det / ad
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("lambda=%v: deterministic %v vs adaptive %v (ratio %.2f, want comparable)",
				lambda, det, ad, ratio)
		}
	}
}

func TestAdaptiveDoesNotHelpHotSpotFanIn(t *testing.T) {
	// The paper's motivating observation (ref [22]): the hot node's input
	// channels are the bottleneck regardless of routing flexibility, so
	// deterministic routing remains competitive under hot-spot traffic.
	cube := topology.MustNew(8, 2)
	run := func(routing Routing) float64 {
		hs, _ := traffic.NewHotSpot(cube, 36, 0.5)
		nw, err := New(Config{
			K: 8, Dims: 2, VCs: 4, MsgLen: 16, Lambda: 8e-4,
			Pattern: hs, Seed: 66, Routing: routing,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := nw.Run(RunOptions{WarmupCycles: 5000, MaxCycles: 250000, MinMeasured: 3000})
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanHot
	}
	det, ad := run(RoutingDimensionOrder), run(RoutingAdaptive)
	ratio := det / ad
	if ratio > 1.35 {
		t.Errorf("adaptive hot latency %v much better than deterministic %v (ratio %.2f): fan-in should dominate",
			ad, det, ratio)
	}
	if ratio < 0.6 {
		t.Errorf("adaptive hot latency %v much worse than deterministic %v", ad, det)
	}
}

func TestAdaptiveConservation(t *testing.T) {
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 4, MsgLen: 6, Lambda: 0.01,
		Seed: 67, Routing: RoutingAdaptive, CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	escaped := 0
	nw.OnDeliver(func(m *Message) {
		if m.Escaped {
			escaped++
		}
	})
	for i := 0; i < 30000; i++ {
		nw.Step()
	}
	if !nw.Drain(300000) {
		t.Fatalf("drain failed: backlog %d", nw.Backlog())
	}
	if nw.Injected() != nw.Delivered() {
		t.Errorf("injected %d != delivered %d", nw.Injected(), nw.Delivered())
	}
	if escaped == 0 {
		t.Log("note: no message used the escape network at this load")
	}
}

func TestAdaptiveEscapeUsedUnderPressure(t *testing.T) {
	// With a single adaptive VC and heavy load, some messages must fall
	// back to the escape network.
	cube := topology.MustNew(4, 2)
	hs, _ := traffic.NewHotSpot(cube, 9, 0.7)
	nw, err := New(Config{
		K: 4, Dims: 2, VCs: 3, MsgLen: 8, Lambda: 0.03,
		Pattern: hs, Seed: 68, Routing: RoutingAdaptive,
	})
	if err != nil {
		t.Fatal(err)
	}
	escaped := 0
	nw.OnDeliver(func(m *Message) {
		if m.Escaped {
			escaped++
		}
	})
	for i := 0; i < 40000; i++ {
		nw.Step()
	}
	if escaped == 0 {
		t.Error("no message ever used the escape network under heavy hot-spot load")
	}
}
