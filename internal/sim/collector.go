package sim

import (
	"strconv"
	"time"

	"kncube/internal/stats"
	"kncube/internal/telemetry"
)

// Collector receives the simulator's instrumentation events. A nil
// Config.Collector compiles to no-ops: every call site is guarded by a
// single nil check, so the uninstrumented hot path pays one predictable
// branch per event (the nil-vs-telemetry benchmark in collector_test.go
// tracks the cost). Implementations must be cheap — the per-message
// methods run inside the simulation loop — and must not retain RunStats'
// slices past the call.
type Collector interface {
	// MessageInjected is called once per generated message with the source
	// queue depth observed just after the message entered the queue.
	MessageInjected(queueDepth int)
	// MessageDelivered is called once per delivered message (warm-up
	// included) with the end-to-end latency, the cycles the message's
	// header spent blocked waiting for a downstream virtual channel, and
	// the source-queue waiting time, all in cycles.
	MessageDelivered(latency, blocked, sourceWait int64)
	// MessageDrained is called, in addition to MessageDelivered, for
	// messages delivered during a Drain call.
	MessageDrained()
	// VCOccupancy reports one multiplexing sample: the number of busy
	// virtual channels observed on a busy physical channel.
	VCOccupancy(busyVCs int)
	// RunEnd is called once at the end of every Run with the run's
	// aggregate statistics.
	RunEnd(RunStats)
}

// RunStats carries the end-of-run aggregates delivered to Collector.RunEnd.
// Slices and pointers are borrowed views into the network's state; copy
// anything retained past the call.
type RunStats struct {
	// Cycles is the total number of cycles simulated on this network,
	// RunCycles the cycles simulated by this Run call, and Wall the
	// call's wall-clock duration (so RunCycles/Wall is the engine's
	// cycles/sec throughput).
	Cycles, RunCycles int64
	Wall              time.Duration
	// Injected, Delivered and Measured are the network's message counters.
	Injected, Delivered, Measured int64
	// ChannelFlits is the per-channel flit count, indexed node*Outputs+ch.
	ChannelFlits []int64
	Outputs      int
	// Latency is the 1-cycle-resolution latency histogram over measured
	// messages.
	Latency *stats.Histogram
}

// metric names exported by the telemetry-backed collector; DESIGN.md §7
// holds the full inventory and the khs_<layer>_<name>_<unit> convention.
const (
	metricInjected    = "khs_sim_messages_injected_total"
	metricDelivered   = "khs_sim_messages_delivered_total"
	metricDrained     = "khs_sim_messages_drained_total"
	metricBlocking    = "khs_sim_blocking_cycles"
	metricQueueDepth  = "khs_sim_source_queue_depth"
	metricSourceWait  = "khs_sim_source_wait_cycles"
	metricLatency     = "khs_sim_latency_cycles"
	metricVCBusy      = "khs_sim_vc_busy_per_channel"
	metricCycles      = "khs_sim_cycles_total"
	metricCyclesPerS  = "khs_sim_cycles_per_second"
	metricChanFlits   = "khs_sim_channel_flits_total"
	metricChanUtil    = "khs_sim_channel_utilisation_ratio"
	metricChanUtilMax = "khs_sim_channel_utilisation_max_ratio"
)

// telemetryCollector records the simulator's events into a telemetry
// registry. Handles for the hot-path metrics are resolved once at
// construction; the per-channel series are only materialised at RunEnd.
type telemetryCollector struct {
	reg        *telemetry.Registry
	injected   *telemetry.Counter
	delivered  *telemetry.Counter
	drained    *telemetry.Counter
	blocking   *telemetry.Histogram
	queueDepth *telemetry.Histogram
	sourceWait *telemetry.Histogram
	vcBusy     *telemetry.Histogram
	cycles     *telemetry.Counter
	lastCycles int64
}

// NewTelemetryCollector returns a Collector recording into reg under the
// khs_sim_* metric names. One collector instruments one network; share the
// registry, not the collector, to aggregate several networks into one
// exposition.
func NewTelemetryCollector(reg *telemetry.Registry) Collector {
	cycleBuckets := telemetry.ExponentialBuckets(1, 2, 20) // 1 .. ~5e5 cycles
	return &telemetryCollector{
		reg:       reg,
		injected:  reg.Counter(metricInjected, "messages generated into source queues", nil),
		delivered: reg.Counter(metricDelivered, "messages fully consumed at their destination", nil),
		drained:   reg.Counter(metricDrained, "messages delivered during a Drain call", nil),
		blocking: reg.Histogram(metricBlocking,
			"per-message cycles the header spent blocked waiting for a downstream virtual channel",
			nil, cycleBuckets),
		queueDepth: reg.Histogram(metricQueueDepth,
			"source queue depth sampled at each message generation",
			nil, telemetry.ExponentialBuckets(1, 2, 14)),
		sourceWait: reg.Histogram(metricSourceWait,
			"per-message cycles spent waiting in the source queue",
			nil, cycleBuckets),
		vcBusy: reg.Histogram(metricVCBusy,
			"busy virtual channels per busy physical channel (sampled)",
			nil, telemetry.LinearBuckets(1, 1, 8)),
		cycles: reg.Counter(metricCycles, "simulated network cycles", nil),
	}
}

func (t *telemetryCollector) MessageInjected(queueDepth int) {
	t.injected.Inc()
	t.queueDepth.Observe(float64(queueDepth))
}

func (t *telemetryCollector) MessageDelivered(latency, blocked, sourceWait int64) {
	t.delivered.Inc()
	t.blocking.Observe(float64(blocked))
	t.sourceWait.Observe(float64(sourceWait))
}

func (t *telemetryCollector) MessageDrained() { t.drained.Inc() }

func (t *telemetryCollector) VCOccupancy(busyVCs int) {
	t.vcBusy.Observe(float64(busyVCs))
}

func (t *telemetryCollector) RunEnd(rs RunStats) {
	t.cycles.Add(rs.Cycles - t.lastCycles)
	t.lastCycles = rs.Cycles
	if secs := rs.Wall.Seconds(); secs > 0 {
		t.reg.Gauge(metricCyclesPerS, "simulation throughput of the last Run call", nil).
			Set(float64(rs.RunCycles) / secs)
	}
	// The measured latency distribution is folded in post-hoc from the
	// engine's exact 1-cycle histogram (each stats bucket is recorded at
	// its upper edge), so the hot path never pays a second histogram.
	if rs.Latency != nil {
		lat := t.reg.Histogram(metricLatency,
			"end-to-end latency of measured messages (folded from the engine histogram at bucket upper edges)",
			nil, telemetry.ExponentialBuckets(1, 2, 20))
		rs.Latency.ForEachBucket(func(upper float64, count int64) {
			lat.ObserveN(upper, count)
		})
	}
	var maxUtil float64
	for node := 0; node < len(rs.ChannelFlits)/rs.Outputs; node++ {
		for ch := 0; ch < rs.Outputs; ch++ {
			flits := rs.ChannelFlits[node*rs.Outputs+ch]
			labels := telemetry.Labels{
				"node":    strconv.Itoa(node),
				"channel": strconv.Itoa(ch),
			}
			c := t.reg.Counter(metricChanFlits, "flits moved per output channel", labels)
			c.Add(flits - c.Value())
			if rs.Cycles > 0 {
				util := float64(flits) / float64(rs.Cycles)
				t.reg.Gauge(metricChanUtil,
					"fraction of cycles each channel spent moving a flit", labels).Set(util)
				if util > maxUtil {
					maxUtil = util
				}
			}
		}
	}
	if rs.Cycles > 0 {
		t.reg.Gauge(metricChanUtilMax, "busiest channel's flit rate", nil).Set(maxUtil)
	}
}
