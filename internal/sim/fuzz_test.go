package sim

// Randomised configuration sweep: across arbitrary legal configurations the
// simulator must conserve messages (everything injected eventually drains)
// and respect its structural invariants. This is the broad net behind the
// targeted deadlock tests.

import (
	"math/rand"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

func TestRandomConfigurationsConserveMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		k := 2 + rng.Intn(5)     // 2..6
		dims := 1 + rng.Intn(3)  // 1..3
		vcs := 2 + rng.Intn(3)   // 2..4
		depth := 1 + rng.Intn(3) // 1..3
		lm := 1 + rng.Intn(12)   // 1..12
		bi := rng.Intn(2) == 1
		eject := rng.Intn(2) == 1
		lambda := 0.001 + rng.Float64()*0.02

		cube := topology.MustNew(k, dims)
		var pattern traffic.Pattern
		switch rng.Intn(3) {
		case 0:
			pattern = traffic.Uniform{Cube: cube}
		case 1:
			hs, err := traffic.NewHotSpot(cube, topology.NodeID(rng.Intn(cube.Nodes())), rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			pattern = hs
		default:
			pattern = traffic.BitReversal{Cube: cube}
		}

		cfg := Config{
			K: k, Dims: dims, VCs: vcs, BufDepth: depth, MsgLen: lm,
			Lambda: lambda, Pattern: pattern, Seed: rng.Int63(),
			Bidirectional: bi, EjectionContention: eject,
			CheckInvariants: true,
		}
		nw, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v (cfg %+v)", trial, err, cfg)
		}
		for i := 0; i < 6000; i++ {
			nw.Step()
			if i%500 == 0 {
				checkSchedulingInvariants(t, nw)
			}
		}
		checkSchedulingInvariants(t, nw)
		if !nw.Drain(400000) {
			t.Fatalf("trial %d: %d messages stuck (k=%d dims=%d vcs=%d depth=%d lm=%d bi=%v eject=%v lambda=%v)",
				trial, nw.Backlog(), k, dims, vcs, depth, lm, bi, eject, lambda)
		}
		if nw.Injected() != nw.Delivered() {
			t.Fatalf("trial %d: injected %d != delivered %d", trial, nw.Injected(), nw.Delivered())
		}
	}
}

func TestRandomConfigurationsDeliverCorrectPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		k := 3 + rng.Intn(4)
		dims := 1 + rng.Intn(2)
		bi := rng.Intn(2) == 1
		cube := topology.MustNew(k, dims)
		nw, err := New(Config{
			K: k, Dims: dims, VCs: 2, MsgLen: 4, Lambda: 0.01,
			Seed: rng.Int63(), Bidirectional: bi, RecordPaths: true,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		nw.OnDeliver(func(m *Message) {
			var want []topology.NodeID
			if bi {
				want = cube.BiPath(m.Src, m.Dst)
			} else {
				want = cube.Path(m.Src, m.Dst)
			}
			if len(m.Path) != len(want) {
				bad++
				return
			}
			for i := range want {
				if m.Path[i] != want[i] {
					bad++
					return
				}
			}
		})
		for i := 0; i < 8000; i++ {
			nw.Step()
		}
		if nw.Delivered() == 0 {
			t.Fatalf("trial %d: nothing delivered", trial)
		}
		if bad > 0 {
			t.Fatalf("trial %d: %d messages took the wrong path (bi=%v)", trial, bad, bi)
		}
	}
}

// contains16 reports membership of x in the (short) sorted list s.
func contains16(s []int16, x int16) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// checkSchedulingInvariants cross-checks the event-driven hot loop's
// incrementally-maintained scheduling state against a ground-truth scan of
// every virtual channel. The load-bearing property is reachability: every
// held VC must sit on exactly the list its wormhole state says the
// corresponding phase will consult — a buffered eligible flit that is on no
// list would silently never move again. Only networks advanced by the
// production Step satisfy these (the scan-based reference step leaves the
// lists empty by design).
func checkSchedulingInvariants(t *testing.T, nw *Network) {
	t.Helper()
	for ri := range nw.routers {
		r := &nw.routers[ri]
		for _, list := range [][]int16{r.pending, r.ejectQ} {
			for i := 1; i < len(list); i++ {
				if list[i-1] >= list[i] {
					t.Fatalf("node %d: scheduling list not strictly ascending: %v", r.node, list)
				}
			}
		}
		candTotal := 0
		for ch := range r.out {
			cand := r.out[ch].cand
			candTotal += len(cand)
			for i, idx := range cand {
				if i > 0 && cand[i-1] >= idx {
					t.Fatalf("node %d ch %d: candidate list not strictly ascending: %v", r.node, ch, cand)
				}
				in := &r.in[idx]
				if in.msg == nil || int(in.outPort) != ch {
					t.Fatalf("node %d ch %d: candidate %d holds no message routed here (outPort %d)",
						r.node, ch, idx, in.outPort)
				}
			}
		}
		if candTotal != r.candLive {
			t.Fatalf("node %d: candLive %d but %d candidates listed", r.node, r.candLive, candTotal)
		}
		busy, injLive := 0, 0
		busyIn := make([]int32, nw.outputs)
		for idx := range r.in {
			in := &r.in[idx]
			if in.msg == nil {
				if contains16(r.pending, int16(idx)) || contains16(r.ejectQ, int16(idx)) {
					t.Fatalf("node %d: free VC %d on a scheduling list", r.node, idx)
				}
				continue
			}
			busy++
			p := idx / nw.nVC
			if p < nw.injPort {
				busyIn[p]++
			} else if in.recvd < nw.msgLen {
				injLive++
			}
			// Reachability: the phase that must next serve this VC sees it.
			switch {
			case in.outPort == noPort:
				if !contains16(r.pending, int16(idx)) {
					t.Fatalf("node %d: unallocated header in VC %d missing from pending list", r.node, idx)
				}
			case int(in.outPort) == nw.injPort:
				if !contains16(r.ejectQ, int16(idx)) {
					t.Fatalf("node %d: ejecting VC %d missing from eject queue", r.node, idx)
				}
			default:
				if !contains16(r.out[in.outPort].cand, int16(idx)) {
					t.Fatalf("node %d: VC %d routed to channel %d unreachable by its arbitration scan",
						r.node, idx, in.outPort)
				}
			}
		}
		if busy != r.busyVCs {
			t.Fatalf("node %d: busyVCs %d but %d VCs held", r.node, r.busyVCs, busy)
		}
		if injLive != r.injLive {
			t.Fatalf("node %d: injLive %d but %d injection VCs receiving", r.node, r.injLive, injLive)
		}
		for p := 0; p < nw.outputs; p++ {
			if busyIn[p] != r.busyIn[p] {
				t.Fatalf("node %d port %d: busyIn %d but %d held VCs", r.node, p, r.busyIn[p], busyIn[p])
			}
		}
		if (busy > 0 || r.queueLen() > 0) && nw.step.inited && !nw.step.isActive[ri] {
			t.Fatalf("node %d holds work but is not on the active list", r.node)
		}
	}
}

// FuzzSchedulingInvariants drives random configurations through the
// production Step and checks the candidate-list/scheduling invariants as
// the network evolves, then requires a full drain (no stranded flits).
func FuzzSchedulingInvariants(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint8(2), uint8(8), false, false, uint8(0))
	f.Add(int64(99), uint8(5), uint8(1), uint8(4), uint8(3), true, true, uint8(1))
	f.Add(int64(7), uint8(3), uint8(3), uint8(3), uint8(12), true, false, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, k, dims, vcs, lm uint8, bi, adaptive bool, patSel uint8) {
		cfgK := 2 + int(k)%5
		cfgDims := 1 + int(dims)%3
		cfgVCs := 2 + int(vcs)%3
		cfgLen := 1 + int(lm)%12
		routing := RoutingDimensionOrder
		if adaptive {
			routing = RoutingAdaptive
			if cfgVCs < 3 {
				cfgVCs = 3
			}
		}
		cube := topology.MustNew(cfgK, cfgDims)
		var pattern traffic.Pattern
		switch patSel % 3 {
		case 0:
			pattern = traffic.Uniform{Cube: cube}
		case 1:
			hotIdx := int((seed >> 3) % int64(cube.Nodes()))
			if hotIdx < 0 {
				hotIdx += cube.Nodes()
			}
			hs, err := traffic.NewHotSpot(cube, topology.NodeID(hotIdx), 0.3)
			if err != nil {
				t.Fatal(err)
			}
			pattern = hs
		default:
			pattern = traffic.Transpose{Cube: cube}
		}
		nw, err := New(Config{
			K: cfgK, Dims: cfgDims, VCs: cfgVCs, BufDepth: 1 + int(lm)%3,
			MsgLen: cfgLen, Lambda: 0.01, Pattern: pattern, Seed: seed,
			Bidirectional: bi, Routing: routing,
			EjectionContention: patSel%2 == 1, CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2500; i++ {
			nw.Step()
			if i%64 == 0 {
				checkSchedulingInvariants(t, nw)
			}
		}
		checkSchedulingInvariants(t, nw)
		if !nw.Drain(200000) {
			t.Fatalf("%d messages stranded", nw.Backlog())
		}
	})
}
