package sim

// Randomised configuration sweep: across arbitrary legal configurations the
// simulator must conserve messages (everything injected eventually drains)
// and respect its structural invariants. This is the broad net behind the
// targeted deadlock tests.

import (
	"math/rand"
	"testing"

	"kncube/internal/topology"
	"kncube/internal/traffic"
)

func TestRandomConfigurationsConserveMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		k := 2 + rng.Intn(5)     // 2..6
		dims := 1 + rng.Intn(3)  // 1..3
		vcs := 2 + rng.Intn(3)   // 2..4
		depth := 1 + rng.Intn(3) // 1..3
		lm := 1 + rng.Intn(12)   // 1..12
		bi := rng.Intn(2) == 1
		eject := rng.Intn(2) == 1
		lambda := 0.001 + rng.Float64()*0.02

		cube := topology.MustNew(k, dims)
		var pattern traffic.Pattern
		switch rng.Intn(3) {
		case 0:
			pattern = traffic.Uniform{Cube: cube}
		case 1:
			hs, err := traffic.NewHotSpot(cube, topology.NodeID(rng.Intn(cube.Nodes())), rng.Float64())
			if err != nil {
				t.Fatal(err)
			}
			pattern = hs
		default:
			pattern = traffic.BitReversal{Cube: cube}
		}

		cfg := Config{
			K: k, Dims: dims, VCs: vcs, BufDepth: depth, MsgLen: lm,
			Lambda: lambda, Pattern: pattern, Seed: rng.Int63(),
			Bidirectional: bi, EjectionContention: eject,
			CheckInvariants: true,
		}
		nw, err := New(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v (cfg %+v)", trial, err, cfg)
		}
		for i := 0; i < 6000; i++ {
			nw.Step()
		}
		if !nw.Drain(400000) {
			t.Fatalf("trial %d: %d messages stuck (k=%d dims=%d vcs=%d depth=%d lm=%d bi=%v eject=%v lambda=%v)",
				trial, nw.Backlog(), k, dims, vcs, depth, lm, bi, eject, lambda)
		}
		if nw.Injected() != nw.Delivered() {
			t.Fatalf("trial %d: injected %d != delivered %d", trial, nw.Injected(), nw.Delivered())
		}
	}
}

func TestRandomConfigurationsDeliverCorrectPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		k := 3 + rng.Intn(4)
		dims := 1 + rng.Intn(2)
		bi := rng.Intn(2) == 1
		cube := topology.MustNew(k, dims)
		nw, err := New(Config{
			K: k, Dims: dims, VCs: 2, MsgLen: 4, Lambda: 0.01,
			Seed: rng.Int63(), Bidirectional: bi, RecordPaths: true,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		nw.OnDeliver(func(m *Message) {
			var want []topology.NodeID
			if bi {
				want = cube.BiPath(m.Src, m.Dst)
			} else {
				want = cube.Path(m.Src, m.Dst)
			}
			if len(m.Path) != len(want) {
				bad++
				return
			}
			for i := range want {
				if m.Path[i] != want[i] {
					bad++
					return
				}
			}
		})
		for i := 0; i < 8000; i++ {
			nw.Step()
		}
		if nw.Delivered() == 0 {
			t.Fatalf("trial %d: nothing delivered", trial)
		}
		if bad > 0 {
			t.Fatalf("trial %d: %d messages took the wrong path (bi=%v)", trial, bad, bi)
		}
	}
}
