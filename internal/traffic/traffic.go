// Package traffic generates the workloads the simulator offers to the
// network: temporal arrival processes (Poisson, Bernoulli, and the bursty
// MMPP process the paper names as future work) and spatial destination
// patterns (the Pfister-Norton hot-spot model used throughout the paper,
// uniform, transpose and bit-reversal permutations).
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"kncube/internal/topology"
)

// Arrivals decides, cycle by cycle, whether a node injects a new message.
type Arrivals interface {
	// Next returns the number of cycles until the next message generation,
	// strictly positive.
	Next(rng *rand.Rand) int
	// Rate returns the long-run mean generation rate in messages/cycle.
	Rate() float64
}

// Pattern chooses the destination for a newly generated message.
type Pattern interface {
	// Destination returns the destination node for a message generated at
	// src. Implementations must never return src itself.
	Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID
	// String describes the pattern.
	String() string
}

// --- Arrival processes -----------------------------------------------------

// Poisson generates exponentially distributed inter-arrival times with the
// given mean rate (assumption (i) of the paper), discretised to whole cycles
// by rounding up so that a generation never happens "now".
type Poisson struct{ Lambda float64 }

// NewPoisson returns a Poisson arrival process with rate lambda
// messages/cycle. lambda must be positive.
func NewPoisson(lambda float64) (Poisson, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Poisson{}, fmt.Errorf("traffic: Poisson rate %v, want > 0", lambda)
	}
	return Poisson{Lambda: lambda}, nil
}

// Next implements Arrivals.
func (p Poisson) Next(rng *rand.Rand) int {
	gap := rng.ExpFloat64() / p.Lambda
	n := int(math.Ceil(gap))
	if n < 1 {
		n = 1
	}
	return n
}

// Rate implements Arrivals.
func (p Poisson) Rate() float64 { return p.Lambda }

// Bernoulli generates a message each cycle with probability P (geometric
// inter-arrival times) — the standard discrete-time stand-in for Poisson
// traffic in cycle-accurate simulators.
type Bernoulli struct{ P float64 }

// NewBernoulli returns a Bernoulli arrival process with per-cycle
// probability p in (0, 1].
func NewBernoulli(p float64) (Bernoulli, error) {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return Bernoulli{}, fmt.Errorf("traffic: Bernoulli probability %v, want (0,1]", p)
	}
	return Bernoulli{P: p}, nil
}

// Next implements Arrivals.
func (b Bernoulli) Next(rng *rand.Rand) int {
	// Geometric with success probability P, support {1, 2, ...}.
	n := 1
	for rng.Float64() >= b.P {
		n++
	}
	return n
}

// Rate implements Arrivals.
func (b Bernoulli) Rate() float64 { return b.P }

// MMPP is a two-state Markov-modulated Poisson process producing bursty
// traffic: the process alternates between a high-rate and a low-rate Poisson
// state, switching state after exponentially distributed sojourns. This is
// the "bursty, non-Poissonian" extension the paper's conclusion targets.
type MMPP struct {
	RateHigh, RateLow float64 // per-state generation rates (messages/cycle)
	MeanHigh, MeanLow float64 // mean sojourn times in cycles
	state             int     // 0 = high, 1 = low
	stateLeft         float64 // cycles remaining in the current state
}

// NewMMPP returns a two-state MMPP. All four parameters must be positive.
func NewMMPP(rateHigh, rateLow, meanHigh, meanLow float64) (*MMPP, error) {
	for _, v := range []float64{rateHigh, rateLow, meanHigh, meanLow} {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("traffic: MMPP parameter %v, want > 0", v)
		}
	}
	return &MMPP{RateHigh: rateHigh, RateLow: rateLow, MeanHigh: meanHigh, MeanLow: meanLow}, nil
}

// Next implements Arrivals.
func (m *MMPP) Next(rng *rand.Rand) int {
	total := 0.0
	for {
		if m.stateLeft <= 0 {
			if m.state == 0 {
				m.state = 1
				m.stateLeft = rng.ExpFloat64() * m.MeanLow
			} else {
				m.state = 0
				m.stateLeft = rng.ExpFloat64() * m.MeanHigh
			}
			continue
		}
		rate := m.RateHigh
		if m.state == 1 {
			rate = m.RateLow
		}
		gap := rng.ExpFloat64() / rate
		if gap <= m.stateLeft {
			m.stateLeft -= gap
			total += gap
			n := int(math.Ceil(total))
			if n < 1 {
				n = 1
			}
			return n
		}
		total += m.stateLeft
		m.stateLeft = 0
	}
}

// Rate implements Arrivals: the time-weighted average of the two state
// rates.
func (m *MMPP) Rate() float64 {
	return (m.RateHigh*m.MeanHigh + m.RateLow*m.MeanLow) / (m.MeanHigh + m.MeanLow)
}

// Burstiness returns the ratio of the high-state rate to the mean rate, a
// rough burstiness indicator (1 = Poisson-like).
func (m *MMPP) Burstiness() float64 { return m.RateHigh / m.Rate() }

// --- Spatial patterns --------------------------------------------------------

// Uniform directs each message to a node drawn uniformly from all nodes
// except the source.
type Uniform struct{ Cube *topology.Cube }

// Destination implements Pattern.
func (u Uniform) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	n := u.Cube.Nodes()
	d := topology.NodeID(rng.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// String implements Pattern.
func (u Uniform) String() string { return "uniform" }

// HotSpot implements the Pfister-Norton hot-spot model (assumption (ii) of
// the paper): with probability H the destination is the hot node, otherwise
// it is uniform. ExcludeHot additionally removes the hot node from the
// uniform component (a sensitivity knob; the paper's convention keeps it).
type HotSpot struct {
	Cube       *topology.Cube
	Hot        topology.NodeID
	H          float64
	ExcludeHot bool
}

// NewHotSpot validates and returns a hot-spot pattern.
func NewHotSpot(cube *topology.Cube, hot topology.NodeID, h float64) (HotSpot, error) {
	if !cube.Valid(hot) {
		return HotSpot{}, fmt.Errorf("traffic: hot node %d outside %v", hot, cube)
	}
	if h < 0 || h > 1 || math.IsNaN(h) {
		return HotSpot{}, fmt.Errorf("traffic: hot-spot fraction %v, want [0,1]", h)
	}
	return HotSpot{Cube: cube, Hot: hot, H: h}, nil
}

// Destination implements Pattern. Messages generated at the hot node itself
// are always uniform (a node does not send to itself).
func (hs HotSpot) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if src != hs.Hot && rng.Float64() < hs.H {
		return hs.Hot
	}
	n := hs.Cube.Nodes()
	if hs.ExcludeHot && src != hs.Hot {
		// Uniform over nodes that are neither src nor the hot node.
		d := topology.NodeID(rng.Intn(n - 2))
		lo, hi := src, hs.Hot
		if lo > hi {
			lo, hi = hi, lo
		}
		if d >= lo {
			d++
		}
		if d >= hi {
			d++
		}
		return d
	}
	d := topology.NodeID(rng.Intn(n - 1))
	if d >= src {
		d++
	}
	return d
}

// IsHot reports whether dst is the hot node.
func (hs HotSpot) IsHot(dst topology.NodeID) bool { return dst == hs.Hot }

// String implements Pattern.
func (hs HotSpot) String() string {
	return fmt.Sprintf("hotspot(h=%.2f, node=%d)", hs.H, hs.Hot)
}

// Transpose sends from node (a0, a1, ..., a_{n-1}) to (a_{n-1}, ..., a1, a0)
// — the matrix-transpose permutation. Nodes whose transpose is themselves
// fall back to uniform so that Destination never returns src.
type Transpose struct{ Cube *topology.Cube }

// Destination implements Pattern.
func (tp Transpose) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	coords := tp.Cube.Coords(src)
	for i, j := 0, len(coords)-1; i < j; i, j = i+1, j-1 {
		coords[i], coords[j] = coords[j], coords[i]
	}
	dst := tp.Cube.FromCoords(coords)
	if dst == src {
		return Uniform{Cube: tp.Cube}.Destination(src, rng)
	}
	return dst
}

// String implements Pattern.
func (tp Transpose) String() string { return "transpose" }

// BitReversal sends each message to the node whose index is the bit-reversal
// of the source index (within ceil(log2 N) bits, reduced mod N). Self-routed
// nodes fall back to uniform.
type BitReversal struct{ Cube *topology.Cube }

// Destination implements Pattern.
func (br BitReversal) Destination(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	n := br.Cube.Nodes()
	bits := 0
	for 1<<bits < n {
		bits++
	}
	v := int(src)
	r := 0
	for i := 0; i < bits; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	dst := topology.NodeID(r % n)
	if dst == src {
		return Uniform{Cube: br.Cube}.Destination(src, rng)
	}
	return dst
}

// String implements Pattern.
func (br BitReversal) String() string { return "bit-reversal" }
