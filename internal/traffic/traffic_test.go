package traffic

import (
	"math"
	"math/rand"
	"testing"

	"kncube/internal/topology"

	"kncube/internal/stats"
)

func TestNewPoissonValidation(t *testing.T) {
	for _, l := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(l); err == nil {
			t.Errorf("NewPoisson(%v) accepted", l)
		}
	}
	if _, err := NewPoisson(0.001); err != nil {
		t.Errorf("NewPoisson(0.001): %v", err)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, _ := NewPoisson(0.01)
	var total int
	const msgs = 20000
	for i := 0; i < msgs; i++ {
		gap := p.Next(rng)
		if gap < 1 {
			t.Fatalf("non-positive gap %d", gap)
		}
		total += gap
	}
	// Discretisation (ceil) adds ~0.5 cycles to the mean gap of 100.
	got := float64(msgs) / float64(total)
	if math.Abs(got-0.01)/0.01 > 0.05 {
		t.Errorf("empirical rate %v, want ~0.01", got)
	}
	if !stats.ApproxEqual(p.Rate(), 0.01, 0, 0) {
		t.Errorf("Rate() = %v", p.Rate())
	}
}

func TestBernoulliValidation(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.1, math.NaN()} {
		if _, err := NewBernoulli(p); err == nil {
			t.Errorf("NewBernoulli(%v) accepted", p)
		}
	}
	if _, err := NewBernoulli(1); err != nil {
		t.Error("NewBernoulli(1) rejected")
	}
}

func TestBernoulliGeometricGaps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, _ := NewBernoulli(0.25)
	var total int
	const msgs = 20000
	for i := 0; i < msgs; i++ {
		total += b.Next(rng)
	}
	mean := float64(total) / msgs
	if math.Abs(mean-4) > 0.15 {
		t.Errorf("mean gap %v, want ~4", mean)
	}
}

func TestBernoulliRateOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, _ := NewBernoulli(1)
	for i := 0; i < 100; i++ {
		if b.Next(rng) != 1 {
			t.Fatal("p=1 must generate every cycle")
		}
	}
}

func TestMMPPValidation(t *testing.T) {
	if _, err := NewMMPP(0.1, 0.01, 100, 100); err != nil {
		t.Errorf("valid MMPP rejected: %v", err)
	}
	bad := [][4]float64{
		{0, 0.01, 100, 100}, {0.1, 0, 100, 100},
		{0.1, 0.01, 0, 100}, {0.1, 0.01, 100, -1},
		{math.NaN(), 0.01, 100, 100},
	}
	for _, b := range bad {
		if _, err := NewMMPP(b[0], b[1], b[2], b[3]); err == nil {
			t.Errorf("NewMMPP(%v) accepted", b)
		}
	}
}

func TestMMPPMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _ := NewMMPP(0.05, 0.001, 500, 500)
	want := m.Rate()
	if math.Abs(want-(0.05+0.001)/2) > 1e-12 {
		t.Fatalf("analytic Rate() = %v", want)
	}
	var total int
	const msgs = 30000
	for i := 0; i < msgs; i++ {
		gap := m.Next(rng)
		if gap < 1 {
			t.Fatalf("non-positive gap %d", gap)
		}
		total += gap
	}
	got := float64(msgs) / float64(total)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("empirical rate %v, want ~%v", got, want)
	}
}

func TestMMPPBurstiness(t *testing.T) {
	m, _ := NewMMPP(0.05, 0.001, 500, 500)
	if b := m.Burstiness(); b <= 1 {
		t.Errorf("burstiness %v, want > 1", b)
	}
	// Bursty process: variance of gaps far exceeds exponential's.
	rng := rand.New(rand.NewSource(5))
	var gaps []float64
	for i := 0; i < 20000; i++ {
		gaps = append(gaps, float64(m.Next(rng)))
	}
	mean, ss := 0.0, 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	cv2 := ss / float64(len(gaps)) / (mean * mean)
	if cv2 < 1.5 {
		t.Errorf("squared CV of MMPP gaps = %v, want visibly > 1 (bursty)", cv2)
	}
}

func TestUniformNeverSelf(t *testing.T) {
	cube := topology.MustNew(4, 2)
	u := Uniform{Cube: cube}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		src := topology.NodeID(rng.Intn(cube.Nodes()))
		if u.Destination(src, rng) == src {
			t.Fatal("uniform returned source")
		}
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	cube := topology.MustNew(4, 2)
	u := Uniform{Cube: cube}
	rng := rand.New(rand.NewSource(7))
	src := topology.NodeID(5)
	seen := map[topology.NodeID]int{}
	const draws = 32000
	for i := 0; i < draws; i++ {
		seen[u.Destination(src, rng)]++
	}
	if len(seen) != cube.Nodes()-1 {
		t.Fatalf("covered %d destinations, want %d", len(seen), cube.Nodes()-1)
	}
	want := float64(draws) / float64(cube.Nodes()-1)
	for d, c := range seen {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("destination %d drawn %d times, want ~%.0f", d, c, want)
		}
	}
}

func TestNewHotSpotValidation(t *testing.T) {
	cube := topology.MustNew(4, 2)
	if _, err := NewHotSpot(cube, 99, 0.2); err == nil {
		t.Error("invalid hot node accepted")
	}
	if _, err := NewHotSpot(cube, 3, -0.1); err == nil {
		t.Error("negative h accepted")
	}
	if _, err := NewHotSpot(cube, 3, 1.5); err == nil {
		t.Error("h > 1 accepted")
	}
	if _, err := NewHotSpot(cube, 3, math.NaN()); err == nil {
		t.Error("NaN h accepted")
	}
}

func TestHotSpotFraction(t *testing.T) {
	cube := topology.MustNew(8, 2)
	hs, err := NewHotSpot(cube, 17, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	src := topology.NodeID(3)
	hot := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if hs.Destination(src, rng) == hs.Hot {
			hot++
		}
	}
	// Expect h plus the uniform share 1/(N-1) of (1-h).
	want := 0.4 + (1-0.4)/float64(cube.Nodes()-1)
	got := float64(hot) / draws
	if math.Abs(got-want) > 0.01 {
		t.Errorf("hot fraction %v, want ~%v", got, want)
	}
}

func TestHotSpotExcludeHot(t *testing.T) {
	cube := topology.MustNew(8, 2)
	hs, _ := NewHotSpot(cube, 17, 0.4)
	hs.ExcludeHot = true
	rng := rand.New(rand.NewSource(9))
	src := topology.NodeID(3)
	hot, self := 0, 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		d := hs.Destination(src, rng)
		if d == hs.Hot {
			hot++
		}
		if d == src {
			self++
		}
	}
	if self != 0 {
		t.Fatalf("%d self destinations", self)
	}
	got := float64(hot) / draws
	if math.Abs(got-0.4) > 0.01 {
		t.Errorf("hot fraction %v, want ~0.4 exactly (uniform excludes hot)", got)
	}
}

func TestHotSpotSourceIsHotNode(t *testing.T) {
	cube := topology.MustNew(4, 2)
	hs, _ := NewHotSpot(cube, 5, 0.9)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		if d := hs.Destination(hs.Hot, rng); d == hs.Hot {
			t.Fatal("hot node sent a message to itself")
		}
	}
}

func TestHotSpotHZeroIsUniform(t *testing.T) {
	cube := topology.MustNew(6, 2)
	hs, _ := NewHotSpot(cube, 7, 0)
	rng := rand.New(rand.NewSource(11))
	src := topology.NodeID(2)
	hot := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		if hs.Destination(src, rng) == hs.Hot {
			hot++
		}
	}
	want := float64(draws) / float64(cube.Nodes()-1)
	if math.Abs(float64(hot)-want) > 6*math.Sqrt(want) {
		t.Errorf("h=0 hot draws %d, want ~%.0f", hot, want)
	}
}

func TestHotSpotIsHotAndString(t *testing.T) {
	cube := topology.MustNew(4, 2)
	hs, _ := NewHotSpot(cube, 5, 0.2)
	if !hs.IsHot(5) || hs.IsHot(4) {
		t.Error("IsHot wrong")
	}
	if hs.String() == "" || (Uniform{}).String() == "" {
		t.Error("String empty")
	}
}

func TestTransposePermutation(t *testing.T) {
	cube := topology.MustNew(4, 2)
	tp := Transpose{Cube: cube}
	rng := rand.New(rand.NewSource(12))
	src := cube.FromCoords([]int{1, 3})
	want := cube.FromCoords([]int{3, 1})
	for i := 0; i < 10; i++ {
		if got := tp.Destination(src, rng); got != want {
			t.Fatalf("transpose(%d) = %d, want %d", src, got, want)
		}
	}
}

func TestTransposeDiagonalFallsBack(t *testing.T) {
	cube := topology.MustNew(4, 2)
	tp := Transpose{Cube: cube}
	rng := rand.New(rand.NewSource(13))
	src := cube.FromCoords([]int{2, 2})
	for i := 0; i < 100; i++ {
		if tp.Destination(src, rng) == src {
			t.Fatal("diagonal node routed to itself")
		}
	}
}

func TestBitReversalInvolution(t *testing.T) {
	cube := topology.MustNew(4, 2) // 16 nodes, 4 bits: exact reversal
	br := BitReversal{Cube: cube}
	rng := rand.New(rand.NewSource(14))
	for src := topology.NodeID(0); int(src) < cube.Nodes(); src++ {
		d := br.Destination(src, rng)
		if d == src {
			t.Fatalf("bit-reversal returned source %d", src)
		}
		// For palindromic indices the fallback is uniform, skip the
		// involution check there.
		rev := func(v int) int {
			r := 0
			for i := 0; i < 4; i++ {
				r = (r << 1) | (v & 1)
				v >>= 1
			}
			return r
		}
		if rev(int(src)) != int(src) {
			if got := rev(int(d)); got != int(src) {
				t.Fatalf("reversal not involutive: %d -> %d -> %d", src, d, got)
			}
		}
	}
}

func TestPatternsNeverSelf(t *testing.T) {
	cube := topology.MustNew(4, 3)
	rng := rand.New(rand.NewSource(15))
	hs, _ := NewHotSpot(cube, 11, 0.3)
	pats := []Pattern{
		Uniform{Cube: cube}, hs,
		Transpose{Cube: cube}, BitReversal{Cube: cube},
	}
	for _, p := range pats {
		for i := 0; i < 3000; i++ {
			src := topology.NodeID(rng.Intn(cube.Nodes()))
			if p.Destination(src, rng) == src {
				t.Fatalf("%s returned source", p)
			}
		}
	}
}
