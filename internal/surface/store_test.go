package surface_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"kncube/internal/core"
	"kncube/internal/surface"
	"kncube/internal/telemetry"
)

func storeCounter(reg *telemetry.Registry, name string, labels telemetry.Labels) int64 {
	return reg.Counter(name, "", labels).Value()
}

// TestStoreLookupOutcomes: hits, misses, and each fallback reason are
// routed and counted correctly.
func TestStoreLookupOutcomes(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := surface.NewStore(reg)
	s := smallSurface(t)
	e := st.Add(s, "")
	if e.ID == "" {
		t.Fatalf("Add assigned no id")
	}

	d := s.Def
	spec := core.Spec{K: d.K, Dims: d.Dims, V: d.V, Lm: d.Lm,
		H: 0.15, Lambda: 0.5 * (d.Lambdas[2] + d.Lambdas[3])}

	// Hit.
	lk, hit, err := st.Lookup(d.Model, spec, core.Options{}, surface.LookupOptions{})
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if hit == nil || hit.ID != e.ID {
		t.Fatalf("Lookup did not attribute the answer to the stored surface")
	}
	if !(lk.Latency > 0) {
		t.Fatalf("Lookup latency %g, want > 0", lk.Latency)
	}
	if got := storeCounter(reg, "khs_surface_lookups_total", telemetry.Labels{"outcome": "hit"}); got != 1 {
		t.Errorf("hit counter = %d, want 1", got)
	}

	// Miss: different shape key (other model).
	if _, _, err := st.Lookup("uniform", spec, core.Options{}, surface.LookupOptions{}); !errors.Is(err, surface.ErrNoSurface) {
		t.Errorf("other-model lookup: want ErrNoSurface, got %v", err)
	}
	// Miss: same shape, different result-affecting options.
	if _, _, err := st.Lookup(d.Model, spec, core.Options{NoVCSplit: true}, surface.LookupOptions{}); !errors.Is(err, surface.ErrNoSurface) {
		t.Errorf("other-options lookup: want ErrNoSurface, got %v", err)
	}

	// Fallback: out of grid range.
	out := spec
	out.Lambda = d.Lambdas[0] / 4
	if _, _, err := st.Lookup(d.Model, out, core.Options{}, surface.LookupOptions{}); !errors.Is(err, surface.ErrOutOfRange) {
		t.Errorf("below-axis lookup: want ErrOutOfRange, got %v", err)
	}
	if got := storeCounter(reg, "khs_surface_fallbacks_total", telemetry.Labels{"reason": "range"}); got != 1 {
		t.Errorf("range fallback counter = %d, want 1", got)
	}

	// Fallback: near the saturation frontier (smallSurface's axis
	// extends past saturation, so the axis top is behind a frontier).
	sat := spec
	sat.H = 0.3
	sat.Lambda = d.Lambdas[len(d.Lambdas)-1]
	if _, _, err := st.Lookup(d.Model, sat, core.Options{}, surface.LookupOptions{}); !errors.Is(err, surface.ErrNearSaturation) {
		t.Errorf("near-frontier lookup: want ErrNearSaturation, got %v", err)
	}
	if got := storeCounter(reg, "khs_surface_fallbacks_total", telemetry.Labels{"reason": "saturation"}); got != 1 {
		t.Errorf("saturation fallback counter = %d, want 1", got)
	}

	// Fallback: estimate bound. An absurdly small bound rejects any
	// interpolated answer with nonzero curvature.
	if _, _, err := st.Lookup(d.Model, spec, core.Options{}, surface.LookupOptions{MaxErrEstimate: 1e-18}); !errors.Is(err, surface.ErrEstimateTooHigh) {
		t.Errorf("tiny error bound: want ErrEstimateTooHigh, got %v", err)
	}
	if got := storeCounter(reg, "khs_surface_fallbacks_total", telemetry.Labels{"reason": "estimate"}); got != 1 {
		t.Errorf("estimate fallback counter = %d, want 1", got)
	}
}

// TestStoreListGetKeys: inventory accessors reflect adds in order.
func TestStoreListGetKeys(t *testing.T) {
	st := surface.NewStore(nil)
	a := st.Add(smallSurface(t), "/tmp/a")
	b := st.Add(smallSurface(t), "")
	if st.Get(a.ID) != a || st.Get(b.ID) != b {
		t.Fatalf("Get does not return stored entries")
	}
	if st.Get("surface-999999") != nil {
		t.Fatalf("Get invented an entry")
	}
	list := st.List()
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("List = %v, want [%s %s]", list, a.ID, b.ID)
	}
	keys := st.Keys()
	if len(keys) != 1 {
		t.Fatalf("Keys = %v, want one shared shape key", keys)
	}
}

// TestStoreObserveBuild: build accounting lands on the right states.
func TestStoreObserveBuild(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := surface.NewStore(reg)
	st.ObserveBuild(time.Second, nil)
	st.ObserveBuild(time.Second, errors.New("boom"))
	if got := storeCounter(reg, "khs_surface_builds_total", telemetry.Labels{"state": "ok"}); got != 1 {
		t.Errorf("ok builds = %d, want 1", got)
	}
	if got := storeCounter(reg, "khs_surface_builds_total", telemetry.Labels{"state": "error"}); got != 1 {
		t.Errorf("error builds = %d, want 1", got)
	}
}

// TestStoreLoadDir: surfaces persisted with WriteFile load back;
// corrupt files fail the whole load; a missing directory is empty.
func TestStoreLoadDir(t *testing.T) {
	dir := t.TempDir()
	s := smallSurface(t)
	if _, err := surface.WriteFile(dir, s); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	st := surface.NewStore(nil)
	entries, err := st.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Path == "" {
		t.Fatalf("LoadDir entries = %v, want one pathed entry", entries)
	}
	d := s.Def
	spec := core.Spec{K: d.K, Dims: d.Dims, V: d.V, Lm: d.Lm,
		H: 0.15, Lambda: 0.5 * (d.Lambdas[2] + d.Lambdas[3])}
	if _, _, err := st.Lookup(d.Model, spec, core.Options{}, surface.LookupOptions{}); err != nil {
		t.Fatalf("Lookup after LoadDir: %v", err)
	}

	if _, err := surface.NewStore(nil).LoadDir(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("missing dir should be empty, got %v", err)
	}

	// A corrupt file in the directory fails the load loudly.
	if err := os.WriteFile(filepath.Join(dir, "junk"+surface.FileExt), []byte("not a surface"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := surface.NewStore(nil).LoadDir(dir); err == nil {
		t.Fatalf("LoadDir accepted a corrupt file")
	}
}
