package shard

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("hotspot-2d|%d|2|2|32|0|0|0|false", i+2)
	}
	return keys
}

// TestSingleOwnerRings: nil, zero, and peerless rings own everything.
func TestSingleOwnerRings(t *testing.T) {
	var nilRing *Ring
	for name, r := range map[string]*Ring{
		"nil":      nilRing,
		"zero":     {},
		"peerless": New("a", nil, 0),
	} {
		for _, key := range testKeys(10) {
			if !r.Owns(key) {
				t.Errorf("%s ring should own %q", name, key)
			}
			if got, want := r.Owner(key), r.Self(); got != want {
				t.Errorf("%s ring: Owner(%q) = %q, want self %q", name, key, got, want)
			}
		}
	}
}

// TestOwnershipIsDeterministicAndAgreed: every replica's ring assigns
// every key to the same owner, and exactly one replica owns each key.
func TestOwnershipIsDeterministicAndAgreed(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	rings := map[string]*Ring{}
	for _, n := range nodes {
		rings[n] = New(n, nodes, 0)
	}
	for _, key := range testKeys(200) {
		owner := rings["a"].Owner(key)
		owners := 0
		for _, n := range nodes {
			if got := rings[n].Owner(key); got != owner {
				t.Fatalf("replica %s assigns %q to %q, replica a to %q", n, key, got, owner)
			}
			if rings[n].Owns(key) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("key %q owned by %d replicas, want exactly 1", key, owners)
		}
	}
}

// TestDistributionRoughlyBalanced: no node of a 3-node ring owns a
// wildly disproportionate share of a synthetic keyspace.
func TestDistributionRoughlyBalanced(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r := New("a", nodes, 0)
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of the keyspace (counts %v) — virtual nodes not spreading", n, 100*share, counts)
		}
	}
}

// TestRemovalOnlyRemapsTheRemovedNode: dropping one node moves only the
// keys that node owned; every other assignment is untouched. This is
// the property that makes the ring consistent rather than modular
// (hash(key) % n would reshuffle nearly everything).
func TestRemovalOnlyRemapsTheRemovedNode(t *testing.T) {
	before := New("a", []string{"a", "b", "c"}, 0)
	after := New("a", []string{"a", "b"}, 0)
	moved, kept := 0, 0
	for _, key := range testKeys(2000) {
		was, is := before.Owner(key), after.Owner(key)
		if was == "c" {
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %q → %q although its owner did not leave", key, was, is)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split moved=%d kept=%d — test keyspace too small", moved, kept)
	}
}

// TestMembershipNormalization: duplicates and self-in-peers collapse,
// and Nodes reports the sorted membership.
func TestMembershipNormalization(t *testing.T) {
	r := New("b", []string{"b", "a", "a", "", "c"}, 4)
	got := r.Nodes()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}
