// Package shard assigns surface shape keys to replicas with a
// consistent-hash ring, so a fleet of khs-serve instances can each
// build and hold a stable subset of the surface inventory instead of
// every replica holding everything. Each node is hashed onto the ring
// at many virtual points; a key belongs to the first node hash at or
// after the key's own hash (wrapping). Adding or removing one node
// then only remaps the keys adjacent to that node's points — roughly
// 1/n of the keyspace — while every other assignment is untouched.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-node ring point count New uses when
// given zero. 128 points keep the per-node share of a random keyspace
// within a few percent of fair for small fleets.
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring. The zero value (or a nil
// *Ring) is a single-owner ring: it owns every key, the degenerate
// single-replica deployment.
type Ring struct {
	self   string
	nodes  []string
	hashes []uint64 // sorted ring points
	owner  []string // owner[i] is the node at hashes[i]
}

// New builds a ring over self plus peers, with vnodes virtual points
// per node (DefaultVirtualNodes when <= 0). Duplicate names collapse
// to one node; self may appear in peers. An empty peer set returns a
// single-owner ring.
func New(self string, peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	set := map[string]bool{self: true}
	for _, p := range peers {
		if p != "" {
			set[p] = true
		}
	}
	nodes := make([]string, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	r := &Ring{self: self, nodes: nodes}
	if len(nodes) < 2 {
		return r
	}
	r.hashes = make([]uint64, 0, len(nodes)*vnodes)
	r.owner = make([]string, 0, len(nodes)*vnodes)
	type point struct {
		h    uint64
		node string
	}
	points := make([]point, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			points = append(points, point{hashKey(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		// A full 64-bit collision between virtual points is vanishingly
		// rare; break it by name so every replica builds the same ring.
		return points[i].node < points[j].node
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.node)
	}
	return r
}

// Self returns this replica's node name ("" on the zero ring).
func (r *Ring) Self() string {
	if r == nil {
		return ""
	}
	return r.self
}

// Nodes returns the ring membership, sorted. A single-owner ring
// reports just itself.
func (r *Ring) Nodes() []string {
	if r == nil || len(r.nodes) == 0 {
		return []string{""}
	}
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Owner returns the node owning key.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.hashes) == 0 {
		return r.Self()
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the highest point
	}
	return r.owner[i]
}

// Owns reports whether this replica owns key.
func (r *Ring) Owns(key string) bool {
	if r == nil || len(r.hashes) == 0 {
		return true
	}
	return r.Owner(key) == r.self
}

// hashKey is FNV-64a with a splitmix64-style finalizer. Raw FNV of
// short, similar strings (node names, shape keys) leaves the high bits
// poorly mixed, which skews ring shares badly; the finalizer's
// avalanche fixes the spread without needing a crypto hash.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
