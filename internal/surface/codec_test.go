package surface_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kncube/internal/surface"
)

var (
	smallOnce sync.Once
	smallSfc  *surface.Surface
	smallErr  error
)

// smallSurface builds (once) a cheap surface whose h=0.3 row saturates
// mid-axis, for codec and store tests. The K=8, Lm=16 shape saturates
// around λ≈3.5e-3 at h=0.3 and later for the cooler rows.
func smallSurface(t *testing.T) *surface.Surface {
	t.Helper()
	smallOnce.Do(func() {
		lams := make([]float64, 14)
		for i := range lams {
			lams[i] = 2.5e-4 + 3.65e-4*float64(i) // up to ≈5e-3
		}
		d := surface.Def{
			Model: "hotspot-2d", K: 8, Dims: 2, V: 2, Lm: 16,
			Hs:      []float64{0.1, 0.2, 0.3},
			Lambdas: lams,
		}
		smallSfc, smallErr = surface.Build(d, surface.BuildOptions{})
	})
	if smallErr != nil {
		t.Fatalf("Build: %v", smallErr)
	}
	total, saturated := smallSfc.Points()
	if saturated == 0 || saturated == total {
		t.Fatalf("smallSurface frontier assumption broken: %d/%d saturated", saturated, total)
	}
	return smallSfc
}

// TestCodecRoundTrip: encode → decode reproduces the definition, every
// grid bit-for-bit, the mask, and identical lookup behaviour.
func TestCodecRoundTrip(t *testing.T) {
	s := smallSurface(t)
	data, err := surface.Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := surface.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Def.Key() != s.Def.Key() {
		t.Fatalf("Def key changed: %q vs %q", got.Def.Key(), s.Def.Key())
	}
	if len(got.Latency) != len(s.Latency) {
		t.Fatalf("grid size changed: %d vs %d", len(got.Latency), len(s.Latency))
	}
	for i := range s.Latency {
		if got.Saturated[i] != s.Saturated[i] {
			t.Fatalf("mask cell %d changed", i)
		}
		if math.Float64bits(got.Latency[i]) != math.Float64bits(s.Latency[i]) {
			t.Fatalf("latency cell %d changed: %x vs %x", i,
				math.Float64bits(got.Latency[i]), math.Float64bits(s.Latency[i]))
		}
	}
	// The decoded surface must answer queries exactly like the original
	// (its derived interpolation state is rebuilt on decode).
	h, lambda := 0.15, 0.5*(s.Def.Lambdas[3]+s.Def.Lambdas[4])
	a, errA := s.Eval(h, lambda)
	b, errB := got.Eval(h, lambda)
	if errA != nil || errB != nil {
		t.Fatalf("Eval: %v / %v", errA, errB)
	}
	if math.Float64bits(a.Latency) != math.Float64bits(b.Latency) {
		t.Fatalf("decoded surface answers differently: %.17g vs %.17g", a.Latency, b.Latency)
	}
}

// TestDecodeCorruption: each corruption class reports its structured
// sentinel — never a panic, never a silently-wrong surface.
func TestDecodeCorruption(t *testing.T) {
	s := smallSurface(t)
	data, err := surface.Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    error
	}{
		{"empty", func(b []byte) []byte { return nil }, surface.ErrTruncated},
		{"preamble only", func(b []byte) []byte { return b[:8] }, surface.ErrTruncated},
		{"truncated mid-header", func(b []byte) []byte { return b[:14] }, surface.ErrTruncated},
		{"truncated mid-grid", func(b []byte) []byte { return b[:len(b)/2] }, surface.ErrTruncated},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-3] }, surface.ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, surface.ErrBadMagic},
		{"version from the future", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], surface.Version+1)
			return b
		}, surface.ErrVersionMismatch},
		{"flipped grid bit", func(b []byte) []byte { b[len(b)-100] ^= 0x40; return b }, surface.ErrChecksum},
		// A header flip that keeps the JSON parseable (a digit change)
		// is caught by the checksum; one that breaks the JSON is caught
		// structurally. Both are covered.
		{"flipped header digit", func(b []byte) []byte {
			i := bytes.Index(b, []byte(`"k":8`))
			if i < 0 {
				panic("test header lost its k field")
			}
			b[i+4] = '9'
			return b
		}, surface.ErrChecksum},
		{"broken header json", func(b []byte) []byte { b[16] ^= 0x01; return b }, surface.ErrBadHeader},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAA) }, surface.ErrBadHeader},
		{"huge header length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
			return b
		}, surface.ErrBadHeader},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), data...)
		_, err := surface.Decode(tc.corrupt(buf))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestDecodeChecksumCannotMaskStructure: re-checksummed corruption (an
// attacker or a buggy writer fixing up the trailer) still fails the
// structural checks instead of producing garbage lookups.
func TestDecodeChecksumCannotMaskStructure(t *testing.T) {
	s := smallSurface(t)
	data, err := surface.Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Write NaN into an unmasked grid cell, then recompute the trailer
	// so only the structural check can catch it.
	buf := append([]byte(nil), data...)
	hdrLen := binary.LittleEndian.Uint32(buf[8:12])
	cell0 := 12 + int(hdrLen)
	binary.LittleEndian.PutUint64(buf[cell0:], math.Float64bits(math.NaN()))
	reseal(buf)
	if _, err := surface.Decode(buf); !errors.Is(err, surface.ErrBadHeader) {
		t.Errorf("NaN outside the mask: got %v, want ErrBadHeader", err)
	}
	// A mask byte that is neither 0 nor 1 is likewise structural.
	buf = append([]byte(nil), data...)
	buf[len(buf)-9] = 7 // last mask byte
	reseal(buf)
	if _, err := surface.Decode(buf); !errors.Is(err, surface.ErrBadHeader) {
		t.Errorf("mask byte 7: got %v, want ErrBadHeader", err)
	}
}

// reseal recomputes the trailing FNV-64a checksum after a deliberate
// payload edit.
func reseal(buf []byte) {
	sum := fnvSum(buf[:len(buf)-8])
	binary.LittleEndian.PutUint64(buf[len(buf)-8:], sum)
}

func fnvSum(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	var h uint64 = offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// TestWriteFileReadFile: the file helpers round-trip through disk,
// name files by content, and dedup identical surfaces.
func TestWriteFileReadFile(t *testing.T) {
	s := smallSurface(t)
	dir := t.TempDir()
	path, err := surface.WriteFile(dir, s)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if filepath.Ext(path) != surface.FileExt {
		t.Fatalf("WriteFile path %q does not end in %s", path, surface.FileExt)
	}
	again, err := surface.WriteFile(dir, s)
	if err != nil {
		t.Fatalf("second WriteFile: %v", err)
	}
	if again != path {
		t.Fatalf("identical surface wrote to a different file: %q vs %q", again, path)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d files in dir after two writes of one surface, want 1", len(ents))
	}
	got, err := surface.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Def.Key() != s.Def.Key() {
		t.Fatalf("ReadFile key %q, want %q", got.Def.Key(), s.Def.Key())
	}
}
