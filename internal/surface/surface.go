// Package surface precomputes model latency surfaces — solved (λ, h)
// grids per topology shape — and serves interpolated lookups from them
// in microseconds where an exact solve costs milliseconds. A Surface
// holds the full latency decomposition (latency, class-conditional
// means, source wait, multiplexing degree) on an ascending λ × h grid
// together with a saturation-frontier mask; the interpolator (interp.go)
// answers off-grid queries with a monotone cubic in λ and a linear blend
// in h, reports an error estimate, and refuses — so callers can fall
// back to the exact solver — near the saturation frontier or outside
// the grid. Surfaces round-trip through a compact checksummed binary
// format (codec.go) and are served out of a keyed Store (store.go);
// the shard subpackage spreads shape ownership across replicas.
package surface

import (
	"errors"
	"fmt"

	"kncube/internal/core"
	"kncube/internal/fixpoint"
)

// Def identifies a surface: the model variant, the topology shape, the
// solver options that change the answer, and the grid axes. Two
// surfaces with equal Defs answer the same queries; Lambda and H are
// the grid axes rather than fixed parameters. The fixed-point knobs
// (tolerance, damping, acceleration) are deliberately not part of the
// identity — converged results agree to within the solve tolerance
// regardless of how the iteration got there.
type Def struct {
	// Model is the registered solver name ("hotspot-2d", ...).
	Model string `json:"model"`
	// K, Dims, V, Lm fix the topology shape (see core.Spec).
	K    int `json:"k"`
	Dims int `json:"dims"`
	V    int `json:"v"`
	Lm   int `json:"lm"`
	// Entrance, Blocking, Variance and NoVCSplit are the result-affecting
	// solver options (core.Options ablation knobs).
	Entrance  core.EntrancePolicy `json:"entrance,omitempty"`
	Blocking  core.BlockingForm   `json:"blocking,omitempty"`
	Variance  core.VarianceForm   `json:"variance,omitempty"`
	NoVCSplit bool                `json:"no_vc_split,omitempty"`
	// Hs is the ascending hot-spot-fraction axis, each in [0, 1).
	Hs []float64 `json:"hs"`
	// Lambdas is the ascending offered-load axis, each > 0.
	Lambdas []float64 `json:"lambdas"`
}

// Validate reports the first structural problem with the definition.
// Solver-side parameter validation (radix range, V floor, ...) happens
// when Build prepares the first grid row.
func (d Def) Validate() error {
	if d.Model == "" {
		return fmt.Errorf("surface: Def.Model is empty")
	}
	if len(d.Hs) == 0 {
		return fmt.Errorf("surface: Def.Hs is empty")
	}
	if len(d.Lambdas) < 2 {
		return fmt.Errorf("surface: Def.Lambdas has %d points, want >= 2 (interpolation needs an interval)", len(d.Lambdas))
	}
	for i, h := range d.Hs {
		if h < 0 || h >= 1 {
			return fmt.Errorf("surface: Def.Hs[%d] = %v, want [0, 1)", i, h)
		}
		if i > 0 && !(h > d.Hs[i-1]) {
			return fmt.Errorf("surface: Def.Hs must be strictly ascending (index %d: %v after %v)", i, h, d.Hs[i-1])
		}
	}
	for i, lam := range d.Lambdas {
		if !(lam > 0) {
			return fmt.Errorf("surface: Def.Lambdas[%d] = %v, want > 0", i, lam)
		}
		if i > 0 && !(lam > d.Lambdas[i-1]) {
			return fmt.Errorf("surface: Def.Lambdas must be strictly ascending (index %d: %v after %v)", i, lam, d.Lambdas[i-1])
		}
	}
	return nil
}

// Key is the shape key a surface answers for: every Def field that
// changes the answer except the grid axes. Surfaces with the same Key
// cover (possibly different regions of) the same query space, and the
// shard ring assigns ownership by this key.
func (d Def) Key() string {
	return ShapeKey(d.Model, core.Spec{K: d.K, Dims: d.Dims, V: d.V, Lm: d.Lm}, d.options())
}

// ShapeKey builds the surface shape key for a model name, a spec (H and
// Lambda ignored — they are query coordinates, not shape), and the
// result-affecting options (fixed-point knobs ignored). Spec fields are
// keyed verbatim, matching the serve layer's solve-cache convention: a
// variant's zero-value aliases (e.g. Dims 0 vs 2 on the 2-D models) are
// distinct keys, so queries must spell the shape exactly as the surface
// build did.
func ShapeKey(model string, s core.Spec, o core.Options) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%d|%t",
		model, s.K, s.Dims, s.V, s.Lm, o.Entrance, o.Blocking, o.Variance, o.NoVCSplit)
}

// options rebuilds the core.Options the surface was (or will be) solved
// with, minus iteration knobs.
func (d Def) options() core.Options {
	return core.Options{Entrance: d.Entrance, Blocking: d.Blocking, Variance: d.Variance, NoVCSplit: d.NoVCSplit}
}

// Surface is a solved latency surface: the Def plus row-major
// [len(Hs)][len(Lambdas)] grids of the full latency decomposition and
// the saturation mask. Saturated cells hold NaN in the value grids.
// A Surface is immutable once built (or decoded) and safe for
// concurrent lookups.
type Surface struct {
	Def Def

	// Latency, Regular, Hot, SourceWait, VBar mirror the fields of
	// core.SolveResult, flattened row-major: cell (hi, li) is at
	// index hi*len(Def.Lambdas)+li.
	Latency, Regular, Hot, SourceWait, VBar []float64

	// Saturated marks grid cells beyond the saturation frontier. Within
	// each h row the mask is a suffix: the builder stops the λ sweep at
	// the first saturated load (latency is monotone in λ).
	Saturated []bool

	// satIdx[hi] is the first saturated λ index of row hi (len(Lambdas)
	// when the row never saturates). derivs holds the precomputed
	// monotone-cubic knot derivatives per field and row. Both are
	// derived from the grids on build/decode, not serialized.
	satIdx []int
	derivs [numFields][]float64
}

// grid field indices into Surface.derivs.
const (
	fieldLatency = iota
	fieldRegular
	fieldHot
	fieldSourceWait
	fieldVBar
	numFields
)

func (s *Surface) grid(f int) []float64 {
	switch f {
	case fieldLatency:
		return s.Latency
	case fieldRegular:
		return s.Regular
	case fieldHot:
		return s.Hot
	case fieldSourceWait:
		return s.SourceWait
	default:
		return s.VBar
	}
}

// Points returns the grid size and how many of its cells are beyond the
// saturation frontier.
func (s *Surface) Points() (total, saturated int) {
	total = len(s.Saturated)
	for _, sat := range s.Saturated {
		if sat {
			saturated++
		}
	}
	return total, saturated
}

// BuildOptions configure Build.
type BuildOptions struct {
	// FixPoint sets the iteration knobs (tolerance, budget, damping,
	// acceleration, context) for the build solves. Zero values keep the
	// solver defaults.
	FixPoint fixpoint.Options
	// Progress, when set, is called after every grid point with the
	// number of points finished so far and the grid total.
	Progress func(done, total int)
}

// Build solves the definition's full (λ, h) grid and returns the
// surface. Each h row is one prepared solver swept along the ascending
// λ axis with warm starts; the sweep stops at the row's saturation
// frontier and the remaining cells are masked without being solved.
// Failures other than saturation (an invalid shape, a cancelled
// context) abort the build.
func Build(d Def, bo BuildOptions) (*Surface, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nl, nh := len(d.Lambdas), len(d.Hs)
	s := &Surface{
		Def:        d,
		Latency:    make([]float64, nh*nl),
		Regular:    make([]float64, nh*nl),
		Hot:        make([]float64, nh*nl),
		SourceWait: make([]float64, nh*nl),
		VBar:       make([]float64, nh*nl),
		Saturated:  make([]bool, nh*nl),
	}
	opts := d.options()
	opts.FixPoint = bo.FixPoint
	done := 0
	for hi, h := range d.Hs {
		shape := core.Spec{K: d.K, Dims: d.Dims, V: d.V, Lm: d.Lm, H: h}
		items, err := core.SolveLambdas(d.Model, shape, d.Lambdas, core.GridOptions{
			BatchOptions:     core.BatchOptions{Options: opts, WarmStart: true},
			StopAtSaturation: true,
		})
		if err != nil {
			return nil, fmt.Errorf("surface: row h=%v: %w", h, err)
		}
		for li, it := range items {
			cell := hi*nl + li
			switch {
			case it.Err == nil:
				s.Latency[cell] = it.Result.Latency
				s.Regular[cell] = it.Result.Regular
				s.Hot[cell] = it.Result.Hot
				s.SourceWait[cell] = it.Result.SourceWait
				s.VBar[cell] = it.Result.VBar
			case errors.Is(it.Err, core.ErrSaturated):
				s.Saturated[cell] = true
				s.Latency[cell] = nan
				s.Regular[cell] = nan
				s.Hot[cell] = nan
				s.SourceWait[cell] = nan
				s.VBar[cell] = nan
			default:
				return nil, fmt.Errorf("surface: point h=%v λ=%v: %w", h, d.Lambdas[li], it.Err)
			}
			done++
			if bo.Progress != nil {
				bo.Progress(done, nh*nl)
			}
		}
	}
	s.prepare()
	return s, nil
}
