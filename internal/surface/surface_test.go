package surface_test

import (
	"errors"
	"math"
	"testing"

	"kncube/internal/core"
	"kncube/internal/surface"
)

// evalRelBound is the enforced relative-error bound for interpolated
// lookups against exact solves at off-grid query points, on the test
// grids below. DESIGN.md §12 documents the bound's provenance.
const evalRelBound = 1e-2

// nearSatLambda mirrors the solver benchmarks: an offered load close to
// (but below) saturation at the variant's test shape.
func nearSatLambda(name string) float64 {
	switch name {
	case "uniform":
		return 1.5e-3
	case "hypercube":
		return 1.05e-3
	case "bidirectional-2d":
		return 4.0e-4
	default: // hotspot-2d, ndim
		return 2.2e-4
	}
}

// lambdaAxis is a 41-point linear axis from 5% of top to top — dense
// enough that the monotone cubic stays within the enforced bound on the
// knee of the latency curve.
func lambdaAxis(top float64) []float64 {
	lams := make([]float64, 41)
	for i := range lams {
		lams[i] = top * (0.05 + 0.95*float64(i)/float64(len(lams)-1))
	}
	return lams
}

// hAxis is a 17-point axis over [0.1, 0.3] — dense enough (spacing
// 0.0125) that the linear h blend stays within the enforced bound even
// for the hypercube's strongly h-curved hot-class latency.
func hAxis() []float64 {
	hs := make([]float64, 17)
	for i := range hs {
		hs[i] = 0.1 + 0.0125*float64(i)
	}
	return hs
}

// testDef is each variant's surface definition at its benchmark shape.
// The uniform baseline models no hot-spot class, so its h axis is the
// single point 0.
func testDef(name string) surface.Def {
	d := surface.Def{
		Model: name, K: 16, Dims: 2, V: 2, Lm: 32,
		Hs:      hAxis(),
		Lambdas: lambdaAxis(nearSatLambda(name)),
	}
	switch name {
	case "uniform":
		d.Hs = []float64{0}
	case "hypercube":
		d.K, d.Dims = 2, 8
	}
	return d
}

func buildTestSurface(t *testing.T, name string) *surface.Surface {
	t.Helper()
	s, err := surface.Build(testDef(name), surface.BuildOptions{})
	if err != nil {
		t.Fatalf("Build(%q): %v", name, err)
	}
	return s
}

// queryHs picks off-grid and on-knot h query points for a variant.
func queryHs(name string) []float64 {
	if name == "uniform" {
		return []float64{0}
	}
	return []float64{0.2, 0.17, 0.22, 0.28}
}

// TestEvalMatchesExactSolveAllVariants is the subsystem's accuracy
// pin: for every registered variant, interpolated lookups at off-grid
// (h, λ) points agree with the exact solver on the whole latency
// decomposition to within evalRelBound.
func TestEvalMatchesExactSolveAllVariants(t *testing.T) {
	for _, name := range core.Solvers() {
		s := buildTestSurface(t, name)
		d := s.Def
		for _, h := range queryHs(name) {
			// Off-grid loads: interior cell midpoints well below the
			// guard cell of every row.
			for _, ci := range []int{4, 12, 20} {
				lambda := 0.5 * (d.Lambdas[ci] + d.Lambdas[ci+1])
				got, err := s.Eval(h, lambda)
				if err != nil {
					t.Errorf("%q Eval(h=%v, λ=%g): %v", name, h, lambda, err)
					continue
				}
				spec := core.Spec{K: d.K, Dims: d.Dims, V: d.V, Lm: d.Lm, H: h, Lambda: lambda}
				want, err := core.Solve(name, spec, core.Options{})
				if err != nil {
					t.Fatalf("%q exact Solve(h=%v, λ=%g): %v", name, h, lambda, err)
				}
				checkRel(t, name, "latency", h, lambda, got.Latency, want.Latency)
				checkRel(t, name, "regular", h, lambda, got.Regular, want.Regular)
				checkRel(t, name, "hot", h, lambda, got.Hot, want.Hot)
				checkRel(t, name, "source_wait", h, lambda, got.SourceWait, want.SourceWait)
				checkRel(t, name, "vbar", h, lambda, got.VBar, want.VBar)
				if got.ErrEstimate < 0 {
					t.Errorf("%q Eval(h=%v, λ=%g): negative error estimate %g", name, h, lambda, got.ErrEstimate)
				}
			}
		}
	}
}

func checkRel(t *testing.T, name, field string, h, lambda, got, want float64) {
	t.Helper()
	denom := math.Abs(want)
	if denom < 1e-12 {
		denom = 1e-12
	}
	if rel := math.Abs(got-want) / denom; rel > evalRelBound {
		t.Errorf("%q %s at (h=%v, λ=%g): interpolated %.8g, exact %.8g (rel %.3g > %.1g)",
			name, field, h, lambda, got, want, rel, evalRelBound)
	}
}

// TestBuildMasksSaturatedCells: a λ axis extending past saturation
// yields a masked suffix per row (NaN values), a monotone frontier in
// h, and no build error.
func TestBuildMasksSaturatedCells(t *testing.T) {
	d := testDef("hotspot-2d")
	d.Lambdas = lambdaAxis(3 * nearSatLambda("hotspot-2d"))
	s, err := surface.Build(d, surface.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	total, saturated := s.Points()
	if total != len(d.Hs)*len(d.Lambdas) {
		t.Fatalf("Points total = %d, want %d", total, len(d.Hs)*len(d.Lambdas))
	}
	if saturated == 0 {
		t.Fatalf("a 3×-near-saturation axis produced no saturated cells")
	}
	nl := len(d.Lambdas)
	for hi := range d.Hs {
		seenSat := false
		for li := 0; li < nl; li++ {
			cell := hi*nl + li
			if s.Saturated[cell] {
				seenSat = true
				if !math.IsNaN(s.Latency[cell]) {
					t.Errorf("saturated cell (%d,%d) holds %g, want NaN", hi, li, s.Latency[cell])
				}
			} else {
				if seenSat {
					t.Errorf("row %d: unsaturated cell %d after the frontier — mask is not a suffix", hi, li)
				}
				if math.IsNaN(s.Latency[cell]) {
					t.Errorf("unsaturated cell (%d,%d) holds NaN", hi, li)
				}
			}
		}
	}
}

// TestEvalFallbackSignals: queries outside the grid report
// ErrOutOfRange; queries at or within one cell of a row's saturation
// frontier report ErrNearSaturation. These sentinels are the serving
// layer's exact-solve fallback triggers.
func TestEvalFallbackSignals(t *testing.T) {
	d := testDef("hotspot-2d")
	d.Lambdas = lambdaAxis(3 * nearSatLambda("hotspot-2d"))
	s, err := surface.Build(d, surface.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lo, hi := d.Lambdas[0], d.Lambdas[len(d.Lambdas)-1]
	outOfRange := []struct {
		name      string
		h, lambda float64
	}{
		{"h below the axis", 0.05, lo * 2},
		{"h above the axis", 0.35, lo * 2},
		{"lambda below the axis", 0.2, lo / 2},
	}
	for _, q := range outOfRange {
		if _, err := s.Eval(q.h, q.lambda); !errors.Is(err, surface.ErrOutOfRange) {
			t.Errorf("%s: want ErrOutOfRange, got %v", q.name, err)
		}
	}
	// The h=0.2 row saturates well before this axis's end (it extends to
	// 3× that row's near-saturation load), so a query at the axis top is
	// near-saturation, as is one inside the row's guard cell — the last
	// solved interval before the frontier, located from the mask itself.
	if _, err := s.Eval(0.2, hi); !errors.Is(err, surface.ErrNearSaturation) {
		t.Errorf("λ at axis top: want ErrNearSaturation, got %v", err)
	}
	row := hRowIndex(t, d, 0.2)
	nl := len(d.Lambdas)
	sat := nl
	for li := 0; li < nl; li++ {
		if s.Saturated[row*nl+li] {
			sat = li
			break
		}
	}
	if sat >= nl || sat < 2 {
		t.Fatalf("h=0.2 row did not saturate mid-axis (frontier index %d) — test grid assumption broken", sat)
	}
	guard := 0.5 * (d.Lambdas[sat-2] + d.Lambdas[sat-1])
	if _, err := s.Eval(0.2, guard); !errors.Is(err, surface.ErrNearSaturation) {
		t.Errorf("λ=%g in the guard cell before the frontier: want ErrNearSaturation, got %v", guard, err)
	}
}

// hRowIndex finds the grid row whose knot equals h.
func hRowIndex(t *testing.T, d surface.Def, h float64) int {
	t.Helper()
	for i, knot := range d.Hs {
		if math.Abs(knot-h) < 1e-12 {
			return i
		}
	}
	t.Fatalf("h=%v is not a knot of %v", h, d.Hs)
	return -1
}

// TestEvalOnGridKnots: at grid knots (exact h row, exact λ) the
// interpolant reproduces the stored solve essentially exactly — the
// Hermite basis interpolates its knots.
func TestEvalOnGridKnots(t *testing.T) {
	s := buildTestSurface(t, "hotspot-2d")
	d := s.Def
	for _, hi := range []int{0, 2, 4} {
		for _, li := range []int{0, 5, 10} {
			got, err := s.Eval(d.Hs[hi], d.Lambdas[li])
			if err != nil {
				t.Fatalf("Eval at knot (%d,%d): %v", hi, li, err)
			}
			want := s.Latency[hi*len(d.Lambdas)+li]
			if math.Abs(got.Latency-want) > 1e-9*math.Abs(want) {
				t.Errorf("knot (%d,%d): Eval %.12g, stored %.12g", hi, li, got.Latency, want)
			}
		}
	}
}

// TestBuildProgress: the progress hook sees every grid point and a
// constant total.
func TestBuildProgress(t *testing.T) {
	d := testDef("uniform")
	var calls, lastDone int
	s, err := surface.Build(d, surface.BuildOptions{
		Progress: func(done, total int) {
			calls++
			lastDone = done
			if total != len(d.Hs)*len(d.Lambdas) {
				t.Errorf("Progress total = %d, want %d", total, len(d.Hs)*len(d.Lambdas))
			}
		},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	total, _ := s.Points()
	if calls != total || lastDone != total {
		t.Errorf("Progress called %d times, last done %d; want %d", calls, lastDone, total)
	}
}

// TestBuildRejectsBadDefs: structural problems fail fast with a
// descriptive error, before any solving.
func TestBuildRejectsBadDefs(t *testing.T) {
	base := testDef("hotspot-2d")
	for name, mutate := range map[string]func(*surface.Def){
		"empty model":       func(d *surface.Def) { d.Model = "" },
		"unknown model":     func(d *surface.Def) { d.Model = "no-such" },
		"empty hs":          func(d *surface.Def) { d.Hs = nil },
		"one lambda":        func(d *surface.Def) { d.Lambdas = d.Lambdas[:1] },
		"descending hs":     func(d *surface.Def) { d.Hs = []float64{0.3, 0.2} },
		"h at 1":            func(d *surface.Def) { d.Hs = []float64{0.2, 1.0} },
		"negative lambda":   func(d *surface.Def) { d.Lambdas = []float64{-1e-4, 1e-4} },
		"duplicate lambdas": func(d *surface.Def) { d.Lambdas = []float64{1e-4, 1e-4} },
		"invalid shape":     func(d *surface.Def) { d.K = 1 },
	} {
		d := base
		mutate(&d)
		if _, err := surface.Build(d, surface.BuildOptions{}); err == nil {
			t.Errorf("%s: Build accepted an invalid definition", name)
		}
	}
}

// TestDefKeyIgnoresAxes: surfaces over different grids of the same
// shape share a key; any result-affecting knob splits it.
func TestDefKeyIgnoresAxes(t *testing.T) {
	a := testDef("hotspot-2d")
	b := a
	b.Hs = []float64{0.2, 0.25}
	b.Lambdas = lambdaAxis(1e-4)
	if a.Key() != b.Key() {
		t.Errorf("same shape, different grids: keys differ (%q vs %q)", a.Key(), b.Key())
	}
	c := a
	c.NoVCSplit = true
	if a.Key() == c.Key() {
		t.Errorf("NoVCSplit must split the shape key")
	}
	e := a
	e.Variance = core.VariancePaper
	if a.Key() == e.Key() {
		t.Errorf("Variance must split the shape key")
	}
}
