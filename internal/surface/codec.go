package surface

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
)

// On-disk format, version 1. All integers little-endian:
//
//	offset  size         field
//	0       4            magic "KHSF"
//	4       4            uint32 format version (currently 1)
//	8       4            uint32 header length N
//	12      N            JSON-encoded Def
//	12+N    5·nh·nl·8    value grids (latency, regular, hot, source
//	                     wait, vbar), row-major float64 bits
//	...     nh·nl        saturation mask, one byte per cell (0 or 1)
//	...     8            uint64 FNV-64a checksum of everything above
//
// Saturated cells hold the NaN bit pattern in the value grids; the mask
// is authoritative. The checksum covers every preceding byte, so any
// truncation or bit flip that survives the structural checks still
// fails closed.

var magic = [4]byte{'K', 'H', 'S', 'F'}

// Version is the current surface file format version.
const Version = 1

// maxHeaderLen bounds the JSON header so a corrupt length field cannot
// drive a huge allocation; real headers are a few hundred bytes.
const maxHeaderLen = 1 << 20

// maxGridCells bounds nh·nl for the same reason (a full grid of this
// size is ~5 GiB of float64s — far beyond any sane surface).
const maxGridCells = 1 << 27

// Decoder error sentinels. Every decode failure wraps exactly one of
// these — structured, never a panic, never silent garbage.
var (
	// ErrBadMagic: the file does not start with the KHSF magic.
	ErrBadMagic = errors.New("surface: not a surface file (bad magic)")
	// ErrVersionMismatch: the format version is not Version.
	ErrVersionMismatch = errors.New("surface: unsupported surface file version")
	// ErrTruncated: the file ends before the structure it declares.
	ErrTruncated = errors.New("surface: truncated surface file")
	// ErrChecksum: the trailing FNV-64a checksum does not match.
	ErrChecksum = errors.New("surface: surface file checksum mismatch")
	// ErrBadHeader: the JSON header is unparseable or describes an
	// invalid definition.
	ErrBadHeader = errors.New("surface: invalid surface file header")
)

// Encode serializes the surface to the version-1 binary format.
func Encode(s *Surface) ([]byte, error) {
	hdr, err := json.Marshal(s.Def)
	if err != nil {
		return nil, fmt.Errorf("surface: encoding header: %w", err)
	}
	nh, nl := len(s.Def.Hs), len(s.Def.Lambdas)
	cells := nh * nl
	buf := make([]byte, 0, 12+len(hdr)+numFields*cells*8+cells+8)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	for f := 0; f < numFields; f++ {
		for _, v := range s.grid(f) {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for _, sat := range s.Saturated {
		if sat {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	sum := fnv.New64a()
	sum.Write(buf)
	buf = binary.LittleEndian.AppendUint64(buf, sum.Sum64())
	return buf, nil
}

// Decode parses a version-1 surface file. The returned surface is fully
// prepared for lookups. The error, when non-nil, wraps one of the
// sentinel errors above.
func Decode(data []byte) (*Surface, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: %d bytes, want at least the 12-byte preamble", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: got % x", ErrBadMagic, data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersionMismatch, v, Version)
	}
	hdrLen := binary.LittleEndian.Uint32(data[8:12])
	if hdrLen > maxHeaderLen {
		return nil, fmt.Errorf("%w: header length %d exceeds the %d cap", ErrBadHeader, hdrLen, maxHeaderLen)
	}
	if len(data) < 12+int(hdrLen) {
		return nil, fmt.Errorf("%w: header length %d but only %d bytes follow the preamble", ErrTruncated, hdrLen, len(data)-12)
	}
	var d Def
	dec := json.NewDecoder(bytes.NewReader(data[12 : 12+hdrLen]))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	nh, nl := len(d.Hs), len(d.Lambdas)
	cells := nh * nl
	if cells > maxGridCells {
		return nil, fmt.Errorf("%w: %d grid cells exceed the %d cap", ErrBadHeader, cells, maxGridCells)
	}
	want := 12 + int(hdrLen) + numFields*cells*8 + cells + 8
	if len(data) < want {
		return nil, fmt.Errorf("%w: %d bytes, header describes %d", ErrTruncated, len(data), want)
	}
	if len(data) > want {
		return nil, fmt.Errorf("%w: %d trailing bytes after the checksum", ErrBadHeader, len(data)-want)
	}
	sum := fnv.New64a()
	sum.Write(data[:want-8])
	if got := binary.LittleEndian.Uint64(data[want-8:]); got != sum.Sum64() {
		return nil, fmt.Errorf("%w: stored %016x, computed %016x", ErrChecksum, got, sum.Sum64())
	}
	s := &Surface{
		Def:        d,
		Latency:    make([]float64, cells),
		Regular:    make([]float64, cells),
		Hot:        make([]float64, cells),
		SourceWait: make([]float64, cells),
		VBar:       make([]float64, cells),
		Saturated:  make([]bool, cells),
	}
	off := 12 + int(hdrLen)
	for f := 0; f < numFields; f++ {
		g := s.grid(f)
		for i := range g {
			g[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	for i := range s.Saturated {
		switch data[off] {
		case 0:
		case 1:
			s.Saturated[i] = true
		default:
			return nil, fmt.Errorf("%w: saturation mask byte %d is %d, want 0 or 1", ErrBadHeader, i, data[off])
		}
		off++
	}
	// A value grid may hold non-finite numbers only where the mask says
	// saturated — anything else is corruption the checksum cannot see
	// (it was encoded faithfully from a corrupt writer).
	for f := 0; f < numFields; f++ {
		g := s.grid(f)
		for i, v := range g {
			if !s.Saturated[i] && (math.IsNaN(v) || math.IsInf(v, 0)) {
				return nil, fmt.Errorf("%w: non-finite value in grid %d cell %d outside the saturation mask", ErrBadHeader, f, i)
			}
		}
	}
	s.prepare()
	return s, nil
}

// FileExt is the surface file extension WriteFile uses and LoadDir
// looks for.
const FileExt = ".khsf"

// WriteFile encodes the surface into dir, naming the file by the
// encoded content's checksum so identical surfaces dedup naturally and
// concurrent writers cannot interleave (the write goes through a
// same-directory temp file and an atomic rename). It returns the final
// path.
func WriteFile(dir string, s *Surface) (string, error) {
	data, err := Encode(s)
	if err != nil {
		return "", err
	}
	sum := binary.LittleEndian.Uint64(data[len(data)-8:])
	path := filepath.Join(dir, fmt.Sprintf("khs-surface-%016x%s", sum, FileExt))
	tmp, err := os.CreateTemp(dir, "khs-surface-*.tmp")
	if err != nil {
		return "", fmt.Errorf("surface: writing %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("surface: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("surface: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("surface: writing %s: %w", path, err)
	}
	return path, nil
}

// ReadFile decodes one surface file.
func ReadFile(path string) (*Surface, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("surface: reading %s: %w", path, err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("surface: reading %s: %w", path, err)
	}
	return s, nil
}
