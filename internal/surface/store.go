package surface

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"kncube/internal/core"
	"kncube/internal/telemetry"
)

// Store is the serving-side surface inventory: immutable surfaces keyed
// by shape, answering interpolated lookups with full fallback
// accounting. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	seq  int
	byID map[string]*Entry
	// byKey holds each shape's surfaces in insertion order; Lookup scans
	// them for the first one covering the query point.
	byKey map[string][]*Entry

	lookups     func(outcome string) *telemetry.Counter
	fallbacks   func(reason string) *telemetry.Counter
	builds      func(state string) *telemetry.Counter
	buildTime   *telemetry.Histogram
	errEstimate *telemetry.Histogram
	entries     *telemetry.Gauge
}

// Entry is one stored surface with its store-assigned id.
type Entry struct {
	ID      string
	Surface *Surface
	// Path is where the surface is persisted on disk, when it is.
	Path string
}

// buildTimeBounds span the realistic build range: a toy grid solves in
// milliseconds, a dense near-saturation grid can take minutes.
var buildTimeBounds = []float64{0.01, 0.1, 0.5, 1, 5, 30, 120, 600}

// errEstimateBounds resolve the interesting error-estimate decades
// around typical auto-mode thresholds (0.1%–1%).
var errEstimateBounds = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// NewStore builds an empty store registering its metrics on reg (a nil
// reg gets a private throwaway registry, the pattern tests use).
func NewStore(reg *telemetry.Registry) *Store {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	st := &Store{
		byID:  make(map[string]*Entry),
		byKey: make(map[string][]*Entry),
	}
	st.lookups = func(outcome string) *telemetry.Counter {
		return reg.Counter("khs_surface_lookups_total",
			"surface lookup attempts by outcome (hit, miss)", telemetry.Labels{"outcome": outcome})
	}
	st.fallbacks = func(reason string) *telemetry.Counter {
		return reg.Counter("khs_surface_fallbacks_total",
			"lookups refused back to the exact solver, by reason (saturation, range, estimate)",
			telemetry.Labels{"reason": reason})
	}
	st.builds = func(state string) *telemetry.Counter {
		return reg.Counter("khs_surface_builds_total",
			"surface builds by terminal state (ok, error)", telemetry.Labels{"state": state})
	}
	st.buildTime = reg.Histogram("khs_surface_build_seconds",
		"wall-clock time of surface grid builds", nil, buildTimeBounds)
	st.errEstimate = reg.Histogram("khs_surface_error_ratio",
		"relative interpolation-error estimate of served lookups", nil, errEstimateBounds)
	st.entries = reg.Gauge("khs_surface_store_entries", "surfaces currently stored", nil)
	return st
}

// Add stores a surface and returns its entry. path records where the
// surface lives on disk ("" when unpersisted).
func (st *Store) Add(s *Surface, path string) *Entry {
	key := s.Def.Key()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	e := &Entry{ID: fmt.Sprintf("surface-%06d", st.seq), Surface: s, Path: path}
	st.byID[e.ID] = e
	st.byKey[key] = append(st.byKey[key], e)
	st.entries.Set(float64(len(st.byID)))
	return e
}

// Get returns the entry with the given id, or nil.
func (st *Store) Get(id string) *Entry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.byID[id]
}

// List returns all entries ordered by id.
func (st *Store) List() []*Entry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]*Entry, 0, len(st.byID))
	for _, e := range st.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Keys returns the distinct shape keys with at least one surface.
func (st *Store) Keys() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	keys := make([]string, 0, len(st.byKey))
	for k := range st.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ErrNoSurface: no stored surface covers the query's shape.
var ErrNoSurface = errors.New("surface: no surface covers this shape")

// ErrEstimateTooHigh: a surface covers the point but its interpolation
// error estimate exceeds the caller's bound.
var ErrEstimateTooHigh = errors.New("surface: interpolation error estimate above the caller's bound")

// LookupOptions bound a Lookup.
type LookupOptions struct {
	// MaxErrEstimate rejects lookups whose error estimate exceeds it;
	// zero or negative means no bound.
	MaxErrEstimate float64
}

// Lookup answers (model, spec, opts) from a stored surface. On success
// the entry the answer came from is returned alongside the interpolated
// decomposition. Failures are structured for fallback routing:
// ErrNoSurface when the shape has no covering surface, ErrOutOfRange /
// ErrNearSaturation from the interpolator, ErrEstimateTooHigh against
// o.MaxErrEstimate — each pre-counted in the store's own metrics.
func (st *Store) Lookup(model string, spec core.Spec, copts core.Options, o LookupOptions) (Lookup, *Entry, error) {
	key := ShapeKey(model, spec, copts)
	st.mu.RLock()
	entries := st.byKey[key]
	st.mu.RUnlock()
	if len(entries) == 0 {
		st.lookups("miss").Inc()
		return Lookup{}, nil, ErrNoSurface
	}
	var firstErr error
	for _, e := range entries {
		lk, err := e.Surface.Eval(spec.H, spec.Lambda)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if o.MaxErrEstimate > 0 && lk.ErrEstimate > o.MaxErrEstimate {
			st.lookups("miss").Inc()
			st.fallbacks("estimate").Inc()
			return Lookup{}, nil, fmt.Errorf("%w: %.3g > %.3g", ErrEstimateTooHigh, lk.ErrEstimate, o.MaxErrEstimate)
		}
		st.lookups("hit").Inc()
		st.errEstimate.Observe(lk.ErrEstimate)
		return lk, e, nil
	}
	st.lookups("miss").Inc()
	switch {
	case errors.Is(firstErr, ErrNearSaturation):
		st.fallbacks("saturation").Inc()
	case errors.Is(firstErr, ErrOutOfRange):
		st.fallbacks("range").Inc()
	}
	return Lookup{}, nil, firstErr
}

// ObserveBuild records one surface build's outcome and duration in the
// store's build metrics.
func (st *Store) ObserveBuild(d time.Duration, err error) {
	if err != nil {
		st.builds("error").Inc()
	} else {
		st.builds("ok").Inc()
	}
	st.buildTime.Observe(d.Seconds())
}

// LoadDir adds every surface file (FileExt) in dir to the store,
// returning the loaded entries. A missing directory is empty, not an
// error; an unreadable or corrupt file fails the load (a serving
// replica must not silently drop part of its inventory).
func (st *Store) LoadDir(dir string) ([]*Entry, error) {
	names, err := surfaceFiles(dir)
	if err != nil {
		return nil, err
	}
	entries := make([]*Entry, 0, len(names))
	for _, name := range names {
		path := filepath.Join(dir, name)
		s, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		entries = append(entries, st.Add(s, path))
	}
	return entries, nil
}

func surfaceFiles(dir string) ([]string, error) {
	dirents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("surface: loading %s: %w", dir, err)
	}
	var names []string
	for _, de := range dirents {
		if !de.IsDir() && filepath.Ext(de.Name()) == FileExt {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
