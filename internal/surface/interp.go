package surface

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

var nan = math.NaN()

// Interpolation over the solved grid: a Fritsch–Carlson monotone cubic
// (PCHIP) along the λ axis of each bracketing h row, then a linear
// blend between the two rows. The monotone cubic cannot overshoot —
// the latency curves are monotone in λ and the scheme preserves that —
// and the gap between the cubic and the plain linear interpolant on
// the same interval serves as the error estimate: where the curve is
// locally straight the two agree and the estimate is tiny, where the
// curve bends hard (approaching saturation) they diverge and the
// estimate grows, which is exactly when a caller should distrust the
// lookup.

// Fallback sentinels: a lookup that cannot be answered from the grid
// reports why, so serving layers can route the query to the exact
// solver (and account the fallback).
var (
	// ErrOutOfRange: the query point lies outside the grid axes.
	ErrOutOfRange = errors.New("surface: query outside the grid")
	// ErrNearSaturation: the query λ lands beyond the last safely
	// interpolable cell of a saturating row — at, past, or within one
	// grid cell of the saturation frontier, where the latency curve is
	// too steep to trust an interpolant.
	ErrNearSaturation = errors.New("surface: query too close to the saturation frontier")
)

// Lookup is an interpolated answer: the latency decomposition of
// core.SolveResult, plus the relative error estimate on Latency.
type Lookup struct {
	Latency, Regular, Hot, SourceWait, VBar float64
	// ErrEstimate is |cubic − linear| / cubic on the latency field — a
	// local-curvature proxy for the true interpolation error.
	ErrEstimate float64
}

// Covers reports whether the query point can be answered from the
// grid — inside both axes and clear of the saturation frontier. It is
// exactly the predicate under which Eval succeeds.
func (s *Surface) Covers(h, lambda float64) bool {
	_, err := s.Eval(h, lambda)
	return err == nil
}

// Eval interpolates the surface at (h, λ). The error is nil, or wraps
// ErrOutOfRange / ErrNearSaturation.
func (s *Surface) Eval(h, lambda float64) (Lookup, error) {
	hs, lams := s.Def.Hs, s.Def.Lambdas
	if h < hs[0] || h > hs[len(hs)-1] {
		return Lookup{}, fmt.Errorf("%w: h=%v outside [%v, %v]", ErrOutOfRange, h, hs[0], hs[len(hs)-1])
	}
	if lambda < lams[0] {
		return Lookup{}, fmt.Errorf("%w: λ=%v below the axis start %v", ErrOutOfRange, lambda, lams[0])
	}
	lo, hi, w := s.hBracket(h)
	rowLo, err := s.evalRow(lo, lambda)
	if err != nil {
		return Lookup{}, err
	}
	if hi == lo {
		return rowLo, nil
	}
	rowHi, err := s.evalRow(hi, lambda)
	if err != nil {
		return Lookup{}, err
	}
	blend := func(a, b float64) float64 { return a + w*(b-a) }
	return Lookup{
		Latency:     blend(rowLo.Latency, rowHi.Latency),
		Regular:     blend(rowLo.Regular, rowHi.Regular),
		Hot:         blend(rowLo.Hot, rowHi.Hot),
		SourceWait:  blend(rowLo.SourceWait, rowHi.SourceWait),
		VBar:        blend(rowLo.VBar, rowHi.VBar),
		ErrEstimate: math.Max(rowLo.ErrEstimate, rowHi.ErrEstimate),
	}, nil
}

// hBracket finds the rows bracketing h and the linear weight of the
// upper row. Queries at (or numerically at) a knot collapse to that
// single row so the other row's saturation frontier cannot spuriously
// reject them.
func (s *Surface) hBracket(h float64) (lo, hi int, w float64) {
	hs := s.Def.Hs
	i := sort.SearchFloat64s(hs, h) // first index with hs[i] >= h
	if i == len(hs) {
		return len(hs) - 1, len(hs) - 1, 0
	}
	if !(hs[i] > h) { // exact knot hit
		return i, i, 0
	}
	// hs[i-1] < h < hs[i]; i > 0 because h >= hs[0] was checked.
	lo, hi = i-1, i
	w = (h - hs[lo]) / (hs[hi] - hs[lo])
	if w < 1e-12 {
		return lo, lo, 0
	}
	if w > 1-1e-12 {
		return hi, hi, 0
	}
	return lo, hi, w
}

// evalRow interpolates one h row at λ.
func (s *Surface) evalRow(hi int, lambda float64) (Lookup, error) {
	lams := s.Def.Lambdas
	nl := len(lams)
	sat := s.satIdx[hi]
	// A saturating row keeps one guard cell before the frontier out of
	// the usable range: the last solved interval hugs the asymptote,
	// where even the monotone cubic is untrustworthy.
	usableTop := sat - 1 // index of the last solved knot
	if sat < nl {
		usableTop = sat - 2
	}
	if usableTop < 1 {
		return Lookup{}, fmt.Errorf("%w: row h=%v has no interpolable interval", ErrNearSaturation, s.Def.Hs[hi])
	}
	if lambda > lams[usableTop] {
		if sat < nl {
			return Lookup{}, fmt.Errorf("%w: λ=%v beyond %v in row h=%v (frontier at λ=%v)",
				ErrNearSaturation, lambda, lams[usableTop], s.Def.Hs[hi], lams[sat])
		}
		return Lookup{}, fmt.Errorf("%w: λ=%v beyond the axis end %v", ErrOutOfRange, lambda, lams[nl-1])
	}
	// Bracketing interval [li, li+1] within the solved prefix.
	li := sort.SearchFloat64s(lams[:usableTop+1], lambda)
	if li > 0 {
		li--
	}
	row := hi * nl
	t := (lambda - lams[li]) / (lams[li+1] - lams[li])
	var out [numFields]float64
	var est float64
	for f := 0; f < numFields; f++ {
		g := s.grid(f)
		y0, y1 := g[row+li], g[row+li+1]
		d0, d1 := s.derivs[f][row+li], s.derivs[f][row+li+1]
		hstep := lams[li+1] - lams[li]
		cubic := hermite(y0, y1, d0*hstep, d1*hstep, t)
		out[f] = cubic
		if f == fieldLatency {
			linear := y0 + t*(y1-y0)
			denom := math.Abs(cubic)
			if denom > 0 {
				est = math.Abs(cubic-linear) / denom
			}
		}
	}
	return Lookup{
		Latency: out[fieldLatency], Regular: out[fieldRegular], Hot: out[fieldHot],
		SourceWait: out[fieldSourceWait], VBar: out[fieldVBar],
		ErrEstimate: est,
	}, nil
}

// hermite evaluates the cubic Hermite basis on [0, 1] with endpoint
// values y0, y1 and endpoint derivatives m0, m1 already scaled by the
// interval width.
func hermite(y0, y1, m0, m1, t float64) float64 {
	t2 := t * t
	t3 := t2 * t
	return (2*t3-3*t2+1)*y0 + (t3-2*t2+t)*m0 + (-2*t3+3*t2)*y1 + (t3-t2)*m1
}

// prepare derives the per-row saturation indices and the monotone-cubic
// knot derivatives from the grids. Called once after Build or Decode.
func (s *Surface) prepare() {
	nh, nl := len(s.Def.Hs), len(s.Def.Lambdas)
	s.satIdx = make([]int, nh)
	for f := 0; f < numFields; f++ {
		s.derivs[f] = make([]float64, nh*nl)
	}
	for hi := 0; hi < nh; hi++ {
		sat := nl
		for li := 0; li < nl; li++ {
			if s.Saturated[hi*nl+li] {
				sat = li
				break
			}
		}
		s.satIdx[hi] = sat
		for f := 0; f < numFields; f++ {
			row := hi * nl
			pchipDerivs(s.Def.Lambdas[:sat], s.grid(f)[row:row+sat], s.derivs[f][row:row+sat])
		}
	}
}

// pchipDerivs fills m with the Fritsch–Carlson shape-preserving knot
// derivatives for the data (x, y): harmonic-mean weighted secants at
// interior knots (zero across local extrema), clamped one-sided
// estimates at the ends. The resulting Hermite interpolant is monotone
// wherever the data are.
func pchipDerivs(x, y, m []float64) {
	n := len(x)
	switch n {
	case 0:
		return
	case 1:
		m[0] = 0
		return
	case 2:
		d := (y[1] - y[0]) / (x[1] - x[0])
		m[0], m[1] = d, d
		return
	}
	for i := 1; i < n-1; i++ {
		h0, h1 := x[i]-x[i-1], x[i+1]-x[i]
		d0, d1 := (y[i]-y[i-1])/h0, (y[i+1]-y[i])/h1
		if d0*d1 <= 0 {
			m[i] = 0
			continue
		}
		w0, w1 := 2*h1+h0, h1+2*h0
		m[i] = (w0 + w1) / (w0/d0 + w1/d1)
	}
	m[0] = endpointDeriv(x[1]-x[0], x[2]-x[1], (y[1]-y[0])/(x[1]-x[0]), (y[2]-y[1])/(x[2]-x[1]))
	m[n-1] = endpointDeriv(x[n-1]-x[n-2], x[n-2]-x[n-3],
		(y[n-1]-y[n-2])/(x[n-1]-x[n-2]), (y[n-2]-y[n-3])/(x[n-2]-x[n-3]))
}

// endpointDeriv is the non-centred three-point endpoint formula with the
// Fritsch–Carlson monotonicity clamps.
func endpointDeriv(h0, h1, d0, d1 float64) float64 {
	m := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if m*d0 <= 0 {
		return 0
	}
	if d0*d1 < 0 && math.Abs(m) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return m
}
