package surface_test

import (
	"testing"

	"kncube/internal/surface"
)

// FuzzDecode drives the surface file decoder with arbitrary bytes: it
// must never panic, and whenever it does accept an input the resulting
// surface must be structurally sound — grids sized to the definition
// and every lookup-facing invariant intact (a malformed accepted file
// would serve silent garbage, which is exactly what the structured
// decode errors exist to prevent).
func FuzzDecode(f *testing.F) {
	// Seed with a valid file and a few near-valid mutants so the fuzzer
	// starts inside the interesting part of the input space.
	d := surface.Def{
		Model: "hotspot-2d", K: 8, Dims: 2, V: 2, Lm: 16,
		Hs:      []float64{0.1, 0.2},
		Lambdas: []float64{5e-5, 1e-4, 1.5e-4, 2e-4},
	}
	s, err := surface.Build(d, surface.BuildOptions{})
	if err != nil {
		f.Fatalf("Build: %v", err)
	}
	valid, err := surface.Encode(s)
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:12])
	f.Add([]byte("KHSF"))
	f.Add([]byte{})
	truncatedHeader := append([]byte(nil), valid[:20]...)
	f.Add(truncatedHeader)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := surface.Decode(data)
		if err != nil {
			if s != nil {
				t.Fatalf("Decode returned both a surface and error %v", err)
			}
			return
		}
		cells := len(s.Def.Hs) * len(s.Def.Lambdas)
		for _, g := range [][]float64{s.Latency, s.Regular, s.Hot, s.SourceWait, s.VBar} {
			if len(g) != cells {
				t.Fatalf("accepted surface has a %d-cell grid for a %d-cell definition", len(g), cells)
			}
		}
		if len(s.Saturated) != cells {
			t.Fatalf("accepted surface has a %d-cell mask for a %d-cell definition", len(s.Saturated), cells)
		}
		// Probing a few corners must not panic regardless of content.
		hs, lams := s.Def.Hs, s.Def.Lambdas
		corners := [][2]float64{
			{hs[0], lams[0]},
			{hs[len(hs)-1], lams[len(lams)-1]},
			{0.5 * (hs[0] + hs[len(hs)-1]), 0.5 * (lams[0] + lams[len(lams)-1])},
		}
		for _, c := range corners {
			s.Eval(c[0], c[1]) //nolint:errcheck // any structured outcome is fine; only a panic fails
		}
	})
}
