package experiments

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"

	"kncube/internal/core"
	"kncube/internal/fixpoint"
	"kncube/internal/sim"
	"kncube/internal/stats"
	"kncube/internal/telemetry"
	"kncube/internal/telemetry/span"
)

// JobSeed derives the deterministic simulator seed for one sweep job from
// the base seed, the panel identity, the index of the load point on the
// panel's axis, and the replication number. Every job of a sweep therefore
// simulates an independent RNG stream (points on a curve no longer share
// one stream, so their sampling errors are uncorrelated), yet the mapping
// depends only on the job's identity — never on worker count or completion
// order — so sweep results are bit-identical at any parallelism.
//
// The derivation is an FNV-1a 64-bit hash over (base, panelID, 0xff,
// lambdaIdx, rep) with fixed-width little-endian integer encoding; the 0xff
// byte terminates the panel ID (panel IDs are ASCII) so no two field
// combinations collide by concatenation. The scheme is part of the
// published-CSV reproducibility contract and is documented in
// EXPERIMENTS.md; changing it invalidates recorded sweep data.
func JobSeed(base int64, panelID string, lambdaIdx, rep int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(panelID))
	h.Write([]byte{0xff})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(lambdaIdx)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(rep)))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// SweepProgress describes one completed simulation job; see Sweep.Progress.
type SweepProgress struct {
	// Panel is the job's panel; LambdaIdx indexes Panel.Lambdas; Rep is the
	// replication number in [0, Reps).
	Panel     Panel
	LambdaIdx int
	Rep       int
	// Done counts completed simulation jobs sweep-wide, Total the jobs the
	// sweep was launched with.
	Done, Total int
	// Result is the job's simulator output.
	Result sim.Result
}

// Sweep is the parallel sweep engine behind the figure harness: it expands
// (panel x load point x replication) into independent simulation jobs,
// executes them on a bounded worker pool, and pools replications into one
// Point per load point. The zero value runs every job sequentially in the
// calling goroutine's worker with a single replication.
type Sweep struct {
	// Jobs is the worker-pool size; <= 0 means runtime.NumCPU().
	Jobs int
	// Reps is the number of independent simulation replications pooled per
	// load point (distinct derived seeds; see JobSeed); <= 0 means 1.
	Reps int
	// JobTimeout bounds each simulation job; a job exceeding it fails the
	// sweep with an error wrapping context.DeadlineExceeded. 0 means no
	// per-job limit.
	JobTimeout time.Duration
	// Budget is the per-replication simulation budget. Budget.Seed is the
	// base seed every job's seed is derived from.
	Budget SimBudget
	// Model is the registry name of the model variant to sweep (see
	// core.Solvers); empty means DefaultModel. The simulator is configured
	// to match the variant (bidirectional channels for "bidirectional-2d").
	Model string
	// Opts are the analytical model options.
	Opts core.Options
	// Progress, when non-nil, is called serially after every completed
	// simulation job (from worker goroutines, under the engine's lock —
	// keep it light).
	Progress func(SweepProgress)
	// TraceSink, when non-nil, receives one convergence trace per analytical
	// solve (the replication-0 model evaluation of each load point),
	// labelled "<panelID>-lam<idx>". Sinks must be safe for concurrent
	// Solve calls (both telemetry sinks are).
	TraceSink telemetry.TraceSink
	// Manifest, when non-nil, receives one RunManifest record per
	// simulation job. Record order follows job completion, not axis order;
	// the (panel, lambda_idx, rep) fields identify each record.
	Manifest *telemetry.ManifestWriter
	// Metrics, when non-nil, accrues sweep-level telemetry:
	// khs_sweep_jobs_total{outcome} and the khs_sweep_job_seconds histogram.
	Metrics *telemetry.Registry
}

// RunManifest is one line of the sweep's JSONL run manifest: the complete
// identity (derived seed included) and outcome of one simulation job, plus —
// on replication-0 records — the analytical solve that shares the load
// point. It is the record needed to re-run or audit any single job.
type RunManifest struct {
	Panel     string  `json:"panel"`
	Lambda    float64 `json:"lambda"`
	LambdaIdx int     `json:"lambda_idx"`
	Rep       int     `json:"rep"`
	Seed      int64   `json:"seed"`
	Model     string  `json:"model"`
	// WallSeconds is the simulation job's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	Cycles      int64   `json:"cycles"`
	Measured    int64   `json:"measured"`
	Steady      bool    `json:"steady"`
	// Outcome is "ok", "saturated" (the backlog-growth heuristic fired) or
	// "error"; Error carries the message for "error" records.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// Model solve fields, set on replication-0 records only. ModelOutcome
	// is "ok", "saturated" (core.ErrSaturated) or "error"; ModelLatency is
	// omitted unless the solve succeeded (JSON has no NaN).
	ModelOutcome    string  `json:"model_outcome,omitempty"`
	ModelLatency    float64 `json:"model_latency,omitempty"`
	ModelIterations int     `json:"model_iterations,omitempty"`
	ModelError      string  `json:"model_error,omitempty"`
	// TraceID and SpanID correlate this record with the job's "sweep.sim"
	// span when the sweep ran under a tracer (khs-serve sweep jobs);
	// absent otherwise.
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// PanelResult pairs a panel with its swept points.
type PanelResult struct {
	Panel  Panel
	Points []Point
}

// sweepJob identifies one simulation unit: a (panel, load point,
// replication) triple, indexed into the RunPanels inputs.
type sweepJob struct {
	panel, point, rep int
}

// RunPanels sweeps the given panels: the analytical model once per load
// point and Reps simulator replications per point, all on the worker pool.
// Results are assembled in panel/axis order and are bit-identical for any
// worker count. The first job failure cancels the remaining jobs and is
// returned; cancelling ctx aborts the sweep promptly with ctx's error.
func (s Sweep) RunPanels(ctx context.Context, panels []Panel) ([]PanelResult, error) {
	if ctx == nil {
		//lint:ignore ctxflow defensive fallback so a nil ctx degrades to uncancellable, not a panic
		ctx = context.Background()
	}
	workers := s.Jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reps := s.Reps
	if reps <= 0 {
		reps = 1
	}

	total := 0
	simRes := make([][][]sim.Result, len(panels))
	modelVal := make([][]float64, len(panels))
	modelSat := make([][]bool, len(panels))
	for i, p := range panels {
		total += len(p.Lambdas) * reps
		simRes[i] = make([][]sim.Result, len(p.Lambdas))
		for j := range simRes[i] {
			simRes[i][j] = make([]sim.Result, reps)
		}
		modelVal[i] = make([]float64, len(p.Lambdas))
		modelSat[i] = make([]bool, len(p.Lambdas))
	}

	// The analytical curves are evaluated up front, one prepared solver per
	// panel (a panel is one topology shape swept over many loads). The
	// simulation jobs then only consult the stored outcomes: manifests,
	// traces and failure semantics are unchanged, but the per-point
	// topology/layout setup is paid once per panel instead of once per point.
	model := s.Model
	if model == "" {
		model = DefaultModel
	}
	modelPts := make([][]modelPoint, len(panels))
	for i, p := range panels {
		pts, err := s.solvePanelModels(ctx, model, p)
		if err != nil {
			return nil, err
		}
		modelPts[i] = pts
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	jobs := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if cctx.Err() != nil {
					continue // sweep aborted: drain the queue
				}
				s.runJob(cctx, panels[jb.panel], jb, reps, total,
					modelPts[jb.panel][jb.point],
					simRes, modelVal, modelSat, &mu, &done, fail)
			}
		}()
	}

feed:
	for i, p := range panels {
		for j := range p.Lambdas {
			for r := 0; r < reps; r++ {
				select {
				case jobs <- sweepJob{panel: i, point: j, rep: r}:
				case <-cctx.Done():
					break feed
				}
			}
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]PanelResult, len(panels))
	for i, p := range panels {
		points := make([]Point, len(p.Lambdas))
		for j, lam := range p.Lambdas {
			pt := Point{
				Lambda:         lam,
				Model:          modelVal[i][j],
				ModelSaturated: modelSat[i][j],
			}
			if reps == 1 {
				r := simRes[i][j][0]
				pt.Sim = r.MeanLatency
				pt.SimCI = r.CI95
				pt.SimSaturated = r.Saturated
				pt.SimMeasured = r.Measured
			} else {
				counts := make([]int64, reps)
				means := make([]float64, reps)
				cis := make([]float64, reps)
				for r, res := range simRes[i][j] {
					counts[r], means[r], cis[r] = res.Measured, res.MeanLatency, res.CI95
					pt.SimSaturated = pt.SimSaturated || res.Saturated
				}
				pt.Sim, pt.SimCI, pt.SimMeasured = stats.PooledMean(counts, means, cis)
			}
			points[j] = pt
		}
		out[i] = PanelResult{Panel: p, Points: points}
	}
	return out, nil
}

// runJob executes one (panel, point, rep) unit: the replication-0 job also
// records its point's precomputed analytical outcome (the model is
// deterministic, so the per-panel prepared solve suffices). Each writes only
// its own result slot; completion counting and the Progress callback
// serialise on mu.
func (s Sweep) runJob(ctx context.Context, p Panel, jb sweepJob, reps, total int,
	mp modelPoint,
	simRes [][][]sim.Result, modelVal [][]float64, modelSat [][]bool,
	mu *sync.Mutex, done *int, fail func(error)) {

	lam := p.Lambdas[jb.point]
	model := s.Model
	if model == "" {
		model = DefaultModel
	}
	// One span per (panel, λ, rep) unit when the sweep runs under a tracer
	// (khs-serve hands its linked job span down through ctx; CLI sweeps
	// carry none and pay nothing — StartChild returns nil). The manifest
	// record carries the same ids, correlating JSONL rows with the trace.
	ctx, jsp := span.StartChild(ctx, "sweep.sim",
		span.String("panel", p.ID),
		span.Float64("lambda", lam),
		span.Int("lambda_idx", jb.point),
		span.Int("rep", jb.rep))
	defer jsp.End()
	rec := RunManifest{
		Panel: p.ID, Lambda: lam, LambdaIdx: jb.point, Rep: jb.rep,
		Model: model,
	}
	if jsp != nil {
		rec.TraceID = jsp.TraceID().String()
		rec.SpanID = jsp.SpanID().String()
	}
	writeManifest := func() {
		if s.Manifest != nil {
			if err := s.Manifest.Write(rec); err != nil {
				fail(fmt.Errorf("experiments: manifest %s lambda=%g rep %d: %w",
					p.ID, lam, jb.rep, err))
			}
		}
		if s.Metrics != nil {
			s.Metrics.Counter("khs_sweep_jobs_total", "sweep simulation jobs by outcome",
				telemetry.Labels{"outcome": rec.Outcome}).Inc()
			s.Metrics.Histogram("khs_sweep_job_seconds", "wall-clock time per simulation job",
				nil, telemetry.ExponentialBuckets(0.01, 4, 10)).Observe(rec.WallSeconds)
		}
	}

	if jb.rep == 0 {
		mp.fill(&rec)
		switch {
		case mp.err == nil:
			modelVal[jb.panel][jb.point] = mp.res.Latency
		case errors.Is(mp.err, core.ErrSaturated):
			modelVal[jb.panel][jb.point] = math.NaN()
			modelSat[jb.panel][jb.point] = true
		default:
			rec.Outcome = "error"
			rec.Error = mp.err.Error()
			jsp.SetAttr("outcome", "error")
			writeManifest()
			fail(fmt.Errorf("experiments: model %s lambda=%g: %w", p.ID, lam, mp.err))
			return
		}
	}

	budget := s.Budget
	budget.Seed = JobSeed(s.Budget.Seed, p.ID, jb.point, jb.rep)
	rec.Seed = budget.Seed
	jsp.SetAttr("seed", budget.Seed)
	jctx := ctx
	if s.JobTimeout > 0 {
		var jcancel context.CancelFunc
		jctx, jcancel = context.WithTimeout(ctx, s.JobTimeout)
		defer jcancel()
	}
	simStart := time.Now()
	res, err := RunSimModelContext(jctx, model, p, lam, budget)
	rec.WallSeconds = time.Since(simStart).Seconds()
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return // sweep-wide cancellation; the caller reports ctx's error
		}
		rec.Outcome = "error"
		rec.Error = err.Error()
		jsp.SetAttr("outcome", "error")
		writeManifest()
		fail(fmt.Errorf("experiments: sim %s lambda=%g rep %d (seed %d): %w",
			p.ID, lam, jb.rep, budget.Seed, err))
		return
	}
	simRes[jb.panel][jb.point][jb.rep] = res
	rec.Cycles, rec.Measured, rec.Steady = res.Cycles, res.Measured, res.Steady
	rec.Outcome = "ok"
	if res.Saturated {
		rec.Outcome = "saturated"
	}
	jsp.SetAttr("outcome", rec.Outcome)
	jsp.SetAttr("cycles", rec.Cycles)
	writeManifest()

	mu.Lock()
	*done++
	if s.Progress != nil {
		s.Progress(SweepProgress{
			Panel: p, LambdaIdx: jb.point, Rep: jb.rep,
			Done: *done, Total: total, Result: res,
		})
	}
	mu.Unlock()
}

// modelPoint is one precomputed analytical solve: the result (or error) and
// the iteration count observed when a solve failed mid-iteration.
type modelPoint struct {
	res        *core.SolveResult
	err        error
	iterations int
}

// fill copies the solve outcome into a manifest record's model fields.
func (mp modelPoint) fill(rec *RunManifest) {
	switch {
	case mp.err == nil:
		rec.ModelOutcome = "ok"
		rec.ModelLatency = mp.res.Latency
		rec.ModelIterations = mp.res.Convergence.Iterations
	case errors.Is(mp.err, core.ErrSaturated):
		rec.ModelOutcome = "saturated"
		rec.ModelIterations = mp.iterations
		rec.ModelError = mp.err.Error()
	default:
		rec.ModelOutcome = "error"
		rec.ModelIterations = mp.iterations
		rec.ModelError = mp.err.Error()
	}
}

// solvePanelModels evaluates the panel's analytical curve through one
// prepared solver: the topology-dependent setup runs once, then each load
// point is a cold re-solve (bit-identical to the per-point driver). The
// sweep's trace sink receives each point's convergence trace under the same
// "<panelID>-lam<idx>" label the per-point driver used, matching the file
// name DirTraceSink derives.
func (s Sweep) solvePanelModels(ctx context.Context, model string, p Panel) ([]modelPoint, error) {
	// The whole analytical curve of one panel under one span (it is one
	// prepared solver reused across the loads); nil and free untraced.
	_, msp := span.StartChild(ctx, "sweep.model",
		span.String("panel", p.ID),
		span.Int("points", len(p.Lambdas)))
	defer msp.End()
	opts := s.Opts
	// The prepared solver captures its options once, but each load point
	// needs its own trace plumbing — route through a per-point hook variable.
	var cur func(fixpoint.TraceRecord)
	prev := opts.FixPoint.Trace
	opts.FixPoint.Trace = func(tr fixpoint.TraceRecord) {
		if cur != nil {
			cur(tr)
		}
	}
	var ps *core.PreparedSolver
	out := make([]modelPoint, len(p.Lambdas))
	for j, lam := range p.Lambdas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mp := &out[j]
		var hook func(fixpoint.TraceRecord)
		var traceDone func() error
		if s.TraceSink != nil {
			hook, traceDone = s.TraceSink.Solve(fmt.Sprintf("%s-lam%02d", p.ID, j))
		}
		cur = func(tr fixpoint.TraceRecord) {
			mp.iterations = tr.Iteration
			if prev != nil {
				prev(tr)
			}
			if hook != nil {
				hook(tr)
			}
		}
		if ps == nil {
			// Prepared lazily so a point-specific validation failure (e.g. a
			// non-positive λ) is charged to its own point, exactly as the
			// per-point driver charged it; the next point retries.
			var perr error
			ps, perr = PrepareNamedModel(model, p, lam, opts)
			if perr != nil {
				ps = nil
				mp.err = perr
				if traceDone != nil {
					traceDone() //nolint:errcheck // the validation error wins
				}
				continue
			}
		}
		mp.res, mp.err = ps.Solve(lam)
		if traceDone != nil {
			if terr := traceDone(); terr != nil && mp.err == nil {
				mp.err = fmt.Errorf("experiments: trace %s-lam%02d: %w", p.ID, j, terr)
			}
		}
	}
	return out, nil
}
