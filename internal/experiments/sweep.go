package experiments

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sync"
	"time"

	"kncube/internal/core"
	"kncube/internal/sim"
	"kncube/internal/stats"
)

// JobSeed derives the deterministic simulator seed for one sweep job from
// the base seed, the panel identity, the index of the load point on the
// panel's axis, and the replication number. Every job of a sweep therefore
// simulates an independent RNG stream (points on a curve no longer share
// one stream, so their sampling errors are uncorrelated), yet the mapping
// depends only on the job's identity — never on worker count or completion
// order — so sweep results are bit-identical at any parallelism.
//
// The derivation is an FNV-1a 64-bit hash over (base, panelID, 0xff,
// lambdaIdx, rep) with fixed-width little-endian integer encoding; the 0xff
// byte terminates the panel ID (panel IDs are ASCII) so no two field
// combinations collide by concatenation. The scheme is part of the
// published-CSV reproducibility contract and is documented in
// EXPERIMENTS.md; changing it invalidates recorded sweep data.
func JobSeed(base int64, panelID string, lambdaIdx, rep int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(panelID))
	h.Write([]byte{0xff})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(lambdaIdx)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(rep)))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// SweepProgress describes one completed simulation job; see Sweep.Progress.
type SweepProgress struct {
	// Panel is the job's panel; LambdaIdx indexes Panel.Lambdas; Rep is the
	// replication number in [0, Reps).
	Panel     Panel
	LambdaIdx int
	Rep       int
	// Done counts completed simulation jobs sweep-wide, Total the jobs the
	// sweep was launched with.
	Done, Total int
	// Result is the job's simulator output.
	Result sim.Result
}

// Sweep is the parallel sweep engine behind the figure harness: it expands
// (panel x load point x replication) into independent simulation jobs,
// executes them on a bounded worker pool, and pools replications into one
// Point per load point. The zero value runs every job sequentially in the
// calling goroutine's worker with a single replication.
type Sweep struct {
	// Jobs is the worker-pool size; <= 0 means runtime.NumCPU().
	Jobs int
	// Reps is the number of independent simulation replications pooled per
	// load point (distinct derived seeds; see JobSeed); <= 0 means 1.
	Reps int
	// JobTimeout bounds each simulation job; a job exceeding it fails the
	// sweep with an error wrapping context.DeadlineExceeded. 0 means no
	// per-job limit.
	JobTimeout time.Duration
	// Budget is the per-replication simulation budget. Budget.Seed is the
	// base seed every job's seed is derived from.
	Budget SimBudget
	// Model is the registry name of the model variant to sweep (see
	// core.Solvers); empty means DefaultModel. The simulator is configured
	// to match the variant (bidirectional channels for "bidirectional-2d").
	Model string
	// Opts are the analytical model options.
	Opts core.Options
	// Progress, when non-nil, is called serially after every completed
	// simulation job (from worker goroutines, under the engine's lock —
	// keep it light).
	Progress func(SweepProgress)
}

// PanelResult pairs a panel with its swept points.
type PanelResult struct {
	Panel  Panel
	Points []Point
}

// sweepJob identifies one simulation unit: a (panel, load point,
// replication) triple, indexed into the RunPanels inputs.
type sweepJob struct {
	panel, point, rep int
}

// RunPanels sweeps the given panels: the analytical model once per load
// point and Reps simulator replications per point, all on the worker pool.
// Results are assembled in panel/axis order and are bit-identical for any
// worker count. The first job failure cancels the remaining jobs and is
// returned; cancelling ctx aborts the sweep promptly with ctx's error.
func (s Sweep) RunPanels(ctx context.Context, panels []Panel) ([]PanelResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := s.Jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	reps := s.Reps
	if reps <= 0 {
		reps = 1
	}

	total := 0
	simRes := make([][][]sim.Result, len(panels))
	modelVal := make([][]float64, len(panels))
	modelSat := make([][]bool, len(panels))
	for i, p := range panels {
		total += len(p.Lambdas) * reps
		simRes[i] = make([][]sim.Result, len(p.Lambdas))
		for j := range simRes[i] {
			simRes[i][j] = make([]sim.Result, reps)
		}
		modelVal[i] = make([]float64, len(p.Lambdas))
		modelSat[i] = make([]bool, len(p.Lambdas))
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	jobs := make(chan sweepJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if cctx.Err() != nil {
					continue // sweep aborted: drain the queue
				}
				s.runJob(cctx, panels[jb.panel], jb, reps, total,
					simRes, modelVal, modelSat, &mu, &done, fail)
			}
		}()
	}

feed:
	for i, p := range panels {
		for j := range p.Lambdas {
			for r := 0; r < reps; r++ {
				select {
				case jobs <- sweepJob{panel: i, point: j, rep: r}:
				case <-cctx.Done():
					break feed
				}
			}
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := make([]PanelResult, len(panels))
	for i, p := range panels {
		points := make([]Point, len(p.Lambdas))
		for j, lam := range p.Lambdas {
			pt := Point{
				Lambda:         lam,
				Model:          modelVal[i][j],
				ModelSaturated: modelSat[i][j],
			}
			if reps == 1 {
				r := simRes[i][j][0]
				pt.Sim = r.MeanLatency
				pt.SimCI = r.CI95
				pt.SimSaturated = r.Saturated
				pt.SimMeasured = r.Measured
			} else {
				counts := make([]int64, reps)
				means := make([]float64, reps)
				cis := make([]float64, reps)
				for r, res := range simRes[i][j] {
					counts[r], means[r], cis[r] = res.Measured, res.MeanLatency, res.CI95
					pt.SimSaturated = pt.SimSaturated || res.Saturated
				}
				pt.Sim, pt.SimCI, pt.SimMeasured = stats.PooledMean(counts, means, cis)
			}
			points[j] = pt
		}
		out[i] = PanelResult{Panel: p, Points: points}
	}
	return out, nil
}

// runJob executes one (panel, point, rep) unit: the replication-0 job also
// evaluates the analytical model for its point (the model is deterministic,
// so one evaluation per point suffices). Each writes only its own result
// slot; completion counting and the Progress callback serialise on mu.
func (s Sweep) runJob(ctx context.Context, p Panel, jb sweepJob, reps, total int,
	simRes [][][]sim.Result, modelVal [][]float64, modelSat [][]bool,
	mu *sync.Mutex, done *int, fail func(error)) {

	lam := p.Lambdas[jb.point]
	model := s.Model
	if model == "" {
		model = DefaultModel
	}
	if jb.rep == 0 {
		m, err := RunNamedModel(model, p, lam, s.Opts)
		switch {
		case err == nil:
			modelVal[jb.panel][jb.point] = m
		case errors.Is(err, core.ErrSaturated):
			modelVal[jb.panel][jb.point] = math.NaN()
			modelSat[jb.panel][jb.point] = true
		default:
			fail(fmt.Errorf("experiments: model %s lambda=%g: %w", p.ID, lam, err))
			return
		}
	}

	budget := s.Budget
	budget.Seed = JobSeed(s.Budget.Seed, p.ID, jb.point, jb.rep)
	jctx := ctx
	if s.JobTimeout > 0 {
		var jcancel context.CancelFunc
		jctx, jcancel = context.WithTimeout(ctx, s.JobTimeout)
		defer jcancel()
	}
	res, err := RunSimModelContext(jctx, model, p, lam, budget)
	if err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			return // sweep-wide cancellation; the caller reports ctx's error
		}
		fail(fmt.Errorf("experiments: sim %s lambda=%g rep %d (seed %d): %w",
			p.ID, lam, jb.rep, budget.Seed, err))
		return
	}
	simRes[jb.panel][jb.point][jb.rep] = res

	mu.Lock()
	*done++
	if s.Progress != nil {
		s.Progress(SweepProgress{
			Panel: p, LambdaIdx: jb.point, Rep: jb.rep,
			Done: *done, Total: total, Result: res,
		})
	}
	mu.Unlock()
}
