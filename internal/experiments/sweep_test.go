package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"kncube/internal/core"

	"kncube/internal/stats"
)

// sweepTestPanel is small enough for the full model+sim path to run in
// milliseconds while exercising several axis points.
func sweepTestPanel() Panel {
	return Panel{ID: "sweep-test", K: 4, V: 2, Lm: 8, H: 0.3,
		Lambdas: []float64{0.001, 0.002, 0.003}}
}

func sweepTestBudget() SimBudget {
	return SimBudget{WarmupCycles: 1000, MaxCycles: 60000, MinMeasured: 500, Seed: 1}
}

// renderCSV renders panel results to a canonical string for byte-level
// comparison across engine configurations.
func renderCSV(t *testing.T, results []PanelResult) string {
	t.Helper()
	var sb strings.Builder
	for _, pr := range results {
		if err := WriteCSV(&sb, pr.Points); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

func TestSweepBitIdenticalAcrossWorkerCounts(t *testing.T) {
	panels := []Panel{sweepTestPanel()}
	var outputs []string
	for _, jobs := range []int{1, 4, 8} {
		s := Sweep{Jobs: jobs, Budget: sweepTestBudget()}
		res, err := s.RunPanels(context.Background(), panels)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		outputs = append(outputs, renderCSV(t, res))
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Errorf("results differ across worker counts:\njobs=1:\n%sjobs=4:\n%sjobs=8:\n%s",
			outputs[0], outputs[1], outputs[2])
	}
}

func TestSweepMatchesSequentialRunPanel(t *testing.T) {
	p := sweepTestPanel()
	seq, err := RunPanel(p, sweepTestBudget(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep{Jobs: 8, Budget: sweepTestBudget()}.
		RunPanels(context.Background(), []Panel{p})
	if err != nil {
		t.Fatal(err)
	}
	par := res[0].Points
	if len(seq) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("point %d differs: sequential %+v, parallel %+v", i, seq[i], par[i])
		}
	}
}

func TestSweepReplicationsPoolAndStayDeterministic(t *testing.T) {
	panels := []Panel{{ID: "sweep-rep", K: 4, V: 2, Lm: 8, H: 0.3,
		Lambdas: []float64{0.002}}}
	budget := sweepTestBudget()

	single, err := Sweep{Jobs: 1, Reps: 1, Budget: budget}.RunPanels(context.Background(), panels)
	if err != nil {
		t.Fatal(err)
	}
	var pooled []PanelResult
	for _, jobs := range []int{1, 4} {
		res, err := Sweep{Jobs: jobs, Reps: 3, Budget: budget}.RunPanels(context.Background(), panels)
		if err != nil {
			t.Fatal(err)
		}
		if pooled == nil {
			pooled = res
		} else if renderCSV(t, pooled) != renderCSV(t, res) {
			t.Error("pooled results differ across worker counts")
		}
	}
	pt := pooled[0].Points[0]
	if pt.SimMeasured <= single[0].Points[0].SimMeasured {
		t.Errorf("pooled measured %d not above single-rep %d",
			pt.SimMeasured, single[0].Points[0].SimMeasured)
	}
	if pt.Sim <= 0 || pt.SimCI <= 0 {
		t.Errorf("implausible pooled point %+v", pt)
	}
	// Replications must use distinct seeds: identical seeds would make the
	// pooled mean exactly equal each replication mean, which (given CI > 0)
	// distinct streams make overwhelmingly unlikely to the last bit.
	if stats.ApproxEqual(pt.Sim, single[0].Points[0].Sim, 0, 0) {
		t.Error("pooled mean identical to rep-0 mean; replications likely share a seed")
	}
}

func TestSweepCancellation(t *testing.T) {
	// A budget far beyond what could finish quickly: cancellation must cut
	// it short and surface context.Canceled.
	panels := []Panel{{ID: "sweep-cancel", K: 8, V: 2, Lm: 16, H: 0.3,
		Lambdas: []float64{0.001, 0.0012, 0.0014, 0.0016}}}
	budget := SimBudget{WarmupCycles: 1 << 30, MaxCycles: 1 << 40, MinMeasured: 1 << 40, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Sweep{Jobs: 4, Budget: budget}.RunPanels(ctx, panels)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestSweepJobTimeout(t *testing.T) {
	panels := []Panel{{ID: "sweep-timeout", K: 8, V: 2, Lm: 16, H: 0.3,
		Lambdas: []float64{0.001}}}
	budget := SimBudget{WarmupCycles: 1 << 30, MaxCycles: 1 << 40, MinMeasured: 1 << 40, Seed: 1}
	_, err := Sweep{Jobs: 2, JobTimeout: 50 * time.Millisecond, Budget: budget}.
		RunPanels(context.Background(), panels)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSweepProgress(t *testing.T) {
	panels := []Panel{sweepTestPanel()}
	const reps = 2
	var events []SweepProgress
	s := Sweep{Jobs: 4, Reps: reps, Budget: sweepTestBudget(),
		Progress: func(ev SweepProgress) { events = append(events, ev) }}
	if _, err := s.RunPanels(context.Background(), panels); err != nil {
		t.Fatal(err)
	}
	total := len(panels[0].Lambdas) * reps
	if len(events) != total {
		t.Fatalf("%d progress events, want %d", len(events), total)
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Total != total {
			t.Errorf("event Total = %d, want %d", ev.Total, total)
		}
		if ev.Done < 1 || ev.Done > total || seen[ev.Done] {
			t.Errorf("bad or duplicate Done counter %d", ev.Done)
		}
		seen[ev.Done] = true
		if ev.Result.Measured == 0 {
			t.Error("progress event carries empty result")
		}
	}
}

func TestJobSeedDerivation(t *testing.T) {
	// Deterministic: same inputs, same seed.
	if JobSeed(1, "fig1-h20", 0, 0) != JobSeed(1, "fig1-h20", 0, 0) {
		t.Error("JobSeed not deterministic")
	}
	// Distinct across every identity component: enumerate all (base, panel,
	// point, rep) tuples of a realistic sweep and require injectivity.
	seeds := map[int64]string{}
	for base := int64(1); base <= 2; base++ {
		for _, p := range Figures() {
			for j := range p.Lambdas {
				for r := 0; r < 3; r++ {
					name := fmt.Sprintf("base=%d %s point=%d rep=%d", base, p.ID, j, r)
					s := JobSeed(base, p.ID, j, r)
					if prev, dup := seeds[s]; dup {
						t.Errorf("seed collision: %s and %s both map to %d", prev, name, s)
					}
					seeds[s] = name
				}
			}
		}
	}
}

func TestSweepSaturationDetectionUsesErrorsIs(t *testing.T) {
	// A load far beyond the model's saturation point: the sweep must mark
	// the point saturated (via errors.Is against core.ErrSaturated) rather
	// than fail, and the simulator side must still be measured.
	p := Panel{ID: "sweep-sat", K: 4, V: 2, Lm: 8, H: 0.3,
		Lambdas: []float64{0.05}}
	res, err := Sweep{Jobs: 1, Budget: sweepTestBudget()}.
		RunPanels(context.Background(), []Panel{p})
	if err != nil {
		t.Fatal(err)
	}
	pt := res[0].Points[0]
	if !pt.ModelSaturated {
		t.Errorf("model not marked saturated at extreme load: %+v", pt)
	}
	if pt.SimMeasured == 0 {
		t.Errorf("simulation missing at saturated point: %+v", pt)
	}
}

// The Model field must route both the analytical side and the simulator
// configuration: a bidirectional sweep produces different model values AND
// different simulation samples (bidirectional channels halve path lengths)
// than the default, from the same panel and seeds.
func TestSweepModelSelection(t *testing.T) {
	panels := []Panel{sweepTestPanel()}
	def, err := Sweep{Jobs: 2, Budget: sweepTestBudget()}.
		RunPanels(context.Background(), panels)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := Sweep{Jobs: 2, Budget: sweepTestBudget(), Model: "bidirectional-2d"}.
		RunPanels(context.Background(), panels)
	if err != nil {
		t.Fatal(err)
	}
	for i := range def[0].Points {
		d, b := def[0].Points[i], bi[0].Points[i]
		if !d.ModelSaturated && !b.ModelSaturated && stats.ApproxEqual(d.Model, b.Model, 0, 0) {
			t.Errorf("point %d: bidirectional model latency %.4f equals default — Model field ignored", i, d.Model)
		}
		if stats.ApproxEqual(d.Sim, b.Sim, 0, 0) {
			t.Errorf("point %d: bidirectional sim latency %.4f equals default — simulator not reconfigured", i, d.Sim)
		}
	}
}

// An unknown model name fails the sweep with the registry's error instead
// of being misreported as saturation.
func TestSweepUnknownModel(t *testing.T) {
	_, err := Sweep{Budget: sweepTestBudget(), Model: "no-such-model"}.
		RunPanels(context.Background(), []Panel{sweepTestPanel()})
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown-solver error, got %v", err)
	}
}

// RunNamedModel agrees with the typed core entry points for every 2-D
// variant a panel can express.
func TestRunNamedModelAgreesWithTyped(t *testing.T) {
	p := sweepTestPanel()
	lam := p.Lambdas[0]

	named, err := RunNamedModel("bidirectional-2d", p, lam, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	typed, err := core.SolveBidirectional(core.Params{K: p.K, V: p.V, Lm: p.Lm, H: p.H, Lambda: lam}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(named, typed.Latency, 0, 0) {
		t.Errorf("RunNamedModel(bidirectional-2d) = %g, SolveBidirectional = %g", named, typed.Latency)
	}

	def, err := RunModel(p, lam, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := RunNamedModel(DefaultModel, p, lam, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(def, hs, 0, 0) {
		t.Errorf("RunModel = %g, RunNamedModel(%s) = %g", def, DefaultModel, hs)
	}
}
