package experiments

import (
	"context"
	"os"
	"strings"
	"testing"
)

// TestSweepReproducesPublishedCSV regenerates the fig1-h20 reference table
// through the full sweep engine — prepared analytical solves, derived
// simulation seeds, CSV rendering — and requires the output to match the
// committed results/fig1-h20.csv byte for byte. This is the end-to-end
// reproducibility contract: any change to solver arithmetic, seed
// derivation, or formatting shows up here.
func TestSweepReproducesPublishedCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full-budget sweep of fig1-h20 (~10 s): skipped with -short")
	}
	want, err := os.ReadFile("../../results/fig1-h20.csv")
	if err != nil {
		t.Skipf("published CSV not available: %v", err)
	}
	p, err := PanelByID("fig1-h20")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep{Budget: DefaultSimBudget()}.RunPanels(context.Background(), []Panel{p})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, res[0].Points); err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("regenerated fig1-h20.csv differs from the published file:\ngot:\n%s\nwant:\n%s",
			sb.String(), want)
	}
}
