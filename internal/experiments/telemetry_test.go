package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"kncube/internal/core"
	"kncube/internal/fixpoint"
	"kncube/internal/stats"
	"kncube/internal/telemetry"
	"kncube/internal/telemetry/span"
)

// TestSweepManifestRoundTrip runs a real sweep with a manifest writer and
// checks the JSONL records identify every job and agree with the sweep's
// own results.
func TestSweepManifestRoundTrip(t *testing.T) {
	p := sweepTestPanel()
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	s := Sweep{
		Jobs: 4, Reps: 2, Budget: sweepTestBudget(),
		Manifest: telemetry.NewManifestWriter(&buf),
		Metrics:  reg,
	}
	res, err := s.RunPanels(context.Background(), []Panel{p})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJSONL[RunManifest](&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantJobs := len(p.Lambdas) * 2
	if len(recs) != wantJobs {
		t.Fatalf("got %d manifest records, want %d", len(recs), wantJobs)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if r.Panel != p.ID || r.Model != DefaultModel {
			t.Errorf("record identity %+v", r)
		}
		if r.Seed != JobSeed(s.Budget.Seed, p.ID, r.LambdaIdx, r.Rep) {
			t.Errorf("record seed %d does not match JobSeed for (%d, %d)",
				r.Seed, r.LambdaIdx, r.Rep)
		}
		if r.Outcome != "ok" && r.Outcome != "saturated" {
			t.Errorf("outcome %q for lambda_idx=%d rep=%d", r.Outcome, r.LambdaIdx, r.Rep)
		}
		if r.WallSeconds <= 0 || r.Cycles <= 0 {
			t.Errorf("degenerate timing in %+v", r)
		}
		key := fmt.Sprintf("%d/%d", r.LambdaIdx, r.Rep)
		if seen[key] {
			t.Errorf("duplicate record %s", key)
		}
		seen[key] = true
		if r.Rep == 0 {
			if r.ModelOutcome != "ok" {
				t.Errorf("model outcome %q at lambda_idx %d", r.ModelOutcome, r.LambdaIdx)
			}
			if r.ModelIterations <= 0 {
				t.Errorf("model iterations %d at lambda_idx %d", r.ModelIterations, r.LambdaIdx)
			}
			if !stats.ApproxEqual(r.ModelLatency, res[0].Points[r.LambdaIdx].Model, 1e-9, 1e-12) {
				t.Errorf("manifest model latency %v != sweep point %v",
					r.ModelLatency, res[0].Points[r.LambdaIdx].Model)
			}
		} else if r.ModelOutcome != "" {
			t.Errorf("rep %d carries model fields: %+v", r.Rep, r)
		}
	}
	// Sweep metrics agree with the manifest.
	var okCount int64
	for _, r := range recs {
		if r.Outcome == "ok" {
			okCount++
		}
	}
	if got := reg.Counter("khs_sweep_jobs_total", "", telemetry.Labels{"outcome": "ok"}).Value(); got != okCount {
		t.Errorf("jobs counter = %d, manifest ok records = %d", got, okCount)
	}
	if got := reg.Histogram("khs_sweep_job_seconds", "", nil, nil).Count(); got != int64(len(recs)) {
		t.Errorf("job-seconds histogram count = %d, manifest records = %d", got, len(recs))
	}
}

// TestSweepManifestCarriesSpanIDs runs a sweep under a request span (the
// khs-serve job path) and checks the correlation contract both ways: every
// manifest record names the trace and the exact sweep.sim span that
// produced it, and every sweep.sim span in the exported trace is named by
// exactly one record. A sweep without an upstream span writes no ids.
func TestSweepManifestCarriesSpanIDs(t *testing.T) {
	p := sweepTestPanel()
	ring := span.NewRingExporter(4, nil)
	tr := span.New(span.Config{Exporter: ring, Seed: 7})
	ctx, root := tr.Start(context.Background(), "test.sweep")

	var buf bytes.Buffer
	s := Sweep{Jobs: 2, Reps: 2, Budget: sweepTestBudget(),
		Manifest: telemetry.NewManifestWriter(&buf)}
	if _, err := s.RunPanels(ctx, []Panel{p}); err != nil {
		t.Fatal(err)
	}
	root.End()

	recs, err := telemetry.ReadJSONL[RunManifest](&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := ring.Trace(root.TraceID().String())
	if spans == nil {
		t.Fatal("sweep trace was not exported")
	}
	simSpans := map[string]span.Record{}
	for _, r := range spans {
		if r.Name == "sweep.sim" {
			simSpans[r.SpanID] = r
		}
	}
	if len(simSpans) != len(recs) {
		t.Fatalf("%d sweep.sim spans for %d manifest records", len(simSpans), len(recs))
	}
	for _, r := range recs {
		if r.TraceID != root.TraceID().String() {
			t.Errorf("record (%d,%d) trace id %q, want %s", r.LambdaIdx, r.Rep, r.TraceID, root.TraceID())
		}
		sp, ok := simSpans[r.SpanID]
		if !ok {
			t.Errorf("record (%d,%d) names span %q, absent from the trace", r.LambdaIdx, r.Rep, r.SpanID)
			continue
		}
		if got := fmt.Sprint(sp.Attrs["lambda_idx"]); got != fmt.Sprint(r.LambdaIdx) {
			t.Errorf("span %s lambda_idx = %s, record says %d", r.SpanID, got, r.LambdaIdx)
		}
		if got := fmt.Sprint(sp.Attrs["rep"]); got != fmt.Sprint(r.Rep) {
			t.Errorf("span %s rep = %s, record says %d", r.SpanID, got, r.Rep)
		}
		if got := fmt.Sprint(sp.Attrs["seed"]); got != fmt.Sprint(r.Seed) {
			t.Errorf("span %s seed = %s, record says %d", r.SpanID, got, r.Seed)
		}
		if got := fmt.Sprint(sp.Attrs["outcome"]); got != r.Outcome {
			t.Errorf("span %s outcome = %s, record says %q", r.SpanID, got, r.Outcome)
		}
	}

	// The ids are span-scoped, not unconditional: a plain CLI sweep (no
	// span in ctx) must not invent them.
	var plain bytes.Buffer
	s2 := Sweep{Jobs: 1, Budget: sweepTestBudget(),
		Manifest: telemetry.NewManifestWriter(&plain)}
	p2 := p
	p2.Lambdas = p2.Lambdas[:1]
	if _, err := s2.RunPanels(context.Background(), []Panel{p2}); err != nil {
		t.Fatal(err)
	}
	plainRecs, err := telemetry.ReadJSONL[RunManifest](&plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plainRecs {
		if r.TraceID != "" || r.SpanID != "" {
			t.Errorf("untraced sweep wrote span ids: %+v", r)
		}
	}
}

// TestSweepTraceSinkMatchesConvergence wires a DirTraceSink through a sweep
// and checks each trace file's last record agrees with the solver's own
// Convergence summary — the invariant the fixpoint package guarantees.
func TestSweepTraceSinkMatchesConvergence(t *testing.T) {
	p := sweepTestPanel()
	dir := t.TempDir()
	sink, err := telemetry.NewDirTraceSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s := Sweep{
		Jobs: 2, Budget: sweepTestBudget(),
		TraceSink: sink,
		Manifest:  telemetry.NewManifestWriter(&buf),
	}
	if _, err := s.RunPanels(context.Background(), []Panel{p}); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJSONL[RunManifest](&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		label := fmt.Sprintf("%s-lam%02d", p.ID, r.LambdaIdx)
		trace, err := telemetry.ReadConvergenceTrace(sink.Path(label))
		if err != nil {
			t.Fatalf("trace %s: %v", label, err)
		}
		if len(trace) == 0 {
			t.Fatalf("empty trace for %s", label)
		}
		last := trace[len(trace)-1]
		if last.Iteration != r.ModelIterations {
			t.Errorf("%s: trace ends at iteration %d, manifest records %d",
				label, last.Iteration, r.ModelIterations)
		}
		if last.Solve != label {
			t.Errorf("%s: trace labelled %q", label, last.Solve)
		}
		// Direct solve cross-check: same panel point, fresh options.
		res, err := SolveNamedModel(DefaultModel, p, p.Lambdas[r.LambdaIdx], core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if last.Iteration != res.Convergence.Iterations {
			t.Errorf("%s: trace iterations %d != Convergence.Iterations %d",
				label, last.Iteration, res.Convergence.Iterations)
		}
		if !stats.ApproxEqual(last.Residual, res.Convergence.Residual, 1e-12, 1e-9) {
			t.Errorf("%s: trace residual %v != Convergence.Residual %v",
				label, last.Residual, res.Convergence.Residual)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(p.Lambdas) {
		t.Errorf("%d trace files for %d load points", len(entries), len(p.Lambdas))
	}
}

// TestSweepTraceSinkPreservesCallerTrace checks the sweep chains, rather
// than replaces, a caller-supplied fixpoint trace callback.
func TestSweepTraceSinkPreservesCallerTrace(t *testing.T) {
	p := sweepTestPanel()
	p.Lambdas = p.Lambdas[:1]
	callerRecords := 0
	opts := core.Options{}
	opts.FixPoint.Trace = func(fixpoint.TraceRecord) { callerRecords++ }
	var buf bytes.Buffer
	s := Sweep{Jobs: 1, Budget: sweepTestBudget(), Opts: opts,
		TraceSink: telemetry.NewStreamTraceSink(&buf)}
	if _, err := s.RunPanels(context.Background(), []Panel{p}); err != nil {
		t.Fatal(err)
	}
	sinkRecords, err := telemetry.ReadJSONL[telemetry.ConvergenceRecord](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if callerRecords == 0 {
		t.Fatalf("caller trace was dropped")
	}
	if callerRecords != len(sinkRecords) {
		t.Errorf("caller saw %d records, sink %d", callerRecords, len(sinkRecords))
	}
}
