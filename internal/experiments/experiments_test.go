package experiments

import (
	"math"
	"strings"
	"testing"

	"kncube/internal/core"

	"kncube/internal/stats"
)

func TestFiguresCoverPaperEvaluation(t *testing.T) {
	panels := Figures()
	if len(panels) != 6 {
		t.Fatalf("%d panels, want 6 (two figures x three h values)", len(panels))
	}
	seen := map[string]bool{}
	for _, p := range panels {
		if seen[p.ID] {
			t.Errorf("duplicate panel id %s", p.ID)
		}
		seen[p.ID] = true
		if p.K != 16 || p.V < 2 {
			t.Errorf("%s: K=%d V=%d, want the paper's N=256, V>=2", p.ID, p.K, p.V)
		}
		if p.Lm != 32 && p.Lm != 100 {
			t.Errorf("%s: Lm=%d, want 32 or 100", p.ID, p.Lm)
		}
		if !stats.ApproxEqual(p.H, 0.2, 0, 0) && !stats.ApproxEqual(p.H, 0.4, 0, 0) && !stats.ApproxEqual(p.H, 0.7, 0, 0) {
			t.Errorf("%s: H=%v, want 0.2/0.4/0.7", p.ID, p.H)
		}
		if len(p.Lambdas) < 5 {
			t.Errorf("%s: only %d axis points", p.ID, len(p.Lambdas))
		}
		for i := 1; i < len(p.Lambdas); i++ {
			if p.Lambdas[i] <= p.Lambdas[i-1] {
				t.Errorf("%s: axis not increasing", p.ID)
			}
		}
	}
}

func TestFigureAxesMatchPaper(t *testing.T) {
	// The last axis point must match the paper's plotted range.
	want := map[string]float64{
		"fig1-h20": 6e-4, "fig1-h40": 4e-4, "fig1-h70": 2e-4,
		"fig2-h20": 2e-4, "fig2-h40": 1.2e-4, "fig2-h70": 7e-5,
	}
	for _, p := range Figures() {
		if max := p.Lambdas[len(p.Lambdas)-1]; math.Abs(max-want[p.ID]) > 1e-12 {
			t.Errorf("%s: axis max %v, want %v", p.ID, max, want[p.ID])
		}
	}
}

func TestPanelByID(t *testing.T) {
	p, err := PanelByID("fig2-h40")
	if err != nil || p.Lm != 100 || !stats.ApproxEqual(p.H, 0.4, 0, 0) {
		t.Errorf("PanelByID: %+v, %v", p, err)
	}
	if _, err := PanelByID("nope"); err == nil {
		t.Error("unknown panel accepted")
	}
}

func TestRunModelAndSaturation(t *testing.T) {
	p, _ := PanelByID("fig1-h20")
	lat, err := RunModel(p, p.Lambdas[0], core.Options{})
	if err != nil {
		t.Fatalf("RunModel: %v", err)
	}
	if lat < float64(p.Lm) {
		t.Errorf("latency %v below message length", lat)
	}
	sat, err := SaturationPoint(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sat <= p.Lambdas[0] || sat > 2*p.Lambdas[len(p.Lambdas)-1] {
		t.Errorf("saturation %v outside plausible panel range", sat)
	}
}

func TestModelCurveMarksSaturation(t *testing.T) {
	p, _ := PanelByID("fig1-h70")
	pts := ModelCurve(p, core.Options{})
	if len(pts) != len(p.Lambdas) {
		t.Fatalf("%d points", len(pts))
	}
	finite := 0
	for _, pt := range pts {
		if pt.ModelSaturated {
			if !math.IsNaN(pt.Model) {
				t.Error("saturated point has finite model value")
			}
		} else {
			finite++
		}
	}
	if finite == 0 {
		t.Error("no finite model points on the h=70% panel")
	}
}

func TestRunSimSmallPanel(t *testing.T) {
	// A small network keeps the test fast while exercising the full path.
	p := Panel{ID: "test", K: 4, V: 2, Lm: 8, H: 0.3, Lambdas: []float64{0.002}}
	res, err := RunSim(p, 0.002, SimBudget{WarmupCycles: 2000, MaxCycles: 100000, MinMeasured: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured < 1000 || res.MeanLatency < 8 {
		t.Errorf("implausible sim result %+v", res)
	}
}

func TestRunPanelEndToEnd(t *testing.T) {
	p := Panel{ID: "test", K: 4, V: 2, Lm: 8, H: 0.3,
		Lambdas: []float64{0.001, 0.003}}
	pts, err := RunPanel(p, SimBudget{WarmupCycles: 1000, MaxCycles: 60000, MinMeasured: 500, Seed: 1},
		core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, pt := range pts {
		if pt.Sim <= 0 {
			t.Errorf("missing sim value at %v", pt.Lambda)
		}
		if !pt.ModelSaturated && pt.Model <= 0 {
			t.Errorf("missing model value at %v", pt.Lambda)
		}
	}
	if pts[1].Sim <= pts[0].Sim {
		t.Errorf("sim latency not increasing: %v then %v", pts[0].Sim, pts[1].Sim)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	pts := []Point{
		{Lambda: 1e-4, Model: 50.5, Sim: 49.9, SimCI: 0.4, SimMeasured: 1000},
		{Lambda: 2e-4, Model: math.NaN(), ModelSaturated: true, Sim: 80, SimCI: 2, SimSaturated: true, SimMeasured: 900},
	}
	if err := WriteCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "lambda,model") {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.Contains(lines[2], ",true,") {
		t.Errorf("saturation flags missing: %q", lines[2])
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	pts := []Point{
		{Lambda: 1e-4, Model: 50.5, Sim: 49.9, SimCI: 0.4},
		{Lambda: 2e-4, Model: math.NaN(), ModelSaturated: true, Sim: 80, SimCI: 2, SimSaturated: true},
	}
	if err := WriteTable(&sb, "panel", pts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "saturated") || !strings.Contains(out, "50.5") {
		t.Errorf("table missing content:\n%s", out)
	}
}

func TestAsciiPlot(t *testing.T) {
	var sb strings.Builder
	pts := []Point{
		{Lambda: 1e-4, Model: 50, Sim: 49},
		{Lambda: 2e-4, Model: 60, Sim: 58},
		{Lambda: 3e-4, Model: math.NaN(), ModelSaturated: true, Sim: 200},
	}
	if err := AsciiPlot(&sb, "test plot", pts, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("plot missing marks:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 11 {
		t.Errorf("plot too short: %d lines", lines)
	}
}

func TestAsciiPlotEmpty(t *testing.T) {
	var sb strings.Builder
	if err := AsciiPlot(&sb, "empty", nil, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no finite points") {
		t.Errorf("unexpected output %q", sb.String())
	}
}

func TestShapeReport(t *testing.T) {
	zero := 50.0
	pts := []Point{
		{Lambda: 1e-4, Model: 52, Sim: 50},
		{Lambda: 2e-4, Model: 60, Sim: 58},
		{Lambda: 3e-4, Model: math.NaN(), ModelSaturated: true, Sim: 90},
		{Lambda: 4e-4, Model: math.NaN(), ModelSaturated: true, Sim: 500},
	}
	rep := Shape(pts, zero)
	if rep.LightPoints != 2 {
		t.Errorf("light points %d, want 2", rep.LightPoints)
	}
	if !rep.ModelSaturates || !stats.ApproxEqual(rep.ModelSaturation, 3e-4, 0, 0) {
		t.Errorf("model saturation %v (saturates=%v)", rep.ModelSaturation, rep.ModelSaturates)
	}
	if !rep.SimHasKnee || !stats.ApproxEqual(rep.SimKnee, 4e-4, 0, 0) {
		t.Errorf("sim knee %v (hasKnee=%v)", rep.SimKnee, rep.SimHasKnee)
	}
	if rep.MeanRelErrLight <= 0 || rep.MaxRelErrLight < rep.MeanRelErrLight {
		t.Errorf("rel errors %v %v", rep.MeanRelErrLight, rep.MaxRelErrLight)
	}
}

func TestShapeReportNoLightPoints(t *testing.T) {
	rep := Shape([]Point{{Lambda: 1, Model: math.NaN(), ModelSaturated: true, Sim: 1000}}, 50)
	if rep.LightPoints != 0 || !stats.IsZero(rep.MeanRelErrLight) {
		t.Errorf("%+v", rep)
	}
}

func TestShapeReportNoEvents(t *testing.T) {
	// Neither side blows up: the positions must be NaN (not a value a real
	// first-point event could produce) and the flags false.
	pts := []Point{
		{Lambda: 1e-4, Model: 52, Sim: 50},
		{Lambda: 2e-4, Model: 60, Sim: 58},
	}
	rep := Shape(pts, 50)
	if rep.ModelSaturates || !math.IsNaN(rep.ModelSaturation) {
		t.Errorf("phantom model saturation: %v (saturates=%v)", rep.ModelSaturation, rep.ModelSaturates)
	}
	if rep.SimHasKnee || !math.IsNaN(rep.SimKnee) {
		t.Errorf("phantom sim knee: %v (hasKnee=%v)", rep.SimKnee, rep.SimHasKnee)
	}
}

func TestShapeReportFirstPointEvents(t *testing.T) {
	// Events on the very first axis point must be distinguishable from
	// "never happened" — the regression the 0-sentinel caused.
	pts := []Point{{Lambda: 1e-4, Model: math.NaN(), ModelSaturated: true, Sim: 900}}
	rep := Shape(pts, 50)
	if !rep.ModelSaturates || !stats.ApproxEqual(rep.ModelSaturation, 1e-4, 0, 0) {
		t.Errorf("first-point model saturation missed: %+v", rep)
	}
	if !rep.SimHasKnee || !stats.ApproxEqual(rep.SimKnee, 1e-4, 0, 0) {
		t.Errorf("first-point sim knee missed: %+v", rep)
	}
}
