// Package experiments regenerates the paper's evaluation: every panel of
// Figures 1 and 2 (model-vs-simulation latency curves), the ablation studies
// listed in DESIGN.md, and the sweep/rendering machinery they share.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"kncube/internal/core"
	"kncube/internal/sim"
	"kncube/internal/stats"
	"kncube/internal/topology"
	"kncube/internal/traffic"
)

// Panel describes one figure panel: a latency-vs-load curve at fixed
// network parameters, reproducing the paper's axes.
type Panel struct {
	// ID names the experiment, e.g. "fig1-h20".
	ID string
	// Figure and Label locate it in the paper ("Figure 1", "h=20%").
	Figure, Label string
	// K, V, Lm, H parameterise the network (n = 2 throughout, N = K²).
	K, V, Lm int
	H        float64
	// Lambdas is the traffic axis in messages/node/cycle.
	Lambdas []float64
}

// Figures returns the paper's six validation panels. Axis ranges follow the
// figures: Lm = 32 flits with h ∈ {20, 40, 70}% (Figure 1) and Lm = 100
// flits with the same h values (Figure 2); N = 256 nodes (k = 16). The
// paper does not state V; V = 2 is the minimum satisfying assumption (vi)
// and the value its companion models [12, 21] validate with.
func Figures() []Panel {
	axis := func(max float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = max * float64(i+1) / float64(n)
		}
		return out
	}
	return []Panel{
		{ID: "fig1-h20", Figure: "Figure 1", Label: "h=20%, Lm=32",
			K: 16, V: 2, Lm: 32, H: 0.2, Lambdas: axis(6e-4, 8)},
		{ID: "fig1-h40", Figure: "Figure 1", Label: "h=40%, Lm=32",
			K: 16, V: 2, Lm: 32, H: 0.4, Lambdas: axis(4e-4, 8)},
		{ID: "fig1-h70", Figure: "Figure 1", Label: "h=70%, Lm=32",
			K: 16, V: 2, Lm: 32, H: 0.7, Lambdas: axis(2e-4, 8)},
		{ID: "fig2-h20", Figure: "Figure 2", Label: "h=20%, Lm=100",
			K: 16, V: 2, Lm: 100, H: 0.2, Lambdas: axis(2e-4, 8)},
		{ID: "fig2-h40", Figure: "Figure 2", Label: "h=40%, Lm=100",
			K: 16, V: 2, Lm: 100, H: 0.4, Lambdas: axis(1.2e-4, 8)},
		{ID: "fig2-h70", Figure: "Figure 2", Label: "h=70%, Lm=100",
			K: 16, V: 2, Lm: 100, H: 0.7, Lambdas: axis(7e-5, 8)},
	}
}

// PanelByID returns the named panel from Figures.
func PanelByID(id string) (Panel, error) {
	for _, p := range Figures() {
		if p.ID == id {
			return p, nil
		}
	}
	return Panel{}, fmt.Errorf("experiments: unknown panel %q", id)
}

// Point is one sweep sample: the model's prediction and the simulator's
// measurement at one offered load.
type Point struct {
	Lambda float64
	// Model is the analytical latency; NaN when the model reports
	// saturation (ModelSaturated true).
	Model          float64
	ModelSaturated bool
	// Sim is the simulated mean latency with CI95 half-width; SimSaturated
	// marks runs whose backlog kept growing (the sample then reflects a
	// lower bound, as in the paper's figures near saturation).
	Sim          float64
	SimCI        float64
	SimSaturated bool
	SimMeasured  int64
}

// SimBudget bounds the simulation effort per point.
type SimBudget struct {
	WarmupCycles int64
	MaxCycles    int64
	MinMeasured  int64
	Seed         int64
}

// DefaultSimBudget returns the budget used by the benchmark harness: enough
// for stable means at light and moderate load on N = 256 networks while
// keeping a full panel affordable.
func DefaultSimBudget() SimBudget {
	return SimBudget{WarmupCycles: 30000, MaxCycles: 600000, MinMeasured: 4000, Seed: 1}
}

// DefaultModel is the registry name of the paper's primary model, used
// wherever a solver name is not given explicitly.
const DefaultModel = "hotspot-2d"

// RunModel evaluates the default analytical model for one panel point.
func RunModel(p Panel, lambda float64, opts core.Options) (float64, error) {
	return RunNamedModel(DefaultModel, p, lambda, opts)
}

// RunNamedModel evaluates the named model variant (a core registry name;
// see core.Solvers) for one panel point. Panels describe 2-D tori, so the
// spec passes Dims = 2; variants that cannot represent a panel (e.g.
// "hypercube" with K = 16, or "uniform" with H > 0) fail with the
// factory's error.
func RunNamedModel(model string, p Panel, lambda float64, opts core.Options) (float64, error) {
	res, err := SolveNamedModel(model, p, lambda, opts)
	if err != nil {
		return math.NaN(), err
	}
	return res.Latency, nil
}

// SolveNamedModel is RunNamedModel returning the full solve result —
// latency decomposition and convergence diagnostics — for callers that
// record manifests or traces. On error (including core.ErrSaturated) the
// result is nil.
func SolveNamedModel(model string, p Panel, lambda float64, opts core.Options) (*core.SolveResult, error) {
	return core.Solve(model, core.Spec{
		K: p.K, Dims: 2, V: p.V, Lm: p.Lm, H: p.H, Lambda: lambda,
	}, opts)
}

// PrepareNamedModel validates and prepares the named variant once for a
// panel's topology shape so the whole λ axis can be re-solved through the
// returned core.PreparedSolver without repeating the spec-invariant setup.
// Cold re-solves are bit-identical to SolveNamedModel at the same λ.
func PrepareNamedModel(model string, p Panel, lambda float64, opts core.Options) (*core.PreparedSolver, error) {
	return core.Prepare(model, core.Spec{
		K: p.K, Dims: 2, V: p.V, Lm: p.Lm, H: p.H, Lambda: lambda,
	}, opts)
}

// simBidirectional maps a model-variant name to the simulator channel
// configuration it is validated against.
func simBidirectional(model string) bool { return model == "bidirectional-2d" }

// RunSim measures one panel point with the flit-level simulator. The hot
// node is placed at the centre of the torus (its location is immaterial on
// a torus; tests verify the symmetry).
func RunSim(p Panel, lambda float64, budget SimBudget) (sim.Result, error) {
	//lint:ignore ctxflow compat wrapper for pre-context callers; new code uses RunSimContext
	return RunSimContext(context.Background(), p, lambda, budget)
}

// RunSimContext is RunSim under a context: the run returns the context's
// error promptly after cancellation or deadline expiry.
func RunSimContext(ctx context.Context, p Panel, lambda float64, budget SimBudget) (sim.Result, error) {
	return RunSimModelContext(ctx, DefaultModel, p, lambda, budget)
}

// RunSimModelContext is RunSimContext with the simulator configured for the
// named model variant: bidirectional channels for "bidirectional-2d",
// unidirectional otherwise.
func RunSimModelContext(ctx context.Context, model string, p Panel, lambda float64, budget SimBudget) (sim.Result, error) {
	cube, err := topology.New(p.K, 2)
	if err != nil {
		return sim.Result{}, err
	}
	hot := cube.FromCoords([]int{p.K / 2, p.K / 2})
	pattern, err := traffic.NewHotSpot(cube, hot, p.H)
	if err != nil {
		return sim.Result{}, err
	}
	nw, err := sim.New(sim.Config{
		K: p.K, Dims: 2, VCs: p.V, MsgLen: p.Lm,
		Lambda: lambda, Pattern: pattern, Seed: budget.Seed,
		Bidirectional: simBidirectional(model),
	})
	if err != nil {
		return sim.Result{}, err
	}
	return nw.Run(sim.RunOptions{
		Ctx:          ctx,
		WarmupCycles: budget.WarmupCycles,
		MaxCycles:    budget.MaxCycles,
		MinMeasured:  budget.MinMeasured,
	})
}

// RunPanel sweeps a panel sequentially: the analytical model and the
// simulator at every axis point. It is a thin wrapper over the Sweep engine
// with one worker and one replication; each point simulates under its own
// seed derived from budget.Seed (see JobSeed), so the points' RNG streams
// are independent rather than correlated copies of one stream.
func RunPanel(p Panel, budget SimBudget, opts core.Options) ([]Point, error) {
	res, err := Sweep{Jobs: 1, Reps: 1, Budget: budget, Opts: opts}.
		//lint:ignore ctxflow compat wrapper for pre-context callers; new code uses RunPanels
		RunPanels(context.Background(), []Panel{p})
	if err != nil {
		return nil, err
	}
	return res[0].Points, nil
}

// ModelCurve evaluates only the analytical side of a panel (cheap; used by
// examples and the saturation studies).
func ModelCurve(p Panel, opts core.Options) []Point {
	return NamedModelCurve(DefaultModel, p, opts)
}

// NamedModelCurve is ModelCurve for a specific model variant.
func NamedModelCurve(model string, p Panel, opts core.Options) []Point {
	points := make([]Point, 0, len(p.Lambdas))
	for _, lam := range p.Lambdas {
		pt := Point{Lambda: lam}
		m, err := RunNamedModel(model, p, lam, opts)
		if err != nil {
			pt.Model = math.NaN()
			pt.ModelSaturated = true
		} else {
			pt.Model = m
		}
		points = append(points, pt)
	}
	return points
}

// SaturationPoint locates the model's saturation load for a panel's
// parameters by bisection.
func SaturationPoint(p Panel, opts core.Options) (float64, error) {
	return NamedSaturationPoint(DefaultModel, p, opts)
}

// NamedSaturationPoint is SaturationPoint for a specific model variant. A
// spec the variant rejects outright (rather than saturating) surfaces as
// the bracketing error.
func NamedSaturationPoint(model string, p Panel, opts core.Options) (float64, error) {
	return core.SaturationLambda(func(lam float64) error {
		_, err := RunNamedModel(model, p, lam, opts)
		return err
	}, 1e-7, 0, 1e-3)
}

// WriteCSV renders points as CSV with a header row.
func WriteCSV(w io.Writer, points []Point) error {
	if _, err := fmt.Fprintln(w, "lambda,model,model_saturated,sim,sim_ci95,sim_saturated,sim_measured"); err != nil {
		return err
	}
	for _, pt := range points {
		model := fmt.Sprintf("%.4f", pt.Model)
		if pt.ModelSaturated {
			model = ""
		}
		if _, err := fmt.Fprintf(w, "%.6g,%s,%v,%.4f,%.4f,%v,%d\n",
			pt.Lambda, model, pt.ModelSaturated, pt.Sim, pt.SimCI,
			pt.SimSaturated, pt.SimMeasured); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders points as an aligned text table in the style of the
// paper's figure data.
func WriteTable(w io.Writer, title string, points []Point) error {
	if _, err := fmt.Fprintf(w, "%s\n%-12s %-12s %-18s\n", title, "traffic", "model", "simulation"); err != nil {
		return err
	}
	for _, pt := range points {
		model := fmt.Sprintf("%12.1f", pt.Model)
		if pt.ModelSaturated {
			model = "   saturated"
		}
		simNote := ""
		if pt.SimSaturated {
			simNote = " (saturated)"
		}
		if _, err := fmt.Fprintf(w, "%-12.6g %s %12.1f ±%.1f%s\n",
			pt.Lambda, model, pt.Sim, pt.SimCI, simNote); err != nil {
			return err
		}
	}
	return nil
}

// AsciiPlot draws a crude latency-vs-load plot (model curve `*`, simulation
// `o`) for terminal inspection, mirroring the paper's figure layout.
func AsciiPlot(w io.Writer, title string, points []Point, width, height int) error {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	maxLat, maxLam := 0.0, 0.0
	for _, pt := range points {
		if !pt.ModelSaturated && pt.Model > maxLat {
			maxLat = pt.Model
		}
		if pt.Sim > maxLat {
			maxLat = pt.Sim
		}
		if pt.Lambda > maxLam {
			maxLam = pt.Lambda
		}
	}
	if stats.IsZero(maxLat) || stats.IsZero(maxLam) {
		_, err := fmt.Fprintf(w, "%s: no finite points\n", title)
		return err
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	place := func(lam, lat float64, ch byte) {
		if math.IsNaN(lat) {
			return
		}
		x := int(lam / maxLam * float64(width-1))
		y := height - 1 - int(lat/maxLat*float64(height-1))
		if x >= 0 && x < width && y >= 0 && y < height {
			if grid[y][x] != ' ' && grid[y][x] != ch {
				grid[y][x] = '#' // overlap
			} else {
				grid[y][x] = ch
			}
		}
	}
	for _, pt := range points {
		if !pt.ModelSaturated {
			place(pt.Lambda, pt.Model, '*')
		}
		place(pt.Lambda, pt.Sim, 'o')
	}
	if _, err := fmt.Fprintf(w, "%s  (latency 0..%.0f cycles, traffic 0..%.3g; * model, o simulation)\n",
		title, maxLat, maxLam); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "|%s\n", row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width))
	return err
}

// ShapeReport compares the model curve against simulation points the way
// the paper's Section 4 discusses its figures: agreement at light and
// moderate load, divergence allowed near saturation.
type ShapeReport struct {
	// MeanRelErrLight is the mean |model-sim|/sim over the points whose
	// simulated latency is below twice the zero-load latency.
	MeanRelErrLight float64
	// MaxRelErrLight is the worst such point.
	MaxRelErrLight float64
	// LightPoints counts them.
	LightPoints int
	// ModelSaturation and SimKnee report where each side blows up: the
	// first lambda at which the model saturates, and the first lambda at
	// which the simulated latency exceeds 4x zero-load. Both are NaN when
	// the event never happens — a real value always marks a genuine event,
	// even one on the first axis point (a 0 sentinel could not tell the
	// two apart). ModelSaturates and SimHasKnee carry the same distinction
	// as booleans.
	ModelSaturation float64
	SimKnee         float64
	ModelSaturates  bool
	SimHasKnee      bool
}

// Shape summarises model-vs-sim agreement for a panel's points; zeroLoad is
// the analytic zero-load latency used to split light from heavy load.
func Shape(points []Point, zeroLoad float64) ShapeReport {
	rep := ShapeReport{ModelSaturation: math.NaN(), SimKnee: math.NaN()}
	var rels []float64
	for _, pt := range points {
		if pt.ModelSaturated && !rep.ModelSaturates {
			rep.ModelSaturates = true
			rep.ModelSaturation = pt.Lambda
		}
		if pt.Sim > 4*zeroLoad && !rep.SimHasKnee {
			rep.SimHasKnee = true
			rep.SimKnee = pt.Lambda
		}
		if !pt.ModelSaturated && pt.Sim > 0 && pt.Sim < 2*zeroLoad {
			rels = append(rels, math.Abs(pt.Model-pt.Sim)/pt.Sim)
		}
	}
	rep.LightPoints = len(rels)
	if len(rels) > 0 {
		sort.Float64s(rels)
		sum := 0.0
		for _, r := range rels {
			sum += r
		}
		rep.MeanRelErrLight = sum / float64(len(rels))
		rep.MaxRelErrLight = rels[len(rels)-1]
	}
	return rep
}
