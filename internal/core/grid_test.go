package core

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// gridLambdas is an ascending λ axis from the golden load up to the
// variant's near-saturation point (SolveLambdas requires ascending order;
// sweepLambdas does not guarantee it).
func gridLambdas(name string) []float64 {
	top := nearSatLambda(name)
	return []float64{goldenSpec(name).Lambda, top / 2, 0.75 * top, top}
}

// TestSolveLambdasBitIdenticalToIndependentSolves: the grid helper's core
// contract mirrors SolveBatch's — with warm starts off, each load's result
// is bit-for-bit an independent Solve at that λ.
func TestSolveLambdasBitIdenticalToIndependentSolves(t *testing.T) {
	for _, name := range Solvers() {
		shape := goldenSpec(name)
		lams := gridLambdas(name)
		items, err := SolveLambdas(name, shape, lams, GridOptions{})
		if err != nil {
			t.Fatalf("SolveLambdas(%q): %v", name, err)
		}
		if len(items) != len(lams) {
			t.Fatalf("SolveLambdas(%q): %d items for %d loads", name, len(items), len(lams))
		}
		for i, lam := range lams {
			sp := shape
			sp.Lambda = lam
			want, err := Solve(name, sp, Options{})
			if err != nil {
				t.Fatalf("Solve(%q, λ=%g): %v", name, lam, err)
			}
			if items[i].Err != nil {
				t.Errorf("%q load %d: %v", name, i, items[i].Err)
				continue
			}
			if math.Float64bits(items[i].Result.Latency) != math.Float64bits(want.Latency) {
				t.Errorf("%q λ=%g: grid latency %.17g, independent %.17g",
					name, lam, items[i].Result.Latency, want.Latency)
			}
		}
	}
}

// TestSolveLambdasWarmStart: warm-started grid solves agree with cold
// results to within the solve tolerance and never take more iterations.
func TestSolveLambdasWarmStart(t *testing.T) {
	for _, name := range Solvers() {
		shape := goldenSpec(name)
		lams := gridLambdas(name)
		cold, err := SolveLambdas(name, shape, lams, GridOptions{})
		if err != nil {
			t.Fatalf("cold SolveLambdas(%q): %v", name, err)
		}
		warm, err := SolveLambdas(name, shape, lams, GridOptions{
			BatchOptions: BatchOptions{WarmStart: true},
		})
		if err != nil {
			t.Fatalf("warm SolveLambdas(%q): %v", name, err)
		}
		totalCold, totalWarm := 0, 0
		for i := range lams {
			if cold[i].Err != nil || warm[i].Err != nil {
				t.Fatalf("%q load %d: cold err %v, warm err %v", name, i, cold[i].Err, warm[i].Err)
			}
			rel := math.Abs(warm[i].Result.Latency-cold[i].Result.Latency) / cold[i].Result.Latency
			if rel > 1e-6 {
				t.Errorf("%q λ=%g: warm latency %.12g vs cold %.12g (rel %.3g)",
					name, lams[i], warm[i].Result.Latency, cold[i].Result.Latency, rel)
			}
			totalCold += cold[i].Result.Convergence.Iterations
			totalWarm += warm[i].Result.Convergence.Iterations
		}
		if totalWarm > totalCold {
			t.Errorf("%q: warm starts took %d total iterations, cold %d — warm seeding is not helping",
				name, totalWarm, totalCold)
		}
	}
}

// TestSolveLambdasStopAtSaturation: loads beyond the first saturated one
// are marked saturated without being solved, and carry no result.
func TestSolveLambdasStopAtSaturation(t *testing.T) {
	name := "hotspot-2d"
	shape := goldenSpec(name)
	sat := 10 * nearSatLambda(name)
	lams := []float64{goldenSpec(name).Lambda, nearSatLambda(name), sat, 2 * sat, 4 * sat}
	items, err := SolveLambdas(name, shape, lams, GridOptions{
		BatchOptions:     BatchOptions{WarmStart: true},
		StopAtSaturation: true,
	})
	if err != nil {
		t.Fatalf("SolveLambdas: %v", err)
	}
	for i := 0; i < 2; i++ {
		if items[i].Err != nil {
			t.Fatalf("load %d (λ=%g) unexpectedly failed: %v", i, lams[i], items[i].Err)
		}
	}
	if !errors.Is(items[2].Err, ErrSaturated) {
		t.Fatalf("λ=%g: want ErrSaturated, got %v", lams[2], items[2].Err)
	}
	for i := 3; i < len(items); i++ {
		if !errors.Is(items[i].Err, ErrSaturated) {
			t.Errorf("load %d: want ErrSaturated, got %v", i, items[i].Err)
		}
		if items[i].Result != nil {
			t.Errorf("load %d: skipped item carries a result", i)
		}
		// The errors.Is check above already classifies the outcome; this
		// asserts the wording that distinguishes a skipped cell from a
		// solved-and-saturated one.
		//lint:ignore saturationerr asserting the skip wording itself, not classifying the outcome
		if !strings.Contains(items[i].Err.Error(), "beyond the saturation frontier") {
			t.Errorf("load %d: skipped item should say it was skipped, got %q", i, items[i].Err)
		}
	}
}

// TestSolveLambdasRejectsBadAxis: empty and non-ascending axes are
// structural errors attributed to the lambda field.
func TestSolveLambdasRejectsBadAxis(t *testing.T) {
	shape := goldenSpec("hotspot-2d")
	for _, tc := range []struct {
		name string
		lams []float64
	}{
		{"empty", nil},
		{"descending", []float64{2e-4, 1e-4}},
		{"duplicate", []float64{1e-4, 1e-4}},
	} {
		_, err := SolveLambdas("hotspot-2d", shape, tc.lams, GridOptions{})
		var fe *FieldError
		if !errors.As(err, &fe) || fe.Field != "lambda" {
			t.Errorf("%s axis: want lambda FieldError, got %v", tc.name, err)
		}
	}
}

// TestConstraintsAllVariants: every registered variant reports a
// constraint for every Spec field, in canonical order, with the
// validator's own reason text.
func TestConstraintsAllVariants(t *testing.T) {
	wantFields := []string{"k", "dims", "v", "lm", "h", "lambda"}
	for _, name := range Solvers() {
		cons, err := Constraints(name)
		if err != nil {
			t.Fatalf("Constraints(%q): %v", name, err)
		}
		if len(cons) != len(wantFields) {
			t.Fatalf("Constraints(%q): got %d entries %v, want %d", name, len(cons), cons, len(wantFields))
		}
		for i, want := range wantFields {
			if cons[i].Field != want {
				t.Errorf("%q constraint %d: field %q, want %q", name, i, cons[i].Field, want)
			}
			if cons[i].Reason == "" {
				t.Errorf("%q constraint %d (%s): empty reason", name, i, cons[i].Field)
			}
		}
	}
}

// TestConstraintsUnknownModel: the unknown-model error is the registry's
// structured one.
func TestConstraintsUnknownModel(t *testing.T) {
	_, err := Constraints("no-such-model")
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "model" {
		t.Fatalf("want model FieldError, got %v", err)
	}
}
