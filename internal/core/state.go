package core

// Flat-state segmentation shared by the model variants. Every solver
// flattens its service-time vectors into one []float64 for the fixed-point
// driver; seg/vecBuilder are the single copy of that bookkeeping (the
// per-variant flatten/unflatten and index-arithmetic code they replace).

// seg is a contiguous segment of a flattened fixed-point vector holding a
// 1-indexed quantity (logical positions 1..n).
type seg struct{ off, n int }

// vecBuilder allocates disjoint segments of one flat vector; Size() after
// all seg calls is the solver's StateSize.
type vecBuilder struct{ size int }

func (b *vecBuilder) seg(n int) seg {
	if n < 0 {
		n = 0
	}
	s := seg{off: b.size, n: n}
	b.size += n
	return s
}

func (b *vecBuilder) Size() int { return b.size }

// padded returns a 1-indexed copy of the segment (index 0 unused), the
// shape the service-time recursions are written in.
func (s seg) padded(x []float64) []float64 {
	out := make([]float64, s.n+1) //lint:ignore hotalloc 1-indexed copies are the view representation, an accepted solver cost
	copy(out[1:], x[s.off:s.off+s.n])
	return out
}

// put stores v at the segment's 1-indexed position j.
func (s seg) put(x []float64, j int, v float64) { x[s.off+j-1] = v }

// at reads the segment's 1-indexed position j.
func (s seg) at(x []float64, j int) float64 { return x[s.off+j-1] }
