package core

import (
	"errors"
	"math"
	"testing"

	"kncube/internal/stats"
)

func solveBiOK(t *testing.T, p Params, o Options) *BiResult {
	t.Helper()
	r, err := SolveBidirectional(p, o)
	if err != nil {
		t.Fatalf("SolveBidirectional(%+v): %v", p, err)
	}
	return r
}

func TestBiValidation(t *testing.T) {
	if _, err := SolveBidirectional(Params{}, Options{}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestBiZeroLoadGeometry(t *testing.T) {
	// k=16 bidirectional: mean min ring distance = 4, mean path 8.
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-9}
	r := solveBiOK(t, p, Options{})
	if !stats.ApproxEqual(r.MeanDistance, 8, 0, 0) {
		t.Fatalf("MeanDistance = %v, want 8", r.MeanDistance)
	}
	wantReg := 32.0 + 8
	if math.Abs(r.Regular-wantReg) > 1.0 {
		t.Errorf("zero-load regular %v, want ~%v", r.Regular, wantReg)
	}
	// Hot zero-load: Lm + mean bidirectional distance to the hot node.
	sum, cnt := 0.0, 0
	k := 16
	minD := func(f int) int {
		if k-f < f {
			return k - f
		}
		return f
	}
	for fx := 0; fx < k; fx++ {
		for fy := 0; fy < k; fy++ {
			if fx == 0 && fy == 0 {
				continue
			}
			sum += float64(minD(fx) + minD(fy))
			cnt++
		}
	}
	wantHot := 32 + sum/float64(cnt)
	if math.Abs(r.Hot-wantHot) > 1.0 {
		t.Errorf("zero-load hot %v, want ~%v", r.Hot, wantHot)
	}
}

func TestBiZeroLoadBelowUnidirectional(t *testing.T) {
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-6}
	bi := solveBiOK(t, p, Options{})
	uni := solveOK(t, p, Options{})
	if bi.Latency >= uni.Latency {
		t.Errorf("bidirectional %v not below unidirectional %v", bi.Latency, uni.Latency)
	}
}

func TestBiMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lam := range []float64{1e-5, 1e-4, 3e-4, 6e-4, 9e-4} {
		r := solveBiOK(t, Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: lam}, Options{})
		if r.Latency <= prev {
			t.Fatalf("latency not increasing at %v", lam)
		}
		prev = r.Latency
	}
}

func TestBiSaturatesLaterThanUnidirectional(t *testing.T) {
	// Bidirectional links halve the hot column's per-channel load, so the
	// saturation rate must be roughly twice the unidirectional one.
	sat := func(solve func(lam float64) error) float64 {
		s, err := SaturationLambda(solve, 1e-7, 0, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	p := func(lam float64) Params {
		return Params{K: 16, V: 2, Lm: 32, H: 0.4, Lambda: lam}
	}
	uni := sat(func(lam float64) error { _, err := SolveHotSpot(p(lam), Options{}); return err })
	bi := sat(func(lam float64) error { _, err := SolveBidirectional(p(lam), Options{}); return err })
	if bi <= uni {
		t.Fatalf("bidirectional saturation %v not above unidirectional %v", bi, uni)
	}
	if ratio := bi / uni; ratio < 1.4 || ratio > 3.0 {
		t.Errorf("saturation ratio %v, want roughly 2", ratio)
	}
}

func TestBiSaturationDetected(t *testing.T) {
	_, err := SolveBidirectional(Params{K: 16, V: 2, Lm: 32, H: 0.4, Lambda: 0.01}, Options{})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

func TestBiSmallRadixes(t *testing.T) {
	// k=2 has an empty negative direction class; k=3 has symmetric ones.
	for _, k := range []int{2, 3, 4, 5} {
		r := solveBiOK(t, Params{K: k, V: 2, Lm: 8, H: 0.3, Lambda: 1e-3}, Options{})
		if r.Latency < 8 || math.IsNaN(r.Latency) {
			t.Errorf("k=%d latency %v", k, r.Latency)
		}
	}
}

func TestBiHotAboveRegularUnderLoad(t *testing.T) {
	r := solveBiOK(t, Params{K: 16, V: 2, Lm: 32, H: 0.4, Lambda: 4e-4}, Options{})
	if r.Hot <= r.Regular {
		t.Errorf("hot %v not above regular %v", r.Hot, r.Regular)
	}
}

func TestBiMultiplexingBounds(t *testing.T) {
	r := solveBiOK(t, Params{K: 16, V: 3, Lm: 32, H: 0.4, Lambda: 4e-4}, Options{})
	for _, v := range []float64{r.VX, r.VHy} {
		if v < 1 || v > 3 {
			t.Errorf("multiplexing degree %v outside [1,3]", v)
		}
	}
	if r.VHy < r.VX {
		t.Errorf("hot-column multiplexing %v below x %v", r.VHy, r.VX)
	}
}
