package core

import "fmt"

// FieldError attributes a parameter-validation failure to the Spec field
// that caused it, so API layers (the khs-serve daemon in particular) can
// return structured errors — (field, reason) pairs — instead of opaque
// strings. Every Validate method and registry factory reports its failures
// through this type; errors.As extracts it anywhere downstream.
//
// Field is the canonical lower-case JSON/flag name of the offending
// parameter: "model", "k", "dims", "v", "lm", "h", "lambda".
type FieldError struct {
	Field  string
	Reason string
}

func (e *FieldError) Error() string { return e.Reason }

// fieldErrf builds a FieldError with a formatted reason. The reason keeps
// the historical "core: ..." message shape so log output is unchanged.
func fieldErrf(field, format string, args ...any) error {
	return &FieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}
