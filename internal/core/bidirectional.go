package core

// Bidirectional extension of the hot-spot model. Section 2 of the paper
// analyses the unidirectional torus and notes that the analysis "can be
// easily extended to deal with [the] bi-directional case"; this file is
// that extension, kept structurally parallel to the unidirectional model
// of hotspot.go so the two can be read side by side.
//
// With bidirectional links each dimension consists of two disjoint
// unidirectional rings (positive and negative) and minimal deterministic
// routing sends a message along the shorter one, ties to the positive ring
// (matching the simulator). For radix k the positive ring carries offsets
// 1..floor(k/2) and the negative ring offsets 1..ceil(k/2)-1, so the two
// direction classes have maximum hop counts
//
//	D+ = floor(k/2),  D- = ceil(k/2) - 1,
//
// and every equation of Section 3 splits per direction class: per-channel
// regular rates (Eq. 3), hot-spot channel populations (Eqs. 4-7), the
// service-time recursions (Eqs. 16-25), the blocking averages, the source
// queue (Eq. 32) and the multiplexing degrees (Eqs. 33-37).

import (
	"fmt"

	"kncube/internal/queueing"
	"kncube/internal/vcmodel"
)

// BiResult is the solved bidirectional model.
type BiResult struct {
	// Latency is the mean message latency (Eq. 10).
	Latency float64
	// Regular and Hot are the class-conditional latencies.
	Regular, Hot float64
	// WsRegular is the mean source-queue waiting time.
	WsRegular float64
	// VX and VHy are the mean multiplexing degrees over x-channels and
	// hot-column channels (both directions pooled).
	VX, VHy float64
	// MeanDistance is the mean minimal path length of uniform traffic.
	MeanDistance float64
	// Iterations is the fixed-point iteration count.
	Iterations int
	// Convergence is the fixed-point diagnostic summary.
	Convergence Convergence
}

// biLayout assigns each direction-split service-time vector its segment of
// the flat fixed-point state.
type biLayout struct {
	shybar, shy, sx, sxhy, sxhybar, shoty [2]seg
	shotx                                 [2][]seg // [dir][row]
}

// biView is the 1-indexed (by remaining hops) unpacked reading of a flat
// state vector.
type biView struct {
	shybar, shy, sx, sxhy, sxhybar, shoty [2][]float64
	shotx                                 [2][][]float64 // [dir][row][j]
}

// biModel carries the direction-split constants.
type biModel struct {
	solverBase
	p        Params
	prepared bool
	l        biLayout
	n        int          // flat state size
	d        [2]int       // max hops per direction class: {floor(k/2), ceil(k/2)-1}
	r        [2]float64   // regular per-channel rate per direction class
	hx       [2][]float64 // hot rate on x-channels, [dir][1..d[dir]]
	hy       [2][]float64 // hot rate on hot-column channels, [dir][1..d[dir]]

	pHy, pHyB, pX   float64
	cXo, cXHy, cXHb float64
	rows            []biRow // the k x-rings classified by y direction/distance
}

// biRow classifies one x-ring relative to the hot node: dir/dist of the
// y-leg its hot-spot messages take after reaching the hot column; hotRow
// marks the hot node's own ring (no y-leg).
type biRow struct {
	hotRow bool
	dir    int // y direction class (0 = positive, 1 = negative)
	dist   int // y hops remaining, 1..d[dir]
}

func newBiModel(p Params, o Options) *biModel {
	return &biModel{solverBase: newSolverBase(o, p.V, p.Lm), p: p}
}

// Prepare builds the spec-invariant machinery: direction classes, row
// classification, the flat-state layout and case probabilities, then
// derives the rates for the constructed load.
func (m *biModel) Prepare() {
	if m.prepared {
		m.SetLambda(m.p.Lambda)
		return
	}
	k := m.p.K
	if k < 0 {
		k = 0
	}
	m.d[0] = k / 2
	m.d[1] = (k+1)/2 - 1
	if m.d[1] < 0 {
		m.d[1] = 0
	}
	for i := 0; i < 2; i++ {
		m.hx[i] = make([]float64, m.d[i]+1)
		m.hy[i] = make([]float64, m.d[i]+1)
	}
	kf := float64(k)
	if k > 0 {
		m.pHy = 1 / (kf * (kf + 1))
		m.pHyB = (kf - 1) / (kf * (kf + 1))
		m.pX = kf / (kf + 1)
		m.cXo = 1 / kf
		m.cXHy = (kf - 1) / (kf * kf)
		m.cXHb = (kf - 1) * (kf - 1) / (kf * kf)
	}
	// Rows: hot row first, then positive-direction rows by distance, then
	// negative-direction rows.
	m.rows = append(m.rows, biRow{hotRow: true})
	for i := 0; i < 2; i++ {
		for t := 1; t <= m.d[i]; t++ {
			m.rows = append(m.rows, biRow{dir: i, dist: t})
		}
	}
	// Flat-state layout: per direction the six shared vectors, then one
	// hot-path segment per row.
	var b vecBuilder
	for i := 0; i < 2; i++ {
		m.l.shybar[i] = b.seg(m.d[i])
		m.l.shy[i] = b.seg(m.d[i])
		m.l.sx[i] = b.seg(m.d[i])
		m.l.sxhy[i] = b.seg(m.d[i])
		m.l.sxhybar[i] = b.seg(m.d[i])
		m.l.shoty[i] = b.seg(m.d[i])
		m.l.shotx[i] = make([]seg, len(m.rows))
		for r := range m.rows {
			m.l.shotx[i][r] = b.seg(m.d[i])
		}
	}
	m.n = b.Size()
	m.prepared = true
	m.SetLambda(m.p.Lambda)
}

// SetLambda recomputes the direction-split traffic rates in place.
//
//khs:hotpath
func (m *biModel) SetLambda(lambda float64) {
	m.p.Lambda = lambda
	p := m.p
	k := p.K
	if k < 0 {
		k = 0
	}
	for i := 0; i < 2; i++ {
		sum := 0
		for j := 1; j <= m.d[i]; j++ {
			sum += j
		}
		if k > 0 {
			m.r[i] = p.Lambda * (1 - p.H) * float64(sum) / float64(k)
		}
		for j := 1; j <= m.d[i]; j++ {
			// Sources at direction-i distance >= j cross channel j.
			count := float64(m.d[i] - j + 1)
			m.hx[i][j] = p.Lambda * p.H * count
			m.hy[i][j] = p.Lambda * p.H * float64(k) * count
		}
	}
}

func (m *biModel) Validate() error { return m.p.Validate() }
func (m *biModel) StateSize() int  { return m.n }

// view unpacks a flat state into 1-indexed vectors.
func (m *biModel) view(x []float64) *biView {
	st := &biView{} //lint:ignore hotalloc per-round view unpacking, an accepted solver cost (the 0-alloc contract covers sim and telemetry)
	for i := 0; i < 2; i++ {
		st.shybar[i] = m.l.shybar[i].padded(x)
		st.shy[i] = m.l.shy[i].padded(x)
		st.sx[i] = m.l.sx[i].padded(x)
		st.sxhy[i] = m.l.sxhy[i].padded(x)
		st.sxhybar[i] = m.l.sxhybar[i].padded(x)
		st.shoty[i] = m.l.shoty[i].padded(x)
		st.shotx[i] = make([][]float64, len(m.rows)) //lint:ignore hotalloc per-round view unpacking, an accepted solver cost
		for r := range m.rows {
			st.shotx[i][r] = m.l.shotx[i][r].padded(x)
		}
	}
	return st
}

// InitState writes the zero-load starting point.
func (m *biModel) InitState(x []float64) {
	for i := 0; i < 2; i++ {
		for j := 1; j <= m.d[i]; j++ {
			jf := float64(j)
			m.l.shybar[i].put(x, j, m.lm+jf)
			m.l.shy[i].put(x, j, m.lm+jf)
			m.l.sx[i].put(x, j, m.lm+jf)
			m.l.sxhy[i].put(x, j, m.lm+jf+float64(m.p.K)/4)
			m.l.sxhybar[i].put(x, j, m.lm+jf+float64(m.p.K)/4)
			m.l.shoty[i].put(x, j, m.lm+jf)
		}
		for r := range m.rows {
			extra := 0.0
			if !m.rows[r].hotRow {
				extra = float64(m.rows[r].dist)
			}
			for j := 1; j <= m.d[i]; j++ {
				m.l.shotx[i][r].put(x, j, m.lm+float64(j)+extra)
			}
		}
	}
}

// entrance averages a pair of direction-split vectors over the k-1
// equally-likely destination offsets.
func (m *biModel) entrance(v [2][]float64) float64 {
	sum := 0.0
	for i := 0; i < 2; i++ {
		for j := 1; j <= m.d[i]; j++ {
			sum += v[i][j]
		}
	}
	return sum / float64(m.p.K-1)
}

// yNext returns the service continuation after the final x hop for a hot
// message generated in row r.
func (m *biModel) yNext(st *biView, r int) float64 {
	row := m.rows[r]
	if row.hotRow {
		return m.lm
	}
	return st.shoty[row.dir][row.dist]
}

// Iterate re-evaluates the direction-split recursions.
//
//khs:hotpath
func (m *biModel) Iterate(in, out []float64) error {
	k := m.p.K
	st := m.view(in)

	entHyB := m.entrance(st.shybar)
	entHy := m.entrance(st.shy)
	entXmix := m.cXo*m.entrance(st.sx) + m.cXHy*m.entrance(st.sxhy) + m.cXHb*m.entrance(st.sxhybar)

	var bHyB, bHy, bX [2]float64
	for i := 0; i < 2; i++ {
		b, err := m.blocking(m.r[i], entHyB, 0, 0)
		if err != nil {
			return fmt.Errorf("%w (bi non-hot y, dir %d)", ErrSaturated, i)
		}
		bHyB[i] = b
		// Hot-column blocking averaged over the ring's k channels of this
		// direction (positions beyond d[i] carry regular traffic only).
		sum := 0.0
		for l := 1; l <= m.d[i]; l++ {
			b, err := m.blocking(m.r[i], entHy, m.hy[i][l], st.shoty[i][l])
			if err != nil {
				return fmt.Errorf("%w (bi hot column, dir %d ch %d)", ErrSaturated, i, l)
			}
			sum += b
		}
		bQuiet, err := m.blocking(m.r[i], entHy, 0, 0)
		if err != nil {
			return fmt.Errorf("%w (bi hot column quiet, dir %d)", ErrSaturated, i)
		}
		bHy[i] = (sum + float64(k-m.d[i])*bQuiet) / float64(k)
		// x-channel blocking averaged over the k rows and k positions.
		sum = 0.0
		for r := range m.rows {
			for l := 1; l <= m.d[i]; l++ {
				b, err := m.blocking(m.r[i], entXmix, m.hx[i][l], st.shotx[i][r][l])
				if err != nil {
					return fmt.Errorf("%w (bi x, dir %d row %d ch %d)", ErrSaturated, i, r, l)
				}
				sum += b
			}
		}
		bQuietX, err := m.blocking(m.r[i], entXmix, 0, 0)
		if err != nil {
			return fmt.Errorf("%w (bi x quiet, dir %d)", ErrSaturated, i)
		}
		bX[i] = (sum + float64(len(m.rows)*(k-m.d[i]))*bQuietX) / float64(len(m.rows)*k)
	}

	for i := 0; i < 2; i++ {
		for j := 1; j <= m.d[i]; j++ {
			prev := func(v []float64, base float64) float64 { //lint:ignore hotalloc non-escaping recursion helper, inlined
				if j == 1 {
					return base
				}
				return v[j-1]
			}
			m.l.shybar[i].put(out, j, 1+bHyB[i]+prev(st.shybar[i], m.lm))
			m.l.shy[i].put(out, j, 1+bHy[i]+prev(st.shy[i], m.lm))
			m.l.sx[i].put(out, j, 1+bX[i]+prev(st.sx[i], m.lm))
			m.l.sxhy[i].put(out, j, 1+bX[i]+prev(st.sxhy[i], entHy))
			m.l.sxhybar[i].put(out, j, 1+bX[i]+prev(st.sxhybar[i], entHyB))

			b, err := m.blocking(m.r[i], entHy, m.hy[i][j], st.shoty[i][j])
			if err != nil {
				return fmt.Errorf("%w (bi hot y recursion, dir %d ch %d)", ErrSaturated, i, j)
			}
			m.l.shoty[i].put(out, j, 1+b+prev(st.shoty[i], m.lm))
		}
		for r := range m.rows {
			for j := 1; j <= m.d[i]; j++ {
				b, err := m.blocking(m.r[i], entXmix, m.hx[i][j], st.shotx[i][r][j])
				if err != nil {
					return fmt.Errorf("%w (bi hot x recursion, dir %d row %d ch %d)", ErrSaturated, i, r, j)
				}
				base := m.yNext(st, r)
				if j > 1 {
					base = st.shotx[i][r][j-1]
				}
				m.l.shotx[i][r].put(out, j, 1+b+base)
			}
		}
	}
	return nil
}

// SolveBidirectional evaluates the bidirectional-torus extension of the
// hot-spot model (the registry's "bidirectional-2d").
func SolveBidirectional(p Params, o Options) (*BiResult, error) {
	sr, err := solveWith(newBiModel(p, o), o)
	if err != nil {
		return nil, err
	}
	return sr.Detail.(*BiResult), nil
}

func init() {
	Register("bidirectional-2d", func(s Spec, o Options) (Solver, error) {
		if s.Dims != 0 && s.Dims != 2 {
			return nil, fieldErrf("dims", "core: the bidirectional-2d solver models a 2-D torus, got Dims = %d", s.Dims)
		}
		return newBiModel(Params{K: s.K, V: s.V, Lm: s.Lm, H: s.H, Lambda: s.Lambda}, o), nil
	})
}

// Assemble computes the latency decomposition from the converged state.
func (m *biModel) Assemble(x []float64, conv Convergence) (*SolveResult, error) {
	st := m.view(x)
	p, k := m.p, m.p.K
	entHyB := m.entrance(st.shybar)
	entHy := m.entrance(st.shy)
	entXmix := m.cXo*m.entrance(st.sx) + m.cXHy*m.entrance(st.sxhy) + m.cXHb*m.entrance(st.sxhybar)
	sr := m.pHy*entHy + m.pHyB*entHyB + m.pX*entXmix

	lv := p.Lambda / float64(p.V)
	wait := func(s float64) (float64, error) {
		return queueing.MG1Wait(lv, s, m.variance(s))
	}

	// Source waits: hot node, hot-column nodes, and the rest.
	wsSum, err := wait(sr)
	if err != nil {
		return nil, fmt.Errorf("%w (bi source queue, hot node)", ErrSaturated)
	}
	wsY := [2][]float64{make([]float64, m.d[0]+1), make([]float64, m.d[1]+1)}
	for i := 0; i < 2; i++ {
		for t := 1; t <= m.d[i]; t++ {
			w, err := wait((1-p.H)*sr + p.H*st.shoty[i][t])
			if err != nil {
				return nil, fmt.Errorf("%w (bi source queue, hot column)", ErrSaturated)
			}
			wsY[i][t] = w
			wsSum += w
		}
	}
	wsX := make([][2][]float64, len(m.rows))
	for r := range m.rows {
		for i := 0; i < 2; i++ {
			wsX[r][i] = make([]float64, m.d[i]+1)
			for j := 1; j <= m.d[i]; j++ {
				w, err := wait((1-p.H)*sr + p.H*st.shotx[i][r][j])
				if err != nil {
					return nil, fmt.Errorf("%w (bi source queue, row %d)", ErrSaturated, r)
				}
				wsX[r][i][j] = w
				wsSum += w
			}
		}
	}
	n := float64(p.N())
	wsReg := wsSum / n

	// Multiplexing degrees (Eqs. 33-37, per direction class).
	vHyAt := [2][]float64{make([]float64, k+1), make([]float64, k+1)}
	vHySum := 0.0
	for i := 0; i < 2; i++ {
		for l := 1; l <= k; l++ {
			lh, sh := 0.0, 0.0
			if l <= m.d[i] {
				lh, sh = m.hy[i][l], st.shoty[i][l]
			}
			tot := m.r[i] + lh
			sBar := queueing.WeightedService(m.r[i], entHy, lh, sh)
			deg, err := vcmodel.Degree(p.V, tot, sBar)
			if err != nil {
				return nil, err
			}
			vHyAt[i][l] = deg
			vHySum += deg
		}
	}
	vHy := vHySum / float64(2*k)

	vXAt := make([][2][]float64, len(m.rows))
	vXSum := 0.0
	for r := range m.rows {
		for i := 0; i < 2; i++ {
			vXAt[r][i] = make([]float64, k+1)
			for l := 1; l <= k; l++ {
				lh, sh := 0.0, 0.0
				if l <= m.d[i] {
					lh, sh = m.hx[i][l], st.shotx[i][r][l]
				}
				tot := m.r[i] + lh
				sBar := queueing.WeightedService(m.r[i], entXmix, lh, sh)
				deg, err := vcmodel.Degree(p.V, tot, sBar)
				if err != nil {
					return nil, err
				}
				vXAt[r][i][l] = deg
				vXSum += deg
			}
		}
	}
	vX := vXSum / float64(len(m.rows)*2*k)

	vHyB0, err := vcmodel.Degree(p.V, m.r[0], entHyB)
	if err != nil {
		return nil, err
	}
	vHyB1, err := vcmodel.Degree(p.V, m.r[1], entHyB)
	if err != nil {
		return nil, err
	}
	vHyB := (vHyB0 + vHyB1) / 2

	sRegular := m.pHy*(entHy+wsReg)*vHy +
		m.pHyB*(entHyB+wsReg)*vHyB +
		m.pX*(entXmix+wsReg)*vX

	// Hot-spot latency over the N-1 source positions, path-averaged V̄.
	var hotSum float64
	for i := 0; i < 2; i++ {
		for t := 1; t <= m.d[i]; t++ {
			vp := 0.0
			for l := 1; l <= t; l++ {
				vp += vHyAt[i][l]
			}
			vp /= float64(t)
			hotSum += (st.shoty[i][t] + wsY[i][t]) * vp
		}
	}
	for r, row := range m.rows {
		for i := 0; i < 2; i++ {
			for j := 1; j <= m.d[i]; j++ {
				vsum, cnt := 0.0, 0
				for l := 1; l <= j; l++ {
					vsum += vXAt[r][i][l]
					cnt++
				}
				if !row.hotRow {
					for l := 1; l <= row.dist; l++ {
						vsum += vHyAt[row.dir][l]
						cnt++
					}
				}
				hotSum += (st.shotx[i][r][j] + wsX[r][i][j]) * (vsum / float64(cnt))
			}
		}
	}
	sHot := hotSum / (n - 1)

	// Mean minimal distance of uniform traffic for diagnostics.
	sumMin := 0
	for i := 0; i < k; i++ {
		d := i
		if k-i < d {
			d = k - i
		}
		sumMin += d
	}
	meanDist := 2 * float64(sumMin) / float64(k)

	kf := float64(k)
	r := &BiResult{
		Latency:      (1-p.H)*sRegular + p.H*sHot,
		Regular:      sRegular,
		Hot:          sHot,
		WsRegular:    wsReg,
		VX:           vX,
		VHy:          vHy,
		MeanDistance: meanDist,
		Iterations:   conv.Iterations,
		Convergence:  conv,
	}
	// Channel-population-weighted mean multiplexing degree: 2k^2 x-channels,
	// 2k hot-column channels, 2k(k-1) non-hot-column channels.
	vbar := (2*kf*kf*vX + 2*kf*vHy + 2*kf*(kf-1)*vHyB) / (4 * kf * kf)
	return &SolveResult{
		Latency:     r.Latency,
		Regular:     r.Regular,
		Hot:         r.Hot,
		SourceWait:  wsReg,
		VBar:        vbar,
		Convergence: conv,
		Detail:      r,
	}, nil
}
