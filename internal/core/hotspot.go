// Package core implements the paper's primary contribution: the analytical
// model of mean message latency in a deterministically-routed, wormhole-
// switched 2-D torus (k-ary 2-cube) carrying hot-spot traffic
// (Loucif, Ould-Khaoua, Min; IPDPS 2005, Section 3), together with
// uniform-traffic baseline models.
//
// Model structure (equation numbers follow the paper):
//
//   - traffic rates: regular traffic is uniform over channels (Eq. 3);
//     hot-spot traffic concentrates on the channels of the "hot y-ring"
//     (the column of the hot node) and decays with distance from it
//     (Eqs. 4-9);
//   - service times: position-indexed recursions S_j = 1 + B_j + S_{j-1}
//     with terminal value Lm (body drain), for five regular-message path
//     classes (Eqs. 11-20) and two hot-spot path classes (Eqs. 21-25);
//   - blocking: B = Pb * wc with Pb the channel utilisation and wc an
//     M/G/1 waiting time with variance approximation (S-Lm)^2 (Eqs. 26-30);
//   - source queue: M/G/1 with arrival rate lambda/V and node-position-
//     dependent service time (Eqs. 31-32);
//   - virtual channels: Dally's multiplexing degree V̄ scales the final
//     latencies (Eqs. 33-37);
//   - the interdependent equations are solved by damped fixed-point
//     iteration (the paper's "iterative techniques").
package core

import (
	"errors"
	"fmt"
	"math"

	"kncube/internal/fixpoint"
	"kncube/internal/queueing"
	"kncube/internal/stats"
	"kncube/internal/vcmodel"
)

// ErrSaturated reports an offered load at or beyond the model's saturation
// point: some channel or source queue reaches utilisation 1 and the latency
// diverges.
var ErrSaturated = errors.New("core: network saturated at this load")

// Params are the network and workload parameters of the model. The model
// covers the 2-D torus (n = 2) with unidirectional channels, matching the
// paper's analysis.
type Params struct {
	// K is the radix; the network has N = K*K nodes.
	K int
	// V is the number of virtual channels per physical channel (>= 2).
	V int
	// Lm is the message length in flits.
	Lm int
	// H is the hot-spot fraction in [0, 1).
	H float64
	// Lambda is the per-node generation rate in messages/cycle.
	Lambda float64
}

// Validate reports the first problem with the parameters as a *FieldError.
func (p Params) Validate() error {
	if p.K < 2 {
		return fieldErrf("k", "core: K = %d, want >= 2", p.K)
	}
	if p.V < 2 {
		return fieldErrf("v", "core: V = %d, want >= 2", p.V)
	}
	if p.Lm < 1 {
		return fieldErrf("lm", "core: Lm = %d, want >= 1", p.Lm)
	}
	if p.H < 0 || p.H >= 1 || math.IsNaN(p.H) {
		return fieldErrf("h", "core: H = %v, want [0, 1)", p.H)
	}
	if p.Lambda <= 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fieldErrf("lambda", "core: Lambda = %v, want > 0", p.Lambda)
	}
	return nil
}

// N returns the node count K².
func (p Params) N() int { return p.K * p.K }

// KBar returns k̄ = (K-1)/2, the mean unidirectional ring distance (Eq. 1).
func (p Params) KBar() float64 { return float64(p.K-1) / 2 }

// MeanDistance returns d = 2·k̄ (Eq. 2 with n = 2).
func (p Params) MeanDistance() float64 { return 2 * p.KBar() }

// EntrancePolicy selects how the entrance service time of a regular message
// (the OCR-ambiguous S_{·,k} subscript of Eqs. 12-20) is computed from the
// per-position recursion; see DESIGN.md §4.6.
type EntrancePolicy int

const (
	// EntranceMeanDistance averages S(b) over the uniform destination ring
	// distance b in {1..k-1} — the default, reducing to the classic uniform
	// treatment at H = 0.
	EntranceMeanDistance EntrancePolicy = iota
	// EntranceKBar evaluates the recursion at round(k̄) hops.
	EntranceKBar
	// EntranceWorstCase evaluates the recursion at k-1 hops (the literal
	// OCR reading).
	EntranceWorstCase
)

// BlockingForm selects the blocking-delay composition (ablation B).
type BlockingForm int

const (
	// BlockingVCOccupancy (the zero-value default) composes Eq. 26's
	// B = Pb·wc with: Pb from the paper's own virtual-channel occupancy
	// chain (Eqs. 33-34) — a header is blocked only when all V virtual
	// channels of the link are held, evaluated at the holding-time
	// utilisation of Eq. 27 — and wc from an M/G/1 whose service is the
	// physical link's flit transmission time Lm+1 (while a header stalls
	// the link serves other virtual channels, so link bandwidth bounds
	// the queue). Its stability boundary coincides with the flit
	// capacity, which is where the paper's figures place saturation; see
	// DESIGN.md §4.7 and EXPERIMENTS.md for the calibration against the
	// simulator.
	BlockingVCOccupancy BlockingForm = iota
	// BlockingPaper is the literal reading of Eq. 26: B = Pb·wc on a
	// per-virtual-channel M/G/1 (rates divided by V unless NoVCSplit),
	// with Pb the channel utilisation. Its blocking feedback is strongly
	// superlinear, so it saturates at roughly half the simulator's knee
	// (ablation B).
	BlockingPaper
	// BlockingWaitOnly uses B = wc (plain M/G/1 waiting, no extra Pb
	// factor).
	BlockingWaitOnly
	// BlockingMultiServer treats the V virtual channels as an M/G/V
	// server pool: a header waits for any free virtual channel, so the
	// blocking delay is the Erlang-C (Lee-Longton) M/G/c waiting time at
	// the aggregate channel rate. The most accurate form at light and
	// moderate load, but it too loses its fixed point early.
	BlockingMultiServer
	// BlockingBandwidth is BlockingVCOccupancy with the cruder Eq. 27
	// utilisation as the blocking probability.
	BlockingBandwidth
)

// VarianceForm selects the service-time variance used in the waiting-time
// formulas (ablation D).
type VarianceForm int

const (
	// VarianceZero (the zero-value default) treats service as
	// deterministic (M/D/·). The quadratic (S-Lm)² term of Eq. 28 is a
	// dominant superlinearity in the blocking feedback; disabling it
	// keeps the model finite across the paper's plotted load ranges.
	VarianceZero VarianceForm = iota
	// VariancePaper approximates Var[S] = (S - Lm)² (Eq. 28, after
	// Draper-Ghosh; ablation D).
	VariancePaper
)

// Options tune the model's reconstruction knobs and its solver.
type Options struct {
	Entrance EntrancePolicy
	Blocking BlockingForm
	Variance VarianceForm
	// NoVCSplit disables dividing channel arrival rates by V in the
	// per-channel M/G/1 blocking treatment. The paper splits the source
	// queue's rate by V "since the physical channel is split into V
	// virtual channels" (Eq. 32); applying the same split at network
	// channels — a message competes for one virtual channel, and the
	// bandwidth sharing between busy virtual channels is charged
	// separately through the V̄ scaling of Eqs. 33-37 — is what lets the
	// model remain finite up to near the physical flit capacity, as the
	// paper's figures do. Setting NoVCSplit recovers the serialised
	// whole-channel M/G/1 (ablation C), which saturates several times
	// earlier.
	NoVCSplit bool
	// FixPoint configures the iteration; zero values use
	// fixpoint.Defaults().
	FixPoint fixpoint.Options
}

// Result is the solved model.
type Result struct {
	// Latency is the mean message latency in cycles (Eq. 10).
	Latency float64
	// Regular and Hot are the class-conditional mean latencies (the S̄r
	// and S̄h of Eqs. 11 and 21, including source waiting and virtual-
	// channel multiplexing).
	Regular, Hot float64
	// NetworkRegular and NetworkHot are the corresponding mean network
	// latencies without source waiting or multiplexing scaling.
	NetworkRegular, NetworkHot float64
	// WsRegular is the mean source-queue waiting time of Eq. 32.
	WsRegular float64
	// VX, VHy, VHyBar are the mean multiplexing degrees of x-channels, hot
	// y-ring channels and non-hot y-ring channels (Eqs. 36-37).
	VX, VHy, VHyBar float64
	// MaxUtilisation is the highest channel holding-time utilisation in
	// the network (the hot ring's last channel, at j = 1, unless H = 0).
	// Because wormhole holding times include stalls, this can exceed 1
	// near saturation; the flit-capacity bound is enforced separately.
	MaxUtilisation float64
	// Iterations is the fixed-point iteration count.
	Iterations int
	// Convergence is the fixed-point diagnostic summary.
	Convergence Convergence

	// Raw service-time vectors (1-indexed by remaining hops; index 0
	// unused) for inspection and tests.
	SHotY   []float64   // hot-spot messages in the hot ring (Eq. 23)
	SHotX   [][]float64 // hot-spot messages starting at (t, j) (Eq. 25)
	SRegHy  []float64   // regular, hot y-ring only (Eq. 17)
	SRegHyB []float64   // regular, non-hot y-ring only (Eq. 16)
	SRegX   []float64   // regular, x only (Eq. 18)
}

// layout segments the flattened fixed-point vector (see state.go for the
// shared seg machinery).
type layout struct {
	k       int
	shybar  seg   // k-1 values: regular, non-hot y-ring
	shy     seg   // k-1: regular, hot y-ring
	sx      seg   // k-1: regular, x only
	sxhy    seg   // k-1: regular, x then hot y-ring
	sxhybar seg   // k-1: regular, x then non-hot y-ring
	shoty   seg   // k-1: hot-spot in hot ring
	shotx   []seg // per row t = 1..k: hot-spot at column distance j = 1..k-1
	size    int
}

func newLayout(k int) layout {
	m := k - 1
	var b vecBuilder
	l := layout{k: k}
	l.shybar = b.seg(m)
	l.shy = b.seg(m)
	l.sx = b.seg(m)
	l.sxhy = b.seg(m)
	l.sxhybar = b.seg(m)
	l.shoty = b.seg(m)
	if k > 0 {
		l.shotx = make([]seg, k+1)
		for t := 1; t <= k; t++ {
			l.shotx[t] = b.seg(m)
		}
	}
	l.size = b.Size()
	return l
}

type model struct {
	solverBase
	p        Params
	prepared bool
	l        layout
	lr       float64   // Eq. 3
	lhy      []float64 // Eq. 7, index j = 1..k (j = k is zero)
	lhx      []float64 // Eq. 6, index j = 1..k (j = k is zero)
	pHy      float64   // case probabilities (Eqs. 11-15); see DESIGN.md §4.4
	pHyB     float64
	pX       float64
	cXo      float64 // P(x only | via x)
	cXHy     float64 // P(x then hot y | via x)
	cXHb     float64 // P(x then non-hot y | via x)
}

func newModel(p Params, o Options) *model {
	return &model{solverBase: newSolverBase(o, p.V, p.Lm), p: p}
}

// Prepare builds the spec-invariant machinery: the flat-state layout, the
// case probabilities (functions of K only), and the hot-spot rate arrays,
// then derives the rates for the constructed load.
func (m *model) Prepare() {
	if m.prepared {
		m.SetLambda(m.p.Lambda)
		return
	}
	k := m.p.K
	if k < 0 {
		k = 0
	}
	m.l = newLayout(k)
	m.lhy = make([]float64, k+1)
	m.lhx = make([]float64, k+1)
	kf := float64(k)
	m.pHy = 1 / (kf * (kf + 1))
	m.pHyB = (kf - 1) / (kf * (kf + 1))
	m.pX = kf / (kf + 1)
	m.cXo = 1 / kf
	m.cXHy = (kf - 1) / (kf * kf)
	m.cXHb = (kf - 1) * (kf - 1) / (kf * kf)
	m.prepared = true
	m.SetLambda(m.p.Lambda)
}

// SetLambda recomputes the λ-dependent traffic rates (Eqs. 3, 6-7) in
// place; everything else is load-invariant.
//
//khs:hotpath
func (m *model) SetLambda(lambda float64) {
	m.p.Lambda = lambda
	p := m.p
	k := len(m.lhy) - 1
	m.lr = p.Lambda * (1 - p.H) * p.KBar()
	for j := 1; j <= k; j++ {
		m.lhy[j] = p.Lambda * p.H * float64(k) * float64(k-j)
		m.lhx[j] = p.Lambda * p.H * float64(k-j)
	}
}

// entrance reduces a 1-indexed service vector (remaining hops 1..k-1) to
// the mean service time seen at ring entry, per the configured policy.
func (m *model) entrance(s []float64) float64 {
	k := m.p.K
	switch m.o.Entrance {
	case EntranceKBar:
		j := int(math.Round(m.p.KBar()))
		if j < 1 {
			j = 1
		}
		if j > k-1 {
			j = k - 1
		}
		return s[j]
	case EntranceWorstCase:
		return s[k-1]
	default: // EntranceMeanDistance
		sum := 0.0
		for j := 1; j <= k-1; j++ {
			sum += s[j]
		}
		return sum / float64(k-1)
	}
}

// serviceVariance returns the service-time variance for the waiting-time
// formulas under the configured VarianceForm.
func serviceVariance(o Options, lm, sBar float64) float64 {
	if o.Variance == VarianceZero {
		return 0
	}
	dev := sBar - lm
	return dev * dev
}

// blockingDelay composes Eqs. 26-30 under the configured form, for a
// channel with v virtual channels carrying regular traffic (lr, sr) and
// hot-spot traffic (lh, sh), message length lm. For the per-VC M/G/1 forms
// the class rates are divided by V unless NoVCSplit is set: the header
// competes for one of the V virtual channels, each seeing 1/V of the
// channel's traffic.
func blockingDelay(o Options, v int, lm, lr, sr, lh, sh float64) (float64, error) {
	// The physical channel moves at most one flit per cycle; beyond that
	// flit capacity no queueing treatment is meaningful.
	if (lr+lh)*lm >= 1 {
		return 0, queueing.ErrUnstable
	}
	total := lr + lh
	if stats.IsZero(total) {
		return 0, nil
	}
	sBar := queueing.WeightedService(lr, sr, lh, sh)
	variance := serviceVariance(o, lm, sBar)
	switch o.Blocking {
	case BlockingMultiServer:
		return queueing.MGcWait(total, sBar, variance, v)
	case BlockingBandwidth:
		w, err := queueing.MG1Wait(total, lm+1, variance)
		if err != nil {
			return 0, err
		}
		return queueing.BlockingProbability(lr, sr, lh, sh) * w, nil
	case BlockingVCOccupancy:
		w, err := queueing.MG1Wait(total, lm+1, variance)
		if err != nil {
			return 0, err
		}
		rho := lr*sr + lh*sh // holding-time utilisation (Eq. 27)
		if rho > 1 {
			rho = 1
		}
		occ := vcmodel.Occupancy(v, rho*(1-1e-12)) // Eqs. 33-34
		return occ[v] * w, nil
	case BlockingWaitOnly:
		if !o.NoVCSplit {
			total /= float64(v)
		}
		return queueing.MG1Wait(total, sBar, variance)
	default: // BlockingPaper, Eq. 26: B = Pb·wc
		if !o.NoVCSplit {
			vf := float64(v)
			lr /= vf
			lh /= vf
			total /= vf
		}
		w, err := queueing.MG1Wait(total, sBar, variance)
		if err != nil {
			return 0, err
		}
		return queueing.BlockingProbability(lr, sr, lh, sh) * w, nil
	}
}

// unpack gives named 1-indexed views (position 0 unused) over the state.
type view struct {
	shybar, shy, sx, sxhy, sxhybar, shoty []float64
	shotx                                 [][]float64 // [t][j], 1-indexed
}

func (m *model) view(x []float64) view {
	k := m.p.K
	v := view{
		shybar:  m.l.shybar.padded(x),
		shy:     m.l.shy.padded(x),
		sx:      m.l.sx.padded(x),
		sxhy:    m.l.sxhy.padded(x),
		sxhybar: m.l.sxhybar.padded(x),
		shoty:   m.l.shoty.padded(x),
	}
	v.shotx = make([][]float64, k+1) //lint:ignore hotalloc per-round view unpacking, an accepted solver cost (the 0-alloc contract covers sim and telemetry)
	for t := 1; t <= k; t++ {
		v.shotx[t] = m.l.shotx[t].padded(x)
	}
	return v
}

// Iterate is the fixed-point map: out = F(in), the simultaneous
// re-evaluation of Eqs. 16-20, 23 and 25.
//
//khs:hotpath
func (m *model) Iterate(in, out []float64) error {
	k := m.p.K
	v := m.view(in)

	entHyB := m.entrance(v.shybar)
	entHy := m.entrance(v.shy)
	// Mixture service of regular traffic on x-channels (the S^r_{x,k̄} of
	// Eqs. 18-20): weighted over the three onward-path classes.
	entXmix := m.cXo*m.entrance(v.sx) + m.cXHy*m.entrance(v.sxhy) + m.cXHb*m.entrance(v.sxhybar)

	// Blocking on non-hot y-ring channels (Eq. 16): regular traffic only.
	bHyB, err := m.blocking(m.lr, entHyB, 0, 0)
	if err != nil {
		return fmt.Errorf("%w (non-hot y-ring)", ErrSaturated)
	}
	// Blocking seen by a regular message on the hot y-ring (Eq. 17):
	// position-averaged over the k channels of the ring.
	bHy := 0.0
	for l := 1; l <= k; l++ {
		sh := 0.0
		if l <= k-1 {
			sh = v.shoty[l]
		}
		b, err := m.blocking(m.lr, entHy, m.lhy[l], sh)
		if err != nil {
			return fmt.Errorf("%w (hot y-ring, channel %d)", ErrSaturated, l)
		}
		bHy += b
	}
	bHy /= float64(k)
	// Blocking seen by a regular message on an x-channel (Eqs. 18-20):
	// averaged over the k x-rings and k channel positions.
	bX := 0.0
	for t := 1; t <= k; t++ {
		for l := 1; l <= k; l++ {
			sh := 0.0
			if l <= k-1 {
				sh = v.shotx[t][l]
			}
			b, err := m.blocking(m.lr, entXmix, m.lhx[l], sh)
			if err != nil {
				return fmt.Errorf("%w (x-ring %d, channel %d)", ErrSaturated, t, l)
			}
			bX += b
		}
	}
	bX /= float64(k * k)

	put := func(s seg, j int, val float64) { s.put(out, j, val) } //lint:ignore hotalloc non-escaping store helper, inlined
	// Regular recursions. Terminal value Lm is the body drain through the
	// ejection channel; each hop adds 1 cycle of header transfer plus the
	// class blocking delay.
	for j := 1; j <= k-1; j++ {
		prev := func(s []float64) float64 { //lint:ignore hotalloc non-escaping recursion helper, inlined
			if j == 1 {
				return m.lm
			}
			return s[j-1]
		}
		put(m.l.shybar, j, 1+bHyB+prev(v.shybar))
		put(m.l.shy, j, 1+bHy+prev(v.shy))
		put(m.l.sx, j, 1+bX+prev(v.sx))
		// Eq. 19: after the last x hop the message enters the hot y-ring.
		if j == 1 {
			put(m.l.sxhy, j, 1+bX+entHy)
			put(m.l.sxhybar, j, 1+bX+entHyB)
		} else {
			put(m.l.sxhy, j, 1+bX+v.sxhy[j-1])
			put(m.l.sxhybar, j, 1+bX+v.sxhybar[j-1])
		}
	}

	// Hot-spot recursion in the hot ring (Eq. 23): position j is also the
	// remaining hop count, so the blocking uses the position's own rates.
	for j := 1; j <= k-1; j++ {
		b, err := m.blocking(m.lr, entHy, m.lhy[j], v.shoty[j])
		if err != nil {
			return fmt.Errorf("%w (hot message, hot ring channel %d)", ErrSaturated, j)
		}
		next := m.lm
		if j > 1 {
			next = v.shoty[j-1]
		}
		put(m.l.shoty, j, 1+b+next)
	}
	// Hot-spot recursion on x-rings (Eq. 25).
	for t := 1; t <= k; t++ {
		for j := 1; j <= k-1; j++ {
			b, err := m.blocking(m.lr, entXmix, m.lhx[j], v.shotx[t][j])
			if err != nil {
				return fmt.Errorf("%w (hot message, x-ring %d channel %d)", ErrSaturated, t, j)
			}
			var next float64
			switch {
			case j > 1:
				next = v.shotx[t][j-1]
			case t == k: // hot row: the last x hop arrives at the hot node
				next = m.lm
			default: // enter the hot ring t hops from the hot node
				next = v.shoty[t]
			}
			m.l.shotx[t].put(out, j, 1+b+next)
		}
	}
	return nil
}

// Validate and StateSize complete the Solver interface.
func (m *model) Validate() error { return m.p.Validate() }
func (m *model) StateSize() int  { return m.l.size }

// InitState fills the zero-load (blocking-free) service times.
func (m *model) InitState(x []float64) {
	k := m.p.K
	for j := 1; j <= k-1; j++ {
		base := m.lm + float64(j)
		m.l.shybar.put(x, j, base)
		m.l.shy.put(x, j, base)
		m.l.sx.put(x, j, base)
		m.l.shoty.put(x, j, base)
	}
	// x-then-y classes terminate into the entrance of a y-ring.
	var entY float64
	switch m.o.Entrance {
	case EntranceWorstCase:
		entY = m.lm + float64(k-1)
	case EntranceKBar:
		entY = m.lm + math.Round(m.p.KBar())
	default:
		entY = m.lm + float64(k)/2
	}
	for j := 1; j <= k-1; j++ {
		m.l.sxhy.put(x, j, entY+float64(j))
		m.l.sxhybar.put(x, j, entY+float64(j))
	}
	for t := 1; t <= k; t++ {
		for j := 1; j <= k-1; j++ {
			y := float64(t)
			if t == k {
				y = 0
			}
			m.l.shotx[t].put(x, j, m.lm+float64(j)+y)
		}
	}
}

// SolveHotSpot evaluates the paper's model (the registry's "hotspot-2d").
func SolveHotSpot(p Params, o Options) (*Result, error) {
	sr, err := solveWith(newModel(p, o), o)
	if err != nil {
		return nil, err
	}
	return sr.Detail.(*Result), nil
}

func init() {
	Register("hotspot-2d", func(s Spec, o Options) (Solver, error) {
		if s.Dims != 0 && s.Dims != 2 {
			return nil, fieldErrf("dims", "core: hotspot-2d models the 2-D torus, got Dims = %d", s.Dims)
		}
		return newModel(Params{K: s.K, V: s.V, Lm: s.Lm, H: s.H, Lambda: s.Lambda}, o), nil
	})
}

// Assemble computes Eqs. 10-15, 21-24 and 31-37 from the converged service
// times and wraps them in the variant-independent SolveResult.
func (m *model) Assemble(x []float64, conv Convergence) (*SolveResult, error) {
	r, err := m.assemble(x, conv)
	if err != nil {
		return nil, err
	}
	// Channel-count-weighted mean multiplexing degree: k² x-channels, k hot
	// y-ring channels, k(k-1) non-hot y-ring channels.
	kf := float64(m.p.K)
	vbar := (kf*kf*r.VX + kf*r.VHy + kf*(kf-1)*r.VHyBar) / (2 * kf * kf)
	return &SolveResult{
		Latency:     r.Latency,
		Regular:     r.Regular,
		Hot:         r.Hot,
		SourceWait:  r.WsRegular,
		VBar:        vbar,
		Convergence: conv,
		Detail:      r,
	}, nil
}

// assemble computes the typed Result from the converged service times.
func (m *model) assemble(x []float64, conv Convergence) (*Result, error) {
	p, k := m.p, m.p.K
	v := m.view(x)
	kf := float64(k)
	n := float64(p.N())

	entHyB := m.entrance(v.shybar)
	entHy := m.entrance(v.shy)
	entXmix := m.cXo*m.entrance(v.sx) + m.cXHy*m.entrance(v.sxhy) + m.cXHb*m.entrance(v.sxhybar)

	// Eq. 31: the mean network latency of a regular message.
	sr := m.pHy*entHy + m.pHyB*entHyB + m.pX*entXmix

	// Eq. 32: source-queue waiting averaged over node positions; the
	// per-VC arrival rate is lambda/V.
	lv := p.Lambda / float64(p.V)
	wait := func(s float64) (float64, error) {
		return queueing.MG1Wait(lv, s, m.variance(s))
	}
	wsHot := func(sHot float64) (float64, error) {
		return wait((1-p.H)*sr + p.H*sHot)
	}
	wsSum, err := wait(sr) // the hot node generates only regular traffic
	if err != nil {
		return nil, fmt.Errorf("%w (source queue, hot node)", ErrSaturated)
	}
	wsY := make([]float64, k) // 1-indexed source waits in the hot ring
	for j := 1; j <= k-1; j++ {
		w, err := wsHot(v.shoty[j])
		if err != nil {
			return nil, fmt.Errorf("%w (source queue, hot ring %d)", ErrSaturated, j)
		}
		wsY[j] = w
		wsSum += w
	}
	wsX := make([][]float64, k+1) // [t][j]
	for t := 1; t <= k; t++ {
		wsX[t] = make([]float64, k)
		for j := 1; j <= k-1; j++ {
			w, err := wsHot(v.shotx[t][j])
			if err != nil {
				return nil, fmt.Errorf("%w (source queue, node %d,%d)", ErrSaturated, t, j)
			}
			wsX[t][j] = w
			wsSum += w
		}
	}
	wsReg := wsSum / n

	// Eqs. 33-37: virtual-channel multiplexing degrees.
	vHyB, err := vcmodel.Degree(p.V, m.lr, entHyB)
	if err != nil {
		return nil, err
	}
	vHyAt := make([]float64, k+1) // per hot-ring channel position
	vHySum := 0.0
	maxUtil := 0.0
	for j := 1; j <= k; j++ {
		sh := 0.0
		if j <= k-1 {
			sh = v.shoty[j]
		}
		tot := m.lr + m.lhy[j]
		sBar := queueing.WeightedService(m.lr, entHy, m.lhy[j], sh)
		if u := tot * sBar; u > maxUtil {
			maxUtil = u
		}
		d, err := vcmodel.Degree(p.V, tot, sBar)
		if err != nil {
			return nil, err
		}
		vHyAt[j] = d
		vHySum += d
	}
	vHy := vHySum / kf // Eq. 36

	vXAt := make([][]float64, k+1)
	vXSum := 0.0
	for t := 1; t <= k; t++ {
		vXAt[t] = make([]float64, k+1)
		for j := 1; j <= k; j++ {
			sh := 0.0
			if j <= k-1 {
				sh = v.shotx[t][j]
			}
			tot := m.lr + m.lhx[j]
			sBar := queueing.WeightedService(m.lr, entXmix, m.lhx[j], sh)
			if u := tot * sBar; u > maxUtil {
				maxUtil = u
			}
			d, err := vcmodel.Degree(p.V, tot, sBar)
			if err != nil {
				return nil, err
			}
			vXAt[t][j] = d
			vXSum += d
		}
	}
	vX := vXSum / (kf * kf) // Eq. 37

	// Eqs. 11-15: regular latency with per-case multiplexing scaling.
	sRegular := m.pHy*(entHy+wsReg)*vHy +
		m.pHyB*(entHyB+wsReg)*vHyB +
		m.pX*(entXmix+wsReg)*vX

	// Eqs. 21-24: hot-spot latency averaged over the N-1 source positions,
	// scaled by the multiplexing degree averaged along the actual path
	// (DESIGN.md §4.9).
	pathVy := func(j int) float64 { // mean V̄ over hot-ring channels 1..j
		s := 0.0
		for l := 1; l <= j; l++ {
			s += vHyAt[l]
		}
		return s / float64(j)
	}
	var hotSum, hotNetSum float64
	for j := 1; j <= k-1; j++ {
		hotSum += (v.shoty[j] + wsY[j]) * pathVy(j)
		hotNetSum += v.shoty[j]
	}
	for t := 1; t <= k; t++ {
		for j := 1; j <= k-1; j++ {
			vsum, cnt := 0.0, 0
			for l := 1; l <= j; l++ {
				vsum += vXAt[t][l]
				cnt++
			}
			if t < k {
				for l := 1; l <= t; l++ {
					vsum += vHyAt[l]
					cnt++
				}
			}
			vp := vsum / float64(cnt)
			hotSum += (v.shotx[t][j] + wsX[t][j]) * vp
			hotNetSum += v.shotx[t][j]
		}
	}
	sHot := hotSum / (n - 1)
	netHot := hotNetSum / (n - 1)

	latency := (1-p.H)*sRegular + p.H*sHot // Eq. 10

	res := &Result{
		Latency:        latency,
		Regular:        sRegular,
		Hot:            sHot,
		NetworkRegular: sr,
		NetworkHot:     netHot,
		WsRegular:      wsReg,
		VX:             vX,
		VHy:            vHy,
		VHyBar:         vHyB,
		MaxUtilisation: maxUtil,
		Iterations:     conv.Iterations,
		Convergence:    conv,
		SHotY:          v.shoty,
		SHotX:          v.shotx[1:],
		SRegHy:         v.shy,
		SRegHyB:        v.shybar,
		SRegX:          v.sx,
	}
	return res, nil
}
