package core

import (
	"errors"
	"fmt"
	"math"

	"kncube/internal/fixpoint"
	"kncube/internal/queueing"
	"kncube/internal/stats"
	"kncube/internal/vcmodel"
)

// UniformParams describe a k-ary n-cube under uniform traffic for the
// baseline model.
type UniformParams struct {
	// K is the radix, Dims the dimension count n.
	K, Dims int
	// V is the virtual channel count per physical channel.
	V int
	// Lm is the message length in flits.
	Lm int
	// Lambda is the per-node generation rate in messages/cycle.
	Lambda float64
}

// Validate reports the first problem with the parameters.
func (p UniformParams) Validate() error {
	if p.K < 2 {
		return fieldErrf("k", "core: uniform K = %d, want >= 2", p.K)
	}
	if p.Dims < 1 {
		return fieldErrf("dims", "core: uniform Dims = %d, want >= 1", p.Dims)
	}
	if p.V < 1 {
		return fieldErrf("v", "core: uniform V = %d, want >= 1", p.V)
	}
	if p.Lm < 1 {
		return fieldErrf("lm", "core: uniform Lm = %d, want >= 1", p.Lm)
	}
	if p.Lambda <= 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fieldErrf("lambda", "core: uniform Lambda = %v, want > 0", p.Lambda)
	}
	return nil
}

// UniformResult is the solved uniform-traffic baseline.
type UniformResult struct {
	// Latency is the mean message latency in cycles, including source
	// waiting and virtual-channel multiplexing.
	Latency float64
	// Network is the mean network latency S (no source wait, no V̄).
	Network float64
	// SourceWait is the M/G/1 source-queue waiting time.
	SourceWait float64
	// Multiplexing is Dally's V̄ at the mean channel load.
	Multiplexing float64
	// ChannelRate is the per-channel message rate lambda·k̄.
	ChannelRate float64
	// Blocking is the per-channel mean blocking delay.
	Blocking float64
	// Iterations is the scalar fixed-point iteration count.
	Iterations int
	// Convergence is the fixed-point diagnostic summary.
	Convergence Convergence
}

// uniformModel is the classic uniform-traffic baseline
// (Dally-1990/Draper-Ghosh style, adapted to the unidirectional torus with
// the same blocking and variance compositions as the hot-spot model): the
// mean network latency satisfies the scalar fixed point
//
//	S = Lm + d̄ + d̄·B(λc, S)
//
// with d̄ = n(k-1)/2 the mean path length and λc = λ·k̄ the uniform
// per-channel rate; the final latency is (S + Ws)·V̄ exactly as in the
// hot-spot model's assembly.
type uniformModel struct {
	solverBase
	p        UniformParams
	prepared bool
	lc       float64 // per-channel message rate lambda·k̄
	dbar     float64 // mean path length n(k-1)/2
}

func newUniformModel(p UniformParams, o Options) *uniformModel {
	return &uniformModel{solverBase: newSolverBase(o, p.V, p.Lm), p: p}
}

// Prepare computes the mean path length (shape-invariant) and derives the
// channel rate for the constructed load.
func (m *uniformModel) Prepare() {
	if !m.prepared {
		m.dbar = float64(m.p.Dims) * (float64(m.p.K-1) / 2)
		m.prepared = true
	}
	m.SetLambda(m.p.Lambda)
}

// SetLambda recomputes the per-channel message rate λ·k̄ in place.
//
//khs:hotpath
func (m *uniformModel) SetLambda(lambda float64) {
	m.p.Lambda = lambda
	m.lc = lambda * (float64(m.p.K-1) / 2)
}

func (m *uniformModel) Validate() error { return m.p.Validate() }
func (m *uniformModel) StateSize() int  { return 1 }

func (m *uniformModel) InitState(x []float64) { x[0] = m.lm + m.dbar }

//khs:hotpath
func (m *uniformModel) Iterate(in, out []float64) error {
	b, err := m.blocking(m.lc, in[0], 0, 0)
	if err != nil {
		return fmt.Errorf("%w (uniform channel)", ErrSaturated)
	}
	out[0] = m.lm + m.dbar + m.dbar*b
	return nil
}

func (m *uniformModel) Assemble(x []float64, conv Convergence) (*SolveResult, error) {
	s := x[0]
	b, err := m.blocking(m.lc, s, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("%w (uniform channel)", ErrSaturated)
	}
	ws, err := queueing.PaperWait(m.p.Lambda/float64(m.p.V), s, m.lm)
	if err != nil {
		return nil, fmt.Errorf("%w (source queue)", ErrSaturated)
	}
	vbar, err := vcmodel.Degree(m.p.V, m.lc, s)
	if err != nil {
		return nil, err
	}
	r := &UniformResult{
		Latency:      (s + ws) * vbar,
		Network:      s,
		SourceWait:   ws,
		Multiplexing: vbar,
		ChannelRate:  m.lc,
		Blocking:     b,
		Iterations:   conv.Iterations,
		Convergence:  conv,
	}
	return &SolveResult{
		Latency: r.Latency,
		// All traffic is one (uniform) class.
		Regular:     r.Latency,
		Hot:         r.Latency,
		SourceWait:  ws,
		VBar:        vbar,
		Convergence: conv,
		Detail:      r,
	}, nil
}

// uniformFixPoint preserves the baseline's historical solver settings (a
// tighter tolerance and a larger budget than the multi-variable models)
// when the caller left the configuration zero.
func uniformFixPoint(o Options) Options {
	fp := o.FixPoint
	if stats.IsZero(fp.Tolerance) && fp.MaxIterations == 0 && stats.IsZero(fp.Damping) {
		o.FixPoint = fixpoint.Options{
			Tolerance: 1e-10, MaxIterations: 100000, Damping: 0.5, Trace: fp.Trace,
		}
	}
	return o
}

// SolveUniform evaluates the uniform-traffic baseline model (the
// registry's "uniform") with the default options.
func SolveUniform(p UniformParams) (*UniformResult, error) {
	o := uniformFixPoint(Options{})
	sr, err := solveWith(newUniformModel(p, o), o)
	if err != nil {
		return nil, err
	}
	return sr.Detail.(*UniformResult), nil
}

func init() {
	Register("uniform", func(s Spec, o Options) (Solver, error) {
		if !stats.IsZero(s.H) {
			return nil, fieldErrf("h", "core: the uniform baseline models no hot-spot class, got H = %v", s.H)
		}
		dims := s.Dims
		if dims == 0 {
			dims = 2
		}
		return newUniformModel(UniformParams{K: s.K, Dims: dims, V: s.V, Lm: s.Lm, Lambda: s.Lambda},
			uniformFixPoint(o)), nil
	})
}

// SaturationLambda locates the model's saturation rate by bisection: the
// largest lambda (within relTol) for which solve succeeds. solve is called
// with increasing/decreasing rates; lo must succeed and hi fail (the caller
// may pass hi = 0 to auto-bracket).
func SaturationLambda(solve func(lambda float64) error, lo, hi, relTol float64) (float64, error) {
	if lo <= 0 {
		return 0, errors.New("core: SaturationLambda needs lo > 0")
	}
	if err := solve(lo); err != nil {
		return 0, fmt.Errorf("core: lower bracket %v already saturated: %w", lo, err)
	}
	if hi <= lo {
		hi = lo * 2
		for i := 0; i < 60; i++ {
			if solve(hi) != nil {
				break
			}
			lo = hi
			hi *= 2
		}
		if solve(hi) == nil {
			return 0, errors.New("core: could not bracket saturation")
		}
	} else if solve(hi) == nil {
		return 0, fmt.Errorf("core: upper bracket %v not saturated", hi)
	}
	if relTol <= 0 {
		relTol = 1e-3
	}
	for (hi-lo)/lo > relTol {
		mid := (hi + lo) / 2
		if solve(mid) == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
