package core

import (
	"errors"
	"fmt"
	"math"

	"kncube/internal/queueing"
	"kncube/internal/vcmodel"
)

// UniformParams describe a k-ary n-cube under uniform traffic for the
// baseline model.
type UniformParams struct {
	// K is the radix, Dims the dimension count n.
	K, Dims int
	// V is the virtual channel count per physical channel.
	V int
	// Lm is the message length in flits.
	Lm int
	// Lambda is the per-node generation rate in messages/cycle.
	Lambda float64
}

// Validate reports the first problem with the parameters.
func (p UniformParams) Validate() error {
	if p.K < 2 {
		return fmt.Errorf("core: uniform K = %d, want >= 2", p.K)
	}
	if p.Dims < 1 {
		return fmt.Errorf("core: uniform Dims = %d, want >= 1", p.Dims)
	}
	if p.V < 1 {
		return fmt.Errorf("core: uniform V = %d, want >= 1", p.V)
	}
	if p.Lm < 1 {
		return fmt.Errorf("core: uniform Lm = %d, want >= 1", p.Lm)
	}
	if p.Lambda <= 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fmt.Errorf("core: uniform Lambda = %v, want > 0", p.Lambda)
	}
	return nil
}

// UniformResult is the solved uniform-traffic baseline.
type UniformResult struct {
	// Latency is the mean message latency in cycles, including source
	// waiting and virtual-channel multiplexing.
	Latency float64
	// Network is the mean network latency S (no source wait, no V̄).
	Network float64
	// SourceWait is the M/G/1 source-queue waiting time.
	SourceWait float64
	// Multiplexing is Dally's V̄ at the mean channel load.
	Multiplexing float64
	// ChannelRate is the per-channel message rate lambda·k̄.
	ChannelRate float64
	// Blocking is the per-channel mean blocking delay.
	Blocking float64
	// Iterations is the scalar fixed-point iteration count.
	Iterations int
}

// SolveUniform evaluates the classic uniform-traffic baseline
// (Dally-1990/Draper-Ghosh style, adapted to the unidirectional torus with
// the same blocking and variance approximations as the hot-spot model):
// the mean network latency satisfies the scalar fixed point
//
//	S = Lm + d̄ + d̄·B(λc, S)
//
// with d̄ = n(k-1)/2 the mean path length and λc = λ·k̄ the uniform
// per-channel rate; the final latency is (S + Ws)·V̄ exactly as in the
// hot-spot model's assembly.
func SolveUniform(p UniformParams) (*UniformResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kbar := float64(p.K-1) / 2
	dbar := float64(p.Dims) * kbar
	lm := float64(p.Lm)
	lc := p.Lambda * kbar

	s := lm + dbar // zero-load starting point
	var b float64
	const (
		tol     = 1e-10
		maxIter = 100000
	)
	if lc*lm >= 1 { // physical flit capacity
		return nil, fmt.Errorf("%w: channel flit load %v >= 1", ErrSaturated, lc*lm)
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		// The same calibrated blocking composition as the hot-spot
		// model's default (BlockingVCOccupancy): the blocking probability
		// is P_V of the virtual-channel occupancy chain at the holding
		// utilisation, the waiting time a bandwidth-centric M/G/1 at the
		// flit service time.
		w, err := queueing.MG1Wait(lc, lm+1, 0)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSaturated, err)
		}
		rho := lc * s
		if rho > 1 {
			rho = 1
		}
		occ := vcmodel.Occupancy(p.V, rho*(1-1e-12))
		nb := occ[p.V] * w
		ns := lm + dbar + dbar*nb
		ns = 0.5*s + 0.5*ns // damping, matching the hot-spot solver
		if math.IsInf(ns, 0) || math.IsNaN(ns) {
			return nil, fmt.Errorf("%w: diverged", ErrSaturated)
		}
		done := math.Abs(ns-s) <= tol*math.Max(1, s)
		s, b = ns, nb
		if done {
			break
		}
	}
	if iters == maxIter {
		return nil, fmt.Errorf("%w: no fixed point", ErrSaturated)
	}
	ws, err := queueing.PaperWait(p.Lambda/float64(p.V), s, lm)
	if err != nil {
		return nil, fmt.Errorf("%w (source queue)", ErrSaturated)
	}
	vbar, err := vcmodel.Degree(p.V, lc, s)
	if err != nil {
		return nil, err
	}
	return &UniformResult{
		Latency:      (s + ws) * vbar,
		Network:      s,
		SourceWait:   ws,
		Multiplexing: vbar,
		ChannelRate:  lc,
		Blocking:     b,
		Iterations:   iters + 1,
	}, nil
}

// SaturationLambda locates the model's saturation rate by bisection: the
// largest lambda (within relTol) for which solve succeeds. solve is called
// with increasing/decreasing rates; lo must succeed and hi fail (the caller
// may pass hi = 0 to auto-bracket).
func SaturationLambda(solve func(lambda float64) error, lo, hi, relTol float64) (float64, error) {
	if lo <= 0 {
		return 0, errors.New("core: SaturationLambda needs lo > 0")
	}
	if err := solve(lo); err != nil {
		return 0, fmt.Errorf("core: lower bracket %v already saturated: %w", lo, err)
	}
	if hi <= lo {
		hi = lo * 2
		for i := 0; i < 60; i++ {
			if solve(hi) != nil {
				break
			}
			lo = hi
			hi *= 2
		}
		if solve(hi) == nil {
			return 0, errors.New("core: could not bracket saturation")
		}
	} else if solve(hi) == nil {
		return 0, fmt.Errorf("core: upper bracket %v not saturated", hi)
	}
	if relTol <= 0 {
		relTol = 1e-3
	}
	for (hi-lo)/lo > relTol {
		mid := (hi + lo) / 2
		if solve(mid) == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
