package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Spec is the variant-independent parameter set the registry accepts: the
// union of the five variants' parameters. Fields a variant does not use
// are validated by its factory (e.g. the hypercube requires K = 2, the
// uniform baseline requires H = 0); zero K or Dims pick the variant's
// natural default where one exists.
type Spec struct {
	// K is the radix; Dims the dimension count n.
	K, Dims int
	// V is the number of virtual channels per physical channel.
	V int
	// Lm is the message length in flits.
	Lm int
	// H is the hot-spot fraction in [0, 1).
	H float64
	// Lambda is the per-node generation rate in messages/cycle.
	Lambda float64
}

// Factory builds a variant's Solver from the generic Spec. It rejects
// specs that contradict the variant (wrong Dims, H where none is
// modelled); parameter-range checking is left to Solver.Validate.
type Factory func(s Spec, o Options) (Solver, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named solver factory. It panics on an empty name, a nil
// factory, or a duplicate registration — all programming errors, caught at
// init time.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" {
		panic("core: Register with empty solver name")
	}
	if f == nil {
		panic(fmt.Sprintf("core: Register(%q) with nil factory", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: duplicate solver registration %q", name))
	}
	registry[name] = f
}

// Solvers returns the registered solver names, sorted.
func Solvers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a solver name to its factory, with the structured
// unknown-model error shared by every registry entry point.
func lookup(name string) (Factory, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fieldErrf("model", "core: unknown solver %q (registered: %s)",
			name, strings.Join(Solvers(), ", "))
	}
	return f, nil
}

// NewSolver builds the named variant's Solver for the given spec.
func NewSolver(name string, s Spec, o Options) (Solver, error) {
	f, err := lookup(name)
	if err != nil {
		return nil, err
	}
	return f(s, o)
}

// Solve evaluates the named model variant through the shared fixed-point
// driver. All registered variants — "hotspot-2d", "bidirectional-2d",
// "uniform", "hypercube", "ndim" — are reachable here; the typed entry
// points (SolveHotSpot, SolveBidirectional, ...) are thin wrappers over
// the same driver.
func Solve(name string, s Spec, o Options) (*SolveResult, error) {
	sol, err := NewSolver(name, s, o)
	if err != nil {
		return nil, err
	}
	return solveWith(sol, o)
}
