package core

import (
	"errors"
	"testing"
)

// TestSolversWrapErrSaturated drives every solver far beyond its saturation
// load and requires the failure to satisfy errors.Is(err, ErrSaturated).
// The experiments layer (and any API consumer) relies on this contract for
// saturation detection — it must never depend on error message wording.
func TestSolversWrapErrSaturated(t *testing.T) {
	cases := []struct {
		name string
		run  func(lambda float64) error
	}{
		{"Solve", func(lambda float64) error {
			_, err := SolveHotSpot(Params{K: 8, V: 2, Lm: 32, H: 0.3, Lambda: lambda}, Options{})
			return err
		}},
		{"SolveUniform", func(lambda float64) error {
			_, err := SolveUniform(UniformParams{K: 8, Dims: 2, V: 2, Lm: 32, Lambda: lambda})
			return err
		}},
		{"SolveBidirectional", func(lambda float64) error {
			_, err := SolveBidirectional(Params{K: 8, V: 2, Lm: 32, H: 0.3, Lambda: lambda}, Options{})
			return err
		}},
		{"SolveNDim", func(lambda float64) error {
			_, err := SolveNDim(NDimParams{K: 8, N: 3, V: 2, Lm: 32, H: 0.3, Lambda: lambda}, Options{})
			return err
		}},
		{"SolveHypercube", func(lambda float64) error {
			_, err := SolveHypercube(HypercubeParams{N: 6, V: 2, Lm: 32, H: 0.3, Lambda: lambda}, Options{})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Far beyond any of these networks' capacity.
			err := tc.run(0.5)
			if err == nil {
				t.Fatal("no error at an absurd offered load")
			}
			if !errors.Is(err, ErrSaturated) {
				t.Errorf("error does not wrap ErrSaturated: %v", err)
			}
			// Every ablation's blocking form must uphold the contract too
			// (they take different error paths through the iterate step).
			if tc.name == "Solve" {
				for _, form := range []BlockingForm{BlockingPaper, BlockingWaitOnly,
					BlockingMultiServer, BlockingBandwidth, BlockingVCOccupancy} {
					_, err := SolveHotSpot(Params{K: 8, V: 2, Lm: 32, H: 0.3, Lambda: 0.5},
						Options{Blocking: form})
					if err == nil {
						t.Fatalf("blocking form %v: no error at an absurd load", form)
					}
					if !errors.Is(err, ErrSaturated) {
						t.Errorf("blocking form %v: error does not wrap ErrSaturated: %v", form, err)
					}
				}
			}
		})
	}
}
