package core

import (
	"math"
	"testing"

	"kncube/internal/fixpoint"
)

// nearSatLambda holds, per variant, an offered load close to (but below) the
// saturation point at the goldenSpec shape — the regime where the damped
// contraction rate approaches 1 and acceleration pays off most.
func nearSatLambda(name string) float64 {
	switch name {
	case "uniform":
		return 1.5e-3
	case "hypercube":
		return 1.05e-3
	case "bidirectional-2d":
		return 4.0e-4
	default: // hotspot-2d, ndim
		return 2.2e-4
	}
}

// TestAcceleratedMatchesDampedGoldens pins the accelerated schemes to the
// damped solution: at a tight tolerance (where both iterations have actually
// closed in on the fixed point, rather than stopping a scheme-dependent
// distance away) the latencies must agree within the 1e-9 regression
// tolerance the golden results use — at the golden load and near saturation.
func TestAcceleratedMatchesDampedGoldens(t *testing.T) {
	tight := fixpoint.Options{Tolerance: 1e-12}
	for _, name := range Solvers() {
		for _, lambda := range []float64{goldenSpec(name).Lambda, nearSatLambda(name)} {
			spec := goldenSpec(name)
			spec.Lambda = lambda
			damped, err := Solve(name, spec, Options{FixPoint: tight})
			if err != nil {
				t.Errorf("Solve(%q, λ=%g) damped: %v", name, lambda, err)
				continue
			}
			for _, accel := range []fixpoint.Acceleration{fixpoint.AccelAnderson, fixpoint.AccelAitken} {
				fo := tight
				fo.Acceleration = accel
				acc, err := Solve(name, spec, Options{FixPoint: fo})
				if err != nil {
					t.Errorf("Solve(%q, λ=%g) accel %d: %v", name, lambda, accel, err)
					continue
				}
				if diff := math.Abs(acc.Latency - damped.Latency); diff > 1e-9 {
					t.Errorf("Solve(%q, λ=%g) accel %d latency %.15g, damped %.15g (|diff| %.3g)",
						name, lambda, accel, acc.Latency, damped.Latency, diff)
				}
			}
		}
	}
}

// TestAccelNoneIsBitIdenticalToDefault pins that requesting AccelNone
// explicitly changes nothing: the damped baseline arithmetic is untouched by
// the acceleration layer.
func TestAccelNoneIsBitIdenticalToDefault(t *testing.T) {
	for _, name := range Solvers() {
		def, err := Solve(name, goldenSpec(name), Options{})
		if err != nil {
			t.Fatalf("Solve(%q): %v", name, err)
		}
		none, err := Solve(name, goldenSpec(name), Options{FixPoint: fixpoint.Options{Acceleration: fixpoint.AccelNone}})
		if err != nil {
			t.Fatalf("Solve(%q) AccelNone: %v", name, err)
		}
		if math.Float64bits(def.Latency) != math.Float64bits(none.Latency) {
			t.Errorf("%q: AccelNone latency %.17g differs from default %.17g", name, none.Latency, def.Latency)
		}
	}
}

// TestAndersonReducesIterationsNearSaturation is the performance contract:
// on every variant's near-saturation golden point, Anderson mixing must
// converge in strictly fewer substitution rounds than the damped baseline,
// and the trace must attribute rounds to the extrapolation.
func TestAndersonReducesIterationsNearSaturation(t *testing.T) {
	for _, name := range Solvers() {
		spec := goldenSpec(name)
		spec.Lambda = nearSatLambda(name)
		damped, err := Solve(name, spec, Options{})
		if err != nil {
			t.Fatalf("Solve(%q) damped: %v", name, err)
		}
		var accelRounds int
		acc, err := Solve(name, spec, Options{FixPoint: fixpoint.Options{
			Acceleration: fixpoint.AccelAnderson,
			Trace: func(r fixpoint.TraceRecord) {
				if r.Accelerated {
					accelRounds++
				}
			},
		}})
		if err != nil {
			t.Fatalf("Solve(%q) Anderson: %v", name, err)
		}
		if acc.Convergence.Iterations >= damped.Convergence.Iterations {
			t.Errorf("%q near saturation: Anderson took %d iterations, damped %d",
				name, acc.Convergence.Iterations, damped.Convergence.Iterations)
		}
		if accelRounds == 0 || accelRounds != acc.Convergence.AcceleratedRounds {
			t.Errorf("%q: trace saw %d accelerated rounds, summary %d (want > 0)",
				name, accelRounds, acc.Convergence.AcceleratedRounds)
		}
		if acc.Convergence.AcceleratedRounds+acc.Convergence.DampedRounds != acc.Convergence.Iterations {
			t.Errorf("%q: round counters %+v do not sum to iterations", name, acc.Convergence)
		}
	}
}

// TestAitkenNeverDivergesWhereDampedConverges pins the rewind safeguard at
// the model level: componentwise Δ² extrapolation overshoots into the
// saturated region on several variants, and the solver must recover rather
// than misreport saturation.
func TestAitkenNeverDivergesWhereDampedConverges(t *testing.T) {
	for _, name := range Solvers() {
		for _, lambda := range []float64{goldenSpec(name).Lambda, nearSatLambda(name)} {
			spec := goldenSpec(name)
			spec.Lambda = lambda
			if _, err := Solve(name, spec, Options{}); err != nil {
				t.Fatalf("Solve(%q, λ=%g) damped: %v", name, lambda, err)
			}
			if _, err := Solve(name, spec, Options{FixPoint: fixpoint.Options{Acceleration: fixpoint.AccelAitken}}); err != nil {
				t.Errorf("Solve(%q, λ=%g) Aitken failed where damped converges: %v", name, lambda, err)
			}
		}
	}
}
