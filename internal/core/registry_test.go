package core

import (
	"bufio"
	"errors"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"kncube/internal/fixpoint"

	"kncube/internal/stats"
)

func TestSolversRegistered(t *testing.T) {
	want := []string{"bidirectional-2d", "hotspot-2d", "hypercube", "ndim", "uniform"}
	got := Solvers()
	if len(got) != len(want) {
		t.Fatalf("Solvers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Solvers() = %v, want %v", got, want)
		}
	}
}

func TestUnknownSolverName(t *testing.T) {
	_, err := Solve("no-such-model", Spec{K: 8, V: 2, Lm: 16, Lambda: 1e-4}, Options{})
	if err == nil {
		t.Fatal("unknown solver name should fail")
	}
	if !strings.Contains(err.Error(), "no-such-model") {
		t.Errorf("error should name the unknown solver: %v", err)
	}
	// The error lists the registered names so the caller can self-correct.
	if !strings.Contains(err.Error(), "hotspot-2d") {
		t.Errorf("error should list registered solvers: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register("hotspot-2d", func(Spec, Options) (Solver, error) { return nil, nil })
}

func TestRegisterRejectsBadArguments(t *testing.T) {
	for name, reg := range map[string]func(){
		"empty name":  func() { Register("", func(Spec, Options) (Solver, error) { return nil, nil }) },
		"nil factory": func() { Register("x-test-nil", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			reg()
		}()
	}
}

// goldenSpec is the common operating point the regression latencies below
// are pinned at (the first published load point of panel fig1-h20; the
// hypercube takes the 2-ary 8-cube of comparable size, the uniform
// baseline the same network without a hot-spot class).
func goldenSpec(name string) Spec {
	switch name {
	case "uniform":
		return Spec{K: 16, V: 2, Lm: 32, H: 0, Lambda: 7.5e-5}
	case "hypercube":
		return Spec{K: 2, Dims: 8, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5}
	default:
		return Spec{K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5}
	}
}

// Golden regression: every registered solver's latency at one fixed
// operating point, pinned to within 1e-9. A deliberate model change must
// update these constants (and, for hotspot-2d, regenerate results/*.csv).
func TestGoldenLatencies(t *testing.T) {
	golden := map[string]float64{
		"hotspot-2d":       50.27906133459399,
		"bidirectional-2d": 40.892751665896398,
		"uniform":          49.472803116714566,
		"hypercube":        36.134133208947404,
		"ndim":             49.374738343198075,
	}
	for _, name := range Solvers() {
		want, ok := golden[name]
		if !ok {
			t.Errorf("no golden latency recorded for solver %q — add one here", name)
			continue
		}
		r, err := Solve(name, goldenSpec(name), Options{})
		if err != nil {
			t.Errorf("Solve(%q): %v", name, err)
			continue
		}
		if math.Abs(r.Latency-want) > 1e-9 {
			t.Errorf("Solve(%q) latency = %.15g, want %.15g (|diff| %.3g)",
				name, r.Latency, want, math.Abs(r.Latency-want))
		}
		if r.Convergence.Iterations <= 0 || !r.Convergence.Converged {
			t.Errorf("Solve(%q) convergence not populated: %+v", name, r.Convergence)
		}
		if r.Detail == nil {
			t.Errorf("Solve(%q) missing Detail", name)
		}
	}
}

// The hotspot-2d golden constant must itself agree with the published CSV
// (results/fig1-h20.csv, first data row) to the file's printed precision —
// the cross-check that ties the in-repo regression to the published
// reproducibility contract.
func TestGoldenMatchesPublishedCSV(t *testing.T) {
	f, err := os.Open("../../results/fig1-h20.csv")
	if err != nil {
		t.Skipf("published CSV not available: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() { // header
		t.Fatal("empty CSV")
	}
	if !sc.Scan() {
		t.Fatal("CSV has no data rows")
	}
	fields := strings.Split(sc.Text(), ",")
	lambda, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	want, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve("hotspot-2d", Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: lambda}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The CSV prints 4 decimals; allow half an ulp of that precision.
	if math.Abs(r.Latency-want) > 5e-5+1e-12 {
		t.Errorf("hotspot-2d at lambda=%g: latency %.6f, published %.4f", lambda, r.Latency, want)
	}
}

// The Trace callback must fire exactly once per iteration for every
// variant solved through the registry, and the final record must agree
// with the Convergence summary.
func TestTraceFiresOncePerIteration(t *testing.T) {
	for _, name := range Solvers() {
		var records []fixpoint.TraceRecord
		opts := Options{FixPoint: fixpoint.Options{
			Trace: func(r fixpoint.TraceRecord) { records = append(records, r) },
		}}
		res, err := Solve(name, goldenSpec(name), opts)
		if err != nil {
			t.Errorf("Solve(%q): %v", name, err)
			continue
		}
		if len(records) != res.Convergence.Iterations {
			t.Errorf("%q: %d trace records, want %d (one per iteration)",
				name, len(records), res.Convergence.Iterations)
			continue
		}
		last := records[len(records)-1]
		if last.Iteration != res.Convergence.Iterations {
			t.Errorf("%q: last trace iteration %d, want %d", name, last.Iteration, res.Convergence.Iterations)
		}
		if !stats.ApproxEqual(last.MaxRelDelta, res.Convergence.Residual, 0, 0) {
			t.Errorf("%q: last trace delta %g, want residual %g", name, last.MaxRelDelta, res.Convergence.Residual)
		}
		for i, r := range records {
			if r.Iteration != i+1 {
				t.Errorf("%q: record %d has iteration %d", name, i, r.Iteration)
				break
			}
			if r.NonFiniteIndex != -1 {
				t.Errorf("%q: converged run reported non-finite index %d", name, r.NonFiniteIndex)
				break
			}
		}
	}
}

// A solve classified as saturated because the iteration budget ran out
// must still have delivered one trace record per completed round — the
// observability layer is exactly what a caller needs to diagnose it.
func TestTraceSurvivesSaturation(t *testing.T) {
	calls := 0
	opts := Options{FixPoint: fixpoint.Options{
		Tolerance: 1e-9, MaxIterations: 25, Damping: 0.5,
		Trace: func(fixpoint.TraceRecord) { calls++ },
	}}
	// 3e-4 converges in ~200 rounds under the default budget, so 25 rounds
	// exhaust the budget and classify as saturation.
	s := Spec{K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 3e-4}
	_, err := Solve("hotspot-2d", s, opts)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("exhausted iteration budget should classify as saturation, got %v", err)
	}
	if calls != 25 {
		t.Errorf("got %d trace records, want one per round (25)", calls)
	}
}

// Every typed entry point must agree exactly with its registry route — the
// wrappers and the registry share one driver.
func TestTypedEntryPointsMatchRegistry(t *testing.T) {
	spec := goldenSpec("hotspot-2d")
	reg, err := Solve("hotspot-2d", spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	typed, err := SolveHotSpot(Params{K: spec.K, V: spec.V, Lm: spec.Lm, H: spec.H, Lambda: spec.Lambda}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(typed.Latency, reg.Latency, 0, 0) {
		t.Errorf("SolveHotSpot latency %g != registry latency %g", typed.Latency, reg.Latency)
	}
	if typed.Convergence != reg.Convergence {
		t.Errorf("SolveHotSpot convergence %+v != registry %+v", typed.Convergence, reg.Convergence)
	}

	bi, err := SolveBidirectional(Params{K: spec.K, V: spec.V, Lm: spec.Lm, H: spec.H, Lambda: spec.Lambda}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	biReg, err := Solve("bidirectional-2d", spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(bi.Latency, biReg.Latency, 0, 0) {
		t.Errorf("SolveBidirectional latency %g != registry latency %g", bi.Latency, biReg.Latency)
	}
}

// Factory compatibility rules: specs a variant cannot represent are
// rejected with a clear error rather than silently reinterpreted.
func TestFactoryCompatibility(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"uniform", Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}},     // has a hot-spot class
		{"hypercube", Spec{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: 1e-4}},  // not 2-ary
		{"hotspot-2d", Spec{K: 16, Dims: 3, V: 2, Lm: 32, Lambda: 1e-4}}, // not 2-D
		{"bidirectional-2d", Spec{K: 16, Dims: 3, V: 2, Lm: 32, Lambda: 1e-4}},
	}
	for _, tc := range cases {
		if _, err := Solve(tc.name, tc.spec, Options{}); err == nil {
			t.Errorf("Solve(%q, %+v) should reject the spec", tc.name, tc.spec)
		}
	}
}
