package core

import (
	"errors"
	"math"
	"testing"
)

func TestHypercubeParamsValidate(t *testing.T) {
	good := HypercubeParams{N: 6, V: 2, Lm: 16, H: 0.2, Lambda: 1e-3}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := []HypercubeParams{
		{N: 0, V: 2, Lm: 16, H: 0.2, Lambda: 1e-3},
		{N: 31, V: 2, Lm: 16, H: 0.2, Lambda: 1e-3},
		{N: 6, V: 0, Lm: 16, H: 0.2, Lambda: 1e-3},
		{N: 6, V: 2, Lm: 0, H: 0.2, Lambda: 1e-3},
		{N: 6, V: 2, Lm: 16, H: 1, Lambda: 1e-3},
		{N: 6, V: 2, Lm: 16, H: -0.1, Lambda: 1e-3},
		{N: 6, V: 2, Lm: 16, H: 0.2, Lambda: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if (HypercubeParams{N: 8}).Nodes() != 256 {
		t.Error("Nodes() wrong")
	}
	if _, err := SolveHypercube(HypercubeParams{}, Options{}); err == nil {
		t.Error("SolveHypercube accepted zero params")
	}
}

func TestHypercubeZeroLoad(t *testing.T) {
	p := HypercubeParams{N: 6, V: 2, Lm: 16, H: 0.2, Lambda: 1e-9}
	r, err := SolveHypercube(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mean hops of a uniform non-self destination: (n/2)/(1-2^-n).
	wantReg := 16 + 3.0/(1-math.Pow(2, -6))
	if math.Abs(r.Regular-wantReg) > 0.2 {
		t.Errorf("zero-load regular %v, want ~%v", r.Regular, wantReg)
	}
	if r.WsRegular > 0.01 || r.V > 1.001 {
		t.Errorf("zero-load ws %v V %v", r.WsRegular, r.V)
	}
	if len(r.SHot) != 6 {
		t.Errorf("SHot has %d entries", len(r.SHot))
	}
}

func TestHypercubeMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lam := range []float64{1e-5, 1e-4, 5e-4, 1e-3} {
		r, err := SolveHypercube(HypercubeParams{N: 8, V: 2, Lm: 32, H: 0.2, Lambda: lam}, Options{})
		if err != nil {
			t.Fatalf("lambda=%v: %v", lam, err)
		}
		if r.Latency <= prev {
			t.Fatalf("latency not increasing at %v", lam)
		}
		prev = r.Latency
	}
}

func TestHypercubeSaturation(t *testing.T) {
	// The dim-(n-1) hot channel carries lambda*h*2^(n-1): for n=8, h=0.2,
	// Lm=32 capacity is ~1/(0.2*128*32) = 1.2e-3 at the last channel.
	_, err := SolveHypercube(HypercubeParams{N: 8, V: 2, Lm: 32, H: 0.2, Lambda: 5e-3}, Options{})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

func TestHypercubeSaturationFallsWithH(t *testing.T) {
	sat := func(h float64) float64 {
		s, err := SaturationLambda(func(lam float64) error {
			_, e := SolveHypercube(HypercubeParams{N: 8, V: 2, Lm: 32, H: h, Lambda: lam}, Options{})
			return e
		}, 1e-7, 0, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s2, s7 := sat(0.2), sat(0.7); s7 >= s2 {
		t.Errorf("saturation not decreasing in h: %v vs %v", s2, s7)
	}
}

func TestHypercubeHotServiceShape(t *testing.T) {
	// At vanishing load the dim-d hot service is the zero-load remaining
	// path: Lm + 1 + (n-1-d)/2.
	r, err := SolveHypercube(HypercubeParams{N: 8, V: 2, Lm: 32, H: 0.3, Lambda: 1e-9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 8; d++ {
		want := 32 + 1 + float64(8-1-d)/2
		if math.Abs(r.SHot[d]-want) > 0.01 {
			t.Errorf("zero-load SHot[%d] = %v, want %v", d, r.SHot[d], want)
		}
	}
	// Under load every hot channel's service grows, and the first-crossed
	// (dim 0) channel still reflects the longest remaining path among the
	// low dimensions.
	r2, err := SolveHypercube(HypercubeParams{N: 8, V: 2, Lm: 32, H: 0.3, Lambda: 3e-4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 8; d++ {
		if r2.SHot[d] <= r.SHot[d] {
			t.Errorf("loaded SHot[%d]=%v not above zero-load %v", d, r2.SHot[d], r.SHot[d])
		}
	}
	if r2.SHot[0] <= r2.SHot[4] {
		t.Errorf("SHot[0]=%v should exceed SHot[4]=%v (longer remaining path)",
			r2.SHot[0], r2.SHot[4])
	}
}

func TestHypercubeHotAboveRegular(t *testing.T) {
	r, err := SolveHypercube(HypercubeParams{N: 8, V: 2, Lm: 32, H: 0.3, Lambda: 5e-4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hot <= r.Regular {
		t.Errorf("hot %v not above regular %v", r.Hot, r.Regular)
	}
}
