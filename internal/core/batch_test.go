package core

import (
	"errors"
	"math"
	"testing"
)

// sweepLambdas builds a small λ axis at the goldenSpec shape, spanning light
// load up to the variant's near-saturation point.
func sweepLambdas(name string) []float64 {
	top := nearSatLambda(name)
	base := goldenSpec(name).Lambda
	return []float64{base, top / 4, top / 2, top}
}

func batchSpecs(name string) []Spec {
	lams := sweepLambdas(name)
	specs := make([]Spec, len(lams))
	for i, lam := range lams {
		specs[i] = goldenSpec(name)
		specs[i].Lambda = lam
	}
	return specs
}

// TestSolveBatchBitIdenticalToIndependentSolves is the batch path's core
// contract: with warm starts off, each item is bit-for-bit the result of an
// independent Solve call — preparation reuse must not leak state between
// items.
func TestSolveBatchBitIdenticalToIndependentSolves(t *testing.T) {
	for _, name := range Solvers() {
		specs := batchSpecs(name)
		items, err := SolveBatch(name, specs, BatchOptions{})
		if err != nil {
			t.Fatalf("SolveBatch(%q): %v", name, err)
		}
		if len(items) != len(specs) {
			t.Fatalf("SolveBatch(%q): %d items for %d specs", name, len(items), len(specs))
		}
		for i, sp := range specs {
			want, err := Solve(name, sp, Options{})
			if err != nil {
				t.Fatalf("Solve(%q, λ=%g): %v", name, sp.Lambda, err)
			}
			got := items[i]
			if got.Err != nil {
				t.Errorf("%q item %d: %v", name, i, got.Err)
				continue
			}
			if math.Float64bits(got.Result.Latency) != math.Float64bits(want.Latency) {
				t.Errorf("%q item %d (λ=%g): batch latency %.17g, independent %.17g",
					name, i, sp.Lambda, got.Result.Latency, want.Latency)
			}
			if got.Result.Convergence != want.Convergence {
				t.Errorf("%q item %d: batch convergence %+v, independent %+v",
					name, i, got.Result.Convergence, want.Convergence)
			}
		}
	}
}

// TestSolveBatchMixedShapes exercises one batch spanning several topology
// shapes: preparation is keyed by shape, and revisiting a shape later in the
// batch must still reproduce the independent result exactly.
func TestSolveBatchMixedShapes(t *testing.T) {
	mk := func(k int, lam float64) Spec {
		return Spec{K: k, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: lam}
	}
	specs := []Spec{mk(16, 7.5e-5), mk(8, 1e-4), mk(16, 1.5e-4), mk(8, 2e-4), mk(16, 7.5e-5)}
	items, err := SolveBatch("hotspot-2d", specs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		want, err := Solve("hotspot-2d", sp, Options{})
		if err != nil {
			t.Fatalf("Solve(K=%d, λ=%g): %v", sp.K, sp.Lambda, err)
		}
		if items[i].Err != nil {
			t.Errorf("item %d: %v", i, items[i].Err)
			continue
		}
		if math.Float64bits(items[i].Result.Latency) != math.Float64bits(want.Latency) {
			t.Errorf("item %d (K=%d, λ=%g): batch %.17g, independent %.17g",
				i, sp.K, sp.Lambda, items[i].Result.Latency, want.Latency)
		}
	}
}

// TestSolveBatchPerItemErrors pins that bad items fail individually — an
// invalid shape, an invalid load, and a saturated load each land in their
// own item's Err while the surrounding items solve normally.
func TestSolveBatchPerItemErrors(t *testing.T) {
	good := goldenSpec("hotspot-2d")
	badShape := good
	badShape.K = 1 // K < 2 fails validation
	badLambda := good
	badLambda.Lambda = -1
	saturated := good
	saturated.Lambda = 1e-3 // beyond the saturation point at this shape
	specs := []Spec{good, badShape, badLambda, saturated, good}
	items, err := SolveBatch("hotspot-2d", specs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 4} {
		if items[i].Err != nil || items[i].Result == nil {
			t.Errorf("item %d: err %v, want clean solve", i, items[i].Err)
		}
	}
	var fe *FieldError
	if items[1].Err == nil || !errors.As(items[1].Err, &fe) || fe.Field != "k" {
		t.Errorf("bad-shape item err = %v, want FieldError on k", items[1].Err)
	}
	if items[2].Err == nil || !errors.As(items[2].Err, &fe) || fe.Field != "lambda" {
		t.Errorf("bad-lambda item err = %v, want FieldError on lambda", items[2].Err)
	}
	if !errors.Is(items[3].Err, ErrSaturated) {
		t.Errorf("saturated item err = %v, want ErrSaturated", items[3].Err)
	}
	if items[3].Result != nil {
		t.Errorf("saturated item carries a result: %+v", items[3].Result)
	}
}

func TestSolveBatchUnknownModel(t *testing.T) {
	if _, err := SolveBatch("torus-42", []Spec{goldenSpec("hotspot-2d")}, BatchOptions{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	items, err := SolveBatch("hotspot-2d", nil, BatchOptions{})
	if err != nil || len(items) != 0 {
		t.Errorf("empty batch: items %v, err %v", items, err)
	}
}

// TestPreparedSolverMatchesSolve pins the low-level prepared path: a cold
// re-solve at any λ is bit-identical to the one-shot driver, in any order.
func TestPreparedSolverMatchesSolve(t *testing.T) {
	for _, name := range Solvers() {
		ps, err := Prepare(name, goldenSpec(name), Options{})
		if err != nil {
			t.Fatalf("Prepare(%q): %v", name, err)
		}
		if ps.Name() != name {
			t.Errorf("Name() = %q, want %q", ps.Name(), name)
		}
		lams := sweepLambdas(name)
		// Descending then ascending: buffer reuse must not depend on order.
		for i := len(lams) - 1; i >= 0; i-- {
			lams = append(lams, lams[i])
		}
		for _, lam := range lams {
			sp := goldenSpec(name)
			sp.Lambda = lam
			want, err := Solve(name, sp, Options{})
			if err != nil {
				t.Fatalf("Solve(%q, λ=%g): %v", name, lam, err)
			}
			got, err := ps.Solve(lam)
			if err != nil {
				t.Fatalf("PreparedSolver.Solve(%q, λ=%g): %v", name, lam, err)
			}
			if math.Float64bits(got.Latency) != math.Float64bits(want.Latency) {
				t.Errorf("%q λ=%g: prepared %.17g, one-shot %.17g", name, lam, got.Latency, want.Latency)
			}
		}
		// Invalid λ surfaces through the prepared path too.
		if _, err := ps.Solve(-1); err == nil {
			t.Errorf("%q: negative λ accepted by prepared solver", name)
		}
	}
}

// TestWarmStartAgreesWithinTolerance pins SolveWarm's contract: seeded from
// the previous converged state it follows a different iteration path, so it
// matches the cold result only to within the solve tolerance — and it must
// take fewer rounds than the cold solve when the loads are close.
func TestWarmStartAgreesWithinTolerance(t *testing.T) {
	name := "hotspot-2d"
	lams := []float64{1.8e-4, 1.9e-4, 2.0e-4, 2.1e-4}
	ps, err := Prepare(name, goldenSpec(name), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmIters, coldIters := 0, 0
	for i, lam := range lams {
		sp := goldenSpec(name)
		sp.Lambda = lam
		cold, err := Solve(name, sp, Options{})
		if err != nil {
			t.Fatalf("cold λ=%g: %v", lam, err)
		}
		warm, err := ps.SolveWarm(lam)
		if err != nil {
			t.Fatalf("warm λ=%g: %v", lam, err)
		}
		// The first warm solve has no seed and is exactly the cold solve.
		if i == 0 && math.Float64bits(warm.Latency) != math.Float64bits(cold.Latency) {
			t.Errorf("unseeded warm solve differs: %.17g vs %.17g", warm.Latency, cold.Latency)
		}
		if rel := math.Abs(warm.Latency-cold.Latency) / cold.Latency; rel > 1e-6 {
			t.Errorf("λ=%g: warm %.15g vs cold %.15g (rel %.3g)", lam, warm.Latency, cold.Latency, rel)
		}
		if i > 0 {
			warmIters += warm.Convergence.Iterations
			coldIters += cold.Convergence.Iterations
		}
	}
	if warmIters >= coldIters {
		t.Errorf("warm starts took %d iterations, cold %d — expected a reduction", warmIters, coldIters)
	}

	// The batch driver exposes the same opt-in.
	specs := make([]Spec, len(lams))
	for i, lam := range lams {
		specs[i] = goldenSpec(name)
		specs[i].Lambda = lam
	}
	items, err := SolveBatch(name, specs, BatchOptions{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("warm batch item %d: %v", i, it.Err)
		}
		cold, _ := Solve(name, specs[i], Options{})
		if rel := math.Abs(it.Result.Latency-cold.Latency) / cold.Latency; rel > 1e-6 {
			t.Errorf("warm batch item %d: rel diff %.3g", i, rel)
		}
	}
}
