package core

// Hypercube hot-spot model, after the authors' own baseline: S. Loucif and
// M. Ould-Khaoua, "Modelling latency in deterministic wormhole-routed
// hypercubes under hot-spot traffic", J. Supercomputing 27(3), 2004 — the
// paper's reference [12] and the model the IPDPS'05 torus analysis
// generalises from. The hypercube is the 2-ary n-cube: N = 2^n nodes,
// e-cube (dimension-order) routing, one channel per dimension per node
// (with k = 2 the unidirectional and bidirectional networks coincide), V
// virtual channels per channel.
//
// Structure, parallel to the torus model:
//
//   - a regular message crosses dimension d with probability 1/2, so the
//     uniform per-channel rate is lambda*(1-h)/2;
//   - hot-spot traffic aggregates along the e-cube tree: the dimension-d
//     channel on the hot path (the one whose upstream node matches the hot
//     address on all dimensions below d and differs on d) carries
//     lambda*h*2^d — 2^d sources funnel through it; there are 2^(n-1-d)
//     such channels;
//   - service times follow the same 1 + B + next recursions, with the
//     "next" averaged over the geometric distribution of the next
//     differing dimension;
//   - blocking, source queueing and virtual-channel multiplexing reuse the
//     shared compositions (Eqs. 26-37 machinery).

import (
	"fmt"
	"math"

	"kncube/internal/queueing"
	"kncube/internal/vcmodel"
)

// HypercubeParams parameterise the hypercube model.
type HypercubeParams struct {
	// N is the number of dimensions; the network has 2^N nodes.
	N int
	// V is the number of virtual channels per channel (>= 1; deterministic
	// e-cube on a hypercube is deadlock-free without extra classes).
	V int
	// Lm is the message length in flits.
	Lm int
	// H is the hot-spot fraction in [0, 1).
	H float64
	// Lambda is the per-node generation rate, messages/cycle.
	Lambda float64
}

// Validate reports the first problem with the parameters.
func (p HypercubeParams) Validate() error {
	if p.N < 1 || p.N > 30 {
		return fieldErrf("dims", "core: hypercube N = %d, want 1..30", p.N)
	}
	if p.V < 1 {
		return fieldErrf("v", "core: hypercube V = %d, want >= 1", p.V)
	}
	if p.Lm < 1 {
		return fieldErrf("lm", "core: hypercube Lm = %d, want >= 1", p.Lm)
	}
	if p.H < 0 || p.H >= 1 || math.IsNaN(p.H) {
		return fieldErrf("h", "core: hypercube H = %v, want [0, 1)", p.H)
	}
	if p.Lambda <= 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fieldErrf("lambda", "core: hypercube Lambda = %v, want > 0", p.Lambda)
	}
	return nil
}

// Nodes returns 2^N.
func (p HypercubeParams) Nodes() int { return 1 << p.N }

// HypercubeResult is the solved hypercube model.
type HypercubeResult struct {
	// Latency is the mean message latency (the analogue of Eq. 10).
	Latency float64
	// Regular and Hot are the class-conditional latencies.
	Regular, Hot float64
	// WsRegular is the mean source-queue waiting time.
	WsRegular float64
	// V is the mean multiplexing degree over all channels.
	V float64
	// SHot[d] is the mean service time at the dimension-d hot channel.
	SHot []float64
	// Iterations is the fixed-point iteration count.
	Iterations int
	// Convergence is the fixed-point diagnostic summary.
	Convergence Convergence
}

type hyperModel struct {
	solverBase
	p        HypercubeParams
	prepared bool
	lu       float64   // regular per-channel rate lambda(1-h)/2
	lh       []float64 // hot rate on the dim-d hot channel: lambda*h*2^d
	// pHotChan[d] = fraction of dim-d channels that are hot channels,
	// 2^(n-1-d) of 2^n.
	pHotChan []float64
}

func newHyperModel(p HypercubeParams, o Options) *hyperModel {
	return &hyperModel{solverBase: newSolverBase(o, p.V, p.Lm), p: p}
}

// Prepare builds the e-cube hot-channel topology (the per-dimension hot
// fractions) and derives the rates for the constructed load.
func (m *hyperModel) Prepare() {
	if !m.prepared {
		n := m.p.N
		if n < 0 {
			n = 0
		}
		m.lh = make([]float64, n)
		m.pHotChan = make([]float64, n)
		for d := 0; d < n; d++ {
			m.pHotChan[d] = math.Pow(2, float64(-1-d))
		}
		m.prepared = true
	}
	m.SetLambda(m.p.Lambda)
}

// SetLambda recomputes the per-dimension traffic rates in place.
//
//khs:hotpath
func (m *hyperModel) SetLambda(lambda float64) {
	m.p.Lambda = lambda
	p := m.p
	m.lu = p.Lambda * (1 - p.H) / 2
	for d := range m.lh {
		m.lh[d] = p.Lambda * p.H * float64(int64(1)<<d)
	}
}

func (m *hyperModel) Validate() error { return m.p.Validate() }

// StateSize: [0..n) S^h_d (hot service at the dim-d hot channel);
// [n..2n) S^r_d (regular service at a dim-d channel).
func (m *hyperModel) StateSize() int {
	n := m.p.N
	if n < 0 {
		n = 0
	}
	return 2 * n
}

// InitState writes the zero-load services: the mean remaining path from
// dimension d is 1 + half the higher dimensions.
func (m *hyperModel) InitState(x []float64) {
	n := len(m.lh)
	for d := 0; d < n; d++ {
		rem := 1 + float64(n-1-d)/2
		x[d] = m.lm + rem
		x[n+d] = m.lm + rem
	}
}

// nextWeights gives, for a message at dimension d (having just crossed it),
// the probability that the next crossed dimension is d2 > d, and the
// probability that d was the last: each higher dimension differs
// independently with probability 1/2 for uniform (and hot) destinations.
func (m *hyperModel) nextWeights(d int) (next []float64, done float64) {
	n := m.p.N
	next = make([]float64, n) //lint:ignore hotalloc per-hop weight vector of length n, an accepted solver cost
	rem := 1.0
	for d2 := d + 1; d2 < n; d2++ {
		next[d2] = rem / 2
		rem /= 2
	}
	return next, rem
}

//khs:hotpath
func (m *hyperModel) Iterate(in, out []float64) error {
	n := m.p.N
	sh := in[:n]
	sr := in[n : 2*n]

	// Mean regular service over dimensions (used as the competing-class
	// service on every channel).
	srMean := 0.0
	for d := 0; d < n; d++ {
		srMean += sr[d]
	}
	srMean /= float64(n)

	for d := 0; d < n; d++ {
		next, done := m.nextWeights(d)
		// Continuation after crossing dimension d.
		contHot := done * m.lm
		contReg := done * m.lm
		for d2 := d + 1; d2 < n; d2++ {
			contHot += next[d2] * sh[d2]
			contReg += next[d2] * sr[d2]
		}
		// Hot channel of dimension d: regular competitors plus the
		// aggregated hot flow.
		bHot, err := m.blocking(m.lu, srMean, m.lh[d], sh[d])
		if err != nil {
			return fmt.Errorf("%w (hypercube hot channel, dim %d)", ErrSaturated, d)
		}
		out[d] = 1 + bHot + contHot
		// A regular message crosses a hot channel of dim d with
		// probability pHotChan[d]; otherwise the channel carries regular
		// traffic only.
		bShared, err := m.blocking(m.lu, srMean, m.lh[d], sh[d])
		if err != nil {
			return fmt.Errorf("%w (hypercube shared channel, dim %d)", ErrSaturated, d)
		}
		bQuiet, err := m.blocking(m.lu, srMean, 0, 0)
		if err != nil {
			return fmt.Errorf("%w (hypercube quiet channel, dim %d)", ErrSaturated, d)
		}
		bReg := m.pHotChan[d]*bShared + (1-m.pHotChan[d])*bQuiet
		out[n+d] = 1 + bReg + contReg
	}
	return nil
}

// SolveHypercube evaluates the hypercube hot-spot model (the registry's
// "hypercube").
func SolveHypercube(p HypercubeParams, o Options) (*HypercubeResult, error) {
	sr, err := solveWith(newHyperModel(p, o), o)
	if err != nil {
		return nil, err
	}
	return sr.Detail.(*HypercubeResult), nil
}

func init() {
	Register("hypercube", func(s Spec, o Options) (Solver, error) {
		if s.K != 0 && s.K != 2 {
			return nil, fieldErrf("k", "core: the hypercube is the 2-ary n-cube, got K = %d", s.K)
		}
		return newHyperModel(HypercubeParams{N: s.Dims, V: s.V, Lm: s.Lm, H: s.H, Lambda: s.Lambda}, o), nil
	})
}

// Assemble computes the latency decomposition from the converged state.
func (m *hyperModel) Assemble(state []float64, conv Convergence) (*SolveResult, error) {
	n := m.p.N
	sh := state[:n]
	sr := state[n : 2*n]

	// Entrance service times: the first crossed dimension of a uniform (or
	// hot) destination is dimension d with probability 2^-(d+1),
	// conditioned on at least one dimension differing.
	pFirst := make([]float64, n)
	rem := 1.0
	for d := 0; d < n; d++ {
		pFirst[d] = rem / 2
		rem /= 2
	}
	norm := 1 - rem // = P(dst != src)
	entHot, entReg := 0.0, 0.0
	for d := 0; d < n; d++ {
		entHot += pFirst[d] / norm * sh[d]
		entReg += pFirst[d] / norm * sr[d]
	}

	srMean := 0.0
	for d := 0; d < n; d++ {
		srMean += sr[d]
	}
	srMean /= float64(n)

	// Source queue: rate lambda/V, service = class mix of entrances.
	lv := m.p.Lambda / float64(m.p.V)
	mix := (1-m.p.H)*entReg + m.p.H*entHot
	ws, err := queueing.MG1Wait(lv, mix, m.variance(mix))
	if err != nil {
		return nil, fmt.Errorf("%w (hypercube source queue)", ErrSaturated)
	}

	// Multiplexing degree averaged over all channels.
	vSum := 0.0
	for d := 0; d < n; d++ {
		sBarHot := queueing.WeightedService(m.lu, srMean, m.lh[d], sh[d])
		vHot, err := vcmodel.Degree(m.p.V, m.lu+m.lh[d], sBarHot)
		if err != nil {
			return nil, err
		}
		vQuiet, err := vcmodel.Degree(m.p.V, m.lu, srMean)
		if err != nil {
			return nil, err
		}
		vSum += m.pHotChan[d]*vHot + (1-m.pHotChan[d])*vQuiet
	}
	vBar := vSum / float64(n)

	regular := (entReg + ws) * vBar
	hot := (entHot + ws) * vBar
	latency := (1-m.p.H)*regular + m.p.H*hot

	r := &HypercubeResult{
		Latency:     latency,
		Regular:     regular,
		Hot:         hot,
		WsRegular:   ws,
		V:           vBar,
		SHot:        append([]float64(nil), sh...),
		Iterations:  conv.Iterations,
		Convergence: conv,
	}
	return &SolveResult{
		Latency:     latency,
		Regular:     regular,
		Hot:         hot,
		SourceWait:  ws,
		VBar:        vBar,
		Convergence: conv,
		Detail:      r,
	}, nil
}
