package core

import (
	"math"
	"testing"

	"kncube/internal/topology"

	"kncube/internal/stats"
)

func TestRatesValidation(t *testing.T) {
	if _, err := Rates(Params{}); err == nil {
		t.Error("Rates accepted zero params")
	}
}

func TestRatesMatchEquations(t *testing.T) {
	p := Params{K: 8, V: 2, Lm: 16, H: 0.3, Lambda: 1e-3}
	r, err := Rates(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Regular, 1e-3*0.7*3.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("Regular = %v, want %v", got, want)
	}
	for j := 1; j <= 8; j++ {
		wantY := 1e-3 * 0.3 * 8 * float64(8-j)
		if math.Abs(r.HotY[j]-wantY) > 1e-15 {
			t.Errorf("HotY[%d] = %v, want %v", j, r.HotY[j], wantY)
		}
		wantX := 1e-3 * 0.3 * float64(8-j)
		if math.Abs(r.HotX[j]-wantX) > 1e-15 {
			t.Errorf("HotX[%d] = %v, want %v", j, r.HotX[j], wantX)
		}
	}
	if !stats.IsZero(r.HotY[8]) || !stats.IsZero(r.HotX[8]) {
		t.Error("channels leaving the hot node/column must carry no hot traffic")
	}
}

func TestRatesMatchBruteForceCrossingCounts(t *testing.T) {
	// Eqs. 4-7 against exhaustive path counting on the topology: the rate
	// on a channel equals lambda·h times the number of sources whose
	// deterministic path crosses it.
	for _, k := range []int{3, 4, 8} {
		p := Params{K: k, V: 2, Lm: 8, H: 0.25, Lambda: 2e-3}
		r, err := Rates(p)
		if err != nil {
			t.Fatal(err)
		}
		cube := topology.MustNew(k, 2)
		hs := topology.HotSpot{Cube: cube, Node: cube.FromCoords([]int{1, 2})}
		for j := 1; j <= k; j++ {
			crossY := hs.SourcesCrossingHotYChannel(j)
			wantY := p.Lambda * p.H * float64(crossY)
			if math.Abs(r.HotY[j]-wantY) > 1e-15 {
				t.Errorf("k=%d HotY[%d] = %v, brute force %v", k, j, r.HotY[j], wantY)
			}
			crossX := hs.SourcesCrossingXChannel(cube.FromCoords([]int{0, 0}), j)
			wantX := p.Lambda * p.H * float64(crossX)
			if math.Abs(r.HotX[j]-wantX) > 1e-15 {
				t.Errorf("k=%d HotX[%d] = %v, brute force %v", k, j, r.HotX[j], wantX)
			}
		}
	}
}

func TestRatesConservation(t *testing.T) {
	// Total hot y-channel crossings must equal the sum over sources of
	// their y-distance to the hot node.
	p := Params{K: 8, V: 2, Lm: 16, H: 0.3, Lambda: 1e-3}
	r, err := Rates(p)
	if err != nil {
		t.Fatal(err)
	}
	got := r.TotalHotYCrossings(p.Lambda, p.H)
	cube := topology.MustNew(8, 2)
	hs := topology.HotSpot{Cube: cube, Node: 0}
	want := 0
	for id := topology.NodeID(0); int(id) < cube.Nodes(); id++ {
		if id != hs.Node {
			want += hs.HotPathYHops(id)
		}
	}
	if math.Abs(got-float64(want)) > 1e-9 {
		t.Errorf("total y crossings %v, want %d", got, want)
	}
}

func TestBottleneckUtilisation(t *testing.T) {
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}
	r, err := Rates(p)
	if err != nil {
		t.Fatal(err)
	}
	// (lambda_r + lambda_hy[1])·Lm.
	want := (1e-4*0.8*7.5 + 1e-4*0.2*16*15) * 32
	if math.Abs(r.BottleneckUtilisation(32)-want) > 1e-12 {
		t.Errorf("bottleneck utilisation %v, want %v", r.BottleneckUtilisation(32), want)
	}
	if !stats.IsZero((ChannelRates{}).BottleneckUtilisation(32)) {
		t.Error("empty rates should report 0")
	}
}

func TestCapacityLambdaOrdering(t *testing.T) {
	// Capacity falls with h and with Lm, and roughly matches the paper's
	// figure axis maxima.
	c2032 := CapacityLambda(16, 32, 0.2)
	c4032 := CapacityLambda(16, 32, 0.4)
	c7032 := CapacityLambda(16, 32, 0.7)
	c20100 := CapacityLambda(16, 100, 0.2)
	if !(c2032 > c4032 && c4032 > c7032) {
		t.Errorf("capacity not decreasing in h: %v %v %v", c2032, c4032, c7032)
	}
	if c20100 >= c2032 {
		t.Errorf("capacity not decreasing in Lm: %v vs %v", c20100, c2032)
	}
	// Figure 1 h=20% axis ends at 6e-4; capacity must be within ~20%.
	if c2032 < 4.8e-4 || c2032 > 7.2e-4 {
		t.Errorf("h=20%%/Lm=32 capacity %v far from the paper's 6e-4 axis", c2032)
	}
}

func TestSaturationNearCapacityAcrossGrid(t *testing.T) {
	// The model's bisected saturation must land within [35%, 105%] of the
	// analytic capacity bound for a grid of (h, Lm).
	for _, h := range []float64{0.2, 0.5, 0.8} {
		for _, lm := range []int{16, 64} {
			capacity := CapacityLambda(16, lm, h)
			sat, err := SaturationLambda(func(lam float64) error {
				_, e := SolveHotSpot(Params{K: 16, V: 2, Lm: lm, H: h, Lambda: lam}, Options{})
				return e
			}, capacity/100, 0, 1e-3)
			if err != nil {
				t.Fatalf("h=%v lm=%d: %v", h, lm, err)
			}
			ratio := sat / capacity
			if ratio < 0.35 || ratio > 1.05 {
				t.Errorf("h=%v lm=%d: saturation %v = %.2f of capacity %v",
					h, lm, sat, ratio, capacity)
			}
		}
	}
}
