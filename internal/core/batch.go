package core

import (
	"errors"
	"fmt"
)

// Prepared solves and the batch driver. A PreparedSolver is a validated,
// Prepare()d solver instance plus a reusable state buffer: re-solving it
// for a new offered load costs only SetLambda (a rate recomputation) and
// the iteration itself, skipping the topology/layout construction and the
// state allocation that Solve pays per call. SolveBatch runs many specs of
// one variant through a map of prepared solvers keyed by topology shape —
// exactly the load profile of sweeps, surface builds, and batch requests.

// PreparedSolver is a reusable solver instance: validated and prepared
// once, re-solvable for many offered loads. It is not safe for concurrent
// use — the state buffer is shared across solves.
type PreparedSolver struct {
	name string
	s    Solver
	o    Options
	x    []float64
	warm bool // previous solve converged; its state seeds SolveWarm
}

// Prepare validates and prepares the named variant once, returning a
// solver that can be re-solved for many offered loads without repeating
// the spec-invariant setup.
func Prepare(name string, s Spec, o Options) (*PreparedSolver, error) {
	sol, err := NewSolver(name, s, o)
	if err != nil {
		return nil, err
	}
	if err := sol.Validate(); err != nil {
		return nil, err
	}
	sol.Prepare()
	return &PreparedSolver{name: name, s: sol, o: o, x: make([]float64, sol.StateSize())}, nil
}

// Name returns the registry name the solver was prepared for.
func (ps *PreparedSolver) Name() string { return ps.name }

// Solve re-solves the prepared model at the given offered load from the
// zero-load starting point. The result is bit-identical to
// Solve(name, spec, opts) with the same λ.
func (ps *PreparedSolver) Solve(lambda float64) (*SolveResult, error) {
	return ps.solve(lambda, false)
}

// SolveWarm re-solves at a new offered load, seeding the iteration from
// the previous converged state when one is available (falling back to the
// zero-load start otherwise). Nearby loads then converge in far fewer
// rounds, but the iteration follows a different path than a cold solve:
// results agree with Solve only to within the convergence tolerance, not
// bit-for-bit.
func (ps *PreparedSolver) SolveWarm(lambda float64) (*SolveResult, error) {
	return ps.solve(lambda, true)
}

func (ps *PreparedSolver) solve(lambda float64, warm bool) (*SolveResult, error) {
	ps.s.SetLambda(lambda)
	if err := ps.s.Validate(); err != nil {
		return nil, err
	}
	if !warm || !ps.warm {
		ps.s.InitState(ps.x)
	}
	res, err := finishSolve(ps.s, ps.x, ps.o)
	// A failed iteration (saturation, cancellation) leaves the buffer
	// mid-flight or non-finite; only a converged state may seed the next
	// warm solve.
	ps.warm = err == nil
	return res, err
}

// BatchOptions configure SolveBatch.
type BatchOptions struct {
	Options
	// WarmStart seeds each solve from the previous converged solve of the
	// same topology shape when only λ changed. Off by default: cold-started
	// batch items are bit-identical to independent Solve calls; warm starts
	// converge faster but agree with cold results only to within the solve
	// tolerance (see PreparedSolver.SolveWarm).
	WarmStart bool
}

// BatchItem is one spec's outcome in a SolveBatch: exactly one of Result
// and Err is set.
type BatchItem struct {
	Result *SolveResult
	Err    error
}

// GridOptions configure SolveLambdas.
type GridOptions struct {
	BatchOptions
	// StopAtSaturation marks every load beyond the first saturated one as
	// saturated without solving it. The models' latency is monotone in the
	// offered load, so once a λ saturates every larger λ of the same shape
	// saturates too; skipping them avoids paying the full iteration budget
	// (the most expensive failure mode — up to MaxIterations rounds) once
	// per point beyond the frontier. The skipped items' Err wraps
	// ErrSaturated like a solved saturation would.
	StopAtSaturation bool
}

// SolveLambdas solves one topology shape across an ascending grid of
// offered loads — the access pattern of sweeps and latency-surface builds.
// The shape (every Spec field but Lambda) is validated and prepared once;
// shape.Lambda is ignored. Items map 1:1 onto lambdas, in order. A shape
// that fails validation fails the call (there is nothing per-item about
// it); per-load failures land in their item like SolveBatch.
func SolveLambdas(name string, shape Spec, lambdas []float64, o GridOptions) ([]BatchItem, error) {
	if len(lambdas) == 0 {
		return nil, fieldErrf("lambda", "core: SolveLambdas needs at least one load")
	}
	for i := 1; i < len(lambdas); i++ {
		if !(lambdas[i] > lambdas[i-1]) {
			return nil, fieldErrf("lambda", "core: SolveLambdas loads must be strictly ascending (index %d: %v after %v)",
				i, lambdas[i], lambdas[i-1])
		}
	}
	shape.Lambda = lambdas[0]
	ps, err := Prepare(name, shape, o.Options)
	if err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(lambdas))
	for i, lam := range lambdas {
		if o.WarmStart {
			items[i].Result, items[i].Err = ps.SolveWarm(lam)
		} else {
			items[i].Result, items[i].Err = ps.Solve(lam)
		}
		if o.StopAtSaturation && errors.Is(items[i].Err, ErrSaturated) {
			for j := i + 1; j < len(lambdas); j++ {
				items[j].Err = fmt.Errorf("%w: beyond the saturation frontier (lambda %v saturated)",
					ErrSaturated, lam)
			}
			break
		}
	}
	return items, nil
}

// SolveBatch solves many specs of one model variant, validating and
// preparing once per distinct topology shape (all Spec fields except
// Lambda) and reusing that preparation across the specs that share it.
// Items are solved in input order; per-spec failures (validation,
// saturation, cancellation) land in the item's Err and the batch
// continues. Only an unknown model name fails the whole batch.
func SolveBatch(name string, specs []Spec, o BatchOptions) ([]BatchItem, error) {
	if _, err := lookup(name); err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(specs))
	prepared := map[Spec]*PreparedSolver{}
	for i, sp := range specs {
		key := sp
		key.Lambda = 0
		ps := prepared[key]
		if ps == nil {
			var err error
			ps, err = Prepare(name, sp, o.Options)
			if err != nil {
				// A per-spec failure (bad shape or bad λ): record it and move
				// on. Failures are not cached — like independent Solve calls,
				// each bad spec reports its own error.
				items[i].Err = err
				continue
			}
			prepared[key] = ps
		}
		if o.WarmStart {
			items[i].Result, items[i].Err = ps.SolveWarm(sp.Lambda)
		} else {
			items[i].Result, items[i].Err = ps.Solve(sp.Lambda)
		}
	}
	return items, nil
}
