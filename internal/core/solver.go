package core

// The Solver interface and the shared fixed-point driver. The five model
// variants (hot-spot torus, bidirectional torus, uniform baseline,
// hypercube, general k-ary n-cube) are all the same pipeline — traffic
// rates → service-time recursions → M/G/1 blocking → source queue → Dally's
// V̄ — solved by damped fixed-point iteration; this file holds the single
// copy of everything that pipeline shares: the driver around
// fixpoint.Solve, the blocking/variance composition, and the saturation
// classification of iteration failures. Variant files implement Solver and
// register a factory (registry.go); nothing below this layer calls
// fixpoint.Solve directly.

import (
	"errors"
	"fmt"

	"kncube/internal/fixpoint"
	"kncube/internal/stats"
)

// Convergence re-exports the fixed-point diagnostic summary carried by
// every solved result.
type Convergence = fixpoint.Convergence

// Solver is one latency-model variant, expressed as the fixed-point system
// the shared driver iterates. Construction is trivial; the spec-invariant
// setup happens in Prepare and the heavy work in Iterate and Assemble.
//
// The solve phases split along the λ boundary: Prepare builds everything
// that depends only on the topology shape (ring/row enumeration, hot-spot
// rate topology, channel indexing, case probabilities), while SetLambda
// recomputes only the offered-load-dependent traffic rates. A prepared
// solver can therefore be re-solved for many loads — the shape of sweeps,
// surface builds, and batch requests — without repeating the setup; see
// PreparedSolver and SolveBatch in batch.go.
type Solver interface {
	// Validate reports the first problem with the solver's parameters; the
	// driver calls it before touching any state.
	Validate() error
	// Prepare builds the spec-invariant machinery and computes the traffic
	// rates for the constructed load. Idempotent: a second call is a no-op
	// apart from re-deriving the rates. The driver calls it after Validate
	// and before any other state access.
	Prepare()
	// SetLambda re-points the prepared solver at a new offered load,
	// recomputing only the λ-dependent traffic rates in place. Prepare
	// must have been called first.
	SetLambda(lambda float64)
	// StateSize is the length of the flattened fixed-point vector.
	StateSize() int
	// InitState writes the zero-load (blocking-free) starting point into
	// x, which has length StateSize.
	InitState(x []float64)
	// Iterate is the substitution map out = F(in) (a fixpoint.Map).
	// Implementations wrap blocking failures in ErrSaturated.
	Iterate(in, out []float64) error
	// Assemble computes the variant's result from the converged state; the
	// convergence summary must be propagated into the result.
	Assemble(x []float64, conv Convergence) (*SolveResult, error)
}

// SolveResult is the variant-independent view of a solved model: the
// latency decomposition every variant produces, the convergence
// diagnostics, and the variant's full typed result under Detail.
type SolveResult struct {
	// Latency is the mean message latency in cycles (Eq. 10).
	Latency float64
	// Regular and Hot are the class-conditional mean latencies. Variants
	// without a hot-spot class (the uniform baseline, or H = 0) report
	// both equal to Latency.
	Regular, Hot float64
	// SourceWait is the mean source-queue waiting time (Eq. 32).
	SourceWait float64
	// VBar is the channel-averaged virtual-channel multiplexing degree
	// (Eqs. 33-37).
	VBar float64
	// Convergence summarises the fixed-point iteration.
	Convergence Convergence
	// Detail is the variant's typed result (*Result, *BiResult,
	// *UniformResult, *HypercubeResult or *NDimResult).
	Detail any
}

// defaultFixPoint is the solver-facing defaulting rule: a wholly-zero
// numeric configuration selects the tight tolerances the models were
// calibrated with (stricter than fixpoint.Defaults); a partially-set one
// is passed through for fixpoint's own per-field defaulting. The Trace
// hook is orthogonal and preserved either way.
func defaultFixPoint(o fixpoint.Options) fixpoint.Options {
	if stats.IsZero(o.Tolerance) && o.MaxIterations == 0 && stats.IsZero(o.Damping) {
		o.Tolerance, o.MaxIterations, o.Damping = 1e-9, 20000, 0.5
	}
	return o
}

// solveWith is the shared driver: validate, build the zero-load state, run
// the damped fixed-point iteration, classify failures, assemble. It is the
// single entry point into fixpoint.Solve for every model variant.
func solveWith(s Solver, o Options) (*SolveResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.Prepare()
	x := make([]float64, s.StateSize())
	s.InitState(x)
	return finishSolve(s, x, o)
}

// finishSolve runs the fixed-point iteration on a prepared solver over an
// initialised state vector, classifies failures, and assembles the result.
// It is shared by solveWith and the prepared/batch path, so both follow the
// same arithmetic bit-for-bit.
func finishSolve(s Solver, x []float64, o Options) (*SolveResult, error) {
	conv, err := fixpoint.Solve(x, s.Iterate, defaultFixPoint(o.FixPoint))
	if err != nil {
		// Divergence and budget exhaustion are how an analytical latency
		// model expresses operation beyond its saturation point; anything
		// else (including ErrSaturated already wrapped by Iterate, and the
		// context.Canceled/DeadlineExceeded wrappers produced when
		// o.FixPoint.Ctx cancels the iteration) passes through unchanged,
		// so callers can tell a cancelled solve from a saturated one.
		if errors.Is(err, fixpoint.ErrDiverged) || errors.Is(err, fixpoint.ErrMaxIterations) {
			return nil, fmt.Errorf("%w: %v", ErrSaturated, err)
		}
		return nil, err
	}
	return s.Assemble(x, conv)
}

// solverBase carries the knobs every variant's blocking and variance
// compositions share; embedding it is what keeps the per-variant models
// free of their own copies of these methods.
type solverBase struct {
	o  Options
	v  int     // virtual channels per physical channel
	lm float64 // message length in flits
}

func newSolverBase(o Options, v, lm int) solverBase {
	return solverBase{o: o, v: v, lm: float64(lm)}
}

// blocking composes Eqs. 26-30 for a channel carrying regular traffic
// (lr, sr) and hot-spot traffic (lh, sh) under the configured form.
func (b *solverBase) blocking(lr, sr, lh, sh float64) (float64, error) {
	return blockingDelay(b.o, b.v, b.lm, lr, sr, lh, sh)
}

// variance is the service-time variance under the configured VarianceForm.
func (b *solverBase) variance(sBar float64) float64 {
	return serviceVariance(b.o, b.lm, sBar)
}
