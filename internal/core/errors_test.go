package core

import (
	"errors"
	"testing"
)

// TestValidationErrorsAreFieldErrors pins the structured-validation
// contract the serving layer relies on: every parameter rejection — from a
// variant's Validate, a factory's spec check, or the registry's model
// lookup — surfaces as a *FieldError naming the offending Spec field.
func TestValidationErrorsAreFieldErrors(t *testing.T) {
	good := Spec{K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}
	cases := []struct {
		name   string
		model  string
		mutate func(*Spec)
		field  string
	}{
		{"bad K", "hotspot-2d", func(s *Spec) { s.K = 1 }, "k"},
		{"bad V", "hotspot-2d", func(s *Spec) { s.V = 0 }, "v"},
		{"bad Lm", "hotspot-2d", func(s *Spec) { s.Lm = 0 }, "lm"},
		{"bad H", "hotspot-2d", func(s *Spec) { s.H = 1.5 }, "h"},
		{"bad Lambda", "hotspot-2d", func(s *Spec) { s.Lambda = 0 }, "lambda"},
		{"bad Dims", "hotspot-2d", func(s *Spec) { s.Dims = 3 }, "dims"},
		{"bi bad Dims", "bidirectional-2d", func(s *Spec) { s.Dims = 3 }, "dims"},
		{"uniform with hot spot", "uniform", func(s *Spec) {}, "h"},
		{"hypercube bad K", "hypercube", func(s *Spec) {}, "k"},
		{"ndim bad V", "ndim", func(s *Spec) { s.V = 1 }, "v"},
		{"unknown model", "no-such-model", func(s *Spec) {}, "model"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := good
			tc.mutate(&spec)
			_, err := Solve(tc.model, spec, Options{})
			if err == nil {
				t.Fatal("want a validation error")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("err %v (%T) is not a *FieldError", err, err)
			}
			if fe.Field != tc.field {
				t.Errorf("Field = %q, want %q (reason %q)", fe.Field, tc.field, fe.Reason)
			}
			if fe.Reason == "" || fe.Error() != fe.Reason {
				t.Errorf("Reason/Error mismatch: %q vs %q", fe.Reason, fe.Error())
			}
		})
	}
}

// TestGoodSpecPassesValidation guards against FieldError conversions
// tightening any range.
func TestGoodSpecPassesValidation(t *testing.T) {
	for _, model := range Solvers() {
		spec := Spec{K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 1e-5}
		switch model {
		case "uniform":
			spec.H = 0
		case "hypercube":
			spec.K, spec.Dims = 2, 8
		case "ndim":
			spec.Dims = 3
			spec.K = 8
		}
		if _, err := NewSolver(model, spec, Options{}); err != nil {
			t.Errorf("%s: NewSolver rejected a good spec: %v", model, err)
		}
	}
}
