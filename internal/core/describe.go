package core

import "errors"

// Constraint discovery for API clients. The variants keep their parameter
// rules inside Validate (single source of truth); Constraints recovers a
// per-field description of those rules by probing the validator with
// deliberately-invalid specs and harvesting the *FieldError each probe
// provokes. The probe values are invalid for every registered variant, so
// each probe isolates exactly the field it mutates.

// Constraint describes one validated Spec field of a model variant: the
// canonical field name and the validator's own words for what it requires
// (the Reason of the FieldError an out-of-range value provokes).
type Constraint struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// probeBases are candidate valid operating points; Constraints uses the
// first one the variant accepts. Together they cover every registered
// variant: the torus variants take the Figure-1 shape, the uniform
// baseline needs H = 0, and the hypercube needs K = 2.
var probeBases = []Spec{
	{K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4},
	{K: 16, Dims: 2, V: 2, Lm: 32, H: 0, Lambda: 1e-4},
	{K: 2, Dims: 8, V: 2, Lm: 32, H: 0.2, Lambda: 1e-5},
	{K: 2, Dims: 8, V: 2, Lm: 32, H: 0, Lambda: 1e-5},
}

// probes mutate one field of a valid base to a value no registered
// variant accepts, so the resulting FieldError documents that field's
// constraint. Validation reports first-failure, which is why the base
// must be otherwise valid.
var probes = []struct {
	field  string
	mutate func(*Spec)
}{
	{"k", func(s *Spec) { s.K = 1 }},
	{"dims", func(s *Spec) { s.Dims = -1 }},
	{"v", func(s *Spec) { s.V = 0 }},
	{"lm", func(s *Spec) { s.Lm = 0 }},
	{"h", func(s *Spec) { s.H = 1.5 }},
	{"lambda", func(s *Spec) { s.Lambda = -1 }},
}

// Constraints describes the named variant's per-field validation rules in
// canonical field order (k, dims, v, lm, h, lambda). Only an unknown
// model name errors. A field with no entry is unconstrained for this
// variant beyond what the probe could observe.
func Constraints(name string) ([]Constraint, error) {
	if _, err := lookup(name); err != nil {
		return nil, err
	}
	base, ok := validBase(name)
	if !ok {
		// Unreachable for the registered variants (probeBases covers them
		// all); an externally-registered variant with an exotic operating
		// point simply reports no constraints rather than failing.
		return nil, nil
	}
	out := make([]Constraint, 0, len(probes))
	for _, p := range probes {
		sp := base
		p.mutate(&sp)
		err := validateSpec(name, sp)
		var fe *FieldError
		if errors.As(err, &fe) {
			out = append(out, Constraint{Field: fe.Field, Reason: fe.Reason})
		}
	}
	return out, nil
}

// validBase returns the first probe base the variant accepts.
func validBase(name string) (Spec, bool) {
	for _, b := range probeBases {
		if validateSpec(name, b) == nil {
			return b, true
		}
	}
	return Spec{}, false
}

// validateSpec runs the variant's full validation path — factory checks
// (which reject variant-contradicting fields) and Solver.Validate (which
// range-checks) — without preparing or solving anything.
func validateSpec(name string, s Spec) error {
	sol, err := NewSolver(name, s, Options{})
	if err != nil {
		return err
	}
	return sol.Validate()
}
