package core

import (
	"errors"
	"math"
	"testing"

	"kncube/internal/stats"
)

func solveOK(t *testing.T, p Params, o Options) *Result {
	t.Helper()
	r, err := SolveHotSpot(p, o)
	if err != nil {
		t.Fatalf("Solve(%+v): %v", p, err)
	}
	return r
}

func TestParamsValidate(t *testing.T) {
	good := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := []Params{
		{K: 1, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4},
		{K: 16, V: 1, Lm: 32, H: 0.2, Lambda: 1e-4},
		{K: 16, V: 2, Lm: 0, H: 0.2, Lambda: 1e-4},
		{K: 16, V: 2, Lm: 32, H: -0.1, Lambda: 1e-4},
		{K: 16, V: 2, Lm: 32, H: 1.0, Lambda: 1e-4},
		{K: 16, V: 2, Lm: 32, H: math.NaN(), Lambda: 1e-4},
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0},
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: -1},
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: math.Inf(1)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{K: 16}
	if p.N() != 256 {
		t.Errorf("N = %d", p.N())
	}
	if !stats.ApproxEqual(p.KBar(), 7.5, 0, 0) {
		t.Errorf("KBar = %v", p.KBar())
	}
	if !stats.ApproxEqual(p.MeanDistance(), 15, 0, 0) {
		t.Errorf("MeanDistance = %v", p.MeanDistance())
	}
}

func TestSolveRejectsBadParams(t *testing.T) {
	if _, err := SolveHotSpot(Params{}, Options{}); err == nil {
		t.Error("Solve accepted zero params")
	}
}

func TestZeroLoadLatencyMatchesGeometry(t *testing.T) {
	// At vanishing load, blocking and waiting vanish and the latency must
	// approach the traffic-weighted zero-load value: Lm + mean path length
	// for each class.
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-9}
	r := solveOK(t, p, Options{})

	// Regular zero-load: uniform destinations, mean distance 2·k̄ = 15.
	wantReg := float64(p.Lm) + 15
	if math.Abs(r.Regular-wantReg) > 0.75 {
		t.Errorf("regular zero-load latency %v, want ~%v", r.Regular, wantReg)
	}
	// Hot zero-load: average over the N-1 source positions of Lm + dist.
	k := p.K
	sum, cnt := 0.0, 0
	for j := 1; j <= k-1; j++ { // hot-ring sources
		sum += float64(p.Lm + j)
		cnt++
	}
	for t2 := 1; t2 <= k; t2++ {
		for j := 1; j <= k-1; j++ {
			d := j
			if t2 < k {
				d += t2
			}
			sum += float64(p.Lm + d)
			cnt++
		}
	}
	wantHot := sum / float64(cnt)
	if math.Abs(r.Hot-wantHot) > 0.5 {
		t.Errorf("hot zero-load latency %v, want ~%v", r.Hot, wantHot)
	}
	want := (1-p.H)*wantReg + p.H*wantHot
	if math.Abs(r.Latency-want) > 0.75 {
		t.Errorf("zero-load latency %v, want ~%v", r.Latency, want)
	}
	if r.WsRegular > 0.01 {
		t.Errorf("zero-load source wait %v, want ~0", r.WsRegular)
	}
	if r.VX > 1.001 || r.VHy > 1.001 || r.VHyBar > 1.001 {
		t.Errorf("zero-load multiplexing degrees %v %v %v, want ~1", r.VX, r.VHy, r.VHyBar)
	}
}

func TestLatencyMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lam := range []float64{1e-5, 5e-5, 1e-4, 2e-4, 3e-4, 4e-4} {
		r := solveOK(t, Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: lam}, Options{})
		if r.Latency <= prev {
			t.Fatalf("latency not increasing at lambda=%v: %v <= %v", lam, r.Latency, prev)
		}
		prev = r.Latency
	}
}

func TestLatencyMonotoneInH(t *testing.T) {
	lam := 1e-4
	prev := 0.0
	for _, h := range []float64{0, 0.1, 0.2, 0.4, 0.6} {
		r := solveOK(t, Params{K: 16, V: 2, Lm: 32, H: h, Lambda: lam}, Options{})
		if r.Latency < prev {
			t.Fatalf("latency decreased at h=%v: %v < %v", h, r.Latency, prev)
		}
		prev = r.Latency
	}
}

func TestLatencyMonotoneInLm(t *testing.T) {
	prev := 0.0
	for _, lm := range []int{8, 16, 32, 64, 100} {
		r := solveOK(t, Params{K: 16, V: 2, Lm: lm, H: 0.2, Lambda: 5e-5}, Options{})
		if r.Latency <= prev {
			t.Fatalf("latency not increasing at Lm=%d: %v <= %v", lm, r.Latency, prev)
		}
		prev = r.Latency
	}
}

func TestSaturationDetected(t *testing.T) {
	// Far beyond the hot-channel capacity 1/(h·k·(k-1)·Lm).
	_, err := SolveHotSpot(Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.01}, Options{})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

func TestSaturationOrderedInH(t *testing.T) {
	sat := func(h float64) float64 {
		s, err := SaturationLambda(func(lam float64) error {
			_, err := SolveHotSpot(Params{K: 16, V: 2, Lm: 32, H: h, Lambda: lam}, Options{})
			return err
		}, 1e-6, 0, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s20, s40, s70 := sat(0.2), sat(0.4), sat(0.7)
	if !(s20 > s40 && s40 > s70) {
		t.Errorf("saturation rates not ordered: h20=%v h40=%v h70=%v", s20, s40, s70)
	}
	// The hot-ring bottleneck argument: saturation within a factor ~2 of
	// 1/(h·k·(k-1)·(Lm+1)).
	approx := 1 / (0.2 * 16 * 15 * 33)
	if s20 < approx/3 || s20 > approx*3 {
		t.Errorf("h=0.2 saturation %v implausible vs bottleneck estimate %v", s20, approx)
	}
}

func TestSaturationOrderedInLm(t *testing.T) {
	sat := func(lm int) float64 {
		s, err := SaturationLambda(func(lam float64) error {
			_, err := SolveHotSpot(Params{K: 16, V: 2, Lm: lm, H: 0.4, Lambda: lam}, Options{})
			return err
		}, 1e-7, 0, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s32, s100 := sat(32), sat(100); s32 <= s100 {
		t.Errorf("saturation should fall with Lm: Lm32=%v Lm100=%v", s32, s100)
	}
}

func TestHotLatencyExceedsRegularNearLoad(t *testing.T) {
	// Hot-spot messages funnel through congested channels; under load
	// their latency must exceed the regular-message latency.
	r := solveOK(t, Params{K: 16, V: 2, Lm: 32, H: 0.4, Lambda: 2e-4}, Options{})
	if r.Hot <= r.Regular {
		t.Errorf("hot latency %v not above regular %v", r.Hot, r.Regular)
	}
}

func TestServiceTimesDecreaseTowardHotNode(t *testing.T) {
	// S^h_y[j] grows with j (more hops left => longer service).
	r := solveOK(t, Params{K: 8, V: 2, Lm: 16, H: 0.3, Lambda: 5e-4}, Options{})
	for j := 2; j <= 7; j++ {
		if r.SHotY[j] <= r.SHotY[j-1] {
			t.Errorf("S^h_y not increasing at j=%d: %v <= %v", j, r.SHotY[j], r.SHotY[j-1])
		}
	}
}

func TestHotXRowsOrdered(t *testing.T) {
	// For fixed j, a source farther from the hot node in y (larger t < k)
	// has a longer remaining path and thus a larger service time; the hot
	// row (t = k) has the shortest.
	r := solveOK(t, Params{K: 8, V: 2, Lm: 16, H: 0.3, Lambda: 5e-4}, Options{})
	k := 8
	j := 3
	for t2 := 2; t2 <= k-1; t2++ {
		if r.SHotX[t2-1][j] <= r.SHotX[t2-2][j] {
			t.Errorf("S^h_x(t=%d,j=%d)=%v not above t=%d (%v)",
				t2, j, r.SHotX[t2-1][j], t2-1, r.SHotX[t2-2][j])
		}
	}
	if r.SHotX[k-1][j] >= r.SHotX[0][j] {
		t.Errorf("hot-row service %v should be smallest (t=1 gives %v)",
			r.SHotX[k-1][j], r.SHotX[0][j])
	}
}

func TestMultiplexingDegreeBounds(t *testing.T) {
	r := solveOK(t, Params{K: 16, V: 3, Lm: 32, H: 0.4, Lambda: 2e-4}, Options{})
	for _, v := range []float64{r.VX, r.VHy, r.VHyBar} {
		if v < 1 || v > 3 {
			t.Errorf("multiplexing degree %v outside [1, V]", v)
		}
	}
	// The hot ring is the busiest: its multiplexing degree dominates.
	if r.VHy < r.VHyBar {
		t.Errorf("hot-ring multiplexing %v below non-hot %v", r.VHy, r.VHyBar)
	}
}

func TestHZeroMatchesUniformBaseline(t *testing.T) {
	// With h = 0 the hot-spot model must agree with the independent
	// uniform-traffic baseline: tightly at light load, within 20% deep
	// into the load range (their blocking-accumulation structures differ:
	// per-hop recursions vs. a scalar d̄·B).
	for _, c := range []struct{ lam, tol float64 }{
		{1e-4, 0.03}, {1e-3, 0.20}, {2e-3, 0.20},
	} {
		hs := solveOK(t, Params{K: 16, V: 2, Lm: 32, H: 0, Lambda: c.lam}, Options{})
		u, err := SolveUniform(UniformParams{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: c.lam})
		if err != nil {
			t.Fatalf("uniform baseline: %v", err)
		}
		rel := math.Abs(hs.Latency-u.Latency) / u.Latency
		if rel > c.tol {
			t.Errorf("lambda=%v: h=0 model %v vs uniform baseline %v (rel %v > %v)",
				c.lam, hs.Latency, u.Latency, rel, c.tol)
		}
	}
}

func TestEntrancePolicyOrdering(t *testing.T) {
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 2e-4}
	mean := solveOK(t, p, Options{Entrance: EntranceMeanDistance})
	worst := solveOK(t, p, Options{Entrance: EntranceWorstCase})
	kbar := solveOK(t, p, Options{Entrance: EntranceKBar})
	if worst.Latency <= mean.Latency {
		t.Errorf("worst-case entrance %v not above mean %v", worst.Latency, mean.Latency)
	}
	if kbar.Latency <= 0 {
		t.Errorf("kbar entrance nonpositive: %v", kbar.Latency)
	}
}

func TestBlockingFormOrdering(t *testing.T) {
	// B = Pb·wc <= wc since Pb <= 1, so the paper form gives lower latency
	// than the wait-only form at loads where both are finite.
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}
	paper := solveOK(t, p, Options{Blocking: BlockingPaper})
	waitOnly := solveOK(t, p, Options{Blocking: BlockingWaitOnly})
	if waitOnly.Latency < paper.Latency {
		t.Errorf("wait-only blocking %v below paper form %v", waitOnly.Latency, paper.Latency)
	}
}

func TestBlockingFormsFiniteAtLightLoad(t *testing.T) {
	// Every blocking form must solve well below saturation and agree with
	// the others within a few percent there.
	p := Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 5e-5}
	var lats []float64
	for _, form := range []BlockingForm{
		BlockingVCOccupancy, BlockingPaper, BlockingWaitOnly,
		BlockingMultiServer, BlockingBandwidth,
	} {
		r := solveOK(t, p, Options{Blocking: form})
		lats = append(lats, r.Latency)
	}
	for i := 1; i < len(lats); i++ {
		if math.Abs(lats[i]-lats[0])/lats[0] > 0.10 {
			t.Errorf("form %d latency %v far from default %v at light load", i, lats[i], lats[0])
		}
	}
}

func TestModelCoversLoadRangeUpToCapacity(t *testing.T) {
	// With the calibrated default options, the model must stay finite up
	// to 85% of the hot-channel flit capacity 1/(h·k·(k-1)·(Lm+1)) — the
	// physical bound the paper's figure axes are built around (some axes
	// extend slightly past it; there the simulated network itself is
	// saturated). See EXPERIMENTS.md.
	for _, h := range []float64{0.2, 0.4, 0.7} {
		for _, lm := range []int{32, 100} {
			capacity := 1 / (h * 16 * 15 * float64(lm+1))
			lam := 0.85 * capacity
			p := Params{K: 16, V: 2, Lm: lm, H: h, Lambda: lam}
			r, err := SolveHotSpot(p, Options{})
			if err != nil {
				t.Errorf("h=%v Lm=%d lambda=%v (85%% capacity): %v", h, lm, lam, err)
				continue
			}
			if r.Latency < float64(lm) {
				t.Errorf("h=%v Lm=%d: implausible latency %v", h, lm, r.Latency)
			}
		}
	}
}

func TestMaxUtilisationTracksHotChannel(t *testing.T) {
	p := Params{K: 16, V: 2, Lm: 32, H: 0.4, Lambda: 2e-4}
	r := solveOK(t, p, Options{})
	// Holding-time utilisation: can exceed 1 (the flit-capacity bound is
	// enforced separately) but must stay finite and positive.
	if r.MaxUtilisation <= 0 || r.MaxUtilisation > 10 || math.IsNaN(r.MaxUtilisation) {
		t.Fatalf("max utilisation %v implausible", r.MaxUtilisation)
	}
	// Rough cross-check against the busiest-channel estimate
	// lambda·h·k·(k-1)·S with S >= Lm.
	lower := 2e-4 * 0.4 * 16 * 15 * 32
	if r.MaxUtilisation < lower*0.8 {
		t.Errorf("max utilisation %v below hot-channel floor %v", r.MaxUtilisation, lower)
	}
}

func TestSmallRadixK2(t *testing.T) {
	// k = 2 is the smallest torus; the model must stay finite and sane.
	r := solveOK(t, Params{K: 2, V: 2, Lm: 8, H: 0.3, Lambda: 1e-3}, Options{})
	if r.Latency < 8 || math.IsNaN(r.Latency) {
		t.Errorf("k=2 latency %v", r.Latency)
	}
}

func TestResultDiagnosticsPopulated(t *testing.T) {
	r := solveOK(t, Params{K: 8, V: 2, Lm: 16, H: 0.2, Lambda: 1e-4}, Options{})
	if r.Iterations < 1 {
		t.Error("no iterations recorded")
	}
	if len(r.SHotY) != 8 || len(r.SHotX) != 8 || len(r.SRegHy) != 8 {
		t.Errorf("diagnostic vectors sized %d/%d/%d", len(r.SHotY), len(r.SHotX), len(r.SRegHy))
	}
	if r.NetworkRegular <= 0 || r.NetworkHot <= 0 {
		t.Error("network latencies missing")
	}
	if r.Regular < r.NetworkRegular {
		t.Errorf("scaled regular %v below network %v", r.Regular, r.NetworkRegular)
	}
}
