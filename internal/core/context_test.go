package core

import (
	"context"
	"errors"
	"testing"

	"kncube/internal/fixpoint"
)

// figureSpec is the Figure-1 h=20% parameter point used throughout the
// serving tests.
func figureSpec(lambda float64) Spec {
	return Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: lambda}
}

// TestSolveCancelledContextIsNotSaturation is the cancellation contract the
// serving layer depends on: a solve aborted by its context reports the
// context's error (errors.Is-visible) and is never classified as
// ErrSaturated.
func TestSolveCancelledContextIsNotSaturation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var o Options
	o.FixPoint.Ctx = ctx
	_, err := Solve("hotspot-2d", figureSpec(1e-4), o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrSaturated) {
		t.Errorf("cancelled solve misclassified as saturated: %v", err)
	}
}

// TestSolveDeadlinePropagatedIntoIteration cancels mid-solve through the
// trace hook, proving the iteration loop (not just the entry point) watches
// the context.
func TestSolveDeadlinePropagatedIntoIteration(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var o Options
	o.FixPoint.Ctx = ctx
	o.FixPoint.Trace = func(tr fixpoint.TraceRecord) {
		if tr.Iteration == 2 {
			cancel()
		}
	}
	_, err := Solve("hotspot-2d", figureSpec(1e-4), o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrSaturated) {
		t.Errorf("cancelled solve misclassified as saturated: %v", err)
	}
}

// TestSolveUncancelledContextSucceeds pins that supplying a live context
// changes nothing about the result.
func TestSolveUncancelledContextSucceeds(t *testing.T) {
	plain, err := Solve("hotspot-2d", figureSpec(1e-4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var o Options
	o.FixPoint.Ctx = context.Background()
	withCtx, err := Solve("hotspot-2d", figureSpec(1e-4), o)
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Latency != plain.Latency { //lint:ignore floateq bit-identical reproducibility contract
		t.Errorf("latency with ctx %v != without %v", withCtx.Latency, plain.Latency)
	}
}
