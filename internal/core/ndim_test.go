package core

import (
	"errors"
	"math"
	"testing"
)

func TestNDimParamsValidate(t *testing.T) {
	good := NDimParams{K: 8, N: 3, V: 2, Lm: 16, H: 0.2, Lambda: 1e-4}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := []NDimParams{
		{K: 1, N: 3, V: 2, Lm: 16, H: 0.2, Lambda: 1e-4},
		{K: 8, N: 0, V: 2, Lm: 16, H: 0.2, Lambda: 1e-4},
		{K: 8, N: 3, V: 1, Lm: 16, H: 0.2, Lambda: 1e-4},
		{K: 8, N: 3, V: 2, Lm: 0, H: 0.2, Lambda: 1e-4},
		{K: 8, N: 3, V: 2, Lm: 16, H: 1, Lambda: 1e-4},
		{K: 8, N: 3, V: 2, Lm: 16, H: 0.2, Lambda: 0},
		{K: 1000, N: 30, V: 2, Lm: 16, H: 0.2, Lambda: 1e-4},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if (NDimParams{K: 4, N: 3}).Nodes() != 64 {
		t.Error("Nodes() wrong")
	}
	if _, err := SolveNDim(NDimParams{}, Options{}); err == nil {
		t.Error("SolveNDim accepted zero params")
	}
}

func TestNDimZeroLoad(t *testing.T) {
	p := NDimParams{K: 8, N: 3, V: 2, Lm: 16, H: 0.2, Lambda: 1e-9}
	r, err := SolveNDim(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mean hops of a uniform non-self destination in a k-ary n-cube:
	// n·(k-1)/2 normalised for the self-exclusion.
	wantHops := 3 * 3.5 / (1 - math.Pow(8, -3))
	if math.Abs(r.Regular-(16+wantHops)) > 0.3 {
		t.Errorf("zero-load regular %v, want ~%v", r.Regular, 16+wantHops)
	}
	if r.WsRegular > 0.01 || r.VBar > 1.001 {
		t.Errorf("zero-load ws %v VBar %v", r.WsRegular, r.VBar)
	}
}

func TestNDimMatchesTwoDimModelAtLightLoad(t *testing.T) {
	// For n = 2 the general model must agree with the paper's 2-D model at
	// light load (they differ only in suffix-averaging granularity).
	for _, lam := range []float64{1e-5, 5e-5, 1e-4} {
		nd, err := SolveNDim(NDimParams{K: 16, N: 2, V: 2, Lm: 32, H: 0.2, Lambda: lam}, Options{})
		if err != nil {
			t.Fatalf("ndim: %v", err)
		}
		td := solveOK(t, Params{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: lam}, Options{})
		rel := math.Abs(nd.Latency-td.Latency) / td.Latency
		if rel > 0.05 {
			t.Errorf("lambda=%v: ndim %v vs 2-D %v (rel %.3f)", lam, nd.Latency, td.Latency, rel)
		}
	}
}

func TestNDimMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lam := range []float64{1e-5, 5e-5, 1e-4, 2e-4} {
		r, err := SolveNDim(NDimParams{K: 8, N: 3, V: 2, Lm: 32, H: 0.3, Lambda: lam}, Options{})
		if err != nil {
			t.Fatalf("lambda=%v: %v", lam, err)
		}
		if r.Latency <= prev {
			t.Fatalf("latency not increasing at %v", lam)
		}
		prev = r.Latency
	}
}

func TestNDimSaturation(t *testing.T) {
	// The busiest hot channel (last dimension, j = 1) carries
	// lambda·h·k^(n-1)·(k-1): capacity ~ 1/(0.3·64·7·33) for k=8, n=3.
	_, err := SolveNDim(NDimParams{K: 8, N: 3, V: 2, Lm: 32, H: 0.3, Lambda: 1e-3}, Options{})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

func TestNDimSaturationFallsWithN(t *testing.T) {
	// At fixed k and h, more dimensions concentrate more hot traffic on
	// the last dimension's channels (k^(n-1) prefixes), so saturation
	// falls with n.
	sat := func(n int) float64 {
		s, err := SaturationLambda(func(lam float64) error {
			_, e := SolveNDim(NDimParams{K: 4, N: n, V: 2, Lm: 16, H: 0.3, Lambda: lam}, Options{})
			return e
		}, 1e-8, 0, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s2, s3, s4 := sat(2), sat(3), sat(4)
	if !(s2 > s3 && s3 > s4) {
		t.Errorf("saturation not decreasing in n: %v %v %v", s2, s3, s4)
	}
}

func TestNDimHotAboveRegular(t *testing.T) {
	r, err := SolveNDim(NDimParams{K: 8, N: 3, V: 2, Lm: 32, H: 0.3, Lambda: 1.5e-4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hot <= r.Regular {
		t.Errorf("hot %v not above regular %v", r.Hot, r.Regular)
	}
	if len(r.SHot) != 3 || len(r.SHot[0]) != 8 {
		t.Errorf("SHot dims %dx%d", len(r.SHot), len(r.SHot[0]))
	}
}
