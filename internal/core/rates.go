package core

// ChannelRates exposes the traffic-rate equations (Eqs. 3-9) for
// inspection, testing, and capacity analysis.
type ChannelRates struct {
	// Regular is the uniform per-channel rate of regular traffic,
	// lambda·(1-h)·k̄ (Eq. 3), identical on every channel of both
	// dimensions.
	Regular float64
	// HotY[j] is the hot-spot rate on the hot ring's y-channel j hops
	// from the hot node, lambda·h·k·(k-j) (Eq. 7); index 0 unused,
	// HotY[k] = 0 (the hot node's own outgoing channel).
	HotY []float64
	// HotX[j] is the hot-spot rate on any x-channel j hops from the hot
	// column, lambda·h·(k-j) (Eq. 6); index 0 unused, HotX[k] = 0.
	HotX []float64
}

// Rates evaluates Eqs. 3-9 for the parameters.
func Rates(p Params) (ChannelRates, error) {
	if err := p.Validate(); err != nil {
		return ChannelRates{}, err
	}
	m := newModel(p, Options{})
	m.Prepare()
	cr := ChannelRates{
		Regular: m.lr,
		HotY:    make([]float64, p.K+1),
		HotX:    make([]float64, p.K+1),
	}
	copy(cr.HotY, m.lhy)
	copy(cr.HotX, m.lhx)
	return cr, nil
}

// TotalHotYCrossings returns the sum over hot-ring channels of the hot
// traffic rate divided by lambda·h: the expected number of y-channel
// crossings per generated hot message times (N-1)-ish — used by the
// conservation tests.
func (c ChannelRates) TotalHotYCrossings(lambda, h float64) float64 {
	sum := 0.0
	for _, r := range c.HotY {
		sum += r
	}
	return sum / (lambda * h)
}

// BottleneckUtilisation returns the flit utilisation of the busiest channel
// (the hot ring's j = 1 channel) for message length lm: the quantity whose
// approach to 1 sets the network's saturation point.
func (c ChannelRates) BottleneckUtilisation(lm int) float64 {
	if len(c.HotY) < 2 {
		return 0
	}
	return (c.Regular + c.HotY[1]) * float64(lm)
}

// CapacityLambda returns the offered load at which the bottleneck channel
// of a K-ary 2-cube with hot fraction h and message length lm reaches unit
// flit utilisation: 1 / (h·k·(k-1)·lm + (1-h)·k̄·lm). The paper's figure
// axes track this bound.
func CapacityLambda(k, lm int, h float64) float64 {
	kbar := float64(k-1) / 2
	denom := (h*float64(k)*float64(k-1) + (1-h)*kbar) * float64(lm)
	return 1 / denom
}
