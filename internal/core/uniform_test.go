package core

import (
	"errors"
	"math"
	"testing"
)

func TestUniformParamsValidate(t *testing.T) {
	good := UniformParams{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: 1e-3}
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	bad := []UniformParams{
		{K: 1, Dims: 2, V: 2, Lm: 32, Lambda: 1e-3},
		{K: 16, Dims: 0, V: 2, Lm: 32, Lambda: 1e-3},
		{K: 16, Dims: 2, V: 0, Lm: 32, Lambda: 1e-3},
		{K: 16, Dims: 2, V: 2, Lm: 0, Lambda: 1e-3},
		{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: 0},
		{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: math.NaN()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := SolveUniform(UniformParams{}); err == nil {
		t.Error("SolveUniform accepted zero params")
	}
}

func TestUniformZeroLoad(t *testing.T) {
	r, err := SolveUniform(UniformParams{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want := 32.0 + 15.0 // Lm + n(k-1)/2
	if math.Abs(r.Network-want) > 0.01 {
		t.Errorf("zero-load network latency %v, want %v", r.Network, want)
	}
	if math.Abs(r.Latency-want) > 0.1 {
		t.Errorf("zero-load latency %v, want ~%v", r.Latency, want)
	}
	if r.Multiplexing > 1.0001 {
		t.Errorf("zero-load multiplexing %v", r.Multiplexing)
	}
}

func TestUniformMonotoneInLambda(t *testing.T) {
	prev := 0.0
	for _, lam := range []float64{1e-4, 5e-4, 1e-3, 1.5e-3, 2e-3} {
		r, err := SolveUniform(UniformParams{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: lam})
		if err != nil {
			t.Fatalf("lambda=%v: %v", lam, err)
		}
		if r.Latency <= prev {
			t.Fatalf("latency not increasing at %v", lam)
		}
		prev = r.Latency
	}
}

func TestUniformSaturates(t *testing.T) {
	// Per-channel load k̄·lambda·S >= 1 must fail: with k̄ = 7.5, S >= 47,
	// lambda = 0.004 gives utilisation > 1.4.
	_, err := SolveUniform(UniformParams{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: 0.004})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("err = %v, want ErrSaturated", err)
	}
}

func TestUniformSaturationNearChannelCapacity(t *testing.T) {
	s, err := SaturationLambda(func(lam float64) error {
		_, e := SolveUniform(UniformParams{K: 16, Dims: 2, V: 2, Lm: 32, Lambda: lam})
		return e
	}, 1e-5, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Channel capacity bound: lambda_sat <= 1/(k̄·Lm) = 1/240.
	if s > 1/240.0 {
		t.Errorf("saturation %v above channel capacity bound %v", s, 1/240.0)
	}
	if s < 1/240.0/10 {
		t.Errorf("saturation %v implausibly low", s)
	}
}

func TestUniformDimsScaling(t *testing.T) {
	// More dimensions at the same radix mean longer paths and higher
	// latency at equal lambda.
	r2, err := SolveUniform(UniformParams{K: 8, Dims: 2, V: 2, Lm: 32, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := SolveUniform(UniformParams{K: 8, Dims: 3, V: 2, Lm: 32, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Latency <= r2.Latency {
		t.Errorf("3-D latency %v not above 2-D %v", r3.Latency, r2.Latency)
	}
}

func TestSaturationLambdaValidation(t *testing.T) {
	alwaysOK := func(float64) error { return nil }
	alwaysSat := func(float64) error { return ErrSaturated }
	if _, err := SaturationLambda(alwaysOK, 0, 0, 1e-3); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := SaturationLambda(alwaysSat, 1e-3, 0, 1e-3); err == nil {
		t.Error("saturated lower bracket accepted")
	}
	if _, err := SaturationLambda(alwaysOK, 1e-3, 0, 1e-3); err == nil {
		t.Error("unbracketable function accepted")
	}
	if _, err := SaturationLambda(alwaysOK, 1e-3, 2e-3, 1e-3); err == nil {
		t.Error("non-saturated upper bracket accepted")
	}
}

func TestSaturationLambdaBisection(t *testing.T) {
	threshold := 0.37
	solve := func(lam float64) error {
		if lam >= threshold {
			return ErrSaturated
		}
		return nil
	}
	got, err := SaturationLambda(solve, 0.01, 0, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-threshold)/threshold > 2e-4 {
		t.Errorf("bisection found %v, want ~%v", got, threshold)
	}
}
