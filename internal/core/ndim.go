package core

import (
	"fmt"
	"math"

	"kncube/internal/queueing"
	"kncube/internal/vcmodel"
)

// General k-ary n-cube hot-spot model. The paper's analysis (Section 3)
// fixes n = 2; its title and network model (Section 2) are for general n.
// This file generalises the analysis to arbitrary dimensionality under the
// same assumptions, recovering the structure of the 2-D model when n = 2
// (with the per-row resolution of Eq. 25 replaced by suffix averaging).
//
// Geometry. Deterministic routing corrects dimensions in increasing order
// on unidirectional rings. A hot-spot message that is traversing dimension
// d has already matched the hot node's address on dimensions < d, so the
// hot-spot traffic forms a tree rooted at the hot node: the dimension-d
// channel at ring distance j from the hot node's coordinate (within the
// subcube where dimensions < d equal the hot address) carries
//
//	lambda_h(d, j) = lambda·h·k^d·(k-j),   j = 1..k-1,
//
// k^d source prefixes times the (k-j) ring positions at distance >= j —
// Eqs. 6-7 are the n = 2 instances (d = 0 gives lambda·h·(k-j), d = 1
// gives lambda·h·k·(k-j)). There are k^(n-1-d) such channels per (d, j),
// a fraction k^-(d+1) of all dimension-d channels. Regular traffic loads
// every channel at lambda·(1-h)·k̄ (Eq. 3).
//
// Service times. S^h_d(j): hot-spot service at the dimension-d hot channel
// j hops from the hot coordinate; S^r_d(b): regular service at a
// dimension-d channel with b hops left in that dimension. Both follow the
// paper's 1 + B + next recursions; the continuation into the next
// dimension averages over the geometric first-differing-dimension
// distribution of a uniform address suffix.
type NDimParams struct {
	// K is the radix, N the dimension count; the network has K^N nodes.
	K, N int
	// V is the virtual channel count per physical channel (>= 2).
	V int
	// Lm is the message length in flits.
	Lm int
	// H is the hot-spot fraction in [0, 1).
	H float64
	// Lambda is the per-node generation rate in messages/cycle.
	Lambda float64
}

// Validate reports the first problem with the parameters.
func (p NDimParams) Validate() error {
	if p.K < 2 {
		return fieldErrf("k", "core: ndim K = %d, want >= 2", p.K)
	}
	if p.N < 1 {
		return fieldErrf("dims", "core: ndim N = %d, want >= 1", p.N)
	}
	if math.Pow(float64(p.K), float64(p.N)) > 1<<30 {
		return fieldErrf("k", "core: ndim K^N too large (K=%d, N=%d)", p.K, p.N)
	}
	if p.V < 2 {
		return fieldErrf("v", "core: ndim V = %d, want >= 2", p.V)
	}
	if p.Lm < 1 {
		return fieldErrf("lm", "core: ndim Lm = %d, want >= 1", p.Lm)
	}
	if p.H < 0 || p.H >= 1 || math.IsNaN(p.H) {
		return fieldErrf("h", "core: ndim H = %v, want [0, 1)", p.H)
	}
	if p.Lambda <= 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fieldErrf("lambda", "core: ndim Lambda = %v, want > 0", p.Lambda)
	}
	return nil
}

// Nodes returns K^N.
func (p NDimParams) Nodes() int {
	n := 1
	for i := 0; i < p.N; i++ {
		n *= p.K
	}
	return n
}

// NDimResult is the solved general model.
type NDimResult struct {
	// Latency, Regular, Hot as in Result.
	Latency, Regular, Hot float64
	// WsRegular is the mean source waiting time.
	WsRegular float64
	// VBar is the channel-averaged multiplexing degree.
	VBar float64
	// SHot[d][j] is the hot service time at the dimension-d hot channel j
	// hops from the hot coordinate (j 1-indexed).
	SHot [][]float64
	// Iterations is the fixed-point iteration count.
	Iterations int
	// Convergence is the fixed-point diagnostic summary.
	Convergence Convergence
}

type ndimModel struct {
	solverBase
	p        NDimParams
	prepared bool
	lr       float64     // Eq. 3
	lh       [][]float64 // lh[d][j] = lambda·h·k^d·(k-j)
}

func newNDimModel(p NDimParams, o Options) *ndimModel {
	return &ndimModel{solverBase: newSolverBase(o, p.V, p.Lm), p: p}
}

// Prepare allocates the hot-spot rate tree and derives the rates for the
// constructed load.
func (m *ndimModel) Prepare() {
	if !m.prepared {
		n, k := m.p.N, m.p.K
		if n < 0 {
			n = 0
		}
		if k < 0 {
			k = 0
		}
		m.lh = make([][]float64, n)
		for d := 0; d < n; d++ {
			m.lh[d] = make([]float64, k+1)
		}
		m.prepared = true
	}
	m.SetLambda(m.p.Lambda)
}

// SetLambda recomputes the λ-dependent traffic rates in place.
//
//khs:hotpath
func (m *ndimModel) SetLambda(lambda float64) {
	m.p.Lambda = lambda
	p := m.p
	m.lr = p.Lambda * (1 - p.H) * float64(p.K-1) / 2
	k := p.K
	if k < 0 {
		k = 0
	}
	kd := 1.0
	for d := range m.lh {
		for j := 1; j <= k; j++ {
			m.lh[d][j] = p.Lambda * p.H * kd * float64(k-j)
		}
		kd *= float64(k)
	}
}

func (m *ndimModel) Validate() error { return m.p.Validate() }

// StateSize: hot services [d][j] then regular services [d][b], both
// j,b = 1..k-1, flattened d-major.
func (m *ndimModel) StateSize() int {
	if m.p.N < 1 || m.p.K < 2 {
		return 0
	}
	return 2 * m.p.N * (m.p.K - 1)
}

func (m *ndimModel) hotIdx(d, j int) int { return d*(m.p.K-1) + (j - 1) }
func (m *ndimModel) regIdx(d, b int) int {
	return m.p.N*(m.p.K-1) + d*(m.p.K-1) + (b - 1)
}

// InitState writes the zero-load services: j hops in this dimension plus
// the expected remaining path (half ring per remaining dimension, roughly).
func (m *ndimModel) InitState(x []float64) {
	k, n := m.p.K, m.p.N
	for d := 0; d < n; d++ {
		rem := float64(n-1-d) * float64(k-1) / 2 / 2
		for j := 1; j <= k-1; j++ {
			x[m.hotIdx(d, j)] = m.lm + float64(j) + rem
			x[m.regIdx(d, j)] = m.lm + float64(j) + rem
		}
	}
}

// cont returns the expected continuation service after finishing
// dimension d for a hot-spot (hot = true) or regular message, given the
// current state.
func (m *ndimModel) cont(in []float64, d int, hot bool) float64 {
	k, n := m.p.K, m.p.N
	// The message's remaining address digits are uniform; the next crossed
	// dimension is the first one among d+1..n-1 with a nonzero offset.
	val := 0.0
	pSame := 1.0
	for d2 := d + 1; d2 < n; d2++ {
		// Offset in dimension d2 is nonzero with probability (k-1)/k; each
		// distance 1..k-1 equally likely.
		for t := 1; t <= k-1; t++ {
			var s float64
			if hot {
				s = in[m.hotIdx(d2, t)]
			} else {
				s = in[m.regIdx(d2, t)]
			}
			val += pSame * (1.0 / float64(k)) * s
		}
		pSame /= float64(k)
	}
	return val + pSame*m.lm
}

// regEntrance returns the mean regular service over a dimension's
// positions (the competing-class service used in the blocking terms).
func (m *ndimModel) regEntrance(in []float64, d int) float64 {
	sum := 0.0
	for b := 1; b <= m.p.K-1; b++ {
		sum += in[m.regIdx(d, b)]
	}
	return sum / float64(m.p.K-1)
}

//khs:hotpath
func (m *ndimModel) Iterate(in, out []float64) error {
	k, n := m.p.K, m.p.N
	for d := 0; d < n; d++ {
		entReg := m.regEntrance(in, d)
		// Hot recursion.
		for j := 1; j <= k-1; j++ {
			b, err := m.blocking(m.lr, entReg, m.lh[d][j], in[m.hotIdx(d, j)])
			if err != nil {
				return fmt.Errorf("%w (ndim hot, dim %d ch %d)", ErrSaturated, d, j)
			}
			next := m.cont(in, d, true)
			if j > 1 {
				next = in[m.hotIdx(d, j-1)]
			}
			out[m.hotIdx(d, j)] = 1 + b + next
		}
		// Regular recursion: the blocking is the hot-tree-weighted average
		// over the dimension's channels (a fraction k^-(d+1) of them sit
		// at each hot position j).
		pHot := math.Pow(float64(k), -float64(d+1))
		bAvg := 0.0
		for j := 1; j <= k-1; j++ {
			b, err := m.blocking(m.lr, entReg, m.lh[d][j], in[m.hotIdx(d, j)])
			if err != nil {
				return fmt.Errorf("%w (ndim shared, dim %d ch %d)", ErrSaturated, d, j)
			}
			bAvg += pHot * b
		}
		bQuiet, err := m.blocking(m.lr, entReg, 0, 0)
		if err != nil {
			return fmt.Errorf("%w (ndim quiet, dim %d)", ErrSaturated, d)
		}
		bAvg += (1 - float64(k-1)*pHot) * bQuiet
		for b := 1; b <= k-1; b++ {
			next := m.cont(in, d, false)
			if b > 1 {
				next = in[m.regIdx(d, b-1)]
			}
			out[m.regIdx(d, b)] = 1 + bAvg + next
		}
	}
	return nil
}

// SolveNDim evaluates the general k-ary n-cube hot-spot model (the
// registry's "ndim").
func SolveNDim(p NDimParams, o Options) (*NDimResult, error) {
	sr, err := solveWith(newNDimModel(p, o), o)
	if err != nil {
		return nil, err
	}
	return sr.Detail.(*NDimResult), nil
}

func init() {
	Register("ndim", func(s Spec, o Options) (Solver, error) {
		dims := s.Dims
		if dims == 0 {
			dims = 2
		}
		return newNDimModel(NDimParams{K: s.K, N: dims, V: s.V, Lm: s.Lm, H: s.H, Lambda: s.Lambda}, o), nil
	})
}

// Assemble computes the latency decomposition from the converged state.
func (m *ndimModel) Assemble(state []float64, conv Convergence) (*SolveResult, error) {
	k, n := m.p.K, m.p.N

	// Entrance distributions: the first crossed dimension of a uniform
	// non-self destination is d with probability (k-1)/k · k^-d,
	// normalised by 1 - k^-n; the entry distance is uniform on 1..k-1.
	norm := 1 - math.Pow(float64(k), -float64(n))
	entReg, entHot := 0.0, 0.0
	pPrefix := 1.0
	for d := 0; d < n; d++ {
		for j := 1; j <= k-1; j++ {
			pdj := pPrefix * (1.0 / float64(k)) / norm
			entReg += pdj * state[m.regIdx(d, j)]
			entHot += pdj * state[m.hotIdx(d, j)]
		}
		pPrefix /= float64(k)
	}

	// Source queue.
	lv := m.p.Lambda / float64(m.p.V)
	mix := (1-m.p.H)*entReg + m.p.H*entHot
	ws, err := queueing.MG1Wait(lv, mix, m.variance(mix))
	if err != nil {
		return nil, fmt.Errorf("%w (ndim source queue)", ErrSaturated)
	}

	// Channel-averaged multiplexing degree.
	vSum := 0.0
	for d := 0; d < n; d++ {
		entRegD := m.regEntrance(state, d)
		pHot := math.Pow(float64(k), -float64(d+1))
		acc := 0.0
		for j := 1; j <= k-1; j++ {
			sBar := queueing.WeightedService(m.lr, entRegD, m.lh[d][j], state[m.hotIdx(d, j)])
			deg, err := vcmodel.Degree(m.p.V, m.lr+m.lh[d][j], sBar)
			if err != nil {
				return nil, err
			}
			acc += pHot * deg
		}
		quiet, err := vcmodel.Degree(m.p.V, m.lr, entRegD)
		if err != nil {
			return nil, err
		}
		acc += (1 - float64(k-1)*pHot) * quiet
		vSum += acc
	}
	vBar := vSum / float64(n)

	regular := (entReg + ws) * vBar
	hot := (entHot + ws) * vBar
	latency := (1-m.p.H)*regular + m.p.H*hot

	shot := make([][]float64, n)
	for d := 0; d < n; d++ {
		shot[d] = make([]float64, k)
		for j := 1; j <= k-1; j++ {
			shot[d][j] = state[m.hotIdx(d, j)]
		}
	}
	r := &NDimResult{
		Latency:     latency,
		Regular:     regular,
		Hot:         hot,
		WsRegular:   ws,
		VBar:        vBar,
		SHot:        shot,
		Iterations:  conv.Iterations,
		Convergence: conv,
	}
	return &SolveResult{
		Latency:     latency,
		Regular:     regular,
		Hot:         hot,
		SourceWait:  ws,
		VBar:        vBar,
		Convergence: conv,
		Detail:      r,
	}, nil
}
