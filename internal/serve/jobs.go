package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"kncube/internal/experiments"
	"kncube/internal/telemetry"
	"kncube/internal/telemetry/span"
)

// Job states. A job is terminal in every state but JobRunning.
const (
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

var (
	// errTooManySweeps sheds sweep submissions beyond the active-job cap.
	errTooManySweeps = errors.New("serve: active sweep job limit reached")
	// errDraining rejects work while the server shuts down.
	errDraining = errors.New("serve: server is draining")
)

// job is one async sweep: identity, live progress, and — once terminal —
// the swept points or the failure. All mutable fields are guarded by mu;
// finished closes exactly once when the job goroutine exits.
type job struct {
	id    string
	panel string
	model string

	cancel   context.CancelFunc
	finished chan struct{}

	mu      sync.Mutex
	state   string
	done    int
	total   int
	points  []SweepPoint
	errMsg  string
	traceID string
}

// status snapshots the job for the API.
func (j *job) status() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID: j.id, Panel: j.panel, Model: j.model,
		State: j.state, Done: j.done, Total: j.total,
		Error: j.errMsg, TraceID: j.traceID,
	}
	if j.state == JobDone {
		st.Points = j.points
	}
	return st
}

// jobStore owns every sweep job: launch, lookup, cancellation, and the
// graceful-shutdown drain. Terminal jobs are retained (bounded by
// maxStored, oldest-first pruning) so clients can fetch results after
// completion.
type jobStore struct {
	maxActive int
	maxStored int

	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	order    []string // insertion order, for pruning
	active   int
	draining bool
	wg       sync.WaitGroup

	jobsTotal  func(state string) *telemetry.Counter
	activeJobs *telemetry.Gauge
	tracer     *span.Tracer
	log        *slog.Logger
}

func newJobStore(maxActive, maxStored int, reg *telemetry.Registry, tracer *span.Tracer, log *slog.Logger) *jobStore {
	st := &jobStore{
		maxActive: maxActive,
		maxStored: maxStored,
		jobs:      make(map[string]*job),
		tracer:    tracer,
		log:       log,
	}
	st.jobsTotal = func(state string) *telemetry.Counter {
		return reg.Counter("khs_serve_sweep_jobs_total",
			"sweep jobs by terminal state", telemetry.Labels{"state": state})
	}
	st.activeJobs = reg.Gauge("khs_serve_active_sweeps", "sweep jobs currently running", nil)
	return st
}

// launch starts sw over panels as a new job under parent (the server's
// lifetime context; per-job cancellation is layered on top). It fails fast
// with errTooManySweeps or errDraining instead of queueing. link ties the
// job's fresh trace back to the originating request's span.
func (st *jobStore) launch(parent context.Context, sw experiments.Sweep, panels []experiments.Panel, model string, link span.Parent) (*job, error) {
	reps := sw.Reps
	if reps <= 0 {
		reps = 1
	}
	total := 0
	for _, p := range panels {
		total += len(p.Lambdas) * reps
	}

	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return nil, errDraining
	}
	if st.active >= st.maxActive {
		st.mu.Unlock()
		return nil, errTooManySweeps
	}
	st.seq++
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id:       fmt.Sprintf("sweep-%06d", st.seq),
		panel:    panels[0].ID,
		model:    model,
		cancel:   cancel,
		finished: make(chan struct{}),
		state:    JobRunning,
		total:    total,
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.active++
	st.activeJobs.Set(float64(st.active))
	st.wg.Add(1)
	st.mu.Unlock()

	sw.Progress = func(p experiments.SweepProgress) {
		j.mu.Lock()
		j.done = p.Done
		j.total = p.Total
		j.mu.Unlock()
	}

	// The job outlives its originating request, so it roots a fresh trace
	// carrying a link back to the request span; every (panel, λ, rep)
	// simulation span the sweep engine starts nests under it.
	jctx, jspan := st.tracer.StartLinked(ctx, "sweep.job", link,
		span.String("sweep_id", j.id),
		span.String("panel", j.panel),
		span.String("model", model))
	j.mu.Lock()
	j.traceID = jspan.TraceID().String()
	j.mu.Unlock()
	st.log.Info("sweep job started",
		"sweep_id", j.id, "panel", j.panel, "model", model, "total", total,
		"trace_id", jspan.TraceID().String(), "span_id", jspan.SpanID().String())

	go func() {
		defer st.wg.Done()
		res, err := sw.RunPanels(jctx, panels)
		j.mu.Lock()
		switch {
		case err == nil:
			j.state = JobDone
			j.done = j.total
			for _, pr := range res {
				j.points = append(j.points, toSweepPoints(pr.Points)...)
			}
		case isCancellation(err) && ctx.Err() != nil:
			j.state = JobCancelled
			j.errMsg = err.Error()
		default:
			j.state = JobFailed
			j.errMsg = err.Error()
		}
		state := j.state
		j.mu.Unlock()
		close(j.finished)
		cancel()

		jspan.SetAttr("state", state)
		if state == JobFailed {
			jspan.Keep("job-failed")
		}
		jspan.End()
		st.log.Info("sweep job finished",
			"sweep_id", j.id, "panel", j.panel, "model", model, "state", state,
			"trace_id", jspan.TraceID().String(), "span_id", jspan.SpanID().String())

		st.mu.Lock()
		st.active--
		st.activeJobs.Set(float64(st.active))
		st.prune()
		st.mu.Unlock()
		st.jobsTotal(state).Inc()
	}()
	return j, nil
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// prune drops the oldest terminal jobs beyond maxStored. Called under
// st.mu.
func (st *jobStore) prune() {
	for len(st.order) > st.maxStored {
		pruned := false
		for i, id := range st.order {
			j := st.jobs[id]
			j.mu.Lock()
			terminal := j.state != JobRunning
			j.mu.Unlock()
			if terminal {
				delete(st.jobs, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // every stored job is still running; nothing to drop
		}
	}
}

// drain stops accepting jobs and waits for the running ones. If ctx
// expires first, all remaining jobs are cancelled and waited for (their
// workers exit promptly on context cancellation).
func (st *jobStore) drain(ctx context.Context) error {
	st.mu.Lock()
	st.draining = true
	st.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}

	st.mu.Lock()
	for _, j := range st.jobs {
		j.cancel()
	}
	st.mu.Unlock()
	<-finished
	return fmt.Errorf("serve: drain cut short, running sweeps cancelled: %w", ctx.Err())
}

// toSweepPoints converts engine points into their JSON form (NaN-free:
// a saturated model value becomes an absent field).
func toSweepPoints(pts []experiments.Point) []SweepPoint {
	out := make([]SweepPoint, 0, len(pts))
	for _, pt := range pts {
		sp := SweepPoint{
			Lambda:         pt.Lambda,
			ModelSaturated: pt.ModelSaturated,
			Sim:            pt.Sim,
			SimCI:          pt.SimCI,
			SimSaturated:   pt.SimSaturated,
			SimMeasured:    pt.SimMeasured,
		}
		if !pt.ModelSaturated {
			m := pt.Model
			sp.Model = &m
		}
		out = append(out, sp)
	}
	return out
}
