package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"kncube/internal/experiments"
	"kncube/internal/telemetry"
	"kncube/internal/telemetry/span"
)

// Job states. A job is terminal in every state but JobRunning.
const (
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Job kinds. The store hosts both async job families behind one cap and
// one retention policy; kind routes ids, metrics, and API views.
const (
	jobKindSweep   = "sweep"
	jobKindSurface = "surface"
)

var (
	// errTooManyJobs sheds submissions beyond the active-job cap (shared
	// by sweeps and surface builds).
	errTooManyJobs = errors.New("serve: active async job limit reached")
	// errDraining rejects work while the server shuts down.
	errDraining = errors.New("serve: server is draining")
)

// job is one async unit of work — a sweep or a surface build: identity,
// live progress, and — once terminal — the results or the failure. All
// mutable fields are guarded by mu; finished closes exactly once when the
// job goroutine exits.
type job struct {
	id    string
	kind  string
	panel string // sweep jobs: the figure panel id
	key   string // surface jobs: the shape key being built
	model string

	cancel   context.CancelFunc
	finished chan struct{}

	mu        sync.Mutex
	state     string
	done      int
	total     int
	points    []SweepPoint
	surfaceID string // surface jobs: inventory id once done
	path      string // surface jobs: persistence path, when persisted
	errMsg    string
	traceID   string
}

// status snapshots a sweep job for the API.
func (j *job) status() SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID: j.id, Panel: j.panel, Model: j.model,
		State: j.state, Done: j.done, Total: j.total,
		Error: j.errMsg, TraceID: j.traceID,
	}
	if j.state == JobDone {
		st.Points = j.points
	}
	return st
}

// surfaceStatus snapshots a surface-build job for the API.
func (j *job) surfaceStatus() SurfaceStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return SurfaceStatus{
		ID: j.id, Key: j.key, Model: j.model,
		State: j.state, Done: j.done, Total: j.total,
		SurfaceID: j.surfaceID, Path: j.path,
		Error: j.errMsg, TraceID: j.traceID,
	}
}

// jobStore owns every async job: launch, lookup, cancellation, and the
// graceful-shutdown drain. Terminal jobs are retained (bounded by
// maxStored, oldest-first pruning) so clients can fetch results after
// completion.
type jobStore struct {
	maxActive int
	maxStored int

	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	order    []string // insertion order, for pruning
	active   map[string]int
	draining bool
	wg       sync.WaitGroup

	jobsTotal  func(kind, state string) *telemetry.Counter
	activeJobs func(kind string) *telemetry.Gauge
	tracer     *span.Tracer
	log        *slog.Logger
}

func newJobStore(maxActive, maxStored int, reg *telemetry.Registry, tracer *span.Tracer, log *slog.Logger) *jobStore {
	st := &jobStore{
		maxActive: maxActive,
		maxStored: maxStored,
		jobs:      make(map[string]*job),
		active:    make(map[string]int),
		tracer:    tracer,
		log:       log,
	}
	st.jobsTotal = func(kind, state string) *telemetry.Counter {
		if kind == jobKindSurface {
			return reg.Counter("khs_serve_surface_jobs_total",
				"surface build jobs by terminal state", telemetry.Labels{"state": state})
		}
		return reg.Counter("khs_serve_sweep_jobs_total",
			"sweep jobs by terminal state", telemetry.Labels{"state": state})
	}
	st.activeJobs = func(kind string) *telemetry.Gauge {
		if kind == jobKindSurface {
			return reg.Gauge("khs_serve_active_surfaces", "surface build jobs currently running", nil)
		}
		return reg.Gauge("khs_serve_active_sweeps", "sweep jobs currently running", nil)
	}
	return st
}

// idPrefix separates each kind's id namespace. Surface build jobs use
// "build-" so their ids never collide with the surface inventory's
// "surface-" ids in the shared GET /v1/surfaces/{id} route.
func idPrefix(kind string) string {
	if kind == jobKindSurface {
		return "build"
	}
	return "sweep"
}

// launch starts sw over panels as a new sweep job under parent (the
// server's lifetime context; per-job cancellation is layered on top). It
// fails fast with errTooManyJobs or errDraining instead of queueing. link
// ties the job's fresh trace back to the originating request's span.
func (st *jobStore) launch(parent context.Context, sw experiments.Sweep, panels []experiments.Panel, model string, link span.Parent) (*job, error) {
	reps := sw.Reps
	if reps <= 0 {
		reps = 1
	}
	total := 0
	for _, p := range panels {
		total += len(p.Lambdas) * reps
	}
	j := &job{kind: jobKindSweep, panel: panels[0].ID, model: model, total: total}
	return st.launchJob(parent, j, link, func(ctx context.Context, j *job) error {
		sw.Progress = func(p experiments.SweepProgress) {
			j.mu.Lock()
			j.done = p.Done
			j.total = p.Total
			j.mu.Unlock()
		}
		res, err := sw.RunPanels(ctx, panels)
		if err != nil {
			return err
		}
		j.mu.Lock()
		for _, pr := range res {
			j.points = append(j.points, toSweepPoints(pr.Points)...)
		}
		j.mu.Unlock()
		return nil
	})
}

// launchJob registers j (its kind, labels and total already set), roots
// the job's own linked trace, and runs run on a fresh goroutine under a
// cancellable child of parent. run's error decides the terminal state:
// nil → done, a cancellation error with the job context cancelled →
// cancelled, anything else → failed. Every job outlives its originating
// request, so it roots a fresh trace carrying a link back to the request
// span; spans the work starts nest under it.
func (st *jobStore) launchJob(parent context.Context, j *job, link span.Parent, run func(ctx context.Context, j *job) error) (*job, error) {
	st.mu.Lock()
	if st.draining {
		st.mu.Unlock()
		return nil, errDraining
	}
	totalActive := 0
	for _, n := range st.active {
		totalActive += n
	}
	if totalActive >= st.maxActive {
		st.mu.Unlock()
		return nil, errTooManyJobs
	}
	st.seq++
	ctx, cancel := context.WithCancel(parent)
	j.id = fmt.Sprintf("%s-%06d", idPrefix(j.kind), st.seq)
	j.cancel = cancel
	j.finished = make(chan struct{})
	j.state = JobRunning
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.active[j.kind]++
	st.activeJobs(j.kind).Set(float64(st.active[j.kind]))
	st.wg.Add(1)
	st.mu.Unlock()

	// The subject attribute is the kind-specific identity: the swept
	// panel, or the surface shape key being built.
	subject := j.panel
	subjectKey := "panel"
	if j.kind == jobKindSurface {
		subject, subjectKey = j.key, "key"
	}
	jctx, jspan := st.tracer.StartLinked(ctx, j.kind+".job", link,
		span.String(j.kind+"_id", j.id),
		span.String(subjectKey, subject),
		span.String("model", j.model))
	j.mu.Lock()
	j.traceID = jspan.TraceID().String()
	total := j.total
	j.mu.Unlock()
	st.log.Info(j.kind+" job started",
		j.kind+"_id", j.id, subjectKey, subject, "model", j.model, "total", total,
		"trace_id", jspan.TraceID().String(), "span_id", jspan.SpanID().String())

	go func() {
		defer st.wg.Done()
		err := run(jctx, j)
		j.mu.Lock()
		switch {
		case err == nil:
			j.state = JobDone
			j.done = j.total
		case isCancellation(err) && ctx.Err() != nil:
			j.state = JobCancelled
			j.errMsg = err.Error()
		default:
			j.state = JobFailed
			j.errMsg = err.Error()
		}
		state := j.state
		j.mu.Unlock()
		close(j.finished)
		cancel()

		jspan.SetAttr("state", state)
		if state == JobFailed {
			jspan.Keep("job-failed")
		}
		jspan.End()
		st.log.Info(j.kind+" job finished",
			j.kind+"_id", j.id, subjectKey, subject, "model", j.model, "state", state,
			"trace_id", jspan.TraceID().String(), "span_id", jspan.SpanID().String())

		st.mu.Lock()
		st.active[j.kind]--
		st.activeJobs(j.kind).Set(float64(st.active[j.kind]))
		st.prune()
		st.mu.Unlock()
		st.jobsTotal(j.kind, state).Inc()
	}()
	return j, nil
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// prune drops the oldest terminal jobs beyond maxStored. Called under
// st.mu.
func (st *jobStore) prune() {
	for len(st.order) > st.maxStored {
		pruned := false
		for i, id := range st.order {
			j := st.jobs[id]
			j.mu.Lock()
			terminal := j.state != JobRunning
			j.mu.Unlock()
			if terminal {
				delete(st.jobs, id)
				st.order = append(st.order[:i], st.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return // every stored job is still running; nothing to drop
		}
	}
}

// drain stops accepting jobs and waits for the running ones. If ctx
// expires first, all remaining jobs are cancelled and waited for (their
// workers exit promptly on context cancellation).
func (st *jobStore) drain(ctx context.Context) error {
	st.mu.Lock()
	st.draining = true
	st.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}

	st.mu.Lock()
	for _, j := range st.jobs {
		j.cancel()
	}
	st.mu.Unlock()
	<-finished
	return fmt.Errorf("serve: drain cut short, running sweeps cancelled: %w", ctx.Err())
}

// toSweepPoints converts engine points into their JSON form (NaN-free:
// a saturated model value becomes an absent field).
func toSweepPoints(pts []experiments.Point) []SweepPoint {
	out := make([]SweepPoint, 0, len(pts))
	for _, pt := range pts {
		sp := SweepPoint{
			Lambda:         pt.Lambda,
			ModelSaturated: pt.ModelSaturated,
			Sim:            pt.Sim,
			SimCI:          pt.SimCI,
			SimSaturated:   pt.SimSaturated,
			SimMeasured:    pt.SimMeasured,
		}
		if !pt.ModelSaturated {
			m := pt.Model
			sp.Model = &m
		}
		out = append(out, sp)
	}
	return out
}
