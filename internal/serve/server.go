package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"sync/atomic"
	"time"

	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/stats"
	"kncube/internal/surface"
	"kncube/internal/surface/shard"
	"kncube/internal/telemetry"
	"kncube/internal/telemetry/span"
)

// Config tunes the service layer. The zero value of any field selects the
// documented default.
type Config struct {
	// MaxInflight bounds concurrently-admitted solves; requests beyond it
	// are shed with 429 rather than queued. Default 4 × NumCPU.
	MaxInflight int
	// CacheSize bounds the LRU solve cache in entries. Default 4096;
	// negative disables retention (singleflight deduplication remains).
	CacheSize int
	// RequestTimeout caps each solve's deadline (clients may only lower it
	// via timeout_ms). Propagated as context cancellation into the
	// fixed-point iteration. Default 30s.
	RequestTimeout time.Duration
	// SweepJobs is the default worker-pool size of each sweep job.
	// Default NumCPU.
	SweepJobs int
	// MaxActiveSweeps bounds concurrently-running async jobs (sweeps and
	// surface builds share the cap); submissions beyond it are shed with
	// 429. Default 2.
	MaxActiveSweeps int
	// MaxStoredSweeps bounds retained terminal jobs (oldest pruned).
	// Default 256.
	MaxStoredSweeps int
	// SurfaceDir persists built latency surfaces and is loaded back by
	// LoadSurfaces at startup. Empty keeps surfaces in memory only.
	SurfaceDir string
	// SurfaceMaxError is the auto-mode interpolation error-estimate
	// threshold: auto-mode solves interpolate only when the surface's
	// estimate is below it, else solve exactly. Default 0.01 (1%);
	// negative disables the bound.
	SurfaceMaxError float64
	// ShardID and ShardPeers configure the consistent-hash surface ring:
	// this replica's name and the full fleet membership. Surface builds
	// for shapes another replica owns are refused with 421 and the owner's
	// name. Empty ShardID (with no peers) owns every shape.
	ShardID    string
	ShardPeers []string
	// Registry receives the khs_serve_* metric set and serves GET /metrics.
	// Default: a fresh registry.
	Registry *telemetry.Registry
	// Logger receives the structured access log (one line per request,
	// carrying trace_id/span_id) and job lifecycle lines. Default: discard.
	Logger *slog.Logger
	// TraceExport, when non-nil, additionally receives every kept trace as
	// JSONL (the GET /v1/traces/{id} ring retains them regardless).
	TraceExport io.Writer
	// TraceBuffer bounds the in-memory trace ring serving /v1/traces/{id},
	// in distinct traces. Default 256.
	TraceBuffer int
	// SlowTraceThreshold, TraceKeepRatio and TraceSeed configure the
	// tail-sampling policy; see span.TailPolicy for the zero-value
	// defaults (250ms, keep-all, clock-seeded ids).
	SlowTraceThreshold time.Duration
	TraceKeepRatio     float64
	TraceSeed          int64
	// RuntimeMetricsInterval paces the khs_runtime_* process-metric
	// sampler. Default 10s; negative disables the ticker (one synchronous
	// sample is still taken at construction).
	RuntimeMetricsInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxInflight == 0 {
		c.MaxInflight = 4 * runtime.NumCPU()
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.SweepJobs == 0 {
		c.SweepJobs = runtime.NumCPU()
	}
	if c.MaxActiveSweeps == 0 {
		c.MaxActiveSweeps = 2
	}
	if c.MaxStoredSweeps == 0 {
		c.MaxStoredSweeps = 256
	}
	if stats.IsZero(c.SurfaceMaxError) {
		c.SurfaceMaxError = 0.01
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 256
	}
	if c.RuntimeMetricsInterval == 0 {
		c.RuntimeMetricsInterval = 10 * time.Second
	}
	return c
}

// Server is the khs-serve service: handlers, solve cache, admission
// control, and the sweep job store. Build with New, mount Handler, and
// call Shutdown to drain.
type Server struct {
	cfg      Config
	reg      *telemetry.Registry
	log      *slog.Logger
	tracer   *span.Tracer
	traces   *span.RingExporter
	cache    *solveCache
	jobs     *jobStore
	surfaces *surface.Store
	ring     *shard.Ring
	slots    chan struct{}
	inflight *telemetry.Gauge
	draining atomic.Bool

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mux *http.ServeMux
}

// New builds a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		log:    cfg.Logger,
		traces: span.NewRingExporter(cfg.TraceBuffer, cfg.TraceExport),
		cache:  newSolveCache(cfg.CacheSize, cfg.Registry),
		slots:  make(chan struct{}, cfg.MaxInflight),
	}
	s.tracer = span.New(span.Config{
		Exporter: s.traces,
		Seed:     cfg.TraceSeed,
		Tail: span.TailPolicy{
			SlowThreshold: cfg.SlowTraceThreshold,
			KeepRatio:     cfg.TraceKeepRatio,
			Seed:          cfg.TraceSeed,
		},
	})
	s.jobs = newJobStore(cfg.MaxActiveSweeps, cfg.MaxStoredSweeps, cfg.Registry, s.tracer, s.log)
	s.surfaces = surface.NewStore(cfg.Registry)
	s.ring = shard.New(cfg.ShardID, cfg.ShardPeers, 0)
	s.inflight = s.reg.Gauge("khs_serve_inflight_solves", "solves currently admitted", nil)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	registerBuildInfo(s.reg)
	startRuntimeSampler(s.baseCtx, s.reg, cfg.RuntimeMetricsInterval)

	s.mux = http.NewServeMux()
	s.route("POST /v1/solve", s.handleSolve)
	s.route("POST /v1/solve:batch", s.handleSolveBatch)
	s.route("POST /v1/sweeps", s.handleSweepCreate)
	s.route("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.route("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.route("POST /v1/surfaces", s.handleSurfaceCreate)
	s.route("GET /v1/surfaces", s.handleSurfaceList)
	s.route("GET /v1/surfaces/{id}", s.handleSurfaceGet)
	s.route("GET /v1/models", s.handleModels)
	s.route("GET /v1/traces/{id}", s.handleTraceGet)
	s.route("GET /v1/version", s.handleVersion)
	s.route("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", telemetry.Handler(s.reg))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the registry carrying the khs_serve_* metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Shutdown drains the server gracefully: new solves and sweep submissions
// are refused with 503, healthz turns 503 so load balancers stop routing
// here, and running sweep jobs are waited for until ctx expires — then
// cancelled. Status reads keep working throughout so clients can collect
// results.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.drain(ctx)
	s.baseCancel()
	return err
}

// route mounts a handler wrapped with the request-metrics and tracing
// middleware; the route pattern itself is the metric label, keeping
// cardinality fixed. Every request gets a root span — adopting the
// caller's trace id when a valid traceparent header is inbound, minting a
// fresh one otherwise — and one structured access-log line carrying the
// same trace_id/span_id, so logs, metrics, and traces cross-reference.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	seconds := s.reg.Histogram("khs_serve_request_seconds",
		"request latency by route", telemetry.Labels{"route": pattern},
		telemetry.ExponentialBuckets(1e-4, 4, 10))
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx := r.Context()
		if tp := r.Header.Get(span.TraceparentHeader); tp != "" {
			// A malformed header starts a fresh trace rather than failing
			// the request, per the W3C processing model.
			if p, perr := span.ParseTraceparent(tp); perr == nil {
				ctx = span.ContextWithParent(ctx, p)
			}
		}
		ctx, sp := s.tracer.Start(ctx, "http "+pattern,
			span.String("http.method", r.Method),
			span.String("http.route", pattern))
		// Hand our context back so the caller (and any downstream hop it
		// makes) can correlate with this server's spans.
		w.Header().Set(span.TraceparentHeader, span.FormatTraceparent(span.Parent{
			TraceID: sp.TraceID(), SpanID: sp.SpanID(), Sampled: true,
		}))

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r.WithContext(ctx))

		elapsed := time.Since(start)
		sp.SetAttr("http.status", int64(rec.status))
		if rec.status >= 400 {
			sp.Keep("http-error")
		}
		logAttrs := []any{
			"method", r.Method,
			"route", pattern,
			"status", rec.status,
			"duration_ms", float64(elapsed.Nanoseconds()) / 1e6,
			"trace_id", sp.TraceID().String(),
			"span_id", sp.SpanID().String(),
		}
		// Handlers surface the cache outcome on the root span; lift it
		// into the access log when present.
		if v, ok := sp.AttrValue("cache"); ok {
			logAttrs = append(logAttrs, "cache", v)
		}
		sp.End()
		s.log.Info("request", logAttrs...)
		seconds.Observe(elapsed.Seconds())
		s.reg.Counter("khs_serve_requests_total", "requests by route and status code",
			telemetry.Labels{"route": pattern, "code": strconv.Itoa(rec.status)}).Inc()
	})
}

// statusRecorder captures the response status for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// shed refuses a request under overload or drain, counting the shed.
func (s *Server) shed(w http.ResponseWriter, status int, reason string) {
	s.reg.Counter("khs_serve_shed_total", "requests shed by admission control",
		telemetry.Labels{"reason": reason}).Inc()
	writeJSON(w, status, ErrorResponse{Error: "overloaded: " + reason})
}

// decodeStrict decodes a JSON body rejecting unknown fields, so client
// typos surface as 400s instead of silently-defaulted parameters.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// handleSolve is POST /v1/solve: validate (reusing Solver.Validate through
// the registry factory), admit, and answer through the solve cache with
// the request deadline plumbed into the fixed-point iteration.
// countSolve records one answered /v1/solve outcome. It is the single
// registration site for khs_serve_solves_total: exact solves and
// interpolated surface hits both count here.
func (s *Server) countSolve(model, outcome string) {
	s.reg.Counter("khs_serve_solves_total", "solve requests by model and outcome",
		telemetry.Labels{"model": model, "outcome": outcome}).Inc()
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeStrict(r, &req); err != nil {
		writeFieldIssues(w, FieldIssue{Field: "body", Reason: err.Error()})
		return
	}
	model := req.Model
	if model == "" {
		model = experiments.DefaultModel
	}
	opts, issue := req.Options.toCore()
	if issue != nil {
		writeFieldIssues(w, *issue)
		return
	}
	mode, issue := req.Options.mode()
	if issue != nil {
		writeFieldIssues(w, *issue)
		return
	}
	spec := core.Spec{K: req.K, Dims: req.Dims, V: req.V, Lm: req.Lm, H: req.H, Lambda: req.Lambda}
	if req.TimeoutMS < 0 {
		writeFieldIssues(w, FieldIssue{Field: "timeout_ms", Reason: "must be >= 0"})
		return
	}
	// Validation before admission: rejecting a bad spec is cheap and must
	// never consume a solve slot or reach the cache.
	sol, err := core.NewSolver(model, spec, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := sol.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Surface modes try the interpolated path first — a hit answers in
	// microseconds without an admission slot, a cache entry, or a solver
	// iteration. A refusal (no surface, near-frontier, out-of-grid, or an
	// estimate above threshold) falls through to the exact path below.
	if mode != ModeExact {
		if s.answerFromSurface(w, r, mode, model, spec, opts) {
			return
		}
	}

	if !s.admit(w, r) {
		return
	}
	defer func() {
		<-s.slots
		s.inflight.Add(-1)
	}()

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	cctx, csp := span.StartChild(r.Context(), "cache")
	ctx, cancel := context.WithTimeout(cctx, timeout)
	defer cancel()

	runner := newSolveRunner(ctx, model, opts)
	start := time.Now()
	res, how, err := s.cache.do(ctx, solveKey(model, spec, opts),
		func(ctx context.Context) (*core.SolveResult, error) {
			return runner.solve(ctx, spec)
		})
	csp.SetAttr("outcome", how)
	if how == cacheMiss {
		// Miss leaders carry the full solver span tree — the interesting
		// traces; hits and coalesced followers are ratio-sampled.
		csp.Keep("cache-miss")
	}
	csp.End()
	span.FromContext(r.Context()).SetAttr("cache", how)
	s.reg.Histogram("khs_serve_solve_seconds", "end-to-end solve time (cache included)",
		nil, telemetry.ExponentialBuckets(1e-5, 4, 12)).Observe(time.Since(start).Seconds())

	outcome := "ok"
	switch {
	case errors.Is(err, core.ErrSaturated):
		outcome = "saturated"
	case isCancellation(err):
		outcome = "cancelled"
	case err != nil:
		outcome = "error"
	}
	s.countSolve(model, outcome)

	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, SolveResponse{
			Model: model, Cache: how, Source: ModeExact, Result: toAPIResult(res),
		})
	case errors.Is(err, core.ErrSaturated):
		// Saturation is the model's answer, not a failure: the configuration
		// has no finite latency at this load.
		writeJSON(w, http.StatusOK, SolveResponse{
			Model: model, Cache: how, Source: ModeExact, Saturated: true, Detail: err.Error(),
		})
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("solve exceeded its deadline (%s): %w", timeout, err))
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this, but close the exchange
		// coherently.
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// maxBatchItems bounds one POST /v1/solve:batch request. Larger workloads
// should be split by the client or submitted as async sweep jobs — a batch
// holds one admission slot for its whole duration, so unbounded batches
// would starve interactive solves.
const maxBatchItems = 256

// handleSolveBatch is POST /v1/solve:batch: many specs of one model through
// one admission slot. Request-level validation (model, options, item count)
// happens before admission; per-item spec validation and solves run inside
// it, reusing one prepared solver per distinct topology shape across the
// cache misses. Per-item failures never fail the batch — only a deadline or
// client hang-up aborts it.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSolveRequest
	if err := decodeStrict(r, &req); err != nil {
		writeFieldIssues(w, FieldIssue{Field: "body", Reason: err.Error()})
		return
	}
	model := req.Model
	if model == "" {
		model = experiments.DefaultModel
	}
	if !slices.Contains(core.Solvers(), model) {
		writeFieldIssues(w, FieldIssue{Field: "model",
			Reason: fmt.Sprintf("unknown model %q (registered: %v)", model, core.Solvers())})
		return
	}
	opts, issue := req.Options.toCore()
	if issue != nil {
		writeFieldIssues(w, *issue)
		return
	}
	mode, issue := req.Options.mode()
	if issue != nil {
		writeFieldIssues(w, *issue)
		return
	}
	if req.TimeoutMS < 0 {
		writeFieldIssues(w, FieldIssue{Field: "timeout_ms", Reason: "must be >= 0"})
		return
	}
	if len(req.Items) == 0 {
		writeFieldIssues(w, FieldIssue{Field: "items", Reason: "required: at least one spec"})
		return
	}
	if len(req.Items) > maxBatchItems {
		writeFieldIssues(w, FieldIssue{Field: "items",
			Reason: fmt.Sprintf("batch of %d items exceeds the %d-item cap", len(req.Items), maxBatchItems)})
		return
	}

	if !s.admit(w, r) {
		return
	}
	defer func() {
		<-s.slots
		s.inflight.Add(-1)
	}()

	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.reg.Histogram("khs_serve_batch_size", "specs per batch solve request",
		nil, telemetry.ExponentialBuckets(1, 2, 9)).Observe(float64(len(req.Items)))
	start := time.Now()
	defer func() {
		s.reg.Histogram("khs_serve_batch_seconds", "end-to-end batch solve time (cache included)",
			nil, telemetry.ExponentialBuckets(1e-5, 4, 12)).Observe(time.Since(start).Seconds())
	}()
	itemOutcome := func(outcome string) {
		s.reg.Counter("khs_serve_batch_items_total", "batch solve items by model and outcome",
			telemetry.Labels{"model": model, "outcome": outcome}).Inc()
	}

	runner := newSolveRunner(ctx, model, opts)
	items := make([]BatchSolveItem, len(req.Items))
	for i, bs := range req.Items {
		spec := core.Spec{K: bs.K, Dims: bs.Dims, V: bs.V, Lm: bs.Lm, H: bs.H, Lambda: bs.Lambda}
		item := &items[i]
		sol, err := core.NewSolver(model, spec, opts)
		if err == nil {
			err = sol.Validate()
		}
		if err != nil {
			item.Status = "invalid"
			item.Detail = err.Error()
			item.Fields = fieldIssues(err)
			itemOutcome("invalid")
			continue
		}
		// Surface modes answer covered items by interpolation; refusals
		// fall through to the exact path (except a surface-mode item whose
		// shape has no surface at all, which is the item's error).
		if mode != ModeExact {
			if done := s.batchItemFromSurface(item, mode, model, spec, opts, itemOutcome); done {
				continue
			}
		}
		res, how, err := s.cache.do(ctx, solveKey(model, spec, opts),
			func(ctx context.Context) (*core.SolveResult, error) {
				return runner.solve(ctx, spec)
			})
		item.Cache = how
		item.Source = ModeExact
		switch {
		case err == nil:
			item.Status = "ok"
			item.Result = toAPIResult(res)
			itemOutcome("ok")
		case errors.Is(err, core.ErrSaturated):
			item.Status = "saturated"
			item.Saturated = true
			item.Detail = err.Error()
			itemOutcome("saturated")
		case errors.Is(err, context.DeadlineExceeded):
			itemOutcome("cancelled")
			writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("batch item %d exceeded the request deadline (%s): %w", i, timeout, err))
			return
		case errors.Is(err, context.Canceled):
			itemOutcome("cancelled")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		default:
			item.Status = "error"
			item.Detail = err.Error()
			itemOutcome("error")
		}
	}
	writeJSON(w, http.StatusOK, BatchSolveResponse{Model: model, Items: items})
}

// handleSweepCreate is POST /v1/sweeps: resolve the panel, build a Sweep
// over the parallel engine, and launch it as an async job.
func (s *Server) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		writeFieldIssues(w, FieldIssue{Field: "body", Reason: err.Error()})
		return
	}
	if req.Panel == "" {
		writeFieldIssues(w, FieldIssue{Field: "panel", Reason: "required: one of the figure panel ids (e.g. fig1-h20)"})
		return
	}
	panel, err := experiments.PanelByID(req.Panel)
	if err != nil {
		writeFieldIssues(w, FieldIssue{Field: "panel", Reason: err.Error()})
		return
	}
	model := req.Model
	if model == "" {
		model = experiments.DefaultModel
	}
	if !slices.Contains(core.Solvers(), model) {
		writeFieldIssues(w, FieldIssue{Field: "model",
			Reason: fmt.Sprintf("unknown model %q (registered: %v)", model, core.Solvers())})
		return
	}
	if req.Points < 0 || req.Reps < 0 || req.Jobs < 0 {
		writeFieldIssues(w, FieldIssue{Field: "points", Reason: "points, reps and jobs must be >= 0"})
		return
	}
	if req.Points > 0 && req.Points < len(panel.Lambdas) {
		panel.Lambdas = panel.Lambdas[:req.Points]
	}
	budget := experiments.DefaultSimBudget()
	if b := req.Budget; b != nil {
		if b.WarmupCycles != 0 {
			budget.WarmupCycles = b.WarmupCycles
		}
		if b.MaxCycles != 0 {
			budget.MaxCycles = b.MaxCycles
		}
		if b.MinMeasured != 0 {
			budget.MinMeasured = b.MinMeasured
		}
		if b.Seed != 0 {
			budget.Seed = b.Seed
		}
	}
	jobs := req.Jobs
	if jobs == 0 {
		jobs = s.cfg.SweepJobs
	}
	sw := experiments.Sweep{
		Jobs:    jobs,
		Reps:    req.Reps,
		Budget:  budget,
		Model:   req.Model,
		Metrics: s.reg,
	}

	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	rs := span.FromContext(r.Context())
	link := span.Parent{TraceID: rs.TraceID(), SpanID: rs.SpanID()}
	j, err := s.jobs.launch(s.baseCtx, sw, []experiments.Panel{panel}, model, link)
	switch {
	case errors.Is(err, errTooManyJobs):
		s.shed(w, http.StatusTooManyRequests, "sweep-cap")
		return
	case errors.Is(err, errDraining):
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleSweepGet is GET /v1/sweeps/{id}. Surface-build jobs live at
// /v1/surfaces/{id}, so a non-sweep id is a 404 here.
func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok || j.kind != jobKindSweep {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleSweepCancel is DELETE /v1/sweeps/{id}: cancel the job's context.
// Cancelling a terminal job is a no-op; the response always carries the
// current status.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok || j.kind != jobKindSweep {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown sweep job %q", r.PathValue("id")))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleHealthz reports liveness; 503 while draining so load balancers
// stop routing new work here during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
