package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"kncube/internal/core"
	"kncube/internal/fixpoint"
	"kncube/internal/telemetry/span"
)

// admit runs admission control for a solve-family request under an
// "admission" child span: the drain check, then the non-blocking slot
// grab (requests beyond MaxInflight shed rather than queue, so the span
// is a decision record, not a wait). On false the request has already
// been answered (503/429) and the caller holds no slot.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	_, adm := span.StartChild(r.Context(), "admission",
		span.Int("max_inflight", s.cfg.MaxInflight))
	defer adm.End()
	if s.draining.Load() {
		adm.SetAttr("outcome", "shed-draining")
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return false
	}
	select {
	case s.slots <- struct{}{}:
		s.inflight.Add(1)
		adm.SetAttr("outcome", "admitted")
		return true
	default:
		adm.SetAttr("outcome", "shed-inflight")
		s.shed(w, http.StatusTooManyRequests, "inflight-cap")
		return false
	}
}

// solveRunner owns the solver side of one request: prepared solvers keyed
// by topology shape (λ excluded), plus the tracing of each cache-miss
// leader solve. fixpoint.Options captures its Trace callback at Prepare
// time while the fixpoint span only exists per solve, so rounds route
// through the `round` indirection — the same hook-variable pattern as
// experiments.solvePanelModels. Leaders run sequentially per request
// (singleflight calls fn synchronously), so `round` needs no lock.
type solveRunner struct {
	model    string
	opts     core.Options
	prepared map[core.Spec]*core.PreparedSolver
	round    func(fixpoint.TraceRecord)
}

// newSolveRunner builds a runner whose solves are cancelled by ctx.
func newSolveRunner(ctx context.Context, model string, opts core.Options) *solveRunner {
	r := &solveRunner{
		model:    model,
		opts:     opts,
		prepared: map[core.Spec]*core.PreparedSolver{},
	}
	r.opts.FixPoint.Ctx = ctx
	r.opts.FixPoint.Trace = func(tr fixpoint.TraceRecord) {
		if r.round != nil {
			r.round(tr)
		}
	}
	return r
}

// solve runs one cache-miss solve as the singleflight leader: preparation
// and the fixed-point iteration become child spans, and each substitution
// round an event on the fixpoint span. A cold prepared solve is
// bit-identical to a one-shot core.Solve — tracing observes the
// iteration, it never alters it.
func (r *solveRunner) solve(ctx context.Context, spec core.Spec) (*core.SolveResult, error) {
	ctx, sp := span.StartChild(ctx, "solve",
		span.String("model", r.model),
		span.Float64("lambda", spec.Lambda))
	defer sp.End()

	shape := spec
	shape.Lambda = 0
	ps := r.prepared[shape]
	if ps == nil {
		_, prep := span.StartChild(ctx, "core.prepare")
		var err error
		ps, err = core.Prepare(r.model, spec, r.opts)
		prep.End()
		if err != nil {
			return nil, err
		}
		r.prepared[shape] = ps
	}

	_, fp := span.StartChild(ctx, "fixpoint.solve")
	if fp != nil {
		r.round = func(tr fixpoint.TraceRecord) {
			fp.Event("round",
				span.Int("iteration", tr.Iteration),
				span.Float64("max_rel_delta", tr.MaxRelDelta),
				span.Bool("accelerated", tr.Accelerated))
		}
	}
	res, err := ps.Solve(spec.Lambda)
	r.round = nil
	if res != nil {
		fp.SetAttr("iterations", int64(res.Convergence.Iterations))
		fp.SetAttr("accelerated_rounds", int64(res.Convergence.AcceleratedRounds))
		fp.SetAttr("damped_rounds", int64(res.Convergence.DampedRounds))
		fp.SetAttr("residual", res.Convergence.Residual)
	}
	fp.End()
	if errors.Is(err, core.ErrSaturated) {
		sp.SetAttr("saturated", true)
		sp.Keep("saturated")
	}
	return res, err
}

// handleTraceGet is GET /v1/traces/{id}: return the retained span tree of
// one trace from the in-memory ring. Traces appear here once their root
// span ends (i.e. after the traced request's response), survive until
// evicted by newer traces, and only exist at all if the tail policy kept
// them.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	recs := s.traces.Trace(id)
	if recs == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("serve: no retained trace %q (not yet finished, dropped by the tail policy, or evicted)", id))
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{TraceID: id, Spans: recs})
}
