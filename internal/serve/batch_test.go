package serve

import (
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"kncube/internal/experiments"
	"kncube/internal/stats"
	"kncube/internal/telemetry"
)

// batchRequest builds a small batch over the figure shape: three loads of
// the 16x16 torus plus one 8x8 shape in the middle, so preparation reuse
// spans both a revisited shape and an interleaved different one.
func batchRequest() BatchSolveRequest {
	return BatchSolveRequest{Items: []BatchSpec{
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5},
		{K: 8, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4},
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1.5e-4},
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 2.2e-4},
	}}
}

// TestBatchSolveAccelerationSharesSingleSolveKeys: batch items solved with
// acceleration options interact with the cache under exactly the keys their
// /v1/solve equivalents use — an accelerated single solve afterwards is a
// hit, and the accelerated entries are distinct from the damped ones.
func TestBatchSolveAccelerationSharesSingleSolveKeys(t *testing.T) {
	h := New(Config{}).Handler()
	req := batchRequest()
	req.Options = &SolveOptions{Acceleration: "anderson", AndersonWindow: 4}

	resp := decodeBody[BatchSolveResponse](t, postJSON(t, h, "/v1/solve:batch", req))
	for i, it := range resp.Items {
		if it.Status != "ok" || it.Cache != cacheMiss {
			t.Fatalf("item %d: status %q cache %q, want ok/miss", i, it.Status, it.Cache)
		}
	}

	bs := req.Items[0]
	single := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", SolveRequest{
		K: bs.K, V: bs.V, Lm: bs.Lm, H: bs.H, Lambda: bs.Lambda,
		Options: req.Options,
	}))
	if single.Cache != cacheHit {
		t.Errorf("accelerated single solve after the batch: cache=%q, want hit", single.Cache)
	}
	if math.Float64bits(single.Result.Latency) != math.Float64bits(resp.Items[0].Result.Latency) {
		t.Errorf("accelerated single latency %v differs from batch item %v",
			single.Result.Latency, resp.Items[0].Result.Latency)
	}

	damped := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", SolveRequest{
		K: bs.K, V: bs.V, Lm: bs.Lm, H: bs.H, Lambda: bs.Lambda,
	}))
	if damped.Cache != cacheMiss {
		t.Errorf("damped solve of the same spec: cache=%q, want miss (acceleration keys its own entry)", damped.Cache)
	}
}

// TestBatchSolveMatchesSingleSolves is the batch endpoint's core contract:
// each item of a POST /v1/solve:batch answer is bit-for-bit the response the
// same spec gets from POST /v1/solve — the shared preparation is a cost
// optimisation, never an arithmetic change.
func TestBatchSolveMatchesSingleSolves(t *testing.T) {
	h := New(Config{}).Handler()
	req := batchRequest()

	rr := postJSON(t, h, "/v1/solve:batch", req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s, want 200", rr.Code, rr.Body.String())
	}
	resp := decodeBody[BatchSolveResponse](t, rr)
	if resp.Model != experiments.DefaultModel {
		t.Errorf("model = %q, want the default", resp.Model)
	}
	if len(resp.Items) != len(req.Items) {
		t.Fatalf("%d items for %d specs", len(resp.Items), len(req.Items))
	}
	for i, bs := range req.Items {
		it := resp.Items[i]
		if it.Status != "ok" || it.Result == nil {
			t.Fatalf("item %d: status %q, detail %q — want ok with a result", i, it.Status, it.Detail)
		}
		if it.Cache != cacheMiss {
			t.Errorf("item %d: cache %q on a cold server, want miss", i, it.Cache)
		}
		single := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", SolveRequest{
			K: bs.K, Dims: bs.Dims, V: bs.V, Lm: bs.Lm, H: bs.H, Lambda: bs.Lambda,
		}))
		if single.Result == nil {
			t.Fatalf("item %d: single solve returned no result", i)
		}
		// The single solve must have been served from the entry the batch
		// item populated: one cache, one key space.
		if single.Cache != cacheHit {
			t.Errorf("item %d: single solve after batch: cache %q, want hit", i, single.Cache)
		}
		if math.Float64bits(it.Result.Latency) != math.Float64bits(single.Result.Latency) {
			t.Errorf("item %d: batch latency %.17g, single %.17g — not bit-identical",
				i, it.Result.Latency, single.Result.Latency)
		}
		if it.Result.Iterations != single.Result.Iterations {
			t.Errorf("item %d: batch iterations %d, single %d", i, it.Result.Iterations, single.Result.Iterations)
		}
	}

	// A repeat batch is served wholly from the cache.
	again := decodeBody[BatchSolveResponse](t, postJSON(t, h, "/v1/solve:batch", req))
	for i, it := range again.Items {
		if it.Cache != cacheHit {
			t.Errorf("repeat batch item %d: cache %q, want hit", i, it.Cache)
		}
	}
}

// TestBatchSolvePerItemOutcomes: a batch mixing clean, invalid and saturated
// specs answers 200 with each item reporting its own outcome — per-item
// failure never fails the batch, and the surrounding items solve normally.
func TestBatchSolvePerItemOutcomes(t *testing.T) {
	s := New(Config{})
	h := s.Handler()
	req := BatchSolveRequest{Items: []BatchSpec{
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5},
		{K: 1, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4},    // radix below the 2D minimum
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.01},   // far beyond saturation
		{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 7.5e-5}, // repeat of item 0: cache hit
	}}
	rr := postJSON(t, h, "/v1/solve:batch", req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s, want 200 with per-item outcomes", rr.Code, rr.Body.String())
	}
	items := decodeBody[BatchSolveResponse](t, rr).Items

	if items[0].Status != "ok" || items[0].Result == nil {
		t.Errorf("item 0: %+v, want a clean solve", items[0])
	}
	if items[1].Status != "invalid" || len(items[1].Fields) == 0 || items[1].Fields[0].Field != "k" {
		t.Errorf("item 1: status %q fields %+v, want invalid naming field k", items[1].Status, items[1].Fields)
	}
	if items[1].Result != nil || items[1].Cache != "" {
		t.Errorf("invalid item carries result/cache: %+v", items[1])
	}
	if items[2].Status != "saturated" || !items[2].Saturated || items[2].Detail == "" || items[2].Result != nil {
		t.Errorf("item 2: %+v, want saturated with detail and no result", items[2])
	}
	if items[3].Status != "ok" || items[3].Cache != cacheHit {
		t.Errorf("item 3: status %q cache %q, want an ok cache hit of item 0", items[3].Status, items[3].Cache)
	}

	for outcome, want := range map[string]int64{"ok": 2, "invalid": 1, "saturated": 1} {
		if n := s.Registry().Counter("khs_serve_batch_items_total", "",
			telemetry.Labels{"model": experiments.DefaultModel, "outcome": outcome}).Value(); n != want {
			t.Errorf("khs_serve_batch_items_total{outcome=%q} = %d, want %d", outcome, n, want)
		}
	}
}

// TestBatchSolveRequestValidation: request-level failures — malformed body,
// unknown model, bad option names, a bad timeout, an empty or oversized item
// list — reject the whole batch as structured 400s before any solving.
func TestBatchSolveRequestValidation(t *testing.T) {
	h := New(Config{}).Handler()
	huge := make([]BatchSpec, maxBatchItems+1)
	for i := range huge {
		huge[i] = BatchSpec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}
	}
	cases := []struct {
		name  string
		body  any
		field string
	}{
		{"no items", BatchSolveRequest{}, "items"},
		{"too many items", BatchSolveRequest{Items: huge}, "items"},
		{"unknown model", BatchSolveRequest{Model: "no-such-model",
			Items: []BatchSpec{{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}}}, "model"},
		{"unknown option", BatchSolveRequest{Options: &SolveOptions{Variance: "psychic"},
			Items: []BatchSpec{{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}}}, "options.variance"},
		{"negative timeout", BatchSolveRequest{TimeoutMS: -1,
			Items: []BatchSpec{{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}}}, "timeout_ms"},
		{"unknown json field", map[string]any{"items": []map[string]any{{"k": 16}}, "modell": "x"}, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postJSON(t, h, "/v1/solve:batch", tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", rr.Code, rr.Body.String())
			}
			resp := decodeBody[ErrorResponse](t, rr)
			if len(resp.Fields) == 0 || resp.Fields[0].Field != tc.field {
				t.Errorf("fields = %+v, want first field %q", resp.Fields, tc.field)
			}
		})
	}
}

// TestBatchSolveDeadlineBecomes504: when the batch deadline expires
// mid-batch the whole request answers 504 — a partially-solved batch is not
// a success.
func TestBatchSolveDeadlineBecomes504(t *testing.T) {
	s := New(Config{RequestTimeout: time.Nanosecond})
	rr := postJSON(t, s.Handler(), "/v1/solve:batch", batchRequest())
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", rr.Code, rr.Body.String())
	}
	resp := decodeBody[ErrorResponse](t, rr)
	if !strings.Contains(resp.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", resp.Error)
	}
	if n := s.Registry().Counter("khs_serve_batch_items_total", "",
		telemetry.Labels{"model": experiments.DefaultModel, "outcome": "cancelled"}).Value(); n != 1 {
		t.Errorf("cancelled-item counter = %d, want 1", n)
	}
}

// TestBatchSolveAdmission: a batch occupies exactly one admission slot, is
// shed with 429 when all slots are held, and refused with 503 while
// draining.
func TestBatchSolveAdmission(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	s.slots <- struct{}{}
	if rr := postJSON(t, s.Handler(), "/v1/solve:batch", batchRequest()); rr.Code != http.StatusTooManyRequests {
		t.Errorf("batch with slots full: %d, want 429", rr.Code)
	}
	<-s.slots
	if rr := postJSON(t, s.Handler(), "/v1/solve:batch", batchRequest()); rr.Code != http.StatusOK {
		t.Errorf("batch after slot freed: %d, want 200", rr.Code)
	}
	if got := s.inflight.Value(); !stats.IsZero(got) {
		t.Errorf("inflight gauge after batch = %v, want 0", got)
	}

	drained := New(Config{})
	drained.draining.Store(true)
	if rr := postJSON(t, drained.Handler(), "/v1/solve:batch", batchRequest()); rr.Code != http.StatusServiceUnavailable {
		t.Errorf("batch while draining: %d, want 503", rr.Code)
	}
}

// TestBatchSolveMetricsExposed: the khs_serve_batch_* set shows up in the
// Prometheus exposition after one batch.
func TestBatchSolveMetricsExposed(t *testing.T) {
	h := New(Config{}).Handler()
	postJSON(t, h, "/v1/solve:batch", batchRequest())
	body := getPath(h, "/metrics").Body.String()
	for _, want := range []string{
		"khs_serve_batch_size_count 1",
		"khs_serve_batch_seconds_count 1",
		`khs_serve_batch_items_total{model="hotspot-2d",outcome="ok"} 4`,
		`khs_serve_requests_total{code="200",route="POST /v1/solve:batch"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
