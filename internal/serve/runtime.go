package serve

import (
	"context"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"kncube/internal/telemetry"
)

// runtimeSampler publishes process health as khs_runtime_* metrics:
// goroutine count, heap in use, and GC pause durations, plus the server
// uptime. Sampled on a ticker rather than at scrape time so the registry
// handler stays a pure reader and a stalled scraper never blocks on
// ReadMemStats.
type runtimeSampler struct {
	goroutines *telemetry.Gauge
	heap       *telemetry.Gauge
	gcPause    *telemetry.Histogram
	uptime     *telemetry.Gauge
	start      time.Time
	lastNumGC  uint32
}

func newRuntimeSampler(reg *telemetry.Registry, start time.Time) *runtimeSampler {
	return &runtimeSampler{
		goroutines: reg.Gauge("khs_runtime_goroutines", "live goroutines", nil),
		heap:       reg.Gauge("khs_runtime_heap_bytes", "heap bytes currently allocated", nil),
		gcPause: reg.Histogram("khs_runtime_gc_pause_seconds",
			"stop-the-world GC pause durations", nil,
			telemetry.ExponentialBuckets(1e-6, 4, 10)),
		uptime:    reg.Gauge("khs_serve_uptime_seconds", "seconds since server construction", nil),
		start:     start,
		lastNumGC: readMemStats().NumGC, // pauses before construction are not ours
	}
}

func readMemStats() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

// sample takes one reading. Only pauses of collections since the previous
// sample enter the histogram; runtime.MemStats retains the last 256 pause
// times in a ring indexed by collection number, so a sampler outpaced by
// the GC loses the oldest pauses (bounded, never double-counted).
func (rs *runtimeSampler) sample(now time.Time) {
	rs.goroutines.Set(float64(runtime.NumGoroutine()))
	ms := readMemStats()
	rs.heap.Set(float64(ms.HeapAlloc))
	newGC := ms.NumGC - rs.lastNumGC
	if newGC > uint32(len(ms.PauseNs)) {
		newGC = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newGC; i++ {
		idx := (ms.NumGC - i + uint32(len(ms.PauseNs)) - 1) % uint32(len(ms.PauseNs))
		rs.gcPause.Observe(float64(ms.PauseNs[idx]) / 1e9)
	}
	rs.lastNumGC = ms.NumGC
	rs.uptime.Set(now.Sub(rs.start).Seconds())
}

// startRuntimeSampler registers the khs_runtime_* metrics, takes one
// synchronous sample (so /metrics is populated from the first scrape),
// and — unless interval is negative — keeps sampling on a ticker until
// ctx (the server's lifetime context) is cancelled.
func startRuntimeSampler(ctx context.Context, reg *telemetry.Registry, interval time.Duration) {
	rs := newRuntimeSampler(reg, time.Now())
	rs.sample(rs.start)
	if interval < 0 {
		return
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-t.C:
				rs.sample(now)
			}
		}
	}()
}

// registerBuildInfo publishes the binary's identity as the constant-value
// khs_serve_build_info gauge (value 1; the information is in the labels,
// the idiomatic Prometheus shape for build metadata).
func registerBuildInfo(reg *telemetry.Registry) {
	v := buildVersion()
	reg.Gauge("khs_serve_build_info", "build metadata (constant 1; see labels)",
		telemetry.Labels{
			"version":    v.Version,
			"revision":   v.Revision,
			"go_version": v.GoVersion,
		}).Set(1)
}

// buildVersion reads the module and VCS identity stamped into the binary.
// Test binaries and plain `go run` builds carry no VCS stamp; those
// fields stay empty rather than guessed.
func buildVersion() VersionResponse {
	v := VersionResponse{Version: "(devel)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		v.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.VCSTime = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

// handleVersion is GET /v1/version: the same build identity as the
// khs_serve_build_info gauge, as JSON.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, buildVersion())
}
