// Package serve is the latency-model service layer: a long-running HTTP
// JSON API over the analytical solvers (internal/core) and the parallel
// sweep engine (internal/experiments). Analytical models earn their keep by
// being cheap enough to query interactively and to embed in design-space
// exploration loops; this package makes the repo's models available that
// way — with a keyed solve cache, admission control so overload sheds
// rather than queues, async sweep jobs, and the khs_serve_* metric set
// exposed straight from the internal/telemetry registry.
//
// Routes (see DESIGN.md §8):
//
//	POST   /v1/solve        spec + model name  → latency decomposition
//	POST   /v1/solve:batch  many specs, one model → per-item results
//	POST   /v1/sweeps       async sweep job    → 202 + job id
//	GET    /v1/sweeps/{id}  job status, progress, per-point results
//	POST   /v1/surfaces     async surface build job → 202 + job id
//	GET    /v1/surfaces     surface inventory + shard membership
//	GET    /v1/surfaces/{id} build-job status or one surface's summary
//	GET    /v1/models       registered solver names + spec constraints
//	GET    /v1/traces/{id}  retained span tree of one trace (debug)
//	GET    /v1/version      build identity (module version, VCS revision)
//	DELETE /v1/sweeps/{id}  cancel a running job
//	GET    /healthz         liveness (503 while draining)
//	GET    /metrics         Prometheus text exposition
//
// Every request is traced (DESIGN.md §11): the root span adopts an
// inbound W3C traceparent, handlers hang admission/cache/solve child
// spans off it, and the access log carries the trace id.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"kncube/internal/core"
	"kncube/internal/fixpoint"
	"kncube/internal/telemetry/span"
)

// SolveRequest is the POST /v1/solve body. Zero-valued spec fields keep
// the selected variant's natural defaults exactly as the core registry
// defines them; validation failures come back as structured FieldIssues.
type SolveRequest struct {
	// Model is a registry name (core.Solvers); empty selects "hotspot-2d".
	Model string `json:"model,omitempty"`
	// K, Dims, V, Lm, H, Lambda mirror core.Spec.
	K      int     `json:"k,omitempty"`
	Dims   int     `json:"dims,omitempty"`
	V      int     `json:"v,omitempty"`
	Lm     int     `json:"lm,omitempty"`
	H      float64 `json:"h,omitempty"`
	Lambda float64 `json:"lambda,omitempty"`
	// Options select the model's reconstruction knobs (ablations); the
	// zero value is the calibrated default used by all harness tooling.
	Options *SolveOptions `json:"options,omitempty"`
	// TimeoutMS bounds this solve; it is capped by the server's configured
	// per-request timeout. 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SolveOptions is the JSON form of core.Options' reconstruction knobs.
// Empty strings select the calibrated defaults.
type SolveOptions struct {
	Entrance  string `json:"entrance,omitempty"` // mean-distance | kbar | worst-case
	Blocking  string `json:"blocking,omitempty"` // vc-occupancy | paper | wait-only | multi-server | bandwidth
	Variance  string `json:"variance,omitempty"` // zero | paper
	NoVCSplit bool   `json:"no_vc_split,omitempty"`
	// Acceleration selects the fixed-point extrapolation scheme: "none"
	// (damped successive substitution, bit-identical to the default),
	// "anderson" (windowed Anderson mixing), or "aitken" (componentwise
	// Δ²). Accelerated solves converge to the same tolerance in fewer
	// iterations but along a different trajectory.
	Acceleration string `json:"acceleration,omitempty"`
	// AndersonWindow is the Anderson mixing depth (0 selects the library
	// default). Only meaningful with acceleration "anderson".
	AndersonWindow int `json:"anderson_window,omitempty"`
	// Mode selects how the answer is produced: "exact" (the solver, today's
	// default), "surface" (interpolate from a precomputed latency surface,
	// falling back to the exact solver only near the saturation frontier or
	// outside the grid), or "auto" (interpolate when a covering surface
	// exists and its error estimate is under the server threshold, else
	// solve exactly). Mode is a serving decision, not a model knob: it never
	// enters the solve cache key, and interpolated answers bypass the cache.
	Mode string `json:"mode,omitempty"`
}

// Serving modes for SolveOptions.Mode.
const (
	ModeExact   = "exact"
	ModeSurface = "surface"
	ModeAuto    = "auto"
)

// mode resolves the serving mode ("" selects ModeExact), reporting unknown
// names as a FieldIssue.
func (o *SolveOptions) mode() (string, *FieldIssue) {
	if o == nil {
		return ModeExact, nil
	}
	switch o.Mode {
	case "", ModeExact:
		return ModeExact, nil
	case ModeSurface, ModeAuto:
		return o.Mode, nil
	}
	return "", &FieldIssue{Field: "options.mode",
		Reason: fmt.Sprintf("unknown serving mode %q (exact, surface, auto)", o.Mode)}
}

// toCore maps the JSON option names onto core.Options, reporting unknown
// names as FieldIssues so clients see which knob was wrong.
func (o *SolveOptions) toCore() (core.Options, *FieldIssue) {
	var opts core.Options
	if o == nil {
		return opts, nil
	}
	switch o.Entrance {
	case "", "mean-distance":
		opts.Entrance = core.EntranceMeanDistance
	case "kbar":
		opts.Entrance = core.EntranceKBar
	case "worst-case":
		opts.Entrance = core.EntranceWorstCase
	default:
		return opts, &FieldIssue{Field: "options.entrance",
			Reason: fmt.Sprintf("unknown entrance policy %q (mean-distance, kbar, worst-case)", o.Entrance)}
	}
	switch o.Blocking {
	case "", "vc-occupancy":
		opts.Blocking = core.BlockingVCOccupancy
	case "paper":
		opts.Blocking = core.BlockingPaper
	case "wait-only":
		opts.Blocking = core.BlockingWaitOnly
	case "multi-server":
		opts.Blocking = core.BlockingMultiServer
	case "bandwidth":
		opts.Blocking = core.BlockingBandwidth
	default:
		return opts, &FieldIssue{Field: "options.blocking",
			Reason: fmt.Sprintf("unknown blocking form %q (vc-occupancy, paper, wait-only, multi-server, bandwidth)", o.Blocking)}
	}
	switch o.Variance {
	case "", "zero":
		opts.Variance = core.VarianceZero
	case "paper":
		opts.Variance = core.VariancePaper
	default:
		return opts, &FieldIssue{Field: "options.variance",
			Reason: fmt.Sprintf("unknown variance form %q (zero, paper)", o.Variance)}
	}
	opts.NoVCSplit = o.NoVCSplit
	switch o.Acceleration {
	case "", "none":
		opts.FixPoint.Acceleration = fixpoint.AccelNone
	case "anderson":
		opts.FixPoint.Acceleration = fixpoint.AccelAnderson
	case "aitken":
		opts.FixPoint.Acceleration = fixpoint.AccelAitken
	default:
		return opts, &FieldIssue{Field: "options.acceleration",
			Reason: fmt.Sprintf("unknown acceleration scheme %q (none, anderson, aitken)", o.Acceleration)}
	}
	if o.AndersonWindow < 0 {
		return opts, &FieldIssue{Field: "options.anderson_window",
			Reason: fmt.Sprintf("anderson window must be non-negative, got %d", o.AndersonWindow)}
	}
	if o.AndersonWindow > 0 && opts.FixPoint.Acceleration != fixpoint.AccelAnderson {
		return opts, &FieldIssue{Field: "options.anderson_window",
			Reason: "anderson_window is only meaningful with acceleration \"anderson\""}
	}
	opts.FixPoint.Window = o.AndersonWindow
	return opts, nil
}

// SolveResponse is the POST /v1/solve success body. Saturated solves are
// not errors — the model is reporting a real property of the configuration
// — so they return 200 with Saturated set and no Result.
type SolveResponse struct {
	Model string `json:"model"`
	// Cache reports how the solve was satisfied: "hit" (served from the
	// LRU), "coalesced" (attached to an identical in-flight solve), "miss"
	// (computed here), or "bypass" (interpolated from a surface — the solve
	// cache was never consulted).
	Cache     string `json:"cache"`
	Saturated bool   `json:"saturated,omitempty"`
	// Detail carries the saturation message when Saturated.
	Detail string       `json:"detail,omitempty"`
	Result *SolveResult `json:"result,omitempty"`
	// Source reports where the numbers came from: "exact" (the solver) or
	// "surface" (interpolated from a precomputed latency surface).
	Source string `json:"source,omitempty"`
	// SurfaceID and ErrorEstimate are set on surface-interpolated answers:
	// the inventory id the answer came from and its relative
	// interpolation-error estimate on the total latency.
	SurfaceID     string  `json:"surface_id,omitempty"`
	ErrorEstimate float64 `json:"error_estimate,omitempty"`
}

// SolveResult is the latency decomposition of a successful solve, mirroring
// core.SolveResult.
type SolveResult struct {
	Latency    float64 `json:"latency"`
	Regular    float64 `json:"regular"`
	Hot        float64 `json:"hot"`
	SourceWait float64 `json:"source_wait"`
	VBar       float64 `json:"vbar"`
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
}

// BatchSolveRequest is the POST /v1/solve:batch body: one model and option
// set applied to many specs in a single request. The whole batch occupies
// one admission slot and shares one deadline; each item interacts with the
// solve cache under exactly the key its /v1/solve equivalent would use, and
// cache misses that share a topology shape (all spec fields except lambda)
// reuse one prepared solver instance.
type BatchSolveRequest struct {
	// Model is a registry name (core.Solvers); empty selects "hotspot-2d".
	// It applies to every item — batches are per-variant, like sweeps.
	Model string `json:"model,omitempty"`
	// Options apply to every item; the zero value is the calibrated default.
	Options *SolveOptions `json:"options,omitempty"`
	// TimeoutMS bounds the whole batch (capped by the server's per-request
	// timeout). 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Items are the specs to solve, in order. At least one is required; at
	// most maxBatchItems are accepted.
	Items []BatchSpec `json:"items"`
}

// BatchSpec is one spec in a batch request, mirroring the spec fields of
// SolveRequest (zero fields keep the variant's natural defaults).
type BatchSpec struct {
	K      int     `json:"k,omitempty"`
	Dims   int     `json:"dims,omitempty"`
	V      int     `json:"v,omitempty"`
	Lm     int     `json:"lm,omitempty"`
	H      float64 `json:"h,omitempty"`
	Lambda float64 `json:"lambda,omitempty"`
}

// BatchSolveResponse is the POST /v1/solve:batch success body: one item per
// request spec, in request order. Per-item failures (invalid spec,
// saturation, solver error) land in their item and never fail the batch;
// only a malformed request, an unknown model, a bad option name, or the
// batch deadline fail the whole request.
type BatchSolveResponse struct {
	Model string           `json:"model"`
	Items []BatchSolveItem `json:"items"`
}

// BatchSolveItem is one spec's outcome. Status is "ok" (Result set),
// "saturated" (the model's real answer at this load — Detail explains),
// "invalid" (the spec failed validation — Fields name the bad field), or
// "error" (the solver failed). Cache mirrors SolveResponse.Cache for the
// statuses that reached the cache.
type BatchSolveItem struct {
	Status    string       `json:"status"`
	Cache     string       `json:"cache,omitempty"`
	Saturated bool         `json:"saturated,omitempty"`
	Detail    string       `json:"detail,omitempty"`
	Fields    []FieldIssue `json:"fields,omitempty"`
	Result    *SolveResult `json:"result,omitempty"`
	// Source, SurfaceID and ErrorEstimate mirror SolveResponse: per item,
	// "surface" marks an interpolated answer and names the surface it came
	// from; "exact" marks a solver answer (including mode-driven fallbacks).
	Source        string  `json:"source,omitempty"`
	SurfaceID     string  `json:"surface_id,omitempty"`
	ErrorEstimate float64 `json:"error_estimate,omitempty"`
}

// toAPIResult maps a core solve result onto the JSON result shape shared by
// /v1/solve and /v1/solve:batch.
func toAPIResult(res *core.SolveResult) *SolveResult {
	return &SolveResult{
		Latency:    res.Latency,
		Regular:    res.Regular,
		Hot:        res.Hot,
		SourceWait: res.SourceWait,
		VBar:       res.VBar,
		Iterations: res.Convergence.Iterations,
		Residual:   res.Convergence.Residual,
	}
}

// SweepRequest is the POST /v1/sweeps body: an async sweep of one figure
// panel through the parallel sweep engine.
type SweepRequest struct {
	// Panel names a figure panel (experiments.Figures), e.g. "fig1-h20".
	Panel string `json:"panel"`
	// Model is the variant to sweep; empty selects the panel default.
	Model string `json:"model,omitempty"`
	// Points truncates the panel's load axis to its first Points entries.
	// Seeds derive from (panel, point index, rep), so a truncated sweep
	// reproduces the corresponding prefix of the full panel bit-for-bit.
	Points int `json:"points,omitempty"`
	// Reps is the number of pooled simulation replications per point
	// (default 1); Jobs the sweep's worker-pool size (default server
	// -sweep-jobs).
	Reps int `json:"reps,omitempty"`
	Jobs int `json:"jobs,omitempty"`
	// Budget overrides the default simulation budget per replication.
	Budget *SweepBudget `json:"budget,omitempty"`
}

// SweepBudget is the JSON form of experiments.SimBudget. Zero fields keep
// the defaults (experiments.DefaultSimBudget), so the canonical
// results/*.csv are reproduced by an empty budget.
type SweepBudget struct {
	WarmupCycles int64 `json:"warmup_cycles,omitempty"`
	MaxCycles    int64 `json:"max_cycles,omitempty"`
	MinMeasured  int64 `json:"min_measured,omitempty"`
	Seed         int64 `json:"seed,omitempty"`
}

// SweepStatus is the job view returned by POST /v1/sweeps (202) and
// GET /v1/sweeps/{id}.
type SweepStatus struct {
	ID    string `json:"id"`
	Panel string `json:"panel"`
	Model string `json:"model"`
	// State is "running", "done", "failed" or "cancelled".
	State string `json:"state"`
	// Done and Total count simulation jobs (points × reps).
	Done  int `json:"done"`
	Total int `json:"total"`
	// Points carries the per-point results once State is "done".
	Points []SweepPoint `json:"points,omitempty"`
	Error  string       `json:"error,omitempty"`
	// TraceID identifies the job's own trace (the job outlives its
	// originating request, so it roots a fresh trace linked back to the
	// request via link.trace_id). Fetch it at GET /v1/traces/{id} once
	// the job is terminal.
	TraceID string `json:"trace_id,omitempty"`
}

// SweepPoint is one swept load point, mirroring the columns of the
// results/*.csv files. Model is omitted when the analytical model reports
// saturation (JSON has no NaN).
type SweepPoint struct {
	Lambda         float64  `json:"lambda"`
	Model          *float64 `json:"model,omitempty"`
	ModelSaturated bool     `json:"model_saturated"`
	Sim            float64  `json:"sim"`
	SimCI          float64  `json:"sim_ci95"`
	SimSaturated   bool     `json:"sim_saturated"`
	SimMeasured    int64    `json:"sim_measured"`
}

// SurfaceRequest is the POST /v1/surfaces body: build one latency surface
// — a solved (λ, h) grid for one topology shape — as an async job. The
// grid axes must be strictly ascending; λ axes may extend past the
// saturation frontier (saturated cells are masked, not solved).
type SurfaceRequest struct {
	// Model is a registry name (core.Solvers); empty selects "hotspot-2d".
	Model string `json:"model,omitempty"`
	// K, Dims, V, Lm fix the topology shape (H and Lambda come from the
	// grid axes instead).
	K    int `json:"k,omitempty"`
	Dims int `json:"dims,omitempty"`
	V    int `json:"v,omitempty"`
	Lm   int `json:"lm,omitempty"`
	// Hs is the hot-spot-fraction axis (each in [0, 1), ascending).
	Hs []float64 `json:"hs"`
	// Lambdas is the offered-load axis (each > 0, ascending, ≥ 2 points).
	Lambdas []float64 `json:"lambdas"`
	// Options select the result-affecting model knobs baked into the
	// surface, plus the fixed-point knobs used while building. Mode is
	// meaningless here and rejected.
	Options *SolveOptions `json:"options,omitempty"`
}

// SurfaceStatus is the build-job view returned by POST /v1/surfaces (202)
// and GET /v1/surfaces/{id} for build-job ids.
type SurfaceStatus struct {
	ID string `json:"id"`
	// Key is the surface shape key (model|k|dims|v|lm|options) the shard
	// ring assigns ownership by.
	Key   string `json:"key"`
	Model string `json:"model"`
	// State is "running", "done", "failed" or "cancelled".
	State string `json:"state"`
	// Done and Total count grid points solved (masked saturated cells
	// count as done — the builder skips, not solves, them).
	Done  int `json:"done"`
	Total int `json:"total"`
	// SurfaceID names the inventory entry once State is "done"; Path is
	// where it was persisted (empty without -surface-dir).
	SurfaceID string `json:"surface_id,omitempty"`
	Path      string `json:"path,omitempty"`
	Error     string `json:"error,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
}

// SurfaceList is the GET /v1/surfaces body: the replica's surface
// inventory plus its shard-ring membership (absent when unsharded).
type SurfaceList struct {
	Shard    *ShardInfo    `json:"shard,omitempty"`
	Surfaces []SurfaceInfo `json:"surfaces"`
}

// ShardInfo describes the consistent-hash ring this replica serves in.
type ShardInfo struct {
	Self  string   `json:"self"`
	Nodes []string `json:"nodes"`
}

// SurfaceInfo summarizes one stored surface.
type SurfaceInfo struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	Model string `json:"model"`
	// HMin..HMax and LambdaMin..LambdaMax are the grid's query coverage.
	HMin      float64 `json:"h_min"`
	HMax      float64 `json:"h_max"`
	LambdaMin float64 `json:"lambda_min"`
	LambdaMax float64 `json:"lambda_max"`
	// Points is the grid size; Saturated counts cells beyond the
	// saturation frontier (masked, answered by exact-solve fallback).
	Points    int    `json:"points"`
	Saturated int    `json:"saturated"`
	Path      string `json:"path,omitempty"`
}

// ModelsResponse is the GET /v1/models body: every registered solver with
// its spec constraints, so clients can discover what a solve or surface
// request may reference.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// ModelInfo is one registered solver variant. Constraints are harvested
// from the variant's own validation metadata (core.Constraints).
type ModelInfo struct {
	Name        string            `json:"name"`
	Constraints []core.Constraint `json:"constraints"`
}

// FieldIssue is one structured validation failure: the request field at
// fault and the reason it was rejected.
type FieldIssue struct {
	Field  string `json:"field"`
	Reason string `json:"reason"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error  string       `json:"error"`
	Fields []FieldIssue `json:"fields,omitempty"`
}

// TraceResponse is the body of GET /v1/traces/{id}: the retained span
// tree of one trace, in span-end order (root last).
type TraceResponse struct {
	TraceID string        `json:"trace_id"`
	Spans   []span.Record `json:"spans"`
}

// VersionResponse is the body of GET /v1/version and the label set of the
// khs_serve_build_info gauge.
type VersionResponse struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision and VCSTime identify the VCS commit the binary was built
	// from; empty when the build carried no VCS stamp (tests, go run).
	Revision string `json:"revision,omitempty"`
	VCSTime  string `json:"vcs_time,omitempty"`
	// Modified marks a build from a dirty working tree.
	Modified  bool   `json:"modified,omitempty"`
	GoVersion string `json:"go_version"`
}

// writeJSON writes v with the given status; encoding failures are beyond
// recovery once the header is out, so they are ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a structured error response. When err (or any error it
// wraps) is a core.FieldError the response carries the (field, reason)
// pair, so bad specs surface as actionable 400s rather than opaque 500s.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Fields: fieldIssues(err)})
}

// fieldIssues extracts the structured (field, reason) pair err carries when
// it wraps a core.FieldError; nil otherwise.
func fieldIssues(err error) []FieldIssue {
	var fe *core.FieldError
	if errors.As(err, &fe) {
		return []FieldIssue{{Field: fe.Field, Reason: fe.Reason}}
	}
	return nil
}

// writeFieldIssues writes a 400 carrying explicit issues (used where the
// failure never reaches core, e.g. unknown option names).
func writeFieldIssues(w http.ResponseWriter, issues ...FieldIssue) {
	resp := ErrorResponse{Error: "invalid request"}
	if len(issues) > 0 {
		resp.Error = issues[0].Reason
		resp.Fields = issues
	}
	writeJSON(w, http.StatusBadRequest, resp)
}
