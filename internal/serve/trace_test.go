package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kncube/internal/telemetry/span"
)

// callerTraceparent is the W3C example header used throughout: trace id
// 4bf92f3577b34da6a3ce929d0e0e4736, parent span 00f067aa0ba902b7.
const (
	callerTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
	callerSpanID      = "00f067aa0ba902b7"
	callerTraceparent = "00-" + callerTraceID + "-" + callerSpanID + "-01"
)

// spanByName returns the first span with the given name, failing the test
// when absent.
func spanByName(t *testing.T, spans []span.Record, name string) span.Record {
	t.Helper()
	for _, r := range spans {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("trace has no %q span; got %v", name, spanNames(spans))
	return span.Record{}
}

func spanNames(spans []span.Record) []string {
	names := make([]string, len(spans))
	for i, r := range spans {
		names[i] = r.Name
	}
	return names
}

// getTrace fetches /v1/traces/{id}, returning the status code and spans.
func getTrace(t *testing.T, h http.Handler, id string) (int, []span.Record) {
	t.Helper()
	rr := getPath(h, "/v1/traces/"+id)
	if rr.Code != http.StatusOK {
		return rr.Code, nil
	}
	return rr.Code, decodeBody[TraceResponse](t, rr).Spans
}

// TestTraceparentJoinsCallerTrace is the tentpole end-to-end check: a solve
// carrying a caller's traceparent header joins that trace — the response
// echoes the caller's trace id, and the retained span tree covers
// admission, cache, solve, prepare, and the fixed-point iteration, all
// under the caller's id with the caller's span as the remote parent.
func TestTraceparentJoinsCallerTrace(t *testing.T) {
	s := New(Config{TraceSeed: 42, RuntimeMetricsInterval: -1})
	h := s.Handler()

	raw, _ := json.Marshal(figureRequest())
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader(string(raw)))
	req.Header.Set("traceparent", callerTraceparent)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("solve status = %d, body %s", rr.Code, rr.Body.String())
	}

	echo := rr.Header().Get("traceparent")
	p, err := span.ParseTraceparent(echo)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", echo, err)
	}
	if p.TraceID.String() != callerTraceID {
		t.Fatalf("response trace id %s, want the caller's %s", p.TraceID, callerTraceID)
	}
	if p.SpanID.String() == callerSpanID {
		t.Errorf("response span id equals the caller's parent id; want the server's own root span")
	}

	// The root span ends inside the middleware, so by the time ServeHTTP
	// returned the trace is retained (and kept: the miss leader raised
	// cache-miss).
	code, spans := getTrace(t, h, callerTraceID)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d", callerTraceID, code)
	}
	root := spanByName(t, spans, "http POST /v1/solve")
	if !root.RemoteParent || root.ParentID != callerSpanID {
		t.Errorf("root parent = %q (remote=%v), want the caller's %s as a remote parent",
			root.ParentID, root.RemoteParent, callerSpanID)
	}
	if got := fmt.Sprint(root.Attrs["tail.keep"]); got != "cache-miss" {
		t.Errorf("root tail.keep = %q, want cache-miss", got)
	}
	if got := fmt.Sprint(root.Attrs["cache"]); got != cacheMiss {
		t.Errorf("root cache attr = %q, want %q", got, cacheMiss)
	}

	// Parent chain: admission and cache hang off the root; the solve runs
	// under the cache span (it is the miss leader's work); preparation and
	// the fixed-point iteration under the solve.
	admission := spanByName(t, spans, "admission")
	cache := spanByName(t, spans, "cache")
	solve := spanByName(t, spans, "solve")
	prepare := spanByName(t, spans, "core.prepare")
	fixp := spanByName(t, spans, "fixpoint.solve")
	for _, link := range []struct {
		name          string
		child, parent span.Record
	}{
		{"admission", admission, root},
		{"cache", cache, root},
		{"solve", solve, cache},
		{"core.prepare", prepare, solve},
		{"fixpoint.solve", fixp, solve},
	} {
		if link.child.ParentID != link.parent.SpanID {
			t.Errorf("%s parent = %q, want %s (%s)", link.name, link.child.ParentID, link.parent.SpanID, link.parent.Name)
		}
		if link.child.TraceID != callerTraceID {
			t.Errorf("%s trace id = %s, want the caller's %s", link.name, link.child.TraceID, callerTraceID)
		}
	}
	if got := fmt.Sprint(admission.Attrs["outcome"]); got != "admitted" {
		t.Errorf("admission outcome = %q, want admitted", got)
	}

	// The fixpoint span records the iteration: one event per substitution
	// round, and the convergence tallies as attributes.
	if len(fixp.Events) == 0 {
		t.Error("fixpoint.solve span has no round events")
	}
	for _, ev := range fixp.Events {
		if ev.Name != "round" {
			t.Errorf("fixpoint event %q, want round", ev.Name)
		}
	}
	if _, ok := fixp.Attrs["iterations"]; !ok {
		t.Errorf("fixpoint.solve span missing iterations attr: %v", fixp.Attrs)
	}
}

// TestTraceTailDropAndKeep pins the tail policy end to end: with the ratio
// and slow rules disabled an unremarkable request's trace is dropped, while
// a cache-miss solve is kept regardless because the leader raised a keep
// reason.
func TestTraceTailDropAndKeep(t *testing.T) {
	s := New(Config{TraceKeepRatio: -1, SlowTraceThreshold: -1, RuntimeMetricsInterval: -1})
	h := s.Handler()

	rr := getPath(h, "/healthz")
	p, err := span.ParseTraceparent(rr.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("healthz traceparent: %v", err)
	}
	if code, _ := getTrace(t, h, p.TraceID.String()); code != http.StatusNotFound {
		t.Errorf("dropped healthz trace served with %d, want 404", code)
	}

	solveRR := postJSON(t, h, "/v1/solve", figureRequest())
	sp, err := span.ParseTraceparent(solveRR.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("solve traceparent: %v", err)
	}
	code, spans := getTrace(t, h, sp.TraceID.String())
	if code != http.StatusOK {
		t.Fatalf("cache-miss trace dropped (%d); keep reasons must override the keep-none ratio", code)
	}
	root := spanByName(t, spans, "http POST /v1/solve")
	if got := fmt.Sprint(root.Attrs["tail.keep"]); got != "cache-miss" {
		t.Errorf("tail.keep = %q, want cache-miss", got)
	}
}

// TestSweepJobTraceLinksBackToRequest: an async sweep roots its own trace
// (the job outlives the request) whose root span links back to the
// originating request's trace, with one sweep.sim span per (λ, rep) job.
func TestSweepJobTraceLinksBackToRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a (tiny) simulation")
	}
	s := New(Config{RuntimeMetricsInterval: -1})
	h := s.Handler()

	rr := postJSON(t, h, "/v1/sweeps", SweepRequest{
		Panel:  "fig1-h20",
		Points: 1,
		Budget: &SweepBudget{WarmupCycles: 200, MaxCycles: 5000, MinMeasured: 50},
	})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("sweep submission = %d, body %s", rr.Code, rr.Body.String())
	}
	reqParent, err := span.ParseTraceparent(rr.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("sweep response traceparent: %v", err)
	}
	st := decodeBody[SweepStatus](t, rr)
	if st.TraceID == "" {
		t.Fatal("sweep status carries no trace_id")
	}
	if st.TraceID == reqParent.TraceID.String() {
		t.Fatal("job trace id equals the request's; the job must root a fresh trace")
	}

	// Wait for the job to finish, then for its trace to land in the ring
	// (the root span exports just after the state turns terminal).
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := decodeBody[SweepStatus](t, getPath(h, "/v1/sweeps/"+st.ID))
		if cur.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep job stuck in %q", cur.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var spans []span.Record
	for {
		var code int
		if code, spans = getTrace(t, h, st.TraceID); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job trace %s never exported", st.TraceID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	job := spanByName(t, spans, "sweep.job")
	if job.ParentID != "" {
		t.Errorf("sweep.job has parent %q, want a root span", job.ParentID)
	}
	if got := fmt.Sprint(job.Attrs["link.trace_id"]); got != reqParent.TraceID.String() {
		t.Errorf("sweep.job link.trace_id = %q, want the request trace %s", got, reqParent.TraceID)
	}
	if got := fmt.Sprint(job.Attrs["state"]); got != JobDone {
		t.Errorf("sweep.job state attr = %q, want done", got)
	}
	sim := spanByName(t, spans, "sweep.sim")
	if sim.TraceID != st.TraceID {
		t.Errorf("sweep.sim trace id = %s, want the job's %s", sim.TraceID, st.TraceID)
	}
	if _, ok := sim.Attrs["seed"]; !ok {
		t.Errorf("sweep.sim span missing the derived seed attr: %v", sim.Attrs)
	}
}

// TestVersionEndpoint: GET /v1/version reports the build as read from
// debug.ReadBuildInfo, and the same identity is exported as the
// khs_serve_build_info gauge.
func TestVersionEndpoint(t *testing.T) {
	s := New(Config{RuntimeMetricsInterval: -1})
	h := s.Handler()

	rr := getPath(h, "/v1/version")
	if rr.Code != http.StatusOK {
		t.Fatalf("version status = %d", rr.Code)
	}
	v := decodeBody[VersionResponse](t, rr)
	if v.GoVersion == "" || v.Version == "" {
		t.Errorf("version response incomplete: %+v", v)
	}

	metrics := getPath(h, "/metrics").Body.String()
	if !strings.Contains(metrics, "khs_serve_build_info{") {
		t.Errorf("metrics missing khs_serve_build_info:\n%s", metrics)
	}
}

// TestRuntimeMetricsSampled: the khs_runtime_* process gauges appear on
// /metrics from the synchronous construction-time sample even with the
// ticker disabled.
func TestRuntimeMetricsSampled(t *testing.T) {
	s := New(Config{RuntimeMetricsInterval: -1})
	metrics := getPath(s.Handler(), "/metrics").Body.String()
	for _, want := range []string{
		"khs_runtime_goroutines",
		"khs_runtime_heap_bytes",
		"khs_runtime_gc_pause_seconds",
		"khs_serve_uptime_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}
