package serve

import (
	"math"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"kncube/internal/core"
	"kncube/internal/surface"
	"kncube/internal/surface/shard"
	"kncube/internal/telemetry"
)

// testSurfaceRequest is a small, fast-building grid around a K=8, Lm=16
// torus: the h=0.3 row saturates mid-axis (λ≈3.5e-3), so the grid carries
// a real saturation frontier for the fallback paths.
func testSurfaceRequest() SurfaceRequest {
	lams := make([]float64, 14)
	for i := range lams {
		lams[i] = 2.5e-4 + 3.65e-4*float64(i)
	}
	return SurfaceRequest{
		K: 8, V: 2, Lm: 16,
		Hs:      []float64{0.1, 0.2, 0.3},
		Lambdas: lams,
	}
}

// waitSurfaceJob blocks until the build-job goroutine exits (white-box on
// the finished channel) and returns the final job view.
func waitSurfaceJob(t *testing.T, s *Server, h http.Handler, id string) SurfaceStatus {
	t.Helper()
	j, ok := s.jobs.get(id)
	if !ok {
		t.Fatalf("job %q not in store", id)
	}
	select {
	case <-j.finished:
	case <-time.After(120 * time.Second):
		t.Fatalf("job %q did not finish", id)
	}
	rr := getPath(h, "/v1/surfaces/"+id)
	if rr.Code != http.StatusOK {
		t.Fatalf("status fetch: %d, body %s", rr.Code, rr.Body.String())
	}
	return decodeBody[SurfaceStatus](t, rr)
}

// TestSurfaceLifecycle is the end-to-end surface contract: build a grid
// through POST /v1/surfaces, poll the job, list the inventory, then serve
// auto-mode and surface-mode solves through it — interpolated hits agree
// with the exact solver, out-of-grid and near-frontier queries fall back
// to it, and every outcome lands in the khs_surface_* metrics.
func TestSurfaceLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 42-point surface (~seconds)")
	}
	dir := t.TempDir()
	s := New(Config{SurfaceDir: dir})
	h := s.Handler()
	req := testSurfaceRequest()

	rr := postJSON(t, h, "/v1/surfaces", req)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("build submission: %d, body %s, want 202", rr.Code, rr.Body.String())
	}
	st := decodeBody[SurfaceStatus](t, rr)
	if loc := rr.Header().Get("Location"); loc != "/v1/surfaces/"+st.ID {
		t.Errorf("Location = %q, want /v1/surfaces/%s", loc, st.ID)
	}
	if !strings.HasPrefix(st.ID, "build-") {
		t.Errorf("build job id = %q, want a build- id distinct from inventory ids", st.ID)
	}
	if st.Key == "" || st.Model != "hotspot-2d" || st.Total != 42 {
		t.Errorf("submission status %+v, want key, default model, 42-point total", st)
	}

	final := waitSurfaceJob(t, s, h, st.ID)
	if final.State != JobDone || final.SurfaceID == "" {
		t.Fatalf("final status %+v, want done with a surface id", final)
	}
	if final.Path == "" {
		t.Fatalf("built surface was not persisted despite SurfaceDir")
	}
	if _, err := os.Stat(final.Path); err != nil {
		t.Fatalf("persisted surface missing: %v", err)
	}

	// Inventory: one surface, coverage matching the requested grid.
	list := decodeBody[SurfaceList](t, getPath(h, "/v1/surfaces"))
	if len(list.Surfaces) != 1 || list.Shard != nil {
		t.Fatalf("inventory %+v, want one surface and no shard info when unsharded", list)
	}
	info := list.Surfaces[0]
	if info.ID != final.SurfaceID || info.Key != final.Key || info.Points != 42 {
		t.Errorf("inventory entry %+v does not match the build job %+v", info, final)
	}
	if info.Saturated == 0 || info.Saturated == info.Points {
		t.Errorf("surface has %d/%d saturated cells, want a real frontier", info.Saturated, info.Points)
	}
	byID := decodeBody[SurfaceInfo](t, getPath(h, "/v1/surfaces/"+final.SurfaceID))
	if byID.ID != info.ID || byID.Key != info.Key {
		t.Errorf("GET by surface id: %+v, want %+v", byID, info)
	}

	// Auto-mode solve on a grid row at off-grid λ: interpolated, cache
	// bypassed, and within 1% of the exact solver.
	offGrid := 0.5 * (req.Lambdas[2] + req.Lambdas[3])
	solveReq := SolveRequest{K: 8, V: 2, Lm: 16, H: 0.2, Lambda: offGrid,
		Options: &SolveOptions{Mode: ModeAuto}}
	resp := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", solveReq))
	if resp.Source != ModeSurface || resp.Cache != "bypass" || resp.SurfaceID != final.SurfaceID {
		t.Fatalf("auto-mode solve %+v, want a surface answer from %s", resp, final.SurfaceID)
	}
	exact, err := core.Solve("hotspot-2d", core.Spec{K: 8, V: 2, Lm: 16, H: 0.2, Lambda: offGrid}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(resp.Result.Latency-exact.Latency) / exact.Latency; rel > 1e-2 {
		t.Errorf("interpolated latency %g vs exact %g: rel error %.3g > 1e-2",
			resp.Result.Latency, exact.Latency, rel)
	}
	if resp.ErrorEstimate < 0 || resp.ErrorEstimate > 0.01 {
		t.Errorf("error estimate %g outside the auto-mode threshold", resp.ErrorEstimate)
	}
	if hits := s.Registry().Counter("khs_surface_lookups_total", "",
		telemetry.Labels{"outcome": "hit"}).Value(); hits != 1 {
		t.Errorf("khs_surface_lookups_total{outcome=hit} = %d, want 1", hits)
	}

	// Below the grid's λ axis: auto mode falls back to the exact solver.
	below := solveReq
	below.Lambda = req.Lambdas[0] / 4
	fb := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", below))
	if fb.Source != ModeExact || fb.Result == nil {
		t.Errorf("below-axis auto solve %+v, want an exact fallback with a result", fb)
	}
	if n := s.Registry().Counter("khs_surface_fallbacks_total", "",
		telemetry.Labels{"reason": "range"}).Value(); n != 1 {
		t.Errorf("range fallback counter = %d, want 1", n)
	}

	// Near the h=0.3 row's saturation frontier: surface mode refuses the
	// interpolation and the exact solver reports saturation — the 200
	// "no finite latency" answer, not an interpolated fiction.
	sat := SolveRequest{K: 8, V: 2, Lm: 16, H: 0.3, Lambda: req.Lambdas[len(req.Lambdas)-1],
		Options: &SolveOptions{Mode: ModeSurface}}
	satResp := decodeBody[SolveResponse](t, postJSON(t, h, "/v1/solve", sat))
	if satResp.Source != ModeExact || !satResp.Saturated {
		t.Errorf("near-frontier surface solve %+v, want exact saturated fallback", satResp)
	}
	if n := s.Registry().Counter("khs_surface_fallbacks_total", "",
		telemetry.Labels{"reason": "saturation"}).Value(); n != 1 {
		t.Errorf("saturation fallback counter = %d, want 1", n)
	}

	// Surface mode on a shape with no surface at all is the client's
	// error: 409, telling them to build one.
	none := SolveRequest{Model: "hypercube", K: 2, Dims: 8, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4,
		Options: &SolveOptions{Mode: ModeSurface}}
	if rr := postJSON(t, h, "/v1/solve", none); rr.Code != http.StatusConflict {
		t.Errorf("surface-mode solve with no surface: %d, body %s, want 409", rr.Code, rr.Body.String())
	} else if resp := decodeBody[ErrorResponse](t, rr); !strings.Contains(resp.Error, "/v1/surfaces") {
		t.Errorf("409 body %q does not point at POST /v1/surfaces", resp.Error)
	}

	// Batch: one covered item interpolates, one below-axis item falls
	// back — per item, in one request.
	batch := BatchSolveRequest{Options: &SolveOptions{Mode: ModeAuto}, Items: []BatchSpec{
		{K: 8, V: 2, Lm: 16, H: 0.2, Lambda: offGrid},
		{K: 8, V: 2, Lm: 16, H: 0.2, Lambda: req.Lambdas[0] / 4},
	}}
	bresp := decodeBody[BatchSolveResponse](t, postJSON(t, h, "/v1/solve:batch", batch))
	if len(bresp.Items) != 2 {
		t.Fatalf("batch items = %d, want 2", len(bresp.Items))
	}
	if it := bresp.Items[0]; it.Status != "ok" || it.Source != ModeSurface || it.SurfaceID != final.SurfaceID {
		t.Errorf("covered batch item %+v, want an interpolated answer", it)
	}
	if it := bresp.Items[1]; it.Status != "ok" || it.Source != ModeExact || it.Cache == "" {
		t.Errorf("below-axis batch item %+v, want an exact fallback through the cache", it)
	}

	// The build job is not a sweep: the sweep endpoints must not see it.
	if rr := getPath(h, "/v1/sweeps/"+st.ID); rr.Code != http.StatusNotFound {
		t.Errorf("GET /v1/sweeps/%s = %d, want 404", st.ID, rr.Code)
	}
}

// TestSurfaceValidation: bad build requests come back as structured 400s,
// and a bad solve mode names options.mode.
func TestSurfaceValidation(t *testing.T) {
	h := New(Config{}).Handler()

	descending := testSurfaceRequest()
	descending.Hs = []float64{0.3, 0.2}
	onePoint := testSurfaceRequest()
	onePoint.Lambdas = onePoint.Lambdas[:1]
	badModel := testSurfaceRequest()
	badModel.Model = "no-such-model"
	withMode := testSurfaceRequest()
	withMode.Options = &SolveOptions{Mode: ModeAuto}
	badShape := testSurfaceRequest()
	badShape.K = 1
	huge := testSurfaceRequest()
	huge.Hs = make([]float64, 0, 40)
	for i := 0; i < 40; i++ {
		huge.Hs = append(huge.Hs, 0.01*float64(i))
	}
	huge.Lambdas = make([]float64, 0, 500)
	for i := 0; i < 500; i++ {
		huge.Lambdas = append(huge.Lambdas, 1e-5*float64(i+1))
	}

	cases := []struct {
		name  string
		body  any
		field string
	}{
		{"descending h axis", descending, "grid"},
		{"single-point lambda axis", onePoint, "grid"},
		{"unknown model", badModel, "model"},
		{"mode in a build request", withMode, "options.mode"},
		{"invalid shape", badShape, "k"},
		{"grid beyond the cell cap", huge, "grid"},
		{"unknown json field", map[string]any{"hs": []float64{0.1}, "lambdas": []float64{1e-4, 2e-4}, "kk": 1}, "body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postJSON(t, h, "/v1/surfaces", tc.body)
			if rr.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s, want 400", rr.Code, rr.Body.String())
			}
			resp := decodeBody[ErrorResponse](t, rr)
			if len(resp.Fields) == 0 || resp.Fields[0].Field != tc.field {
				t.Errorf("fields = %+v, want first field %q", resp.Fields, tc.field)
			}
		})
	}

	req := figureRequest()
	req.Options = &SolveOptions{Mode: "psychic"}
	rr := postJSON(t, h, "/v1/solve", req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", rr.Code)
	}
	if resp := decodeBody[ErrorResponse](t, rr); len(resp.Fields) == 0 || resp.Fields[0].Field != "options.mode" {
		t.Errorf("bad mode fields = %+v, want options.mode", resp.Fields)
	}

	if rr := getPath(h, "/v1/surfaces/build-999999"); rr.Code != http.StatusNotFound {
		t.Errorf("unknown surface id: status %d, want 404", rr.Code)
	}
}

// TestSurfaceSharding: with a configured ring, builds for shapes another
// replica owns are refused with 421 naming the owner, and the inventory
// reports the membership.
func TestSurfaceSharding(t *testing.T) {
	self, peers := "replica-a", []string{"replica-a", "replica-b"}
	ring := shard.New(self, peers, 0)

	// Find one shape each replica owns by walking the radix. Shape keys
	// are verbatim, like solve-cache keys, so the probe Defs must carry
	// exactly the spec fields the requests below will (Dims unset).
	ownedK, foreignK := 0, 0
	for k := 4; k <= 40 && (ownedK == 0 || foreignK == 0); k += 2 {
		d := surface.Def{Model: "hotspot-2d", K: k, V: 2, Lm: 16}
		if ring.Owns(d.Key()) {
			if ownedK == 0 {
				ownedK = k
			}
		} else if foreignK == 0 {
			foreignK = k
		}
	}
	if ownedK == 0 || foreignK == 0 {
		t.Fatalf("ring never split ownership across the probed shapes")
	}

	s := New(Config{ShardID: self, ShardPeers: peers})
	h := s.Handler()

	foreign := testSurfaceRequest()
	foreign.K = foreignK
	rr := postJSON(t, h, "/v1/surfaces", foreign)
	if rr.Code != http.StatusMisdirectedRequest {
		t.Fatalf("foreign-shape build: %d, body %s, want 421", rr.Code, rr.Body.String())
	}
	if resp := decodeBody[ErrorResponse](t, rr); !strings.Contains(resp.Error, "replica-b") {
		t.Errorf("421 body %q does not name the owning replica", resp.Error)
	}

	// A surface-mode solve for an unbuilt foreign shape is likewise
	// misdirected — the owner, not this replica, would hold its surface.
	solve := SolveRequest{K: foreignK, V: 2, Lm: 16, H: 0.2, Lambda: 1e-4,
		Options: &SolveOptions{Mode: ModeSurface}}
	if rr := postJSON(t, h, "/v1/solve", solve); rr.Code != http.StatusMisdirectedRequest {
		t.Errorf("foreign-shape surface solve: %d, want 421", rr.Code)
	}

	list := decodeBody[SurfaceList](t, getPath(h, "/v1/surfaces"))
	if list.Shard == nil || list.Shard.Self != self || len(list.Shard.Nodes) != 2 {
		t.Errorf("shard info %+v, want self %q over 2 nodes", list.Shard, self)
	}
}

// TestLoadSurfaces: surfaces persisted by a previous process are loaded
// at startup and serve surface-mode solves immediately.
func TestLoadSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a small surface directly")
	}
	dir := t.TempDir()
	// Dims matches the solve request below verbatim: shape keys, like
	// solve-cache keys, do not alias a variant's zero-value defaults.
	d := surface.Def{
		Model: "hotspot-2d", K: 8, V: 2, Lm: 16,
		Hs:      []float64{0.1, 0.2},
		Lambdas: []float64{5e-5, 1e-4, 1.5e-4, 2e-4, 2.5e-4, 3e-4},
	}
	sfc, err := surface.Build(d, surface.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := surface.WriteFile(dir, sfc); err != nil {
		t.Fatal(err)
	}

	s := New(Config{SurfaceDir: dir})
	n, err := s.LoadSurfaces()
	if err != nil || n != 1 {
		t.Fatalf("LoadSurfaces = %d, %v, want 1 surface", n, err)
	}
	req := SolveRequest{K: 8, V: 2, Lm: 16, H: 0.15, Lambda: 1.25e-4,
		Options: &SolveOptions{Mode: ModeSurface}}
	resp := decodeBody[SolveResponse](t, postJSON(t, s.Handler(), "/v1/solve", req))
	if resp.Source != ModeSurface || resp.Result == nil {
		t.Errorf("solve after load %+v, want a surface answer", resp)
	}
}

// TestModelsEndpoint: GET /v1/models lists every registered variant with
// the constraints its validation enforces.
func TestModelsEndpoint(t *testing.T) {
	h := New(Config{}).Handler()
	rr := getPath(h, "/v1/models")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	resp := decodeBody[ModelsResponse](t, rr)
	if len(resp.Models) != len(core.Solvers()) {
		t.Fatalf("models = %d, want %d", len(resp.Models), len(core.Solvers()))
	}
	for _, m := range resp.Models {
		fields := map[string]bool{}
		for _, c := range m.Constraints {
			if c.Reason == "" {
				t.Errorf("%s: constraint %q has no reason", m.Name, c.Field)
			}
			fields[c.Field] = true
		}
		for _, want := range []string{"k", "v", "lm", "h", "lambda"} {
			if !fields[want] {
				t.Errorf("%s: no constraint reported for field %q (got %v)", m.Name, want, m.Constraints)
			}
		}
	}
}
