package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"time"

	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/surface"
	"kncube/internal/telemetry/span"
)

// maxSurfaceCells bounds one surface build request's grid. A build solves
// every unmasked cell; an unbounded grid would let one request occupy a
// job slot for hours.
const maxSurfaceCells = 16384

// LoadSurfaces loads every surface persisted under cfg.SurfaceDir into
// the serving inventory, returning how many were loaded. Without a
// configured directory it is a no-op. A corrupt or unreadable file fails
// the whole load — a replica must not silently serve a partial inventory.
func (s *Server) LoadSurfaces() (int, error) {
	if s.cfg.SurfaceDir == "" {
		return 0, nil
	}
	entries, err := s.surfaces.LoadDir(s.cfg.SurfaceDir)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		s.log.Info("surface loaded", "surface_id", e.ID, "key", e.Surface.Def.Key(), "path", e.Path)
	}
	return len(entries), nil
}

// lookupOptions maps the serving mode onto store lookup bounds: auto
// enforces the configured error-estimate threshold, surface mode serves
// any covering interpolation (its bound is the grid itself).
func (s *Server) lookupOptions(mode string) surface.LookupOptions {
	if mode == ModeAuto {
		return surface.LookupOptions{MaxErrEstimate: s.cfg.SurfaceMaxError}
	}
	return surface.LookupOptions{}
}

// answerFromSurface tries to serve one /v1/solve request from the surface
// store under a "surface.lookup" child span. It returns true when the
// request has been fully answered: an interpolated hit, or a surface-mode
// request whose shape has no surface at all (409 — the client asked for a
// surface answer that cannot exist until one is built). Range, frontier,
// and estimate refusals return false so the caller falls back to the
// exact solver.
func (s *Server) answerFromSurface(w http.ResponseWriter, r *http.Request, mode, model string, spec core.Spec, opts core.Options) bool {
	_, sp := span.StartChild(r.Context(), "surface.lookup",
		span.String("mode", mode),
		span.String("model", model),
		span.Float64("lambda", spec.Lambda))
	defer sp.End()

	lk, e, err := s.surfaces.Lookup(model, spec, opts, s.lookupOptions(mode))
	if err == nil {
		sp.SetAttr("outcome", "hit")
		sp.SetAttr("surface_id", e.ID)
		sp.SetAttr("err_estimate", lk.ErrEstimate)
		s.countSolve(model, "ok")
		writeJSON(w, http.StatusOK, SolveResponse{
			Model: model, Cache: "bypass", Source: ModeSurface,
			SurfaceID: e.ID, ErrorEstimate: lk.ErrEstimate,
			Result: lookupResult(lk),
		})
		return true
	}
	if mode == ModeSurface && errors.Is(err, surface.ErrNoSurface) {
		sp.SetAttr("outcome", "no-surface")
		key := surface.ShapeKey(model, spec, opts)
		if owner := s.ring.Owner(key); owner != s.ring.Self() {
			writeError(w, http.StatusMisdirectedRequest,
				fmt.Errorf("serve: shape %s is owned by replica %q, not %q: %w", key, owner, s.ring.Self(), err))
			return true
		}
		writeError(w, http.StatusConflict,
			fmt.Errorf("serve: mode \"surface\" but no surface covers shape %s (build one via POST /v1/surfaces): %w", key, err))
		return true
	}
	sp.SetAttr("outcome", "fallback")
	sp.SetAttr("reason", fallbackReason(err))
	return false
}

// batchItemFromSurface is answerFromSurface's per-batch-item twin: it
// fills item and reports done on an interpolated hit or a surface-mode
// no-surface error; false means the item proceeds to the exact path.
func (s *Server) batchItemFromSurface(item *BatchSolveItem, mode, model string, spec core.Spec, opts core.Options, itemOutcome func(string)) bool {
	lk, e, err := s.surfaces.Lookup(model, spec, opts, s.lookupOptions(mode))
	if err == nil {
		item.Status = "ok"
		item.Source = ModeSurface
		item.SurfaceID = e.ID
		item.ErrorEstimate = lk.ErrEstimate
		item.Result = lookupResult(lk)
		itemOutcome("ok")
		return true
	}
	if mode == ModeSurface && errors.Is(err, surface.ErrNoSurface) {
		item.Status = "error"
		item.Detail = fmt.Sprintf("mode %q but no surface covers shape %s: %v",
			mode, surface.ShapeKey(model, spec, opts), err)
		itemOutcome("error")
		return true
	}
	return false
}

// fallbackReason classifies a lookup refusal for span attributes, keeping
// attribute cardinality to the three structured causes.
func fallbackReason(err error) string {
	switch {
	case errors.Is(err, surface.ErrNoSurface):
		return "no-surface"
	case errors.Is(err, surface.ErrNearSaturation):
		return "saturation"
	case errors.Is(err, surface.ErrEstimateTooHigh):
		return "estimate"
	default:
		return "range"
	}
}

// lookupResult maps an interpolated lookup onto the shared JSON result
// shape. Iterations and Residual stay zero: no iteration ran.
func lookupResult(lk surface.Lookup) *SolveResult {
	return &SolveResult{
		Latency:    lk.Latency,
		Regular:    lk.Regular,
		Hot:        lk.Hot,
		SourceWait: lk.SourceWait,
		VBar:       lk.VBar,
	}
}

// handleSurfaceCreate is POST /v1/surfaces: validate the definition,
// check shard ownership, and launch the grid build as an async job. On
// completion the surface enters the inventory (and SurfaceDir, when
// configured); the 202 body carries the job id to poll.
func (s *Server) handleSurfaceCreate(w http.ResponseWriter, r *http.Request) {
	var req SurfaceRequest
	if err := decodeStrict(r, &req); err != nil {
		writeFieldIssues(w, FieldIssue{Field: "body", Reason: err.Error()})
		return
	}
	model := req.Model
	if model == "" {
		model = experiments.DefaultModel
	}
	if !slices.Contains(core.Solvers(), model) {
		writeFieldIssues(w, FieldIssue{Field: "model",
			Reason: fmt.Sprintf("unknown model %q (registered: %v)", model, core.Solvers())})
		return
	}
	opts, issue := req.Options.toCore()
	if issue != nil {
		writeFieldIssues(w, *issue)
		return
	}
	if req.Options != nil && req.Options.Mode != "" {
		writeFieldIssues(w, FieldIssue{Field: "options.mode",
			Reason: "mode selects how solves are answered; it is meaningless in a surface build"})
		return
	}
	def := surface.Def{
		Model: model, K: req.K, Dims: req.Dims, V: req.V, Lm: req.Lm,
		Entrance: opts.Entrance, Blocking: opts.Blocking,
		Variance: opts.Variance, NoVCSplit: opts.NoVCSplit,
		Hs: req.Hs, Lambdas: req.Lambdas,
	}
	if err := def.Validate(); err != nil {
		writeFieldIssues(w, FieldIssue{Field: "grid", Reason: err.Error()})
		return
	}
	if cells := len(req.Hs) * len(req.Lambdas); cells > maxSurfaceCells {
		writeFieldIssues(w, FieldIssue{Field: "grid",
			Reason: fmt.Sprintf("grid of %d cells exceeds the %d-cell cap", cells, maxSurfaceCells)})
		return
	}
	// The shape itself must validate before we commit a job slot to it;
	// probe it at the first grid point.
	probe := core.Spec{K: req.K, Dims: req.Dims, V: req.V, Lm: req.Lm, H: req.Hs[0], Lambda: req.Lambdas[0]}
	sol, err := core.NewSolver(model, probe, opts)
	if err == nil {
		err = sol.Validate()
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	key := def.Key()
	if !s.ring.Owns(key) {
		writeError(w, http.StatusMisdirectedRequest,
			fmt.Errorf("serve: shape %s is owned by replica %q, not %q", key, s.ring.Owner(key), s.ring.Self()))
		return
	}

	if s.draining.Load() {
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	}
	rs := span.FromContext(r.Context())
	link := span.Parent{TraceID: rs.TraceID(), SpanID: rs.SpanID()}
	fp := opts.FixPoint
	j := &job{kind: jobKindSurface, key: key, model: model, total: len(req.Hs) * len(req.Lambdas)}
	j, err = s.jobs.launchJob(s.baseCtx, j, link, func(ctx context.Context, j *job) error {
		bo := surface.BuildOptions{
			FixPoint: fp,
			Progress: func(done, total int) {
				j.mu.Lock()
				j.done, j.total = done, total
				j.mu.Unlock()
			},
		}
		bo.FixPoint.Ctx = ctx
		start := time.Now()
		sfc, err := surface.Build(def, bo)
		s.surfaces.ObserveBuild(time.Since(start), err)
		if err != nil {
			return err
		}
		path := ""
		if s.cfg.SurfaceDir != "" {
			if path, err = surface.WriteFile(s.cfg.SurfaceDir, sfc); err != nil {
				return err
			}
		}
		e := s.surfaces.Add(sfc, path)
		j.mu.Lock()
		j.surfaceID, j.path = e.ID, path
		j.mu.Unlock()
		return nil
	})
	switch {
	case errors.Is(err, errTooManyJobs):
		s.shed(w, http.StatusTooManyRequests, "surface-cap")
		return
	case errors.Is(err, errDraining):
		s.shed(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/surfaces/"+j.id)
	writeJSON(w, http.StatusAccepted, j.surfaceStatus())
}

// handleSurfaceList is GET /v1/surfaces: the replica's inventory plus its
// shard membership (when sharded), so clients can route builds.
func (s *Server) handleSurfaceList(w http.ResponseWriter, r *http.Request) {
	resp := SurfaceList{Surfaces: []SurfaceInfo{}}
	if s.cfg.ShardID != "" {
		resp.Shard = &ShardInfo{Self: s.ring.Self(), Nodes: s.ring.Nodes()}
	}
	for _, e := range s.surfaces.List() {
		resp.Surfaces = append(resp.Surfaces, surfaceInfo(e))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSurfaceGet is GET /v1/surfaces/{id}: a build-job id ("build-…")
// returns the job view; an inventory id ("surface-…") returns the stored
// surface's summary.
func (s *Server) handleSurfaceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.jobs.get(id); ok && j.kind == jobKindSurface {
		writeJSON(w, http.StatusOK, j.surfaceStatus())
		return
	}
	if e := s.surfaces.Get(id); e != nil {
		writeJSON(w, http.StatusOK, surfaceInfo(e))
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown surface or build job %q", id))
}

// surfaceInfo summarizes a stored surface for the API.
func surfaceInfo(e *surface.Entry) SurfaceInfo {
	d := e.Surface.Def
	total, saturated := e.Surface.Points()
	return SurfaceInfo{
		ID:        e.ID,
		Key:       d.Key(),
		Model:     d.Model,
		HMin:      d.Hs[0],
		HMax:      d.Hs[len(d.Hs)-1],
		LambdaMin: d.Lambdas[0],
		LambdaMax: d.Lambdas[len(d.Lambdas)-1],
		Points:    total,
		Saturated: saturated,
		Path:      e.Path,
	}
}

// handleModels is GET /v1/models: every registered solver variant with
// the spec constraints its own validation enforces, discovered from the
// registry (core.Constraints).
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	resp := ModelsResponse{}
	for _, name := range core.Solvers() {
		cons, err := core.Constraints(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Models = append(resp.Models, ModelInfo{Name: name, Constraints: cons})
	}
	writeJSON(w, http.StatusOK, resp)
}
