package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"kncube/internal/core"
	"kncube/internal/telemetry"
)

func testCache(capacity int) *solveCache {
	return newSolveCache(capacity, telemetry.NewRegistry())
}

// TestCacheCollapsesConcurrentIdenticalSolves is the singleflight
// contract: many concurrent requests for one key run the solver exactly
// once. Run under -race this also proves the publication of the shared
// entry is properly synchronised.
func TestCacheCollapsesConcurrentIdenticalSolves(t *testing.T) {
	c := testCache(16)
	const waiters = 32
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*core.SolveResult, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.do(context.Background(), "key", func(context.Context) (*core.SolveResult, error) {
				calls.Add(1)
				<-gate // hold every other caller in the flight
				return &core.SolveResult{Latency: 42}, nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			results[i] = res
		}(i)
	}
	// Open the gate once the leader is inside fn; the other goroutines
	// either join the flight or hit the cache afterwards — both fine, both
	// must see the leader's result without a second solver run.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("solver ran %d times for %d concurrent identical requests, want 1", n, waiters)
	}
	for i, r := range results {
		if r == nil || math.Float64bits(r.Latency) != math.Float64bits(42.0) {
			t.Fatalf("caller %d got %+v, want the shared result", i, r)
		}
	}
}

// TestCacheRepeatIsHit pins the basic hit path and its metrics.
func TestCacheRepeatIsHit(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newSolveCache(8, reg)
	fn := func(context.Context) (*core.SolveResult, error) {
		return &core.SolveResult{Latency: 1}, nil
	}
	if _, how, _ := c.do(context.Background(), "k", fn); how != cacheMiss {
		t.Fatalf("first call: %s, want miss", how)
	}
	if _, how, _ := c.do(context.Background(), "k", fn); how != cacheHit {
		t.Fatalf("second call: %s, want hit", how)
	}
	hits := reg.Counter("khs_serve_cache_hits_total", "", nil).Value()
	misses := reg.Counter("khs_serve_cache_misses_total", "", nil).Value()
	if hits != 1 || misses != 1 {
		t.Errorf("hits = %d, misses = %d, want 1 and 1", hits, misses)
	}
}

// TestSolveKeyDistinctSpecsNeverCollide enumerates single-field
// perturbations of a base (model, spec, options) and requires all keys
// pairwise distinct — including float changes below any printing
// precision, which a %v-formatted key would collapse.
func TestSolveKeyDistinctSpecsNeverCollide(t *testing.T) {
	base := core.Spec{K: 16, Dims: 2, V: 2, Lm: 32, H: 0.2, Lambda: 1e-4}
	type variant struct {
		name  string
		model string
		spec  core.Spec
		opts  core.Options
	}
	variants := []variant{{name: "base", model: "hotspot-2d", spec: base}}
	add := func(name string, mutate func(*variant)) {
		v := variant{name: name, model: "hotspot-2d", spec: base}
		mutate(&v)
		variants = append(variants, v)
	}
	add("model", func(v *variant) { v.model = "bidirectional-2d" })
	add("k", func(v *variant) { v.spec.K = 17 })
	add("dims", func(v *variant) { v.spec.Dims = 0 })
	add("v", func(v *variant) { v.spec.V = 3 })
	add("lm", func(v *variant) { v.spec.Lm = 33 })
	add("h", func(v *variant) { v.spec.H = 0.4 })
	add("h-ulp", func(v *variant) { v.spec.H = math.Nextafter(0.2, 1) })
	add("lambda", func(v *variant) { v.spec.Lambda = 2e-4 })
	add("lambda-ulp", func(v *variant) { v.spec.Lambda = math.Nextafter(1e-4, 1) })
	add("entrance", func(v *variant) { v.opts.Entrance = core.EntranceWorstCase })
	add("blocking", func(v *variant) { v.opts.Blocking = core.BlockingPaper })
	add("variance", func(v *variant) { v.opts.Variance = core.VariancePaper })
	add("novcsplit", func(v *variant) { v.opts.NoVCSplit = true })

	seen := map[string]string{}
	for _, v := range variants {
		key := solveKey(v.model, v.spec, v.opts)
		if prev, dup := seen[key]; dup {
			t.Errorf("variants %q and %q collide on key %q", prev, v.name, key)
		}
		seen[key] = v.name
	}
}

// TestCacheConcurrentDistinctSpecs hammers the cache with distinct keys
// under -race: every key must be solved exactly once and never cross-talk.
func TestCacheConcurrentDistinctSpecs(t *testing.T) {
	c := testCache(1024)
	const keys, callers = 16, 4
	var calls [keys]atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				want := float64(k)
				res, _, err := c.do(context.Background(), fmt.Sprintf("key-%d", k),
					func(context.Context) (*core.SolveResult, error) {
						calls[k].Add(1)
						return &core.SolveResult{Latency: want}, nil
					})
				if err != nil {
					t.Errorf("key %d: %v", k, err)
					return
				}
				if math.Float64bits(res.Latency) != math.Float64bits(want) {
					t.Errorf("key %d served latency %v — cross-key collision", k, res.Latency)
				}
			}(k)
		}
	}
	wg.Wait()
	for k := range calls {
		if n := calls[k].Load(); n != 1 {
			t.Errorf("key %d solved %d times, want 1", k, n)
		}
	}
}

// TestCacheEvictionRespectsBound fills past capacity and checks the
// resident count, the eviction counter, and that the evicted (oldest) key
// re-solves while recent keys still hit.
func TestCacheEvictionRespectsBound(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := newSolveCache(4, reg)
	solve := func(k string) string {
		_, how, _ := c.do(context.Background(), k, func(context.Context) (*core.SolveResult, error) {
			return &core.SolveResult{}, nil
		})
		return how
	}
	for i := 0; i < 10; i++ {
		solve(fmt.Sprintf("key-%d", i))
	}
	if n := c.len(); n != 4 {
		t.Errorf("resident entries = %d, want capacity 4", n)
	}
	if ev := reg.Counter("khs_serve_cache_evictions_total", "", nil).Value(); ev != 6 {
		t.Errorf("evictions = %d, want 6", ev)
	}
	if how := solve("key-0"); how != cacheMiss {
		t.Errorf("evicted key-0: %s, want miss (re-solve)", how)
	}
	if how := solve("key-9"); how != cacheHit {
		t.Errorf("recent key-9: %s, want hit", how)
	}
	if g := reg.Gauge("khs_serve_cache_entries", "", nil).Value(); int(g) != c.len() {
		t.Errorf("entries gauge %v != resident %d", g, c.len())
	}
}

// TestCacheCachesSaturationOutcome: ErrSaturated is a deterministic
// property of the spec, so repeated saturated requests must not re-run the
// solver.
func TestCacheCachesSaturationOutcome(t *testing.T) {
	c := testCache(8)
	var calls atomic.Int64
	fn := func(context.Context) (*core.SolveResult, error) {
		calls.Add(1)
		return nil, fmt.Errorf("%w (test)", core.ErrSaturated)
	}
	_, _, err1 := c.do(context.Background(), "sat", fn)
	_, how, err2 := c.do(context.Background(), "sat", fn)
	if !errors.Is(err1, core.ErrSaturated) || !errors.Is(err2, core.ErrSaturated) {
		t.Fatalf("errors: %v, %v — want ErrSaturated from both", err1, err2)
	}
	if how != cacheHit {
		t.Errorf("repeat saturated request: %s, want hit", how)
	}
	if calls.Load() != 1 {
		t.Errorf("solver ran %d times, want 1", calls.Load())
	}
}

// TestCacheDoesNotCacheCancellation: a cancelled solve must not poison the
// key for later callers.
func TestCacheDoesNotCacheCancellation(t *testing.T) {
	c := testCache(8)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(cancelled, "k", func(ctx context.Context) (*core.SolveResult, error) {
		return nil, fmt.Errorf("solve: %w", ctx.Err())
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	res, how, err := c.do(context.Background(), "k", func(context.Context) (*core.SolveResult, error) {
		return &core.SolveResult{Latency: 7}, nil
	})
	if err != nil || how != cacheMiss || res == nil {
		t.Errorf("after cancellation: res=%v how=%s err=%v, want a fresh miss solve", res, how, err)
	}
}

// TestCacheFollowerRetriesWhenLeaderCancelled: a follower attached to a
// flight whose leader was cancelled re-solves under its own live context
// instead of inheriting the leader's cancellation.
func TestCacheFollowerRetriesWhenLeaderCancelled(t *testing.T) {
	c := testCache(8)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var solves atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.do(leaderCtx, "k", func(ctx context.Context) (*core.SolveResult, error) {
			solves.Add(1)
			close(leaderIn)
			<-ctx.Done() // simulate the fixed-point loop noticing cancellation
			return nil, fmt.Errorf("solve: %w", ctx.Err())
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want Canceled", err)
		}
	}()

	<-leaderIn
	wg.Add(1)
	var followerRes *core.SolveResult
	var followerErr error
	followerJoined := make(chan struct{})
	go func() {
		defer wg.Done()
		close(followerJoined)
		followerRes, _, followerErr = c.do(context.Background(), "k",
			func(ctx context.Context) (*core.SolveResult, error) {
				solves.Add(1)
				return &core.SolveResult{Latency: 9}, nil
			})
	}()
	<-followerJoined
	cancelLeader()
	wg.Wait()

	if followerErr != nil {
		t.Fatalf("follower inherited the leader's fate: %v", followerErr)
	}
	if followerRes == nil || math.Float64bits(followerRes.Latency) != math.Float64bits(9.0) {
		t.Errorf("follower result %+v, want its own solve", followerRes)
	}
	if n := solves.Load(); n != 2 {
		t.Errorf("solver ran %d times, want 2 (cancelled leader + retrying follower)", n)
	}
}
