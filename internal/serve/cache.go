package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"

	"sync"

	"kncube/internal/core"
	"kncube/internal/telemetry"
)

// solveKey derives the canonical cache key of one solve: the model name,
// the full core.Spec, and every option that changes the result. Floats are
// keyed by their IEEE-754 bit patterns, so two requests share an entry iff
// their solves are bit-for-bit identical — no epsilon, no float equality.
func solveKey(model string, spec core.Spec, o core.Options) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%016x|%016x|%d|%d|%d|%t|%d|%d",
		model, spec.K, spec.Dims, spec.V, spec.Lm,
		math.Float64bits(spec.H), math.Float64bits(spec.Lambda),
		o.Entrance, o.Blocking, o.Variance, o.NoVCSplit,
		o.FixPoint.Acceleration, o.FixPoint.Window)
}

// cacheEntry is a completed solve outcome. err is nil or wraps
// core.ErrSaturated — both are deterministic properties of the key, so both
// are cacheable; validation and cancellation errors never enter the cache.
type cacheEntry struct {
	res *core.SolveResult
	err error
}

// flight is one in-progress solve that concurrent identical requests
// attach to (singleflight). ent is written exactly once before done is
// closed; the channel close publishes it.
type flight struct {
	done chan struct{}
	ent  cacheEntry
}

// lruItem is one resident cache entry.
type lruItem struct {
	key string
	ent cacheEntry
}

// Cache outcome labels returned by solveCache.do.
const (
	cacheHit       = "hit"
	cacheMiss      = "miss"
	cacheCoalesced = "coalesced"
)

// solveCache is the keyed, size-bounded LRU solve cache with singleflight
// deduplication: concurrent requests for the same key collapse onto one
// solver run, and completed outcomes are retained up to capacity entries
// with least-recently-used eviction.
type solveCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*flight

	hits, misses, coalesced, evictions *telemetry.Counter
	entries                            *telemetry.Gauge
}

// newSolveCache builds a cache bounded to capacity entries (capacity <= 0
// disables retention but keeps singleflight deduplication). Metrics are
// registered under khs_serve_cache_*.
func newSolveCache(capacity int, reg *telemetry.Registry) *solveCache {
	c := &solveCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
	c.hits = reg.Counter("khs_serve_cache_hits_total", "solve cache hits", nil)
	c.misses = reg.Counter("khs_serve_cache_misses_total", "solve cache misses (solver runs)", nil)
	c.coalesced = reg.Counter("khs_serve_cache_coalesced_total", "requests attached to an in-flight identical solve", nil)
	c.evictions = reg.Counter("khs_serve_cache_evictions_total", "entries evicted by the LRU size bound", nil)
	c.entries = reg.Gauge("khs_serve_cache_entries", "resident solve cache entries", nil)
	return c
}

// do returns the outcome for key, computing it with fn at most once across
// all concurrent callers. The string reports how the call was satisfied
// (cacheHit, cacheMiss, cacheCoalesced).
//
// fn runs under the leader's context; a follower whose leader was cancelled
// retries as a new leader if its own context is still live, so one client
// hanging up never poisons another client's identical request.
func (c *solveCache) do(ctx context.Context, key string, fn func(context.Context) (*core.SolveResult, error)) (*core.SolveResult, string, error) {
	for {
		c.mu.Lock()
		if el, ok := c.byKey[key]; ok {
			c.ll.MoveToFront(el)
			ent := el.Value.(*lruItem).ent
			c.mu.Unlock()
			c.hits.Inc()
			return ent.res, cacheHit, ent.err
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
				if isCancellation(fl.ent.err) && ctx.Err() == nil {
					continue // the leader was cancelled, not us: retry as leader
				}
				c.coalesced.Inc()
				return fl.ent.res, cacheCoalesced, fl.ent.err
			case <-ctx.Done():
				return nil, cacheCoalesced, fmt.Errorf("serve: solve wait: %w", ctx.Err())
			}
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		res, err := fn(ctx)
		fl.ent = cacheEntry{res: res, err: err}
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil || errors.Is(err, core.ErrSaturated) {
			c.add(key, fl.ent)
		}
		c.mu.Unlock()
		close(fl.done)
		c.misses.Inc()
		return res, cacheMiss, err
	}
}

// add inserts under c.mu, evicting from the LRU tail beyond capacity.
func (c *solveCache) add(key string, ent cacheEntry) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruItem).ent = ent
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&lruItem{key: key, ent: ent})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		it := back.Value.(*lruItem)
		c.ll.Remove(back)
		delete(c.byKey, it.key)
		c.evictions.Inc()
	}
	c.entries.Set(float64(c.ll.Len()))
}

// len reports the resident entry count (tests).
func (c *solveCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// isCancellation reports whether err came from context cancellation or
// deadline expiry, at any wrapping depth.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
