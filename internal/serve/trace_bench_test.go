package serve

import (
	"context"
	"testing"

	"kncube/internal/core"
	"kncube/internal/experiments"
	"kncube/internal/telemetry/span"
)

// benchSpec is the Figure-1 h=20% point every solve benchmark uses.
var benchSpec = core.Spec{K: 16, V: 2, Lm: 32, H: 0.2, Lambda: 0.00015}

// TestUntracedSolveAllocBound pins the cost of the tracing instrumentation
// when no span is in the context (CLI paths, or requests whose trace was
// never started): the solveRunner path may add only a small constant number
// of allocations per solve over a bare prepared solve — the nil-span
// StartChild call sites — and nothing per fixed-point round (that part is
// pinned exactly by fixpoint's TestNilRoutedTraceAddsNoAllocations and the
// iteration-count independence asserted here).
func TestUntracedSolveAllocBound(t *testing.T) {
	measure := func(lambda float64) (bare, untraced float64) {
		spec := benchSpec
		spec.Lambda = lambda
		ps, err := core.Prepare(experiments.DefaultModel, spec, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ps.Solve(spec.Lambda); err != nil {
			t.Fatal(err)
		}
		bare = testing.AllocsPerRun(20, func() {
			if _, err := ps.Solve(spec.Lambda); err != nil {
				t.Fatal(err)
			}
		})
		runner := newSolveRunner(context.Background(), experiments.DefaultModel, core.Options{})
		if _, err := runner.solve(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		untraced = testing.AllocsPerRun(20, func() {
			if _, err := runner.solve(context.Background(), spec); err != nil {
				t.Fatal(err)
			}
		})
		return bare, untraced
	}

	lightBare, lightUntraced := measure(0.00015)
	heavyBare, heavyUntraced := measure(0.00030)
	const maxOverhead = 8 // nil-span StartChild sites, independent of rounds
	for _, c := range []struct {
		name           string
		bare, untraced float64
	}{
		{"light-load", lightBare, lightUntraced},
		{"heavier-load", heavyBare, heavyUntraced},
	} {
		delta := c.untraced - c.bare
		if delta < 0 || delta > maxOverhead {
			t.Errorf("%s: untraced runner.solve adds %v allocs/solve over bare (%v vs %v), want 0..%d",
				c.name, delta, c.untraced, c.bare, maxOverhead)
		}
	}
	// The overhead must be a constant: if it scaled with the iteration
	// count, the span layer would be allocating per round.
	//lint:ignore floateq alloc counts are small integers; exact equality is the contract
	if lightDelta, heavyDelta := lightUntraced-lightBare, heavyUntraced-heavyBare; lightDelta != heavyDelta {
		t.Errorf("tracing alloc overhead varies with load: %v at light load, %v near saturation — per-round allocation leak",
			lightDelta, heavyDelta)
	}
}

// BenchmarkSolveTracing measures the request-path solve three ways: bare
// (a prepared solver, the pre-tracing baseline), untraced (the production
// solveRunner with no span in context — the <2% overhead acceptance bound
// applies to this pair), and traced (full span tree per solve, ring
// exporter, every round an event — the cost of a kept cache-miss trace).
func BenchmarkSolveTracing(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		ps, err := core.Prepare(experiments.DefaultModel, benchSpec, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ps.Solve(benchSpec.Lambda); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("untraced", func(b *testing.B) {
		runner := newSolveRunner(context.Background(), experiments.DefaultModel, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.solve(context.Background(), benchSpec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		ring := span.NewRingExporter(4, nil)
		tr := span.New(span.Config{Exporter: ring, Seed: 1})
		runner := newSolveRunner(context.Background(), experiments.DefaultModel, core.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, root := tr.Start(context.Background(), "bench.solve")
			if _, err := runner.solve(ctx, benchSpec); err != nil {
				b.Fatal(err)
			}
			root.End()
		}
	})
}
